// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// knnshap_serve — JSONL request loop over the ValuationEngine: one JSON
// request per stdin line, one JSON response per stdout line. The process
// holds loaded corpora, fitted retrieval structures and the result cache
// across requests, which is the serving win the engine exists for.
//
// Protocol (see README.md for the full request/response model):
//
//   {"op":"load","name":"corpus","path":"train.csv","target":"label"}
//   {"op":"load","name":"q","rows":[[0.1,0.2,1],[0.3,0.1,0]],"target":"label"}
//   {"op":"value","train":"corpus","test":"q","method":"exact","k":5}
//   {"op":"methods"}   {"op":"stats"}   {"op":"drop","name":"q"}   {"op":"quit"}
//
// Every response carries "ok"; failures answer {"ok":false,"error":...} and
// the loop continues. Responses to "value" include cache/fit provenance so
// a load balancer can observe hit rates.

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "dataset/io.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "util/json.h"

using namespace knnshap;

namespace {

JsonValue ErrorResponse(const std::string& message) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("ok", JsonValue(false));
  out.Set("error", JsonValue(message));
  return out;
}

JsonValue CountersJson(const CacheCounters& counters) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("hits", JsonValue(static_cast<double>(counters.hits)));
  out.Set("misses", JsonValue(static_cast<double>(counters.misses)));
  out.Set("evictions", JsonValue(static_cast<double>(counters.evictions)));
  return out;
}

/// The server state: named corpora plus the engine.
class Server {
 public:
  JsonValue Handle(const JsonValue& request) {
    if (!request.IsObject()) return ErrorResponse("request must be a JSON object");
    const std::string& op = request.Get("op").AsString();
    if (op == "load") return Load(request);
    if (op == "value") return Value(request);
    if (op == "methods") return Methods();
    if (op == "stats") return Stats();
    if (op == "drop") return Drop(request);
    if (op == "ping") {
      JsonValue out = JsonValue::MakeObject();
      out.Set("ok", JsonValue(true));
      return out;
    }
    return ErrorResponse("unknown op '" + op + "'");
  }

 private:
  static bool ParseTargetMode(const std::string& mode, CsvTarget* out) {
    if (mode.empty() || mode == "label") {
      *out = CsvTarget::kLabel;
    } else if (mode == "target") {
      *out = CsvTarget::kTarget;
    } else if (mode == "none") {
      *out = CsvTarget::kNone;
    } else {
      return false;
    }
    return true;
  }

  JsonValue Load(const JsonValue& request) {
    const std::string& name = request.Get("name").AsString();
    if (name.empty()) return ErrorResponse("load: 'name' is required");
    CsvTarget target;
    if (!ParseTargetMode(request.Get("target").AsString(), &target)) {
      return ErrorResponse("load: target must be label|target|none");
    }

    Dataset data;
    if (request.Has("path")) {
      CsvLoadResult loaded = LoadCsvDataset(request.Get("path").AsString(), target);
      if (!loaded.ok()) return ErrorResponse("load: " + loaded.error);
      data = std::move(loaded.data);
    } else if (request.Has("rows")) {
      std::string error;
      if (!FromInlineRows(request.Get("rows"), target, &data, &error)) {
        return ErrorResponse("load: " + error);
      }
    } else {
      return ErrorResponse("load: need 'path' or 'rows'");
    }
    data.name = name;

    datasets_[name] = std::make_shared<const Dataset>(std::move(data));
    const Dataset& stored = *datasets_[name];
    JsonValue out = JsonValue::MakeObject();
    out.Set("ok", JsonValue(true));
    out.Set("name", JsonValue(name));
    out.Set("rows", JsonValue(static_cast<double>(stored.Size())));
    out.Set("dim", JsonValue(static_cast<double>(stored.Dim())));
    return out;
  }

  static bool FromInlineRows(const JsonValue& rows, CsvTarget target, Dataset* data,
                             std::string* error) {
    if (!rows.IsArray() || rows.Items().empty()) {
      *error = "'rows' must be a non-empty array of rows";
      return false;
    }
    for (const auto& row : rows.Items()) {
      if (!row.IsArray() || row.Items().empty()) {
        *error = "each row must be a non-empty array of numbers";
        return false;
      }
      size_t arity = row.Items().size();
      size_t num_features = target == CsvTarget::kNone ? arity : arity - 1;
      if (num_features == 0) {
        *error = "row has no feature columns";
        return false;
      }
      std::vector<float> features;
      features.reserve(num_features);
      for (size_t c = 0; c < num_features; ++c) {
        const JsonValue& cell = row.Items()[c];
        if (!cell.IsNumber()) {
          *error = "non-numeric feature cell";
          return false;
        }
        features.push_back(static_cast<float>(cell.AsNumber()));
      }
      if (!data->features.Empty() && features.size() != data->Dim()) {
        *error = "inconsistent row arity";
        return false;
      }
      data->features.AppendRow(features);
      if (target != CsvTarget::kNone) {
        const JsonValue& last = row.Items()[arity - 1];
        if (!last.IsNumber()) {
          *error = "non-numeric label/target cell";
          return false;
        }
        if (target == CsvTarget::kLabel) {
          data->labels.push_back(static_cast<int>(last.AsNumber()));
        } else {
          data->targets.push_back(last.AsNumber());
        }
      }
    }
    return true;
  }

  static KnnTask ParseTask(const std::string& task, std::string* error) {
    if (task.empty() || task == "classification") return KnnTask::kClassification;
    if (task == "regression") return KnnTask::kRegression;
    if (task == "weighted-classification") return KnnTask::kWeightedClassification;
    if (task == "weighted-regression") return KnnTask::kWeightedRegression;
    *error = "unknown task '" + task + "'";
    return KnnTask::kClassification;
  }

  JsonValue Value(const JsonValue& request) {
    ValuationRequest engine_request;
    engine_request.method = request.Get("method").IsString()
                                ? request.Get("method").AsString()
                                : "exact";

    auto train_it = datasets_.find(request.Get("train").AsString());
    if (train_it == datasets_.end()) {
      return ErrorResponse("value: unknown train dataset '" +
                           request.Get("train").AsString() + "'");
    }
    engine_request.train = train_it->second;

    if (request.Has("test")) {
      auto test_it = datasets_.find(request.Get("test").AsString());
      if (test_it == datasets_.end()) {
        return ErrorResponse("value: unknown test dataset '" +
                             request.Get("test").AsString() + "'");
      }
      engine_request.test = test_it->second;
    } else if (request.Has("queries")) {
      // Inline one-shot query batch; labeled/targeted per the task.
      std::string task_error;
      KnnTask task = ParseTask(request.Get("task").AsString(), &task_error);
      if (!task_error.empty()) return ErrorResponse("value: " + task_error);
      CsvTarget target = (task == KnnTask::kRegression ||
                          task == KnnTask::kWeightedRegression)
                             ? CsvTarget::kTarget
                             : CsvTarget::kLabel;
      Dataset queries;
      std::string error;
      if (!FromInlineRows(request.Get("queries"), target, &queries, &error)) {
        return ErrorResponse("value: " + error);
      }
      queries.name = "inline-queries";
      engine_request.test = std::make_shared<const Dataset>(std::move(queries));
    } else {
      return ErrorResponse("value: need 'test' (dataset name) or 'queries'");
    }

    ValuatorParams& params = engine_request.params;
    std::string task_error;
    params.task = ParseTask(request.Get("task").AsString(), &task_error);
    if (!task_error.empty()) return ErrorResponse("value: " + task_error);
    params.k = static_cast<int>(request.Get("k").AsNumber(params.k));
    params.epsilon = request.Get("epsilon").AsNumber(params.epsilon);
    params.delta = request.Get("delta").AsNumber(params.delta);
    params.seed = static_cast<uint64_t>(request.Get("seed").AsNumber(
        engine_request.method == "mc" ? 1.0 : 7.0));
    const std::string& kernel = request.Get("kernel").AsString();
    if (kernel == "inverse") {
      params.weights.kernel = WeightKernel::kInverseDistance;
    } else if (kernel == "gaussian") {
      params.weights.kernel = WeightKernel::kGaussian;
    } else if (!kernel.empty() && kernel != "uniform") {
      return ErrorResponse("value: unknown kernel '" + kernel + "'");
    }
    engine_request.use_cache = request.Get("cache").AsBool(true);
    engine_request.parallel = request.Get("parallel").AsBool(true);

    ValuationReport report = engine_.Value(engine_request);
    if (!report.ok()) return ErrorResponse(report.error);

    JsonValue out = JsonValue::MakeObject();
    out.Set("ok", JsonValue(true));
    out.Set("method", JsonValue(report.method));
    out.Set("train_size", JsonValue(static_cast<double>(report.train_size)));
    out.Set("num_queries", JsonValue(static_cast<double>(report.num_queries)));
    out.Set("seconds", JsonValue(report.seconds));
    out.Set("cache_hit", JsonValue(report.cache_hit));
    out.Set("fit_reused", JsonValue(report.fit_reused));
    out.Set("cache", CountersJson(report.cache));
    JsonValue summary = JsonValue::MakeObject();
    summary.Set("mean", JsonValue(report.summary.mean));
    summary.Set("min", JsonValue(report.summary.min));
    summary.Set("max", JsonValue(report.summary.max));
    summary.Set("total", JsonValue(report.summary.total));
    summary.Set("fraction_negative", JsonValue(report.summary.fraction_negative));
    out.Set("summary", summary);
    if (request.Get("include_values").AsBool(true)) {
      JsonValue values = JsonValue::MakeArray();
      for (double v : report.values) values.Append(JsonValue(v));
      out.Set("values", values);
    }
    return out;
  }

  JsonValue Methods() {
    JsonValue out = JsonValue::MakeObject();
    out.Set("ok", JsonValue(true));
    JsonValue methods = JsonValue::MakeArray();
    for (const auto& info : ValuatorRegistry::Global().Methods()) {
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("name", JsonValue(info.name));
      entry.Set("description", JsonValue(info.description));
      methods.Append(entry);
    }
    out.Set("methods", methods);
    return out;
  }

  JsonValue Stats() {
    JsonValue out = JsonValue::MakeObject();
    out.Set("ok", JsonValue(true));
    out.Set("cache", CountersJson(engine_.CacheStats()));
    out.Set("fitted_valuators", JsonValue(static_cast<double>(engine_.FittedCount())));
    out.Set("fit_reuses", JsonValue(static_cast<double>(engine_.FitReuses())));
    JsonValue names = JsonValue::MakeArray();
    for (const auto& [name, data] : datasets_) {
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("name", JsonValue(name));
      entry.Set("rows", JsonValue(static_cast<double>(data->Size())));
      entry.Set("dim", JsonValue(static_cast<double>(data->Dim())));
      names.Append(entry);
    }
    out.Set("datasets", names);
    return out;
  }

  JsonValue Drop(const JsonValue& request) {
    const std::string& name = request.Get("name").AsString();
    JsonValue out = JsonValue::MakeObject();
    out.Set("ok", JsonValue(datasets_.erase(name) > 0));
    if (!out.Get("ok").AsBool()) out.Set("error", JsonValue("unknown dataset"));
    return out;
  }

  std::map<std::string, std::shared_ptr<const Dataset>> datasets_;
  ValuationEngine engine_;
};

}  // namespace

int main() {
  Server server;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    JsonParseResult parsed = ParseJson(line);
    JsonValue response;
    if (!parsed.ok()) {
      response = ErrorResponse("parse error: " + parsed.error);
    } else if (parsed.value.Get("op").AsString() == "quit") {
      response = JsonValue::MakeObject();
      response.Set("ok", JsonValue(true));
      response.Set("bye", JsonValue(true));
      std::printf("%s\n", response.Dump().c_str());
      std::fflush(stdout);
      return 0;
    } else {
      response = server.Handle(parsed.value);
    }
    std::printf("%s\n", response.Dump().c_str());
    std::fflush(stdout);
  }
  return 0;
}
