// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// knnshap_serve — JSONL serving front end: one JSON request per stdin
// line, one JSON response per stdout line. All of the serving machinery —
// the versioned CorpusStore, the concurrent RequestPipeline, schema-driven
// request validation ({"op":"describe"} lists every method's typed
// hyperparameters at runtime), in-order response emission, engine
// invalidation and cache persistence — lives in src/serve/; this binary
// just parses flags and runs the loop.
//
// Flags:
//   --serial          process requests inline on the reader thread (the
//                     pre-pipeline behavior; value requests still shard
//                     queries across the pool)
//   --no-timing       omit "seconds" from value responses, making the
//                     transcript byte-for-byte reproducible (golden tests)
//   --threads=N       run value jobs on a private pool of N workers
//                     instead of the shared machine-sized pool
//   --in-flight=N     cap on concurrently dispatched value requests
//   --cache=N         result-cache capacity in entries (default 64)
//   --kernel=K        force the distance kernel (reference|blocked|avx2|
//                     auto); outranks the KNNSHAP_KERNEL environment
//                     variable — used with --no-timing for deterministic
//                     transcripts
//
// See README.md for the protocol and src/serve/README.md for the
// ordering/concurrency contract.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "knn/distance_kernel.h"
#include "serve/pipeline.h"
#include "util/cli.h"
#include "util/thread_pool.h"

using namespace knnshap;

int main(int argc, char** argv) {
  CommandLine args(argc, argv);

  const std::string kernel = args.GetString("kernel", "");
  if (kernel == "reference") {
    SetKernelOverride(KernelKind::kReference);
  } else if (kernel == "blocked") {
    SetKernelOverride(KernelKind::kBlocked);
  } else if (kernel == "avx2") {
    SetKernelOverride(KernelKind::kAvx2);
  } else if (kernel == "auto") {
    SetKernelOverride(KernelKind::kAuto);
  } else if (!kernel.empty()) {
    std::fprintf(stderr, "unknown --kernel '%s'\n", kernel.c_str());
    return 1;
  }

  PipelineOptions options;
  options.pipelined = !args.Has("serial");
  options.emit_timing = !args.Has("no-timing");
  options.engine.result_cache_capacity =
      static_cast<size_t>(args.GetInt("cache", 64));
  if (args.GetInt("in-flight", 0) > 0) {
    options.max_in_flight = static_cast<size_t>(args.GetInt("in-flight", 0));
  }
  std::unique_ptr<ThreadPool> private_pool;
  if (args.GetInt("threads", 0) > 0) {
    private_pool =
        std::make_unique<ThreadPool>(static_cast<size_t>(args.GetInt("threads", 0)));
    options.pool = private_pool.get();
  }

  RequestPipeline pipeline(options);
  pipeline.Run(std::cin, std::cout);
  return 0;
}
