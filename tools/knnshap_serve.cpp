// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// knnshap_serve — JSONL serving front end: one JSON request per stdin
// line, one JSON response per stdout line. All of the serving machinery —
// the versioned CorpusStore, the concurrent RequestPipeline, schema-driven
// request validation ({"op":"describe"} lists every method's typed
// hyperparameters at runtime), in-order response emission, engine
// invalidation and cache persistence — lives in src/serve/; this binary
// just parses flags and runs the loop.
//
// Flags:
//   --serial          process requests inline on the reader thread (the
//                     pre-pipeline behavior; value requests still shard
//                     queries across the pool)
//   --no-timing       omit "seconds" from value responses, making the
//                     transcript byte-for-byte reproducible (golden tests)
//   --threads=N       run value jobs on a private pool of N workers
//                     instead of the shared machine-sized pool
//   --in-flight=N     cap on concurrently dispatched value requests
//   --cache=N         result-cache capacity in entries (default 64)
//   --kernel=K        force the distance kernel (reference|blocked|avx2|
//                     auto); outranks the KNNSHAP_KERNEL environment
//                     variable — used with --no-timing for deterministic
//                     transcripts
//   --no-obs          disable the metrics registry entirely (no metrics
//                     clock reads; the `metrics` op errors)
//   --trace-all       record deep per-query trace spans on every value
//                     request, as if each carried {"trace":true}
//   --slow-ms=N       log one JSONL line (with the full phase breakdown)
//                     to stderr for every ok value request slower than N
//                     milliseconds, engine time + queue wait
//   --metrics-file=P  dump the metrics registry as JSON to P on exit
//   --shards=N        route exact / exact-corrected / weighted-fast value
//                     requests through N shard workers (thread-per-shard);
//                     responses stay byte-identical to the unsharded
//                     server (src/shard/README.md)
//   --shard-workers=W process-per-shard instead: W is "self" (re-exec this
//                     binary via /proc/self/exe) or a path to a serve
//                     binary; workers speak the JSONL protocol over pipes
//                     and inherit the environment (KNNSHAP_FAULTS included)
//
// Remote shards over TCP (docs/DEPLOYMENT.md; docs/PROTOCOL.md is the
// wire spec):
//   --shard-listen=[HOST:]PORT   run as a remote shard worker: serve the
//                     JSONL protocol to every TCP connection (serial,
//                     thread-per-connection over one shared store, so the
//                     corpus persists across router reconnects for delta
//                     sync). Port 0 binds an ephemeral port; the bound
//                     endpoint is announced on stderr. Start workers with
//                     the same --kernel as the router.
//   --shard-remote=SPEC          route shards to remote workers: replica
//                     groups separated by ';', replicas within a group by
//                     ',' — e.g. "h1:7001,h2:7001;h1:7002,h2:7002" is two
//                     shards with a failover replica each. Group count
//                     must equal --shards (and sets it when --shards is
//                     absent). Conflicts with --shard-workers.
//   --shard-connect-timeout-ms=N per dial attempt (default 2000)
//   --shard-io-timeout-ms=N      per request/response read/write on a
//                                worker socket (default 30000; 0 = none)
//   --shard-connect-attempts=N   bounded dial retries with doubling
//                                backoff before a replica is marked dead
//                                (default 3)
//
// Robustness flags (see src/serve/README.md, "Failure semantics"):
//   --max-queue=N            shed value requests arriving while N are
//                            already in flight ({"code":"unavailable"} +
//                            retry_after_ms) instead of blocking the
//                            reader; -1 (default) keeps blocking
//                            backpressure
//   --default-deadline-ms=N  server-wide deadline for value requests that
//                            carry no "deadline_ms" of their own
//   --snapshot=P             crash-safe result-cache snapshot path
//                            (atomic tmp+fsync+rename), flushed on exit
//   --snapshot-every=N       also snapshot after every N value requests
//   --max-line-bytes=N       reject request lines longer than N bytes
//
// SIGINT/SIGTERM trigger a graceful shutdown: stop reading, drain
// in-flight work, flush the snapshot and the metrics file, exit 0.
//
// See README.md for the protocol and src/serve/README.md for the
// ordering/concurrency contract and the observability surface.

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "knn/distance_kernel.h"
#include "serve/pipeline.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/net.h"
#include "util/thread_pool.h"

using namespace knnshap;

namespace {

std::atomic<bool> g_shutdown{false};

extern "C" void HandleShutdownSignal(int) { g_shutdown.store(true); }

// Install without SA_RESTART so a signal interrupts the blocking stdin
// read (getline fails with EINTR) and the serve loop falls out into its
// drain + snapshot-flush exit path instead of waiting for the next line.
void InstallShutdownHandlers() {
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction action = {};
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
#else
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
#endif
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine args(argc, argv);

  const std::string kernel = args.GetString("kernel", "");
  if (kernel == "reference") {
    SetKernelOverride(KernelKind::kReference);
  } else if (kernel == "blocked") {
    SetKernelOverride(KernelKind::kBlocked);
  } else if (kernel == "avx2") {
    SetKernelOverride(KernelKind::kAvx2);
  } else if (kernel == "auto") {
    SetKernelOverride(KernelKind::kAuto);
  } else if (!kernel.empty()) {
    std::fprintf(stderr, "unknown --kernel '%s'\n", kernel.c_str());
    return 1;
  }

  PipelineOptions options;
  options.pipelined = !args.Has("serial");
  options.emit_timing = !args.Has("no-timing");
  options.engine.result_cache_capacity =
      static_cast<size_t>(args.GetInt("cache", 64));
  if (args.GetInt("in-flight", 0) > 0) {
    options.max_in_flight = static_cast<size_t>(args.GetInt("in-flight", 0));
  }
  std::unique_ptr<ThreadPool> private_pool;
  if (args.GetInt("threads", 0) > 0) {
    private_pool =
        std::make_unique<ThreadPool>(static_cast<size_t>(args.GetInt("threads", 0)));
    options.pool = private_pool.get();
  }
  options.observability = !args.Has("no-obs");
  options.trace_all = args.Has("trace-all");
  options.slow_ms = args.GetDouble("slow-ms", 0.0);
  const std::string metrics_file = args.GetString("metrics-file", "");
  if (!options.observability && (!metrics_file.empty() || options.slow_ms > 0)) {
    std::fprintf(stderr, "--no-obs conflicts with --metrics-file/--slow-ms\n");
    return 1;
  }
  options.max_queue = static_cast<int>(args.GetInt("max-queue", -1));
  options.default_deadline_ms = args.GetInt("default-deadline-ms", 0);
  options.snapshot_path = args.GetString("snapshot", "");
  options.snapshot_every =
      static_cast<size_t>(args.GetInt("snapshot-every", 0));
  if (options.snapshot_every != 0 && options.snapshot_path.empty()) {
    std::fprintf(stderr, "--snapshot-every needs --snapshot=PATH\n");
    return 1;
  }
  options.max_line_bytes =
      static_cast<size_t>(args.GetInt("max-line-bytes", 0));
  options.shards = static_cast<int>(args.GetInt("shards", 1));
  if (options.shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 1;
  }
  const std::string shard_workers = args.GetString("shard-workers", "");
  if (!shard_workers.empty()) {
    if (options.shards < 2) {
      std::fprintf(stderr, "--shard-workers needs --shards=N (N >= 2)\n");
      return 1;
    }
    options.shard_process = true;
    const std::string worker_path =
        shard_workers == "self" ? "/proc/self/exe" : shard_workers;
    // Workers must answer deterministically whatever this server's timing
    // flags are, and must compute on the same kernel so candidate
    // distances are bit-identical to the router's expectations.
    options.shard_worker_command = {worker_path, "--serial", "--no-timing",
                                    "--no-obs",
                                    "--kernel=" + std::string(KernelName(
                                        ActiveKernel()))};
  }
  const std::string shard_remote = args.GetString("shard-remote", "");
  if (!shard_remote.empty()) {
    if (!shard_workers.empty()) {
      std::fprintf(stderr, "--shard-remote conflicts with --shard-workers\n");
      return 1;
    }
    std::vector<std::vector<std::string>> groups;
    std::vector<std::string> group;
    std::string token;
    auto flush_token = [&] {
      if (!token.empty()) group.push_back(token);
      token.clear();
    };
    auto flush_group = [&]() -> bool {
      flush_token();
      if (group.empty()) return false;
      groups.push_back(group);
      group.clear();
      return true;
    };
    bool ok = true;
    for (char c : shard_remote) {
      if (c == ',') {
        flush_token();
        if (group.empty()) ok = false;  // ",h:p" / "h:p,," — empty replica
      } else if (c == ';') {
        if (!flush_group()) ok = false;
      } else {
        token.push_back(c);
      }
    }
    if (!flush_group()) ok = false;
    if (!ok || groups.empty()) {
      std::fprintf(stderr,
                   "--shard-remote: expected ';'-separated replica groups of "
                   "','-separated host:port endpoints, got '%s'\n",
                   shard_remote.c_str());
      return 1;
    }
    // Endpoints are validated here so a typo fails at startup, not at the
    // first value request.
    for (const auto& replicas : groups) {
      for (const std::string& spec : replicas) {
        Endpoint endpoint;
        std::string error;
        if (!ParseEndpoint(spec, &endpoint, &error, "127.0.0.1")) {
          std::fprintf(stderr, "--shard-remote: bad endpoint '%s': %s\n",
                       spec.c_str(), error.c_str());
          return 1;
        }
      }
    }
    if (!args.Has("shards")) {
      options.shards = static_cast<int>(groups.size());
    } else if (options.shards != static_cast<int>(groups.size())) {
      std::fprintf(stderr,
                   "--shard-remote has %zu replica groups but --shards=%d\n",
                   groups.size(), options.shards);
      return 1;
    }
    if (options.shards < 2) {
      std::fprintf(stderr, "--shard-remote needs >= 2 replica groups\n");
      return 1;
    }
    options.shard_remote = std::move(groups);
    options.shard_connect_timeout_ms =
        static_cast<int>(args.GetInt("shard-connect-timeout-ms", 2000));
    options.shard_io_timeout_ms =
        static_cast<int>(args.GetInt("shard-io-timeout-ms", 30000));
    options.shard_connect_attempts =
        static_cast<int>(args.GetInt("shard-connect-attempts", 3));
  }
  InstallShutdownHandlers();
  options.shutdown = &g_shutdown;

  const std::string shard_listen = args.GetString("shard-listen", "");
  if (!shard_listen.empty()) {
    if (options.shards != 1 || !shard_workers.empty()) {
      std::fprintf(stderr,
                   "--shard-listen is a worker mode; it conflicts with "
                   "--shards/--shard-workers/--shard-remote\n");
      return 1;
    }
    Endpoint endpoint;
    std::string error;
    if (!ParseEndpoint(shard_listen, &endpoint, &error, "0.0.0.0",
                       /*allow_port_zero=*/true)) {
      std::fprintf(stderr, "--shard-listen: %s\n", error.c_str());
      return 1;
    }
    const int listen_fd = ListenTcp(endpoint, /*backlog=*/64, &error);
    if (listen_fd < 0) {
      std::fprintf(stderr, "--shard-listen: %s\n", error.c_str());
      return 1;
    }
    // Connections are served serially, one thread per connection, against
    // ONE shared pipeline: the corpus a router loaded survives its
    // reconnects, which is what makes `digests` + `load_delta` re-syncs
    // cheap. Concurrent connections are safe — the store and engine are
    // thread-safe — and each connection's own request stream stays ordered.
    options.pipelined = false;
    RequestPipeline pipeline(options);
    // Announced on stderr (stdout belongs to nothing in this mode); tests
    // bind port 0 and parse this line for the ephemeral port.
    std::fprintf(stderr, "knnshap_serve: shard worker listening on %s:%d\n",
                 endpoint.host.c_str(), BoundPort(listen_fd));
    std::fflush(stderr);
    std::mutex conn_mutex;
    std::vector<int> open_fds;
    std::vector<std::thread> handlers;
    while (!g_shutdown.load(std::memory_order_relaxed)) {
      const int fd = AcceptTcp(listen_fd);
      if (fd < 0) {
        if (errno == EINTR && !g_shutdown.load(std::memory_order_relaxed)) {
          continue;
        }
        break;
      }
      {
        std::lock_guard<std::mutex> lock(conn_mutex);
        open_fds.push_back(fd);
      }
      handlers.emplace_back([fd, &pipeline, &conn_mutex, &open_fds] {
        FdInBuf in_buf(fd);
        FdOutBuf out_buf(fd);
        std::istream in(&in_buf);
        std::ostream out(&out_buf);
        pipeline.Run(in, out);
        out.flush();
        {
          std::lock_guard<std::mutex> lock(conn_mutex);
          const auto it = std::find(open_fds.begin(), open_fds.end(), fd);
          if (it != open_fds.end()) open_fds.erase(it);
        }
        close(fd);
      });
    }
    close(listen_fd);
    {
      // Unblock handler threads still waiting on a read so join() cannot
      // hang past a SIGTERM: shutdown() forces their next read to EOF.
      std::lock_guard<std::mutex> lock(conn_mutex);
      for (int fd : open_fds) shutdown(fd, SHUT_RDWR);
    }
    for (auto& handler : handlers) handler.join();
    if (!metrics_file.empty() && pipeline.Metrics() != nullptr) {
      std::ofstream out(metrics_file);
      if (!out) {
        std::fprintf(stderr, "cannot open --metrics-file '%s'\n",
                     metrics_file.c_str());
        return 1;
      }
      out << pipeline.Metrics()->ToJson().Dump() << '\n';
    }
    return 0;
  }

  RequestPipeline pipeline(options);
  pipeline.Run(std::cin, std::cout);
  if (!metrics_file.empty() && pipeline.Metrics() != nullptr) {
    std::ofstream out(metrics_file);
    if (!out) {
      std::fprintf(stderr, "cannot open --metrics-file '%s'\n",
                   metrics_file.c_str());
      return 1;
    }
    out << pipeline.Metrics()->ToJson().Dump() << '\n';
  }
  return 0;
}
