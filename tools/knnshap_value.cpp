// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// knnshap_value — command-line data valuation over CSV feature dumps,
// served through the ValuationEngine (see src/engine/).
//
//   knnshap_value --train=train.csv --test=test.csv --out=values.csv
//                 [--task=classification|regression]
//                 [--method=exact|truncated|lsh|mc|weighted|weighted-fast|
//                  regression]
//                 [--k=5] [--epsilon=0.1] [--delta=0.1] [--weighted]
//                 [--seed=N] [--serial] [--no-cache]
//
// CSV format: one point per row, features first, label/target in the last
// column (a header row is auto-detected). Values are written as
// index,value[,label] rows.
//
//   knnshap_value --methods    lists the registered valuation methods.
//   knnshap_value --describe[=method]
//                              prints each method's declarative schema —
//                              typed hyperparameters with defaults, valid
//                              ranges and docs — generated from the same
//                              MethodSchema the serve pipeline validates
//                              against, so the two surfaces cannot drift.
//   knnshap_value --selftest   exercises the full pipeline on generated
//                              data and exits nonzero on any mismatch.
//
// Hyperparameter flags (--k, --epsilon, --delta, --seed, --metric,
// --kernel, ...) are parsed and validated through the method's schema: an
// out-of-range value answers the identical structured error the serve
// pipeline returns for the same JSON field, naming the offending flag.

#include <cmath>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>

#include "core/exact_knn_shapley.h"
#include "core/wknn_shapley.h"
#include "dataset/io.h"
#include "dataset/synthetic.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "engine/schema.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/status.h"

using namespace knnshap;

namespace {

int Usage(const char* msg) {
  std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: knnshap_value --train=T.csv --test=E.csv --out=V.csv\n"
               "       [--task=classification|regression] [--method=exact|"
               "exact-corrected|truncated|lsh|mc|weighted|weighted-fast|"
               "regression]\n"
               "       [--weighted] [--serial] [--no-cache]\n"
               "       [hyperparameter flags per method schema; see --describe]\n"
               "       knnshap_value --methods\n"
               "       knnshap_value --describe[=method]\n"
               "       knnshap_value --selftest\n");
  return 2;
}

/// Structured parameter error: same code/field/message the serve pipeline
/// answers for the identical offense, rendered for stderr.
int ParamError(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

/// Resolves the method the flag surface selects: --weighted wins over
/// --method, and --task=regression *without an explicit --method* selects
/// the regression method. This deliberately diverges from the pre-schema
/// dispatch, which silently discarded an explicit --method whenever
/// --task=regression was set: an explicit method is now honored, and an
/// incompatible task answers the structured 'task' error instead.
std::string ResolveMethod(const CommandLine& cli) {
  if (cli.Has("weighted")) return "weighted";
  if (cli.GetString("task", "classification") == "regression" &&
      !cli.Has("method")) {
    return "regression";
  }
  return cli.GetString("method", "exact");
}

/// Maps the CLI surface onto an engine request; hyperparameters are parsed
/// and validated through the method's schema (identical checks — and
/// identical structured errors — to the serve pipeline's JSON fields).
Status BuildRequest(const CommandLine& cli, ValuationRequest* request) {
  // Strict flags, mirroring the serve pipeline's unknown-field rejection:
  // anything that is neither a tool flag nor a schema parameter is a typo
  // answered with the offending name, not silently ignored.
  static const char* kToolFlags[] = {"train",  "test",     "out",   "task",
                                     "method", "weighted", "serial", "no-cache",
                                     "selftest", "methods", "describe", "help"};
  for (const std::string& name : cli.Names()) {
    bool known = FindParamSpec(name) != nullptr;
    for (const char* flag : kToolFlags) known = known || name == flag;
    if (!known) {
      return Status::InvalidArgument(
          "unknown flag '--" + name + "' (see --describe for the schema flags)",
          name);
    }
  }

  request->method = ResolveMethod(cli);
  auto schema = ValuatorRegistry::Global().Schema(request->method);
  if (schema == nullptr) {
    return ValuatorRegistry::Global().UnknownMethodError(request->method);
  }
  // The legacy --weighted flag means "the weighted method with the
  // inverse-distance kernel", and maps --task=classification/regression
  // onto the weighted tasks before the schema validates "task" (the
  // canonical names --task=weighted-* work directly).
  std::string task_override;
  const std::string* override_ptr = nullptr;
  if (cli.Has("weighted")) {
    request->params.weights.kernel = WeightKernel::kInverseDistance;
    const std::string task = cli.GetString("task", "classification");
    if (task == "classification" || task == "regression") {
      task_override = "weighted-" + task;
      override_ptr = &task_override;
    }
  }
  Status status = ApplyCliParams(*schema, cli, &request->params, override_ptr);
  if (!status.ok()) return status;
  request->parallel = !cli.Has("serial");
  request->use_cache = !cli.Has("no-cache");
  return Status::Ok();
}

int ListMethods() {
  std::printf("registered valuation methods:\n");
  for (const auto& info : ValuatorRegistry::Global().Methods()) {
    std::printf("  %-10s  %s\n", info.name.c_str(), info.description.c_str());
  }
  return 0;
}

int DescribeMethods(const CommandLine& cli) {
  auto& registry = ValuatorRegistry::Global();
  const std::string which = cli.GetString("describe", "1");
  if (which != "1") {  // --describe=method
    auto schema = registry.Schema(which);
    if (schema == nullptr) {
      return ParamError(registry.UnknownMethodError(which));
    }
    std::printf("%s", FormatSchemaHelp(*schema).c_str());
    return 0;
  }
  for (const auto& schema : registry.Schemas()) {
    std::printf("%s\n", FormatSchemaHelp(*schema).c_str());
  }
  return 0;
}

int SelfTest() {
  // Generate, save, reload, value with every method, verify agreement.
  Rng rng(5);
  Dataset data = MakeMnistLike(400, &rng);
  Rng srng(6);
  auto split = SplitTrainTest(data, 0.1, &srng);
  std::string dir = "/tmp";
  std::string train_path = dir + "/knnshap_selftest_train.csv";
  std::string test_path = dir + "/knnshap_selftest_test.csv";
  if (!SaveCsvDataset(split.train, train_path) ||
      !SaveCsvDataset(split.test, test_path)) {
    std::fprintf(stderr, "selftest: save failed\n");
    return 1;
  }
  auto train_load = LoadCsvDataset(train_path, CsvTarget::kLabel);
  auto test_load = LoadCsvDataset(test_path, CsvTarget::kLabel);
  if (!train_load.ok() || !test_load.ok() || train_load.rows_skipped ||
      test_load.rows_skipped) {
    std::fprintf(stderr, "selftest: reload failed\n");
    return 1;
  }
  auto train = std::make_shared<const Dataset>(std::move(train_load.data));
  auto test = std::make_shared<const Dataset>(std::move(test_load.data));

  ValuationEngine engine;
  ValuationRequest request;
  request.method = "exact";
  request.params.k = 3;
  request.train = train;
  request.test = test;

  ValuationReport exact = engine.Value(request);
  if (!exact.ok()) {
    std::fprintf(stderr, "selftest: exact failed: %s\n",
                 exact.status.ToString().c_str());
    return 1;
  }
  // Engine output must be bit-identical to the pre-engine entry point.
  std::vector<double> legacy = ExactKnnShapley(*train, *test, 3);
  if (exact.values != legacy) {
    std::fprintf(stderr, "selftest: engine changed exact values\n");
    return 1;
  }
  // float32 round-trip through text: tolerate tiny differences.
  std::vector<double> reference = ExactKnnShapley(split.train, split.test, 3);
  if (MaxAbsDifference(exact.values, reference) > 1e-4) {
    std::fprintf(stderr, "selftest: CSV round-trip changed exact values\n");
    return 1;
  }

  // A repeat of the same request must be a cache hit with bitwise-equal
  // values.
  ValuationReport repeat = engine.Value(request);
  if (!repeat.cache_hit || repeat.values != exact.values) {
    std::fprintf(stderr, "selftest: cache repeat mismatch (hit=%d)\n",
                 repeat.cache_hit ? 1 : 0);
    return 1;
  }

  // Unknown methods are errors, not aborts.
  ValuationRequest bogus = request;
  bogus.method = "not-a-method";
  if (engine.Value(bogus).ok()) {
    std::fprintf(stderr, "selftest: unknown method not rejected\n");
    return 1;
  }

  for (const char* method : {"truncated", "lsh", "mc"}) {
    ValuationRequest approx_request = request;
    approx_request.method = method;
    approx_request.params.seed = std::string(method) == "mc" ? 1 : 7;
    ValuationReport approx = engine.Value(approx_request);
    if (!approx.ok()) {
      std::fprintf(stderr, "selftest: %s failed: %s\n", method,
                   approx.status.ToString().c_str());
      return 1;
    }
    double err = MaxAbsDifference(approx.values, exact.values);
    if (err > 0.12) {  // eps=0.1 plus retrieval slack
      std::fprintf(stderr, "selftest: %s error %.4f exceeds budget\n", method, err);
      return 1;
    }
  }
  // weighted-fast values a different (discretized weighted) game, so it is
  // checked against its own ground truth: the efficiency axiom — values
  // must sum to the mean discretized grand-coalition utility.
  {
    ValuationRequest fast_request = request;
    fast_request.method = "weighted-fast";
    fast_request.params.task = KnnTask::kWeightedClassification;
    fast_request.params.weights.kernel = WeightKernel::kInverseDistance;
    ValuationReport fast = engine.Value(fast_request);
    if (!fast.ok()) {
      std::fprintf(stderr, "selftest: weighted-fast failed: %s\n",
                   fast.status.ToString().c_str());
      return 1;
    }
    WknnShapleyOptions options;
    options.k = fast_request.params.k;
    options.weights = fast_request.params.weights;
    double grand_mean = 0.0;
    std::vector<int> everyone(train->Size());
    std::iota(everyone.begin(), everyone.end(), 0);
    for (size_t j = 0; j < test->Size(); ++j) {
      WknnQueryContext ctx = MakeWknnQueryContext(
          *train, test->features.Row(j), test->labels[j], options);
      grand_mean += WknnDiscretizedUtility(ctx, everyone, options.k);
    }
    grand_mean /= static_cast<double>(test->Size());
    const double total =
        std::accumulate(fast.values.begin(), fast.values.end(), 0.0);
    if (std::fabs(total - grand_mean) > 1e-9) {
      std::fprintf(stderr,
                   "selftest: weighted-fast efficiency violated "
                   "(total %.12f vs grand %.12f)\n",
                   total, grand_mean);
      return 1;
    }
  }
  std::remove(train_path.c_str());
  std::remove(test_path.c_str());
  CacheCounters counters = engine.CacheStats();
  std::printf("selftest: all methods within budget (cache %llu hit / %llu miss)\n",
              static_cast<unsigned long long>(counters.hits),
              static_cast<unsigned long long>(counters.misses));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  if (cli.Has("selftest")) return SelfTest();
  if (cli.Has("methods")) return ListMethods();
  if (cli.Has("describe") || cli.Has("help")) return DescribeMethods(cli);

  // Hyperparameters are validated before any file I/O, so a bad --epsilon
  // answers its structured error (identical to the serve pipeline's) even
  // when the CSVs do not exist yet.
  ValuationRequest request;
  if (Status status = BuildRequest(cli, &request); !status.ok()) {
    return ParamError(status);
  }

  std::string train_path = cli.GetString("train", "");
  std::string test_path = cli.GetString("test", "");
  std::string out_path = cli.GetString("out", "");
  if (train_path.empty() || test_path.empty() || out_path.empty()) {
    return Usage("--train, --test and --out are required");
  }
  // The CSV target follows the *validated* effective task (so the
  // canonical --task=weighted-regression loads targets exactly like the
  // legacy --weighted --task=regression spelling) — the same derivation
  // the serve pipeline uses for inline query rows.
  const bool regression_task =
      request.params.task == KnnTask::kRegression ||
      request.params.task == KnnTask::kWeightedRegression;
  CsvTarget target = regression_task ? CsvTarget::kTarget : CsvTarget::kLabel;

  auto train_load = LoadCsvDataset(train_path, target);
  if (!train_load.ok()) return ParamError(train_load.status);
  auto test_load = LoadCsvDataset(test_path, target);
  if (!test_load.ok()) return ParamError(test_load.status);
  std::printf("train: %zu rows (%zu skipped), test: %zu rows, dim %zu\n",
              train_load.rows_parsed, train_load.rows_skipped, test_load.rows_parsed,
              train_load.data.Dim());

  request.train = std::make_shared<const Dataset>(std::move(train_load.data));
  request.test = std::make_shared<const Dataset>(std::move(test_load.data));

  ValuationEngine engine;
  ValuationReport report = engine.Value(request);
  if (!report.ok()) return ParamError(report.status);
  std::printf("%s\n", report.FormatStatusLine().c_str());

  if (!SaveValuesCsv(report.values, *request.train, out_path)) {
    return Usage(("cannot write " + out_path).c_str());
  }
  double total =
      std::accumulate(report.values.begin(), report.values.end(), 0.0);
  std::printf("wrote %s (sum of values = %.6f)\n", out_path.c_str(), total);
  return 0;
}
