// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// knnshap_value — command-line data valuation over CSV feature dumps.
//
//   knnshap_value --train=train.csv --test=test.csv --out=values.csv
//                 [--task=classification|regression]
//                 [--method=exact|truncated|lsh|mc]
//                 [--k=5] [--epsilon=0.1] [--delta=0.1] [--weighted]
//
// CSV format: one point per row, features first, label/target in the last
// column (a header row is auto-detected). Values are written as
// index,value[,label] rows.
//
//   knnshap_value --selftest   exercises the full pipeline on generated
//                              data and exits nonzero on any mismatch.

#include <cstdio>
#include <numeric>
#include <string>

#include "core/exact_knn_shapley.h"
#include "core/improved_mc.h"
#include "core/knn_regression_shapley.h"
#include "core/lsh_knn_shapley.h"
#include "core/streaming_valuator.h"
#include "core/weighted_knn_shapley.h"
#include "dataset/io.h"
#include "dataset/synthetic.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace knnshap;

namespace {

int Usage(const char* msg) {
  std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: knnshap_value --train=T.csv --test=E.csv --out=V.csv\n"
               "       [--task=classification|regression] [--method=exact|"
               "truncated|lsh|mc]\n"
               "       [--k=5] [--epsilon=0.1] [--delta=0.1] [--weighted]\n"
               "       knnshap_value --selftest\n");
  return 2;
}

std::vector<double> Compute(const Dataset& train, const Dataset& test,
                            const std::string& task, const std::string& method,
                            int k, double epsilon, double delta, bool weighted) {
  if (weighted) {
    WeightedShapleyOptions options;
    options.k = k;
    options.weights.kernel = WeightKernel::kInverseDistance;
    options.task = task == "regression" ? KnnTask::kWeightedRegression
                                        : KnnTask::kWeightedClassification;
    return ExactWeightedKnnShapley(train, test, options);
  }
  if (task == "regression") {
    return ExactKnnRegressionShapley(train, test, k);
  }
  if (method == "exact") {
    return ExactKnnShapley(train, test, k);
  }
  if (method == "truncated") {
    return TruncatedKnnShapley(train, test, k, epsilon);
  }
  if (method == "lsh") {
    // The StreamingValuator bundles contrast estimation, normalization and
    // Theorem-3 tuning; feeding it the test set reproduces LshKnnShapley.
    StreamingValuatorOptions options;
    options.k = k;
    options.epsilon = epsilon;
    options.delta = delta;
    StreamingValuator valuator(train, options);
    for (size_t j = 0; j < test.Size(); ++j) {
      valuator.ProcessQuery(test.features.Row(j), test.labels[j]);
    }
    return valuator.Values();
  }
  if (method == "mc") {
    IncrementalKnnUtility utility(&train, &test, k, KnnTask::kClassification);
    ImprovedMcOptions options;
    options.k = k;
    options.epsilon = epsilon;
    options.delta = delta;
    options.utility_range = 1.0 / k;
    return ImprovedMcShapley(&utility, options).shapley;
  }
  std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
  std::exit(2);
}

int SelfTest() {
  // Generate, save, reload, value with every method, verify agreement.
  Rng rng(5);
  Dataset data = MakeMnistLike(400, &rng);
  Rng srng(6);
  auto split = SplitTrainTest(data, 0.1, &srng);
  std::string dir = "/tmp";
  std::string train_path = dir + "/knnshap_selftest_train.csv";
  std::string test_path = dir + "/knnshap_selftest_test.csv";
  if (!SaveCsvDataset(split.train, train_path) ||
      !SaveCsvDataset(split.test, test_path)) {
    std::fprintf(stderr, "selftest: save failed\n");
    return 1;
  }
  auto train = LoadCsvDataset(train_path, CsvTarget::kLabel);
  auto test = LoadCsvDataset(test_path, CsvTarget::kLabel);
  if (!train.ok() || !test.ok() || train.rows_skipped || test.rows_skipped) {
    std::fprintf(stderr, "selftest: reload failed\n");
    return 1;
  }
  auto exact = Compute(train.data, test.data, "classification", "exact", 3, 0.1,
                       0.1, false);
  auto reference = ExactKnnShapley(split.train, split.test, 3);
  // float32 round-trip through text: tolerate tiny differences.
  if (MaxAbsDifference(exact, reference) > 1e-4) {
    std::fprintf(stderr, "selftest: CSV round-trip changed exact values\n");
    return 1;
  }
  for (const char* method : {"truncated", "lsh", "mc"}) {
    auto approx = Compute(train.data, test.data, "classification", method, 3,
                          0.1, 0.1, false);
    double err = MaxAbsDifference(approx, exact);
    if (err > 0.12) {  // eps=0.1 plus retrieval slack
      std::fprintf(stderr, "selftest: %s error %.4f exceeds budget\n", method, err);
      return 1;
    }
  }
  std::remove(train_path.c_str());
  std::remove(test_path.c_str());
  std::printf("selftest: all methods within budget\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  if (cli.Has("selftest")) return SelfTest();

  std::string train_path = cli.GetString("train", "");
  std::string test_path = cli.GetString("test", "");
  std::string out_path = cli.GetString("out", "");
  if (train_path.empty() || test_path.empty() || out_path.empty()) {
    return Usage("--train, --test and --out are required");
  }
  std::string task = cli.GetString("task", "classification");
  std::string method = cli.GetString("method", "exact");
  int k = cli.GetInt("k", 5);
  double epsilon = cli.GetDouble("epsilon", 0.1);
  double delta = cli.GetDouble("delta", 0.1);
  bool weighted = cli.Has("weighted");
  CsvTarget target = task == "regression" ? CsvTarget::kTarget : CsvTarget::kLabel;

  auto train = LoadCsvDataset(train_path, target);
  if (!train.ok()) return Usage(train.error.c_str());
  auto test = LoadCsvDataset(test_path, target);
  if (!test.ok()) return Usage(test.error.c_str());
  std::printf("train: %zu rows (%zu skipped), test: %zu rows, dim %zu\n",
              train.rows_parsed, train.rows_skipped, test.rows_parsed,
              train.data.Dim());

  WallTimer timer;
  auto values =
      Compute(train.data, test.data, task, method, k, epsilon, delta, weighted);
  std::printf("%s/%s valuation of %zu points in %.3fs\n", task.c_str(),
              method.c_str(), values.size(), timer.Seconds());

  if (!SaveValuesCsv(values, train.data, out_path)) {
    return Usage(("cannot write " + out_path).c_str());
  }
  double total = std::accumulate(values.begin(), values.end(), 0.0);
  std::printf("wrote %s (sum of values = %.6f)\n", out_path.c_str(), total);
  return 0;
}
