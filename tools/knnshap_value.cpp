// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// knnshap_value — command-line data valuation over CSV feature dumps,
// served through the ValuationEngine (see src/engine/).
//
//   knnshap_value --train=train.csv --test=test.csv --out=values.csv
//                 [--task=classification|regression]
//                 [--method=exact|truncated|lsh|mc|weighted|regression]
//                 [--k=5] [--epsilon=0.1] [--delta=0.1] [--weighted]
//                 [--seed=N] [--serial] [--no-cache]
//
// CSV format: one point per row, features first, label/target in the last
// column (a header row is auto-detected). Values are written as
// index,value[,label] rows.
//
//   knnshap_value --methods    lists the registered valuation methods.
//   knnshap_value --selftest   exercises the full pipeline on generated
//                              data and exits nonzero on any mismatch.

#include <cstdio>
#include <memory>
#include <numeric>
#include <string>

#include "core/exact_knn_shapley.h"
#include "dataset/io.h"
#include "dataset/synthetic.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "util/cli.h"
#include "util/stats.h"

using namespace knnshap;

namespace {

int Usage(const char* msg) {
  std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: knnshap_value --train=T.csv --test=E.csv --out=V.csv\n"
               "       [--task=classification|regression] [--method=exact|"
               "truncated|lsh|mc|weighted|regression]\n"
               "       [--k=5] [--epsilon=0.1] [--delta=0.1] [--weighted]\n"
               "       [--seed=N] [--serial] [--no-cache]\n"
               "       knnshap_value --methods\n"
               "       knnshap_value --selftest\n");
  return 2;
}

/// Maps the CLI surface onto an engine request. The legacy flags are kept:
/// --weighted wins over --method, and --task=regression without --weighted
/// selects the regression method, mirroring the pre-engine dispatch.
ValuationRequest BuildRequest(const CommandLine& cli,
                              std::shared_ptr<const Dataset> train,
                              std::shared_ptr<const Dataset> test) {
  ValuationRequest request;
  std::string task = cli.GetString("task", "classification");
  std::string method = cli.GetString("method", "exact");
  bool weighted = cli.Has("weighted");

  if (weighted) {
    request.method = "weighted";
    request.params.task = task == "regression" ? KnnTask::kWeightedRegression
                                               : KnnTask::kWeightedClassification;
    request.params.weights.kernel = WeightKernel::kInverseDistance;
  } else if (task == "regression") {
    request.method = "regression";
    request.params.task = KnnTask::kRegression;
  } else {
    request.method = method;
  }

  request.params.k = cli.GetInt("k", 5);
  request.params.epsilon = cli.GetDouble("epsilon", 0.1);
  request.params.delta = cli.GetDouble("delta", 0.1);
  // Method-specific legacy seeds: the MC estimator defaulted to
  // ImprovedMcOptions::seed == 1, the LSH pipeline to
  // StreamingValuatorOptions::seed == 7.
  uint64_t default_seed = request.method == "mc" ? 1 : 7;
  request.params.seed =
      static_cast<uint64_t>(cli.GetInt("seed", static_cast<int>(default_seed)));
  request.train = std::move(train);
  request.test = std::move(test);
  request.parallel = !cli.Has("serial");
  request.use_cache = !cli.Has("no-cache");
  return request;
}

int ListMethods() {
  std::printf("registered valuation methods:\n");
  for (const auto& info : ValuatorRegistry::Global().Methods()) {
    std::printf("  %-10s  %s\n", info.name.c_str(), info.description.c_str());
  }
  return 0;
}

int SelfTest() {
  // Generate, save, reload, value with every method, verify agreement.
  Rng rng(5);
  Dataset data = MakeMnistLike(400, &rng);
  Rng srng(6);
  auto split = SplitTrainTest(data, 0.1, &srng);
  std::string dir = "/tmp";
  std::string train_path = dir + "/knnshap_selftest_train.csv";
  std::string test_path = dir + "/knnshap_selftest_test.csv";
  if (!SaveCsvDataset(split.train, train_path) ||
      !SaveCsvDataset(split.test, test_path)) {
    std::fprintf(stderr, "selftest: save failed\n");
    return 1;
  }
  auto train_load = LoadCsvDataset(train_path, CsvTarget::kLabel);
  auto test_load = LoadCsvDataset(test_path, CsvTarget::kLabel);
  if (!train_load.ok() || !test_load.ok() || train_load.rows_skipped ||
      test_load.rows_skipped) {
    std::fprintf(stderr, "selftest: reload failed\n");
    return 1;
  }
  auto train = std::make_shared<const Dataset>(std::move(train_load.data));
  auto test = std::make_shared<const Dataset>(std::move(test_load.data));

  ValuationEngine engine;
  ValuationRequest request;
  request.method = "exact";
  request.params.k = 3;
  request.train = train;
  request.test = test;

  ValuationReport exact = engine.Value(request);
  if (!exact.ok()) {
    std::fprintf(stderr, "selftest: exact failed: %s\n", exact.error.c_str());
    return 1;
  }
  // Engine output must be bit-identical to the pre-engine entry point.
  std::vector<double> legacy = ExactKnnShapley(*train, *test, 3);
  if (exact.values != legacy) {
    std::fprintf(stderr, "selftest: engine changed exact values\n");
    return 1;
  }
  // float32 round-trip through text: tolerate tiny differences.
  std::vector<double> reference = ExactKnnShapley(split.train, split.test, 3);
  if (MaxAbsDifference(exact.values, reference) > 1e-4) {
    std::fprintf(stderr, "selftest: CSV round-trip changed exact values\n");
    return 1;
  }

  // A repeat of the same request must be a cache hit with bitwise-equal
  // values.
  ValuationReport repeat = engine.Value(request);
  if (!repeat.cache_hit || repeat.values != exact.values) {
    std::fprintf(stderr, "selftest: cache repeat mismatch (hit=%d)\n",
                 repeat.cache_hit ? 1 : 0);
    return 1;
  }

  // Unknown methods are errors, not aborts.
  ValuationRequest bogus = request;
  bogus.method = "not-a-method";
  if (engine.Value(bogus).ok()) {
    std::fprintf(stderr, "selftest: unknown method not rejected\n");
    return 1;
  }

  for (const char* method : {"truncated", "lsh", "mc"}) {
    ValuationRequest approx_request = request;
    approx_request.method = method;
    approx_request.params.seed = std::string(method) == "mc" ? 1 : 7;
    ValuationReport approx = engine.Value(approx_request);
    if (!approx.ok()) {
      std::fprintf(stderr, "selftest: %s failed: %s\n", method,
                   approx.error.c_str());
      return 1;
    }
    double err = MaxAbsDifference(approx.values, exact.values);
    if (err > 0.12) {  // eps=0.1 plus retrieval slack
      std::fprintf(stderr, "selftest: %s error %.4f exceeds budget\n", method, err);
      return 1;
    }
  }
  std::remove(train_path.c_str());
  std::remove(test_path.c_str());
  CacheCounters counters = engine.CacheStats();
  std::printf("selftest: all methods within budget (cache %llu hit / %llu miss)\n",
              static_cast<unsigned long long>(counters.hits),
              static_cast<unsigned long long>(counters.misses));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  if (cli.Has("selftest")) return SelfTest();
  if (cli.Has("methods")) return ListMethods();

  std::string train_path = cli.GetString("train", "");
  std::string test_path = cli.GetString("test", "");
  std::string out_path = cli.GetString("out", "");
  if (train_path.empty() || test_path.empty() || out_path.empty()) {
    return Usage("--train, --test and --out are required");
  }
  std::string task = cli.GetString("task", "classification");
  CsvTarget target = task == "regression" ? CsvTarget::kTarget : CsvTarget::kLabel;

  auto train_load = LoadCsvDataset(train_path, target);
  if (!train_load.ok()) return Usage(train_load.error.c_str());
  auto test_load = LoadCsvDataset(test_path, target);
  if (!test_load.ok()) return Usage(test_load.error.c_str());
  std::printf("train: %zu rows (%zu skipped), test: %zu rows, dim %zu\n",
              train_load.rows_parsed, train_load.rows_skipped, test_load.rows_parsed,
              train_load.data.Dim());

  auto train = std::make_shared<const Dataset>(std::move(train_load.data));
  auto test = std::make_shared<const Dataset>(std::move(test_load.data));
  ValuationRequest request = BuildRequest(cli, train, test);

  ValuationEngine engine;
  ValuationReport report = engine.Value(request);
  if (!report.ok()) return Usage(report.error.c_str());
  std::printf("%s\n", report.FormatStatusLine().c_str());

  if (!SaveValuesCsv(report.values, *train, out_path)) {
    return Usage(("cannot write " + out_path).c_str());
  }
  double total =
      std::accumulate(report.values.begin(), report.values.end(), 0.0);
  std::printf("wrote %s (sum of values = %.6f)\n", out_path.c_str(), total);
  return 0;
}
