// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Data debugging / poisoning defense (Sec 7, "Implications of
// Task-Specific Data Valuation"): adversarially or accidentally mislabeled
// training points contribute little — usually negatively — to the KNN
// utility, so ranking points by Shapley value surfaces them.
//
// This example flips a fraction of labels, computes exact SVs, and
// reports detection precision/recall when flagging the lowest-valued
// points, plus the accuracy recovered by dropping them.

#include <algorithm>
#include <cstdio>

#include "core/exact_knn_shapley.h"
#include "dataset/synthetic.h"
#include "knn/knn_classifier.h"
#include "market/valuation_report.h"
#include "util/random.h"

using namespace knnshap;

int main() {
  const double flip_fraction = 0.12;
  const int k = 5;

  Rng rng(21);
  SyntheticSpec spec;
  spec.num_classes = 4;
  spec.dim = 16;
  spec.size = 1500;
  spec.cluster_stddev = 0.18;
  Dataset data = MakeGaussianMixture(spec, &rng);
  Rng split_rng(22);
  TrainTestSplit split = SplitTrainTest(data, 0.2, &split_rng);

  // Corrupt a random subset of the training labels.
  Rng flip_rng(23);
  size_t num_flipped = static_cast<size_t>(flip_fraction * split.train.Size());
  auto flipped = flip_rng.SampleWithoutReplacement(
      static_cast<int>(split.train.Size()), static_cast<int>(num_flipped));
  for (int idx : flipped) {
    int& label = split.train.labels[static_cast<size_t>(idx)];
    label = (label + 1 + static_cast<int>(flip_rng.NextIndex(3))) % 4;
  }
  std::vector<uint8_t> is_flipped(split.train.Size(), 0);
  for (int idx : flipped) is_flipped[static_cast<size_t>(idx)] = 1;

  KnnClassifier dirty_model(&split.train, k);
  double dirty_acc = dirty_model.Accuracy(split.test);
  std::printf("poisoned training set: %zu/%zu labels flipped; test accuracy %.3f\n",
              num_flipped, split.train.Size(), dirty_acc);

  // Value every training point and flag the bottom `num_flipped`.
  auto sv = ExactKnnShapley(split.train, split.test, k);
  auto suspects = BottomValued(sv, num_flipped);
  size_t hits = 0;
  for (const auto& s : suspects) hits += is_flipped[static_cast<size_t>(s.index)];
  double precision = static_cast<double>(hits) / static_cast<double>(suspects.size());
  double recall = static_cast<double>(hits) / static_cast<double>(num_flipped);
  std::printf("flagging the %zu lowest-valued points: precision %.3f, recall %.3f\n",
              num_flipped, precision, recall);

  // Drop the suspects and retrain.
  std::vector<int> keep;
  std::vector<uint8_t> drop(split.train.Size(), 0);
  for (const auto& s : suspects) drop[static_cast<size_t>(s.index)] = 1;
  for (size_t i = 0; i < split.train.Size(); ++i) {
    if (!drop[i]) keep.push_back(static_cast<int>(i));
  }
  Dataset cleaned = split.train.Subset(keep);
  KnnClassifier cleaned_model(&cleaned, k);
  double cleaned_acc = cleaned_model.Accuracy(split.test);
  std::printf("after dropping flagged points: test accuracy %.3f (%+0.3f)\n",
              cleaned_acc, cleaned_acc - dirty_acc);

  // Show the value gap that makes this work.
  double flipped_mean = 0.0, clean_mean = 0.0;
  size_t clean_count = split.train.Size() - num_flipped;
  for (size_t i = 0; i < split.train.Size(); ++i) {
    (is_flipped[i] ? flipped_mean : clean_mean) += sv[i];
  }
  std::printf("mean SV: mislabeled %.3e vs clean %.3e\n",
              flipped_mean / static_cast<double>(num_flipped),
              clean_mean / static_cast<double>(clean_count));
  return 0;
}
