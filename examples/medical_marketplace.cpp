// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// The paper's motivating scenario (Figure 1): a clinical-trial data
// marketplace. Patients upload medical records (several records each), a
// buyer pays for a KNN model trained on the pooled records, and an analyst
// provides the computation. The payment must be split fairly between the
// patients and the analyst.
//
// This example exercises the multi-data-per-curator extension (Theorem 8)
// and the composite data+computation game (Theorem 12), then maps Shapley
// values to dollars with an affine revenue model (Sec 7).

#include <cstdio>
#include <numeric>

#include "core/composite_game.h"
#include "core/multi_seller_shapley.h"
#include "dataset/owners.h"
#include "dataset/synthetic.h"
#include "market/payment.h"
#include "market/valuation_report.h"
#include "util/random.h"

using namespace knnshap;

int main() {
  // Synthetic "patient records": features resemble lab-test embeddings,
  // the label is a binary diagnosis. 40 patients contribute 5-15 records
  // each; the buyer evaluates on a held-out cohort.
  Rng rng(11);
  SyntheticSpec spec;
  spec.name = "clinical";
  spec.num_classes = 2;
  spec.dim = 24;
  spec.size = 400;
  spec.cluster_stddev = 0.35;
  Dataset records = MakeGaussianMixture(spec, &rng);
  Rng split_rng(12);
  TrainTestSplit split = SplitTrainTest(records, 0.15, &split_rng);

  const int num_patients = 40;
  Rng owner_rng(13);
  OwnerAssignment patients =
      OwnerAssignment::Random(split.train.Size(), num_patients, &owner_rng);
  std::printf("marketplace: %d patients, %zu records, %zu evaluation records\n",
              num_patients, split.train.Size(), split.test.Size());

  const int k = 3;

  // --- Data-only game: the full model utility is split among patients.
  MultiSellerShapleyOptions options;
  options.k = k;
  options.task = KnnTask::kClassification;
  std::vector<double> patient_sv =
      MultiSellerShapley(split.train, patients, split.test, options);

  // --- Composite game: the analyst is a player too (Theorem 12).
  CompositeShapleyResult composite = CompositeMultiSellerShapley(
      split.train, patients, split.test, k, KnnTask::kClassification);

  std::printf("\nmodel utility nu(I) = %.4f (mean per-test KNN likelihood)\n",
              composite.total_utility);
  std::printf("analyst share (composite game): %.4f (%.1f%% of total)\n",
              composite.analyst_value,
              100.0 * composite.analyst_value / composite.total_utility);

  // --- Monetary allocation: the buyer pays $10,000 per unit of utility.
  AffineRevenueModel revenue;
  revenue.slope = 10000.0;
  std::vector<double> all_players = composite.seller_values;
  all_players.push_back(composite.analyst_value);
  PaymentAllocation payments = AllocateRevenue(all_players, revenue);

  std::printf("\ntotal payout: $%.2f (analyst $%.2f)\n", payments.total,
              payments.payments.back());
  std::printf("\n%-9s %8s | %12s %12s\n", "patient", "records", "data-only $",
              "composite $");
  auto data_payments = AllocateRevenue(patient_sv, revenue);
  for (int p = 0; p < num_patients; ++p) {
    std::printf("%-9d %8zu | %12.2f %12.2f\n", p, patients.RowsOf(p).size(),
                data_payments.payments[static_cast<size_t>(p)],
                payments.payments[static_cast<size_t>(p)]);
  }

  // Sanity: both games distribute the full revenue they commit to.
  double data_total = std::accumulate(patient_sv.begin(), patient_sv.end(), 0.0);
  std::printf("\npatients' collective share: data-only %.4f vs composite %.4f "
              "(analyst absorbs the difference)\n",
              data_total,
              std::accumulate(composite.seller_values.begin(),
                              composite.seller_values.end(), 0.0));
  return 0;
}
