// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Streaming valuation (the motivation for the LSH method in Sec 3.1-3.2):
// in applications like document retrieval, test queries arrive one at a
// time and every training point's value must be updated on the fly —
// sorting the whole training set per query is too slow. StreamingValuator
// retrieves only K* = max(K, 1/eps) neighbors per query (Theorem 2) via a
// Theorem-3-tuned LSH index and touches nothing else.
//
// This example streams queries through all three retrieval backends and
// compares throughput and final values against the exact batch algorithm.

#include <cstdio>

#include "core/exact_knn_shapley.h"
#include "core/streaming_valuator.h"
#include "dataset/synthetic.h"
#include "market/valuation_report.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace knnshap;

int main() {
  const int k = 2;
  const double eps = 0.1;
  const size_t n = 50000;
  const size_t num_queries = 200;

  // Corpus and queries come from one mixture instance (held-out rows).
  // 15% label noise: on perfectly label-pure clusters every point's SV is
  // exactly 1/N (the Theorem-1 closed form collapses), which would make
  // the demo's ranking vacuous; noise is also what real corpora look like.
  SyntheticSpec spec;
  spec.name = "yahoo10m-like";
  spec.num_classes = 10;
  spec.dim = 64;
  spec.size = n + num_queries;
  spec.cluster_stddev = 0.055;
  spec.label_noise = 0.15;
  Rng rng(31);
  Dataset all = MakeGaussianMixture(spec, &rng);
  std::vector<int> corpus_rows, query_rows;
  for (size_t i = 0; i < n; ++i) corpus_rows.push_back(static_cast<int>(i));
  for (size_t i = 0; i < num_queries; ++i) {
    query_rows.push_back(static_cast<int>(n + i));
  }
  Dataset corpus = all.Subset(corpus_rows);
  Dataset queries = all.Subset(query_rows);
  std::printf("corpus: %zu points; %zu streaming queries; K=%d, eps=%.2f\n", n,
              num_queries, k, eps);

  // Reference: the exact batch algorithm over the same queries.
  WallTimer exact_timer;
  auto exact = ExactKnnShapley(corpus, queries, k, /*parallel=*/false);
  double exact_qps = static_cast<double>(num_queries) / exact_timer.Seconds();
  std::printf("exact batch reference: %.1f queries/s\n\n", exact_qps);

  struct Backend {
    const char* name;
    RetrievalBackend backend;
  };
  const Backend backends[] = {
      {"brute-force", RetrievalBackend::kBruteForce},
      {"kd-tree", RetrievalBackend::kKdTree},
      {"lsh", RetrievalBackend::kLsh},
  };
  std::printf("%-12s %10s %10s %14s %16s\n", "backend", "build(s)", "qps",
              "vs exact", "max|err| (<=eps)");
  std::vector<double> lsh_values;
  for (const auto& [name, backend] : backends) {
    StreamingValuatorOptions options;
    options.k = k;
    options.epsilon = eps;
    options.backend = backend;
    WallTimer build_timer;
    StreamingValuator valuator(corpus, options);
    double build_s = build_timer.Seconds();
    WallTimer stream_timer;
    for (size_t q = 0; q < num_queries; ++q) {
      valuator.ProcessQuery(queries.features.Row(q), queries.labels[q]);
    }
    double qps = static_cast<double>(num_queries) / stream_timer.Seconds();
    double err = MaxAbsDifference(valuator.Values(), exact);
    std::printf("%-12s %10.2f %10.1f %13.1fx %16.5f\n", name, build_s, qps,
                qps / exact_qps, err);
    if (backend == RetrievalBackend::kLsh) {
      lsh_values = valuator.Values();
      std::printf("  (index: contrast %.2f -> %zu tables x %zu projections)\n",
                  valuator.Contrast(), valuator.LshConfiguration()->num_tables,
                  valuator.LshConfiguration()->num_projections);
    }
  }

  std::printf("\n%s", FormatRanking(TopValued(lsh_values, 5),
                                    "top corpus documents by streamed value")
                          .c_str());
  return 0;
}
