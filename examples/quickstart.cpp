// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Quickstart: value every training point of a KNN classifier, exactly, in
// O(N log N) per test point (Theorem 1 of Jia et al., VLDB 2019).
//
//   $ ./quickstart
//
// Walks through the typical flow: make (or load) a dataset, compute exact
// Shapley values, inspect the ranking, and verify group rationality.

#include <cstdio>
#include <numeric>

#include "core/exact_knn_shapley.h"
#include "core/utility.h"
#include "dataset/synthetic.h"
#include "market/valuation_report.h"
#include "util/random.h"

using namespace knnshap;

int main() {
  // 1. A dataset. Real applications load feature vectors (e.g. CNN
  //    embeddings) into Dataset::features and labels into Dataset::labels;
  //    here we synthesize a 10-class mixture resembling deep features,
  //    with 8% label noise so the value ranking has something to find.
  SyntheticSpec spec;
  spec.num_classes = 10;
  spec.dim = 64;
  spec.size = 2000;
  spec.cluster_stddev = 0.12;
  spec.label_noise = 0.08;
  Rng rng(7);
  Dataset data = MakeGaussianMixture(spec, &rng);
  Rng split_rng(8);
  TrainTestSplit split = SplitTrainTest(data, /*test_fraction=*/0.05, &split_rng);
  std::printf("train: %zu points, test: %zu points, dim: %zu\n",
              split.train.Size(), split.test.Size(), split.train.Dim());

  // 2. Exact Shapley values of all training points under the KNN utility
  //    (Eq 5/8), averaged over the test set. K is the KNN hyperparameter.
  const int k = 5;
  std::vector<double> values = ExactKnnShapley(split.train, split.test, k);

  // 3. Inspect: the most and least valuable contributions.
  std::printf("\n%s", FormatRanking(TopValued(values, 5), "highest-valued points").c_str());
  std::printf("\n%s", FormatRanking(BottomValued(values, 5), "lowest-valued points").c_str());

  // 4. The values form an exact revenue split: they sum to the utility of
  //    training on everything (group rationality).
  KnnSubsetUtility utility(&split.train, &split.test, k, KnnTask::kClassification);
  double total = std::accumulate(values.begin(), values.end(), 0.0);
  std::printf("\nsum of values = %.6f; model utility nu(I) = %.6f\n", total,
              utility.GrandValue());

  ValueSummary summary = Summarize(values);
  std::printf("mean=%.2e  min=%.2e  max=%.2e  %.1f%% of points have negative value\n",
              summary.mean, summary.min, summary.max,
              100.0 * summary.fraction_negative);
  return 0;
}
