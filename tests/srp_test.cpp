// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Sign-random-projection (SimHash) LSH for the cosine metric [Cha02].

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dataset/synthetic.h"
#include "knn/neighbors.h"
#include "lsh/srp.h"
#include "test_util.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;

TEST(SrpTest, BitCollisionProbabilityEndpoints) {
  EXPECT_DOUBLE_EQ(SrpBitCollisionProbability(0.0), 1.0);
  EXPECT_NEAR(SrpBitCollisionProbability(std::numbers::pi), 0.0, 1e-12);
  EXPECT_NEAR(SrpBitCollisionProbability(std::numbers::pi / 2.0), 0.5, 1e-12);
}

TEST(SrpTest, AngleBetweenKnownVectors) {
  std::vector<float> x = {1.0f, 0.0f}, y = {0.0f, 1.0f}, neg = {-1.0f, 0.0f};
  EXPECT_NEAR(AngleBetween(x, y), std::numbers::pi / 2.0, 1e-9);
  EXPECT_NEAR(AngleBetween(x, x), 0.0, 1e-6);
  EXPECT_NEAR(AngleBetween(x, neg), std::numbers::pi, 1e-9);
}

TEST(SrpTest, EmpiricalBitCollisionMatchesTheory) {
  // Charikar's identity: P[sign(w.x) == sign(w.y)] = 1 - angle/pi.
  Rng rng(1);
  std::vector<float> x = {1.0f, 0.0f, 0.0f};
  // y at 60 degrees from x in the xy-plane.
  double theta = std::numbers::pi / 3.0;
  std::vector<float> y = {static_cast<float>(std::cos(theta)),
                          static_cast<float>(std::sin(theta)), 0.0f};
  int collisions = 0;
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    SrpHash hash(3, 1, &rng);
    collisions += hash.Signature(x) == hash.Signature(y);
  }
  EXPECT_NEAR(static_cast<double>(collisions) / trials,
              SrpBitCollisionProbability(theta), 0.01);
}

TEST(SrpTest, SignatureDeterministic) {
  Rng rng(2);
  SrpHash hash(8, 16, &rng);
  std::vector<float> x = {1, -2, 3, -4, 5, -6, 7, -8};
  EXPECT_EQ(hash.Signature(x), hash.Signature(x));
}

TEST(SrpTest, ScaleInvariance) {
  // SimHash depends only on direction.
  Rng rng(3);
  SrpHash hash(4, 32, &rng);
  std::vector<float> x = {0.5f, -1.0f, 2.0f, 0.25f};
  std::vector<float> scaled = {1.5f, -3.0f, 6.0f, 0.75f};
  EXPECT_EQ(hash.Signature(x), hash.Signature(scaled));
}

TEST(SrpIndexTest, SelfQueryReturnsSelf) {
  Dataset data = RandomClassDataset(300, 2, 8, 4);
  SrpConfig config;
  config.bits = 8;
  config.num_tables = 16;
  SrpIndex index(&data.features, config);
  auto result = index.Query(data.features.Row(17), 1);
  ASSERT_FALSE(result.empty());
  EXPECT_EQ(result[0].index, 17);
}

TEST(SrpIndexTest, ResultsSortedByCosineDistance) {
  Dataset data = RandomClassDataset(400, 2, 8, 5);
  SrpConfig config;
  config.bits = 6;
  config.num_tables = 12;
  SrpIndex index(&data.features, config);
  size_t candidates = 0;
  auto result = index.Query(data.features.Row(0), 10, &candidates);
  EXPECT_GE(candidates, result.size());
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
  }
}

TEST(SrpIndexTest, HighRecallWithGenerousTables) {
  Rng rng(6);
  Dataset data = MakeMnistLike(2000, &rng);
  SrpConfig config;
  config.bits = 10;
  config.num_tables = 48;
  SrpIndex index(&data.features, config);
  double recall = 0.0;
  for (size_t q = 0; q < 25; ++q) {
    recall += index.Recall(data.features.Row(q * 13), 10);
  }
  EXPECT_GT(recall / 25.0, 0.85);
}

TEST(SrpIndexTest, MoreBitsFewerCandidates) {
  Dataset data = RandomClassDataset(2000, 2, 16, 7);
  SrpConfig coarse;
  coarse.bits = 4;
  coarse.num_tables = 4;
  SrpConfig fine = coarse;
  fine.bits = 16;
  SrpIndex coarse_index(&data.features, coarse);
  SrpIndex fine_index(&data.features, fine);
  size_t coarse_candidates = 0, fine_candidates = 0;
  coarse_index.Query(data.features.Row(3), 5, &coarse_candidates);
  fine_index.Query(data.features.Row(3), 5, &fine_candidates);
  EXPECT_GT(coarse_candidates, fine_candidates);
}

}  // namespace
}  // namespace knnshap
