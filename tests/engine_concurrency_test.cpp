// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Concurrency coverage for ValuationEngine: N threads firing mixed
// methods over multiple corpora must produce bitwise the same values as
// the serial path, with and without the result cache, and racing
// InvalidateTrain calls must never corrupt state. Assertions are written
// to be TSan-friendly: shared state is only read after thread joins.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "test_util.h"
#include "util/fingerprint.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;
using testing_util::RandomRegDataset;

struct Workload {
  std::string method;
  std::shared_ptr<const Dataset> train;
  std::shared_ptr<const Dataset> test;
  ValuatorParams params;
};

ValuationRequest ToRequest(const Workload& w, bool parallel, bool use_cache) {
  ValuationRequest request;
  request.method = w.method;
  request.train = w.train;
  request.test = w.test;
  request.params = w.params;
  request.parallel = parallel;
  request.use_cache = use_cache;
  return request;
}

std::vector<Workload> MixedWorkloads() {
  auto class_a =
      std::make_shared<const Dataset>(RandomClassDataset(60, 3, 4, 101));
  auto class_b =
      std::make_shared<const Dataset>(RandomClassDataset(45, 2, 4, 102));
  auto reg = std::make_shared<const Dataset>(RandomRegDataset(50, 4, 103));
  auto class_q = std::make_shared<const Dataset>(RandomClassDataset(8, 3, 4, 104));
  auto class_q2 = std::make_shared<const Dataset>(RandomClassDataset(5, 2, 4, 105));
  auto reg_q = std::make_shared<const Dataset>(RandomRegDataset(6, 4, 106));

  std::vector<Workload> workloads;
  ValuatorParams params;
  params.k = 3;
  workloads.push_back({"exact", class_a, class_q, params});
  workloads.push_back({"exact-corrected", class_a, class_q, params});
  workloads.push_back({"truncated", class_b, class_q2, params});
  workloads.push_back({"exact", class_b, class_q2, params});
  ValuatorParams reg_params;
  reg_params.k = 3;
  reg_params.task = KnnTask::kRegression;
  workloads.push_back({"regression", reg, reg_q, reg_params});
  ValuatorParams mc_params;
  mc_params.k = 3;
  mc_params.max_permutations = 20;
  workloads.push_back({"mc", class_b, class_q2, mc_params});
  ValuatorParams weighted_params;
  weighted_params.k = 2;
  weighted_params.task = KnnTask::kWeightedClassification;
  workloads.push_back({"weighted", class_a, class_q, weighted_params});
  return workloads;
}

TEST(EngineConcurrencyTest, MixedMethodsAcrossThreadsMatchSerial) {
  std::vector<Workload> workloads = MixedWorkloads();

  // Serial reference values, computed on a cache-less engine.
  std::vector<std::vector<double>> expected;
  {
    EngineOptions options;
    options.result_cache_capacity = 0;
    ValuationEngine serial(options);
    for (const auto& w : workloads) {
      ValuationReport report = serial.Value(ToRequest(w, /*parallel=*/false,
                                                      /*use_cache=*/false));
      ASSERT_TRUE(report.ok()) << report.error;
      expected.push_back(report.values);
    }
  }

  const size_t kThreads = 8;
  const int kRoundsPerThread = 6;
  ValuationEngine engine;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  std::vector<std::string> errors(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        // Stagger the workload order per thread, alternate cache and
        // intra-request parallelism so the fitted set, the cache and the
        // shared pool are all contended.
        const size_t w = (t + static_cast<size_t>(round)) % workloads.size();
        const bool parallel = (t + static_cast<size_t>(round)) % 2 == 0;
        const bool use_cache = t % 2 == 0;
        ValuationReport report =
            engine.Value(ToRequest(workloads[w], parallel, use_cache));
        if (!report.ok()) {
          errors[t] = report.error;
          failures.fetch_add(1);
          return;
        }
        if (report.values != expected[w]) {  // bitwise comparison
          errors[t] = "values diverged for " + workloads[w].method;
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0) << errors[0] << errors[1] << errors[2] << errors[3]
                                << errors[4] << errors[5] << errors[6] << errors[7];
  // Every workload fitted at most once per (train, method, params) key.
  EXPECT_LE(engine.FittedCount(), workloads.size());
}

TEST(EngineConcurrencyTest, InvalidateTrainRacesWithTraffic) {
  std::vector<Workload> workloads = MixedWorkloads();
  ValuationEngine engine;
  const uint64_t target_fp = DatasetFingerprint(*workloads[0].train);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 12; ++round) {
        const size_t w = (t + static_cast<size_t>(round)) % workloads.size();
        ValuationReport report =
            engine.Value(ToRequest(workloads[w], /*parallel=*/false,
                                   /*use_cache=*/true));
        if (!report.ok()) failures.fetch_add(1);
      }
    });
  }
  std::thread invalidator([&] {
    while (!stop.load()) {
      engine.InvalidateTrain(target_fp);
      std::this_thread::yield();
    }
  });
  for (auto& thread : threads) thread.join();
  stop.store(true);
  invalidator.join();
  EXPECT_EQ(failures.load(), 0);

  // After the storm, a fresh request still computes correct values.
  ValuationReport report = engine.Value(
      ToRequest(workloads[0], /*parallel=*/false, /*use_cache=*/false));
  ASSERT_TRUE(report.ok()) << report.error;
  EngineOptions options;
  options.result_cache_capacity = 0;
  ValuationEngine serial(options);
  ValuationReport expected = serial.Value(
      ToRequest(workloads[0], /*parallel=*/false, /*use_cache=*/false));
  ASSERT_TRUE(expected.ok()) << expected.error;
  EXPECT_EQ(report.values, expected.values);
}

TEST(EngineConcurrencyTest, PrecomputedFingerprintsMatchEngineHashing) {
  std::vector<Workload> workloads = MixedWorkloads();
  ValuationEngine engine;
  // Prime the cache through the hashed path.
  ValuationReport first =
      engine.Value(ToRequest(workloads[0], /*parallel=*/false, /*use_cache=*/true));
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_FALSE(first.cache_hit);
  // A request carrying the precomputed fingerprints must hit the same
  // cache entry — the serve layer's CorpusStore relies on this identity.
  ValuationRequest request =
      ToRequest(workloads[0], /*parallel=*/false, /*use_cache=*/true);
  request.train_fingerprint = DatasetFingerprint(*workloads[0].train);
  request.test_fingerprint = DatasetFingerprint(*workloads[0].test);
  ValuationReport second = engine.Value(request);
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.values, first.values);

  // InvalidateTrain by that fingerprint evicts both the fitted valuator
  // and the cache entry (the drop-leak satellite fix).
  ValuationEngine::InvalidationStats stats =
      engine.InvalidateTrain(request.train_fingerprint);
  EXPECT_EQ(stats.fitted_evicted, 1u);
  EXPECT_EQ(stats.cache_evicted, 1u);
  ValuationReport third = engine.Value(request);
  ASSERT_TRUE(third.ok()) << third.error;
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(third.values, first.values);
}

}  // namespace
}  // namespace knnshap
