// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Concurrency coverage for ValuationEngine: N threads firing mixed
// methods over multiple corpora must produce bitwise the same values as
// the serial path, with and without the result cache, and racing
// InvalidateTrain calls must never corrupt state. Assertions are written
// to be TSan-friendly: shared state is only read after thread joins.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/registry.h"
#include "test_util.h"
#include "util/cancel.h"
#include "util/fault.h"
#include "util/fingerprint.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;
using testing_util::RandomRegDataset;

struct Workload {
  std::string method;
  std::shared_ptr<const Dataset> train;
  std::shared_ptr<const Dataset> test;
  ValuatorParams params;
};

ValuationRequest ToRequest(const Workload& w, bool parallel, bool use_cache) {
  ValuationRequest request;
  request.method = w.method;
  request.train = w.train;
  request.test = w.test;
  request.params = w.params;
  request.parallel = parallel;
  request.use_cache = use_cache;
  return request;
}

std::vector<Workload> MixedWorkloads() {
  auto class_a =
      std::make_shared<const Dataset>(RandomClassDataset(60, 3, 4, 101));
  auto class_b =
      std::make_shared<const Dataset>(RandomClassDataset(45, 2, 4, 102));
  auto reg = std::make_shared<const Dataset>(RandomRegDataset(50, 4, 103));
  auto class_q = std::make_shared<const Dataset>(RandomClassDataset(8, 3, 4, 104));
  auto class_q2 = std::make_shared<const Dataset>(RandomClassDataset(5, 2, 4, 105));
  auto reg_q = std::make_shared<const Dataset>(RandomRegDataset(6, 4, 106));

  std::vector<Workload> workloads;
  ValuatorParams params;
  params.k = 3;
  workloads.push_back({"exact", class_a, class_q, params});
  workloads.push_back({"exact-corrected", class_a, class_q, params});
  workloads.push_back({"truncated", class_b, class_q2, params});
  workloads.push_back({"exact", class_b, class_q2, params});
  ValuatorParams reg_params;
  reg_params.k = 3;
  reg_params.task = KnnTask::kRegression;
  workloads.push_back({"regression", reg, reg_q, reg_params});
  ValuatorParams mc_params;
  mc_params.k = 3;
  mc_params.max_permutations = 20;
  workloads.push_back({"mc", class_b, class_q2, mc_params});
  ValuatorParams weighted_params;
  weighted_params.k = 2;
  weighted_params.task = KnnTask::kWeightedClassification;
  workloads.push_back({"weighted", class_a, class_q, weighted_params});
  return workloads;
}

TEST(EngineConcurrencyTest, MixedMethodsAcrossThreadsMatchSerial) {
  std::vector<Workload> workloads = MixedWorkloads();

  // Serial reference values, computed on a cache-less engine.
  std::vector<std::vector<double>> expected;
  {
    EngineOptions options;
    options.result_cache_capacity = 0;
    ValuationEngine serial(options);
    for (const auto& w : workloads) {
      ValuationReport report = serial.Value(ToRequest(w, /*parallel=*/false,
                                                      /*use_cache=*/false));
      ASSERT_TRUE(report.ok()) << report.status.ToString();
      expected.push_back(report.values);
    }
  }

  const size_t kThreads = 8;
  const int kRoundsPerThread = 6;
  ValuationEngine engine;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  std::vector<std::string> errors(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        // Stagger the workload order per thread, alternate cache and
        // intra-request parallelism so the fitted set, the cache and the
        // shared pool are all contended.
        const size_t w = (t + static_cast<size_t>(round)) % workloads.size();
        const bool parallel = (t + static_cast<size_t>(round)) % 2 == 0;
        const bool use_cache = t % 2 == 0;
        ValuationReport report =
            engine.Value(ToRequest(workloads[w], parallel, use_cache));
        if (!report.ok()) {
          errors[t] = report.status.ToString();
          failures.fetch_add(1);
          return;
        }
        if (report.values != expected[w]) {  // bitwise comparison
          errors[t] = "values diverged for " + workloads[w].method;
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0) << errors[0] << errors[1] << errors[2] << errors[3]
                                << errors[4] << errors[5] << errors[6] << errors[7];
  // Every workload fitted at most once per (train, method, params) key.
  EXPECT_LE(engine.FittedCount(), workloads.size());
}

TEST(EngineConcurrencyTest, InvalidateTrainRacesWithTraffic) {
  std::vector<Workload> workloads = MixedWorkloads();
  ValuationEngine engine;
  const uint64_t target_fp = DatasetFingerprint(*workloads[0].train);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 12; ++round) {
        const size_t w = (t + static_cast<size_t>(round)) % workloads.size();
        ValuationReport report =
            engine.Value(ToRequest(workloads[w], /*parallel=*/false,
                                   /*use_cache=*/true));
        if (!report.ok()) failures.fetch_add(1);
      }
    });
  }
  std::thread invalidator([&] {
    while (!stop.load()) {
      engine.InvalidateTrain(target_fp);
      std::this_thread::yield();
    }
  });
  for (auto& thread : threads) thread.join();
  stop.store(true);
  invalidator.join();
  EXPECT_EQ(failures.load(), 0);

  // After the storm, a fresh request still computes correct values.
  ValuationReport report = engine.Value(
      ToRequest(workloads[0], /*parallel=*/false, /*use_cache=*/false));
  ASSERT_TRUE(report.ok()) << report.status.ToString();
  EngineOptions options;
  options.result_cache_capacity = 0;
  ValuationEngine serial(options);
  ValuationReport expected = serial.Value(
      ToRequest(workloads[0], /*parallel=*/false, /*use_cache=*/false));
  ASSERT_TRUE(expected.ok()) << expected.status.ToString();
  EXPECT_EQ(report.values, expected.values);
}

// --- Per-corpus fit locks ---------------------------------------------------

/// Rendezvous two concurrent OnFit calls: each arrival signals and then
/// waits (bounded) for the other. Under the per-corpus fit locks both
/// arrive while neither has finished — under the old engine-wide fit lock
/// the second could never enter until the first returned, so `overlapped`
/// stays false and the first fit stalls out the timeout.
struct FitRendezvous {
  std::mutex mutex;
  std::condition_variable cv;
  int arrived = 0;
  bool overlapped = false;

  void Enter() {
    std::unique_lock<std::mutex> lock(mutex);
    if (++arrived >= 2) {
      overlapped = true;
      cv.notify_all();
      return;
    }
    cv.wait_for(lock, std::chrono::seconds(10), [&] { return overlapped; });
  }
};

class RendezvousValuator : public Valuator {
 public:
  RendezvousValuator(ValuatorParams params, FitRendezvous* rendezvous)
      : Valuator(std::move(params)), rendezvous_(rendezvous) {}
  const char* Method() const override { return "rendezvous"; }
  std::vector<double> ValueOne(const Dataset& /*test*/, size_t /*row*/) const override {
    return std::vector<double>(Train().Size(), 0.0);
  }

 protected:
  void OnFit() override { rendezvous_->Enter(); }

 private:
  FitRendezvous* rendezvous_;
};

TEST(EngineConcurrencyTest, ColdFitsOfDifferentCorporaOverlap) {
  // The ROADMAP open item: fitting used to run under the single engine
  // mutex, so cold fits of *different* corpora serialized. Two slow fits
  // must now be in OnFit simultaneously.
  FitRendezvous rendezvous;
  ValuatorRegistry registry;
  MethodSchema schema;
  schema.name = "rendezvous";
  schema.params = ResolveParams({"k"});
  schema.tasks = {KnnTask::kClassification};
  registry.Register(schema, [&](const ValuatorParams& params) {
    return std::make_unique<RendezvousValuator>(params, &rendezvous);
  });

  EngineOptions options;
  options.registry = &registry;
  ValuationEngine engine(options);

  auto corpus_a = std::make_shared<const Dataset>(RandomClassDataset(20, 2, 3, 301));
  auto corpus_b = std::make_shared<const Dataset>(RandomClassDataset(25, 2, 3, 302));
  auto queries = std::make_shared<const Dataset>(RandomClassDataset(2, 2, 3, 303));

  std::atomic<int> failures{0};
  auto fire = [&](std::shared_ptr<const Dataset> train) {
    ValuationRequest request;
    request.method = "rendezvous";
    request.train = std::move(train);
    request.test = queries;
    if (!engine.Value(request).ok()) failures.fetch_add(1);
  };
  std::thread first(fire, corpus_a);
  std::thread second(fire, corpus_b);
  first.join();
  second.join();

  EXPECT_TRUE(rendezvous.overlapped) << "cold fits serialized";
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.FittedCount(), 2u);
}

TEST(EngineConcurrencyTest, DuplicateColdFitsRunOnce) {
  // Same (corpus, method, params) from many threads: exactly one factory
  // call and one fit; the laggards wait on the slot and share the result.
  std::atomic<int> factory_calls{0};
  ValuatorRegistry registry;
  MethodSchema schema;
  schema.name = "rendezvous";
  schema.params = ResolveParams({"k"});
  schema.tasks = {KnnTask::kClassification};
  registry.Register(schema, [&](const ValuatorParams& params) {
    factory_calls.fetch_add(1);
    auto rendezvous = std::make_shared<FitRendezvous>();
    rendezvous->overlapped = true;  // Enter() returns immediately
    struct Holder : RendezvousValuator {
      std::shared_ptr<FitRendezvous> keep;
      Holder(ValuatorParams p, std::shared_ptr<FitRendezvous> r)
          : RendezvousValuator(std::move(p), r.get()), keep(std::move(r)) {}
    };
    return std::make_unique<Holder>(params, std::move(rendezvous));
  });

  EngineOptions options;
  options.registry = &registry;
  ValuationEngine engine(options);
  auto corpus = std::make_shared<const Dataset>(RandomClassDataset(30, 2, 3, 311));
  auto queries = std::make_shared<const Dataset>(RandomClassDataset(2, 2, 3, 312));

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      ValuationRequest request;
      request.method = "rendezvous";
      request.train = corpus;
      request.test = queries;
      request.use_cache = false;
      if (!engine.Value(request).ok()) failures.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(factory_calls.load(), 1);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.FittedCount(), 1u);
}

/// OnFit blocks at a gate the test opens, so invalidation can be timed to
/// land strictly inside a fit.
class GatedValuator : public Valuator {
 public:
  struct Gate {
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;
    std::atomic<bool> entered{false};
  };

  GatedValuator(ValuatorParams params, Gate* gate)
      : Valuator(std::move(params)), gate_(gate) {}
  const char* Method() const override { return "gated"; }
  std::vector<double> ValueOne(const Dataset& /*test*/, size_t /*row*/) const override {
    return std::vector<double>(Train().Size(), 0.0);
  }

 protected:
  void OnFit() override {
    std::unique_lock<std::mutex> lock(gate_->mutex);
    gate_->entered.store(true);
    gate_->cv.wait_for(lock, std::chrono::seconds(10), [&] { return gate_->open; });
  }

 private:
  Gate* gate_;
};

TEST(EngineConcurrencyTest, InvalidateTrainPoisonsAnInFlightFit) {
  // A corpus dropped while its cold fit is still running must not leave
  // the finished structure resident: the in-flight request is still
  // served (its snapshot), but the fitted set ends empty — the
  // reclaim-immediately guarantee holds across the fit-outside-the-lock
  // window.
  GatedValuator::Gate gate;
  ValuatorRegistry registry;
  MethodSchema schema;
  schema.name = "gated";
  schema.params = ResolveParams({"k"});
  schema.tasks = {KnnTask::kClassification};
  registry.Register(schema, [&](const ValuatorParams& params) {
    return std::make_unique<GatedValuator>(params, &gate);
  });

  EngineOptions options;
  options.registry = &registry;
  ValuationEngine engine(options);
  auto corpus = std::make_shared<const Dataset>(RandomClassDataset(20, 2, 3, 331));
  auto queries = std::make_shared<const Dataset>(RandomClassDataset(2, 2, 3, 332));
  const uint64_t corpus_fp = DatasetFingerprint(*corpus);

  std::atomic<bool> request_ok{false};
  std::thread fitter([&] {
    ValuationRequest request;
    request.method = "gated";
    request.train = corpus;
    request.test = queries;
    request.train_fingerprint = corpus_fp;
    request_ok.store(engine.Value(request).ok());
  });
  while (!gate.entered.load()) std::this_thread::yield();

  // Invalidation lands mid-fit; it must neither block on the fit nor let
  // the fit install afterwards.
  engine.InvalidateTrain(corpus_fp);
  {
    std::lock_guard<std::mutex> lock(gate.mutex);
    gate.open = true;
  }
  gate.cv.notify_all();
  fitter.join();

  EXPECT_TRUE(request_ok.load());
  EXPECT_EQ(engine.FittedCount(), 0u);  // poisoned fit was not installed
}

TEST(EngineConcurrencyTest, ThrowingFitReleasesTheSlotAndRetries) {
  // A factory (an arbitrary std::function) that throws must not leave the
  // in-progress fit slot behind — and the exception must not unwind into
  // the caller either: on the serve path Value() runs on pool worker
  // threads, where an escaping exception would terminate the process. It
  // becomes a structured internal error, and the *next* request for the
  // same key retries instead of deadlocking on an orphaned slot.
  std::atomic<int> calls{0};
  ValuatorRegistry registry;
  MethodSchema schema;
  schema.name = "flaky";
  schema.params = ResolveParams({"k"});
  schema.tasks = {KnnTask::kClassification};
  registry.Register(schema,
                    [&](const ValuatorParams& params) -> std::unique_ptr<Valuator> {
                      if (calls.fetch_add(1) == 0) {
                        throw std::runtime_error("transient failure");
                      }
                      auto rendezvous = std::make_shared<FitRendezvous>();
                      rendezvous->overlapped = true;
                      struct Holder : RendezvousValuator {
                        std::shared_ptr<FitRendezvous> keep;
                        Holder(ValuatorParams p, std::shared_ptr<FitRendezvous> r)
                            : RendezvousValuator(std::move(p), r.get()),
                              keep(std::move(r)) {}
                      };
                      return std::make_unique<Holder>(params, std::move(rendezvous));
                    });

  EngineOptions options;
  options.registry = &registry;
  ValuationEngine engine(options);
  auto corpus = std::make_shared<const Dataset>(RandomClassDataset(20, 2, 3, 321));
  auto queries = std::make_shared<const Dataset>(RandomClassDataset(2, 2, 3, 322));
  ValuationRequest request;
  request.method = "flaky";
  request.train = corpus;
  request.test = queries;

  ValuationReport failed = engine.Value(request);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status.code(), StatusCode::kInternal);
  EXPECT_NE(failed.status.message().find("fit failed"), std::string::npos)
      << failed.status.ToString();
  // The key is not wedged: the retry fits and serves.
  ValuationReport retry = engine.Value(request);
  EXPECT_TRUE(retry.ok()) << retry.status.ToString();
  EXPECT_EQ(calls.load(), 2);
}

TEST(EngineConcurrencyTest, CancelledFitReleasesTheSlotWithoutPoisoning) {
  // A fit whose deadline fires mid-flight must retire its slot as
  // cancelled — installing nothing in the registry — and the next request
  // for the same key must become a fresh owner and fit cleanly, not
  // deadlock on an orphaned slot or inherit a half-built structure.
  auto cancel = std::make_shared<const CancelToken>();
  std::atomic<int> calls{0};
  ValuatorRegistry registry;
  MethodSchema schema;
  schema.name = "cancelly";
  schema.params = ResolveParams({"k"});
  schema.tasks = {KnnTask::kClassification};
  registry.Register(schema, [&](const ValuatorParams& params)
                                -> std::unique_ptr<Valuator> {
    // First factory call simulates the deadline expiring during the fit.
    if (calls.fetch_add(1) == 0) cancel->Cancel();
    auto rendezvous = std::make_shared<FitRendezvous>();
    rendezvous->overlapped = true;
    struct Holder : RendezvousValuator {
      std::shared_ptr<FitRendezvous> keep;
      Holder(ValuatorParams p, std::shared_ptr<FitRendezvous> r)
          : RendezvousValuator(std::move(p), r.get()), keep(std::move(r)) {}
    };
    return std::make_unique<Holder>(params, std::move(rendezvous));
  });

  EngineOptions options;
  options.registry = &registry;
  ValuationEngine engine(options);
  auto corpus = std::make_shared<const Dataset>(RandomClassDataset(20, 2, 3, 341));
  auto queries = std::make_shared<const Dataset>(RandomClassDataset(2, 2, 3, 342));
  ValuationRequest request;
  request.method = "cancelly";
  request.train = corpus;
  request.test = queries;
  request.cancel = cancel;

  ValuationReport cancelled = engine.Value(request);
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.FittedCount(), 0u);  // nothing installed
  EXPECT_EQ(engine.DeadlineExceededCount(), 1u);

  // The same key from an uncancelled client fits from scratch.
  request.cancel = nullptr;
  ValuationReport retry = engine.Value(request);
  EXPECT_TRUE(retry.ok()) << retry.status.ToString();
  EXPECT_FALSE(retry.fit_reused);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(engine.FittedCount(), 1u);
}

TEST(EngineConcurrencyTest, InjectedFitFaultIsAStructuredInternalError) {
  // The `fit` chaos site: with KNNSHAP_FAULTS=fit:after=0 semantics the
  // fit fails as a structured kInternal response (never an escaped
  // exception), and once the fault is cleared the same key recovers.
  std::vector<Workload> workloads = MixedWorkloads();
  ValuationEngine engine;
  ASSERT_TRUE(FaultRegistry::Global().Configure("fit:after=0"));
  ValuationReport faulted = engine.Value(
      ToRequest(workloads[0], /*parallel=*/false, /*use_cache=*/false));
  FaultRegistry::Global().Reset();
  EXPECT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status.code(), StatusCode::kInternal);
  EXPECT_NE(faulted.status.message().find("injected fit fault"),
            std::string::npos)
      << faulted.status.ToString();

  ValuationReport recovered = engine.Value(
      ToRequest(workloads[0], /*parallel=*/false, /*use_cache=*/false));
  EXPECT_TRUE(recovered.ok()) << recovered.status.ToString();
}

TEST(EngineConcurrencyTest, PrecomputedFingerprintsMatchEngineHashing) {
  std::vector<Workload> workloads = MixedWorkloads();
  ValuationEngine engine;
  // Prime the cache through the hashed path.
  ValuationReport first =
      engine.Value(ToRequest(workloads[0], /*parallel=*/false, /*use_cache=*/true));
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  EXPECT_FALSE(first.cache_hit);
  // A request carrying the precomputed fingerprints must hit the same
  // cache entry — the serve layer's CorpusStore relies on this identity.
  ValuationRequest request =
      ToRequest(workloads[0], /*parallel=*/false, /*use_cache=*/true);
  request.train_fingerprint = DatasetFingerprint(*workloads[0].train);
  request.test_fingerprint = DatasetFingerprint(*workloads[0].test);
  ValuationReport second = engine.Value(request);
  ASSERT_TRUE(second.ok()) << second.status.ToString();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.values, first.values);

  // InvalidateTrain by that fingerprint evicts both the fitted valuator
  // and the cache entry (the drop-leak satellite fix).
  ValuationEngine::InvalidationStats stats =
      engine.InvalidateTrain(request.train_fingerprint);
  EXPECT_EQ(stats.fitted_evicted, 1u);
  EXPECT_EQ(stats.cache_evicted, 1u);
  ValuationReport third = engine.Value(request);
  ASSERT_TRUE(third.ok()) << third.status.ToString();
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(third.values, first.values);
}

}  // namespace
}  // namespace knnshap
