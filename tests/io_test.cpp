// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dataset/io.h"
#include "test_util.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;
using testing_util::RandomRegDataset;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(CsvIoTest, RoundTripClassification) {
  Dataset data = RandomClassDataset(25, 3, 4, 1);
  std::string path = TempPath("roundtrip_class.csv");
  ASSERT_TRUE(SaveCsvDataset(data, path));
  auto loaded = LoadCsvDataset(path, CsvTarget::kLabel);
  ASSERT_TRUE(loaded.ok()) << loaded.status.ToString();
  EXPECT_EQ(loaded.rows_parsed, 25u);
  EXPECT_EQ(loaded.rows_skipped, 0u);
  ASSERT_EQ(loaded.data.Size(), data.Size());
  ASSERT_EQ(loaded.data.Dim(), data.Dim());
  for (size_t i = 0; i < data.Size(); ++i) {
    EXPECT_EQ(loaded.data.labels[i], data.labels[i]);
    for (size_t d = 0; d < data.Dim(); ++d) {
      EXPECT_NEAR(loaded.data.features.Row(i)[d], data.features.Row(i)[d], 1e-5);
    }
  }
  std::remove(path.c_str());
}

TEST(CsvIoTest, RoundTripRegression) {
  Dataset data = RandomRegDataset(15, 3, 2);
  std::string path = TempPath("roundtrip_reg.csv");
  ASSERT_TRUE(SaveCsvDataset(data, path));
  auto loaded = LoadCsvDataset(path, CsvTarget::kTarget);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.data.Size(), 15u);
  for (size_t i = 0; i < data.Size(); ++i) {
    EXPECT_NEAR(loaded.data.targets[i], data.targets[i], 1e-5);
  }
  std::remove(path.c_str());
}

TEST(CsvIoTest, HeaderDetectedAndSkipped) {
  std::string path = TempPath("header.csv");
  WriteFile(path, "f0,f1,label\n1.0,2.0,0\n3.0,4.0,1\n");
  auto loaded = LoadCsvDataset(path, CsvTarget::kLabel);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.had_header);
  EXPECT_EQ(loaded.rows_parsed, 2u);
  EXPECT_EQ(loaded.data.Dim(), 2u);
  EXPECT_EQ(loaded.data.labels[1], 1);
  std::remove(path.c_str());
}

TEST(CsvIoTest, MalformedRowsSkippedNotFatal) {
  std::string path = TempPath("malformed.csv");
  WriteFile(path, "1.0,2.0,0\n1.0,oops,1\n1.0,2.0\n5.0,6.0,1\n");
  auto loaded = LoadCsvDataset(path, CsvTarget::kLabel);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.rows_parsed, 2u);
  EXPECT_EQ(loaded.rows_skipped, 2u);
  std::remove(path.c_str());
}

TEST(CsvIoTest, MissingFileIsFatal) {
  auto loaded = LoadCsvDataset(TempPath("does_not_exist.csv"), CsvTarget::kLabel);
  EXPECT_FALSE(loaded.ok());
}

TEST(CsvIoTest, AllHeaderNoDataIsFatal) {
  std::string path = TempPath("only_header.csv");
  WriteFile(path, "a,b,c\n");
  auto loaded = LoadCsvDataset(path, CsvTarget::kLabel);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(CsvIoTest, NoTargetModeReadsAllColumnsAsFeatures) {
  std::string path = TempPath("features_only.csv");
  WriteFile(path, "1,2,3\n4,5,6\n");
  auto loaded = LoadCsvDataset(path, CsvTarget::kNone);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.data.Dim(), 3u);
  EXPECT_FALSE(loaded.data.HasLabels());
  std::remove(path.c_str());
}

TEST(CsvIoTest, SaveValuesIncludesLabels) {
  Dataset data = RandomClassDataset(3, 2, 2, 3);
  std::vector<double> values = {0.5, -0.25, 0.125};
  std::string path = TempPath("values.csv");
  ASSERT_TRUE(SaveValuesCsv(values, data, path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "index,value,label");
  std::getline(in, line);
  EXPECT_EQ(line.rfind("0,0.5,", 0), 0u);
  std::remove(path.c_str());
}

TEST(CsvIoTest, WindowsLineEndingsTolerated) {
  std::string path = TempPath("crlf.csv");
  WriteFile(path, "1.0,2.0,1\r\n3.0,4.0,0\r\n");
  auto loaded = LoadCsvDataset(path, CsvTarget::kLabel);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.rows_parsed, 2u);
  EXPECT_EQ(loaded.data.labels[0], 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace knnshap
