// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Validation of Theorems 2 and 4: the truncated recursion's epsilon error
// bound, rank preservation among the K* nearest neighbors, and the
// LSH-backed pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_knn_shapley.h"
#include "core/lsh_knn_shapley.h"
#include "dataset/contrast.h"
#include "dataset/synthetic.h"
#include "lsh/tuning.h"
#include "test_util.h"
#include "util/stats.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;

TEST(KStarTest, MatchesDefinition) {
  EXPECT_EQ(KStar(1, 0.1), 10);
  EXPECT_EQ(KStar(1, 0.5), 2);
  EXPECT_EQ(KStar(50, 0.1), 50);   // K dominates
  EXPECT_EQ(KStar(2, 0.01), 100);  // 1/eps dominates
  EXPECT_EQ(KStar(3, 0.3), 4);     // ceil(1/0.3) = 4
}

struct TruncCase {
  int n;
  int k;
  double epsilon;
  uint64_t seed;
};

class TruncatedErrorTest : public ::testing::TestWithParam<TruncCase> {};

TEST_P(TruncatedErrorTest, ErrorBoundedByEpsilon) {
  auto [n, k, epsilon, seed] = GetParam();
  Dataset train = RandomClassDataset(static_cast<size_t>(n), 3, 4, seed);
  Dataset test = RandomClassDataset(3, 3, 4, seed + 1);
  auto exact = ExactKnnShapley(train, test, k, false);
  auto truncated = TruncatedKnnShapley(train, test, k, epsilon, false);
  // Theorem 2: the truncated values are an (epsilon, 0)-approximation.
  EXPECT_LE(MaxAbsDifference(exact, truncated), epsilon + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TruncatedErrorTest,
    ::testing::Values(TruncCase{200, 1, 0.1, 1}, TruncCase{200, 5, 0.1, 2},
                      TruncCase{500, 1, 0.05, 3}, TruncCase{500, 3, 0.02, 4},
                      TruncCase{100, 2, 0.5, 5}, TruncCase{50, 1, 1.0, 6},
                      TruncCase{300, 10, 0.01, 7},
                      TruncCase{30, 1, 0.001, 8}));  // K* > N degenerates to exact

TEST(TruncatedShapleyTest, KStarBeyondNEqualsExact) {
  Dataset train = RandomClassDataset(25, 2, 3, 10);
  Dataset test = RandomClassDataset(2, 2, 3, 11);
  auto exact = ExactKnnShapley(train, test, 2, false);
  auto truncated = TruncatedKnnShapley(train, test, 2, /*epsilon=*/1e-6, false);
  testing_util::ExpectVectorNear(exact, truncated, 1e-12);
}

TEST(TruncatedShapleyTest, RankPreservedAmongTopKStar) {
  // Theorem 2: s-hat_i - s-hat_{i+1} = s_i - s_{i+1} for i <= K*-1, so the
  // value *ranking* of the K* nearest neighbors is preserved.
  Dataset train = RandomClassDataset(150, 2, 4, 12);
  Dataset test = RandomClassDataset(1, 2, 4, 13);
  const int k = 2;
  const double eps = 0.05;  // K* = 20
  auto order = ArgsortByDistance(train.features, test.features.Row(0));
  auto exact = ExactKnnShapley(train, test, k, false);
  auto truncated = TruncatedKnnShapley(train, test, k, eps, false);
  int k_star = KStar(k, eps);
  for (int i = 0; i + 1 < k_star - 1; ++i) {
    double d_exact = exact[static_cast<size_t>(order[static_cast<size_t>(i)])] -
                     exact[static_cast<size_t>(order[static_cast<size_t>(i + 1)])];
    double d_trunc =
        truncated[static_cast<size_t>(order[static_cast<size_t>(i)])] -
        truncated[static_cast<size_t>(order[static_cast<size_t>(i + 1)])];
    EXPECT_NEAR(d_exact, d_trunc, 1e-10) << "rank " << i;
  }
}

TEST(TruncatedShapleyTest, FarPointsGetExactlyZero) {
  Dataset train = RandomClassDataset(100, 2, 4, 14);
  Dataset test = RandomClassDataset(1, 2, 4, 15);
  const int k = 1;
  const double eps = 0.2;  // K* = 5
  auto truncated = TruncatedKnnShapley(train, test, k, eps, false);
  auto order = ArgsortByDistance(train.features, test.features.Row(0));
  int k_star = KStar(k, eps);
  size_t nonzero = 0;
  for (size_t i = static_cast<size_t>(k_star); i < order.size(); ++i) {
    nonzero += truncated[static_cast<size_t>(order[i])] != 0.0;
  }
  EXPECT_EQ(nonzero, 0u);
}

TEST(TruncatedShapleyTest, EmptyNeighborListYieldsNoValues) {
  Dataset train = RandomClassDataset(10, 2, 3, 16);
  auto sv = TruncatedShapleyFromNeighbors(train, {}, 1, 1, 5);
  EXPECT_TRUE(sv.empty());
}

TEST(LshShapleyTest, MatchesTruncatedWhenRecallIsPerfect) {
  // With a generously tuned index, LSH retrieval returns the true top-K*
  // and the LSH Shapley values equal the truncated-exact ones.
  Rng rng(17);
  Dataset train = MakeHighContrast(1200, &rng);
  Dataset test;
  {
    std::vector<int> rows;
    for (int i = 0; i < 5; ++i) rows.push_back(i * 31);
    test = train.Subset(rows);
  }
  const int k = 2;
  const double eps = 0.25;  // K* = 4: small retrieval depth
  LshConfig config;
  config.width = 4.0;
  config.num_projections = 6;
  config.num_tables = 48;
  LshIndex index(&train.features, config);
  auto truncated = TruncatedKnnShapley(train, test, k, eps, false);
  LshShapleyStats stats;
  auto lsh = LshKnnShapley(train, test, k, eps, index, &stats);
  EXPECT_EQ(stats.queries, 5u);
  EXPECT_GT(stats.mean_returned, 3.0);
  EXPECT_LE(MaxAbsDifference(truncated, lsh), 0.05);
}

TEST(LshShapleyTest, ErrorWithinEpsilonOfExactOnTunedIndex) {
  // Theorem 4 end-to-end: tuned index (delta = 0.1) => (eps, delta)
  // approximation of the exact values.
  Rng rng(18);
  Dataset train = MakeHighContrast(2000, &rng);
  std::vector<int> rows;
  for (int i = 0; i < 8; ++i) rows.push_back(1 + i * 17);
  Dataset test = train.Subset(rows);
  const int k = 1;
  const double eps = 0.1;
  const int k_star = KStar(k, eps);
  Rng crng(19);
  auto contrast = EstimateRelativeContrast(train, test, k_star, 8, 2000, &crng);
  Dataset normalized = train;
  normalized.features.Scale(1.0 / contrast.d_mean);
  Dataset normalized_test = test;
  normalized_test.features.Scale(1.0 / contrast.d_mean);
  LshConfig config =
      TuneForContrast(normalized.Size(), contrast.c_k, k_star, /*delta=*/0.1);
  LshIndex index(&normalized.features, config);
  auto exact = ExactKnnShapley(normalized, normalized_test, k, false);
  auto approx = LshKnnShapley(normalized, normalized_test, k, eps, index);
  // Allow a small slack over eps for the delta-probability misses.
  EXPECT_LE(MaxAbsDifference(exact, approx), eps + 0.05);
}

}  // namespace
}  // namespace knnshap
