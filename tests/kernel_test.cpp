// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Parity and edge-case suite for the batched distance kernels
// (knn/distance_kernel.h). The fast paths are gated on this suite: the
// blocked and (when supported) AVX2 kernels must produce the identical
// neighbor *rank order* as the scalar reference on fixed-seed fixtures for
// all four metrics, and every engine method's values must stay within
// 1e-9 of the reference-kernel values.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <vector>

#include "engine/registry.h"
#include "knn/distance_kernel.h"
#include "knn/kd_tree.h"
#include "knn/metric.h"
#include "knn/neighbors.h"
#include "test_util.h"
#include "util/bounded_heap.h"
#include "util/random.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;

// Every test must leave the process-wide kernel selection untouched.
class KernelTest : public ::testing::Test {
 protected:
  void TearDown() override { SetKernelOverride(KernelKind::kAuto); }

  static std::vector<KernelKind> FastKernels() {
    std::vector<KernelKind> kinds = {KernelKind::kBlocked};
    if (CpuSupportsAvx2Fma()) kinds.push_back(KernelKind::kAvx2);
    if (CpuSupportsAvx512()) kinds.push_back(KernelKind::kAvx512);
    return kinds;
  }

  static constexpr Metric kAllMetrics[] = {Metric::kSquaredL2, Metric::kL2,
                                           Metric::kL1, Metric::kCosine};
};

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      m.At(i, j) = static_cast<float>(rng.NextGaussian());
    }
  }
  return m;
}

std::vector<float> RandomQuery(size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> q(dim);
  for (auto& c : q) c = static_cast<float>(rng.NextGaussian());
  return q;
}

// ------------------------------------------------------------- dispatch --

TEST_F(KernelTest, OverrideAndNames) {
  SetKernelOverride(KernelKind::kReference);
  EXPECT_EQ(ActiveKernel(), KernelKind::kReference);
  SetKernelOverride(KernelKind::kBlocked);
  EXPECT_EQ(ActiveKernel(), KernelKind::kBlocked);
  SetKernelOverride(KernelKind::kAvx2);
  // Falls back to blocked when the CPU lacks avx2+fma.
  EXPECT_EQ(ActiveKernel(),
            CpuSupportsAvx2Fma() ? KernelKind::kAvx2 : KernelKind::kBlocked);
  SetKernelOverride(KernelKind::kAvx512);
  // Fallback chain: avx512 -> avx2 -> blocked, per cpuid.
  EXPECT_EQ(ActiveKernel(),
            CpuSupportsAvx512()
                ? KernelKind::kAvx512
                : (CpuSupportsAvx2Fma() ? KernelKind::kAvx2
                                        : KernelKind::kBlocked));
  SetKernelOverride(KernelKind::kAuto);
  if (std::getenv("KNNSHAP_KERNEL") == nullptr) {
    // With no env override, auto never picks the reference kernel — and
    // stays off avx512, which is opt-in (frequency behavior varies by
    // part).
    EXPECT_NE(ActiveKernel(), KernelKind::kReference);
    EXPECT_NE(ActiveKernel(), KernelKind::kAvx512);
  }
  EXPECT_STREQ(KernelName(KernelKind::kReference), "reference");
  EXPECT_STREQ(KernelName(KernelKind::kBlocked), "blocked");
  EXPECT_STREQ(KernelName(KernelKind::kAvx2), "avx2");
  EXPECT_STREQ(KernelName(KernelKind::kAvx512), "avx512");
}

// Satellite pin: when auto-dispatch resolved to the blocked kernel for a
// plain-l2 single-query pass at small d, the policy routes it back to the
// scalar reference loop (BENCH_kernel.json measures blocked 0.82-0.90x
// *slower* there). Pure-function pin so the policy is testable on machines
// whose own auto pick is avx2.
TEST_F(KernelTest, AutoDispatchRoutesSmallDimPlainL2ToReference) {
  using internal::ResolveDistanceKernel;
  // The regression case: auto picked blocked, plain l2, small d.
  EXPECT_EQ(ResolveDistanceKernel(KernelKind::kBlocked, /*was_auto=*/true,
                                  Metric::kL2, 16),
            KernelKind::kReference);
  EXPECT_EQ(ResolveDistanceKernel(KernelKind::kBlocked, true, Metric::kL2, 31),
            KernelKind::kReference);
  // d >= 32: the multi-accumulator win outweighs the sqrt, keep blocked.
  EXPECT_EQ(ResolveDistanceKernel(KernelKind::kBlocked, true, Metric::kL2, 32),
            KernelKind::kBlocked);
  // Other metrics keep the fast path (squared-l2 has no per-row sqrt).
  EXPECT_EQ(ResolveDistanceKernel(KernelKind::kBlocked, true,
                                  Metric::kSquaredL2, 16),
            KernelKind::kBlocked);
  EXPECT_EQ(ResolveDistanceKernel(KernelKind::kBlocked, true, Metric::kL1, 16),
            KernelKind::kBlocked);
  // An explicit override or env pin is never second-guessed.
  EXPECT_EQ(ResolveDistanceKernel(KernelKind::kBlocked, /*was_auto=*/false,
                                  Metric::kL2, 16),
            KernelKind::kBlocked);
  // Auto resolving to avx2/avx512 is also left alone.
  EXPECT_EQ(ResolveDistanceKernel(KernelKind::kAvx2, true, Metric::kL2, 16),
            KernelKind::kAvx2);
}

// ---------------------------------------------------- distance parity ----

// Rank order identical to the reference; distances within 1e-9. Dimensions
// deliberately include non-multiples of the SIMD width and d = 1.
TEST_F(KernelTest, ReferenceVsFastParityAllMetrics) {
  for (size_t dim : {1u, 3u, 7u, 8u, 13u, 32u, 67u}) {
    Matrix corpus = RandomMatrix(200, dim, /*seed=*/dim);
    std::vector<float> query = RandomQuery(dim, /*seed=*/100 + dim);
    const CorpusNorms norms(corpus);
    for (Metric metric : kAllMetrics) {
      SetKernelOverride(KernelKind::kReference);
      std::vector<double> ref = AllDistances(corpus, query, metric);
      std::vector<int> ref_order = ArgsortByDistance(corpus, query, metric);
      for (KernelKind kind : FastKernels()) {
        SetKernelOverride(kind);
        // With and without precomputed norms.
        for (const CorpusNorms* n : {static_cast<const CorpusNorms*>(nullptr),
                                     &norms}) {
          std::vector<double> fast = AllDistances(corpus, query, metric, n);
          ASSERT_EQ(fast.size(), ref.size());
          for (size_t i = 0; i < ref.size(); ++i) {
            EXPECT_NEAR(fast[i], ref[i], 1e-9)
                << MetricName(metric) << " kernel=" << KernelName(kind)
                << " dim=" << dim << " row=" << i;
          }
          std::vector<int> order = ArgsortByDistance(corpus, query, metric, n);
          EXPECT_EQ(order, ref_order)
              << MetricName(metric) << " kernel=" << KernelName(kind)
              << " dim=" << dim;
        }
      }
    }
  }
}

TEST_F(KernelTest, TopKParityAcrossKernels) {
  Matrix corpus = RandomMatrix(300, 19, 5);
  std::vector<float> query = RandomQuery(19, 6);
  for (Metric metric : kAllMetrics) {
    SetKernelOverride(KernelKind::kReference);
    auto ref = TopKNeighbors(corpus, query, 25, metric);
    for (KernelKind kind : FastKernels()) {
      SetKernelOverride(kind);
      auto fast = TopKNeighbors(corpus, query, 25, metric);
      ASSERT_EQ(fast.size(), ref.size());
      for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(fast[i].index, ref[i].index)
            << MetricName(metric) << " kernel=" << KernelName(kind);
        EXPECT_NEAR(fast[i].distance, ref[i].distance, 1e-9);
      }
    }
  }
}

// ------------------------------------------------------------ edge cases --

TEST_F(KernelTest, SingleRowCorpus) {
  Matrix corpus = RandomMatrix(1, 5, 9);
  std::vector<float> query = RandomQuery(5, 10);
  for (KernelKind kind : FastKernels()) {
    SetKernelOverride(kind);
    for (Metric metric : kAllMetrics) {
      auto order = ArgsortByDistance(corpus, query, metric);
      EXPECT_EQ(order, (std::vector<int>{0}));
      auto top = TopKNeighbors(corpus, query, 3, metric);
      ASSERT_EQ(top.size(), 1u);
      EXPECT_EQ(top[0].index, 0);
    }
  }
}

TEST_F(KernelTest, ZeroNormCosineVectors) {
  // Rows 0 and 2 are all-zero; the reference defines their cosine distance
  // as 1. A zero query must give distance 1 to everything.
  Matrix corpus(3, 4);
  for (size_t j = 0; j < 4; ++j) corpus.At(1, j) = 1.0f;
  std::vector<float> query = {1.0f, 0.0f, 0.0f, 0.0f};
  std::vector<float> zero_query(4, 0.0f);
  const CorpusNorms norms(corpus);
  for (KernelKind kind : FastKernels()) {
    SetKernelOverride(kind);
    for (const CorpusNorms* n :
         {static_cast<const CorpusNorms*>(nullptr), &norms}) {
      auto dists = AllDistances(corpus, query, Metric::kCosine, n);
      EXPECT_DOUBLE_EQ(dists[0], 1.0) << KernelName(kind);
      EXPECT_DOUBLE_EQ(dists[2], 1.0) << KernelName(kind);
      EXPECT_LT(dists[1], 1.0);
      auto zero_dists = AllDistances(corpus, zero_query, Metric::kCosine, n);
      for (double d : zero_dists) EXPECT_DOUBLE_EQ(d, 1.0);
    }
  }
}

TEST_F(KernelTest, DuplicateRowCancelsToExactZero) {
  // With precomputed norms the ‖x‖² − 2x·q + ‖q‖² identity must cancel to
  // exactly 0 for a corpus row bit-identical to the query — equal-distance
  // tie handling depends on it.
  Matrix corpus = RandomMatrix(10, 23, 11);
  std::vector<float> query(corpus.Row(4).begin(), corpus.Row(4).end());
  for (KernelKind kind : FastKernels()) {
    SetKernelOverride(kind);
    // Norms must come from the kernel that consumes them (Fit-time order).
    const CorpusNorms norms(corpus);
    auto dists = AllDistances(corpus, query, Metric::kSquaredL2, &norms);
    EXPECT_EQ(dists[4], 0.0) << KernelName(kind);
  }
}

TEST_F(KernelTest, LargeCommonOffsetKeepsReferenceAccuracy) {
  // Data with a large common offset makes the ‖x‖²−2x·q+‖q‖² expansion
  // cancel catastrophically (norms ~1e8, distances ~1e-2); the guard must
  // fall back to the diff-square pass so ranks and distances still match
  // the reference.
  const size_t n = 100, dim = 16;
  Rng rng(41);
  Matrix corpus(n, dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      corpus.At(i, j) = 10000.0f + static_cast<float>(rng.NextGaussian() * 1e-2);
    }
  }
  std::vector<float> query(dim);
  for (auto& c : query) c = 10000.0f + static_cast<float>(rng.NextGaussian() * 1e-2);
  SetKernelOverride(KernelKind::kReference);
  auto ref = AllDistances(corpus, query, Metric::kSquaredL2);
  auto ref_order = ArgsortByDistance(corpus, query, Metric::kSquaredL2);
  for (KernelKind kind : FastKernels()) {
    SetKernelOverride(kind);
    const CorpusNorms norms(corpus);
    auto fast = AllDistances(corpus, query, Metric::kSquaredL2, &norms);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(fast[i], ref[i], 1e-9 * std::max(1.0, ref[i]))
          << KernelName(kind) << " row=" << i;
    }
    EXPECT_EQ(ArgsortByDistance(corpus, query, Metric::kSquaredL2, &norms),
              ref_order)
        << KernelName(kind);
  }
}

TEST_F(KernelTest, GatherMatchesFullPass) {
  Matrix corpus = RandomMatrix(50, 9, 12);
  std::vector<float> query = RandomQuery(9, 13);
  std::vector<int> rows = {41, 3, 17, 3, 0, 49};
  CorpusNorms norms(corpus);
  for (KernelKind kind : FastKernels()) {
    SetKernelOverride(kind);
    for (Metric metric : kAllMetrics) {
      auto all = AllDistances(corpus, query, metric, &norms);
      std::vector<double> gathered(rows.size());
      ComputeDistancesFor(corpus, rows, query, metric, &norms, gathered);
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(gathered[i], all[static_cast<size_t>(rows[i])])
            << MetricName(metric) << " kernel=" << KernelName(kind);
      }
    }
  }
}

TEST_F(KernelTest, DistanceMatrixMatchesPerQueryPass) {
  Matrix corpus = RandomMatrix(120, 17, 14);
  Matrix queries = RandomMatrix(7, 17, 15);
  CorpusNorms norms(corpus);
  for (KernelKind kind : FastKernels()) {
    SetKernelOverride(kind);
    for (Metric metric : kAllMetrics) {
      std::vector<double> matrix(corpus.Rows() * queries.Rows());
      ComputeDistanceMatrix(corpus, queries, metric, &norms, matrix);
      for (size_t j = 0; j < queries.Rows(); ++j) {
        auto per_query = AllDistances(corpus, queries.Row(j), metric, &norms);
        for (size_t i = 0; i < corpus.Rows(); ++i) {
          EXPECT_EQ(matrix[j * corpus.Rows() + i], per_query[i])
              << MetricName(metric) << " kernel=" << KernelName(kind);
        }
      }
    }
  }
}

TEST_F(KernelTest, ForEachBatchedTopKMatchesPerQuery) {
  // 35 queries exercise the 16-query chunking (16 + 16 + 3); results must
  // be bit-identical to per-query TopKNeighbors.
  Matrix corpus = RandomMatrix(50, 9, 16);
  Matrix queries = RandomMatrix(35, 9, 17);
  for (KernelKind kind : FastKernels()) {
    SetKernelOverride(kind);
    const CorpusNorms norms(corpus);
    for (Metric metric : kAllMetrics) {
      size_t seen = 0;
      ForEachBatchedTopK(corpus, queries, 7, metric, &norms,
                         [&](size_t row, const std::vector<Neighbor>& nns) {
                           EXPECT_EQ(row, seen++);
                           auto ref = TopKNeighbors(corpus, queries.Row(row), 7,
                                                    metric, &norms);
                           ASSERT_EQ(nns.size(), ref.size());
                           for (size_t i = 0; i < ref.size(); ++i) {
                             EXPECT_EQ(nns[i].index, ref[i].index);
                             EXPECT_EQ(nns[i].distance, ref[i].distance)
                                 << MetricName(metric) << " kernel="
                                 << KernelName(kind);
                           }
                         });
      EXPECT_EQ(seen, queries.Rows());
    }
  }
}

// ------------------------------------------------- packed-key ordering ----

TEST_F(KernelTest, PackedArgsortMatchesComparatorSort) {
  // Handcrafted distances stressing the packed representation: exact ties,
  // values differing only below float precision, tiny negatives (cosine
  // rounding), and infinities.
  std::vector<double> dists = {3.0,
                               1.0,
                               1.0,
                               1.0 + 1e-12,
                               1.0 - 1e-12,
                               -1e-18,
                               0.0,
                               std::numeric_limits<double>::infinity(),
                               2.5,
                               -1e-18};
  std::vector<int> expected(dists.size());
  std::iota(expected.begin(), expected.end(), 0);
  std::sort(expected.begin(), expected.end(), [&](int a, int b) {
    double da = dists[static_cast<size_t>(a)];
    double db = dists[static_cast<size_t>(b)];
    if (da != db) return da < db;
    return a < b;
  });
  std::vector<int> order;
  ArgsortDistances(dists, &order);
  EXPECT_EQ(order, expected);

  for (size_t k = 1; k <= dists.size(); ++k) {
    auto top = SelectTopK(dists, {}, k);
    ASSERT_EQ(top.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(top[i].index, expected[i]) << "k=" << k << " i=" << i;
      EXPECT_EQ(top[i].distance, dists[static_cast<size_t>(expected[i])]);
    }
  }
}

TEST_F(KernelTest, SelectTopKWithIdMapBreaksTiesById) {
  // Candidate rescoring hands SelectTopK corpus ids in arbitrary order;
  // equal distances must still come back sorted by id.
  std::vector<double> dists = {1.0, 0.5, 1.0, 0.5};
  std::vector<int> ids = {9, 7, 2, 30};
  auto top = SelectTopK(dists, ids, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].index, 7);
  EXPECT_EQ(top[1].index, 30);
  EXPECT_EQ(top[2].index, 2);
}

// ------------------------------------------- tie-heavy retrieval parity ---

// Satellite regression test: kd-tree, bounded heap, and brute force must
// agree exactly on a fixture where most distances tie (clusters of
// bit-identical points, inserted in scrambled order).
TEST_F(KernelTest, TieHeavyKdTreeHeapBruteForceAgree) {
  const size_t clusters = 6, copies = 4, dim = 3;
  Matrix m(clusters * copies, dim);
  Rng rng(21);
  std::vector<std::vector<float>> centers(clusters, std::vector<float>(dim));
  for (auto& c : centers) {
    for (auto& x : c) x = static_cast<float>(rng.NextGaussian());
  }
  // Scrambled assignment: row i belongs to cluster (i * 11) % clusters, so
  // equal-distance rows are scattered across the index range.
  for (size_t i = 0; i < m.Rows(); ++i) {
    const auto& c = centers[(i * 11) % clusters];
    for (size_t j = 0; j < dim; ++j) m.At(i, j) = c[j];
  }
  std::vector<float> query = RandomQuery(dim, 22);

  KdTree tree(&m, /*leaf_size=*/2);
  BruteForceIndex brute(&m);
  for (size_t k : {1u, 3u, 5u, 9u, 24u}) {
    auto exact = TopKNeighbors(m, query, k);
    auto from_tree = tree.Query(query, k);
    auto from_brute = brute.Query(query, k);
    // Heap pushed in descending row order — worst case for insertion-order
    // dependence.
    BoundedMaxHeap<int> heap(k);
    for (size_t i = m.Rows(); i-- > 0;) {
      heap.Push(Distance(m.Row(i), query, Metric::kL2), static_cast<int>(i));
    }
    auto from_heap = heap.SortedEntries();
    ASSERT_EQ(from_tree.size(), exact.size()) << "k=" << k;
    ASSERT_EQ(from_brute.size(), exact.size()) << "k=" << k;
    ASSERT_EQ(from_heap.size(), exact.size()) << "k=" << k;
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(from_tree[i].index, exact[i].index) << "k=" << k << " i=" << i;
      EXPECT_EQ(from_brute[i].index, exact[i].index) << "k=" << k << " i=" << i;
      EXPECT_EQ(from_heap[i].payload, exact[i].index) << "k=" << k << " i=" << i;
    }
  }
}

TEST_F(KernelTest, BoundedHeapSortedEntriesDeterministicUnderTies) {
  // Equal keys with payloads inserted in two different orders must sort
  // identically (the old key-only std::sort could reorder them).
  std::vector<int> forward = {2, 5, 1, 9, 4};
  BoundedMaxHeap<int> a(5), b(5);
  for (int p : forward) a.Push(1.0, p);
  for (auto it = forward.rbegin(); it != forward.rend(); ++it) b.Push(1.0, *it);
  auto sa = a.SortedEntries();
  auto sb = b.SortedEntries();
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].payload, sb[i].payload);
    EXPECT_EQ(sa[i].payload, std::vector<int>({1, 2, 4, 5, 9})[i]);
  }
}

// --------------------------------------------- engine value parity --------

// All six registered methods: fast-kernel values within 1e-9 of the
// reference-kernel values on a fixed-seed fixture. Valuators are re-fitted
// under each kernel so cached norms match the kernel that uses them.
TEST_F(KernelTest, EngineMethodsReferenceVsFastValueParity) {
  auto train = std::make_shared<Dataset>(RandomClassDataset(60, 2, 6, 31));
  train->targets.resize(train->Size());
  for (size_t i = 0; i < train->Size(); ++i) {
    train->targets[i] = train->features.Row(i)[0];
  }
  Dataset test = RandomClassDataset(4, 2, 6, 32);
  test.targets.resize(test.Size());
  for (size_t i = 0; i < test.Size(); ++i) {
    test.targets[i] = test.features.Row(i)[0];
  }

  ValuatorParams params;
  params.k = 3;
  params.seed = 7;
  auto value_with = [&](const std::string& method, KernelKind kind) {
    SetKernelOverride(kind);
    ValuatorParams p = params;
    if (method == "weighted") p.task = KnnTask::kWeightedClassification;
    if (method == "regression") p.task = KnnTask::kRegression;
    auto valuator = ValuatorRegistry::Global().Create(method, p);
    valuator->Fit(train);
    return valuator->Value(test);
  };

  for (const auto& info : ValuatorRegistry::Global().Methods()) {
    std::vector<double> ref = value_with(info.name, KernelKind::kReference);
    for (KernelKind kind : FastKernels()) {
      std::vector<double> fast = value_with(info.name, kind);
      ASSERT_EQ(fast.size(), ref.size()) << info.name;
      for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_NEAR(fast[i], ref[i], 1e-9)
            << info.name << " kernel=" << KernelName(kind) << " row=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace knnshap
