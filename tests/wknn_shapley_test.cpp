// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Validation of the quadratic-time discretized WKNN-Shapley
// (arXiv:2401.11103 adapted to Eq 26; core/wknn_shapley.h): the counting
// recursion against the enumeration oracle on the *discretized* game, the
// discretization bound against the continuous oracle and the O(N^K)
// Theorem-7 recursion, tie-heavy fixtures, and the deterministic
// truncation budget.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/exact_enumeration.h"
#include "core/utility.h"
#include "core/weighted_knn_shapley.h"
#include "core/wknn_shapley.h"
#include "test_util.h"
#include "util/binomial.h"

namespace knnshap {
namespace {

using testing_util::ExpectVectorNear;
using testing_util::RandomClassDataset;
using testing_util::SingleQuery;

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) worst = std::max(worst, std::fabs(a[i] - b[i]));
  return worst;
}

/// Enumeration oracle over the discretized game nu-hat.
std::vector<double> DiscretizedOracle(const Dataset& train, const Dataset& test,
                                      const WknnShapleyOptions& options) {
  WknnQueryContext ctx = MakeWknnQueryContext(train, test.features.Row(0),
                                              test.labels[0], options);
  CallableUtility utility(static_cast<int>(train.Size()),
                          [&](std::span<const int> subset) {
                            return WknnDiscretizedUtility(ctx, subset, options.k);
                          });
  return ShapleyByEnumeration(utility);
}

// --- Coalition-weight closed forms ------------------------------------------

TEST(WknnCoalitionWeightsTest, MassesPartitionTheShapleyAverage) {
  // For the closest-ranked point every coalition falls in exactly one
  // group, so the start and group masses must sum to the full Shapley
  // weight: sum_t C(n-1,t) SW(t) + sum_q C(q-2,K-1) GW(q) = 1.
  for (auto [n, k] : {std::pair{5, 1}, {8, 2}, {12, 3}, {30, 3}, {30, 5},
                      {100, 4}, {7, 7}, {5, 9}}) {
    WknnCoalitionWeights weights(n, k);
    double mass = 0.0;
    for (int t = 0; t < weights.K(); ++t) {
      mass += Choose(n - 1, t) * weights.StartWeight(t);
    }
    for (int q = 2; q <= n; ++q) {
      mass += Choose(q - 2, weights.K() - 1) * weights.GroupWeight(q);
    }
    EXPECT_NEAR(mass, 1.0, 1e-12) << "n=" << n << " k=" << k;
  }
}

TEST(WknnCoalitionWeightsTest, TailMassIsMonotoneAndDrivesTruncation) {
  WknnCoalitionWeights weights(200, 3);
  for (int q = 1; q < 200; ++q) {
    EXPECT_GE(weights.TailMass(q) + 1e-15, weights.TailMass(q + 1));
  }
  EXPECT_EQ(weights.TailMass(200), 0.0);
  EXPECT_EQ(weights.TruncationRank(0.0), 200);  // exact mode
  const int coarse = weights.TruncationRank(0.05);
  const int fine = weights.TruncationRank(0.001);
  EXPECT_LE(coarse, fine);
  EXPECT_LT(coarse, 200);  // a real budget truncates a 200-point corpus
  EXPECT_LE(weights.TailMass(coarse), 0.05);
}

// --- Exactness on the discretized game --------------------------------------

struct WknnCase {
  int n;
  int k;
  int bits;
  WeightKernel kernel;
  uint64_t seed;
};

class WknnVsOracleTest : public ::testing::TestWithParam<WknnCase> {};

TEST_P(WknnVsOracleTest, MatchesEnumerationOfDiscretizedGame) {
  auto [n, k, bits, kernel, seed] = GetParam();
  Dataset train = RandomClassDataset(static_cast<size_t>(n), 2, 3, seed);
  Dataset test = SingleQuery(3, seed + 77, 1);
  WknnShapleyOptions options;
  options.k = k;
  options.weight_bits = bits;
  options.weights.kernel = kernel;
  auto oracle = DiscretizedOracle(train, test, options);
  auto fast = WknnShapleySingle(train, test.features.Row(0), test.labels[0],
                                options);
  ExpectVectorNear(fast, oracle, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WknnVsOracleTest,
    ::testing::Values(
        WknnCase{4, 1, 3, WeightKernel::kInverseDistance, 1},
        WknnCase{6, 2, 3, WeightKernel::kInverseDistance, 2},
        WknnCase{8, 3, 3, WeightKernel::kInverseDistance, 3},
        WknnCase{10, 2, 2, WeightKernel::kInverseDistance, 4},
        WknnCase{12, 3, 4, WeightKernel::kInverseDistance, 5},
        WknnCase{9, 1, 1, WeightKernel::kGaussian, 6},
        WknnCase{10, 4, 3, WeightKernel::kGaussian, 7},
        WknnCase{8, 2, 6, WeightKernel::kUniform, 8},
        WknnCase{11, 5, 2, WeightKernel::kInverseDistance, 9},
        WknnCase{6, 5, 3, WeightKernel::kInverseDistance, 10},  // K = N-1
        WknnCase{5, 8, 3, WeightKernel::kInverseDistance, 11},  // K > N
        WknnCase{12, 4, 3, WeightKernel::kGaussian, 12}));

TEST(WknnShapleyTest, TieHeavyDuplicateDistancesMatchOracle) {
  // Duplicated rows and mirror-symmetric rows produce runs of identical
  // distances — the regime where a rank-based recursion can disagree with
  // the subset evaluator if the tie order drifts. Pin both the discretized
  // oracle match and the rank order's tie-break-by-index contract.
  Dataset train;
  train.name = "ties";
  train.features = Matrix(10, 2);
  const float rows[10][2] = {{1.f, 0.f}, {0.f, 1.f},  {1.f, 0.f},  {0.f, 1.f},
                             {-1.f, 0.f}, {0.f, -1.f}, {2.f, 0.f},  {0.f, 2.f},
                             {2.f, 0.f},  {1.f, 0.f}};
  train.labels = {1, 0, 0, 1, 1, 0, 1, 0, 1, 1};
  for (size_t i = 0; i < 10; ++i) {
    auto row = train.features.MutableRow(i);
    row[0] = rows[i][0];
    row[1] = rows[i][1];
  }
  Dataset test;
  test.features = Matrix(1, 2);  // equidistant from all four unit points
  test.features.MutableRow(0)[0] = 0.f;
  test.features.MutableRow(0)[1] = 0.f;
  test.labels = {1};

  for (int k : {1, 2, 3, 4}) {
    for (int bits : {1, 2, 3}) {
      SCOPED_TRACE("k=" + std::to_string(k) + " bits=" + std::to_string(bits));
      WknnShapleyOptions options;
      options.k = k;
      options.weight_bits = bits;
      options.weights.kernel = WeightKernel::kInverseDistance;
      auto oracle = DiscretizedOracle(train, test, options);
      auto fast = WknnShapleySingle(train, test.features.Row(0), 1, options);
      ExpectVectorNear(fast, oracle, 1e-10);

      WknnQueryContext ctx =
          MakeWknnQueryContext(train, test.features.Row(0), 1, options);
      for (size_t r = 1; r < 10; ++r) {  // ties must break by row index
        EXPECT_LE(ctx.raw[r], ctx.raw[r - 1] + 1e-12);
      }
    }
  }
}

TEST(WknnShapleyTest, EdgeCases) {
  WknnShapleyOptions options;
  options.k = 2;
  options.weights.kernel = WeightKernel::kInverseDistance;

  // N = 1: the lone point carries its correctness bit.
  Dataset one = RandomClassDataset(1, 2, 3, 21);
  Dataset q = SingleQuery(3, 22, one.labels[0]);
  auto sv = WknnShapleySingle(one, q.features.Row(0), one.labels[0], options);
  ASSERT_EQ(sv.size(), 1u);
  EXPECT_NEAR(sv[0], 1.0, 1e-12);
  sv = WknnShapleySingle(one, q.features.Row(0), one.labels[0] + 1, options);
  EXPECT_NEAR(sv[0], 0.0, 1e-12);

  // K >= N plays identically to K = N.
  Dataset train = RandomClassDataset(7, 2, 3, 23);
  Dataset test = SingleQuery(3, 24, 1);
  WknnShapleyOptions capped = options;
  capped.k = 7;
  WknnShapleyOptions beyond = options;
  beyond.k = 50;
  auto sv_capped = WknnShapleySingle(train, test.features.Row(0), 1, capped);
  auto sv_beyond = WknnShapleySingle(train, test.features.Row(0), 1, beyond);
  ExpectVectorNear(sv_beyond, sv_capped, 1e-12);
}

TEST(WknnShapleyTest, EfficiencyAxiomOnDiscretizedGame) {
  // Exact-mode values must sum to nu-hat(grand coalition).
  Dataset train = RandomClassDataset(40, 3, 4, 31);
  Dataset test = SingleQuery(4, 32, 2);
  WknnShapleyOptions options;
  options.k = 4;
  options.weight_bits = 4;
  options.weights.kernel = WeightKernel::kGaussian;
  auto sv = WknnShapleySingle(train, test.features.Row(0), 2, options);
  WknnQueryContext ctx = MakeWknnQueryContext(train, test.features.Row(0), 2,
                                              options);
  std::vector<int> grand(train.Size());
  std::iota(grand.begin(), grand.end(), 0);
  const double total = std::accumulate(sv.begin(), sv.end(), 0.0);
  EXPECT_NEAR(total, WknnDiscretizedUtility(ctx, grand, options.k), 1e-10);
}

// --- Discretization: bound against the continuous game ----------------------

TEST(WknnDiscretizationTest, WithinBoundOfContinuousOracle) {
  for (uint64_t seed : {41ull, 42ull, 43ull}) {
    Dataset train = RandomClassDataset(10, 2, 3, seed);
    Dataset test = SingleQuery(3, seed + 7, 1);
    WknnShapleyOptions options;
    options.k = 3;
    options.weight_bits = 6;
    options.weights.kernel = WeightKernel::kInverseDistance;

    WeightConfig weights;
    weights.kernel = WeightKernel::kInverseDistance;
    KnnSubsetUtility continuous(&train, &test, options.k,
                                KnnTask::kWeightedClassification, weights);
    auto oracle = ShapleyByEnumeration(continuous);
    auto fast =
        WknnShapleySingle(train, test.features.Row(0), test.labels[0], options);

    WknnQueryContext ctx = MakeWknnQueryContext(train, test.features.Row(0),
                                                test.labels[0], options);
    const double bound = WknnDiscretizationBound(ctx, options.k);
    EXPECT_LE(MaxAbsDiff(fast, oracle), bound + 1e-12) << "seed " << seed;
    EXPECT_LT(bound, 0.2);  // 6 bits track the continuous weights closely
  }
}

TEST(WknnDiscretizationTest, BoundShrinksAsBitsGrow) {
  Dataset train = RandomClassDataset(12, 2, 3, 51);
  Dataset test = SingleQuery(3, 58, 0);
  WknnShapleyOptions options;
  options.k = 3;
  options.weights.kernel = WeightKernel::kInverseDistance;
  double previous = 1e9;
  for (int bits : {1, 3, 5, 7}) {
    options.weight_bits = bits;
    WknnQueryContext ctx =
        MakeWknnQueryContext(train, test.features.Row(0), 0, options);
    const double bound = WknnDiscretizationBound(ctx, options.k);
    EXPECT_LE(bound, previous + 1e-12);
    previous = bound;
  }
  EXPECT_LT(previous, 0.02);  // 7 bits: the grid is visually continuous
}

// --- Against the O(N^K) Theorem-7 recursion ---------------------------------

TEST(WknnVsTheorem7Test, MatchesWithinDiscretizationBound) {
  struct Shape {
    int n;
    int k;
  };
  for (auto [n, k] : {Shape{200, 2}, Shape{80, 3}}) {
    SCOPED_TRACE("n=" + std::to_string(n) + " k=" + std::to_string(k));
    Dataset train = RandomClassDataset(static_cast<size_t>(n), 2, 4, 61);
    Dataset test = SingleQuery(4, 67, 1);

    WeightedShapleyOptions exact_options;
    exact_options.k = k;
    exact_options.weights.kernel = WeightKernel::kInverseDistance;
    exact_options.task = KnnTask::kWeightedClassification;
    auto theorem7 = ExactWeightedKnnShapleySingle(train, test.features.Row(0),
                                                  /*test_label=*/1,
                                                  /*test_target=*/0.0,
                                                  exact_options);

    WknnShapleyOptions options;
    options.k = k;
    options.weight_bits = 7;
    options.weights.kernel = WeightKernel::kInverseDistance;
    auto fast =
        WknnShapleySingle(train, test.features.Row(0), /*test_label=*/1, options);

    WknnQueryContext ctx =
        MakeWknnQueryContext(train, test.features.Row(0), 1, options);
    const double bound = WknnDiscretizationBound(ctx, k);
    EXPECT_LE(MaxAbsDiff(fast, theorem7), bound + 1e-12);
  }
}

// --- Deterministic approximation --------------------------------------------

TEST(WknnApproximationTest, TruncationRespectsTheBudget) {
  Dataset train = RandomClassDataset(150, 2, 4, 71);
  Dataset test = SingleQuery(4, 72, 1);
  WknnShapleyOptions options;
  options.k = 3;
  options.weights.kernel = WeightKernel::kInverseDistance;
  auto exact = WknnShapleySingle(train, test.features.Row(0), 1, options);

  WknnCoalitionWeights weights(150, 3);
  int previous_rank = 0;
  for (double budget : {0.05, 0.01, 0.002}) {
    SCOPED_TRACE(budget);
    options.approx_error = budget;
    auto approx = WknnShapleySingle(train, test.features.Row(0), 1, options);
    EXPECT_LE(MaxAbsDiff(approx, exact), budget + 1e-12);
    // Tighter budgets look farther down the ranking.
    const int rank = weights.TruncationRank(budget);
    EXPECT_GE(rank, previous_rank);
    previous_rank = rank;
  }
  EXPECT_GT(previous_rank, weights.TruncationRank(0.05));

  // A budget below the smallest tail step reproduces the exact values.
  options.approx_error = 1e-300;
  auto tight = WknnShapleySingle(train, test.features.Row(0), 1, options);
  ExpectVectorNear(tight, exact, 0.0);
}

// --- Multi-query averaging + determinism ------------------------------------

TEST(WknnShapleyTest, ParallelMatchesSerialBitwise) {
  Dataset train = RandomClassDataset(60, 2, 4, 81);
  Dataset test = RandomClassDataset(6, 2, 4, 82);
  WknnShapleyOptions options;
  options.k = 3;
  options.weights.kernel = WeightKernel::kGaussian;
  auto serial = WknnShapley(train, test, options, /*parallel=*/false);
  auto parallel = WknnShapley(train, test, options, /*parallel=*/true);
  EXPECT_EQ(serial, parallel);  // bitwise: merge order is query order
}

}  // namespace
}  // namespace knnshap
