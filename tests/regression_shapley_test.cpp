// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Validation of Theorem 6: exact Shapley values for unweighted KNN
// regression against the enumeration oracle and the axioms.

#include <gtest/gtest.h>

#include <numeric>

#include "core/exact_enumeration.h"
#include "core/knn_regression_shapley.h"
#include "core/utility.h"
#include "test_util.h"

namespace knnshap {
namespace {

using testing_util::ExpectVectorNear;
using testing_util::RandomRegDataset;
using testing_util::SingleQuery;

struct RegCase {
  int n;
  int k;
  uint64_t seed;
};

class RegressionVsOracleTest : public ::testing::TestWithParam<RegCase> {};

TEST_P(RegressionVsOracleTest, RecursionMatchesEnumeration) {
  auto [n, k, seed] = GetParam();
  Dataset train = RandomRegDataset(static_cast<size_t>(n), 3, seed);
  Dataset test = SingleQuery(3, seed + 500, 0, /*target=*/0.7);
  KnnSubsetUtility utility(&train, &test, k, KnnTask::kRegression);
  auto oracle = ShapleyByEnumeration(utility);
  auto fast = ExactKnnRegressionShapley(train, test, k, /*parallel=*/false);
  // The oracle's efficiency constant differs by nu(empty) = -y_test^2,
  // which is a constant shared by all coalitions containing at least one
  // player... the SV allocates nu(I) - nu(empty) so the values themselves
  // must match exactly.
  ExpectVectorNear(fast, oracle, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegressionVsOracleTest,
                         ::testing::Values(RegCase{3, 1, 1}, RegCase{5, 1, 2},
                                           RegCase{6, 2, 3}, RegCase{8, 3, 4},
                                           RegCase{10, 2, 5}, RegCase{10, 4, 6},
                                           RegCase{12, 1, 7}, RegCase{12, 5, 8},
                                           RegCase{7, 6, 9},  // N = K+1 boundary
                                           RegCase{11, 3, 10}));

TEST(RegressionShapleyTest, GroupRationalityWithEmptyOffset) {
  // sum_i s_i = nu(I) - nu(empty) where nu(empty) = -y_test^2.
  Dataset train = RandomRegDataset(20, 4, 20);
  Dataset test = SingleQuery(4, 21, 0, 1.3);
  const int k = 3;
  auto sv = ExactKnnRegressionShapley(train, test, k, false);
  KnnSubsetUtility utility(&train, &test, k, KnnTask::kRegression);
  double total = std::accumulate(sv.begin(), sv.end(), 0.0);
  double expected = utility.GrandValue() - (-1.3 * 1.3);
  EXPECT_NEAR(total, expected, 1e-9);
}

TEST(RegressionShapleyTest, IdenticalTargetsOfAdjacentPointsShareValueDiff) {
  // Eq (63): if y_{alpha_i} = y_{alpha_{i+1}} the two adjacent points have
  // identical SVs.
  std::vector<double> targets = {2.0, 2.0, -1.0, 0.5, 0.5, 3.0};
  auto sv = KnnRegressionShapleyRecursion(targets, 0.2, 2);
  EXPECT_NEAR(sv[0], sv[1], 1e-12);
  EXPECT_NEAR(sv[3], sv[4], 1e-12);
}

TEST(RegressionShapleyTest, PerfectNeighborsBeatHarmfulOnes) {
  // Nearest point predicts the target exactly; a far point is wildly off.
  // The exact SV must rank the accurate near point above the harmful one.
  std::vector<double> targets = {1.0, 1.0, 1.0, 25.0};
  double test_target = 1.0;
  auto sv = KnnRegressionShapleyRecursion(targets, test_target, 1);
  EXPECT_GT(sv[0], sv[3]);
}

TEST(RegressionShapleyTest, MultiTestAveragesSingleTests) {
  Dataset train = RandomRegDataset(15, 3, 30);
  Dataset test = RandomRegDataset(3, 3, 31);
  auto multi = ExactKnnRegressionShapley(train, test, 2, false);
  std::vector<double> manual(train.Size(), 0.0);
  for (size_t j = 0; j < test.Size(); ++j) {
    auto single = ExactKnnRegressionShapleySingle(train, test.features.Row(j),
                                                  test.targets[j], 2);
    for (size_t i = 0; i < train.Size(); ++i) manual[i] += single[i] / 3.0;
  }
  ExpectVectorNear(multi, manual, 1e-12);
}

TEST(RegressionShapleyTest, ParallelMatchesSerial) {
  Dataset train = RandomRegDataset(40, 4, 32);
  Dataset test = RandomRegDataset(6, 4, 33);
  auto serial = ExactKnnRegressionShapley(train, test, 3, false);
  auto parallel = ExactKnnRegressionShapley(train, test, 3, true);
  ExpectVectorNear(serial, parallel, 1e-12);
}

TEST(RegressionShapleyTest, ConstantTargetsSplitEvenlyByDefinition) {
  // All targets equal to the test target: every coalition of size >= K has
  // utility 0, smaller ones partial error; symmetric points (identical
  // target) must all... at minimum, group rationality and sign sanity.
  std::vector<double> targets(10, 2.0);
  auto sv = KnnRegressionShapleyRecursion(targets, 2.0, 2);
  double total = std::accumulate(sv.begin(), sv.end(), 0.0);
  // nu(I) = 0 and nu(empty) = -4 -> total = 4.
  EXPECT_NEAR(total, 4.0, 1e-9);
  for (double s : sv) EXPECT_GT(s, 0.0);
}

TEST(RegressionShapleyTest, K1MatchesDirectFormula) {
  // For K = 1 the recursion collapses to
  // s_i - s_{i+1} = ((y_{i+1}-t)^2 - (y_i-t)^2)/i.
  std::vector<double> targets = {0.5, -1.0, 2.0, 0.0, 4.0};
  double t = 0.25;
  auto sv = KnnRegressionShapleyRecursion(targets, t, 1);
  for (size_t i = 0; i + 1 < targets.size(); ++i) {
    double e_next = (targets[i + 1] - t) * (targets[i + 1] - t);
    double e_cur = (targets[i] - t) * (targets[i] - t);
    EXPECT_NEAR(sv[i] - sv[i + 1], (e_next - e_cur) / static_cast<double>(i + 1),
                1e-12);
  }
}

}  // namespace
}  // namespace knnshap
