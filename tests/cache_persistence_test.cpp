// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Crash-safety tests for the result-cache snapshot format: atomic save
// (a failed or interrupted save leaves the previous snapshot readable),
// per-entry checksums, prefix salvage of torn files, and a table of
// hand-corrupted files covering every untrusted header/length field —
// each must yield a specific structured Status, never UB (this test runs
// in CI's ASan/UBSan matrix).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "engine/result_cache.h"
#include "util/fault.h"

namespace knnshap {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

ResultCacheKey Key(uint64_t train, uint64_t test, const std::string& method) {
  ResultCacheKey key;
  key.train_fingerprint = train;
  key.test_fingerprint = test;
  key.method = method;
  key.params_fingerprint = train ^ test;
  return key;
}

void Fill(ResultCache* cache, int entries, int values_per_entry) {
  for (int i = 1; i <= entries; ++i) {
    auto values = std::make_shared<std::vector<double>>();
    for (int v = 0; v < values_per_entry; ++v) {
      values->push_back(static_cast<double>(i) + 0.25 * v);
    }
    cache->Put(Key(100 + i, 200 + i, "exact"), std::move(values));
  }
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(CachePersistenceTest, RoundTripPreservesEntriesAndRecency) {
  const std::string path = TempPath("roundtrip.cache");
  ResultCache cache(8);
  Fill(&cache, 3, 4);
  StatusOr<size_t> saved = cache.SaveTo(path);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  EXPECT_EQ(saved.value(), 3u);

  ResultCache restored(8);
  StatusOr<CacheLoadResult> loaded = restored.LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().entries, 3u);
  EXPECT_FALSE(loaded.value().salvaged);
  EXPECT_TRUE(loaded.value().warning.empty());
  for (int i = 1; i <= 3; ++i) {
    auto values = restored.Get(Key(100 + i, 200 + i, "exact"));
    ASSERT_NE(values, nullptr) << "entry " << i;
    EXPECT_EQ(values->size(), 4u);
    EXPECT_EQ((*values)[0], static_cast<double>(i));
  }
  std::remove(path.c_str());
}

TEST(CachePersistenceTest, SaveNeverTouchesDestinationBeforeDurable) {
  // The satellite pin: an interrupted save (injected mid-write kill) must
  // leave the previous snapshot byte-identical and loadable — SaveTo may
  // never open the destination with trunc before the new bytes are safe.
  const std::string path = TempPath("atomic.cache");
  ResultCache cache(8);
  Fill(&cache, 2, 3);
  ASSERT_TRUE(cache.SaveTo(path).ok());
  const std::string before = ReadAll(path);

  ResultCache bigger(8);
  Fill(&bigger, 5, 3);
  ASSERT_TRUE(FaultRegistry::Global().Configure("cache_write:after=1"));
  StatusOr<size_t> crashed = bigger.SaveTo(path);
  FaultRegistry::Global().Reset();
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kDataLoss);

  // Old file: untouched, still loads cleanly.
  EXPECT_EQ(ReadAll(path), before);
  ResultCache restored(8);
  StatusOr<CacheLoadResult> loaded = restored.LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().entries, 2u);
  EXPECT_FALSE(loaded.value().salvaged);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(CachePersistenceTest, FailedRenameLeavesOldFileReadable) {
  const std::string path = TempPath("rename.cache");
  ResultCache cache(8);
  Fill(&cache, 2, 3);
  ASSERT_TRUE(cache.SaveTo(path).ok());
  const std::string before = ReadAll(path);

  ASSERT_TRUE(FaultRegistry::Global().Configure("cache_rename:after=0"));
  StatusOr<size_t> failed = cache.SaveTo(path);
  FaultRegistry::Global().Reset();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(ReadAll(path), before);
  // The torn tmp is cleaned up on the rename path.
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(CachePersistenceTest, TornSaveSalvagesValidPrefixAfterRestart) {
  // The acceptance-criteria flow: kill mid-save via fault injection, then
  // "restart" (a fresh cache) and load the torn tmp file — the valid
  // prefix is salvaged, never a crash or a corrupt merge.
  const std::string path = TempPath("torn.cache");
  ResultCache cache(8);
  Fill(&cache, 4, 3);
  ASSERT_TRUE(FaultRegistry::Global().Configure("cache_write:after=2"));
  StatusOr<size_t> crashed = cache.SaveTo(path);
  FaultRegistry::Global().Reset();
  ASSERT_FALSE(crashed.ok());

  // The interrupted writer left `path + ".tmp"` torn: a count promising 4
  // entries but bytes for 2. Loading it salvages exactly those 2.
  ResultCache restored(8);
  StatusOr<CacheLoadResult> loaded = restored.LoadFrom(path + ".tmp");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().salvaged);
  EXPECT_EQ(loaded.value().entries, 2u);
  EXPECT_NE(loaded.value().warning.find("salvaged 2 of 4"), std::string::npos)
      << loaded.value().warning;
  EXPECT_EQ(restored.Size(), 2u);
  std::remove((path + ".tmp").c_str());
}

TEST(CachePersistenceTest, MissingFileIsNotFound) {
  ResultCache cache(8);
  StatusOr<CacheLoadResult> loaded =
      cache.LoadFrom(TempPath("does-not-exist.cache"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Fuzz-ish corruption table: every untrusted field, hand-corrupted.
// ---------------------------------------------------------------------------

class CacheCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("corrupt.cache");
    ResultCache cache(8);
    Fill(&cache, 3, 4);
    ASSERT_TRUE(cache.SaveTo(path_).ok());
    bytes_ = ReadAll(path_);
    // Layout: 8B magic + 4B version + 8B count, then per entry:
    // 3x8B fingerprints + 4B method_len + method + 8B num_values +
    // values + 8B checksum.
    entry_size_ = 3 * 8 + 4 + 5 /* "exact" */ + 8 + 4 * 8 + 8;
    ASSERT_EQ(bytes_.size(), 20 + 3 * entry_size_);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  // Writes a mutated copy and loads it into a fresh cache.
  StatusOr<CacheLoadResult> LoadMutated(const std::string& bytes) {
    WriteAll(path_, bytes);
    ResultCache cache(8);
    return cache.LoadFrom(path_);
  }

  std::string path_;
  std::string bytes_;
  size_t entry_size_ = 0;
};

TEST_F(CacheCorruptionTest, BadMagicIsDataLossNothingLoaded) {
  std::string bad = bytes_;
  bad[0] = 'X';
  StatusOr<CacheLoadResult> loaded = LoadMutated(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("not a knnshap cache file"),
            std::string::npos);
}

TEST_F(CacheCorruptionTest, BadVersionIsDataLoss) {
  std::string bad = bytes_;
  bad[8] = 99;  // version lives right after the 8-byte magic
  StatusOr<CacheLoadResult> loaded = LoadMutated(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST_F(CacheCorruptionTest, TruncatedBeforeCountIsDataLoss) {
  StatusOr<CacheLoadResult> loaded = LoadMutated(bytes_.substr(0, 14));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST_F(CacheCorruptionTest, TruncationAtEveryByteNeverCrashes) {
  // The strongest torn-file guarantee: cut the file at EVERY byte
  // boundary. Header cuts are data_loss; past the header each cut either
  // loads a clean prefix or salvages one — and never reads out of bounds
  // (ASan/UBSan enforce the "never" in CI).
  for (size_t cut = 0; cut < bytes_.size(); ++cut) {
    StatusOr<CacheLoadResult> loaded = LoadMutated(bytes_.substr(0, cut));
    if (cut < 20) {
      ASSERT_FALSE(loaded.ok()) << "cut at " << cut;
      EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
          << "cut at " << cut;
      continue;
    }
    ASSERT_TRUE(loaded.ok()) << "cut at " << cut << ": "
                             << loaded.status().ToString();
    const size_t whole_entries = (cut - 20) / entry_size_;
    EXPECT_EQ(loaded.value().entries, whole_entries) << "cut at " << cut;
    // Anything short of the full file means damage was noticed.
    EXPECT_TRUE(loaded.value().salvaged) << "cut at " << cut;
  }
}

TEST_F(CacheCorruptionTest, OversizedMethodLengthSalvagesPriorEntries) {
  std::string bad = bytes_;
  // Entry 1's method_len field (after the 20-byte header + entry 0 and
  // entry 1's three fingerprints).
  const size_t offset = 20 + entry_size_ + 3 * 8;
  const uint32_t huge = 1u << 30;
  std::memcpy(&bad[offset], &huge, sizeof(huge));
  StatusOr<CacheLoadResult> loaded = LoadMutated(bad);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().entries, 1u);
  EXPECT_TRUE(loaded.value().salvaged);
  EXPECT_NE(loaded.value().warning.find("method length out of bounds"),
            std::string::npos)
      << loaded.value().warning;
}

TEST_F(CacheCorruptionTest, OversizedValueCountSalvagesPriorEntries) {
  std::string bad = bytes_;
  // Entry 1's num_values field: header + entry 0 + fingerprints +
  // method_len + "exact".
  const size_t offset = 20 + entry_size_ + 3 * 8 + 4 + 5;
  const uint64_t huge = 1ull << 40;  // would be an 8 TiB allocation
  std::memcpy(&bad[offset], &huge, sizeof(huge));
  StatusOr<CacheLoadResult> loaded = LoadMutated(bad);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().entries, 1u);
  EXPECT_TRUE(loaded.value().salvaged);
  EXPECT_NE(loaded.value().warning.find("value count out of bounds"),
            std::string::npos)
      << loaded.value().warning;
}

TEST_F(CacheCorruptionTest, OversizedHeaderCountSalvagesWholeFile) {
  std::string bad = bytes_;
  const uint64_t huge = ~0ull;  // claims 2^64-1 entries
  std::memcpy(&bad[12], &huge, sizeof(huge));
  StatusOr<CacheLoadResult> loaded = LoadMutated(bad);
  ASSERT_TRUE(loaded.ok());
  // All three real entries load; the lie is detected right after them.
  EXPECT_EQ(loaded.value().entries, 3u);
  EXPECT_TRUE(loaded.value().salvaged);
}

TEST_F(CacheCorruptionTest, FlippedPayloadBitFailsItsChecksumOnly) {
  std::string bad = bytes_;
  // Flip one bit inside entry 1's first double.
  const size_t offset = 20 + entry_size_ + 3 * 8 + 4 + 5 + 8 + 3;
  bad[offset] = static_cast<char>(bad[offset] ^ 0x10);
  StatusOr<CacheLoadResult> loaded = LoadMutated(bad);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().entries, 1u);  // entry 0 survives
  EXPECT_TRUE(loaded.value().salvaged);
  EXPECT_NE(loaded.value().warning.find("checksum mismatch"),
            std::string::npos)
      << loaded.value().warning;
}

TEST_F(CacheCorruptionTest, V1FilesAreRejectedNotGuessed) {
  // A version-1 header (no checksums) must be rejected at the header, not
  // mis-parsed: the operator regenerates with save_cache.
  std::string v1 = bytes_.substr(0, 20);
  v1[8] = 1;
  StatusOr<CacheLoadResult> loaded = LoadMutated(v1);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace knnshap
