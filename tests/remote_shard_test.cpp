// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Remote shard transport coverage (src/shard/socket_worker.h, src/util/
// net.h, the `digests`/`load_delta` sync ops): a router whose shards live
// behind TCP sockets must answer byte-for-byte identically to the
// unsharded pipeline — through mutations, through a primary replica dying
// mid-session (failover to the secondary is transparent), and with only
// the changed corpus blocks crossing the wire on re-sync. When every
// replica of a shard is dead the server answers a structured
// `unavailable` with retry_after_ms and recovers as soon as a worker
// comes back. Plus unit coverage for the wire helpers (endpoint parsing,
// fingerprint encoding, corpus-sync planning).
//
// The workers here are LoopbackWorker: a real RequestPipeline served over
// a real 127.0.0.1 socket by an in-test accept loop — the same per-
// connection FdInBuf/FdOutBuf plumbing knnshap_serve --shard-listen uses,
// without forking a binary (CI owns the out-of-process arm).

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "dataset/dataset.h"
#include "serve/pipeline.h"
#include "shard/wire.h"
#include "util/fingerprint.h"
#include "util/json.h"
#include "util/net.h"
#include "util/random.h"

namespace knnshap {
namespace {

// ---------------------------------------------------------------------------
// LoopbackWorker: one remote shard worker on an ephemeral 127.0.0.1 port.

class LoopbackWorker {
 public:
  explicit LoopbackWorker(int port = 0) {
    PipelineOptions options;
    options.pipelined = false;  // what --shard-listen forces
    options.emit_timing = false;
    pipeline_ = std::make_unique<RequestPipeline>(options);
    std::string error;
    listen_fd_ = ListenTcp(Endpoint{"127.0.0.1", port}, 16, &error);
    EXPECT_GE(listen_fd_, 0) << error;
    port_ = BoundPort(listen_fd_);
    EXPECT_GT(port_, 0);
    acceptor_ = std::thread([this] { AcceptLoop(); });
  }

  ~LoopbackWorker() { Stop(); }

  int Port() const { return port_; }
  std::string Address() const { return "127.0.0.1:" + std::to_string(port_); }

  /// "Kill" the worker: stop accepting and force-close every live
  /// connection so the router sees a mid-query transport death, not a
  /// graceful goodbye. Idempotent.
  void Stop() {
    if (stopped_.exchange(true)) return;
    shutdown(listen_fd_, SHUT_RDWR);  // wakes the blocking accept
    close(listen_fd_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (int fd : open_fds_) shutdown(fd, SHUT_RDWR);
    }
    acceptor_.join();
    // No new handlers can appear once the acceptor has exited.
    for (std::thread& handler : handlers_) handler.join();
  }

 private:
  void AcceptLoop() {
    while (true) {
      const int fd = AcceptTcp(listen_fd_);
      if (fd < 0) {
        if (errno == EINTR && !stopped_.load()) continue;
        return;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        open_fds_.push_back(fd);
      }
      handlers_.emplace_back([this, fd] {
        FdInBuf in_buf(fd);
        FdOutBuf out_buf(fd);
        std::istream in(&in_buf);
        std::ostream out(&out_buf);
        pipeline_->Run(in, out);
        out.flush();
        {
          std::lock_guard<std::mutex> lock(mutex_);
          const auto it = std::find(open_fds_.begin(), open_fds_.end(), fd);
          if (it != open_fds_.end()) open_fds_.erase(it);
        }
        close(fd);
      });
    }
  }

  std::unique_ptr<RequestPipeline> pipeline_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stopped_{false};
  std::thread acceptor_;
  std::mutex mutex_;
  std::vector<int> open_fds_;
  std::vector<std::thread> handlers_;  // acceptor-thread-only until Stop
};

// ---------------------------------------------------------------------------
// Shared request plumbing (mirrors shard_test.cpp).

std::string RowsJson(size_t n, size_t dim, int num_classes, uint64_t seed) {
  Rng rng(seed);
  std::string out = "[";
  for (size_t r = 0; r < n; ++r) {
    if (r > 0) out += ",";
    out += "[";
    for (size_t d = 0; d < dim; ++d) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4f,", rng.NextGaussian());
      out += buf;
    }
    out += std::to_string(rng.NextIndex(static_cast<uint64_t>(num_classes)));
    out += "]";
  }
  out += "]";
  return out;
}

std::string Answer(RequestPipeline& pipeline, const std::string& line) {
  JsonParseResult parsed = ParseJson(line);
  EXPECT_TRUE(parsed.ok()) << parsed.error << " in " << line;
  return pipeline.HandleSync(parsed.value).Dump();
}

std::unique_ptr<RequestPipeline> MakeBaseline() {
  PipelineOptions options;
  options.emit_timing = false;
  return std::make_unique<RequestPipeline>(options);
}

std::unique_ptr<RequestPipeline> MakeRemoteRouter(
    std::vector<std::vector<std::string>> groups) {
  PipelineOptions options;
  options.emit_timing = false;
  options.shards = static_cast<int>(groups.size());
  options.shard_remote = std::move(groups);
  // Short dial budget: dead replicas fail fast in the chaos tests.
  options.shard_connect_timeout_ms = 1000;
  options.shard_connect_attempts = 2;
  options.shard_io_timeout_ms = 10000;
  return std::make_unique<RequestPipeline>(options);
}

uint64_t CounterValue(RequestPipeline& pipeline, const std::string& name) {
  return pipeline.Metrics()->GetCounter(name)->Value();
}

// The session both servers must answer identically — every routed method
// (truncated included) plus value traffic interleaved with mutations, so
// the remote workers re-sync mid-session.
std::vector<std::string> RemoteEquivalenceSession(uint64_t seed) {
  std::vector<std::string> lines;
  lines.push_back(R"({"op":"load","name":"train","rows":)" +
                  RowsJson(600, 4, 3, seed) + R"(,"target":"label"})");
  lines.push_back(R"({"op":"load","name":"q","rows":)" +
                  RowsJson(3, 4, 3, seed + 1) + R"(,"target":"label"})");
  const auto value = [](const std::string& fields) {
    return R"({"op":"value","train":"train","test":"q",)" + fields + "}";
  };
  lines.push_back(value(R"("method":"exact","k":3)"));
  lines.push_back(value(R"("method":"exact","k":3,"approx_error":0.2)"));
  lines.push_back(value(R"("method":"exact-corrected","k":3)"));
  lines.push_back(
      value(R"("method":"weighted-fast","k":2,"kernel":"inverse")"));
  lines.push_back(value(R"("method":"truncated","k":3,"epsilon":0.1)"));
  // Mutate, then revalue: the routers' long-lived workers must delta-sync
  // and keep agreeing.
  lines.push_back(R"({"op":"append","name":"train","rows":)" +
                  RowsJson(5, 4, 3, seed + 2) + "}");
  lines.push_back(value(R"("method":"exact","k":3)"));
  lines.push_back(value(R"("method":"truncated","k":3,"epsilon":0.1)"));
  lines.push_back(R"({"op":"remove","name":"train","row":17})");
  lines.push_back(value(R"("method":"exact-corrected","k":3)"));
  return lines;
}

// ---------------------------------------------------------------------------
// Byte equivalence over real sockets.

TEST(RemoteShardTest, SocketShardedResponsesAreByteIdentical) {
  for (uint64_t seed : {131u, 257u}) {
    const std::vector<std::string> session = RemoteEquivalenceSession(seed);

    std::unique_ptr<RequestPipeline> baseline = MakeBaseline();
    std::vector<std::string> expected;
    for (const std::string& line : session) {
      expected.push_back(Answer(*baseline, line));
    }

    LoopbackWorker worker0, worker1;
    std::unique_ptr<RequestPipeline> remote =
        MakeRemoteRouter({{worker0.Address()}, {worker1.Address()}});
    for (size_t i = 0; i < session.size(); ++i) {
      EXPECT_EQ(Answer(*remote, session[i]), expected[i])
          << "seed=" << seed << " request: " << session[i];
    }
  }
}

// ---------------------------------------------------------------------------
// Failover chaos: primaries die mid-session, secondaries answer — and the
// transcript does not change by a byte.

TEST(RemoteShardTest, PrimaryDeathMidSessionFailsOverByteIdentically) {
  const std::vector<std::string> session = RemoteEquivalenceSession(977);
  std::unique_ptr<RequestPipeline> baseline = MakeBaseline();
  std::vector<std::string> expected;
  for (const std::string& line : session) {
    expected.push_back(Answer(*baseline, line));
  }

  LoopbackWorker primary0, primary1, secondary0, secondary1;
  std::unique_ptr<RequestPipeline> remote = MakeRemoteRouter(
      {{primary0.Address(), secondary0.Address()},
       {primary1.Address(), secondary1.Address()}});

  // The probe pins one fitted router whose worker connections stay
  // established across the kill (cache:false so every issue reaches the
  // shards; no mutation in between so the fit is reused, not rebuilt).
  const std::string probe =
      R"({"op":"value","train":"train","test":"q","method":"exact","k":3,"cache":false})";

  // First half through the primaries (probe expectation computed on a
  // baseline in the same pre-mutation state)...
  const size_t half = session.size() / 2;
  std::unique_ptr<RequestPipeline> half_baseline = MakeBaseline();
  for (size_t i = 0; i < half; ++i) {
    Answer(*half_baseline, session[i]);
    ASSERT_EQ(Answer(*remote, session[i]), expected[i])
        << "request: " << session[i];
  }
  const std::string expected_probe = Answer(*half_baseline, probe);
  ASSERT_EQ(Answer(*remote, probe), expected_probe);

  // ...then both primaries die under the established connections. The
  // next fan-out's exchange hits a dead socket mid-query, latches the
  // replica, and retries the same query on the secondary — which gets a
  // fresh corpus sync and must produce the identical bytes.
  primary0.Stop();
  primary1.Stop();
  EXPECT_EQ(Answer(*remote, probe), expected_probe);
  EXPECT_GE(CounterValue(*remote, "knnshap_shard_failovers_total"), 2u);

  // The rest of the session (mutations included — new fits dial the
  // secondaries directly) also stays byte-identical.
  for (size_t i = half; i < session.size(); ++i) {
    EXPECT_EQ(Answer(*remote, session[i]), expected[i])
        << "request: " << session[i];
  }
}

TEST(RemoteShardTest, AllReplicasDeadAnswersUnavailableThenRecovers) {
  std::unique_ptr<RequestPipeline> baseline = MakeBaseline();
  auto worker0 = std::make_unique<LoopbackWorker>();
  auto worker1 = std::make_unique<LoopbackWorker>();
  const int port0 = worker0->Port(), port1 = worker1->Port();
  std::unique_ptr<RequestPipeline> remote =
      MakeRemoteRouter({{worker0->Address()}, {worker1->Address()}});

  const std::string load = R"({"op":"load","name":"c","rows":)" +
                           RowsJson(600, 3, 2, 313) + R"(,"target":"label"})";
  const std::string load_q = R"({"op":"load","name":"q","rows":)" +
                             RowsJson(2, 3, 2, 314) + R"(,"target":"label"})";
  // cache:false — every request must reach the shards, not the result
  // cache.
  const std::string value =
      R"({"op":"value","train":"c","test":"q","method":"exact","k":3,"cache":false})";
  const std::string expected_value =
      (Answer(*baseline, load), Answer(*baseline, load_q),
       Answer(*baseline, value));

  Answer(*remote, load);
  Answer(*remote, load_q);
  ASSERT_EQ(Answer(*remote, value), expected_value);

  // Kill the only replica of each shard: the fan-out fails, the fit is
  // evicted, and the server answers a structured unavailable with a
  // retry hint instead of a partial (or wrong) result.
  worker0->Stop();
  worker1->Stop();
  JsonValue down = remote->HandleSync(ParseJson(value).value);
  EXPECT_FALSE(down.Get("ok").AsBool(true)) << down.Dump();
  EXPECT_EQ(down.Get("code").AsString(), "unavailable");
  EXPECT_TRUE(down.Has("retry_after_ms")) << down.Dump();

  // Workers come back on the same ports (blank corpus state): the next
  // request re-fits, re-dials, full-loads, and the answer is again
  // byte-identical.
  worker0 = std::make_unique<LoopbackWorker>(port0);
  worker1 = std::make_unique<LoopbackWorker>(port1);
  EXPECT_EQ(Answer(*remote, value), expected_value);
}

// ---------------------------------------------------------------------------
// Delta sync: a mutation ships only the changed blocks, never the corpus.

TEST(RemoteShardTest, ResyncShipsOnlyChangedBlocks) {
  LoopbackWorker worker0, worker1;
  std::unique_ptr<RequestPipeline> remote =
      MakeRemoteRouter({{worker0.Address()}, {worker1.Address()}});
  std::unique_ptr<RequestPipeline> baseline = MakeBaseline();

  const std::string load = R"({"op":"load","name":"c","rows":)" +
                           RowsJson(600, 3, 2, 517) + R"(,"target":"label"})";
  const std::string load_q = R"({"op":"load","name":"q","rows":)" +
                             RowsJson(2, 3, 2, 518) + R"(,"target":"label"})";
  const std::string value =
      R"({"op":"value","train":"c","test":"q","method":"exact","k":3})";
  for (const std::string& line : {load, load_q, value}) {
    EXPECT_EQ(Answer(*remote, line), Answer(*baseline, line));
  }
  // First fit: each worker had no corpus — one full inline load apiece.
  EXPECT_EQ(CounterValue(*remote, "knnshap_shard_full_loads_total"), 2u);
  EXPECT_EQ(CounterValue(*remote, "knnshap_shard_delta_loads_total"), 0u);

  // Append 5 rows: 600 rows -> 605 keeps 3 fingerprint blocks, and only
  // the tail block's content changes.
  const std::string append = R"({"op":"append","name":"c","rows":)" +
                             RowsJson(5, 3, 2, 519) + "}";
  for (const std::string& line : {append, value}) {
    EXPECT_EQ(Answer(*remote, line), Answer(*baseline, line));
  }
  // The re-fit re-synced both long-lived workers via load_delta — one
  // changed block each — with no further full load.
  EXPECT_EQ(CounterValue(*remote, "knnshap_shard_full_loads_total"), 2u);
  EXPECT_EQ(CounterValue(*remote, "knnshap_shard_delta_loads_total"), 2u);
  EXPECT_EQ(CounterValue(*remote, "knnshap_shard_delta_blocks_total"), 2u);
}

// ---------------------------------------------------------------------------
// Wire helpers.

TEST(WireTest, FingerprintHexRoundTrips) {
  for (uint64_t fp : {0ull, 1ull, 0xdeadbeefcafef00dull, ~0ull}) {
    uint64_t parsed = 0;
    ASSERT_TRUE(wire::ParseHexFingerprint(wire::FingerprintHex(fp), &parsed));
    EXPECT_EQ(parsed, fp);
  }
  uint64_t ignored;
  EXPECT_FALSE(wire::ParseHexFingerprint("", &ignored));
  EXPECT_FALSE(wire::ParseHexFingerprint("12345", &ignored));
  EXPECT_FALSE(wire::ParseHexFingerprint("0xnothex", &ignored));
}

TEST(WireTest, PlanCorpusSyncPicksTheCheapestSufficientMode) {
  std::unique_ptr<RequestPipeline> holder = MakeBaseline();
  Answer(*holder, R"({"op":"load","name":"c","rows":)" +
                      RowsJson(600, 3, 2, 611) + R"(,"target":"label"})");
  const JsonValue held =
      holder->HandleSync(ParseJson(R"({"op":"digests","name":"c"})").value);
  ASSERT_TRUE(held.Get("ok").AsBool(false)) << held.Dump();

  const CorpusSnapshot snapshot = *holder->Store().Get("c");
  // Identical corpus: nothing to send.
  wire::CorpusSyncPlan plan =
      wire::PlanCorpusSync(*snapshot.data, *snapshot.digests, held);
  EXPECT_EQ(plan.mode, wire::CorpusSyncPlan::Mode::kNone);

  // One appended row: exactly the tail block is stale.
  std::unique_ptr<RequestPipeline> mutated = MakeBaseline();
  Answer(*mutated, R"({"op":"load","name":"c","rows":)" +
                       RowsJson(600, 3, 2, 611) + R"(,"target":"label"})");
  Answer(*mutated, R"({"op":"append","name":"c","rows":)" +
                       RowsJson(1, 3, 2, 612) + "}");
  const CorpusSnapshot changed = *mutated->Store().Get("c");
  plan = wire::PlanCorpusSync(*changed.data, *changed.digests, held);
  ASSERT_EQ(plan.mode, wire::CorpusSyncPlan::Mode::kDelta);
  ASSERT_EQ(plan.blocks.size(), 1u);
  EXPECT_EQ(plan.blocks[0], changed.digests->NumBlocks() - 1);

  // A worker that never heard of the corpus answers not_found: full load.
  const JsonValue missing = holder->HandleSync(
      ParseJson(R"({"op":"digests","name":"nope"})").value);
  plan = wire::PlanCorpusSync(*snapshot.data, *snapshot.digests, missing);
  EXPECT_EQ(plan.mode, wire::CorpusSyncPlan::Mode::kFull);

  // Incompatible geometry (different dim under the same name): full load.
  std::unique_ptr<RequestPipeline> other = MakeBaseline();
  Answer(*other, R"({"op":"load","name":"c","rows":)" +
                     RowsJson(600, 5, 2, 613) + R"(,"target":"label"})");
  const JsonValue other_digests =
      other->HandleSync(ParseJson(R"({"op":"digests","name":"c"})").value);
  plan = wire::PlanCorpusSync(*snapshot.data, *snapshot.digests, other_digests);
  EXPECT_EQ(plan.mode, wire::CorpusSyncPlan::Mode::kFull);
}

TEST(NetTest, ParseEndpointForms) {
  Endpoint endpoint;
  std::string error;
  ASSERT_TRUE(ParseEndpoint("host.example:7001", &endpoint, &error));
  EXPECT_EQ(endpoint.host, "host.example");
  EXPECT_EQ(endpoint.port, 7001);

  // Bare port picks up the caller's default host.
  ASSERT_TRUE(ParseEndpoint("7002", &endpoint, &error, "127.0.0.1"));
  EXPECT_EQ(endpoint.host, "127.0.0.1");
  EXPECT_EQ(endpoint.port, 7002);

  EXPECT_FALSE(ParseEndpoint("", &endpoint, &error));
  EXPECT_FALSE(ParseEndpoint("host:", &endpoint, &error));
  EXPECT_FALSE(ParseEndpoint("host:notaport", &endpoint, &error));
  EXPECT_FALSE(ParseEndpoint("host:70000", &endpoint, &error));
  // Port 0 is listen-only (ephemeral bind) and off by default.
  EXPECT_FALSE(ParseEndpoint("host:0", &endpoint, &error));
  EXPECT_TRUE(ParseEndpoint("host:0", &endpoint, &error, "0.0.0.0",
                            /*allow_port_zero=*/true));
}

}  // namespace
}  // namespace knnshap
