// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Monte-Carlo machinery: the baseline estimator (Sec 2.2), the improved
// estimator (Algorithm 2), the incremental-utility invariant, and the
// Hoeffding/Bennett sample bounds (Theorem 5).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/baseline_mc.h"
#include "core/bennett.h"
#include "core/exact_enumeration.h"
#include "core/exact_knn_shapley.h"
#include "core/improved_mc.h"
#include "core/knn_regression_shapley.h"
#include "core/multi_seller_shapley.h"
#include "core/utility.h"
#include "test_util.h"
#include "util/stats.h"

namespace knnshap {
namespace {

using testing_util::ExpectVectorNear;
using testing_util::RandomClassDataset;
using testing_util::RandomRegDataset;
using testing_util::SingleQuery;

// ----------------------------------------------------------- sample bounds --

TEST(BennettTest, HFunctionBasics) {
  EXPECT_DOUBLE_EQ(BennettH(0.0), 0.0);
  EXPECT_GT(BennettH(1.0), 0.0);
  // h is increasing and convex-ish; check monotonicity.
  double prev = 0.0;
  for (double u = 0.1; u < 5.0; u += 0.1) {
    double h = BennettH(u);
    EXPECT_GT(h, prev);
    prev = h;
  }
  // h(u) <= u^2 (used for the lower bound of Eq 135).
  for (double u : {0.01, 0.1, 0.5, 1.0, 3.0}) EXPECT_LE(BennettH(u), u * u);
}

TEST(BennettTest, HoeffdingGrowsLogarithmicallyWithN) {
  int64_t t1 = HoeffdingPermutations(1000, 0.1, 0.1, 1.0);
  int64_t t2 = HoeffdingPermutations(1000000, 0.1, 0.1, 1.0);
  EXPECT_GT(t2, t1);
  // log growth: ratio should be modest.
  EXPECT_LT(static_cast<double>(t2) / static_cast<double>(t1), 2.5);
}

TEST(BennettTest, BennettFlatInNForLargeN) {
  // Theorem 5's headline property: T* is nearly independent of N.
  int64_t t_small = BennettPermutations(10000, 1, 0.1, 0.1, 1.0);
  int64_t t_large = BennettPermutations(1000000, 1, 0.1, 0.1, 1.0);
  EXPECT_LT(std::abs(t_large - t_small),
            std::max<int64_t>(8, t_small / 10));
}

TEST(BennettTest, BennettBeatsHoeffdingAtScale) {
  const double eps = 0.1, delta = 0.1, r = 1.0;
  int64_t hoeffding = HoeffdingPermutations(1000000, eps, delta, r);
  int64_t bennett = BennettPermutations(1000000, 1, eps, delta, r);
  EXPECT_LT(bennett, hoeffding);
}

TEST(BennettTest, SolvedTSatisfiesEquation32) {
  const int64_t n = 500;
  const int k = 3;
  const double eps = 0.1, delta = 0.1, r = 1.0;
  int64_t t_star = BennettPermutations(n, k, eps, delta, r);
  auto lhs = [&](double t) {
    double total = 0.0;
    for (int64_t i = 1; i <= n; ++i) {
      double q = i <= k ? 0.0 : static_cast<double>(i - k) / static_cast<double>(i);
      double v = 1.0 - q * q;
      total += std::exp(-t * v * BennettH(eps / (v * r)));
    }
    return total;
  };
  // At T* the constraint must hold; slightly below it must not.
  EXPECT_LE(lhs(static_cast<double>(t_star)), delta / 2.0 + 1e-9);
  if (t_star > 4) {
    EXPECT_GT(lhs(static_cast<double>(t_star) * 0.8), delta / 2.0);
  }
}

TEST(BennettTest, ApproxBoundIsReasonable) {
  // T~ approximates T* within a small factor for moderate N.
  const double eps = 0.1, delta = 0.1, r = 1.0;
  int64_t t_star = BennettPermutations(100000, 2, eps, delta, r);
  int64_t t_approx = ApproxBennettPermutations(2, eps, delta, r);
  EXPECT_GT(t_approx, t_star / 8);
  EXPECT_LT(t_approx, t_star * 8);
  // Eq (135): since h(u) <= u^2, the closed form log(2K/delta)/h(eps/r)
  // dominates r^2/eps^2 log(2K/delta); for eps/r = 0.1 the gap is ~2x.
  double lower = BennettLowerBound(2, eps, delta, r);
  EXPECT_LE(lower, static_cast<double>(t_approx));
  EXPECT_GE(lower, static_cast<double>(t_approx) / 3.0);
}

TEST(BennettTest, TighterEpsilonNeedsMorePermutations) {
  EXPECT_GT(BennettPermutations(1000, 1, 0.01, 0.1, 1.0),
            BennettPermutations(1000, 1, 0.1, 0.1, 1.0));
  EXPECT_GT(HoeffdingPermutations(1000, 0.01, 0.1, 1.0),
            HoeffdingPermutations(1000, 0.1, 0.1, 1.0));
}

// ----------------------------------------------------------- baseline MC --

TEST(BaselineMcTest, ConvergesToEnumerationOracle) {
  Dataset train = RandomClassDataset(8, 2, 3, 1);
  Dataset test = SingleQuery(3, 2, 1);
  KnnSubsetUtility utility(&train, &test, 2, KnnTask::kClassification);
  auto oracle = ShapleyByEnumeration(utility);
  BaselineMcOptions options;
  options.max_permutations = 20000;
  options.seed = 3;
  auto mc = BaselineMcShapley(utility, options);
  EXPECT_LE(MaxAbsDifference(mc.shapley, oracle), 0.02);
}

TEST(BaselineMcTest, HonorsPermutationCap) {
  Dataset train = RandomClassDataset(10, 2, 3, 4);
  Dataset test = SingleQuery(3, 5, 0);
  KnnSubsetUtility utility(&train, &test, 1, KnnTask::kClassification);
  BaselineMcOptions options;
  options.max_permutations = 7;
  auto mc = BaselineMcShapley(utility, options);
  EXPECT_EQ(mc.permutations, 7);
  EXPECT_EQ(mc.utility_evaluations, 7 * 11);  // N evals + empty set per permutation
}

TEST(BaselineMcTest, SnapshotCallbackFires) {
  Dataset train = RandomClassDataset(6, 2, 3, 6);
  Dataset test = SingleQuery(3, 7, 0);
  KnnSubsetUtility utility(&train, &test, 1, KnnTask::kClassification);
  BaselineMcOptions options;
  options.max_permutations = 10;
  options.snapshot_every = 5;
  int fired = 0;
  options.snapshot = [&](int64_t t, const std::vector<double>& estimate) {
    ++fired;
    EXPECT_EQ(estimate.size(), 6u);
    EXPECT_TRUE(t == 5 || t == 10);
  };
  BaselineMcShapley(utility, options);
  EXPECT_EQ(fired, 2);
}

TEST(BaselineMcTest, EpsilonDeltaGuaranteeEmpirically) {
  // With the Hoeffding permutation count and r = 1/K, the estimate must be
  // within epsilon of the truth (with margin to spare at delta = 0.1).
  Dataset train = RandomClassDataset(12, 2, 3, 8);
  Dataset test = SingleQuery(3, 9, 1);
  const int k = 2;
  KnnSubsetUtility utility(&train, &test, k, KnnTask::kClassification);
  auto oracle = ShapleyByEnumeration(utility);
  BaselineMcOptions options;
  options.epsilon = 0.1;
  options.delta = 0.1;
  options.utility_range = 1.0 / k;
  options.seed = 10;
  auto mc = BaselineMcShapley(utility, options);
  EXPECT_LE(MaxAbsDifference(mc.shapley, oracle), options.epsilon);
}

// ----------------------------------------- incremental utility invariant --

struct IncrementalCase {
  int n;
  int k;
  KnnTask task;
  uint64_t seed;
};

class IncrementalUtilityTest : public ::testing::TestWithParam<IncrementalCase> {};

TEST_P(IncrementalUtilityTest, MatchesBatchUtilityAlongPermutations) {
  // The heap-incremental utility must equal the from-scratch utility for
  // every prefix of random permutations — the core correctness property of
  // Algorithm 2.
  auto [n, k, task, seed] = GetParam();
  bool regression = task == KnnTask::kRegression || task == KnnTask::kWeightedRegression;
  Dataset train = regression
                      ? RandomRegDataset(static_cast<size_t>(n), 3, seed)
                      : RandomClassDataset(static_cast<size_t>(n), 3, 3, seed);
  Dataset test = regression ? RandomRegDataset(2, 3, seed + 1)
                            : RandomClassDataset(2, 3, 3, seed + 1);
  WeightConfig weights;
  weights.kernel = WeightKernel::kInverseDistance;
  KnnSubsetUtility batch(&train, &test, k, task, weights);
  IncrementalKnnUtility incremental(&train, &test, k, task, weights);
  Rng rng(seed + 2);
  for (int trial = 0; trial < 3; ++trial) {
    auto perm = rng.Permutation(n);
    incremental.Reset();
    std::vector<int> prefix;
    EXPECT_NEAR(incremental.EmptyValue(), batch.Value(prefix), 1e-9);
    for (int i = 0; i < n; ++i) {
      prefix.push_back(perm[static_cast<size_t>(i)]);
      double inc = incremental.AddPlayer(perm[static_cast<size_t>(i)]);
      double ref = batch.Value(prefix);
      ASSERT_NEAR(inc, ref, 1e-9) << "prefix size " << prefix.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalUtilityTest,
    ::testing::Values(
        IncrementalCase{12, 1, KnnTask::kClassification, 1},
        IncrementalCase{20, 3, KnnTask::kClassification, 2},
        IncrementalCase{15, 2, KnnTask::kWeightedClassification, 3},
        IncrementalCase{15, 2, KnnTask::kRegression, 4},
        IncrementalCase{12, 3, KnnTask::kWeightedRegression, 5},
        IncrementalCase{25, 5, KnnTask::kClassification, 6},
        IncrementalCase{10, 10, KnnTask::kClassification, 7}));  // K = N

TEST(IncrementalUtilityTest, SellerModeMatchesSellerBatchUtility) {
  Dataset train = RandomClassDataset(18, 2, 3, 10);
  Dataset test = RandomClassDataset(2, 2, 3, 11);
  Rng org(12);
  auto owners = OwnerAssignment::Random(18, 5, &org);
  KnnSubsetUtility row_utility(&train, &test, 2, KnnTask::kClassification);
  SellerSubsetUtility batch(&row_utility, &owners);
  IncrementalKnnUtility incremental(&train, &test, 2, KnnTask::kClassification, {},
                                    &owners);
  EXPECT_EQ(incremental.NumPlayers(), 5);
  Rng rng(13);
  auto perm = rng.Permutation(5);
  incremental.Reset();
  std::vector<int> prefix;
  for (int s : perm) {
    prefix.push_back(s);
    EXPECT_NEAR(incremental.AddPlayer(s), batch.Value(prefix), 1e-9);
  }
}

// ----------------------------------------------------------- improved MC --

TEST(ImprovedMcTest, MatchesExactShapleyWithinEpsilon) {
  Dataset train = RandomClassDataset(40, 2, 4, 20);
  Dataset test = RandomClassDataset(3, 2, 4, 21);
  const int k = 2;
  auto exact = ExactKnnShapley(train, test, k, false);
  IncrementalKnnUtility utility(&train, &test, k, KnnTask::kClassification);
  ImprovedMcOptions options;
  options.k = k;
  options.epsilon = 0.1;
  options.delta = 0.05;
  options.utility_range = 1.0 / k;
  options.stopping = McStoppingRule::kBennett;
  options.seed = 22;
  auto mc = ImprovedMcShapley(&utility, options);
  EXPECT_LE(MaxAbsDifference(mc.shapley, exact), options.epsilon);
}

TEST(ImprovedMcTest, RegressionMatchesTheorem6) {
  Dataset train = RandomRegDataset(30, 3, 23);
  // Scale targets to [-1, 1]-ish so the default range applies.
  for (auto& t : train.targets) t = std::tanh(t);
  Dataset test = RandomRegDataset(2, 3, 24);
  for (auto& t : test.targets) t = std::tanh(t);
  const int k = 3;
  auto exact = ExactKnnRegressionShapley(train, test, k, false);
  IncrementalKnnUtility utility(&train, &test, k, KnnTask::kRegression);
  ImprovedMcOptions options;
  options.k = k;
  options.epsilon = 0.15;
  options.delta = 0.05;
  options.utility_range = 4.0;  // |nu| <= (max |y-t|)^2-ish
  options.seed = 25;
  auto mc = ImprovedMcShapley(&utility, options);
  EXPECT_LE(MaxAbsDifference(mc.shapley, exact), options.epsilon);
}

TEST(ImprovedMcTest, HeuristicStopsEarlierThanBennett) {
  Dataset train = RandomClassDataset(60, 2, 4, 26);
  Dataset test = RandomClassDataset(2, 2, 4, 27);
  IncrementalKnnUtility utility(&train, &test, 1, KnnTask::kClassification);
  ImprovedMcOptions bennett;
  bennett.k = 1;
  bennett.epsilon = 0.1;
  bennett.delta = 0.1;
  bennett.utility_range = 1.0;
  bennett.stopping = McStoppingRule::kBennett;
  bennett.seed = 28;
  auto full = ImprovedMcShapley(&utility, bennett);
  ImprovedMcOptions heuristic = bennett;
  heuristic.stopping = McStoppingRule::kHeuristic;
  auto early = ImprovedMcShapley(&utility, heuristic);
  EXPECT_LE(early.permutations, full.permutations);
}

TEST(ImprovedMcTest, StoppingRuleBudgetsOrdered) {
  ImprovedMcOptions options;
  options.k = 1;
  options.epsilon = 0.1;
  options.delta = 0.1;
  options.utility_range = 1.0;
  options.stopping = McStoppingRule::kHoeffding;
  int64_t hoeffding = StoppingRulePermutations(options, 100000);
  options.stopping = McStoppingRule::kBennett;
  int64_t bennett = StoppingRulePermutations(options, 100000);
  EXPECT_LT(bennett, hoeffding);
}

TEST(ImprovedMcTest, SellerGameEstimatesMatchTheorem8) {
  Dataset train = RandomClassDataset(20, 2, 3, 30);
  Dataset test = RandomClassDataset(2, 2, 3, 31);
  Rng org(32);
  auto owners = OwnerAssignment::Random(20, 5, &org);
  MultiSellerShapleyOptions exact_options;
  exact_options.k = 2;
  exact_options.task = KnnTask::kClassification;
  auto exact = MultiSellerShapley(train, owners, test, exact_options, false);
  IncrementalKnnUtility utility(&train, &test, 2, KnnTask::kClassification, {},
                                &owners);
  ImprovedMcOptions options;
  options.k = 2;
  options.epsilon = 0.1;
  options.delta = 0.05;
  options.utility_range = 1.0;
  options.seed = 33;
  auto mc = ImprovedMcShapley(&utility, options);
  EXPECT_LE(MaxAbsDifference(mc.shapley, exact), options.epsilon);
}

TEST(ImprovedMcTest, DeterministicGivenSeed) {
  Dataset train = RandomClassDataset(15, 2, 3, 34);
  Dataset test = RandomClassDataset(2, 2, 3, 35);
  IncrementalKnnUtility u1(&train, &test, 1, KnnTask::kClassification);
  IncrementalKnnUtility u2(&train, &test, 1, KnnTask::kClassification);
  ImprovedMcOptions options;
  options.k = 1;
  options.max_permutations = 50;
  options.seed = 36;
  auto a = ImprovedMcShapley(&u1, options);
  auto b = ImprovedMcShapley(&u2, options);
  ExpectVectorNear(a.shapley, b.shapley, 0.0);
}

}  // namespace
}  // namespace knnshap
