// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Validation of Theorem 1 / Algorithm 1: the O(N log N) exact KNN Shapley
// recursion against the 2^N enumeration oracle, the closed form (Eq 44-46),
// the piecewise-counting framework, and the Shapley axioms.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/exact_enumeration.h"
#include "core/exact_knn_shapley.h"
#include "core/knn_regression_shapley.h"
#include "core/piecewise.h"
#include "core/utility.h"
#include "test_util.h"
#include "util/binomial.h"
#include "util/stats.h"

namespace knnshap {
namespace {

using testing_util::ExpectVectorNear;
using testing_util::RandomClassDataset;
using testing_util::SingleQuery;

struct OracleCase {
  int n;
  int k;
  int num_classes;
  uint64_t seed;
};

class ExactVsOracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(ExactVsOracleTest, RecursionMatchesEnumeration) {
  auto [n, k, num_classes, seed] = GetParam();
  Dataset train = RandomClassDataset(static_cast<size_t>(n), num_classes, 3, seed);
  Dataset test = SingleQuery(3, seed + 1000,
                             /*label=*/static_cast<int>(seed % num_classes));
  KnnSubsetUtility utility(&train, &test, k, KnnTask::kClassification);
  auto oracle = ShapleyByEnumeration(utility);
  auto fast = ExactKnnShapley(train, test, k, /*parallel=*/false);
  ExpectVectorNear(fast, oracle, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactVsOracleTest,
    ::testing::Values(OracleCase{2, 1, 2, 1}, OracleCase{5, 1, 2, 2},
                      OracleCase{8, 1, 2, 3}, OracleCase{8, 3, 2, 4},
                      OracleCase{10, 2, 3, 5}, OracleCase{10, 5, 3, 6},
                      OracleCase{12, 3, 4, 7}, OracleCase{12, 7, 2, 8},
                      OracleCase{9, 9, 2, 9},    // K == N
                      OracleCase{6, 10, 2, 10},  // K > N
                      OracleCase{11, 1, 5, 11}, OracleCase{12, 4, 2, 12}));

TEST(ExactShapleyTest, MultiTestIsAverageOfSingleTests) {
  Dataset train = RandomClassDataset(9, 2, 3, 20);
  Dataset test = RandomClassDataset(4, 2, 3, 21);
  auto multi = ExactKnnShapley(train, test, 2, /*parallel=*/false);
  std::vector<double> manual(train.Size(), 0.0);
  for (size_t j = 0; j < test.Size(); ++j) {
    auto single =
        ExactKnnShapleySingle(train, test.features.Row(j), test.labels[j], 2);
    for (size_t i = 0; i < train.Size(); ++i) manual[i] += single[i] / 4.0;
  }
  ExpectVectorNear(multi, manual, 1e-12);
}

TEST(ExactShapleyTest, ParallelMatchesSerial) {
  Dataset train = RandomClassDataset(50, 3, 4, 22);
  Dataset test = RandomClassDataset(8, 3, 4, 23);
  auto serial = ExactKnnShapley(train, test, 3, /*parallel=*/false);
  auto parallel = ExactKnnShapley(train, test, 3, /*parallel=*/true);
  ExpectVectorNear(serial, parallel, 1e-12);
}

TEST(ExactShapleyTest, GroupRationalityHoldsExactly) {
  for (uint64_t seed : {30u, 31u, 32u}) {
    Dataset train = RandomClassDataset(40, 3, 4, seed);
    Dataset test = RandomClassDataset(5, 3, 4, seed + 100);
    for (int k : {1, 3, 7}) {
      auto sv = ExactKnnShapley(train, test, k, false);
      KnnSubsetUtility utility(&train, &test, k, KnnTask::kClassification);
      double total = std::accumulate(sv.begin(), sv.end(), 0.0);
      EXPECT_NEAR(total, utility.GrandValue(), 1e-9)
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(ExactShapleyTest, ClosedFormMatchesRecursion) {
  Rng rng(40);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + static_cast<int>(rng.NextIndex(60));
    int k = 1 + static_cast<int>(rng.NextIndex(10));
    std::vector<int> labels(static_cast<size_t>(n));
    for (auto& l : labels) l = static_cast<int>(rng.NextIndex(3));
    int test_label = static_cast<int>(rng.NextIndex(3));
    auto rec = KnnShapleyRecursion(labels, test_label, k);
    auto closed = KnnShapleyClosedForm(labels, test_label, k);
    ExpectVectorNear(rec, closed, 1e-12);
  }
}

TEST(ExactShapleyTest, AllCorrectLabelsGiveHarmonicLikeDecay) {
  // When every training label matches the test label, Eq (45)-(46) give
  // strictly positive values, non-increasing in rank.
  std::vector<int> labels(20, 1);
  auto sv = KnnShapleyRecursion(labels, 1, 3);
  for (size_t i = 0; i < sv.size(); ++i) {
    EXPECT_GT(sv[i], 0.0);
    if (i > 0) {
      EXPECT_LE(sv[i], sv[i - 1] + 1e-15);
    }
  }
  // Group rationality: total = nu(I) = 1 (all neighbors correct).
  EXPECT_NEAR(std::accumulate(sv.begin(), sv.end(), 0.0), 1.0, 1e-12);
}

TEST(ExactShapleyTest, AllWrongLabelsGiveZero) {
  std::vector<int> labels(15, 0);
  auto sv = KnnShapleyRecursion(labels, 1, 3);
  for (double s : sv) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(ExactShapleyTest, NearestWrongNeighborHasMostNegativeValue) {
  // One wrong point at rank 1, all others correct: the wrong point should
  // carry the (single) most negative value.
  std::vector<int> labels(12, 1);
  labels[0] = 0;
  auto sv = KnnShapleyRecursion(labels, 1, 3);
  for (size_t i = 1; i < sv.size(); ++i) EXPECT_LT(sv[0], sv[i]);
  EXPECT_LT(sv[0], 0.0);
}

TEST(ExactShapleyTest, SingletonTrainingSet) {
  std::vector<int> labels = {1};
  auto sv = KnnShapleyRecursion(labels, 1, 1);
  ASSERT_EQ(sv.size(), 1u);
  EXPECT_DOUBLE_EQ(sv[0], 1.0);  // nu(I) = 1, one player takes it all
  auto sv_wrong = KnnShapleyRecursion({0}, 1, 1);
  EXPECT_DOUBLE_EQ(sv_wrong[0], 0.0);
}

TEST(ExactShapleyTest, DuplicateDistancesStillMatchOracle) {
  // Several identical feature rows force the tie-break path.
  Dataset train;
  train.features = Matrix(8, 2);
  for (size_t i = 0; i < 8; ++i) {
    train.features.At(i, 0) = static_cast<float>(i / 3);  // triples of duplicates
    train.features.At(i, 1) = 0.0f;
  }
  train.labels = {1, 0, 1, 0, 1, 0, 1, 0};
  Dataset test;
  test.features = Matrix(1, 2);
  test.features.At(0, 0) = -1.0f;
  test.labels = {1};
  KnnSubsetUtility utility(&train, &test, 2, KnnTask::kClassification);
  auto oracle = ShapleyByEnumeration(utility);
  auto fast = ExactKnnShapley(train, test, 2, false);
  // With ties the oracle's "sort by (distance, index)" convention matches
  // the library's deterministic tie-break, so values agree exactly.
  ExpectVectorNear(fast, oracle, 1e-10);
}

TEST(ExactShapleyTest, ValueMagnitudeBound) {
  // |s_alpha_i| <= min(1/i, 1/K) (the bound behind Theorem 2).
  Rng rng(50);
  for (int trial = 0; trial < 10; ++trial) {
    int n = 30;
    int k = 1 + static_cast<int>(rng.NextIndex(6));
    std::vector<int> labels(static_cast<size_t>(n));
    for (auto& l : labels) l = static_cast<int>(rng.NextIndex(2));
    auto sv = KnnShapleyRecursion(labels, 1, k);
    for (int i = 1; i <= n; ++i) {
      double bound = std::min(1.0 / i, 1.0 / k) + 1e-12;
      EXPECT_LE(std::fabs(sv[static_cast<size_t>(i - 1)]), bound)
          << "i=" << i << " k=" << k;
    }
  }
}

// ------------------------------ piecewise framework cross-validation ------

TEST(PiecewiseTest, ReproducesTheorem1Difference) {
  // Theorem 1's SV difference re-derived through the generic counting
  // reduction (Eq 29-31) with S_1 of Eq (100).
  const int n = 14;
  for (int k : {1, 2, 4}) {
    std::vector<int> labels(static_cast<size_t>(n));
    Rng rng(60 + static_cast<uint64_t>(k));
    for (auto& l : labels) l = static_cast<int>(rng.NextIndex(2));
    auto sv = KnnShapleyRecursion(labels, 1, k);
    for (int i = 1; i < n; ++i) {
      double c1 = ((labels[static_cast<size_t>(i - 1)] == 1 ? 1.0 : 0.0) -
                   (labels[static_cast<size_t>(i)] == 1 ? 1.0 : 0.0)) /
                  k;
      PiecewiseGroup group;
      group.coefficient = c1;
      group.size_counts = UnweightedKnnGroupCounts(n, k, i);
      double diff = ShapleyDifferenceFromPiecewise(n, {group});
      EXPECT_NEAR(diff, sv[static_cast<size_t>(i - 1)] - sv[static_cast<size_t>(i)],
                  1e-10)
          << "i=" << i << " k=" << k;
    }
  }
}

TEST(PiecewiseTest, ReproducesTheorem6RegressionDifference) {
  // Appendix F instantiates the piecewise framework for regression (Eq
  // 101) with T = N-1 groups: the "pair" group S_1 of Eq (100) with
  // coefficient (1/K)(y_{i+1}-y_i)((y_i+y_{i+1})/K - 2 y_test), plus for
  // every other point l a group S_l = S_1 n {S : l in S} with coefficient
  // (2/K^2)(y_{i+1}-y_i) y_l. Re-derive Theorem 6's adjacent difference
  // through the generic counting engine.
  const int n = 10;
  const double y_test = 0.35;
  for (int k : {1, 2, 3}) {
    Rng rng(80 + static_cast<uint64_t>(k));
    std::vector<double> y(static_cast<size_t>(n));
    for (auto& t : y) t = rng.NextGaussian();
    auto sv = KnnRegressionShapleyRecursion(y, y_test, k);
    auto yy = [&](int rank) { return y[static_cast<size_t>(rank - 1)]; };
    for (int i = 1; i < n; ++i) {
      std::vector<PiecewiseGroup> groups;
      PiecewiseGroup pair;
      pair.coefficient = (yy(i + 1) - yy(i)) / k *
                         ((yy(i) + yy(i + 1)) / k - 2.0 * y_test);
      pair.size_counts = UnweightedKnnGroupCounts(n, k, i);
      groups.push_back(std::move(pair));
      for (int l = 1; l <= n; ++l) {
        if (l == i || l == i + 1) continue;
        PiecewiseGroup gl;
        gl.coefficient = 2.0 / (static_cast<double>(k) * k) * (yy(i + 1) - yy(i)) *
                         yy(l);
        // Counts of S with S in S_1, |S| = size, and l among the top-(K-1)
        // elements of S (Eq 101's group, with the rank constraint the
        // appendix leaves implicit). For l < i the S_1 condition (m <= K-1
        // elements before i, including l) already implies l's within-S
        // rank <= K-1. For l > i+1, the elements of S before l — m among
        // ranks < i plus q among ranks (i+1, l) — must number <= K-2.
        std::vector<double> counts(static_cast<size_t>(n - 1), 0.0);
        for (int size = 1; size <= n - 2; ++size) {
          double total = 0.0;
          if (l < i) {
            for (int m = 1; m <= std::min(k - 1, size); ++m) {
              total += Choose(i - 2, m - 1) * Choose(n - i - 1, size - m);
            }
          } else {
            for (int m = 0; m <= std::min(k - 2, size - 1); ++m) {
              for (int q = 0; q <= k - 2 - m && q <= size - 1 - m; ++q) {
                total += Choose(i - 1, m) * Choose(l - i - 2, q) *
                         Choose(n - l, size - 1 - m - q);
              }
            }
          }
          counts[static_cast<size_t>(size)] = total;
        }
        gl.size_counts = std::move(counts);
        groups.push_back(std::move(gl));
      }
      double diff = ShapleyDifferenceFromPiecewise(n, groups);
      EXPECT_NEAR(diff, sv[static_cast<size_t>(i - 1)] - sv[static_cast<size_t>(i)],
                  1e-9)
          << "i=" << i << " k=" << k;
    }
  }
}

TEST(PiecewiseTest, ZeroCoefficientGivesZeroDifference) {
  PiecewiseGroup group;
  group.coefficient = 0.0;
  group.size_counts = {1.0, 5.0, 3.0};
  EXPECT_DOUBLE_EQ(ShapleyDifferenceFromPiecewise(10, {group}), 0.0);
}

// ---------------------------------------- axioms on the KNN utility -------

TEST(ExactShapleyTest, SymmetryForIdenticalPoints) {
  // Two byte-identical training points with the same label are equivalent
  // players and must receive equal values... up to the tie-break, which the
  // SV smooths out because the utility treats them identically.
  Dataset train = RandomClassDataset(10, 2, 3, 70);
  // Make rows 3 and 7 identical (same label too).
  for (size_t d = 0; d < 3; ++d) {
    train.features.At(7, d) = train.features.At(3, d);
  }
  train.labels[7] = train.labels[3];
  Dataset test = SingleQuery(3, 71, train.labels[3]);
  KnnSubsetUtility utility(&train, &test, 3, KnnTask::kClassification);
  auto oracle = ShapleyByEnumeration(utility);
  EXPECT_NEAR(oracle[3], oracle[7], 1e-10);
  // The O(N log N) algorithm must agree with the oracle on those players.
  auto fast = ExactKnnShapley(train, test, 3, false);
  EXPECT_NEAR(fast[3], oracle[3], 1e-10);
  EXPECT_NEAR(fast[7], oracle[7], 1e-10);
}

}  // namespace
}  // namespace knnshap
