// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Validation of Theorem 7 (exact weighted KNN Shapley in O(N^K)) and its
// composite-game analog (Theorem 11) against the enumeration oracle.

#include <gtest/gtest.h>

#include <numeric>

#include "core/exact_enumeration.h"
#include "core/exact_knn_shapley.h"
#include "core/weighted_knn_shapley.h"
#include "core/utility.h"
#include "test_util.h"

namespace knnshap {
namespace {

using testing_util::ExpectVectorNear;
using testing_util::RandomClassDataset;
using testing_util::RandomRegDataset;
using testing_util::SingleQuery;

struct WeightedCase {
  int n;
  int k;
  WeightKernel kernel;
  uint64_t seed;
};

class WeightedClassVsOracleTest : public ::testing::TestWithParam<WeightedCase> {};

TEST_P(WeightedClassVsOracleTest, MatchesEnumeration) {
  auto [n, k, kernel, seed] = GetParam();
  Dataset train = RandomClassDataset(static_cast<size_t>(n), 2, 3, seed);
  Dataset test = SingleQuery(3, seed + 77, 1);
  WeightConfig weights;
  weights.kernel = kernel;
  KnnSubsetUtility utility(&train, &test, k, KnnTask::kWeightedClassification,
                           weights);
  auto oracle = ShapleyByEnumeration(utility);
  WeightedShapleyOptions options;
  options.k = k;
  options.weights = weights;
  options.task = KnnTask::kWeightedClassification;
  auto fast = ExactWeightedKnnShapley(train, test, options, /*parallel=*/false);
  ExpectVectorNear(fast, oracle, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeightedClassVsOracleTest,
    ::testing::Values(
        WeightedCase{4, 1, WeightKernel::kInverseDistance, 1},
        WeightedCase{6, 2, WeightKernel::kInverseDistance, 2},
        WeightedCase{8, 3, WeightKernel::kInverseDistance, 3},
        WeightedCase{10, 2, WeightKernel::kInverseDistance, 4},
        WeightedCase{7, 1, WeightKernel::kGaussian, 5},
        WeightedCase{9, 3, WeightKernel::kGaussian, 6},
        WeightedCase{8, 2, WeightKernel::kUniform, 7},
        WeightedCase{10, 4, WeightKernel::kInverseDistance, 8},
        WeightedCase{6, 5, WeightKernel::kInverseDistance, 9},   // K = N-1
        WeightedCase{5, 8, WeightKernel::kInverseDistance, 10},  // K > N
        WeightedCase{11, 2, WeightKernel::kGaussian, 11}));

class WeightedRegVsOracleTest : public ::testing::TestWithParam<WeightedCase> {};

TEST_P(WeightedRegVsOracleTest, MatchesEnumeration) {
  auto [n, k, kernel, seed] = GetParam();
  Dataset train = RandomRegDataset(static_cast<size_t>(n), 3, seed);
  Dataset test = SingleQuery(3, seed + 88, 0, /*target=*/-0.4);
  WeightConfig weights;
  weights.kernel = kernel;
  KnnSubsetUtility utility(&train, &test, k, KnnTask::kWeightedRegression, weights);
  auto oracle = ShapleyByEnumeration(utility);
  WeightedShapleyOptions options;
  options.k = k;
  options.weights = weights;
  options.task = KnnTask::kWeightedRegression;
  auto fast = ExactWeightedKnnShapley(train, test, options, /*parallel=*/false);
  ExpectVectorNear(fast, oracle, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeightedRegVsOracleTest,
    ::testing::Values(WeightedCase{5, 1, WeightKernel::kInverseDistance, 20},
                      WeightedCase{7, 2, WeightKernel::kInverseDistance, 21},
                      WeightedCase{9, 3, WeightKernel::kGaussian, 22},
                      WeightedCase{10, 2, WeightKernel::kUniform, 23},
                      WeightedCase{8, 4, WeightKernel::kInverseDistance, 24}));

TEST(WeightedShapleyTest, GroupRationality) {
  Dataset train = RandomClassDataset(12, 2, 3, 30);
  Dataset test = SingleQuery(3, 31, 0);
  WeightConfig weights;
  weights.kernel = WeightKernel::kInverseDistance;
  WeightedShapleyOptions options;
  options.k = 3;
  options.weights = weights;
  auto sv = ExactWeightedKnnShapley(train, test, options, false);
  KnnSubsetUtility utility(&train, &test, 3, KnnTask::kWeightedClassification,
                           weights);
  EXPECT_NEAR(std::accumulate(sv.begin(), sv.end(), 0.0), utility.GrandValue(), 1e-9);
}

TEST(WeightedShapleyTest, UnweightedTaskReproducesTheorem1) {
  // Running the O(N^K) machinery with the *unweighted* utility must match
  // the O(N log N) recursion — two completely different code paths.
  Dataset train = RandomClassDataset(11, 3, 3, 32);
  Dataset test = SingleQuery(3, 33, 2);
  WeightedShapleyOptions options;
  options.k = 3;
  options.task = KnnTask::kClassification;
  auto slow = ExactWeightedKnnShapley(train, test, options, false);
  auto fast = ExactKnnShapley(train, test, 3, false);
  ExpectVectorNear(slow, fast, 1e-9);
}

TEST(WeightedShapleyTest, MultiTestAveragesSingles) {
  Dataset train = RandomClassDataset(8, 2, 3, 34);
  Dataset test = RandomClassDataset(3, 2, 3, 35);
  WeightConfig weights;
  weights.kernel = WeightKernel::kInverseDistance;
  WeightedShapleyOptions options;
  options.k = 2;
  options.weights = weights;
  auto multi = ExactWeightedKnnShapley(train, test, options, false);
  std::vector<double> manual(train.Size(), 0.0);
  for (size_t j = 0; j < test.Size(); ++j) {
    auto single = ExactWeightedKnnShapleySingle(train, test.features.Row(j),
                                                test.labels[j], 0.0, options);
    for (size_t i = 0; i < train.Size(); ++i) manual[i] += single[i] / 3.0;
  }
  ExpectVectorNear(multi, manual, 1e-10);
}

TEST(WeightedShapleyTest, EvalCountFormulaIsPolynomial) {
  // O(N^K): the predicted evaluation count must grow polynomially, and
  // match the closed form's rough magnitude.
  double small = WeightedShapleyEvalCount(20, 2);
  double big = WeightedShapleyEvalCount(40, 2);
  // Doubling N with K=2 multiplies the count by ~8 (N * N^(K-1) pairs).
  EXPECT_GT(big / small, 4.0);
  EXPECT_LT(big / small, 16.0);
}

// ------------------------- composite game (Theorem 11) --------------------

class CompositeWeightedVsOracleTest : public ::testing::TestWithParam<WeightedCase> {};

TEST_P(CompositeWeightedVsOracleTest, SellerValuesMatchCompositeOracle) {
  auto [n, k, kernel, seed] = GetParam();
  Dataset train = RandomClassDataset(static_cast<size_t>(n), 2, 3, seed);
  Dataset test = SingleQuery(3, seed + 99, 1);
  WeightConfig weights;
  weights.kernel = kernel;
  KnnSubsetUtility base(&train, &test, k, KnnTask::kWeightedClassification, weights);
  CompositeSubsetUtility composite(&base);
  auto oracle = ShapleyByEnumeration(composite);  // N+1 players
  WeightedShapleyOptions options;
  options.k = k;
  options.weights = weights;
  options.task = KnnTask::kWeightedClassification;
  options.composite_game = true;
  auto fast = ExactWeightedKnnShapley(train, test, options, false);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(fast[static_cast<size_t>(i)], oracle[static_cast<size_t>(i)], 1e-9)
        << "seller " << i;
  }
  // Analyst value: nu(I) - sum of sellers must equal the oracle's analyst.
  double sellers = std::accumulate(fast.begin(), fast.end(), 0.0);
  EXPECT_NEAR(base.GrandValue() - sellers, oracle[static_cast<size_t>(n)], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompositeWeightedVsOracleTest,
    ::testing::Values(WeightedCase{4, 1, WeightKernel::kInverseDistance, 40},
                      WeightedCase{6, 2, WeightKernel::kInverseDistance, 41},
                      WeightedCase{8, 3, WeightKernel::kGaussian, 42},
                      WeightedCase{9, 2, WeightKernel::kUniform, 43}));

}  // namespace
}  // namespace knnshap
