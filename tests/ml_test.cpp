// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include <gtest/gtest.h>

#include "dataset/synthetic.h"
#include "knn/knn_classifier.h"
#include "ml/logistic_regression.h"
#include "test_util.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;

TEST(LogisticRegressionTest, LearnsLinearlySeparableData) {
  Rng rng(1);
  SyntheticSpec spec;
  spec.num_classes = 2;
  spec.dim = 4;
  spec.size = 400;
  spec.cluster_stddev = 0.1;
  Dataset data = MakeGaussianMixture(spec, &rng);
  Rng srng(2);
  auto split = SplitTrainTest(data, 0.25, &srng);
  LogisticRegression lr;
  lr.Fit(split.train);
  EXPECT_GT(lr.Accuracy(split.test), 0.97);
}

TEST(LogisticRegressionTest, MulticlassSoftmaxWorks) {
  Rng rng(3);
  SyntheticSpec spec;
  spec.num_classes = 4;
  spec.dim = 6;
  spec.size = 800;
  spec.cluster_stddev = 0.08;
  Dataset data = MakeGaussianMixture(spec, &rng);
  Rng srng(4);
  auto split = SplitTrainTest(data, 0.25, &srng);
  LogisticRegression lr;
  lr.Fit(split.train);
  EXPECT_GT(lr.Accuracy(split.test), 0.95);
  EXPECT_EQ(lr.NumClasses(), 4);
}

TEST(LogisticRegressionTest, ProbabilitiesSumToOne) {
  Rng rng(5);
  Dataset data = RandomClassDataset(50, 3, 4, 6);
  LogisticRegression lr;
  lr.Fit(data);
  auto proba = lr.PredictProba(data.features.Row(0));
  double total = 0.0;
  for (double p : proba) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LogisticRegressionTest, SubsetTrainingUsesOnlyGivenRows) {
  // Train on a subset whose labels are all class 1: the model must predict
  // class 1 everywhere.
  Dataset data = RandomClassDataset(30, 2, 3, 7);
  std::vector<int> ones;
  for (size_t i = 0; i < data.Size(); ++i) {
    if (data.labels[i] == 1) ones.push_back(static_cast<int>(i));
  }
  ASSERT_GE(ones.size(), 2u);
  LogisticRegressionOptions options;
  options.num_classes = 2;
  LogisticRegression lr(options);
  lr.FitSubset(data, ones);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(lr.Predict(data.features.Row(i)), 1);
  }
}

TEST(LogisticRegressionTest, EmptySubsetFallsBackToDefault) {
  Dataset data = RandomClassDataset(10, 2, 3, 8);
  LogisticRegressionOptions options;
  options.num_classes = 2;
  LogisticRegression lr(options);
  lr.FitSubset(data, {});
  // Zero weights: class 0 wins ties deterministically.
  EXPECT_EQ(lr.Predict(data.features.Row(0)), 0);
}

TEST(LogisticRegressionTest, ComparableToKnnOnDeepLikeFeatures) {
  // Fig 8's qualitative claim: on deep-feature-like (well-clustered) data,
  // KNN accuracy is comparable to logistic regression.
  Rng rng(9);
  Dataset data = MakeCifar10Like(2500, &rng);
  Rng srng(10);
  auto split = SplitTrainTest(data, 0.2, &srng);
  LogisticRegression lr;
  lr.Fit(split.train);
  KnnClassifier knn(&split.train, 1);
  double lr_acc = lr.Accuracy(split.test);
  double knn_acc = knn.Accuracy(split.test);
  EXPECT_GT(lr_acc, 0.9);
  EXPECT_GT(knn_acc, 0.9);
  EXPECT_NEAR(lr_acc, knn_acc, 0.08);
}

}  // namespace
}  // namespace knnshap
