// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Tests for the cooperative cancellation primitive: token semantics
// (manual, deadline, already-expired, latching), the thread-local
// activation protocol the deep loops poll through, and the overshoot
// measurement the engine's cancellation histogram records.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/cancel.h"

namespace knnshap {
namespace {

TEST(CancelTokenTest, DefaultTokenNeverExpiresOnItsOwn) {
  CancelToken token;
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.Expired());
  EXPECT_EQ(token.OvershootSeconds(), 0.0);
}

TEST(CancelTokenTest, ManualCancelLatches) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.Expired());
  EXPECT_TRUE(token.Expired());  // stays expired
}

TEST(CancelTokenTest, ZeroDeadlineIsBornExpired) {
  // The deterministic deadline: "deadline_ms":0 must answer
  // deadline_exceeded regardless of machine speed, so the token is
  // expired before the first poll.
  CancelToken token(0);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.Expired());
}

TEST(CancelTokenTest, NegativeDeadlineIsBornExpired) {
  CancelToken token(-5);
  EXPECT_TRUE(token.Expired());
}

TEST(CancelTokenTest, FutureDeadlineExpiresAfterItPasses) {
  CancelToken token(20);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(token.Expired());
  EXPECT_GT(token.OvershootSeconds(), 0.0);
}

TEST(CancelTokenTest, GenerousDeadlineDoesNotExpire) {
  CancelToken token(60'000);
  EXPECT_FALSE(token.Expired());
  EXPECT_EQ(token.OvershootSeconds(), 0.0);
}

TEST(CancelActivationTest, NoActiveTokenMeansNoCancellation) {
  EXPECT_EQ(ActiveCancelToken(), nullptr);
  EXPECT_FALSE(CancelRequested());
}

TEST(CancelActivationTest, ActivationScopesAndRestores) {
  CancelToken outer(0);
  CancelToken inner;  // never expires
  {
    CancelActivation activate_outer(&outer);
    EXPECT_EQ(ActiveCancelToken(), &outer);
    EXPECT_TRUE(CancelRequested());
    {
      // Nested activation shadows, destruction restores — exactly the
      // TraceActivation idiom the per-worker run path relies on.
      CancelActivation activate_inner(&inner);
      EXPECT_EQ(ActiveCancelToken(), &inner);
      EXPECT_FALSE(CancelRequested());
    }
    EXPECT_EQ(ActiveCancelToken(), &outer);
    EXPECT_TRUE(CancelRequested());
  }
  EXPECT_EQ(ActiveCancelToken(), nullptr);
  EXPECT_FALSE(CancelRequested());
}

TEST(CancelActivationTest, NullActivationShieldsAScope) {
  CancelToken expired(0);
  CancelActivation activate(&expired);
  ASSERT_TRUE(CancelRequested());
  {
    CancelActivation shield(nullptr);
    EXPECT_FALSE(CancelRequested());
  }
  EXPECT_TRUE(CancelRequested());
}

TEST(CancelActivationTest, ActivationIsPerThread) {
  CancelToken expired(0);
  CancelActivation activate(&expired);
  ASSERT_TRUE(CancelRequested());
  bool seen_on_worker = true;
  std::thread worker([&] { seen_on_worker = CancelRequested(); });
  worker.join();
  // The token rides this thread only; a fresh thread starts clean.
  EXPECT_FALSE(seen_on_worker);
}

TEST(CancelTokenTest, ExpiredIsSafeToRaceWithCancel) {
  // TSan-facing: concurrent Cancel()/Expired() on one token must be free
  // of data races (both sides go through the atomic latch).
  CancelToken token(5);
  std::thread canceller([&] { token.Cancel(); });
  bool result = false;
  for (int i = 0; i < 1000; ++i) result = token.Expired();
  canceller.join();
  EXPECT_TRUE(token.Expired());
  (void)result;
}

}  // namespace
}  // namespace knnshap
