// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "util/binomial.h"
#include "util/bounded_heap.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/matrix.h"
#include "util/random.h"
#include "util/stats.h"

namespace knnshap {
namespace {

// ---------------------------------------------------------------- random --

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextIndexCoversRangeUniformly) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.NextIndex(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 0.1, 0.01);
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(11);
  RunningMoments m;
  for (int i = 0; i < 200000; ++i) m.Add(rng.NextGaussian());
  EXPECT_NEAR(m.Mean(), 0.0, 0.02);
  EXPECT_NEAR(m.Variance(), 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(12);
  RunningMoments m;
  for (int i = 0; i < 100000; ++i) m.Add(rng.NextGaussian(3.0, 0.5));
  EXPECT_NEAR(m.Mean(), 3.0, 0.02);
  EXPECT_NEAR(m.StdDev(), 0.5, 0.02);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(13);
  auto perm = rng.Permutation(50);
  std::set<int> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), 49);
}

TEST(RngTest, PermutationIsUniformish) {
  // Position of element 0 should be uniform over 5 slots.
  Rng rng(14);
  std::vector<int> where(5, 0);
  for (int t = 0; t < 50000; ++t) {
    auto perm = rng.Permutation(5);
    for (int i = 0; i < 5; ++i) {
      if (perm[static_cast<size_t>(i)] == 0) ++where[static_cast<size_t>(i)];
    }
  }
  for (int c : where) EXPECT_NEAR(c / 50000.0, 0.2, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(15);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int x : sample) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 100);
  }
}

TEST(RngTest, SampleFullRangeIsPermutation) {
  Rng rng(16);
  auto sample = rng.SampleWithoutReplacement(20, 20);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(17);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextUint64(), child.NextUint64());
}

// ----------------------------------------------------------------- stats --

TEST(StatsTest, MeanAndVariance) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 2.5);
}

TEST(StatsTest, EmptyMeanIsZero) { EXPECT_EQ(Mean({}), 0.0); }

TEST(StatsTest, RunningMomentsMatchesBatch) {
  Rng rng(1);
  std::vector<double> xs;
  RunningMoments m;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextGaussian(2.0, 3.0);
    xs.push_back(x);
    m.Add(x);
  }
  EXPECT_NEAR(m.Mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(m.Variance(), Variance(xs), 1e-9);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = {-2, -4, -6, -8};
  EXPECT_NEAR(PearsonCorrelation(xs, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantInputIsZero) {
  std::vector<double> xs = {1, 1, 1};
  std::vector<double> ys = {1, 2, 3};
  EXPECT_EQ(PearsonCorrelation(xs, ys), 0.0);
}

TEST(StatsTest, SpearmanMonotoneTransformInvariance) {
  Rng rng(2);
  std::vector<double> xs, cubed;
  for (int i = 0; i < 200; ++i) {
    double x = rng.NextGaussian();
    xs.push_back(x);
    cubed.push_back(x * x * x);  // strictly monotone in x
  }
  EXPECT_NEAR(SpearmanCorrelation(xs, cubed), 1.0, 1e-12);
}

TEST(StatsTest, FractionalRanksHandleTies) {
  std::vector<double> xs = {10.0, 20.0, 10.0, 30.0};
  auto ranks = FractionalRanks(xs);
  EXPECT_DOUBLE_EQ(ranks[0], 1.5);
  EXPECT_DOUBLE_EQ(ranks[2], 1.5);
  EXPECT_DOUBLE_EQ(ranks[1], 3.0);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(StatsTest, QuantileEndpointsAndMedian) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 3.0);
}

TEST(StatsTest, MaxAbsDifference) {
  EXPECT_DOUBLE_EQ(MaxAbsDifference({1, 2, 3}, {1, 2.5, 2}), 1.0);
  EXPECT_DOUBLE_EQ(MaxAbsDifference({}, {}), 0.0);
}

// -------------------------------------------------------------- binomial --

TEST(BinomialTest, SmallFactorials) {
  EXPECT_DOUBLE_EQ(LogFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(LogFactorial(1), 0.0);
  EXPECT_NEAR(std::exp(LogFactorial(5)), 120.0, 1e-9);
}

TEST(BinomialTest, ChooseMatchesPascal) {
  for (int n = 1; n <= 20; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_NEAR(Choose(n, k), Choose(n - 1, k - 1) + Choose(n - 1, k),
                  1e-6 * Choose(n, k))
          << n << " choose " << k;
    }
  }
}

TEST(BinomialTest, ChooseOutOfRangeIsZero) {
  EXPECT_EQ(Choose(5, 6), 0.0);
  EXPECT_EQ(Choose(5, -1), 0.0);
}

TEST(BinomialTest, ChooseRatioMatchesDirect) {
  EXPECT_NEAR(ChooseRatio(10, 3, 12, 5), Choose(10, 3) / Choose(12, 5), 1e-12);
}

// The identity behind Theorem 1 (Eq 11-13): the inner binomial sum equals
// min(K,i) (N-1) / i. Property-swept over N, K, i.
struct IdentityCase {
  int n, k;
};

class Theorem1IdentityTest : public ::testing::TestWithParam<IdentityCase> {};

TEST_P(Theorem1IdentityTest, InnerSumClosedForm) {
  auto [n, k] = GetParam();
  // The identity applies to adjacent pairs (i, i+1), hence i <= N-1.
  for (int i = 1; i <= n - 1; ++i) {
    double expected = std::min(k, i) * static_cast<double>(n - 1) / i;
    EXPECT_NEAR(Theorem1InnerSum(n, k, i), expected, 1e-8 * expected)
        << "n=" << n << " k=" << k << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem1IdentityTest,
                         ::testing::Values(IdentityCase{5, 1}, IdentityCase{5, 2},
                                           IdentityCase{8, 3}, IdentityCase{12, 1},
                                           IdentityCase{12, 5}, IdentityCase{20, 7},
                                           IdentityCase{30, 3}));

// ------------------------------------------------------------------ heap --

TEST(BoundedHeapTest, KeepsSmallestK) {
  BoundedMaxHeap<int> heap(3);
  for (int i = 0; i < 10; ++i) heap.Push(static_cast<double>(10 - i), i);
  auto sorted = heap.SortedEntries();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_DOUBLE_EQ(sorted[0].key, 1.0);
  EXPECT_DOUBLE_EQ(sorted[1].key, 2.0);
  EXPECT_DOUBLE_EQ(sorted[2].key, 3.0);
}

TEST(BoundedHeapTest, PushReportsChange) {
  BoundedMaxHeap<int> heap(2);
  EXPECT_TRUE(heap.Push(5.0, 0));   // filling
  EXPECT_TRUE(heap.Push(3.0, 1));   // filling
  EXPECT_FALSE(heap.Push(9.0, 2));  // worse than current max
  EXPECT_TRUE(heap.Push(1.0, 3));   // displaces 5.0
  EXPECT_DOUBLE_EQ(heap.MaxKey(), 3.0);
}

TEST(BoundedHeapTest, EqualKeyDoesNotChange) {
  BoundedMaxHeap<int> heap(1);
  EXPECT_TRUE(heap.Push(2.0, 0));
  // A tie with the current max must not enter (Push uses strict <), so the
  // incremental utility in Algorithm 2 is stable under duplicate distances.
  EXPECT_FALSE(heap.Push(2.0, 1));
}

TEST(BoundedHeapTest, MatchesSortOnRandomStream) {
  Rng rng(3);
  BoundedMaxHeap<int> heap(8);
  std::vector<double> keys;
  for (int i = 0; i < 500; ++i) {
    double key = rng.NextDouble();
    keys.push_back(key);
    heap.Push(key, i);
  }
  std::sort(keys.begin(), keys.end());
  auto sorted = heap.SortedEntries();
  ASSERT_EQ(sorted.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(sorted[static_cast<size_t>(i)].key, keys[static_cast<size_t>(i)]);
  }
}

TEST(BoundedHeapTest, ClearEmpties) {
  BoundedMaxHeap<int> heap(4);
  heap.Push(1.0, 0);
  heap.Clear();
  EXPECT_TRUE(heap.Empty());
  EXPECT_EQ(heap.Size(), 0u);
}

// ---------------------------------------------------------------- matrix --

TEST(MatrixTest, ConstructAndAccess) {
  Matrix m(3, 2);
  EXPECT_EQ(m.Rows(), 3u);
  EXPECT_EQ(m.Cols(), 2u);
  m.At(1, 1) = 5.0f;
  EXPECT_FLOAT_EQ(m.Row(1)[1], 5.0f);
}

TEST(MatrixTest, AppendRowGrows) {
  Matrix m;
  std::vector<float> row = {1.0f, 2.0f, 3.0f};
  m.AppendRow(row);
  m.AppendRow(row);
  EXPECT_EQ(m.Rows(), 2u);
  EXPECT_EQ(m.Cols(), 3u);
}

TEST(MatrixTest, ScaleMultipliesEverything) {
  Matrix m(1, 2);
  m.At(0, 0) = 2.0f;
  m.At(0, 1) = -4.0f;
  m.Scale(0.5);
  EXPECT_FLOAT_EQ(m.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.At(0, 1), -2.0f);
}

// ----------------------------------------------------------------- csv ----

TEST(CsvTest, WritesRows) {
  std::string path = ::testing::TempDir() + "/knnshap_csv_test.csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.Enabled());
    csv.Header({"a", "b"});
    csv.Row({1.5, 2.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2");
  std::remove(path.c_str());
}

TEST(CsvTest, EmptyPathDisabled) {
  CsvWriter csv("");
  EXPECT_FALSE(csv.Enabled());
  csv.Row({1.0});  // must be a harmless no-op
}

// ----------------------------------------------------------------- cli ----

TEST(CliTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--scale=2.5", "--csv", "out.csv", "--flag"};
  CommandLine cli(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.Scale(), 2.5);
  EXPECT_EQ(cli.CsvPath(), "out.csv");
  EXPECT_TRUE(cli.Has("flag"));
  EXPECT_EQ(cli.GetInt("missing", 7), 7);
}

}  // namespace
}  // namespace knnshap
