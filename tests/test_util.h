// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Shared helpers for the test suite: tiny random datasets sized for the
// enumeration oracle and vector comparison utilities.

#ifndef KNNSHAP_TESTS_TEST_UTIL_H_
#define KNNSHAP_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <vector>

#include "dataset/dataset.h"
#include "util/random.h"

namespace knnshap {
namespace testing_util {

/// Random labeled dataset for oracle-sized games.
inline Dataset RandomClassDataset(size_t n, int num_classes, size_t dim,
                                  uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.name = "test";
  data.features = Matrix(n, dim);
  data.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    auto row = data.features.MutableRow(i);
    for (size_t d = 0; d < dim; ++d) row[d] = static_cast<float>(rng.NextGaussian());
    data.labels[i] = static_cast<int>(rng.NextIndex(static_cast<uint64_t>(num_classes)));
  }
  return data;
}

/// Random regression dataset.
inline Dataset RandomRegDataset(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.name = "test-reg";
  data.features = Matrix(n, dim);
  data.targets.resize(n);
  for (size_t i = 0; i < n; ++i) {
    auto row = data.features.MutableRow(i);
    for (size_t d = 0; d < dim; ++d) row[d] = static_cast<float>(rng.NextGaussian());
    data.targets[i] = rng.NextGaussian();
  }
  return data;
}

/// One-row test set taken from a fresh random draw.
inline Dataset SingleQuery(size_t dim, uint64_t seed, int label = 0,
                           double target = 0.0) {
  Rng rng(seed);
  Dataset data;
  data.name = "query";
  data.features = Matrix(1, dim);
  auto row = data.features.MutableRow(0);
  for (size_t d = 0; d < dim; ++d) row[d] = static_cast<float>(rng.NextGaussian());
  data.labels = {label};
  data.targets = {target};
  return data;
}

/// Asserts elementwise |a - b| <= tol.
inline void ExpectVectorNear(const std::vector<double>& a, const std::vector<double>& b,
                             double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "at index " << i;
  }
}

}  // namespace testing_util
}  // namespace knnshap

#endif  // KNNSHAP_TESTS_TEST_UTIL_H_
