// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Unit tests for the observability primitives: the sharded MetricsRegistry
// (counters, gauges, histograms, quantiles, exposition) and the
// RequestTrace / ScopedPhase / TraceActivation span machinery.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"

namespace knnshap {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

TEST(CounterTest, SingleThreadAddsSum) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  // The sharded design must lose nothing: 8 threads x 100k increments is
  // exactly 800k, no matter how threads map onto the 16 shards.
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(7);
  gauge.Add(5);
  gauge.Add(-12);
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), -3);
}

// ---------------------------------------------------------------------------
// Histogram buckets
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketUpperBoundIsInclusive) {
  // Documented contract (Prometheus `le`): v lands in the first bucket
  // with v <= bound; above the last bound -> the +Inf overflow bucket.
  Histogram histogram(std::vector<double>{1.0, 2.0, 4.0});
  histogram.Observe(1.0);     // == bound 1.0 -> bucket 0 (inclusive)
  histogram.Observe(1.0001);  // just above  -> bucket 1 (exclusive below)
  histogram.Observe(2.0);     // == bound 2.0 -> bucket 1
  histogram.Observe(4.0);     // == last bound -> bucket 2
  histogram.Observe(5.0);     // above all    -> overflow
  HistogramSnapshot snap = histogram.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.max, 5.0);
  EXPECT_NEAR(snap.sum, 1.0 + 1.0001 + 2.0 + 4.0 + 5.0, 1e-9);
}

TEST(HistogramTest, ConcurrentObservationsSumExactly) {
  Histogram histogram(std::vector<double>{0.5});
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (uint64_t i = 0; i < kPerThread; ++i) histogram.Observe(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.counts[1], kThreads * kPerThread);  // all overflow
  EXPECT_NEAR(snap.sum, static_cast<double>(kThreads * kPerThread), 1e-6);
}

// ---------------------------------------------------------------------------
// Quantiles
// ---------------------------------------------------------------------------

TEST(HistogramTest, QuantileOnEmptyHistogramIsZero) {
  Histogram histogram(std::vector<double>{1.0, 2.0});
  HistogramSnapshot snap = histogram.Snapshot();
  // No observations: every quantile reads 0, no division by zero.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 0.0);
}

TEST(HistogramTest, QuantileOnSingleSampleIsTheSample) {
  Histogram histogram(std::vector<double>{1.0, 2.0, 4.0});
  histogram.Observe(1.7);
  HistogramSnapshot snap = histogram.Snapshot();
  // Clamped to the exact observed max: a lone sample reads as itself at
  // every quantile rather than as a bucket-interpolated estimate.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 1.7);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 1.7);
}

TEST(HistogramTest, QuantilesAreMonotoneAndBounded) {
  Histogram histogram(LatencyBucketsSeconds());
  for (int i = 1; i <= 1000; ++i) {
    histogram.Observe(static_cast<double>(i) * 1e-4);  // 0.1ms .. 100ms
  }
  HistogramSnapshot snap = histogram.Snapshot();
  const double p50 = snap.Quantile(0.50);
  const double p95 = snap.Quantile(0.95);
  const double p99 = snap.Quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, snap.max);
  EXPECT_DOUBLE_EQ(snap.max, 0.1);
  // Interpolated estimates stay within a bucket of the true values.
  EXPECT_NEAR(p50, 0.05, 0.05);
}

// ---------------------------------------------------------------------------
// Registry + exposition
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, InstrumentsArePointerStable) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x_total");
  Counter* b = registry.GetCounter("x_total");
  EXPECT_EQ(a, b);
  Histogram* h1 = registry.GetHistogram("h");
  Histogram* h2 = registry.GetHistogram("h");
  EXPECT_EQ(h1, h2);
  // Default bounds = the latency grid.
  EXPECT_EQ(h1->Bounds(), LatencyBucketsSeconds());
}

TEST(MetricsRegistryTest, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("knnshap_requests_total{method=\"exact\"}")->Add(3);
  registry.GetGauge("knnshap_in_flight_requests")->Set(2);
  registry.GetHistogram("knnshap_request_seconds{method=\"exact\"}")
      ->Observe(0.01);
  std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE knnshap_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("knnshap_requests_total{method=\"exact\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE knnshap_in_flight_requests gauge"),
            std::string::npos);
  EXPECT_NE(text.find("knnshap_in_flight_requests 2"), std::string::npos);
  EXPECT_NE(text.find("knnshap_request_seconds_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("knnshap_request_seconds_count"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramBucketsAreCumulativeInText) {
  MetricsRegistry registry;
  std::vector<double> bounds{1.0, 2.0};
  Histogram* h = registry.GetHistogram("lat", &bounds);
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(9.0);
  std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3"), std::string::npos);
}

TEST(MetricsRegistryTest, ToJsonHasQuantiles) {
  MetricsRegistry registry;
  registry.GetCounter("c_total")->Add(5);
  std::vector<double> bounds{1.0};
  registry.GetHistogram("h", &bounds)->Observe(0.25);
  JsonValue doc = registry.ToJson();
  EXPECT_DOUBLE_EQ(doc.Get("counters").Get("c_total").AsNumber(), 5.0);
  const JsonValue& h = doc.Get("histograms").Get("h");
  EXPECT_DOUBLE_EQ(h.Get("count").AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(h.Get("p50").AsNumber(), 0.25);
  EXPECT_DOUBLE_EQ(h.Get("p99").AsNumber(), 0.25);
  EXPECT_DOUBLE_EQ(h.Get("max").AsNumber(), 0.25);
}

// ---------------------------------------------------------------------------
// RequestTrace / spans
// ---------------------------------------------------------------------------

TEST(RequestTraceTest, AddAccumulatesNanosAndCounts) {
  RequestTrace trace;
  trace.Add(Phase::kDistance, 1500);
  trace.Add(Phase::kDistance, 500);
  EXPECT_EQ(trace.Nanos(Phase::kDistance), 2000u);
  EXPECT_EQ(trace.SpanCount(Phase::kDistance), 2u);
  EXPECT_DOUBLE_EQ(trace.Seconds(Phase::kDistance), 2e-6);
  EXPECT_EQ(trace.SpanCount(Phase::kSort), 0u);
}

TEST(RequestTraceTest, ScopedPhaseRecordsIntoExplicitTrace) {
  RequestTrace trace;
  { ScopedPhase span(&trace, Phase::kFit); }
  EXPECT_EQ(trace.SpanCount(Phase::kFit), 1u);
}

TEST(RequestTraceTest, ScopedPhaseWithoutActiveTraceIsInert) {
  ASSERT_EQ(ActiveTrace(), nullptr);
  { ScopedPhase span(Phase::kDistance); }  // records nowhere, crashes never
  SUCCEED();
}

TEST(RequestTraceTest, TraceActivationNestsAndRestores) {
  RequestTrace outer, inner;
  ASSERT_EQ(ActiveTrace(), nullptr);
  {
    TraceActivation activate_outer(&outer);
    EXPECT_EQ(ActiveTrace(), &outer);
    {
      TraceActivation activate_inner(&inner);
      EXPECT_EQ(ActiveTrace(), &inner);
      ScopedPhase span(Phase::kRecursion);
    }
    EXPECT_EQ(ActiveTrace(), &outer);
    {
      // nullptr deactivates tracing for a scope.
      TraceActivation shield(nullptr);
      EXPECT_EQ(ActiveTrace(), nullptr);
    }
    EXPECT_EQ(ActiveTrace(), &outer);
  }
  EXPECT_EQ(ActiveTrace(), nullptr);
  EXPECT_EQ(inner.SpanCount(Phase::kRecursion), 1u);
  EXPECT_EQ(outer.SpanCount(Phase::kRecursion), 0u);
}

TEST(RequestTraceTest, ConcurrentAddsAreLossless) {
  RequestTrace trace;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      for (uint64_t i = 0; i < kPerThread; ++i) trace.Add(Phase::kValue, 2);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(trace.SpanCount(Phase::kValue), kThreads * kPerThread);
  EXPECT_EQ(trace.Nanos(Phase::kValue), 2 * kThreads * kPerThread);
}

TEST(PhaseNameTest, NamesAreTheStableContract) {
  // These strings appear in serve trace output, the slow log and metric
  // labels; renaming one is a protocol break (see src/serve/README.md).
  EXPECT_STREQ(PhaseName(Phase::kParse), "parse");
  EXPECT_STREQ(PhaseName(Phase::kValidate), "validate");
  EXPECT_STREQ(PhaseName(Phase::kFingerprint), "fingerprint");
  EXPECT_STREQ(PhaseName(Phase::kCacheProbe), "cache_probe");
  EXPECT_STREQ(PhaseName(Phase::kFit), "fit");
  EXPECT_STREQ(PhaseName(Phase::kValue), "value");
  EXPECT_STREQ(PhaseName(Phase::kDistance), "distance");
  EXPECT_STREQ(PhaseName(Phase::kSort), "sort");
  EXPECT_STREQ(PhaseName(Phase::kRetrieve), "retrieve");
  EXPECT_STREQ(PhaseName(Phase::kRecursion), "recursion");
  EXPECT_STREQ(PhaseName(Phase::kMerge), "merge");
  EXPECT_STREQ(PhaseName(Phase::kFinalize), "finalize");
  EXPECT_STREQ(PhaseName(Phase::kCacheStore), "cache_store");
  EXPECT_STREQ(PhaseName(Phase::kSerialize), "serialize");
  EXPECT_STREQ(PhaseName(Phase::kQueueWait), "queue_wait");
  EXPECT_STREQ(PhaseName(Phase::kShardFanout), "shard_fanout");
  EXPECT_STREQ(PhaseName(Phase::kShardMerge), "shard_merge");
}

}  // namespace
}  // namespace knnshap
