// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Tests for the minimal JSON module backing the knnshap_serve protocol.

#include <gtest/gtest.h>

#include "util/json.h"

namespace knnshap {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null").value.IsNull());
  EXPECT_TRUE(ParseJson("true").value.AsBool());
  EXPECT_FALSE(ParseJson("false").value.AsBool(true));
  EXPECT_DOUBLE_EQ(ParseJson("3.25").value.AsNumber(), 3.25);
  EXPECT_DOUBLE_EQ(ParseJson("-1e3").value.AsNumber(), -1000.0);
  EXPECT_EQ(ParseJson("\"hi\\nthere\"").value.AsString(), "hi\nthere");
}

TEST(JsonParseTest, NestedDocument) {
  auto result = ParseJson(
      R"({"op":"value","k":5,"rows":[[1,2,0],[3,4,1]],"cache":true,"who":null})");
  ASSERT_TRUE(result.ok()) << result.error;
  const JsonValue& v = result.value;
  EXPECT_EQ(v.Get("op").AsString(), "value");
  EXPECT_EQ(static_cast<int>(v.Get("k").AsNumber()), 5);
  ASSERT_TRUE(v.Get("rows").IsArray());
  ASSERT_EQ(v.Get("rows").Items().size(), 2u);
  EXPECT_DOUBLE_EQ(v.Get("rows").Items()[1].Items()[0].AsNumber(), 3.0);
  EXPECT_TRUE(v.Get("cache").AsBool());
  EXPECT_TRUE(v.Get("who").IsNull());
  EXPECT_FALSE(v.Has("absent"));
  EXPECT_TRUE(v.Get("absent").IsNull());
}

TEST(JsonParseTest, Whitespace) {
  auto result = ParseJson("  { \"a\" : [ 1 , 2 ] }  ");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.value.Get("a").Items().size(), 2u);
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nulll").ok());        // trailing characters
  EXPECT_FALSE(ParseJson("{} {}").ok());        // two documents on one line
  EXPECT_FALSE(ParseJson("{1:2}").ok());        // non-string key
  EXPECT_FALSE(ParseJson("--3").ok());
}

TEST(JsonDumpTest, RoundTrip) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("ok", JsonValue(true));
  obj.Set("name", JsonValue("corpus \"a\"\n"));
  obj.Set("count", JsonValue(3.0));
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(JsonValue(0.1));
  arr.Append(JsonValue());
  obj.Set("values", arr);

  std::string text = obj.Dump();
  auto reparsed = ParseJson(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  EXPECT_TRUE(reparsed.value.Get("ok").AsBool());
  EXPECT_EQ(reparsed.value.Get("name").AsString(), "corpus \"a\"\n");
  EXPECT_DOUBLE_EQ(reparsed.value.Get("count").AsNumber(), 3.0);
  EXPECT_EQ(reparsed.value.Get("values").Items().size(), 2u);
}

TEST(JsonDumpTest, DoublesRoundTripExactly) {
  // The serve protocol carries Shapley values; serialization must not lose
  // bits (%.17g fallback when %g is lossy).
  for (double v : {1.0 / 3.0, 0.1, 1e-17, 123456789.123456789, -0.0037037}) {
    std::string text = JsonValue(v).Dump();
    auto parsed = ParseJson(text);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value.AsNumber(), v) << text;
  }
}

TEST(JsonDumpTest, SetReplacesExistingKey) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("a", JsonValue(1.0));
  obj.Set("a", JsonValue(2.0));
  EXPECT_EQ(obj.Fields().size(), 1u);
  EXPECT_DOUBLE_EQ(obj.Get("a").AsNumber(), 2.0);
}

}  // namespace
}  // namespace knnshap
