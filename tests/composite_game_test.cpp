// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Validation of Theorems 9 and 10 (composite data+analyst game for
// unweighted KNN classification/regression) against the enumeration oracle
// on the (N+1)-player composite game, plus the paper's structural claims
// (Eq 88-89 ratios, analyst share >= 1/2).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/composite_game.h"
#include "knn/neighbors.h"
#include "core/exact_enumeration.h"
#include "core/exact_knn_shapley.h"
#include "core/knn_regression_shapley.h"
#include "core/utility.h"
#include "test_util.h"

namespace knnshap {
namespace {

using testing_util::ExpectVectorNear;
using testing_util::RandomClassDataset;
using testing_util::RandomRegDataset;
using testing_util::SingleQuery;

struct CompositeCase {
  int n;
  int k;
  uint64_t seed;
};

class CompositeClassVsOracleTest : public ::testing::TestWithParam<CompositeCase> {};

TEST_P(CompositeClassVsOracleTest, MatchesCompositeOracle) {
  auto [n, k, seed] = GetParam();
  Dataset train = RandomClassDataset(static_cast<size_t>(n), 2, 3, seed);
  Dataset test = SingleQuery(3, seed + 7, 1);
  KnnSubsetUtility base(&train, &test, k, KnnTask::kClassification);
  CompositeSubsetUtility composite(&base);
  auto oracle = ShapleyByEnumeration(composite);
  auto result = CompositeKnnShapley(train, test, k, /*parallel=*/false);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(result.seller_values[static_cast<size_t>(i)],
                oracle[static_cast<size_t>(i)], 1e-9)
        << "seller " << i;
  }
  EXPECT_NEAR(result.analyst_value, oracle[static_cast<size_t>(n)], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompositeClassVsOracleTest,
    ::testing::Values(CompositeCase{2, 1, 1}, CompositeCase{5, 1, 2},
                      CompositeCase{8, 2, 3}, CompositeCase{10, 3, 4},
                      CompositeCase{11, 1, 5}, CompositeCase{12, 5, 6},
                      CompositeCase{9, 9, 7},    // K = N
                      CompositeCase{6, 11, 8},   // K > N
                      CompositeCase{12, 2, 9}));

class CompositeRegVsOracleTest : public ::testing::TestWithParam<CompositeCase> {};

TEST_P(CompositeRegVsOracleTest, MatchesCompositeOracle) {
  auto [n, k, seed] = GetParam();
  Dataset train = RandomRegDataset(static_cast<size_t>(n), 3, seed);
  Dataset test = SingleQuery(3, seed + 9, 0, /*target=*/0.8);
  KnnSubsetUtility base(&train, &test, k, KnnTask::kRegression);
  CompositeSubsetUtility composite(&base);
  auto oracle = ShapleyByEnumeration(composite);
  auto result = CompositeKnnRegressionShapley(train, test, k, false);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(result.seller_values[static_cast<size_t>(i)],
                oracle[static_cast<size_t>(i)], 1e-9)
        << "seller " << i;
  }
  EXPECT_NEAR(result.analyst_value, oracle[static_cast<size_t>(n)], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompositeRegVsOracleTest,
                         ::testing::Values(CompositeCase{4, 1, 20},
                                           CompositeCase{6, 2, 21},
                                           CompositeCase{8, 3, 22},
                                           CompositeCase{10, 2, 23},
                                           CompositeCase{12, 4, 24},
                                           CompositeCase{7, 6, 25}));  // N = K+1

TEST(CompositeGameTest, SellerRatioMatchesEquation89) {
  // Eq (89): adjacent-difference ratio between composite and data-only
  // games is (min(i,K)+1)/(2(i+1)).
  Dataset train = RandomClassDataset(20, 2, 3, 30);
  Dataset test = SingleQuery(3, 31, 1);
  const int k = 3;
  auto order = ArgsortByDistance(train.features, test.features.Row(0));
  std::vector<int> sorted_labels(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_labels[i] = train.labels[static_cast<size_t>(order[i])];
  }
  auto data_only = KnnShapleyRecursion(sorted_labels, 1, k);
  auto composite = CompositeKnnShapleyRecursion(sorted_labels, 1, k);
  for (int i = 1; i < 20; ++i) {
    double d_data = data_only[static_cast<size_t>(i - 1)] - data_only[static_cast<size_t>(i)];
    double d_comp = composite[static_cast<size_t>(i - 1)] - composite[static_cast<size_t>(i)];
    double ratio = (std::min(i, k) + 1.0) / (2.0 * (i + 1.0));
    EXPECT_NEAR(d_comp, d_data * ratio, 1e-12) << "i=" << i;
  }
}

TEST(CompositeGameTest, AnalystTakesAtLeastHalf) {
  // Sec E.4.1: "the analyst obtains at least one half of the total revenue
  // in the composite game" (for the unweighted classifier utility).
  for (uint64_t seed : {40u, 41u, 42u}) {
    Dataset train = RandomClassDataset(30, 2, 4, seed);
    Dataset test = RandomClassDataset(5, 2, 4, seed + 100);
    auto result = CompositeKnnShapley(train, test, 3, false);
    if (result.total_utility > 0.0) {
      EXPECT_GE(result.analyst_value, 0.5 * result.total_utility - 1e-9);
    }
  }
}

TEST(CompositeGameTest, SellersCollectivelyEarnLessThanDataOnlyGame) {
  // The sellers' collective share in the composite game is at most their
  // data-only total nu(I) — the analyst absorbs at least half (Eq 88-89
  // ratios are <= 1/2).
  Dataset train = RandomClassDataset(25, 2, 3, 50);
  Dataset test = RandomClassDataset(4, 2, 3, 51);
  auto data_only = ExactKnnShapley(train, test, 3, false);
  auto composite = CompositeKnnShapley(train, test, 3, false);
  double total_data_only =
      std::accumulate(data_only.begin(), data_only.end(), 0.0);
  double total_composite = std::accumulate(composite.seller_values.begin(),
                                           composite.seller_values.end(), 0.0);
  EXPECT_LE(total_composite, 0.5 * total_data_only + 1e-9);
}

TEST(CompositeGameTest, GroupRationalityIncludesAnalyst) {
  Dataset train = RandomClassDataset(18, 3, 4, 60);
  Dataset test = RandomClassDataset(3, 3, 4, 61);
  auto result = CompositeKnnShapley(train, test, 2, false);
  double total = result.analyst_value +
                 std::accumulate(result.seller_values.begin(),
                                 result.seller_values.end(), 0.0);
  EXPECT_NEAR(total, result.total_utility, 1e-9);
}

TEST(CompositeGameTest, RegressionGroupRationalityIncludesAnalyst) {
  Dataset train = RandomRegDataset(15, 3, 62);
  Dataset test = RandomRegDataset(3, 3, 63);
  auto result = CompositeKnnRegressionShapley(train, test, 2, false);
  double total = result.analyst_value +
                 std::accumulate(result.seller_values.begin(),
                                 result.seller_values.end(), 0.0);
  // In the composite game nu_c(empty) = 0, so totals must match exactly.
  EXPECT_NEAR(total, result.total_utility, 1e-9);
}

TEST(CompositeGameTest, ParallelMatchesSerial) {
  Dataset train = RandomClassDataset(40, 2, 4, 70);
  Dataset test = RandomClassDataset(6, 2, 4, 71);
  auto serial = CompositeKnnShapley(train, test, 2, false);
  auto parallel = CompositeKnnShapley(train, test, 2, true);
  ExpectVectorNear(serial.seller_values, parallel.seller_values, 1e-12);
  EXPECT_NEAR(serial.analyst_value, parallel.analyst_value, 1e-12);
}

}  // namespace
}  // namespace knnshap
