// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dataset/contrast.h"
#include "dataset/dataset.h"
#include "dataset/owners.h"
#include "dataset/synthetic.h"
#include "test_util.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;

TEST(DatasetTest, SubsetPreservesRowsAndLabels) {
  Dataset data = RandomClassDataset(10, 3, 4, 1);
  std::vector<int> rows = {7, 2, 2, 9};
  Dataset sub = data.Subset(rows);
  ASSERT_EQ(sub.Size(), 4u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(sub.labels[i], data.labels[static_cast<size_t>(rows[i])]);
    for (size_t d = 0; d < data.Dim(); ++d) {
      EXPECT_FLOAT_EQ(sub.features.Row(i)[d],
                      data.features.Row(static_cast<size_t>(rows[i]))[d]);
    }
  }
}

TEST(DatasetTest, SplitPartitionsAllRows) {
  Dataset data = RandomClassDataset(100, 2, 3, 2);
  Rng rng(3);
  auto split = SplitTrainTest(data, 0.25, &rng);
  EXPECT_EQ(split.train.Size() + split.test.Size(), 100u);
  EXPECT_EQ(split.test.Size(), 25u);
}

TEST(DatasetTest, SplitAlwaysLeavesBothSidesNonEmpty) {
  Dataset data = RandomClassDataset(2, 2, 2, 4);
  Rng rng(5);
  auto split = SplitTrainTest(data, 0.01, &rng);
  EXPECT_GE(split.test.Size(), 1u);
  EXPECT_GE(split.train.Size(), 1u);
}

TEST(DatasetTest, BootstrapHasRequestedSize) {
  Dataset data = RandomClassDataset(10, 2, 2, 6);
  Rng rng(7);
  Dataset boot = Bootstrap(data, 250, &rng);
  EXPECT_EQ(boot.Size(), 250u);
  EXPECT_EQ(boot.Dim(), data.Dim());
  // All labels must come from the source label set.
  for (int label : boot.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 2);
  }
}

TEST(SyntheticTest, MixtureRespectsSpec) {
  SyntheticSpec spec;
  spec.num_classes = 4;
  spec.dim = 16;
  spec.size = 500;
  Rng rng(8);
  Dataset data = MakeGaussianMixture(spec, &rng);
  EXPECT_EQ(data.Size(), 500u);
  EXPECT_EQ(data.Dim(), 16u);
  std::set<int> labels(data.labels.begin(), data.labels.end());
  EXPECT_GE(labels.size(), 3u);  // all four classes should almost surely appear
  EXPECT_LE(*labels.rbegin(), 3);
}

TEST(SyntheticTest, LabelNoiseFlipsRoughlyRequestedFraction) {
  // With two well-separated tight clusters, a 1-NN classifier trained on
  // clean data disagrees with a noisy dataset's labels on ~ the flipped
  // fraction of points.
  SyntheticSpec clean_spec;
  clean_spec.num_classes = 2;
  clean_spec.dim = 8;
  clean_spec.size = 2000;
  clean_spec.cluster_stddev = 0.01;
  Rng rng_a(9), rng_b(9);  // identical streams -> identical features
  Dataset clean = MakeGaussianMixture(clean_spec, &rng_a);
  SyntheticSpec noisy_spec = clean_spec;
  noisy_spec.label_noise = 0.3;
  Dataset noisy = MakeGaussianMixture(noisy_spec, &rng_b);
  size_t flipped = 0;
  for (size_t i = 0; i < clean.Size(); ++i) {
    flipped += clean.labels[i] != noisy.labels[i];
  }
  EXPECT_NEAR(static_cast<double>(flipped) / 2000.0, 0.3, 0.05);
}

TEST(SyntheticTest, GeneratorIsDeterministicGivenSeed) {
  Rng rng_a(10), rng_b(10);
  Dataset a = MakeMnistLike(100, &rng_a);
  Dataset b = MakeMnistLike(100, &rng_b);
  ASSERT_EQ(a.Size(), b.Size());
  for (size_t i = 0; i < a.Size(); ++i) {
    EXPECT_EQ(a.labels[i], b.labels[i]);
    EXPECT_FLOAT_EQ(a.features.Row(i)[0], b.features.Row(i)[0]);
  }
}

TEST(SyntheticTest, LinearTargetsAreConsistent) {
  Dataset data = RandomClassDataset(50, 2, 6, 11);
  Rng rng(12);
  auto weights = AttachLinearTargets(&data, 0.0, &rng);
  ASSERT_EQ(weights.size(), 6u);
  // Noise-free targets must equal the inner product exactly.
  for (size_t i = 0; i < data.Size(); ++i) {
    double y = 0.0;
    auto row = data.features.Row(i);
    for (size_t d = 0; d < 6; ++d) y += weights[d] * row[d];
    EXPECT_NEAR(data.targets[i], y, 1e-9);
  }
}

TEST(ContrastTest, PresetOrderingMatchesDesign) {
  // Figure 9's three datasets must come out ordered by relative contrast:
  // high (deep) > mid (gist) > low (dog-fish).
  Rng rng(13);
  Dataset high = MakeHighContrast(3000, &rng);
  Dataset mid = MakeMidContrast(3000, &rng);
  Dataset low = MakeLowContrast(3000, &rng);
  Rng qrng(14);
  auto ck = [&](const Dataset& d) {
    return EstimateRelativeContrast(d, d, /*k=*/10, /*num_queries=*/50,
                                    /*num_pairs=*/4000, &qrng)
        .c_k;
  };
  double c_high = ck(high), c_mid = ck(mid), c_low = ck(low);
  EXPECT_GT(c_high, c_mid);
  EXPECT_GT(c_mid, c_low);
  EXPECT_GT(c_low, 0.9);  // contrast is >= ~1 by construction
}

TEST(ContrastTest, TighterClustersRaiseContrast) {
  SyntheticSpec spec;
  spec.num_classes = 5;
  spec.dim = 32;
  spec.size = 2000;
  spec.cluster_stddev = 0.3;
  Rng rng(15);
  Dataset loose = MakeGaussianMixture(spec, &rng);
  spec.cluster_stddev = 0.05;
  Dataset tight = MakeGaussianMixture(spec, &rng);
  Rng qrng(16);
  auto c_loose = EstimateRelativeContrast(loose, loose, 5, 40, 3000, &qrng).c_k;
  auto c_tight = EstimateRelativeContrast(tight, tight, 5, 40, 3000, &qrng).c_k;
  EXPECT_GT(c_tight, c_loose);
}

TEST(ContrastTest, RetrievalPresetsMatchPaperValues) {
  // The Fig 7 presets are calibrated to the paper's measured relative
  // contrasts: CIFAR-10 1.28, ImageNet 1.22, Yahoo10m 1.35 (at K = 10,
  // in-distribution queries).
  struct Case {
    Dataset (*make)(size_t, Rng*);
    double target;
  };
  for (auto [make, target] : {Case{MakeCifar10Contrast, 1.28},
                              Case{MakeImageNetContrast, 1.22},
                              Case{MakeYahoo10mContrast, 1.35}}) {
    Rng rng(77);
    Dataset all = make(16000, &rng);
    std::vector<int> train_rows, query_rows;
    for (int i = 0; i < 15000; ++i) train_rows.push_back(i);
    for (int i = 15000; i < 16000; ++i) query_rows.push_back(i);
    Dataset train = all.Subset(train_rows);
    Dataset queries = all.Subset(query_rows);
    Rng crng(78);
    auto est = EstimateRelativeContrast(train, queries, 10, 50, 3000, &crng);
    EXPECT_NEAR(est.c_k, target, 0.08) << all.name;
  }
}

TEST(ContrastTest, DMeanAndDkPositive) {
  Dataset data = RandomClassDataset(200, 2, 8, 17);
  Rng rng(18);
  auto est = EstimateRelativeContrast(data, data, 3, 20, 500, &rng);
  EXPECT_GT(est.d_mean, 0.0);
  EXPECT_GT(est.d_k, 0.0);
  EXPECT_GT(est.c_k, 1.0);  // the Kth NN is closer than a random point
}

TEST(OwnersTest, RoundRobinBalances) {
  auto owners = OwnerAssignment::RoundRobin(10, 3);
  EXPECT_EQ(owners.NumSellers(), 3);
  EXPECT_EQ(owners.RowsOf(0).size(), 4u);
  EXPECT_EQ(owners.RowsOf(1).size(), 3u);
  EXPECT_EQ(owners.RowsOf(2).size(), 3u);
}

TEST(OwnersTest, RandomAssignmentCoversAllSellers) {
  Rng rng(19);
  auto owners = OwnerAssignment::Random(20, 7, &rng);
  EXPECT_EQ(owners.NumSellers(), 7);
  size_t total = 0;
  for (int s = 0; s < 7; ++s) {
    EXPECT_GE(owners.RowsOf(s).size(), 1u);
    total += owners.RowsOf(s).size();
  }
  EXPECT_EQ(total, 20u);
}

TEST(OwnersTest, RowsOfSellersConcatenates) {
  auto owners = OwnerAssignment::RoundRobin(6, 2);
  auto rows = owners.RowsOfSellers({0, 1});
  std::set<int> unique(rows.begin(), rows.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(OwnersTest, OwnerOfIsConsistentWithRowsOf) {
  Rng rng(20);
  auto owners = OwnerAssignment::Random(30, 5, &rng);
  for (int s = 0; s < 5; ++s) {
    for (int row : owners.RowsOf(s)) EXPECT_EQ(owners.OwnerOf(row), s);
  }
}

}  // namespace
}  // namespace knnshap
