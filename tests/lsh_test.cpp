// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include <gtest/gtest.h>

#include <cmath>

#include "dataset/contrast.h"
#include "dataset/synthetic.h"
#include "knn/neighbors.h"
#include "lsh/hash_table.h"
#include "lsh/lsh_index.h"
#include "lsh/pstable.h"
#include "lsh/tuning.h"
#include "test_util.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;

// ---------------------------------------------------------------- pstable --

TEST(PStableTest, CollisionProbabilityAtZeroDistanceIsOne) {
  EXPECT_DOUBLE_EQ(GaussianCollisionProbability(0.0, 4.0), 1.0);
}

TEST(PStableTest, ClosedFormMatchesNumericalIntegral) {
  for (double width : {0.8, 2.0, 4.0, 8.0}) {
    for (double c : {0.1, 0.5, 1.0, 2.0, 5.0}) {
      EXPECT_NEAR(GaussianCollisionProbability(c, width),
                  NumericalCollisionProbability(c, width), 1e-6)
          << "width=" << width << " c=" << c;
    }
  }
}

TEST(PStableTest, MonotonicallyDecreasingInDistance) {
  double prev = 1.0;
  for (double c = 0.1; c < 10.0; c += 0.1) {
    double p = GaussianCollisionProbability(c, 4.0);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(PStableTest, WiderBucketsRaiseCollisionProbability) {
  EXPECT_LT(GaussianCollisionProbability(1.0, 1.0),
            GaussianCollisionProbability(1.0, 4.0));
}

TEST(PStableTest, EmpiricalCollisionRateMatchesTheory) {
  // Monte-Carlo check of Eq (20): hash many point pairs at controlled
  // distance and compare the empirical collision rate with f_h.
  const double width = 4.0;
  const double c = 1.5;
  const size_t dim = 16;
  Rng rng(1);
  int collisions = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    PStableHash hash(dim, width, &rng);
    std::vector<float> x(dim, 0.0f), y(dim, 0.0f);
    // y = x + c * e1.
    x[0] = 0.0f;
    y[0] = static_cast<float>(c);
    collisions += hash.Hash(x) == hash.Hash(y);
  }
  double expected = GaussianCollisionProbability(c, width);
  EXPECT_NEAR(static_cast<double>(collisions) / trials, expected, 0.015);
}

TEST(PStableTest, HashIsDeterministic) {
  Rng rng(2);
  PStableHash hash(8, 4.0, &rng);
  std::vector<float> x = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(hash.Hash(x), hash.Hash(x));
}

// -------------------------------------------------------------- hash table --

TEST(LshHashTableTest, SamePointSameBucket) {
  Rng rng(3);
  LshHashTable table(4, 6, 4.0, &rng);
  std::vector<float> x = {0.1f, 0.2f, 0.3f, 0.4f};
  table.Insert(x, 17);
  auto candidates = table.Candidates(x);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 17);
}

TEST(LshHashTableTest, FarPointsUsuallySeparate) {
  Rng rng(4);
  LshHashTable table(4, 8, 0.5, &rng);
  std::vector<float> x = {0, 0, 0, 0};
  std::vector<float> y = {100, 100, 100, 100};
  table.Insert(x, 0);
  EXPECT_TRUE(table.Candidates(y).empty());
}

// ------------------------------------------------------------------ index --

TEST(LshIndexTest, HighRecallWithGenerousTables) {
  Rng rng(5);
  Dataset data = MakeMnistLike(2000, &rng);
  LshConfig config;
  config.width = 4.0;
  config.num_projections = 6;
  config.num_tables = 32;
  LshIndex index(&data.features, config);
  double recall_sum = 0.0;
  for (size_t q = 0; q < 30; ++q) {
    recall_sum += index.Recall(data.features.Row(q * 7), 10);
  }
  EXPECT_GT(recall_sum / 30.0, 0.9);
}

TEST(LshIndexTest, ReturnedNeighborsSortedByTrueDistance) {
  Rng rng(6);
  Dataset data = RandomClassDataset(500, 2, 8, 7);
  LshConfig config;
  config.width = 8.0;
  config.num_projections = 2;
  config.num_tables = 8;
  LshIndex index(&data.features, config);
  LshQueryStats stats;
  auto result = index.Query(data.features.Row(0), 20, &stats);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
  }
  EXPECT_GE(stats.candidates, result.size());
}

TEST(LshIndexTest, QueryPointRetrievesItself) {
  Rng rng(8);
  Dataset data = RandomClassDataset(300, 2, 6, 9);
  LshConfig config;
  config.width = 4.0;
  config.num_projections = 4;
  config.num_tables = 8;
  LshIndex index(&data.features, config);
  auto result = index.Query(data.features.Row(42), 1);
  ASSERT_FALSE(result.empty());
  EXPECT_EQ(result[0].index, 42);
  EXPECT_DOUBLE_EQ(result[0].distance, 0.0);
}

TEST(LshIndexTest, MoreTablesNeverLowerRecall) {
  Rng rng(10);
  Dataset data = MakeMidContrast(1500, &rng);
  LshConfig small;
  small.width = 2.0;
  small.num_projections = 8;
  small.num_tables = 2;
  small.seed = 99;
  LshConfig big = small;
  big.num_tables = 24;
  LshIndex index_small(&data.features, small);
  LshIndex index_big(&data.features, big);
  double recall_small = 0.0, recall_big = 0.0;
  for (size_t q = 0; q < 25; ++q) {
    recall_small += index_small.Recall(data.features.Row(q * 11), 10);
    recall_big += index_big.Recall(data.features.Row(q * 11), 10);
  }
  EXPECT_GE(recall_big + 1e-9, recall_small);
}

// ----------------------------------------------------------------- tuning --

TEST(TuningTest, GExponentBelowOneForContrastAboveOne) {
  for (double c : {1.2, 1.5, 2.0, 4.0}) {
    EXPECT_LT(GExponent(c, 4.0), 1.0) << "contrast " << c;
  }
}

TEST(TuningTest, GExponentIsOneAtUnitContrast) {
  EXPECT_NEAR(GExponent(1.0, 4.0), 1.0, 1e-12);
}

TEST(TuningTest, GExponentAboveOneForContrastBelowOne) {
  EXPECT_GT(GExponent(0.8, 4.0), 1.0);
}

TEST(TuningTest, GExponentDecreasesWithContrast) {
  double prev = GExponent(1.01, 4.0);
  for (double c = 1.2; c < 5.0; c += 0.2) {
    double g = GExponent(c, 4.0);
    EXPECT_LT(g, prev);
    prev = g;
  }
}

TEST(TuningTest, SelectWidthReturnsGridMinimum) {
  double best = SelectWidth(1.5, 0.5, 16.0, 64);
  double g_best = GExponent(1.5, best);
  for (double w : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    EXPECT_LE(g_best, GExponent(1.5, w) + 1e-9);
  }
}

TEST(TuningTest, NumProjectionsGrowsWithN) {
  EXPECT_LT(NumProjections(1000, 4.0), NumProjections(1000000, 4.0));
}

TEST(TuningTest, NumTablesGrowsWithProjectionsAndK) {
  EXPECT_LE(NumTables(1.5, 4.0, 4, 5, 0.1), NumTables(1.5, 4.0, 8, 5, 0.1));
  EXPECT_LE(NumTables(1.5, 4.0, 6, 1, 0.1), NumTables(1.5, 4.0, 6, 50, 0.1));
}

TEST(TuningTest, LowerContrastNeedsMoreTables) {
  EXPECT_GT(NumTables(1.1, 4.0, 8, 10, 0.1), NumTables(2.0, 4.0, 8, 10, 0.1));
}

TEST(TuningTest, TheoremThreeRecallGuarantee) {
  // End-to-end: tune an index for delta = 0.1 on a normalized dataset and
  // verify that all K true neighbors are found for >= 90% of queries
  // (allowing slack for Monte-Carlo noise).
  Rng rng(11);
  Dataset data = MakeHighContrast(3000, &rng);
  const int k = 5;
  Rng crng(12);
  auto contrast = EstimateRelativeContrast(data, data, k, 60, 4000, &crng);
  // Normalize so D_mean = 1 (the assumption in the proof of Theorem 3).
  data.features.Scale(1.0 / contrast.d_mean);
  LshConfig config = TuneForContrast(data.Size(), contrast.c_k, k, /*delta=*/0.1);
  LshIndex index(&data.features, config);
  int perfect = 0;
  const int queries = 40;
  for (int q = 0; q < queries; ++q) {
    double recall = index.Recall(data.features.Row(static_cast<size_t>(q * 37)),
                                 static_cast<size_t>(k));
    perfect += recall >= 1.0 - 1e-12;
  }
  EXPECT_GE(perfect, static_cast<int>(queries * 0.8));
}

}  // namespace
}  // namespace knnshap
