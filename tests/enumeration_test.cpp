// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/exact_enumeration.h"
#include "core/utility.h"
#include "test_util.h"
#include "util/random.h"

namespace knnshap {
namespace {

using testing_util::ExpectVectorNear;

// A random supermodular-ish game with memoized random subset values.
class RandomGame {
 public:
  RandomGame(int n, uint64_t seed) : n_(n), values_(1u << n) {
    Rng rng(seed);
    for (auto& v : values_) v = rng.NextDouble();
    values_[0] = 0.0;
  }

  CallableUtility AsUtility() const {
    return CallableUtility(n_, [this](std::span<const int> subset) {
      uint32_t mask = 0;
      for (int p : subset) mask |= 1u << p;
      return values_[mask];
    });
  }

  int n_;
  std::vector<double> values_;
};

TEST(EnumerationTest, TwoPlayerClosedForm) {
  // nu({}) = 0, nu({0}) = 1, nu({1}) = 2, nu({0,1}) = 5.
  CallableUtility utility(2, [](std::span<const int> subset) {
    bool a = false, b = false;
    for (int p : subset) (p == 0 ? a : b) = true;
    if (a && b) return 5.0;
    if (a) return 1.0;
    if (b) return 2.0;
    return 0.0;
  });
  auto sv = ShapleyByEnumeration(utility);
  // s_0 = 1/2 (1-0) + 1/2 (5-2) = 2;  s_1 = 1/2 (2-0) + 1/2 (5-1) = 3.
  EXPECT_NEAR(sv[0], 2.0, 1e-12);
  EXPECT_NEAR(sv[1], 3.0, 1e-12);
}

TEST(EnumerationTest, AdditiveGameGivesSingletonValues) {
  // nu(S) = sum of (player id + 1): additive game, SV = own contribution.
  CallableUtility utility(6, [](std::span<const int> subset) {
    double total = 0.0;
    for (int p : subset) total += p + 1.0;
    return total;
  });
  auto sv = ShapleyByEnumeration(utility);
  for (int i = 0; i < 6; ++i) EXPECT_NEAR(sv[static_cast<size_t>(i)], i + 1.0, 1e-12);
}

TEST(EnumerationTest, SymmetricPlayersGetEqualShares) {
  // Majority game: nu(S) = 1 iff |S| >= 3 of 5 players. All symmetric.
  CallableUtility utility(5, [](std::span<const int> subset) {
    return subset.size() >= 3 ? 1.0 : 0.0;
  });
  auto sv = ShapleyByEnumeration(utility);
  for (double s : sv) EXPECT_NEAR(s, 0.2, 1e-12);
}

TEST(EnumerationTest, NullPlayerGetsZero) {
  // Player 3 never changes the value.
  CallableUtility utility(4, [](std::span<const int> subset) {
    double total = 0.0;
    for (int p : subset) {
      if (p != 3) total += 1.0;
    }
    return total;
  });
  auto sv = ShapleyByEnumeration(utility);
  EXPECT_NEAR(sv[3], 0.0, 1e-12);
}

class RandomGameTest : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(RandomGameTest, EnumerationMatchesPermutationOracle) {
  auto [n, seed] = GetParam();
  RandomGame game(n, seed);
  auto utility = game.AsUtility();
  auto by_subsets = ShapleyByEnumeration(utility);
  auto by_perms = ShapleyByAllPermutations(utility);
  ExpectVectorNear(by_subsets, by_perms, 1e-10);
}

TEST_P(RandomGameTest, EfficiencyAxiomHolds) {
  auto [n, seed] = GetParam();
  RandomGame game(n, seed);
  auto utility = game.AsUtility();
  auto sv = ShapleyByEnumeration(utility);
  double total = std::accumulate(sv.begin(), sv.end(), 0.0);
  std::vector<int> everyone(static_cast<size_t>(n));
  std::iota(everyone.begin(), everyone.end(), 0);
  EXPECT_NEAR(total, utility.Value(everyone) - utility.Value({}), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomGameTest,
                         ::testing::Combine(::testing::Values(2, 3, 5, 7),
                                            ::testing::Values(11u, 22u, 33u)));

TEST(EnumerationTest, AdditivityOfGames) {
  // SV of a sum game equals the sum of SVs (the additivity axiom the
  // multi-test-point decomposition relies on).
  RandomGame g1(6, 100), g2(6, 200);
  auto u1 = g1.AsUtility();
  auto u2 = g2.AsUtility();
  CallableUtility sum(6, [&](std::span<const int> subset) {
    return u1.Value(subset) + u2.Value(subset);
  });
  auto s1 = ShapleyByEnumeration(u1);
  auto s2 = ShapleyByEnumeration(u2);
  auto s12 = ShapleyByEnumeration(sum);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(s12[static_cast<size_t>(i)],
                s1[static_cast<size_t>(i)] + s2[static_cast<size_t>(i)], 1e-10);
  }
}

TEST(EnumerationTest, GrandValueHelper) {
  RandomGame game(4, 7);
  auto utility = game.AsUtility();
  std::vector<int> everyone = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(utility.GrandValue(), utility.Value(everyone));
}

}  // namespace
}  // namespace knnshap
