// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dataset/synthetic.h"
#include "knn/kd_tree.h"
#include "knn/knn_classifier.h"
#include "knn/knn_regressor.h"
#include "knn/metric.h"
#include "knn/neighbors.h"
#include "knn/weights.h"
#include "test_util.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;
using testing_util::RandomRegDataset;

// ---------------------------------------------------------------- metric --

TEST(MetricTest, L2KnownValues) {
  std::vector<float> a = {0.0f, 0.0f}, b = {3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(Distance(a, b, Metric::kL2), 5.0);
  EXPECT_DOUBLE_EQ(Distance(a, b, Metric::kSquaredL2), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b, Metric::kL1), 7.0);
}

TEST(MetricTest, CosineOrthogonalAndParallel) {
  std::vector<float> x = {1.0f, 0.0f}, y = {0.0f, 1.0f}, x2 = {2.0f, 0.0f};
  EXPECT_NEAR(Distance(x, y, Metric::kCosine), 1.0, 1e-12);
  EXPECT_NEAR(Distance(x, x2, Metric::kCosine), 0.0, 1e-12);
}

TEST(MetricTest, IdentityOfIndiscernibles) {
  std::vector<float> a = {1.5f, -2.0f, 0.25f};
  for (Metric m : {Metric::kL2, Metric::kSquaredL2, Metric::kL1}) {
    EXPECT_DOUBLE_EQ(Distance(a, a, m), 0.0);
  }
}

TEST(MetricTest, SquaredL2PreservesRanking) {
  Rng rng(1);
  std::vector<float> q(8), x(8), y(8);
  for (int t = 0; t < 100; ++t) {
    for (auto* v : {&q, &x, &y}) {
      for (auto& c : *v) c = static_cast<float>(rng.NextGaussian());
    }
    bool l2 = Distance(q, x, Metric::kL2) < Distance(q, y, Metric::kL2);
    bool sq = Distance(q, x, Metric::kSquaredL2) < Distance(q, y, Metric::kSquaredL2);
    EXPECT_EQ(l2, sq);
  }
}

// ------------------------------------------------------------- neighbors --

TEST(NeighborsTest, ArgsortIsSortedAndComplete) {
  Dataset data = RandomClassDataset(100, 2, 6, 2);
  std::vector<float> query(6, 0.1f);
  auto order = ArgsortByDistance(data.features, query);
  ASSERT_EQ(order.size(), 100u);
  auto dists = AllDistances(data.features, query);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(dists[static_cast<size_t>(order[i - 1])],
              dists[static_cast<size_t>(order[i])]);
  }
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(NeighborsTest, TopKMatchesArgsortPrefix) {
  Dataset data = RandomClassDataset(200, 2, 4, 3);
  std::vector<float> query(4, -0.3f);
  auto order = ArgsortByDistance(data.features, query);
  for (size_t k : {1u, 5u, 17u}) {
    auto top = TopKNeighbors(data.features, query, k);
    ASSERT_EQ(top.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(top[i].index, order[i]) << "k=" << k << " i=" << i;
    }
  }
}

TEST(NeighborsTest, TopKClampsToDatasetSize) {
  Dataset data = RandomClassDataset(5, 2, 3, 4);
  std::vector<float> query(3, 0.0f);
  auto top = TopKNeighbors(data.features, query, 50);
  EXPECT_EQ(top.size(), 5u);
}

TEST(NeighborsTest, DeterministicTieBreakByIndex) {
  // Three identical points: order must be by index.
  Matrix m(3, 2);
  for (size_t i = 0; i < 3; ++i) {
    m.At(i, 0) = 1.0f;
    m.At(i, 1) = 1.0f;
  }
  std::vector<float> query = {0.0f, 0.0f};
  auto order = ArgsortByDistance(m, query);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  auto top = TopKNeighbors(m, query, 2);
  EXPECT_EQ(top[0].index, 0);
  EXPECT_EQ(top[1].index, 1);
}

TEST(NeighborsTest, BruteForceIndexAgrees) {
  Dataset data = RandomClassDataset(64, 2, 5, 5);
  BruteForceIndex index(&data.features);
  std::vector<float> query(5, 0.2f);
  auto a = index.Query(query, 7);
  auto b = TopKNeighbors(data.features, query, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].index, b[i].index);
}

// --------------------------------------------------------------- kd-tree --

class KdTreeParamTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KdTreeParamTest, MatchesBruteForce) {
  auto [n, dim, k] = GetParam();
  Dataset data = RandomClassDataset(static_cast<size_t>(n), 2,
                                    static_cast<size_t>(dim), 6);
  KdTree tree(&data.features, /*leaf_size=*/8);
  Rng rng(7);
  for (int t = 0; t < 20; ++t) {
    std::vector<float> query(static_cast<size_t>(dim));
    for (auto& c : query) c = static_cast<float>(rng.NextGaussian());
    auto exact = TopKNeighbors(data.features, query, static_cast<size_t>(k));
    auto approx = tree.Query(query, static_cast<size_t>(k));
    ASSERT_EQ(exact.size(), approx.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_NEAR(exact[i].distance, approx[i].distance, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KdTreeParamTest,
                         ::testing::Values(std::tuple{50, 2, 1}, std::tuple{200, 3, 5},
                                           std::tuple{500, 8, 3},
                                           std::tuple{100, 16, 10},
                                           std::tuple{64, 4, 64}));

TEST(KdTreeTest, PrunesInLowDimension) {
  Rng rng(8);
  SyntheticSpec spec;
  spec.num_classes = 2;
  spec.dim = 2;
  spec.size = 4000;
  Dataset data = MakeGaussianMixture(spec, &rng);
  KdTree tree(&data.features, 16);
  std::vector<float> query = {0.0f, 0.0f};
  tree.Query(query, 5);
  // In 2-D the tree should touch far fewer points than brute force.
  EXPECT_LT(tree.LastQueryDistanceEvals(), 2000u);
}

TEST(KdTreeTest, HandlesDuplicatePoints) {
  Matrix m(10, 2);
  for (size_t i = 0; i < 10; ++i) {
    m.At(i, 0) = 1.0f;  // all identical
    m.At(i, 1) = 2.0f;
  }
  KdTree tree(&m, 2);
  std::vector<float> query = {1.0f, 2.0f};
  auto result = tree.Query(query, 3);
  ASSERT_EQ(result.size(), 3u);
  for (const auto& nn : result) EXPECT_DOUBLE_EQ(nn.distance, 0.0);
}

// --------------------------------------------------------------- weights --

TEST(WeightsTest, UniformIsOneOverCount) {
  WeightConfig config;
  auto w = ComputeWeights({0.5, 1.0, 2.0}, config);
  for (double x : w) EXPECT_NEAR(x, 1.0 / 3.0, 1e-12);
}

TEST(WeightsTest, InverseDistanceFavorsCloser) {
  WeightConfig config;
  config.kernel = WeightKernel::kInverseDistance;
  auto w = ComputeWeights({0.1, 1.0, 10.0}, config);
  EXPECT_GT(w[0], w[1]);
  EXPECT_GT(w[1], w[2]);
  EXPECT_NEAR(w[0] + w[1] + w[2], 1.0, 1e-12);
}

TEST(WeightsTest, GaussianMonotone) {
  WeightConfig config;
  config.kernel = WeightKernel::kGaussian;
  config.sigma = 0.7;
  auto w = ComputeWeights({0.2, 0.4, 0.9}, config);
  EXPECT_GT(w[0], w[1]);
  EXPECT_GT(w[1], w[2]);
}

TEST(WeightsTest, EmptyInputGivesEmptyOutput) {
  EXPECT_TRUE(ComputeWeights({}, {}).empty());
}

TEST(WeightsTest, ZeroDistanceHandledByEpsilon) {
  WeightConfig config;
  config.kernel = WeightKernel::kInverseDistance;
  auto w = ComputeWeights({0.0, 1.0}, config);
  EXPECT_GT(w[0], 0.99);
}

// ------------------------------------------------------------ classifier --

TEST(KnnClassifierTest, PerfectOnSeparatedClusters) {
  Rng rng(9);
  SyntheticSpec spec;
  spec.num_classes = 3;
  spec.dim = 8;
  spec.size = 600;
  spec.cluster_stddev = 0.02;
  Dataset data = MakeGaussianMixture(spec, &rng);
  Rng srng(10);
  auto split = SplitTrainTest(data, 0.2, &srng);
  KnnClassifier knn(&split.train, 5);
  EXPECT_GT(knn.Accuracy(split.test), 0.99);
}

TEST(KnnClassifierTest, ProbaIsNeighborFraction) {
  // 1-D layout: 3 nearest of query (at 0) are labels {0, 0, 1}.
  Dataset train;
  train.features = Matrix(4, 1);
  train.features.At(0, 0) = 0.1f;
  train.features.At(1, 0) = 0.2f;
  train.features.At(2, 0) = 0.3f;
  train.features.At(3, 0) = 5.0f;
  train.labels = {0, 0, 1, 1};
  KnnClassifier knn(&train, 3);
  std::vector<float> query = {0.0f};
  EXPECT_NEAR(knn.PredictProba(query, 0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(knn.PredictProba(query, 1), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(knn.Predict(query), 0);
}

TEST(KnnUtilityTest, MatchesDefinitionOnSmallSubsets) {
  Dataset train;
  train.features = Matrix(4, 1);
  train.features.At(0, 0) = 1.0f;
  train.features.At(1, 0) = 2.0f;
  train.features.At(2, 0) = 3.0f;
  train.features.At(3, 0) = 4.0f;
  train.labels = {1, 0, 1, 1};
  std::vector<float> query = {0.0f};
  // K=2, subset {1, 2}: neighbors are rows 1 (label 0) and 2 (label 1).
  std::vector<int> subset = {1, 2};
  EXPECT_NEAR(UnweightedKnnClassUtility(train, subset, query, 1, 2), 0.5, 1e-12);
  // Subset smaller than K still divides by K (Eq 5).
  std::vector<int> one = {0};
  EXPECT_NEAR(UnweightedKnnClassUtility(train, one, query, 1, 2), 0.5, 1e-12);
  EXPECT_NEAR(UnweightedKnnClassUtility(train, {}, query, 1, 2), 0.0, 1e-12);
}

TEST(KnnUtilityTest, WeightedUniformKernelNormalizesOverRetrieved) {
  Dataset train;
  train.features = Matrix(3, 1);
  train.features.At(0, 0) = 1.0f;
  train.features.At(1, 0) = 2.0f;
  train.features.At(2, 0) = 3.0f;
  train.labels = {1, 1, 0};
  std::vector<float> query = {0.0f};
  WeightConfig uniform;
  // With |S| = 1 < K the weighted utility normalizes over 1 neighbor
  // (Eq 26), unlike the unweighted Eq (5) which divides by K.
  std::vector<int> one = {0};
  EXPECT_NEAR(WeightedKnnClassUtility(train, one, query, 1, 2, uniform), 1.0, 1e-12);
}

// ------------------------------------------------------------- regressor --

TEST(KnnRegressorTest, RecoversLocallyConstantFunction) {
  Rng rng(11);
  Dataset data = RandomRegDataset(400, 3, 12);
  // Targets equal the first feature; a 1-NN regressor should track it.
  for (size_t i = 0; i < data.Size(); ++i) {
    data.targets[i] = data.features.Row(i)[0];
  }
  Rng srng(13);
  auto split = SplitTrainTest(data, 0.1, &srng);
  KnnRegressor knn(&split.train, 1);
  EXPECT_LT(knn.MeanSquaredError(split.test), 0.2);
}

TEST(KnnRegressorTest, UnweightedPredictDividesByK) {
  Dataset train;
  train.features = Matrix(2, 1);
  train.features.At(0, 0) = 1.0f;
  train.features.At(1, 0) = 10.0f;
  train.targets = {4.0, 8.0};
  KnnRegressor knn(&train, 4);  // K larger than the data: Eq (25) divides by K
  std::vector<float> query = {0.0f};
  EXPECT_NEAR(knn.Predict(query), (4.0 + 8.0) / 4.0, 1e-12);
}

TEST(KnnRegressionUtilityTest, EmptySubsetIsNegativeTargetSquared) {
  Dataset train = RandomRegDataset(5, 2, 14);
  std::vector<float> query = {0.0f, 0.0f};
  EXPECT_NEAR(UnweightedKnnRegressionUtility(train, {}, query, 3.0, 2), -9.0, 1e-12);
  EXPECT_NEAR(WeightedKnnRegressionUtility(train, {}, query, 3.0, 2, {}), -9.0, 1e-12);
}

TEST(KnnRegressionUtilityTest, PerfectPredictionGivesZero) {
  Dataset train;
  train.features = Matrix(2, 1);
  train.features.At(0, 0) = 1.0f;
  train.features.At(1, 0) = 2.0f;
  train.targets = {3.0, 5.0};
  std::vector<float> query = {0.0f};
  std::vector<int> both = {0, 1};
  // K=2 estimate = (3+5)/2 = 4; utility = -(4-4)^2 = 0.
  EXPECT_NEAR(UnweightedKnnRegressionUtility(train, both, query, 4.0, 2), 0.0, 1e-12);
}

}  // namespace
}  // namespace knnshap
