// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// RequestPipeline coverage: ordered pipelined output must be
// byte-identical to the serial loop, unordered mode must answer every
// request, mutations must version corpora and invalidate engine state
// deterministically, the cache must survive a simulated restart, and the
// checked-in golden transcript must reproduce bit for bit (the same
// session/golden pair the CI smoke test pipes through the real binary).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/result_cache.h"
#include "engine/valuators.h"
#include "knn/distance_kernel.h"
#include "serve/pipeline.h"
#include "test_util.h"
#include "util/fault.h"
#include "util/json.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace knnshap {
namespace {

std::string RowsJson(size_t n, size_t dim, int num_classes, uint64_t seed) {
  Rng rng(seed);
  std::string out = "[";
  for (size_t r = 0; r < n; ++r) {
    if (r > 0) out += ",";
    out += "[";
    for (size_t d = 0; d < dim; ++d) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4f,", rng.NextGaussian());
      out += buf;
    }
    out += std::to_string(rng.NextIndex(static_cast<uint64_t>(num_classes)));
    out += "]";
  }
  out += "]";
  return out;
}

/// A deterministic mixed-method session: loads, interleaved value traffic
/// over two corpora, mutations (which are pipeline barriers), error
/// requests, repeated requests for cache hits, and a final stats.
std::vector<std::string> MixedSession() {
  std::vector<std::string> lines;
  lines.push_back(R"({"op":"load","name":"a","rows":)" + RowsJson(40, 3, 2, 1) +
                  R"(,"target":"label"})");
  lines.push_back(R"({"op":"load","name":"b","rows":)" + RowsJson(25, 3, 3, 2) +
                  R"(,"target":"label"})");
  lines.push_back(R"({"op":"load","name":"q1","rows":)" + RowsJson(4, 3, 2, 3) +
                  R"(,"target":"label"})");
  lines.push_back(R"({"op":"load","name":"q2","rows":)" + RowsJson(3, 3, 3, 4) +
                  R"(,"target":"label"})");
  const char* methods[] = {"exact", "exact-corrected", "truncated", "mc"};
  for (int round = 0; round < 3; ++round) {
    for (const char* method : methods) {
      lines.push_back(std::string(R"({"op":"value","train":"a","test":"q1","method":")") +
                      method + R"(","k":)" + std::to_string(2 + round) + "}");
      lines.push_back(std::string(R"({"op":"value","train":"b","test":"q2","method":")") +
                      method + R"(","k":)" + std::to_string(2 + round) + "}");
    }
  }
  lines.push_back(R"({"op":"value","train":"a","test":"q1","method":"weighted","k":2,"kernel":"inverse"})");
  lines.push_back(R"({"op":"value","train":"missing","test":"q1"})");
  lines.push_back(R"({"op":"value","train":"a","test":"q1","method":"nope"})");
  lines.push_back(R"({"op":"append","name":"a","rows":)" + RowsJson(2, 3, 2, 5) + "}");
  lines.push_back(R"({"op":"value","train":"a","test":"q1","method":"exact","k":3})");
  lines.push_back(R"({"op":"remove","name":"a","row":40})");
  lines.push_back(R"({"op":"value","train":"a","test":"q1","method":"exact","k":3})");
  // Identical repeats, separated by a sync barrier: deterministic hits.
  lines.push_back(R"({"op":"sync"})");
  lines.push_back(R"({"op":"value","train":"a","test":"q1","method":"exact","k":3})");
  lines.push_back(R"({"op":"value","train":"b","test":"q2","method":"exact-corrected","k":2})");
  lines.push_back(R"({"op":"drop","name":"b"})");
  lines.push_back(R"({"op":"stats"})");
  lines.push_back(R"({"op":"quit"})");
  return lines;
}

std::string Join(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string RunSession(const std::string& input, const PipelineOptions& options) {
  RequestPipeline pipeline(options);
  std::istringstream in(input);
  std::ostringstream out;
  pipeline.Run(in, out);
  return out.str();
}

TEST(ServeTest, OrderedPipelinedOutputIsByteIdenticalToSerial) {
  const std::string input = Join(MixedSession());
  ThreadPool pool(4);

  PipelineOptions serial;
  serial.pipelined = false;
  serial.emit_timing = false;
  const std::string serial_out = RunSession(input, serial);

  PipelineOptions pipelined;
  pipelined.pool = &pool;
  pipelined.emit_timing = false;
  const std::string pipelined_out = RunSession(input, pipelined);

  EXPECT_EQ(serial_out, pipelined_out);
  // Same session again: the transcript is a pure function of the input.
  EXPECT_EQ(pipelined_out, RunSession(input, pipelined));
}

TEST(ServeTest, UnorderedModeAnswersEveryRequest) {
  std::vector<std::string> lines;
  lines.push_back(R"({"op":"load","name":"a","rows":)" + RowsJson(30, 3, 2, 1) +
                  R"(,"target":"label"})");
  const int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    lines.push_back(R"({"op":"value","train":"a","queries":)" +
                    RowsJson(2, 3, 2, 100 + static_cast<uint64_t>(i)) +
                    R"(,"method":"exact","k":3,"ordered":false,"id":)" +
                    std::to_string(i) + ",\"include_values\":false}");
  }
  lines.push_back(R"({"op":"quit"})");

  ThreadPool pool(4);
  PipelineOptions options;
  options.pool = &pool;
  options.emit_timing = false;
  const std::string output = RunSession(Join(lines), options);

  std::istringstream parse(output);
  std::string line;
  std::set<int> seen_ids;
  size_t responses = 0;
  while (std::getline(parse, line)) {
    ++responses;
    JsonParseResult parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_TRUE(parsed.value.Get("ok").AsBool()) << line;
    if (parsed.value.Has("id")) {
      seen_ids.insert(static_cast<int>(parsed.value.Get("id").AsNumber()));
    }
  }
  EXPECT_EQ(responses, lines.size());
  EXPECT_EQ(seen_ids.size(), static_cast<size_t>(kRequests));
}

TEST(ServeTest, MutationsInvalidateAndVersionDeterministically) {
  std::vector<std::string> lines;
  lines.push_back(R"({"op":"load","name":"a","rows":)" + RowsJson(20, 3, 2, 1) +
                  R"(,"target":"label"})");
  lines.push_back(R"({"op":"value","train":"a","queries":)" + RowsJson(2, 3, 2, 9) +
                  R"(,"method":"exact","k":3})");
  lines.push_back(R"({"op":"append","name":"a","rows":)" + RowsJson(1, 3, 2, 10) + "}");
  lines.push_back(R"({"op":"stats"})");
  lines.push_back(R"({"op":"drop","name":"a"})");
  lines.push_back(R"({"op":"stats"})");
  lines.push_back(R"({"op":"quit"})");

  ThreadPool pool(4);
  PipelineOptions options;
  options.pool = &pool;
  options.emit_timing = false;
  const std::string output = RunSession(Join(lines), options);

  std::vector<JsonValue> responses;
  std::istringstream parse(output);
  std::string line;
  while (std::getline(parse, line)) {
    JsonParseResult parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    responses.push_back(parsed.value);
  }
  ASSERT_EQ(responses.size(), lines.size());
  EXPECT_EQ(responses[0].Get("version").AsNumber(), 1.0);
  EXPECT_EQ(responses[2].Get("version").AsNumber(), 2.0);
  // After append, the old fingerprint's fitted valuator is gone; nothing
  // has been fitted against the new version yet.
  EXPECT_EQ(responses[3].Get("fitted_valuators").AsNumber(), 0.0);
  // Nothing fitted or cached against version 2, so drop evicts nothing —
  // but the corpus disappears from stats.
  EXPECT_TRUE(responses[4].Get("ok").AsBool());
  EXPECT_EQ(responses[5].Get("datasets").Items().size(), 0u);
}

TEST(ServeTest, CachePersistenceWarmStartsARestart) {
  const std::string cache_path = "serve_test_cache.bin";
  std::remove(cache_path.c_str());
  const std::string corpus = RowsJson(30, 3, 2, 21);
  const std::string queries = RowsJson(3, 3, 2, 22);

  std::vector<std::string> first_session;
  first_session.push_back(R"({"op":"load","name":"a","rows":)" + corpus +
                          R"(,"target":"label"})");
  first_session.push_back(R"({"op":"value","train":"a","queries":)" + queries +
                          R"(,"method":"exact","k":3})");
  first_session.push_back(R"({"op":"save_cache","path":")" + cache_path + R"("})");
  first_session.push_back(R"({"op":"quit"})");

  PipelineOptions options;
  options.emit_timing = false;
  const std::string first_out = RunSession(Join(first_session), options);
  ASSERT_NE(first_out.find("\"entries\":1"), std::string::npos) << first_out;

  // A brand-new pipeline (fresh engine — the restarted process), same
  // corpus contents: the replayed request must hit the reloaded cache.
  std::vector<std::string> second_session;
  second_session.push_back(R"({"op":"load","name":"renamed","rows":)" + corpus +
                           R"(,"target":"label"})");
  second_session.push_back(R"({"op":"load_cache","path":")" + cache_path + R"("})");
  second_session.push_back(R"({"op":"value","train":"renamed","queries":)" + queries +
                           R"(,"method":"exact","k":3})");
  second_session.push_back(R"({"op":"quit"})");
  const std::string second_out = RunSession(Join(second_session), options);

  std::istringstream parse(second_out);
  std::string line;
  std::vector<JsonValue> responses;
  while (std::getline(parse, line)) {
    responses.push_back(ParseJson(line).value);
  }
  ASSERT_EQ(responses.size(), second_session.size());
  EXPECT_EQ(responses[1].Get("entries").AsNumber(), 1.0);
  EXPECT_TRUE(responses[2].Get("cache_hit").AsBool()) << second_out;

  // Corrupt file: load_cache reports an error response, engine unharmed.
  std::ofstream(cache_path, std::ios::trunc) << "not a cache";
  RequestPipeline pipeline(options);
  JsonParseResult bad = ParseJson(R"({"op":"load_cache","path":")" + cache_path + R"("})");
  JsonValue response = pipeline.HandleSync(bad.value);
  EXPECT_FALSE(response.Get("ok").AsBool());
  std::remove(cache_path.c_str());
}

TEST(ServeTest, MalformedRequestsAnswerErrorsNotAborts) {
  PipelineOptions options;
  options.emit_timing = false;
  RequestPipeline pipeline(options);
  auto handle = [&](const std::string& line) {
    JsonParseResult parsed = ParseJson(line);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    return pipeline.HandleSync(parsed.value);
  };
  handle(R"({"op":"load","name":"a","rows":)" + RowsJson(10, 3, 2, 1) +
         R"(,"target":"label"})");
  // Core algorithms guard hyperparameters with fatal checks; the serve
  // layer must convert every such case into an error response.
  EXPECT_FALSE(handle(R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],"k":0})")
                   .Get("ok")
                   .AsBool());
  EXPECT_FALSE(
      handle(R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],"k":2.5})")
          .Get("ok")
          .AsBool());
  EXPECT_FALSE(
      handle(R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],"epsilon":0})")
          .Get("ok")
          .AsBool());
  EXPECT_FALSE(handle(R"({"op":"remove","name":"a","row":2.9})").Get("ok").AsBool());
  EXPECT_FALSE(handle(R"({"op":"remove","name":"a","row":1e300})").Get("ok").AsBool());
  // The store is intact and a well-formed request still works.
  JsonValue good =
      handle(R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],"k":3})");
  EXPECT_TRUE(good.Get("ok").AsBool()) << good.Dump();
}

TEST(ServeTest, ExplicitParallelRunsInlineWithIdenticalValues) {
  const std::string corpus = RowsJson(40, 3, 2, 31);
  const std::string queries = RowsJson(6, 3, 2, 32);
  auto session = [&](const std::string& extra) {
    return R"({"op":"load","name":"a","rows":)" + corpus + R"(,"target":"label"})" +
           "\n" + R"({"op":"value","train":"a","queries":)" + queries +
           R"(,"method":"exact","k":3)" + extra + "}\n" + R"({"op":"quit"})" + "\n";
  };
  ThreadPool pool(4);
  PipelineOptions options;
  options.pool = &pool;
  options.emit_timing = false;
  // Dispatched (default) and inline-sharded ("parallel":true) must answer
  // byte-identically — the engine's bitwise contract seen end to end.
  EXPECT_EQ(RunSession(session(""), options),
            RunSession(session(R"(,"parallel":true)"), options));
}

TEST(ServeTest, DescribeListsEveryMethodWithTypedParams) {
  PipelineOptions options;
  options.emit_timing = false;
  RequestPipeline pipeline(options);

  JsonValue response = pipeline.HandleSync(ParseJson(R"({"op":"describe"})").value);
  ASSERT_TRUE(response.Get("ok").AsBool()) << response.Dump();
  const auto& methods = response.Get("methods").Items();
  ASSERT_EQ(methods.size(), ValuatorRegistry::Global().Methods().size());
  for (const auto& method : methods) {
    EXPECT_FALSE(method.Get("name").AsString().empty());
    EXPECT_TRUE(method.Get("tasks").IsArray());
    EXPECT_TRUE(method.Has("per_query"));
    EXPECT_TRUE(method.Has("requires"));
    ASSERT_TRUE(method.Get("params").IsArray()) << method.Dump();
    for (const auto& param : method.Get("params").Items()) {
      EXPECT_TRUE(param.Has("name"));
      EXPECT_TRUE(param.Has("type"));
      EXPECT_TRUE(param.Has("default"));
    }
  }

  // Single-method filter and its not-found error.
  JsonValue one = pipeline.HandleSync(
      ParseJson(R"({"op":"describe","method":"mc"})").value);
  ASSERT_TRUE(one.Get("ok").AsBool());
  ASSERT_EQ(one.Get("methods").Items().size(), 1u);
  EXPECT_FALSE(one.Get("methods").Items()[0].Get("per_query").AsBool());
  JsonValue missing = pipeline.HandleSync(
      ParseJson(R"({"op":"describe","method":"nope"})").value);
  EXPECT_FALSE(missing.Get("ok").AsBool());
  EXPECT_EQ(missing.Get("code").AsString(), "not_found");
}

TEST(ServeTest, StructuredErrorsNameCodeAndField) {
  PipelineOptions options;
  options.emit_timing = false;
  RequestPipeline pipeline(options);
  auto handle = [&](const std::string& line) {
    return pipeline.HandleSync(ParseJson(line).value);
  };
  handle(R"({"op":"load","name":"a","rows":)" + RowsJson(12, 3, 2, 41) +
         R"(,"target":"label"})");

  JsonValue bad_k = handle(R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],"k":0})");
  EXPECT_FALSE(bad_k.Get("ok").AsBool());
  EXPECT_EQ(bad_k.Get("code").AsString(), "invalid_argument");
  EXPECT_EQ(bad_k.Get("field").AsString(), "k");

  JsonValue bad_eps = handle(
      R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],"method":"truncated","epsilon":-2})");
  EXPECT_EQ(bad_eps.Get("field").AsString(), "epsilon");
  EXPECT_EQ(bad_eps.Get("error").AsString(), "'epsilon' must be > 0 (got -2)");

  // A typo'd field is named, with the request id echoed for correlation.
  JsonValue typo = handle(
      R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],"epsilonn":0.5,"id":9})");
  EXPECT_FALSE(typo.Get("ok").AsBool());
  EXPECT_EQ(typo.Get("field").AsString(), "epsilonn");
  EXPECT_EQ(typo.Get("id").AsNumber(), 9.0);

  // Unknown method / dataset are not_found.
  EXPECT_EQ(handle(R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],"method":"nope"})")
                .Get("code")
                .AsString(),
            "not_found");
  EXPECT_EQ(handle(R"({"op":"value","train":"missing","queries":[[0.1,0.2,0.3,1]]})")
                .Get("code")
                .AsString(),
            "not_found");

  // A disallowed task for the method names the task field — including on
  // single-task methods, where an explicit conflicting task must error,
  // not silently coerce to the method's own task.
  JsonValue bad_task = handle(
      R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],"method":"weighted","task":"classification"})");
  EXPECT_FALSE(bad_task.Get("ok").AsBool());
  EXPECT_EQ(bad_task.Get("field").AsString(), "task");
  JsonValue coerced = handle(
      R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],"method":"exact","task":"regression"})");
  EXPECT_FALSE(coerced.Get("ok").AsBool());
  EXPECT_EQ(coerced.Get("field").AsString(), "task");
  EXPECT_NE(coerced.Get("error").AsString().find("supports tasks: classification"),
            std::string::npos);

  // A method whose schema demands a larger corpus answers a precondition
  // error — the request must never reach the adapter's fatal internal
  // check and kill the server.
  handle(R"({"op":"load","name":"tiny","rows":[[0.1,0.2,1]],"target":"label"})");
  JsonValue tiny_lsh = handle(
      R"({"op":"value","train":"tiny","queries":[[0.1,0.2,1]],"method":"lsh"})");
  EXPECT_FALSE(tiny_lsh.Get("ok").AsBool());
  EXPECT_EQ(tiny_lsh.Get("code").AsString(), "failed_precondition");
  EXPECT_NE(tiny_lsh.Get("error").AsString().find("at least 2"),
            std::string::npos);
}

TEST(ServeTest, PipelineHonorsACustomEngineRegistry) {
  // Validation, methods and describe must resolve against the registry
  // the *engine* serves from, not the global one — a pipeline wired to a
  // private registry would otherwise reject its own methods at parse time.
  ValuatorRegistry registry;
  RegisterBuiltinValuators(&registry);
  MethodSchema schema;
  schema.name = "custom-exact";
  schema.description = "private-registry test double";
  schema.params = ResolveParams({"k", "metric"});
  schema.tasks = {KnnTask::kClassification};
  registry.Register(schema, [](const ValuatorParams& params) {
    return std::make_unique<ExactValuator>(params);
  });

  PipelineOptions options;
  options.emit_timing = false;
  options.engine.registry = &registry;
  RequestPipeline pipeline(options);
  auto handle = [&](const std::string& line) {
    return pipeline.HandleSync(ParseJson(line).value);
  };
  handle(R"({"op":"load","name":"a","rows":)" + RowsJson(15, 3, 2, 61) +
         R"(,"target":"label"})");
  JsonValue value = handle(
      R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],"method":"custom-exact","k":3})");
  EXPECT_TRUE(value.Get("ok").AsBool()) << value.Dump();
  EXPECT_EQ(value.Get("method").AsString(), "custom-exact");
  JsonValue described = handle(R"({"op":"describe","method":"custom-exact"})");
  EXPECT_TRUE(described.Get("ok").AsBool()) << described.Dump();
}

TEST(ServeTest, UndeclaredSeedChangeHitsTheCacheThroughServe) {
  // End-to-end scoped-fingerprint payoff: the same exact request with a
  // different seed (undeclared by exact) is served from the cache, and
  // the params echo shows exactly the declared fields that keyed it.
  PipelineOptions options;
  options.emit_timing = false;
  RequestPipeline pipeline(options);
  auto handle = [&](const std::string& line) {
    return pipeline.HandleSync(ParseJson(line).value);
  };
  handle(R"({"op":"load","name":"a","rows":)" + RowsJson(20, 3, 2, 51) +
         R"(,"target":"label"})");
  const std::string queries = RowsJson(2, 3, 2, 52);
  JsonValue first =
      handle(R"({"op":"value","train":"a","queries":)" + queries + R"(,"k":3})");
  ASSERT_TRUE(first.Get("ok").AsBool()) << first.Dump();
  EXPECT_FALSE(first.Get("cache_hit").AsBool());
  JsonValue second = handle(R"({"op":"value","train":"a","queries":)" + queries +
                            R"(,"k":3,"seed":4242})");
  ASSERT_TRUE(second.Get("ok").AsBool()) << second.Dump();
  EXPECT_TRUE(second.Get("cache_hit").AsBool());
  EXPECT_EQ(first.Get("params").Dump(), second.Get("params").Dump());
  EXPECT_FALSE(second.Get("params").Has("seed"));  // undeclared for exact
  EXPECT_EQ(first.Get("values").Dump(), second.Get("values").Dump());
}

// ---------------------------------------------------------------------------
// Observability: traces, metrics, slow log
// ---------------------------------------------------------------------------

std::string DumpWithoutTrace(const JsonValue& response) {
  JsonValue out = JsonValue::MakeObject();
  for (const auto& [key, value] : response.Fields()) {
    if (key != "trace") out.Set(key, value);
  }
  return out.Dump();
}

TEST(ServeTest, TracedValuesAreByteIdenticalToUntraced) {
  // Instrumentation observes, never reorders: {"trace":true} may only add
  // the "trace" field — every other response byte is unchanged.
  PipelineOptions options;
  options.emit_timing = false;
  const std::string load = R"({"op":"load","name":"a","rows":)" +
                           RowsJson(30, 4, 2, 71) + R"(,"target":"label"})";
  const std::string queries = RowsJson(3, 4, 2, 72);

  RequestPipeline untraced_pipeline(options);
  untraced_pipeline.HandleSync(ParseJson(load).value);
  JsonValue untraced = untraced_pipeline.HandleSync(
      ParseJson(R"({"op":"value","train":"a","queries":)" + queries +
                R"(,"method":"exact","k":3})")
          .value);
  ASSERT_TRUE(untraced.Get("ok").AsBool()) << untraced.Dump();
  ASSERT_FALSE(untraced.Has("trace"));

  RequestPipeline traced_pipeline(options);
  traced_pipeline.HandleSync(ParseJson(load).value);
  JsonValue traced = traced_pipeline.HandleSync(
      ParseJson(R"({"op":"value","train":"a","queries":)" + queries +
                R"(,"method":"exact","k":3,"trace":true})")
          .value);
  ASSERT_TRUE(traced.Get("ok").AsBool()) << traced.Dump();
  ASSERT_TRUE(traced.Has("trace"));
  EXPECT_EQ(DumpWithoutTrace(traced), untraced.Dump());

  // Masked form (emit_timing off): span name -> count only, and no
  // serve-layer spans (those differ between the serial and pipelined
  // loops, which must stay byte-identical).
  const JsonValue& spans = traced.Get("trace").Get("spans");
  EXPECT_TRUE(spans.Has("validate"));
  EXPECT_TRUE(spans.Has("fit"));
  EXPECT_TRUE(spans.Has("value"));
  EXPECT_TRUE(spans.Has("distance"));
  EXPECT_TRUE(spans.Has("recursion"));
  EXPECT_FALSE(spans.Has("parse"));
  EXPECT_FALSE(spans.Has("serialize"));
  EXPECT_FALSE(spans.Has("queue_wait"));
  EXPECT_FALSE(traced.Get("trace").Has("total_seconds"));
}

TEST(ServeTest, TraceSpansSumToReportedSeconds) {
  // The accounting must balance: on a compute-heavy request the
  // non-overlapping engine phases cover the reported wall time within 5%.
  PipelineOptions options;  // emit_timing on
  RequestPipeline pipeline(options);
  pipeline.HandleSync(
      ParseJson(R"({"op":"load","name":"big","rows":)" +
                RowsJson(2500, 16, 2, 81) + R"(,"target":"label"})")
          .value);
  JsonValue response = pipeline.HandleSync(
      ParseJson(R"({"op":"value","train":"big","queries":)" +
                RowsJson(8, 16, 2, 82) +
                R"(,"method":"exact","k":5,"trace":true,"parallel":false,)" +
                R"("include_values":false})")
          .value);
  ASSERT_TRUE(response.Get("ok").AsBool()) << response.Dump();
  const double seconds = response.Get("seconds").AsNumber();
  ASSERT_GT(seconds, 0.0);
  const JsonValue& trace = response.Get("trace");
  EXPECT_DOUBLE_EQ(trace.Get("total_seconds").AsNumber(), seconds);
  const JsonValue& spans = trace.Get("spans");
  auto span_seconds = [&](const char* name) {
    return spans.Has(name) ? spans.Get(name).Get("seconds").AsNumber() : 0.0;
  };
  // Top-level phases, mutually exclusive in ValueImpl. "finalize" also has
  // a nested occurrence inside "value" (valuator finalize), negligible for
  // exact; the dominant terms are fit + value.
  const double top_level = span_seconds("validate") +
                           span_seconds("fingerprint") +
                           span_seconds("cache_probe") + span_seconds("fit") +
                           span_seconds("value") + span_seconds("finalize") +
                           span_seconds("cache_store");
  EXPECT_GE(top_level, 0.95 * seconds)
      << "unaccounted request time; trace: " << trace.Dump();
  EXPECT_LE(top_level, 1.05 * seconds)
      << "double-counted request time; trace: " << trace.Dump();
  // Deep spans (per-query kernels) must carry most of the value phase.
  const double deep = span_seconds("distance") + span_seconds("sort") +
                      span_seconds("recursion");
  EXPECT_GE(deep, 0.3 * span_seconds("value")) << trace.Dump();
  EXPECT_GT(spans.Get("distance").Get("count").AsNumber(), 0.0);
}

TEST(ServeTest, MetricsOpExposesHistogramsAndSpanNames) {
  PipelineOptions options;
  RequestPipeline pipeline(options);
  pipeline.HandleSync(ParseJson(R"({"op":"load","name":"a","rows":)" +
                                RowsJson(25, 3, 2, 91) +
                                R"(,"target":"label"})")
                          .value);
  const std::string queries = RowsJson(2, 3, 2, 92);
  for (int i = 0; i < 3; ++i) {
    JsonValue response = pipeline.HandleSync(
        ParseJson(R"({"op":"value","train":"a","queries":)" + queries +
                  R"(,"method":"exact","k":3})")
            .value);
    ASSERT_TRUE(response.Get("ok").AsBool()) << response.Dump();
  }
  JsonValue metrics = pipeline.HandleSync(ParseJson(R"({"op":"metrics"})").value);
  ASSERT_TRUE(metrics.Get("ok").AsBool()) << metrics.Dump();
  const std::string& text = metrics.Get("text").AsString();
  EXPECT_NE(text.find("knnshap_requests_total{method=\"exact\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("knnshap_request_seconds_bucket"), std::string::npos);
  EXPECT_NE(text.find("knnshap_phase_nanos_total{phase=\"fit\"}"),
            std::string::npos);
  EXPECT_NE(text.find("knnshap_phase_nanos_total{phase=\"value\"}"),
            std::string::npos);
  EXPECT_NE(text.find("knnshap_result_cache_entries"), std::string::npos);

  // The stats op carries the same registry as a structured section.
  JsonValue stats = pipeline.HandleSync(ParseJson(R"({"op":"stats"})").value);
  ASSERT_TRUE(stats.Get("ok").AsBool());
  const JsonValue& section = stats.Get("metrics");
  EXPECT_DOUBLE_EQ(section.Get("requests").Get("exact").AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(section.Get("in_flight").AsNumber(), 0.0);
  const JsonValue& latency = section.Get("latency").Get("exact");
  EXPECT_DOUBLE_EQ(latency.Get("count").AsNumber(), 3.0);
  EXPECT_LE(latency.Get("p50").AsNumber(), latency.Get("p95").AsNumber());
  EXPECT_LE(latency.Get("p95").AsNumber(), latency.Get("p99").AsNumber());
  EXPECT_LE(latency.Get("p99").AsNumber(), latency.Get("max").AsNumber());
  EXPECT_GT(section.Get("phase_seconds").Get("value").AsNumber(), 0.0);
}

TEST(ServeTest, MetricsOpErrorsWhenObservabilityIsOff) {
  PipelineOptions options;
  options.observability = false;
  RequestPipeline pipeline(options);
  EXPECT_EQ(pipeline.Metrics(), nullptr);
  JsonValue metrics = pipeline.HandleSync(ParseJson(R"({"op":"metrics"})").value);
  EXPECT_FALSE(metrics.Get("ok").AsBool());
  EXPECT_EQ(metrics.Get("code").AsString(), "failed_precondition");
  // stats still answers, just without the metrics section.
  JsonValue stats = pipeline.HandleSync(ParseJson(R"({"op":"stats"})").value);
  EXPECT_TRUE(stats.Get("ok").AsBool());
  EXPECT_FALSE(stats.Has("metrics"));
}

TEST(ServeTest, StatsReportsCacheBytesAndPerCorpusFittedCounts) {
  PipelineOptions options;
  options.emit_timing = false;
  options.engine.result_cache_capacity = 8;
  RequestPipeline pipeline(options);
  auto handle = [&](const std::string& line) {
    return pipeline.HandleSync(ParseJson(line).value);
  };
  handle(R"({"op":"load","name":"a","rows":)" + RowsJson(20, 3, 2, 95) +
         R"(,"target":"label"})");
  handle(R"({"op":"load","name":"b","rows":)" + RowsJson(15, 3, 2, 96) +
         R"(,"target":"label"})");
  const std::string queries = RowsJson(2, 3, 2, 97);
  ASSERT_TRUE(handle(R"({"op":"value","train":"a","queries":)" + queries +
                     R"(,"method":"exact","k":3})")
                  .Get("ok")
                  .AsBool());
  ASSERT_TRUE(handle(R"({"op":"value","train":"a","queries":)" + queries +
                     R"(,"method":"truncated","k":3,"epsilon":0.2})")
                  .Get("ok")
                  .AsBool());

  JsonValue stats = handle(R"({"op":"stats"})");
  ASSERT_TRUE(stats.Get("ok").AsBool()) << stats.Dump();
  const JsonValue& cache = stats.Get("cache");
  EXPECT_DOUBLE_EQ(cache.Get("entries").AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(cache.Get("capacity").AsNumber(), 8.0);
  EXPECT_GT(cache.Get("bytes").AsNumber(), 0.0);
  for (const auto& dataset : stats.Get("datasets").Items()) {
    const double fitted = dataset.Get("fitted").AsNumber();
    if (dataset.Get("name").AsString() == "a") {
      EXPECT_DOUBLE_EQ(fitted, 2.0) << stats.Dump();  // exact + truncated
    } else {
      EXPECT_DOUBLE_EQ(fitted, 0.0) << stats.Dump();  // never valued
    }
  }
}

TEST(ServeTest, SlowLogEmitsOneLinePerOffendingRequest) {
  std::ostringstream slow_log;
  PipelineOptions options;
  options.slow_ms = 1e-6;  // everything is slow
  options.slow_log = &slow_log;
  RequestPipeline pipeline(options);
  pipeline.HandleSync(ParseJson(R"({"op":"load","name":"a","rows":)" +
                                RowsJson(25, 3, 2, 98) +
                                R"(,"target":"label"})")
                          .value);
  JsonValue response = pipeline.HandleSync(
      ParseJson(R"({"op":"value","train":"a","queries":)" +
                RowsJson(2, 3, 2, 99) + R"(,"method":"exact","k":3,"id":"s1"})")
          .value);
  ASSERT_TRUE(response.Get("ok").AsBool()) << response.Dump();
  // The slow-log threshold forces deep tracing but does NOT echo it.
  EXPECT_FALSE(response.Has("trace"));

  std::istringstream lines(slow_log.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line)) << "no slow-log line emitted";
  JsonParseResult parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_TRUE(parsed.value.Get("slow_request").AsBool());
  EXPECT_EQ(parsed.value.Get("id").AsString(), "s1");
  EXPECT_EQ(parsed.value.Get("method").AsString(), "exact");
  EXPECT_GT(parsed.value.Get("seconds").AsNumber(), 0.0);
  const JsonValue& spans = parsed.value.Get("trace").Get("spans");
  EXPECT_TRUE(spans.Has("fit"));
  EXPECT_TRUE(spans.Has("distance"));  // threshold forced deep spans
  EXPECT_GT(spans.Get("value").Get("seconds").AsNumber(), 0.0);
  EXPECT_FALSE(std::getline(lines, line)) << "more than one line: " << line;
}

TEST(ServeTest, TraceAllTracesEveryValueResponse) {
  PipelineOptions options;
  options.emit_timing = false;
  options.trace_all = true;
  RequestPipeline pipeline(options);
  pipeline.HandleSync(ParseJson(R"({"op":"load","name":"a","rows":)" +
                                RowsJson(20, 3, 2, 101) +
                                R"(,"target":"label"})")
                          .value);
  JsonValue response = pipeline.HandleSync(
      ParseJson(R"({"op":"value","train":"a","queries":)" +
                RowsJson(2, 3, 2, 102) + R"(,"method":"exact","k":3})")
          .value);
  ASSERT_TRUE(response.Get("ok").AsBool()) << response.Dump();
  EXPECT_TRUE(response.Has("trace"));
  EXPECT_TRUE(response.Get("trace").Get("spans").Has("distance"));
}

// ---------------------------------------------------------------------------
// Robustness: deadlines, shedding, line limits, snapshots, salvage.
// ---------------------------------------------------------------------------

TEST(ServeTest, DeadlineZeroIsDeterministicAcrossSerialAndPipelined) {
  // "deadline_ms":0 is an already-expired deadline checked before the
  // cache probe: the response is deadline_exceeded on every machine, so
  // it can interleave with ok traffic in a byte-stable transcript.
  std::vector<std::string> lines;
  lines.push_back(R"({"op":"load","name":"a","rows":)" + RowsJson(25, 3, 2, 61) +
                  R"(,"target":"label"})");
  lines.push_back(R"({"op":"value","train":"a","queries":)" +
                  RowsJson(2, 3, 2, 62) + R"(,"method":"exact","k":3})");
  lines.push_back(R"({"op":"value","train":"a","queries":)" +
                  RowsJson(2, 3, 2, 62) +
                  R"(,"method":"exact","k":3,"deadline_ms":0,"id":"dl"})");
  lines.push_back(R"({"op":"value","train":"a","queries":)" +
                  RowsJson(2, 3, 2, 62) + R"(,"method":"exact","k":3})");
  lines.push_back(R"({"op":"quit"})");
  const std::string input = Join(lines);

  ThreadPool pool(4);
  PipelineOptions serial;
  serial.pipelined = false;
  serial.emit_timing = false;
  PipelineOptions pipelined;
  pipelined.pool = &pool;
  pipelined.emit_timing = false;
  const std::string serial_out = RunSession(input, serial);
  EXPECT_EQ(serial_out, RunSession(input, pipelined));

  std::istringstream parse(serial_out);
  std::string line;
  std::vector<JsonValue> responses;
  while (std::getline(parse, line)) responses.push_back(ParseJson(line).value);
  ASSERT_EQ(responses.size(), lines.size());
  EXPECT_TRUE(responses[1].Get("ok").AsBool());
  EXPECT_FALSE(responses[2].Get("ok").AsBool());
  EXPECT_EQ(responses[2].Get("code").AsString(), "deadline_exceeded");
  EXPECT_EQ(responses[2].Get("id").AsString(), "dl");
  // The expired request poisons nothing: its identical successor is fine
  // (and still a cache hit from the first run — the deadline check runs
  // before the probe, so nothing partial was ever cached).
  EXPECT_TRUE(responses[3].Get("ok").AsBool());
  EXPECT_TRUE(responses[3].Get("cache_hit").AsBool());
}

TEST(ServeTest, DeadlineErrorEchoesThePartialTrace) {
  PipelineOptions options;
  options.emit_timing = false;
  RequestPipeline pipeline(options);
  pipeline.HandleSync(ParseJson(R"({"op":"load","name":"a","rows":)" +
                                RowsJson(20, 3, 2, 63) +
                                R"(,"target":"label"})")
                          .value);
  JsonValue response = pipeline.HandleSync(
      ParseJson(R"({"op":"value","train":"a","queries":)" +
                RowsJson(2, 3, 2, 64) +
                R"(,"method":"exact","k":3,"deadline_ms":0,"trace":true})")
          .value);
  EXPECT_FALSE(response.Get("ok").AsBool());
  EXPECT_EQ(response.Get("code").AsString(), "deadline_exceeded");
  // The phases that ran before the deadline fired come back with the
  // error — for deadline_ms:0 that is exactly the validate span.
  ASSERT_TRUE(response.Has("trace")) << response.Dump();
  EXPECT_TRUE(response.Get("trace").Get("spans").Has("validate"));
}

TEST(ServeTest, TightDeadlineOnLargeCorpusAnswersPromptly) {
  // The acceptance pin: a 1 ms deadline on a corpus whose valuation takes
  // far longer must come back deadline_exceeded promptly (block-granular
  // polling bounds the overshoot), and a concurrent normal request on the
  // same pipeline completes untouched.
  const std::string corpus = RowsJson(3000, 8, 2, 65);
  const std::string queries = RowsJson(16, 8, 2, 66);
  PipelineOptions options;
  options.emit_timing = false;
  RequestPipeline pipeline(options);
  pipeline.HandleSync(ParseJson(R"({"op":"load","name":"big","rows":)" +
                                corpus + R"(,"target":"label"})")
                          .value);

  // Uncancelled baseline (also warms the fit, isolating the value loop).
  JsonValue baseline = pipeline.HandleSync(
      ParseJson(R"({"op":"value","train":"big","queries":)" + queries +
                R"(,"method":"exact","k":5,"cache":false})")
          .value);
  ASSERT_TRUE(baseline.Get("ok").AsBool()) << baseline.Dump();

  const auto start = std::chrono::steady_clock::now();
  JsonValue expired = pipeline.HandleSync(
      ParseJson(R"({"op":"value","train":"big","queries":)" + queries +
                R"(,"method":"exact","k":5,"cache":false,"deadline_ms":1})")
          .value);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(expired.Get("ok").AsBool()) << expired.Dump();
  EXPECT_EQ(expired.Get("code").AsString(), "deadline_exceeded");
  // Pinned latency bound: generous enough for a loaded CI box, far below
  // the uncancelled runtime of a 3000x16 valuation on one thread.
  EXPECT_LT(elapsed, 2.0);

  // The same request without a deadline still completes normally.
  JsonValue after = pipeline.HandleSync(
      ParseJson(R"({"op":"value","train":"big","queries":)" + queries +
                R"(,"method":"exact","k":5,"cache":false})")
          .value);
  EXPECT_TRUE(after.Get("ok").AsBool()) << after.Dump();
}

TEST(ServeTest, InvalidDeadlineIsAStructuredFieldError) {
  PipelineOptions options;
  options.emit_timing = false;
  RequestPipeline pipeline(options);
  pipeline.HandleSync(ParseJson(R"({"op":"load","name":"a","rows":)" +
                                RowsJson(10, 3, 2, 67) +
                                R"(,"target":"label"})")
                          .value);
  for (const char* bad : {R"("soon")", "-1", "2.5"}) {
    JsonValue response = pipeline.HandleSync(
        ParseJson(R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],)"
                  R"("deadline_ms":)" +
                  std::string(bad) + "}")
            .value);
    EXPECT_FALSE(response.Get("ok").AsBool()) << bad;
    EXPECT_EQ(response.Get("code").AsString(), "invalid_argument") << bad;
    EXPECT_EQ(response.Get("field").AsString(), "deadline_ms") << bad;
  }
}

TEST(ServeTest, DefaultDeadlineAppliesWhenRequestCarriesNone) {
  PipelineOptions options;
  options.emit_timing = false;
  options.default_deadline_ms = 1;
  RequestPipeline pipeline(options);
  pipeline.HandleSync(ParseJson(R"({"op":"load","name":"big","rows":)" +
                                RowsJson(3000, 8, 2, 68) +
                                R"(,"target":"label"})")
                          .value);
  JsonValue response = pipeline.HandleSync(
      ParseJson(R"({"op":"value","train":"big","queries":)" +
                RowsJson(16, 8, 2, 69) + R"(,"method":"exact","k":5})")
          .value);
  // 1 ms covers neither the fit nor the first distance block of a
  // 3000-row corpus: the server-wide default deadline fires.
  EXPECT_FALSE(response.Get("ok").AsBool());
  EXPECT_EQ(response.Get("code").AsString(), "deadline_exceeded");
}

TEST(ServeTest, ShedModeIsByteStableAcrossSerialAndPipelined) {
  // max_queue=0 sheds every value request in both loops (the serial loop
  // never has anything in flight, so 0 is the one deterministic setting):
  // shed responses interleaved with control-plane ok responses must be
  // byte-identical serial vs pipelined.
  std::vector<std::string> lines;
  lines.push_back(R"({"op":"load","name":"a","rows":)" + RowsJson(15, 3, 2, 71) +
                  R"(,"target":"label"})");
  lines.push_back(R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],"id":"v1"})");
  lines.push_back(R"({"op":"ping"})");
  lines.push_back(R"({"op":"value","train":"a","queries":[[0.4,0.5,0.6,0]],"id":"v2"})");
  lines.push_back(R"({"op":"stats"})");
  lines.push_back(R"({"op":"quit"})");
  const std::string input = Join(lines);

  ThreadPool pool(4);
  PipelineOptions serial;
  serial.pipelined = false;
  serial.emit_timing = false;
  serial.max_queue = 0;
  PipelineOptions pipelined;
  pipelined.pool = &pool;
  pipelined.emit_timing = false;
  pipelined.max_queue = 0;
  const std::string serial_out = RunSession(input, serial);
  EXPECT_EQ(serial_out, RunSession(input, pipelined));

  std::istringstream parse(serial_out);
  std::string line;
  std::vector<JsonValue> responses;
  while (std::getline(parse, line)) responses.push_back(ParseJson(line).value);
  ASSERT_EQ(responses.size(), lines.size());
  for (int i : {1, 3}) {
    EXPECT_FALSE(responses[i].Get("ok").AsBool()) << i;
    EXPECT_EQ(responses[i].Get("code").AsString(), "unavailable") << i;
    EXPECT_EQ(responses[i].Get("retry_after_ms").AsNumber(), 100.0) << i;
  }
  EXPECT_EQ(responses[1].Get("id").AsString(), "v1");
  EXPECT_EQ(responses[3].Get("id").AsString(), "v2");
  // The stats barrier sees both sheds in the server section.
  EXPECT_EQ(responses[4].Get("server").Get("shed_total").AsNumber(), 2.0);
  EXPECT_EQ(responses[4].Get("server").Get("queue_depth").AsNumber(), 0.0);
}

TEST(ServeTest, OverloadShedsInsteadOfBlockingTheReader) {
  // Real backpressure shedding: a one-thread pool wedged by a directly
  // submitted blocker, max_queue=1. The first value occupies the window;
  // the second arrives over-limit and is shed on the reader thread. The
  // blocker is released only after the shed proves the reader never
  // blocked behind the wedged pool.
  ThreadPool pool(1);
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
  });

  PipelineOptions options;
  options.pool = &pool;
  options.emit_timing = false;
  options.max_queue = 1;
  RequestPipeline pipeline(options);

  std::vector<std::string> lines;
  lines.push_back(R"({"op":"load","name":"a","rows":)" + RowsJson(15, 3, 2, 72) +
                  R"(,"target":"label"})");
  lines.push_back(R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],"id":"runs"})");
  lines.push_back(R"({"op":"value","train":"a","queries":[[0.4,0.5,0.6,0]],"id":"shed"})");
  lines.push_back(R"({"op":"quit"})");
  std::istringstream in(Join(lines));
  std::ostringstream out;
  std::thread server([&] { pipeline.Run(in, out); });
  // The reader sheds the second value without waiting for the pool; once
  // the shed lands, open the gate so the first value (and quit's drain)
  // can finish.
  while (pipeline.ShedCount() == 0) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  server.join();

  std::istringstream parse(out.str());
  std::string line;
  std::vector<JsonValue> responses;
  while (std::getline(parse, line)) responses.push_back(ParseJson(line).value);
  ASSERT_EQ(responses.size(), lines.size());
  EXPECT_TRUE(responses[1].Get("ok").AsBool());
  EXPECT_EQ(responses[1].Get("id").AsString(), "runs");
  EXPECT_FALSE(responses[2].Get("ok").AsBool());
  EXPECT_EQ(responses[2].Get("code").AsString(), "unavailable");
  EXPECT_EQ(responses[2].Get("id").AsString(), "shed");
  EXPECT_EQ(pipeline.ShedCount(), 1u);
}

TEST(ServeTest, OversizedLinesAreRejectedDeterministically) {
  std::vector<std::string> lines;
  lines.push_back(R"({"op":"load","name":"a","rows":)" + RowsJson(10, 3, 2, 73) +
                  R"(,"target":"label"})");
  // A huge (syntactically valid) request line: rejected before parsing.
  std::string big = R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],"id":")";
  big += std::string(200'000, 'x');
  big += R"("})";
  lines.push_back(big);
  lines.push_back(R"({"op":"ping"})");
  lines.push_back(R"({"op":"quit"})");
  const std::string input = Join(lines);

  ThreadPool pool(2);
  PipelineOptions serial;
  serial.pipelined = false;
  serial.emit_timing = false;
  serial.max_line_bytes = 64 * 1024;
  PipelineOptions pipelined = serial;
  pipelined.pipelined = true;
  pipelined.pool = &pool;
  const std::string serial_out = RunSession(input, serial);
  EXPECT_EQ(serial_out, RunSession(input, pipelined));

  std::istringstream parse(serial_out);
  std::string line;
  std::vector<JsonValue> responses;
  while (std::getline(parse, line)) responses.push_back(ParseJson(line).value);
  ASSERT_EQ(responses.size(), lines.size());
  EXPECT_FALSE(responses[1].Get("ok").AsBool());
  EXPECT_EQ(responses[1].Get("code").AsString(), "invalid_argument");
  EXPECT_TRUE(responses[2].Get("ok").AsBool());  // loop keeps serving
}

TEST(ServeTest, PeriodicSnapshotsAndFinalFlushPersistTheCache) {
  const std::string snap_path = "serve_test_snapshot.bin";
  std::remove(snap_path.c_str());
  PipelineOptions options;
  options.emit_timing = false;
  options.snapshot_path = snap_path;
  options.snapshot_every = 2;

  std::vector<std::string> lines;
  lines.push_back(R"({"op":"load","name":"a","rows":)" + RowsJson(20, 3, 2, 74) +
                  R"(,"target":"label"})");
  for (int i = 0; i < 3; ++i) {
    lines.push_back(R"({"op":"value","train":"a","queries":)" +
                    RowsJson(2, 3, 2, 75 + static_cast<uint64_t>(i)) +
                    R"(,"method":"exact","k":3})");
  }
  lines.push_back(R"({"op":"quit"})");
  RunSession(Join(lines), options);

  // The exit flush (and the periodic snapshot before it) persisted all
  // three results: a fresh cache warm-starts from the file.
  ResultCache restored(8);
  StatusOr<CacheLoadResult> loaded = restored.LoadFrom(snap_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().entries, 3u);
  EXPECT_FALSE(loaded.value().salvaged);
  std::remove(snap_path.c_str());
}

TEST(ServeTest, SnapshotFailuresAreCountedNeverFatal) {
  const std::string snap_path = "serve_test_snapfail.bin";
  std::remove(snap_path.c_str());
  PipelineOptions options;
  options.emit_timing = false;
  options.snapshot_path = snap_path;
  options.snapshot_every = 1;
  ASSERT_TRUE(FaultRegistry::Global().Configure("snapshot:after=0"));

  std::vector<std::string> lines;
  lines.push_back(R"({"op":"load","name":"a","rows":)" + RowsJson(15, 3, 2, 78) +
                  R"(,"target":"label"})");
  lines.push_back(R"({"op":"value","train":"a","queries":[[0.1,0.2,0.3,1]],"k":3})");
  lines.push_back(R"({"op":"stats"})");
  lines.push_back(R"({"op":"quit"})");
  RequestPipeline pipeline(options);
  std::istringstream in(Join(lines));
  std::ostringstream out;
  pipeline.Run(in, out);
  FaultRegistry::Global().Reset();

  // Serving continued; the failures were counted (periodic + exit flush)
  // and surfaced in stats; no snapshot file was produced.
  EXPECT_GE(pipeline.SnapshotFailures(), 2u);
  std::istringstream parse(out.str());
  std::string line;
  std::vector<JsonValue> responses;
  while (std::getline(parse, line)) responses.push_back(ParseJson(line).value);
  ASSERT_EQ(responses.size(), lines.size());
  EXPECT_TRUE(responses[1].Get("ok").AsBool());
  EXPECT_GE(responses[2].Get("server").Get("snapshot_failures").AsNumber(), 1.0);
  std::ifstream snap(snap_path, std::ios::binary);
  EXPECT_FALSE(snap.good());
}

TEST(ServeTest, LoadCacheSalvagesTornSnapshotsThroughServe) {
  const std::string cache_path = "serve_test_salvage.bin";
  std::remove(cache_path.c_str());
  PipelineOptions options;
  options.emit_timing = false;

  // Build a two-entry cache file through the serve surface.
  std::vector<std::string> lines;
  lines.push_back(R"({"op":"load","name":"a","rows":)" + RowsJson(20, 3, 2, 81) +
                  R"(,"target":"label"})");
  lines.push_back(R"({"op":"value","train":"a","queries":)" +
                  RowsJson(2, 3, 2, 82) + R"(,"method":"exact","k":3})");
  lines.push_back(R"({"op":"value","train":"a","queries":)" +
                  RowsJson(2, 3, 2, 83) + R"(,"method":"exact","k":4})");
  lines.push_back(R"({"op":"save_cache","path":")" + cache_path + R"("})");
  lines.push_back(R"({"op":"quit"})");
  RunSession(Join(lines), options);

  // Tear off the tail (simulated crash mid-write of a *non-atomic*
  // producer, or torn tmp file picked up after a kill).
  std::ifstream in_file(cache_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in_file)),
                    std::istreambuf_iterator<char>());
  in_file.close();
  ASSERT_GT(bytes.size(), 30u);
  std::ofstream(cache_path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 9));

  RequestPipeline fresh(options);
  JsonValue response = fresh.HandleSync(
      ParseJson(R"({"op":"load_cache","path":")" + cache_path + R"("})").value);
  ASSERT_TRUE(response.Get("ok").AsBool()) << response.Dump();
  EXPECT_EQ(response.Get("entries").AsNumber(), 1.0);
  EXPECT_TRUE(response.Get("salvaged").AsBool());
  EXPECT_NE(response.Get("warning").AsString().find("salvaged 1 of 2"),
            std::string::npos)
      << response.Dump();
  std::remove(cache_path.c_str());
}

TEST(ServeTest, KillMidSaveThenRestartRecoversThePriorSnapshot) {
  // The acceptance flow end to end: a good snapshot exists; a later save
  // is killed mid-write by fault injection; the "restarted" server
  // load_caches the same path and recovers the prior snapshot intact.
  const std::string cache_path = "serve_test_killsave.bin";
  std::remove(cache_path.c_str());
  PipelineOptions options;
  options.emit_timing = false;

  {
    RequestPipeline pipeline(options);
    auto handle = [&](const std::string& line) {
      return pipeline.HandleSync(ParseJson(line).value);
    };
    handle(R"({"op":"load","name":"a","rows":)" + RowsJson(20, 3, 2, 84) +
           R"(,"target":"label"})");
    handle(R"({"op":"value","train":"a","queries":)" + RowsJson(2, 3, 2, 85) +
           R"(,"method":"exact","k":3})");
    JsonValue saved =
        handle(R"({"op":"save_cache","path":")" + cache_path + R"("})");
    ASSERT_TRUE(saved.Get("ok").AsBool()) << saved.Dump();

    // Second save dies mid-write: the response is a structured data_loss
    // error and the on-disk snapshot is untouched.
    handle(R"({"op":"value","train":"a","queries":)" + RowsJson(2, 3, 2, 86) +
           R"(,"method":"exact","k":4})");
    ASSERT_TRUE(FaultRegistry::Global().Configure("cache_write:after=1"));
    JsonValue crashed =
        handle(R"({"op":"save_cache","path":")" + cache_path + R"("})");
    FaultRegistry::Global().Reset();
    EXPECT_FALSE(crashed.Get("ok").AsBool());
    EXPECT_EQ(crashed.Get("code").AsString(), "data_loss");
  }

  RequestPipeline restarted(options);
  JsonValue recovered = restarted.HandleSync(
      ParseJson(R"({"op":"load_cache","path":")" + cache_path + R"("})").value);
  ASSERT_TRUE(recovered.Get("ok").AsBool()) << recovered.Dump();
  EXPECT_EQ(recovered.Get("entries").AsNumber(), 1.0);
  EXPECT_FALSE(recovered.Has("salvaged"));
  std::remove(cache_path.c_str());
  std::remove((cache_path + ".tmp").c_str());
}

TEST(ServeTest, GracefulShutdownFlagStopsTheLoopAndFlushes) {
  const std::string snap_path = "serve_test_shutdown.bin";
  std::remove(snap_path.c_str());
  std::atomic<bool> shutdown{false};
  PipelineOptions options;
  options.emit_timing = false;
  options.snapshot_path = snap_path;
  options.shutdown = &shutdown;
  RequestPipeline pipeline(options);

  // The flag is already up: the loop must not read a single request, but
  // still runs its exit path (drain + snapshot flush).
  shutdown.store(true);
  std::istringstream in(R"({"op":"ping"})" "\n");
  std::ostringstream out;
  const size_t served = pipeline.Run(in, out);
  EXPECT_EQ(served, 0u);
  EXPECT_TRUE(out.str().empty());
  std::ifstream snap(snap_path, std::ios::binary);
  EXPECT_TRUE(snap.good());  // exit flush wrote (an empty) snapshot
  std::remove(snap_path.c_str());
}

TEST(ServeTest, StatsServerSectionReportsRobustnessCounters) {
  PipelineOptions options;
  RequestPipeline pipeline(options);  // timing ON: uptime present
  JsonValue stats = pipeline.HandleSync(ParseJson(R"({"op":"stats"})").value);
  ASSERT_TRUE(stats.Get("ok").AsBool());
  const JsonValue& server = stats.Get("server");
  ASSERT_TRUE(server.IsObject()) << stats.Dump();
  EXPECT_GE(server.Get("uptime_seconds").AsNumber(), 0.0);
  EXPECT_EQ(server.Get("queue_depth").AsNumber(), 0.0);
  EXPECT_EQ(server.Get("shed_total").AsNumber(), 0.0);
  EXPECT_EQ(server.Get("deadline_exceeded_total").AsNumber(), 0.0);
  EXPECT_EQ(server.Get("snapshots_taken").AsNumber(), 0.0);
  EXPECT_EQ(server.Get("snapshot_failures").AsNumber(), 0.0);

  PipelineOptions untimed;
  untimed.emit_timing = false;
  RequestPipeline masked(untimed);
  JsonValue masked_stats =
      masked.HandleSync(ParseJson(R"({"op":"stats"})").value);
  // Byte-determinism: no wall-clock value under --no-timing.
  EXPECT_FALSE(masked_stats.Get("server").Has("uptime_seconds"));
}

TEST(ServeTest, GoldenTranscriptReproduces) {
  // The same session/golden pair CI pipes through the knnshap_serve
  // binary. Reference kernel pinned: value bytes must not depend on the
  // CI job's KNNSHAP_KERNEL forcing.
  const std::string dir = KNNSHAP_TEST_DATA_DIR;
  std::ifstream session_file(dir + "/serve_session.jsonl");
  std::ifstream golden_file(dir + "/serve_golden.jsonl");
  ASSERT_TRUE(session_file.good() && golden_file.good());
  std::stringstream session, golden;
  session << session_file.rdbuf();
  golden << golden_file.rdbuf();

  SetKernelOverride(KernelKind::kReference);
  ThreadPool pool(4);
  PipelineOptions options;
  options.pool = &pool;
  options.emit_timing = false;
  const std::string output = RunSession(session.str(), options);
  SetKernelOverride(KernelKind::kAuto);
  EXPECT_EQ(output, golden.str());
}

}  // namespace
}  // namespace knnshap
