// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Pins the corrected KNN-Shapley recursion (Wang & Jia, arXiv:2304.04258)
// against brute-force subset enumeration of the corrected utility
//   nu(S) = (1/min(K,|S|)) sum_{j<=min(K,|S|)} 1[y_{alpha_j(S)} = y],
//   nu(emptyset) = 0,
// on oracle-sized fixtures, and checks the engine-registered
// "exact-corrected" method routes to the same values.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <vector>

#include "core/corrected_knn_shapley.h"
#include "core/exact_enumeration.h"
#include "core/exact_knn_shapley.h"
#include "core/utility.h"
#include "engine/engine.h"
#include "knn/neighbors.h"
#include "test_util.h"
#include "util/random.h"

namespace knnshap {
namespace {

using testing_util::ExpectVectorNear;
using testing_util::RandomClassDataset;

// Brute-force oracle over the corrected utility for one query, players
// identified by their distance rank (0 = nearest). `matches[r]` is the
// 0/1 match indicator of the rank-r point.
std::vector<double> OracleByRank(const std::vector<int>& sorted_labels,
                                 int test_label, int k) {
  const int n = static_cast<int>(sorted_labels.size());
  CallableUtility utility(n, [&](std::span<const int> subset) {
    if (subset.empty()) return 0.0;
    std::vector<int> ranks(subset.begin(), subset.end());
    std::sort(ranks.begin(), ranks.end());  // rank order == distance order
    const size_t voters = std::min<size_t>(static_cast<size_t>(k), ranks.size());
    double matched = 0.0;
    for (size_t j = 0; j < voters; ++j) {
      if (sorted_labels[static_cast<size_t>(ranks[j])] == test_label) matched += 1.0;
    }
    return matched / static_cast<double>(voters);
  });
  return ShapleyByEnumeration(utility);
}

TEST(CorrectedShapleyTest, MatchesEnumerationAcrossSizesAndK) {
  Rng rng(20260731);
  for (int n : {1, 2, 3, 5, 8, 11}) {
    for (int k : {1, 2, 3, 5, 7, 16}) {
      for (int trial = 0; trial < 4; ++trial) {
        std::vector<int> sorted_labels(static_cast<size_t>(n));
        for (auto& y : sorted_labels) y = static_cast<int>(rng.NextIndex(3));
        const int test_label = static_cast<int>(rng.NextIndex(3));
        auto oracle = OracleByRank(sorted_labels, test_label, k);
        auto fast = CorrectedKnnShapleyRecursion(sorted_labels, test_label, k);
        ExpectVectorNear(oracle, fast, 1e-10);
      }
    }
  }
}

TEST(CorrectedShapleyTest, EfficiencySumsToGrandUtility) {
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 40, k = 5;
    std::vector<int> sorted_labels(static_cast<size_t>(n));
    for (auto& y : sorted_labels) y = static_cast<int>(rng.NextIndex(2));
    auto sv = CorrectedKnnShapleyRecursion(sorted_labels, /*test_label=*/1, k);
    double grand = 0.0;
    for (int j = 0; j < k; ++j) grand += sorted_labels[static_cast<size_t>(j)] == 1;
    grand /= static_cast<double>(k);
    EXPECT_NEAR(std::accumulate(sv.begin(), sv.end(), 0.0), grand, 1e-10);
  }
}

TEST(CorrectedShapleyTest, AgreesWithOriginalWhenCoalitionsSaturate) {
  // For K = 1 the two utilities coincide on non-empty coalitions, and
  // nu(emptyset) = 0 in both conventions, so the values must match.
  Rng rng(13);
  std::vector<int> sorted_labels(25);
  for (auto& y : sorted_labels) y = static_cast<int>(rng.NextIndex(2));
  auto corrected = CorrectedKnnShapleyRecursion(sorted_labels, 1, /*k=*/1);
  auto original = KnnShapleyRecursion(sorted_labels, 1, /*k=*/1);
  ExpectVectorNear(corrected, original, 1e-12);
}

TEST(CorrectedShapleyTest, SingleQueryScattersByTrainingRow) {
  Dataset train = RandomClassDataset(12, 2, 3, 99);
  Dataset query = testing_util::SingleQuery(3, 100, /*label=*/1);
  auto by_row = CorrectedKnnShapleySingle(train, query.features.Row(0), 1, 3);

  std::vector<int> order = ArgsortByDistance(train.features, query.features.Row(0),
                                             Metric::kL2, nullptr);
  std::vector<int> sorted_labels(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_labels[i] = train.labels[static_cast<size_t>(order[i])];
  }
  auto oracle = OracleByRank(sorted_labels, 1, 3);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_NEAR(by_row[static_cast<size_t>(order[i])], oracle[i], 1e-10);
  }
}

TEST(CorrectedShapleyTest, EngineMethodMatchesDirectAverage) {
  Dataset train = RandomClassDataset(30, 3, 4, 1);
  Dataset test = RandomClassDataset(6, 3, 4, 2);

  ValuationEngine engine;
  ValuationRequest request;
  request.method = "exact-corrected";
  request.params.k = 4;
  request.train = std::make_shared<const Dataset>(train);
  request.test = std::make_shared<const Dataset>(test);
  ValuationReport report = engine.Value(request);
  ASSERT_TRUE(report.ok()) << report.status.ToString();

  std::vector<double> expected(train.Size(), 0.0);
  for (size_t q = 0; q < test.Size(); ++q) {
    auto one = CorrectedKnnShapleySingle(train, test.features.Row(q), test.labels[q], 4);
    for (size_t i = 0; i < expected.size(); ++i) expected[i] += one[i];
  }
  for (auto& v : expected) v /= static_cast<double>(test.Size());
  ExpectVectorNear(report.values, expected, 1e-12);
}

}  // namespace
}  // namespace knnshap
