// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Validation of Theorem 8 (multi-data-per-seller Shapley in O(M^K)) and
// Theorem 12 (its composite-game analog) against the enumeration oracle
// over seller-level games.

#include <gtest/gtest.h>

#include <numeric>

#include "core/exact_enumeration.h"
#include "core/exact_knn_shapley.h"
#include "core/multi_seller_shapley.h"
#include "core/utility.h"
#include "test_util.h"

namespace knnshap {
namespace {

using testing_util::ExpectVectorNear;
using testing_util::RandomClassDataset;
using testing_util::RandomRegDataset;
using testing_util::SingleQuery;

struct SellerCase {
  int rows;
  int sellers;
  int k;
  uint64_t seed;
};

class MultiSellerVsOracleTest : public ::testing::TestWithParam<SellerCase> {};

TEST_P(MultiSellerVsOracleTest, ClassificationMatchesSellerOracle) {
  auto [rows, sellers, k, seed] = GetParam();
  Dataset train = RandomClassDataset(static_cast<size_t>(rows), 2, 3, seed);
  Dataset test = SingleQuery(3, seed + 11, 1);
  Rng rng(seed + 22);
  auto owners = OwnerAssignment::Random(static_cast<size_t>(rows), sellers, &rng);
  KnnSubsetUtility row_utility(&train, &test, k, KnnTask::kClassification);
  SellerSubsetUtility seller_utility(&row_utility, &owners);
  auto oracle = ShapleyByEnumeration(seller_utility);
  MultiSellerShapleyOptions options;
  options.k = k;
  options.task = KnnTask::kClassification;
  auto fast = MultiSellerShapley(train, owners, test, options, /*parallel=*/false);
  ExpectVectorNear(fast, oracle, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiSellerVsOracleTest,
    ::testing::Values(SellerCase{6, 3, 1, 1}, SellerCase{10, 4, 1, 2},
                      SellerCase{12, 4, 2, 3}, SellerCase{14, 5, 2, 4},
                      SellerCase{12, 6, 3, 5}, SellerCase{16, 4, 3, 6},
                      SellerCase{9, 9, 2, 7},    // one row per seller
                      SellerCase{18, 3, 2, 8},   // many rows per seller
                      SellerCase{10, 5, 5, 9},   // K = M
                      SellerCase{8, 4, 6, 10})); // K > M

TEST(MultiSellerTest, WeightedTaskMatchesOracle) {
  Dataset train = RandomClassDataset(12, 2, 3, 20);
  Dataset test = SingleQuery(3, 21, 0);
  Rng rng(22);
  auto owners = OwnerAssignment::Random(12, 4, &rng);
  WeightConfig weights;
  weights.kernel = WeightKernel::kInverseDistance;
  KnnSubsetUtility row_utility(&train, &test, 2, KnnTask::kWeightedClassification,
                               weights);
  SellerSubsetUtility seller_utility(&row_utility, &owners);
  auto oracle = ShapleyByEnumeration(seller_utility);
  MultiSellerShapleyOptions options;
  options.k = 2;
  options.task = KnnTask::kWeightedClassification;
  options.weights = weights;
  auto fast = MultiSellerShapley(train, owners, test, options, false);
  ExpectVectorNear(fast, oracle, 1e-9);
}

TEST(MultiSellerTest, RegressionTaskMatchesOracle) {
  Dataset train = RandomRegDataset(12, 3, 23);
  Dataset test = SingleQuery(3, 24, 0, 0.6);
  Rng rng(25);
  auto owners = OwnerAssignment::Random(12, 4, &rng);
  KnnSubsetUtility row_utility(&train, &test, 2, KnnTask::kRegression);
  SellerSubsetUtility seller_utility(&row_utility, &owners);
  auto oracle = ShapleyByEnumeration(seller_utility);
  MultiSellerShapleyOptions options;
  options.k = 2;
  options.task = KnnTask::kRegression;
  auto fast = MultiSellerShapley(train, owners, test, options, false);
  ExpectVectorNear(fast, oracle, 1e-9);
}

TEST(MultiSellerTest, SingleRowPerSellerReducesToPointShapley) {
  // With one row per seller the seller game *is* the point game, so
  // Theorem 8 must reproduce Theorem 1 exactly.
  Dataset train = RandomClassDataset(15, 3, 4, 30);
  Dataset test = RandomClassDataset(3, 3, 4, 31);
  std::vector<int> owner_of(15);
  std::iota(owner_of.begin(), owner_of.end(), 0);
  OwnerAssignment owners(owner_of);
  MultiSellerShapleyOptions options;
  options.k = 2;
  options.task = KnnTask::kClassification;
  auto seller_sv = MultiSellerShapley(train, owners, test, options, false);
  auto point_sv = ExactKnnShapley(train, test, 2, false);
  ExpectVectorNear(seller_sv, point_sv, 1e-9);
}

TEST(MultiSellerTest, GroupRationality) {
  Dataset train = RandomClassDataset(20, 2, 4, 32);
  Dataset test = RandomClassDataset(4, 2, 4, 33);
  Rng rng(34);
  auto owners = OwnerAssignment::Random(20, 6, &rng);
  MultiSellerShapleyOptions options;
  options.k = 3;
  options.task = KnnTask::kClassification;
  auto sv = MultiSellerShapley(train, owners, test, options, false);
  KnnSubsetUtility utility(&train, &test, 3, KnnTask::kClassification);
  EXPECT_NEAR(std::accumulate(sv.begin(), sv.end(), 0.0), utility.GrandValue(), 1e-9);
}

TEST(MultiSellerTest, SellerWithAllWrongLabelsGetsNonPositiveTotal) {
  // A seller whose rows all carry the wrong label can only hurt accuracy.
  Dataset train;
  train.features = Matrix(8, 1);
  for (size_t i = 0; i < 8; ++i) train.features.At(i, 0) = 1.0f + 0.1f * i;
  train.labels = {1, 1, 0, 0, 1, 1, 1, 1};
  Dataset test;
  test.features = Matrix(1, 1);
  test.features.At(0, 0) = 0.0f;
  test.labels = {1};
  // Seller 1 owns the two wrong-label rows (2, 3).
  OwnerAssignment owners({0, 0, 1, 1, 2, 2, 3, 3});
  MultiSellerShapleyOptions options;
  options.k = 2;
  options.task = KnnTask::kClassification;
  auto sv = MultiSellerShapley(train, owners, test, options, false);
  EXPECT_LT(sv[1], 1e-12);
  for (int s : {0, 2, 3}) EXPECT_GE(sv[static_cast<size_t>(s)], -1e-12);
}

// ---------------------- composite game (Theorem 12) -----------------------

class CompositeMultiSellerVsOracleTest
    : public ::testing::TestWithParam<SellerCase> {};

TEST_P(CompositeMultiSellerVsOracleTest, MatchesCompositeSellerOracle) {
  auto [rows, sellers, k, seed] = GetParam();
  Dataset train = RandomClassDataset(static_cast<size_t>(rows), 2, 3, seed);
  Dataset test = SingleQuery(3, seed + 44, 1);
  Rng rng(seed + 55);
  auto owners = OwnerAssignment::Random(static_cast<size_t>(rows), sellers, &rng);
  KnnSubsetUtility row_utility(&train, &test, k, KnnTask::kClassification);
  SellerSubsetUtility seller_utility(&row_utility, &owners);
  CompositeSubsetUtility composite(&seller_utility);
  auto oracle = ShapleyByEnumeration(composite);
  MultiSellerShapleyOptions options;
  options.k = k;
  options.task = KnnTask::kClassification;
  options.composite_game = true;
  auto fast = MultiSellerShapley(train, owners, test, options, false);
  for (int s = 0; s < sellers; ++s) {
    EXPECT_NEAR(fast[static_cast<size_t>(s)], oracle[static_cast<size_t>(s)], 1e-9);
  }
  double seller_total = std::accumulate(fast.begin(), fast.end(), 0.0);
  EXPECT_NEAR(row_utility.GrandValue() - seller_total,
              oracle[static_cast<size_t>(sellers)], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompositeMultiSellerVsOracleTest,
                         ::testing::Values(SellerCase{8, 3, 1, 60},
                                           SellerCase{10, 4, 2, 61},
                                           SellerCase{12, 5, 2, 62},
                                           SellerCase{12, 4, 3, 63}));

}  // namespace
}  // namespace knnshap
