// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Pins the incremental block-fingerprint path against the from-scratch
// full hash: a CorpusStore that appends and removes rows must always hold
// digests bit-identical to ComputeCorpusDigests of the final contents,
// and its fingerprint must equal DatasetFingerprint.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "dataset/dataset.h"
#include "serve/corpus_store.h"
#include "test_util.h"
#include "util/fingerprint.h"
#include "util/random.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;

Dataset RandomRows(size_t n, size_t dim, bool labels, bool targets, Rng* rng) {
  Dataset rows;
  rows.features = Matrix(n, dim);
  for (size_t r = 0; r < n; ++r) {
    auto row = rows.features.MutableRow(r);
    for (size_t d = 0; d < dim; ++d) row[d] = static_cast<float>(rng->NextGaussian());
    if (labels) rows.labels.push_back(static_cast<int>(rng->NextIndex(3)));
    if (targets) rows.targets.push_back(rng->NextGaussian());
  }
  return rows;
}

TEST(FingerprintTest, CombinedEqualsDatasetFingerprint) {
  for (size_t n : {1u, 7u, 255u, 256u, 257u, 513u}) {
    Dataset data = RandomClassDataset(n, 3, 5, 1000 + n);
    EXPECT_EQ(ComputeCorpusDigests(data).Combined(), DatasetFingerprint(data));
  }
}

TEST(FingerprintTest, NameIsExcludedContentIsNot) {
  Dataset a = RandomClassDataset(20, 2, 4, 1);
  Dataset b = a;
  b.name = "other";
  EXPECT_EQ(DatasetFingerprint(a), DatasetFingerprint(b));
  b.labels[3] ^= 1;
  EXPECT_NE(DatasetFingerprint(a), DatasetFingerprint(b));
  Dataset c = a;
  c.features.At(7, 2) += 1e-3f;
  EXPECT_NE(DatasetFingerprint(a), DatasetFingerprint(c));
}

TEST(FingerprintTest, RehashBlocksFromMatchesFullRecompute) {
  // Small block size so append/remove cross many block boundaries.
  const size_t kBlock = 4;
  Rng rng(42);
  Dataset data = RandomClassDataset(10, 3, 3, 7);
  CorpusDigests digests = ComputeCorpusDigests(data, kBlock);
  for (int step = 0; step < 200; ++step) {
    if (rng.NextDouble() < 0.6 || data.Size() <= 1) {
      const size_t old_rows = data.Size();
      const size_t extra = 1 + rng.NextIndex(6);
      Dataset rows = RandomRows(extra, data.Dim(), true, false, &rng);
      for (size_t r = 0; r < extra; ++r) {
        data.features.AppendRow(rows.features.Row(r));
        data.labels.push_back(rows.labels[r]);
      }
      RehashBlocksFrom(data, old_rows, &digests);
    } else {
      const size_t victim = rng.NextIndex(data.Size());
      std::vector<int> keep;
      for (size_t r = 0; r < data.Size(); ++r) {
        if (r != victim) keep.push_back(static_cast<int>(r));
      }
      data = data.Subset(keep);
      RehashBlocksFrom(data, victim, &digests);
    }
    CorpusDigests full = ComputeCorpusDigests(data, kBlock);
    ASSERT_EQ(digests.feature_blocks, full.feature_blocks) << "step " << step;
    ASSERT_EQ(digests.label_blocks, full.label_blocks) << "step " << step;
    ASSERT_EQ(digests.target_blocks, full.target_blocks) << "step " << step;
    ASSERT_EQ(digests.Combined(), full.Combined()) << "step " << step;
  }
}

TEST(CorpusStoreTest, RandomizedMutationsKeepFingerprintExact) {
  Rng rng(7);
  CorpusStore store;
  Dataset seed_data = RandomClassDataset(300, 3, 6, 11);
  store.Put("corpus", seed_data);
  for (int step = 0; step < 60; ++step) {
    if (rng.NextDouble() < 0.5) {
      Dataset rows = RandomRows(1 + rng.NextIndex(4), 6, true, false, &rng);
      CorpusMutation mutation;
      std::string error;
      ASSERT_TRUE(store.Append("corpus", rows, &mutation, &error)) << error;
    } else {
      auto snapshot = store.Get("corpus");
      ASSERT_TRUE(snapshot.has_value());
      if (snapshot->data->Size() <= 1) continue;
      CorpusMutation mutation;
      std::string error;
      ASSERT_TRUE(store.RemoveRow("corpus", rng.NextIndex(snapshot->data->Size()),
                                  &mutation, &error))
          << error;
    }
    auto snapshot = store.Get("corpus");
    ASSERT_TRUE(snapshot.has_value());
    // The store's incrementally maintained fingerprint must equal the
    // full-matrix hash of the current contents, bit for bit.
    ASSERT_EQ(snapshot->fingerprint, DatasetFingerprint(*snapshot->data))
        << "step " << step;
    ASSERT_EQ(snapshot->version, static_cast<uint64_t>(step + 2));
  }
}

TEST(CorpusStoreTest, MutationsAreCopyOnWrite) {
  CorpusStore store;
  store.Put("c", RandomClassDataset(10, 2, 3, 5));
  auto before = store.Get("c");
  ASSERT_TRUE(before.has_value());
  Rng rng(9);
  Dataset rows = RandomRows(2, 3, true, false, &rng);
  CorpusMutation mutation;
  std::string error;
  ASSERT_TRUE(store.Append("c", rows, &mutation, &error)) << error;
  // The old snapshot is untouched: same object, same contents.
  EXPECT_EQ(before->data->Size(), 10u);
  EXPECT_EQ(DatasetFingerprint(*before->data), before->fingerprint);
  EXPECT_NE(mutation.snapshot.fingerprint, before->fingerprint);
  EXPECT_EQ(mutation.old_fingerprint, before->fingerprint);
  EXPECT_EQ(mutation.snapshot.data->Size(), 12u);
}

TEST(CorpusStoreTest, AppendValidatesSchema) {
  CorpusStore store;
  store.Put("c", RandomClassDataset(4, 2, 3, 5));
  CorpusMutation mutation;
  std::string error;
  Rng rng(1);
  EXPECT_FALSE(store.Append("c", RandomRows(1, 5, true, false, &rng), &mutation, &error));
  EXPECT_FALSE(store.Append("c", RandomRows(1, 3, false, true, &rng), &mutation, &error));
  EXPECT_FALSE(store.Append("missing", RandomRows(1, 3, true, false, &rng), &mutation,
                            &error));
  EXPECT_FALSE(store.RemoveRow("c", 99, &mutation, &error));
}

}  // namespace
}  // namespace knnshap
