// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Cross-module integration tests: the end-to-end behaviors the paper's
// qualitative claims rest on (noisy data gets low value, the dog-fish
// asymmetry, the full LSH valuation pipeline, market payouts).

#include <gtest/gtest.h>

#include <numeric>

#include "core/composite_game.h"
#include "core/exact_knn_shapley.h"
#include "core/lsh_knn_shapley.h"
#include "core/weighted_knn_shapley.h"
#include "dataset/contrast.h"
#include "dataset/synthetic.h"
#include "lsh/tuning.h"
#include "market/payment.h"
#include "market/valuation_report.h"
#include "test_util.h"
#include "util/stats.h"

namespace knnshap {
namespace {

TEST(IntegrationTest, MislabeledPointsGetLowerValues) {
  // Sec 2.1 / 7: noisy (label-flipped) points should receive lower SVs —
  // the data-poisoning defense claim. Train and test must come from the
  // same mixture, so draw once and split.
  Rng rng(1);
  SyntheticSpec spec;
  spec.num_classes = 2;
  spec.dim = 8;
  spec.size = 350;
  spec.cluster_stddev = 0.15;
  Dataset data = MakeGaussianMixture(spec, &rng);
  Rng srng(2);
  auto split = SplitTrainTest(data, 50.0 / 350.0, &srng);
  // Flip the labels of the first 45 training points (15%).
  for (size_t i = 0; i < 45; ++i) split.train.labels[i] = 1 - split.train.labels[i];
  auto sv = ExactKnnShapley(split.train, split.test, 5, false);
  double flipped_mean = 0.0, clean_mean = 0.0;
  for (size_t i = 0; i < 45; ++i) flipped_mean += sv[i] / 45.0;
  for (size_t i = 45; i < split.train.Size(); ++i) {
    clean_mean += sv[i] / static_cast<double>(split.train.Size() - 45);
  }
  EXPECT_LT(flipped_mean, clean_mean);
  EXPECT_LT(flipped_mean, 0.0);  // wrong labels actively hurt
}

TEST(IntegrationTest, MislabeledPointsDominateBottomRanking) {
  Rng rng(3);
  SyntheticSpec spec;
  spec.num_classes = 2;
  spec.dim = 8;
  spec.size = 240;
  spec.cluster_stddev = 0.1;
  Dataset data = MakeGaussianMixture(spec, &rng);
  Rng srng(4);
  auto split = SplitTrainTest(data, 40.0 / 240.0, &srng);
  for (size_t i = 0; i < 20; ++i) split.train.labels[i] = 1 - split.train.labels[i];
  auto sv = ExactKnnShapley(split.train, split.test, 3, false);
  auto bottom = BottomValued(sv, 20);
  size_t flipped_in_bottom = 0;
  for (const auto& rv : bottom) {
    flipped_in_bottom += rv.index < 20;
  }
  EXPECT_GE(flipped_in_bottom, 14u);  // at least 70% precision at the bottom
}

TEST(IntegrationTest, DogFishAsymmetry) {
  // Fig 14(b)(c): with the fish class more diffuse, most label-inconsistent
  // neighbors are fish, and dog training points earn more total value.
  Rng rng(5);
  Dataset train = MakeDogFishLike(600, &rng);
  SyntheticSpec probe_spec;  // test set from the same generator
  Rng qrng(6);
  Dataset test = MakeDogFishLike(150, &qrng);
  const int k = 3;
  auto sv = ExactKnnShapley(train, test, k, false);
  auto class_totals = GroupTotals(sv, train.labels, 2);
  EXPECT_GT(class_totals[0], class_totals[1]);  // dogs (class 0) worth more

  // Count label-inconsistent top-K neighbors per class (Fig 14c).
  size_t inconsistent_fish = 0, inconsistent_dog = 0;
  for (size_t j = 0; j < test.Size(); ++j) {
    auto nns = TopKNeighbors(train.features, test.features.Row(j), k);
    for (const auto& nn : nns) {
      int label = train.labels[static_cast<size_t>(nn.index)];
      if (label != test.labels[j]) {
        (label == 1 ? inconsistent_fish : inconsistent_dog) += 1;
      }
    }
  }
  EXPECT_GT(inconsistent_fish, inconsistent_dog);
}

TEST(IntegrationTest, UnweightedAndWeightedSvCorrelate) {
  // Fig 14(b): unweighted vs inverse-distance-weighted SVs are close in
  // high-dimensional feature space.
  Rng rng(7);
  Dataset train = MakeDogFishLike(60, &rng);
  Rng qrng(8);
  Dataset test = MakeDogFishLike(10, &qrng);
  auto unweighted = ExactKnnShapley(train, test, 3, false);
  WeightedShapleyOptions options;
  options.k = 3;
  options.weights.kernel = WeightKernel::kInverseDistance;
  options.task = KnnTask::kWeightedClassification;
  auto weighted = ExactWeightedKnnShapley(train, test, options, true);
  EXPECT_GT(PearsonCorrelation(unweighted, weighted), 0.9);
}

TEST(IntegrationTest, FullLshValuationPipeline) {
  // contrast estimation -> normalization -> tuning -> index -> valuation,
  // checked against the exact values.
  Rng rng(9);
  Dataset train = MakeYahoo10mLike(3000, &rng);
  std::vector<int> rows;
  for (int i = 0; i < 10; ++i) rows.push_back(2 + 13 * i);
  Dataset test = train.Subset(rows);
  const int k = 1;
  const double eps = 0.1;
  Rng crng(10);
  auto contrast =
      EstimateRelativeContrast(train, test, KStar(k, eps), 10, 3000, &crng);
  train.features.Scale(1.0 / contrast.d_mean);
  test.features.Scale(1.0 / contrast.d_mean);
  LshConfig config = TuneForContrast(train.Size(), contrast.c_k, KStar(k, eps), 0.1);
  LshIndex index(&train.features, config);
  auto exact = ExactKnnShapley(train, test, k, false);
  auto approx = LshKnnShapley(train, test, k, eps, index);
  EXPECT_LE(MaxAbsDifference(exact, approx), eps + 0.05);
}

TEST(IntegrationTest, MarketPayoutEndToEnd) {
  // Sellers -> composite game -> affine revenue -> payments that cover the
  // full revenue, with the analyst's share largest.
  Rng rng(11);
  Dataset train = MakeDogFishLike(120, &rng);
  Rng qrng(12);
  Dataset test = MakeDogFishLike(30, &qrng);
  auto result = CompositeKnnShapley(train, test, 5, false);
  AffineRevenueModel model;
  model.slope = 1000.0;
  std::vector<double> all_values = result.seller_values;
  all_values.push_back(result.analyst_value);
  auto allocation = AllocateRevenue(all_values, model);
  EXPECT_NEAR(allocation.total, model.slope * result.total_utility, 1e-6);
  // The analyst's payment dominates any single seller's.
  double max_seller = *std::max_element(result.seller_values.begin(),
                                        result.seller_values.end());
  EXPECT_GT(result.analyst_value, max_seller);
}

TEST(IntegrationTest, ValuesAreStableAcrossTestSubsampling) {
  // Additivity consequence: valuations over two halves of the test set
  // average to the full-set valuation.
  Rng rng(13);
  Dataset train = MakeMnistLike(200, &rng);
  Rng qrng(14);
  Dataset test = MakeMnistLike(40, &qrng);
  std::vector<int> first_half, second_half;
  for (int i = 0; i < 20; ++i) first_half.push_back(i);
  for (int i = 20; i < 40; ++i) second_half.push_back(i);
  Dataset test_a = test.Subset(first_half);
  Dataset test_b = test.Subset(second_half);
  auto sv_full = ExactKnnShapley(train, test, 3, false);
  auto sv_a = ExactKnnShapley(train, test_a, 3, false);
  auto sv_b = ExactKnnShapley(train, test_b, 3, false);
  for (size_t i = 0; i < train.Size(); ++i) {
    EXPECT_NEAR(sv_full[i], 0.5 * (sv_a[i] + sv_b[i]), 1e-10);
  }
}

}  // namespace
}  // namespace knnshap
