// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Declarative-schema coverage: the Status primitives, vocabulary sanity,
// the randomized JSON round-trip property (parse -> validate ->
// re-serialize -> re-parse is the identity), the method-scoped
// fingerprint property (the fingerprint changes iff a *declared* param
// changes), and CLI/serve validation parity (the same bad value answers
// the byte-identical structured error through flags and through JSON).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "engine/registry.h"
#include "engine/schema.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/random.h"
#include "util/status.h"

namespace knnshap {
namespace {

// --- Status primitives ------------------------------------------------------

TEST(StatusTest, CarriesCodeMessageAndField) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.ToString(), "ok");

  Status bad = Status::InvalidArgument("'k' must be >= 1 (got 0)", "k");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.field(), "k");
  EXPECT_EQ(bad.ToString(),
            "invalid_argument: 'k' must be >= 1 (got 0) (field 'k')");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "not_found");
}

TEST(StatusTest, StatusOrHoldsValueOrStatus) {
  StatusOr<size_t> value(size_t{7});
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 7u);
  StatusOr<size_t> error(Status::NotFound("missing"));
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}

// --- Vocabulary sanity ------------------------------------------------------

TEST(SchemaVocabularyTest, SpecsAreWellFormed) {
  const auto& vocabulary = ParamVocabulary();
  ASSERT_GE(vocabulary.size(), 11u);
  for (const auto& spec : vocabulary) {
    SCOPED_TRACE(spec.name);
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.doc.empty());
    ASSERT_TRUE(spec.get && spec.set && spec.add_to_hash);
    // Defaults must satisfy their own spec (describe shows them as valid).
    EXPECT_TRUE(spec.ValidateNumber(spec.DefaultValue()).ok())
        << spec.ValidateNumber(spec.DefaultValue()).ToString();
    // The accessors must actually round-trip through ValuatorParams.
    if (spec.type != ParamType::kEnum) {
      ValuatorParams params;
      double probe = spec.min_value + (spec.min_exclusive ? 1.0 : 0.0);
      if (!spec.ValidateNumber(probe).ok()) probe = spec.DefaultValue();
      spec.set(&params, probe);
      EXPECT_EQ(spec.get(params), probe);
    }
    EXPECT_EQ(FindParamSpec(spec.name), &spec);
  }
  EXPECT_EQ(FindParamSpec("no-such-param"), nullptr);
}

TEST(SchemaVocabularyTest, EveryMethodDeclaresVocabularyParams) {
  for (const auto& schema : ValuatorRegistry::Global().Schemas()) {
    SCOPED_TRACE(schema->name);
    EXPECT_FALSE(schema->tasks.empty());
    EXPECT_TRUE(schema->Declares("k"));  // every method is a KNN method
    for (const ParamSpec* spec : schema->params) {
      EXPECT_EQ(FindParamSpec(spec->name), spec);
    }
  }
}

// --- Randomized round-trip property ----------------------------------------

/// A random *valid* value for one spec.
double RandomValidValue(const ParamSpec& spec, Rng* rng) {
  switch (spec.type) {
    case ParamType::kEnum:
      return static_cast<double>(
          rng->NextIndex(static_cast<uint64_t>(spec.enum_values.size())));
    case ParamType::kInt:
    case ParamType::kUint: {
      // Stay inside [min, max] — narrow-range params like weight_bits
      // (1..8) bound the draw, wide ones keep the legacy 100-value span.
      double lo = spec.min_value;
      double span = std::min(100.0, spec.max_value - lo + 1.0);
      return lo + static_cast<double>(rng->NextIndex(
                      static_cast<uint64_t>(span)));
    }
    case ParamType::kDouble: {
      double lo = spec.min_exclusive ? spec.min_value + 1e-3 : spec.min_value;
      double hi = std::min(spec.max_value, lo + 10.0);
      return rng->NextUniform(lo, hi);
    }
  }
  return spec.DefaultValue();
}

TEST(SchemaRoundTripTest, RandomizedJsonRoundTripIsIdentity) {
  Rng rng(20260731);
  for (const auto& schema : ValuatorRegistry::Global().Schemas()) {
    SCOPED_TRACE(schema->name);
    for (int round = 0; round < 50; ++round) {
      // Random request over a random subset of declared params + task.
      JsonValue request = JsonValue::MakeObject();
      if (schema->tasks.size() > 1) {
        KnnTask task =
            schema->tasks[rng.NextIndex(schema->tasks.size())];
        request.Set("task", JsonValue(TaskName(task)));
      }
      for (const ParamSpec* spec : schema->params) {
        if (rng.NextIndex(2) == 0) continue;
        double value = RandomValidValue(*spec, &rng);
        if (spec->type == ParamType::kEnum) {
          request.Set(spec->name,
                      JsonValue(spec->enum_values[static_cast<size_t>(value)]));
        } else {
          request.Set(spec->name, JsonValue(value));
        }
      }

      ValuatorParams params;
      Status status = ApplyJsonParams(*schema, request, &params);
      ASSERT_TRUE(status.ok()) << status.ToString() << "  " << request.Dump();

      // validate -> re-serialize -> re-parse: identical params (by the
      // method-scoped fingerprint) and identical serialization.
      JsonValue echoed = ParamsToJson(*schema, params);
      JsonParseResult reparsed = ParseJson(echoed.Dump());
      ASSERT_TRUE(reparsed.ok()) << reparsed.error;
      ValuatorParams params2;
      Status status2 = ApplyJsonParams(*schema, reparsed.value, &params2);
      ASSERT_TRUE(status2.ok()) << status2.ToString();
      EXPECT_EQ(schema->ParamsFingerprint(params),
                schema->ParamsFingerprint(params2));
      EXPECT_EQ(echoed.Dump(), ParamsToJson(*schema, params2).Dump());
    }
  }
}

// --- Fingerprint iff-declared property --------------------------------------

TEST(SchemaFingerprintTest, ChangesIffADeclaredParamChanges) {
  for (const auto& schema : ValuatorRegistry::Global().Schemas()) {
    SCOPED_TRACE(schema->name);
    ValuatorParams base;
    base.task = schema->DefaultTask();
    ASSERT_TRUE(schema->Canonicalize(&base).ok())
        << schema->Canonicalize(&base).ToString();
    const uint64_t base_fp = schema->ParamsFingerprint(base);
    EXPECT_EQ(schema->ParamsFingerprint(base), base_fp);  // deterministic

    for (const auto& spec : ParamVocabulary()) {
      SCOPED_TRACE(spec.name);
      ValuatorParams perturbed = base;
      // A valid value guaranteed to differ from the default.
      double value = spec.DefaultValue();
      Rng rng(7);
      for (int tries = 0; tries < 64 && value == spec.DefaultValue(); ++tries) {
        value = RandomValidValue(spec, &rng);
      }
      ASSERT_NE(value, spec.DefaultValue());
      spec.set(&perturbed, value);
      if (schema->Declares(spec.name)) {
        EXPECT_NE(schema->ParamsFingerprint(perturbed), base_fp)
            << "declared param must perturb the fingerprint";
      } else {
        EXPECT_EQ(schema->ParamsFingerprint(perturbed), base_fp)
            << "undeclared param must not perturb the fingerprint";
      }
    }

    // Task perturbs iff the method supports more than one.
    if (schema->tasks.size() > 1) {
      ValuatorParams other = base;
      other.task = schema->tasks[1];
      EXPECT_NE(schema->ParamsFingerprint(other), base_fp);
    }
  }
}

TEST(SchemaFingerprintTest, DistinctMethodsNeverCollide) {
  // Same declared values, different methods: the method name is hashed
  // into the scoped fingerprint, so cross-method traffic cannot alias even
  // before the cache key's separate method string.
  ValuatorParams params;
  auto exact = ValuatorRegistry::Global().Schema("exact");
  auto corrected = ValuatorRegistry::Global().Schema("exact-corrected");
  ASSERT_TRUE(exact && corrected);
  ASSERT_TRUE(exact->Canonicalize(&params).ok());
  EXPECT_NE(exact->ParamsFingerprint(params),
            corrected->ParamsFingerprint(params));
}

// --- CLI / serve validation parity ------------------------------------------

CommandLine MakeCli(std::vector<std::string> flags) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;  // keep c_str()s alive
  storage = std::move(flags);
  storage.insert(storage.begin(), "knnshap_value");
  argv.reserve(storage.size());
  for (auto& s : storage) argv.push_back(s.data());
  return CommandLine(static_cast<int>(argv.size()), argv.data());
}

TEST(SchemaParityTest, CliAndJsonRejectIdentically) {
  // The satellite pin: bad --epsilon/--delta/--k answer the *identical*
  // structured error (code, field, message) through the CLI flag path and
  // the serve JSON path — schema-derived parsing cannot drift.
  struct Case {
    const char* method;
    const char* flag;
    const char* json;
  };
  const std::vector<Case> cases = {
      {"truncated", "--epsilon=0", R"({"epsilon":0})"},
      {"truncated", "--epsilon=-1", R"({"epsilon":-1})"},
      {"mc", "--delta=0", R"({"delta":0})"},
      {"mc", "--delta=2", R"({"delta":2})"},
      {"exact", "--k=0", R"({"k":0})"},
      {"exact", "--k=2.5", R"({"k":2.5})"},
      {"exact", "--metric=hamming", R"({"metric":"hamming"})"},
      {"weighted", "--kernel=box", R"({"kernel":"box"})"},
      {"mc", "--max_permutations=1.5", R"({"max_permutations":1.5})"},
      {"mc", "--seed=-3", R"({"seed":-3})"},
      // An explicit task the method does not support is an error on both
      // surfaces — never a silent coercion to the method's fixed task.
      {"exact", "--task=regression", R"({"task":"regression"})"},
      {"mc", "--task=ranking", R"({"task":"ranking"})"},
  };
  for (const auto& test_case : cases) {
    SCOPED_TRACE(std::string(test_case.method) + " " + test_case.flag);
    auto schema = ValuatorRegistry::Global().Schema(test_case.method);
    ASSERT_NE(schema, nullptr);

    ValuatorParams cli_params;
    Status cli_status =
        ApplyCliParams(*schema, MakeCli({test_case.flag}), &cli_params);

    ValuatorParams json_params;
    JsonParseResult parsed = ParseJson(test_case.json);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    Status json_status = ApplyJsonParams(*schema, parsed.value, &json_params);

    EXPECT_FALSE(cli_status.ok());
    EXPECT_EQ(cli_status, json_status)
        << "cli: " << cli_status.ToString()
        << "  json: " << json_status.ToString();
    EXPECT_EQ(cli_status.code(), StatusCode::kInvalidArgument);
    EXPECT_FALSE(cli_status.field().empty());
  }
}

TEST(SchemaParityTest, CliAndJsonAcceptIdentically) {
  auto schema = ValuatorRegistry::Global().Schema("mc");
  ASSERT_NE(schema, nullptr);
  ValuatorParams cli_params;
  ASSERT_TRUE(ApplyCliParams(*schema,
                             MakeCli({"--k=4", "--epsilon=0.2", "--delta=0.05",
                                      "--seed=11", "--kernel=gaussian",
                                      "--sigma=0.7", "--task=regression",
                                      "--max_permutations=64"}),
                             &cli_params)
                  .ok());
  ValuatorParams json_params;
  JsonParseResult parsed = ParseJson(
      R"({"k":4,"epsilon":0.2,"delta":0.05,"seed":11,"kernel":"gaussian",)"
      R"("sigma":0.7,"task":"regression","max_permutations":64})");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(ApplyJsonParams(*schema, parsed.value, &json_params).ok());
  EXPECT_EQ(schema->ParamsFingerprint(cli_params),
            schema->ParamsFingerprint(json_params));
  EXPECT_EQ(ParamsToJson(*schema, cli_params).Dump(),
            ParamsToJson(*schema, json_params).Dump());
}

// --- Undeclared and unknown fields ------------------------------------------

TEST(SchemaUnknownFieldTest, UndeclaredVocabularyParamIsCheckedButIgnored) {
  auto schema = ValuatorRegistry::Global().Schema("exact");
  ASSERT_NE(schema, nullptr);

  // Valid but undeclared: accepted, not applied, fingerprint unchanged.
  ValuatorParams params;
  JsonParseResult with_seed = ParseJson(R"({"k":3,"seed":999,"epsilon":0.5})");
  ASSERT_TRUE(ApplyJsonParams(*schema, with_seed.value, &params).ok());
  EXPECT_EQ(params.seed, ValuatorParams{}.seed);      // not applied
  EXPECT_EQ(params.epsilon, ValuatorParams{}.epsilon);
  ValuatorParams declared_only;
  declared_only.k = 3;
  ASSERT_TRUE(schema->Canonicalize(&declared_only).ok());
  EXPECT_EQ(schema->ParamsFingerprint(params),
            schema->ParamsFingerprint(declared_only));

  // Invalid although undeclared: still a structured error — garbage is
  // rejected on every path, declared or not.
  JsonParseResult bad = ParseJson(R"({"k":3,"epsilon":-1})");
  Status status = ApplyJsonParams(*schema, bad.value, &params);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.field(), "epsilon");
}

TEST(SchemaUnknownFieldTest, UnknownFieldIsNamed) {
  JsonParseResult parsed =
      ParseJson(R"({"op":"value","train":"a","k":3,"epsilonn":0.5})");
  ASSERT_TRUE(parsed.ok());
  Status status = CheckRequestFields(parsed.value, {"op", "train"});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.field(), "epsilonn");
  EXPECT_NE(status.message().find("epsilonn"), std::string::npos);
}

// --- weighted-fast param coverage -------------------------------------------

TEST(SchemaWeightedFastTest, WeightBitsAndApproxErrorRoundTripAndFingerprint) {
  // The satellite pin for the PR-4 contract on the newest method: the two
  // params added with weighted-fast behave exactly like the veterans —
  // they round-trip through JSON, perturb the method-scoped fingerprint
  // when (and only when) declared, and answer structured range errors.
  auto fast = ValuatorRegistry::Global().Schema("weighted-fast");
  ASSERT_NE(fast, nullptr);
  EXPECT_TRUE(fast->Declares("weight_bits"));
  EXPECT_TRUE(fast->Declares("approx_error"));
  EXPECT_TRUE(fast->per_query);

  ValuatorParams params;
  JsonParseResult parsed =
      ParseJson(R"({"k":2,"weight_bits":6,"approx_error":0.01})");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(ApplyJsonParams(*fast, parsed.value, &params).ok());
  EXPECT_EQ(params.weight_bits, 6);
  EXPECT_EQ(params.approx_error, 0.01);
  JsonValue echoed = ParamsToJson(*fast, params);
  ValuatorParams reparsed;
  ASSERT_TRUE(ApplyJsonParams(*fast, ParseJson(echoed.Dump()).value, &reparsed)
                  .ok());
  EXPECT_EQ(fast->ParamsFingerprint(params), fast->ParamsFingerprint(reparsed));

  // Declared on weighted-fast: the fingerprint moves. Undeclared on the
  // O(N^K) weighted method: the identical perturbation is invisible, so a
  // weight_bits change can never evict a 'weighted' cache entry.
  ValuatorParams base;
  ASSERT_TRUE(fast->Canonicalize(&base).ok());
  ValuatorParams perturbed = base;
  perturbed.weight_bits = 7;
  EXPECT_NE(fast->ParamsFingerprint(perturbed), fast->ParamsFingerprint(base));
  perturbed = base;
  perturbed.approx_error = 0.5;
  EXPECT_NE(fast->ParamsFingerprint(perturbed), fast->ParamsFingerprint(base));

  auto weighted = ValuatorRegistry::Global().Schema("weighted");
  ASSERT_NE(weighted, nullptr);
  EXPECT_FALSE(weighted->Declares("weight_bits"));
  ValuatorParams wbase;
  wbase.task = weighted->DefaultTask();
  ASSERT_TRUE(weighted->Canonicalize(&wbase).ok());
  ValuatorParams wperturbed = wbase;
  wperturbed.weight_bits = 7;
  wperturbed.approx_error = 0.5;
  EXPECT_EQ(weighted->ParamsFingerprint(wperturbed),
            weighted->ParamsFingerprint(wbase));

  // Range errors are structured and identical across surfaces.
  for (const char* bad : {R"({"weight_bits":0})", R"({"weight_bits":9})",
                          R"({"weight_bits":2.5})", R"({"approx_error":-0.1})",
                          R"({"approx_error":2})"}) {
    SCOPED_TRACE(bad);
    ValuatorParams scratch;
    Status status =
        ApplyJsonParams(*fast, ParseJson(bad).value, &scratch);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_FALSE(status.field().empty());
  }
}

// --- Introspection ----------------------------------------------------------

TEST(SchemaIntrospectionTest, DescribeJsonListsTypedParams) {
  for (const auto& schema : ValuatorRegistry::Global().Schemas()) {
    JsonValue json = SchemaToJson(*schema);
    EXPECT_EQ(json.Get("name").AsString(), schema->name);
    EXPECT_FALSE(json.Get("description").AsString().empty());
    EXPECT_TRUE(json.Get("tasks").IsArray());
    ASSERT_TRUE(json.Get("params").IsArray());
    ASSERT_EQ(json.Get("params").Items().size(), schema->params.size());
    for (const auto& entry : json.Get("params").Items()) {
      EXPECT_TRUE(entry.Has("name"));
      EXPECT_TRUE(entry.Has("type"));
      EXPECT_TRUE(entry.Has("default"));
      EXPECT_TRUE(entry.Has("doc"));
    }
    EXPECT_FALSE(FormatSchemaHelp(*schema).empty());
  }
}

TEST(SchemaIntrospectionTest, NativeWidthSeedPassesEngineValidation) {
  // The 2^53 seed cap is a parse-surface bound (it keeps the JSON/CLI
  // double→uint64 cast defined); a ValuatorParams built programmatically
  // at full uint64 width must still canonicalize — and fingerprint
  // distinctly, since the hash reads the native field.
  auto schema = ValuatorRegistry::Global().Schema("mc");
  ASSERT_NE(schema, nullptr);
  ValuatorParams params;
  params.seed = uint64_t{1} << 60;
  EXPECT_TRUE(schema->Canonicalize(&params).ok())
      << schema->Canonicalize(&params).ToString();
  ValuatorParams other = params;
  other.seed += 1;  // distinguishable only at native width
  EXPECT_NE(schema->ParamsFingerprint(params), schema->ParamsFingerprint(other));

  // The parse surfaces still reject it (the cast would be lossy/UB).
  JsonParseResult parsed = ParseJson(R"({"seed":1.5e18})");
  ValuatorParams json_params;
  Status status = ApplyJsonParams(*schema, parsed.value, &json_params);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.field(), "seed");
}

TEST(SchemaIntrospectionTest, EngineRejectsWithStructuredStatus) {
  // The engine boundary speaks the same structured language: a direct
  // programmatic request with a bad declared param gets the identical
  // Status the parse layers produce.
  auto schema = ValuatorRegistry::Global().Schema("truncated");
  ASSERT_NE(schema, nullptr);
  ValuatorParams params;
  params.epsilon = 0.0;
  Status status = schema->Canonicalize(&params);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.field(), "epsilon");
  EXPECT_EQ(status.message(), "'epsilon' must be > 0 (got 0)");
}

}  // namespace
}  // namespace knnshap
