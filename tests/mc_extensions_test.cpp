// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Extensions of the Monte-Carlo machinery: the composite-game incremental
// adapter (lets Algorithm 2 estimate Theorems 9-12's values) and TMC
// truncation (the Ghorbani-Zou heuristic discussed in the paper's related
// work).

#include <gtest/gtest.h>

#include <numeric>

#include "core/composite_game.h"
#include "core/exact_enumeration.h"
#include "core/improved_mc.h"
#include "core/utility.h"
#include "test_util.h"
#include "util/stats.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;

TEST(CompositeIncrementalTest, MatchesCompositeBatchUtility) {
  Dataset train = RandomClassDataset(12, 2, 3, 1);
  Dataset test = RandomClassDataset(2, 2, 3, 2);
  KnnSubsetUtility base_batch(&train, &test, 2, KnnTask::kClassification);
  CompositeSubsetUtility composite_batch(&base_batch);
  IncrementalKnnUtility base_inc(&train, &test, 2, KnnTask::kClassification);
  CompositeIncrementalUtility composite_inc(&base_inc);
  ASSERT_EQ(composite_inc.NumPlayers(), 13);
  Rng rng(3);
  for (int trial = 0; trial < 3; ++trial) {
    auto perm = rng.Permutation(13);
    composite_inc.Reset();
    std::vector<int> prefix;
    EXPECT_NEAR(composite_inc.EmptyValue(), composite_batch.Value(prefix), 1e-12);
    for (int player : perm) {
      prefix.push_back(player);
      EXPECT_NEAR(composite_inc.AddPlayer(player), composite_batch.Value(prefix),
                  1e-9);
    }
  }
}

TEST(CompositeIncrementalTest, McEstimatesMatchTheorem9) {
  Dataset train = RandomClassDataset(25, 2, 3, 4);
  Dataset test = RandomClassDataset(2, 2, 3, 5);
  const int k = 2;
  auto exact = CompositeKnnShapley(train, test, k, false);
  IncrementalKnnUtility base(&train, &test, k, KnnTask::kClassification);
  CompositeIncrementalUtility composite(&base);
  ImprovedMcOptions options;
  options.k = k;
  options.epsilon = 0.1;
  options.delta = 0.05;
  options.utility_range = 1.0;
  options.seed = 6;
  auto mc = ImprovedMcShapley(&composite, options);
  for (size_t i = 0; i < train.Size(); ++i) {
    EXPECT_NEAR(mc.shapley[i], exact.seller_values[i], options.epsilon)
        << "seller " << i;
  }
  EXPECT_NEAR(mc.shapley[train.Size()], exact.analyst_value, options.epsilon);
}

TEST(TmcTest, DisabledByDefaultMatchesPlainRun) {
  Dataset train = RandomClassDataset(20, 2, 3, 7);
  Dataset test = RandomClassDataset(2, 2, 3, 8);
  IncrementalKnnUtility u1(&train, &test, 2, KnnTask::kClassification);
  IncrementalKnnUtility u2(&train, &test, 2, KnnTask::kClassification);
  ImprovedMcOptions options;
  options.k = 2;
  options.max_permutations = 60;
  options.seed = 9;
  auto plain = ImprovedMcShapley(&u1, options);
  options.tmc_tolerance = 0.0;
  auto tmc_off = ImprovedMcShapley(&u2, options);
  testing_util::ExpectVectorNear(plain.shapley, tmc_off.shapley, 0.0);
  EXPECT_EQ(tmc_off.truncated_insertions, 0);
}

TEST(TmcTest, TruncationSkipsWorkAndKeepsGroupRationality) {
  // TMC is a *biased* heuristic (a permutation is cut the moment the
  // running utility touches nu(I), even though a later nearest neighbor
  // could still move it — the paper's related work notes TMC carries no
  // error guarantee). What it does preserve: each truncated permutation's
  // marginals still telescope to within the tolerance of nu(I), so the
  // estimates remain approximately group-rational while skipping work.
  Dataset train = RandomClassDataset(120, 2, 4, 10);
  Dataset test = RandomClassDataset(2, 2, 4, 11);
  IncrementalKnnUtility u1(&train, &test, 1, KnnTask::kClassification);
  IncrementalKnnUtility u2(&train, &test, 1, KnnTask::kClassification);
  ImprovedMcOptions options;
  options.k = 1;
  options.max_permutations = 400;
  options.seed = 12;
  auto plain = ImprovedMcShapley(&u1, options);
  options.tmc_tolerance = 1e-9;
  auto tmc = ImprovedMcShapley(&u2, options);
  EXPECT_GT(tmc.truncated_insertions, 0);
  EXPECT_LT(tmc.utility_evaluations, plain.utility_evaluations);
  KnnSubsetUtility batch(&train, &test, 1, KnnTask::kClassification);
  double grand = batch.GrandValue();
  double plain_total = std::accumulate(plain.shapley.begin(), plain.shapley.end(), 0.0);
  double tmc_total = std::accumulate(tmc.shapley.begin(), tmc.shapley.end(), 0.0);
  EXPECT_NEAR(plain_total, grand, 1e-9);  // telescoping is exact without TMC
  EXPECT_NEAR(tmc_total, grand, options.tmc_tolerance + 1e-6);
}

TEST(TmcTest, AggressiveToleranceTruncatesMore) {
  Dataset train = RandomClassDataset(100, 2, 4, 13);
  Dataset test = RandomClassDataset(2, 2, 4, 14);
  IncrementalKnnUtility u1(&train, &test, 1, KnnTask::kClassification);
  IncrementalKnnUtility u2(&train, &test, 1, KnnTask::kClassification);
  ImprovedMcOptions options;
  options.k = 1;
  options.max_permutations = 100;
  options.seed = 15;
  options.tmc_tolerance = 1e-9;
  auto strict = ImprovedMcShapley(&u1, options);
  options.tmc_tolerance = 0.05;
  auto loose = ImprovedMcShapley(&u2, options);
  EXPECT_GE(loose.truncated_insertions, strict.truncated_insertions);
}

}  // namespace
}  // namespace knnshap
