// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Tests for the deterministic fault-injection registry: spec parsing,
// after=N and p=F firing semantics, seeded reproducibility, and the
// disabled fast path the production binary rides.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/fault.h"

namespace knnshap {
namespace {

// Every test drives a fresh local registry; the process-global instance
// (the one the KNNSHAP_FAULTS env feeds) is deliberately left alone so
// tests cannot poison each other through it.
TEST(FaultRegistryTest, UnconfiguredRegistryNeverFails) {
  FaultRegistry faults;
  EXPECT_FALSE(faults.enabled());
  EXPECT_FALSE(faults.ShouldFail("cache_write"));
  EXPECT_EQ(faults.CallCount("cache_write"), 0u);  // not even counted
}

TEST(FaultRegistryTest, AfterFiresOnEveryCallStrictlyAfterN) {
  FaultRegistry faults;
  ASSERT_TRUE(faults.Configure("fit:after=3"));
  EXPECT_TRUE(faults.enabled());
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(faults.ShouldFail("fit"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, true, true}));
  EXPECT_EQ(faults.CallCount("fit"), 6u);
}

TEST(FaultRegistryTest, AfterZeroAlwaysFires) {
  FaultRegistry faults;
  ASSERT_TRUE(faults.Configure("snapshot:after=0"));
  EXPECT_TRUE(faults.ShouldFail("snapshot"));
  EXPECT_TRUE(faults.ShouldFail("snapshot"));
}

TEST(FaultRegistryTest, SitesAreIndependent) {
  FaultRegistry faults;
  ASSERT_TRUE(faults.Configure("cache_write:after=1,cache_rename:after=0"));
  EXPECT_FALSE(faults.ShouldFail("cache_write"));   // call 0
  EXPECT_TRUE(faults.ShouldFail("cache_rename"));   // fires immediately
  EXPECT_TRUE(faults.ShouldFail("cache_write"));    // call 1
  EXPECT_FALSE(faults.ShouldFail("unlisted_site")); // never configured
  EXPECT_EQ(faults.CallCount("unlisted_site"), 0u);
}

TEST(FaultRegistryTest, ProbabilityZeroAndOneAreExact) {
  FaultRegistry never;
  ASSERT_TRUE(never.Configure("fit:p=0", /*seed=*/7));
  FaultRegistry always;
  ASSERT_TRUE(always.Configure("fit:p=1", /*seed=*/7));
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(never.ShouldFail("fit"));
    EXPECT_TRUE(always.ShouldFail("fit"));
  }
}

TEST(FaultRegistryTest, ProbabilityDrawsAreSeedDeterministic) {
  auto draw = [](uint64_t seed) {
    FaultRegistry faults;
    EXPECT_TRUE(faults.Configure("fit:p=0.5", seed));
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) outcomes.push_back(faults.ShouldFail("fit"));
    return outcomes;
  };
  EXPECT_EQ(draw(42), draw(42));   // same seed, same chaos
  EXPECT_NE(draw(42), draw(43));   // different seed, different chaos
}

TEST(FaultRegistryTest, ProbabilityStreamsArePerSite) {
  // Two sites with the same p under one seed draw from distinct streams
  // (the per-site FNV mix) — site A's draws do not shift site B's.
  FaultRegistry both;
  ASSERT_TRUE(both.Configure("a:p=0.5,b:p=0.5", /*seed=*/9));
  FaultRegistry only_b;
  ASSERT_TRUE(only_b.Configure("b:p=0.5", /*seed=*/9));
  std::vector<bool> b_with_a, b_alone;
  for (int i = 0; i < 64; ++i) {
    (void)both.ShouldFail("a");
    b_with_a.push_back(both.ShouldFail("b"));
    b_alone.push_back(only_b.ShouldFail("b"));
  }
  EXPECT_EQ(b_with_a, b_alone);
}

TEST(FaultRegistryTest, MalformedSpecsAreRejectedWhole) {
  const char* bad[] = {
      "fit",             // no mode
      "fit:after=",      // empty value
      "fit:after=x",     // not a number
      "fit:p=1.5",       // out of [0,1]
      "fit:p=-0.1",      // out of [0,1]
      "fit:count=3",     // unknown mode
      ":after=1",        // empty site
      "fit:after=1,bad", // one bad clause poisons the spec
  };
  for (const char* spec : bad) {
    FaultRegistry faults;
    EXPECT_FALSE(faults.Configure(spec)) << spec;
    // Rejection is atomic: nothing from the bad spec is live.
    EXPECT_FALSE(faults.enabled()) << spec;
    EXPECT_FALSE(faults.ShouldFail("fit")) << spec;
  }
}

TEST(FaultRegistryTest, EmptySpecDisables) {
  FaultRegistry faults;
  ASSERT_TRUE(faults.Configure("fit:after=0"));
  ASSERT_TRUE(faults.ShouldFail("fit"));
  ASSERT_TRUE(faults.Configure(""));
  EXPECT_FALSE(faults.enabled());
  EXPECT_FALSE(faults.ShouldFail("fit"));
}

TEST(FaultRegistryTest, ResetClearsConfigurationAndCounts) {
  FaultRegistry faults;
  ASSERT_TRUE(faults.Configure("fit:after=0"));
  ASSERT_TRUE(faults.ShouldFail("fit"));
  faults.Reset();
  EXPECT_FALSE(faults.enabled());
  EXPECT_FALSE(faults.ShouldFail("fit"));
  EXPECT_EQ(faults.CallCount("fit"), 0u);
}

}  // namespace
}  // namespace knnshap
