// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Parity suite for streaming top-R selection (knn/selection.h) and the
// truncated-exact valuation path built on it. The contract under test: for
// every strategy and every input — tie-heavy ones especially — the top-R
// prefix is bit-identical to the same-length prefix of ArgsortDistances,
// block-parallel selection is bit-identical to serial, and the observed
// sup-norm error of the truncated recursions never exceeds the analytic
// bound reported to clients.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/corrected_knn_shapley.h"
#include "core/exact_knn_shapley.h"
#include "dataset/dataset.h"
#include "knn/distance_kernel.h"
#include "knn/neighbors.h"
#include "knn/selection.h"
#include "test_util.h"
#include "util/random.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;
using testing_util::SingleQuery;

class SelectTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetSelectOverride(SelectKind::kAuto);
    SetIntraQueryOptions(IntraQueryOptions{});
  }

  static std::vector<SelectKind> AllStrategies() {
    return {SelectKind::kAuto, SelectKind::kHeap, SelectKind::kNth,
            SelectKind::kSort};
  }

  // Distance fixtures chosen to stress the boundary band: long runs of
  // duplicate values, sub-float-ulp perturbations that collapse to one
  // float key but differ as doubles, tiny negatives (cosine rounding), and
  // infinities.
  static std::vector<std::vector<double>> TieHeavyFixtures() {
    std::vector<std::vector<double>> fixtures;
    fixtures.push_back({0.0});                          // single element
    fixtures.push_back({2.0, 2.0, 2.0, 2.0, 2.0});      // all equal
    fixtures.push_back({5.0, 1.0, 5.0, 1.0, 5.0, 1.0, 5.0, 1.0});
    {
      // Doubles that round to the same float but differ exactly.
      std::vector<double> v;
      for (int i = 0; i < 64; ++i) {
        v.push_back(1.0 + (i % 4) * 1e-12);
      }
      fixtures.push_back(std::move(v));
    }
    {
      std::vector<double> v = {-1e-18, 0.0, -0.0, 1e-18,
                               std::numeric_limits<double>::infinity(), 3.0,
                               3.0, -1e-18, 0.0};
      fixtures.push_back(std::move(v));
    }
    {
      // Quantized random values: every value collides with ~n/8 others.
      Rng rng(7);
      std::vector<double> v(257);
      for (auto& x : v) x = std::floor(rng.NextDouble() * 8.0) / 8.0;
      fixtures.push_back(std::move(v));
    }
    {
      Rng rng(11);
      std::vector<double> v(513);
      for (auto& x : v) x = rng.NextGaussian();
      fixtures.push_back(std::move(v));
    }
    return fixtures;
  }

  static std::vector<size_t> InterestingRs(size_t n) {
    std::vector<size_t> rs = {0, 1, n, n + 5};
    if (n >= 1) rs.push_back(n - 1);
    if (n >= 2) rs.push_back(n / 2);
    if (n >= 3) rs.push_back(3);  // a typical K
    rs.push_back(n / 16);         // straddles the auto heap/nth cutoff
    rs.push_back(n / 16 + 1);
    std::sort(rs.begin(), rs.end());
    rs.erase(std::unique(rs.begin(), rs.end()), rs.end());
    return rs;
  }
};

TEST_F(SelectTest, NamesAndDispatch) {
  EXPECT_STREQ(SelectName(SelectKind::kAuto), "auto");
  EXPECT_STREQ(SelectName(SelectKind::kHeap), "heap");
  EXPECT_STREQ(SelectName(SelectKind::kNth), "nth");
  EXPECT_STREQ(SelectName(SelectKind::kSort), "sort");

  SetSelectOverride(SelectKind::kHeap);
  EXPECT_EQ(ActiveSelect(999, 1000), SelectKind::kHeap);
  SetSelectOverride(SelectKind::kNth);
  EXPECT_EQ(ActiveSelect(1, 1000), SelectKind::kNth);
  SetSelectOverride(SelectKind::kAuto);
  if (std::getenv("KNNSHAP_SELECT") == nullptr) {
    // Auto: heap while r is a small fraction of n, nth otherwise.
    EXPECT_EQ(ActiveSelect(10, 1000), SelectKind::kHeap);
    EXPECT_EQ(ActiveSelect(500, 1000), SelectKind::kNth);
  }
}

TEST_F(SelectTest, PartialPrefixMatchesArgsortOnTieHeavyFixtures) {
  for (const auto& dists : TieHeavyFixtures()) {
    std::vector<int> full;
    ArgsortDistances(dists, &full);
    for (SelectKind kind : AllStrategies()) {
      SetSelectOverride(kind);
      for (size_t r : InterestingRs(dists.size())) {
        std::vector<int> got;
        PartialArgsortDistances(dists, r, &got);
        const size_t want = std::min(r, dists.size());
        ASSERT_EQ(got.size(), want)
            << SelectName(kind) << " n=" << dists.size() << " r=" << r;
        for (size_t i = 0; i < want; ++i) {
          ASSERT_EQ(got[i], full[i])
              << SelectName(kind) << " n=" << dists.size() << " r=" << r
              << " rank=" << i;
        }
      }
    }
  }
}

TEST_F(SelectTest, MergeTopCandidatesEqualsGlobalTopR) {
  for (const auto& dists : TieHeavyFixtures()) {
    const size_t n = dists.size();
    std::vector<int> full;
    ArgsortDistances(dists, &full);
    for (size_t r : InterestingRs(n)) {
      for (size_t block : {size_t{1}, size_t{3}, size_t{64}}) {
        // Per-block exact top-r (block-local selection, offset to global
        // indices) then one exact merge — the BlockedTopR recipe.
        std::vector<int> candidates;
        for (size_t begin = 0; begin < n; begin += block) {
          const size_t end = std::min(begin + block, n);
          std::vector<int> local;
          PartialArgsortDistances(
              std::span<const double>(dists).subspan(begin, end - begin), r,
              &local);
          for (int idx : local) candidates.push_back(idx + static_cast<int>(begin));
        }
        MergeTopCandidates(dists, &candidates, r);
        const size_t want = std::min(r, n);
        ASSERT_EQ(candidates.size(), want) << "n=" << n << " r=" << r;
        for (size_t i = 0; i < want; ++i) {
          ASSERT_EQ(candidates[i], full[i])
              << "n=" << n << " r=" << r << " block=" << block << " rank=" << i;
        }
      }
    }
  }
}

TEST_F(SelectTest, BlockedTopROrderMatchesSerial) {
  const Dataset train = RandomClassDataset(300, 3, 4, 21);
  const Dataset query = SingleQuery(4, 22);
  const auto q = query.features.Row(0);
  for (Metric metric : {Metric::kSquaredL2, Metric::kCosine}) {
    const std::vector<int> full = ArgsortByDistance(train.features, q, metric);
    for (size_t r : {size_t{1}, size_t{7}, size_t{299}, size_t{300}, size_t{400}}) {
      // Serial reference (thresholds at defaults keep the path serial).
      std::vector<int> serial;
      TopROrderByDistance(train.features, q, r, metric, nullptr, &serial);
      // Forced-blocked run with a block size that doesn't divide n.
      SetIntraQueryOptions({.min_rows = 1, .block_rows = 7});
      std::vector<int> blocked;
      TopROrderByDistance(train.features, q, r, metric, nullptr, &blocked);
      SetIntraQueryOptions(IntraQueryOptions{});
      const size_t want = std::min(r, static_cast<size_t>(300));
      ASSERT_EQ(serial.size(), want);
      ASSERT_EQ(blocked, serial) << "metric=" << static_cast<int>(metric)
                                 << " r=" << r;
      for (size_t i = 0; i < want; ++i) ASSERT_EQ(serial[i], full[i]);
    }
  }
}

TEST_F(SelectTest, TopKNeighborsBlockedMatchesSerialIncludingDistances) {
  const Dataset train = RandomClassDataset(200, 2, 1, 33);  // d = 1
  const Dataset query = SingleQuery(1, 34);
  const auto q = query.features.Row(0);
  const auto serial = TopKNeighbors(train.features, q, 13, Metric::kL2);
  SetIntraQueryOptions({.min_rows = 1, .block_rows = 9});
  std::vector<Neighbor> blocked;
  TopKNeighborsInto(train.features, q, 13, Metric::kL2, nullptr, &blocked);
  ASSERT_EQ(blocked.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(blocked[i].index, serial[i].index) << i;
    EXPECT_EQ(blocked[i].distance, serial[i].distance) << i;
  }
}

TEST_F(SelectTest, SingleRowCorpusAndDegenerateR) {
  const Dataset train = RandomClassDataset(1, 2, 3, 41);
  const Dataset query = SingleQuery(3, 42);
  const auto q = query.features.Row(0);
  for (SelectKind kind : AllStrategies()) {
    SetSelectOverride(kind);
    std::vector<int> order;
    TopROrderByDistance(train.features, q, 5, Metric::kL2, nullptr, &order);
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0], 0);
    TopROrderByDistance(train.features, q, 0, Metric::kL2, nullptr, &order);
    EXPECT_TRUE(order.empty());
  }
}

// The truncated recursions must (a) never exceed the bound they report and
// (b) degrade to bit-identical exact values when r >= N.
TEST_F(SelectTest, TruncatedExactErrorWithinReportedBound) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const Dataset train = RandomClassDataset(120, 3, 4, seed);
    const Dataset query = SingleQuery(4, seed + 100, /*label=*/1);
    const auto q = query.features.Row(0);
    const size_t n = train.Size();
    for (int k : {1, 3, 10}) {
      const auto exact = ExactKnnShapleySingle(train, q, 1, k);
      for (size_t r : {size_t{1}, size_t{5}, size_t{20}, size_t{60},
                       size_t{119}, size_t{120}, size_t{200}}) {
        const auto truncated =
            TruncatedExactKnnShapleySingle(train, q, 1, k, r);
        const double bound = TruncatedExactKnnShapleyBound(r, n);
        ASSERT_EQ(truncated.size(), exact.size());
        double err = 0.0;
        for (size_t i = 0; i < n; ++i) {
          err = std::max(err, std::abs(truncated[i] - exact[i]));
        }
        if (r >= n) {
          EXPECT_EQ(bound, 0.0);
          EXPECT_EQ(truncated, exact) << "k=" << k << " r=" << r;
        } else {
          EXPECT_LE(err, bound + 1e-12)
              << "seed=" << seed << " k=" << k << " r=" << r;
        }
      }
    }
  }
}

TEST_F(SelectTest, TruncatedCorrectedErrorWithinReportedBound) {
  for (uint64_t seed : {4u, 5u, 6u}) {
    const Dataset train = RandomClassDataset(120, 3, 4, seed);
    const Dataset query = SingleQuery(4, seed + 100, /*label=*/1);
    const auto q = query.features.Row(0);
    const size_t n = train.Size();
    for (int k : {1, 3, 10, 200}) {  // k=200 > N: the exact small-N regime
      const auto exact = CorrectedKnnShapleySingle(train, q, 1, k);
      for (size_t r : {size_t{1}, size_t{5}, size_t{20}, size_t{60},
                       size_t{119}, size_t{120}, size_t{200}}) {
        const auto truncated =
            TruncatedCorrectedKnnShapleySingle(train, q, 1, k, r);
        const double bound = TruncatedCorrectedKnnShapleyBound(r, n, k);
        ASSERT_EQ(truncated.size(), exact.size());
        double err = 0.0;
        for (size_t i = 0; i < n; ++i) {
          err = std::max(err, std::abs(truncated[i] - exact[i]));
        }
        if (r >= n || k >= static_cast<int>(n)) {
          EXPECT_EQ(bound, 0.0) << "k=" << k << " r=" << r;
          testing_util::ExpectVectorNear(truncated, exact, 1e-12);
        } else {
          EXPECT_LE(err, bound + 1e-12)
              << "seed=" << seed << " k=" << k << " r=" << r;
        }
      }
    }
  }
}

// The truncated path must agree with itself across every selection strategy
// and the blocked shard path — the values are a pure function of the top-R
// prefix, which is bit-identical everywhere.
TEST_F(SelectTest, TruncatedValuesIdenticalAcrossStrategiesAndBlocking) {
  const Dataset train = RandomClassDataset(150, 3, 4, 9);
  const Dataset query = SingleQuery(4, 10, /*label=*/0);
  const auto q = query.features.Row(0);
  const auto reference =
      TruncatedExactKnnShapleySingle(train, q, 0, 3, 25);
  for (SelectKind kind : {SelectKind::kHeap, SelectKind::kNth, SelectKind::kSort}) {
    SetSelectOverride(kind);
    EXPECT_EQ(TruncatedExactKnnShapleySingle(train, q, 0, 3, 25), reference)
        << SelectName(kind);
    SetIntraQueryOptions({.min_rows = 1, .block_rows = 11});
    EXPECT_EQ(TruncatedExactKnnShapleySingle(train, q, 0, 3, 25), reference)
        << SelectName(kind) << " blocked";
    SetIntraQueryOptions(IntraQueryOptions{});
  }
}

TEST_F(SelectTest, BoundShapes) {
  // Exact regimes report exactly zero.
  EXPECT_EQ(TruncatedExactKnnShapleyBound(10, 10), 0.0);
  EXPECT_EQ(TruncatedExactKnnShapleyBound(11, 10), 0.0);
  EXPECT_EQ(TruncatedExactKnnShapleyBound(5, 0), 0.0);
  EXPECT_EQ(TruncatedCorrectedKnnShapleyBound(10, 10, 3), 0.0);
  EXPECT_EQ(TruncatedCorrectedKnnShapleyBound(2, 10, 10), 0.0);
  // Otherwise positive and non-increasing in r.
  double prev = std::numeric_limits<double>::infinity();
  for (size_t r = 1; r < 100; ++r) {
    const double b = TruncatedExactKnnShapleyBound(r, 100);
    EXPECT_GT(b, 0.0);
    EXPECT_LE(b, prev);
    prev = b;
  }
  prev = std::numeric_limits<double>::infinity();
  for (size_t r = 1; r < 100; ++r) {
    const double b = TruncatedCorrectedKnnShapleyBound(r, 100, 5);
    EXPECT_GT(b, 0.0);
    EXPECT_LE(b, prev);
    prev = b;
  }
}

// The -0.0 paragraph of the selection.h ordering contract: the packed key
// canonicalizes -0.0 to +0.0, so external callers (the shard merge) may
// compare raw double distances with a plain (dist, index) comparator and
// reproduce the packed order bit for bit — no signed-zero special-casing.
TEST_F(SelectTest, SignedZeroKeysIdenticallyToPositiveZero) {
  EXPECT_EQ(internal::SortableBits(-0.0), internal::SortableBits(0.0));

  // -0.0/+0.0 interleaved (plus sub-float-ulp neighbors that round into
  // the same float band) — the exact inputs where a non-canonicalized key
  // would disagree with the double comparator.
  const std::vector<double> dists = {-0.0, 1e-300,  0.0, -0.0,
                                     0.0,  -1e-300, -0.0};
  std::vector<int> expected(dists.size());
  std::iota(expected.begin(), expected.end(), 0);
  std::sort(expected.begin(), expected.end(), [&](int a, int b) {
    return dists[a] < dists[b] || (dists[a] == dists[b] && a < b);
  });

  std::vector<int> packed;
  ArgsortDistances(dists, &packed);
  EXPECT_EQ(packed, expected);

  for (SelectKind kind : AllStrategies()) {
    SetSelectOverride(kind);
    for (size_t r : InterestingRs(dists.size())) {
      std::vector<int> prefix;
      PartialArgsortDistances(dists, r, &prefix);
      const size_t len = std::min(r, dists.size());
      EXPECT_EQ(prefix, std::vector<int>(expected.begin(),
                                         expected.begin() + len))
          << SelectName(kind) << " r=" << r;
    }
  }
}

// The k-way run merge the shard router uses at r = N: merging each
// contiguous part's exact top-r (offset to global indices) must reproduce
// the global top-r bit for bit, and agree with the sort-based
// MergeTopCandidates over the concatenated runs.
TEST_F(SelectTest, MergeSortedCandidateRunsMatchesGlobalTopR) {
  for (const auto& dists : TieHeavyFixtures()) {
    const size_t n = dists.size();
    std::vector<int> full;
    ArgsortDistances(dists, &full);

    for (size_t parts : {1u, 2u, 3u, 5u}) {
      std::vector<std::pair<size_t, size_t>> ranges;
      for (size_t p = 0; p < parts; ++p) {
        const size_t begin = p * n / parts, end = (p + 1) * n / parts;
        if (begin < end) ranges.emplace_back(begin, end);
      }
      for (size_t r : InterestingRs(n)) {
        std::vector<std::vector<int>> runs;
        for (const auto& [begin, end] : ranges) {
          std::vector<int> local;
          PartialArgsortDistances(
              std::span<const double>(dists).subspan(begin, end - begin), r,
              &local);
          for (int& index : local) index += static_cast<int>(begin);
          runs.push_back(std::move(local));
        }
        const std::vector<int> expected(full.begin(),
                                        full.begin() + std::min(r, n));
        std::vector<int> merged;
        MergeSortedCandidateRuns(dists, runs, r, &merged);
        EXPECT_EQ(merged, expected) << "parts=" << parts << " r=" << r;

        std::vector<int> concatenated;
        for (const auto& run : runs) {
          concatenated.insert(concatenated.end(), run.begin(), run.end());
        }
        MergeTopCandidates(dists, &concatenated, r);
        EXPECT_EQ(concatenated, expected) << "parts=" << parts << " r=" << r;
      }
    }
  }
}

}  // namespace
}  // namespace knnshap
