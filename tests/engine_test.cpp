// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Tests for the unified valuation engine: registry resolution, adapter
// agreement with the standalone entry points (bitwise, where the contract
// promises it), result-cache semantics including fingerprint invalidation,
// fitted-valuator reuse, and parallel/serial determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/exact_knn_shapley.h"
#include "core/improved_mc.h"
#include "core/knn_regression_shapley.h"
#include "core/lsh_knn_shapley.h"
#include "core/streaming_valuator.h"
#include "core/weighted_knn_shapley.h"
#include "core/wknn_shapley.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "engine/result_cache.h"
#include "engine/valuators.h"
#include "test_util.h"
#include "util/fingerprint.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;
using testing_util::RandomRegDataset;

std::shared_ptr<const Dataset> Shared(Dataset data) {
  return std::make_shared<const Dataset>(std::move(data));
}

ValuationRequest ClassificationRequest(std::shared_ptr<const Dataset> train,
                                       std::shared_ptr<const Dataset> test,
                                       const std::string& method, int k) {
  ValuationRequest request;
  request.method = method;
  request.params.k = k;
  request.train = std::move(train);
  request.test = std::move(test);
  return request;
}

// --- Registry ---------------------------------------------------------------

TEST(RegistryTest, BuiltinMethodsRegistered) {
  auto& registry = ValuatorRegistry::Global();
  for (const char* name : {"exact", "truncated", "lsh", "mc", "weighted",
                           "weighted-fast", "regression"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    auto valuator = registry.Create(name, ValuatorParams{});
    ASSERT_NE(valuator, nullptr) << name;
    EXPECT_STREQ(valuator->Method(), name);
    EXPECT_FALSE(valuator->Fitted());
  }
}

TEST(RegistryTest, UnknownMethodCreatesNull) {
  auto& registry = ValuatorRegistry::Global();
  EXPECT_FALSE(registry.Contains("no-such-method"));
  EXPECT_EQ(registry.Create("no-such-method", ValuatorParams{}), nullptr);
}

TEST(RegistryTest, UnknownMethodIsAnEngineErrorNotAnAbort) {
  ValuationEngine engine;
  auto train = Shared(RandomClassDataset(20, 2, 4, 1));
  auto test = Shared(RandomClassDataset(3, 2, 4, 2));
  ValuationRequest request = ClassificationRequest(train, test, "no-such-method", 3);
  ValuationReport report = engine.Value(request);
  EXPECT_FALSE(report.ok());
  // The error must name the offender and list what IS registered.
  EXPECT_NE(report.status.message().find("no-such-method"), std::string::npos);
  EXPECT_NE(report.status.message().find("exact"), std::string::npos);
  EXPECT_TRUE(report.values.empty());
}

TEST(RegistryTest, MethodListIsSortedAndDescribed) {
  auto methods = ValuatorRegistry::Global().Methods();
  ASSERT_GE(methods.size(), 6u);
  for (size_t i = 1; i < methods.size(); ++i) {
    EXPECT_LT(methods[i - 1].name, methods[i].name);
  }
  for (const auto& info : methods) EXPECT_FALSE(info.description.empty());
}

// --- Adapter agreement with the standalone entry points ---------------------

TEST(EngineAgreementTest, ExactMatchesLegacyBitwise) {
  auto train = Shared(RandomClassDataset(60, 3, 6, 11));
  auto test = Shared(RandomClassDataset(9, 3, 6, 12));
  ValuationEngine engine;
  ValuationReport report =
      engine.Value(ClassificationRequest(train, test, "exact", 4));
  ASSERT_TRUE(report.ok()) << report.status.ToString();
  std::vector<double> legacy = ExactKnnShapley(*train, *test, 4);
  EXPECT_EQ(report.values, legacy);  // bitwise
}

TEST(EngineAgreementTest, TruncatedMatchesLegacy) {
  auto train = Shared(RandomClassDataset(80, 2, 5, 21));
  auto test = Shared(RandomClassDataset(7, 2, 5, 22));
  ValuationEngine engine;
  ValuationRequest request = ClassificationRequest(train, test, "truncated", 3);
  request.params.epsilon = 0.05;
  ValuationReport report = engine.Value(request);
  ASSERT_TRUE(report.ok()) << report.status.ToString();
  std::vector<double> legacy = TruncatedKnnShapley(*train, *test, 3, 0.05);
  // kd-tree vs partial-selection retrieval: same neighbors on tie-free
  // random data, so same values.
  EXPECT_EQ(report.values, legacy);
}

TEST(EngineAgreementTest, LshMatchesStreamingValuatorBitwise) {
  auto train = Shared(RandomClassDataset(120, 2, 8, 31));
  auto test = Shared(RandomClassDataset(11, 2, 8, 32));
  ValuationEngine engine;
  ValuationRequest request = ClassificationRequest(train, test, "lsh", 3);
  request.params.epsilon = 0.1;
  request.params.delta = 0.1;
  request.params.seed = 7;
  ValuationReport report = engine.Value(request);
  ASSERT_TRUE(report.ok()) << report.status.ToString();

  StreamingValuatorOptions options;
  options.k = 3;
  options.epsilon = 0.1;
  options.delta = 0.1;
  options.seed = 7;
  StreamingValuator streaming(*train, options);
  for (size_t j = 0; j < test->Size(); ++j) {
    streaming.ProcessQuery(test->features.Row(j), test->labels[j]);
  }
  EXPECT_EQ(report.values, streaming.Values());  // bitwise
}

TEST(EngineAgreementTest, McMatchesLegacyBitwise) {
  auto train = Shared(RandomClassDataset(40, 2, 4, 41));
  auto test = Shared(RandomClassDataset(5, 2, 4, 42));
  ValuationEngine engine;
  ValuationRequest request = ClassificationRequest(train, test, "mc", 3);
  request.params.epsilon = 0.25;
  request.params.delta = 0.2;
  request.params.seed = 9;
  ValuationReport report = engine.Value(request);
  ASSERT_TRUE(report.ok()) << report.status.ToString();

  IncrementalKnnUtility utility(train.get(), test.get(), 3,
                                KnnTask::kClassification);
  ImprovedMcOptions options;
  options.k = 3;
  options.epsilon = 0.25;
  options.delta = 0.2;
  options.utility_range = 1.0 / 3;
  options.seed = 9;
  EXPECT_EQ(report.values, ImprovedMcShapley(&utility, options).shapley);
}

TEST(EngineAgreementTest, RegressionMatchesLegacyBitwise) {
  auto train = Shared(RandomRegDataset(50, 4, 51));
  auto test = Shared(RandomRegDataset(6, 4, 52));
  ValuationEngine engine;
  ValuationRequest request;
  request.method = "regression";
  request.params.k = 3;
  request.params.task = KnnTask::kRegression;
  request.train = train;
  request.test = test;
  ValuationReport report = engine.Value(request);
  ASSERT_TRUE(report.ok()) << report.status.ToString();
  EXPECT_EQ(report.values, ExactKnnRegressionShapley(*train, *test, 3));
}

TEST(EngineAgreementTest, WeightedMatchesLegacyBitwise) {
  auto train = Shared(RandomClassDataset(16, 2, 3, 61));
  auto test = Shared(RandomClassDataset(3, 2, 3, 62));
  ValuationEngine engine;
  ValuationRequest request = ClassificationRequest(train, test, "weighted", 2);
  request.params.task = KnnTask::kWeightedClassification;
  request.params.weights.kernel = WeightKernel::kInverseDistance;
  ValuationReport report = engine.Value(request);
  ASSERT_TRUE(report.ok()) << report.status.ToString();

  WeightedShapleyOptions options;
  options.k = 2;
  options.weights.kernel = WeightKernel::kInverseDistance;
  options.task = KnnTask::kWeightedClassification;
  EXPECT_EQ(report.values, ExactWeightedKnnShapley(*train, *test, options));
}

TEST(EngineAgreementTest, WeightedFastMatchesCoreBitwise) {
  auto train = Shared(RandomClassDataset(40, 2, 3, 63));
  auto test = Shared(RandomClassDataset(4, 2, 3, 64));
  ValuationEngine engine;
  ValuationRequest request =
      ClassificationRequest(train, test, "weighted-fast", 3);
  request.params.task = KnnTask::kWeightedClassification;
  request.params.weights.kernel = WeightKernel::kInverseDistance;
  request.params.weight_bits = 4;
  ValuationReport report = engine.Value(request);
  ASSERT_TRUE(report.ok()) << report.status.ToString();

  WknnShapleyOptions options;
  options.k = 3;
  options.weights.kernel = WeightKernel::kInverseDistance;
  options.weight_bits = 4;
  EXPECT_EQ(report.values, WknnShapley(*train, *test, options));

  // A repeat must be served from the cache with bitwise-equal values, and
  // an approx_error change (declared) must miss — the method-scoped
  // fingerprint covers the new params.
  ValuationReport repeat = engine.Value(request);
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_EQ(repeat.values, report.values);
  request.params.approx_error = 0.01;
  ValuationReport truncated = engine.Value(request);
  ASSERT_TRUE(truncated.ok()) << truncated.status.ToString();
  EXPECT_FALSE(truncated.cache_hit);
  double worst = 0.0;
  for (size_t i = 0; i < report.values.size(); ++i) {
    worst = std::max(worst, std::fabs(truncated.values[i] - report.values[i]));
  }
  EXPECT_LE(worst, 0.01 + 1e-12);
}

// --- Determinism ------------------------------------------------------------

TEST(EngineDeterminismTest, ParallelAndSerialAreBitwiseEqual) {
  auto train = Shared(RandomClassDataset(100, 3, 6, 71));
  auto test = Shared(RandomClassDataset(17, 3, 6, 72));
  for (const char* method : {"exact", "truncated"}) {
    ValuationEngine engine;
    ValuationRequest request = ClassificationRequest(train, test, method, 5);
    request.use_cache = false;  // make both runs compute
    request.parallel = true;
    ValuationReport parallel_report = engine.Value(request);
    request.parallel = false;
    ValuationReport serial_report = engine.Value(request);
    ASSERT_TRUE(parallel_report.ok()) << parallel_report.status.ToString();
    ASSERT_TRUE(serial_report.ok()) << serial_report.status.ToString();
    EXPECT_EQ(parallel_report.values, serial_report.values) << method;
  }
}

TEST(EngineDeterminismTest, ChunkSizeCannotChangeOutputBits) {
  // The scheduler bounds resident memory by processing the batch in
  // chunks; accumulation stays in query order, so any chunk size must
  // produce the identical vector — including the legacy all-at-once order.
  auto train = Shared(RandomClassDataset(50, 3, 5, 75));
  auto test = Shared(RandomClassDataset(13, 3, 5, 76));
  std::vector<std::vector<double>> results;
  for (size_t chunk : {size_t{1}, size_t{4}, size_t{256}}) {
    EngineOptions options;
    options.max_resident_queries = chunk;
    ValuationEngine engine(options);
    ValuationReport report =
        engine.Value(ClassificationRequest(train, test, "exact", 3));
    ASSERT_TRUE(report.ok()) << report.status.ToString();
    results.push_back(report.values);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
  EXPECT_EQ(results[2], ExactKnnShapley(*train, *test, 3));  // legacy order
}

TEST(EngineDeterminismTest, RepeatedRunsAreBitwiseEqual) {
  auto train = Shared(RandomClassDataset(60, 2, 5, 81));
  auto test = Shared(RandomClassDataset(8, 2, 5, 82));
  ValuationEngine engine;
  ValuationRequest request = ClassificationRequest(train, test, "exact", 3);
  request.use_cache = false;
  ValuationReport first = engine.Value(request);
  ValuationReport second = engine.Value(request);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.values, second.values);
  EXPECT_FALSE(second.cache_hit);  // cache was off — these really recomputed
}

// --- Result cache -----------------------------------------------------------

TEST(EngineCacheTest, RepeatRequestHitsAndIsBitwiseEqual) {
  auto train = Shared(RandomClassDataset(50, 2, 4, 91));
  auto test = Shared(RandomClassDataset(6, 2, 4, 92));
  ValuationEngine engine;
  ValuationRequest request = ClassificationRequest(train, test, "exact", 3);

  ValuationReport first = engine.Value(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(engine.CacheStats().misses, 1u);

  ValuationReport second = engine.Value(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.values, first.values);  // bitwise
  EXPECT_EQ(engine.CacheStats().hits, 1u);
}

TEST(EngineCacheTest, DatasetMutationInvalidates) {
  Dataset train = RandomClassDataset(40, 2, 4, 101);
  auto test = Shared(RandomClassDataset(5, 2, 4, 102));
  ValuationEngine engine;

  ValuationRequest request = ClassificationRequest(Shared(train), test, "exact", 3);
  EXPECT_FALSE(engine.Value(request).cache_hit);
  EXPECT_TRUE(engine.Value(request).cache_hit);

  // Flip one label: the content fingerprint must change, so the repeat is a
  // miss and the values differ where the flipped point matters.
  train.labels[0] ^= 1;
  ValuationRequest mutated = ClassificationRequest(Shared(train), test, "exact", 3);
  ValuationReport report = engine.Value(mutated);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.cache_hit);
}

TEST(EngineCacheTest, HyperparameterChangeMisses) {
  auto train = Shared(RandomClassDataset(40, 2, 4, 111));
  auto test = Shared(RandomClassDataset(5, 2, 4, 112));
  ValuationEngine engine;
  ValuationRequest request = ClassificationRequest(train, test, "exact", 3);
  EXPECT_FALSE(engine.Value(request).cache_hit);
  request.params.k = 4;
  EXPECT_FALSE(engine.Value(request).cache_hit);
  request.params.k = 3;
  EXPECT_TRUE(engine.Value(request).cache_hit);
}

TEST(EngineCacheTest, TestBatchChangeMissesButReusesFit) {
  auto train = Shared(RandomClassDataset(60, 2, 5, 121));
  auto test_a = Shared(RandomClassDataset(5, 2, 5, 122));
  auto test_b = Shared(RandomClassDataset(5, 2, 5, 123));
  ValuationEngine engine;

  ValuationRequest request = ClassificationRequest(train, test_a, "truncated", 3);
  ValuationReport first = engine.Value(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(first.fit_reused);

  // New query batch, same corpus: result-cache miss, but the kd-tree is
  // reused instead of rebuilt.
  request.test = test_b;
  ValuationReport second = engine.Value(request);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.cache_hit);
  EXPECT_TRUE(second.fit_reused);
  EXPECT_EQ(engine.FitReuses(), 1u);
  EXPECT_EQ(engine.FittedCount(), 1u);
}

TEST(ResultCacheTest, LruEvictionAndCounters) {
  ResultCache cache(2);
  auto values = std::make_shared<const std::vector<double>>(std::vector<double>{1.0});
  ResultCacheKey a{1, 1, "exact", 1};
  ResultCacheKey b{2, 2, "exact", 2};
  ResultCacheKey c{3, 3, "exact", 3};

  EXPECT_EQ(cache.Get(a), nullptr);  // miss
  cache.Put(a, values);
  cache.Put(b, values);
  EXPECT_NE(cache.Get(a), nullptr);  // a is now MRU
  cache.Put(c, values);              // evicts b (LRU)
  EXPECT_EQ(cache.Get(b), nullptr);
  EXPECT_NE(cache.Get(c), nullptr);
  EXPECT_EQ(cache.Size(), 2u);

  CacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.hits, 2u);
  EXPECT_EQ(counters.misses, 2u);
  EXPECT_EQ(counters.evictions, 1u);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  ResultCacheKey key{1, 1, "exact", 1};
  cache.Put(key, std::make_shared<const std::vector<double>>());
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.Size(), 0u);
}

// --- Method-scoped fingerprints ---------------------------------------------

TEST(EngineScopedFingerprintTest, ExactResultSurvivesUndeclaredParamChange) {
  // "exact" declares {k, metric}; seed/epsilon/delta cannot perturb its
  // results. Method-scoped keys make the repeat a cache hit (and reuse the
  // fitted valuator); the whole-struct compatibility shim reproduces the
  // legacy miss — the before/after the serve bench measures.
  auto train = Shared(RandomClassDataset(40, 2, 4, 161));
  auto test = Shared(RandomClassDataset(5, 2, 4, 162));
  for (bool scoped : {true, false}) {
    EngineOptions options;
    options.method_scoped_fingerprints = scoped;
    ValuationEngine engine(options);
    ValuationRequest request = ClassificationRequest(train, test, "exact", 3);
    ValuationReport first = engine.Value(request);
    ASSERT_TRUE(first.ok()) << first.status.ToString();

    request.params.seed += 17;
    request.params.epsilon *= 2;
    request.params.delta /= 2;
    ValuationReport second = engine.Value(request);
    ASSERT_TRUE(second.ok()) << second.status.ToString();
    EXPECT_EQ(second.cache_hit, scoped);
    EXPECT_EQ(second.values, first.values);  // bitwise either way

    // With the cache bypassed and yet another undeclared perturbation,
    // the fitted valuator tells the same story: scoped keys reuse the
    // fitted structure, the whole-struct shim refits.
    request.use_cache = false;
    request.params.seed += 1;
    ValuationReport third = engine.Value(request);
    ASSERT_TRUE(third.ok());
    EXPECT_EQ(third.fit_reused, scoped);
    EXPECT_EQ(third.values, first.values);
  }
}

TEST(EngineScopedFingerprintTest, DeclaredParamChangeStillInvalidates) {
  // "mc" declares seed: a seed change must miss and recompute.
  auto train = Shared(RandomClassDataset(30, 2, 3, 163));
  auto test = Shared(RandomClassDataset(4, 2, 3, 164));
  ValuationEngine engine;
  ValuationRequest request = ClassificationRequest(train, test, "mc", 3);
  request.params.max_permutations = 16;
  EXPECT_FALSE(engine.Value(request).cache_hit);
  request.params.seed += 1;
  EXPECT_FALSE(engine.Value(request).cache_hit);
  request.params.seed -= 1;
  EXPECT_TRUE(engine.Value(request).cache_hit);
}

TEST(EngineScopedFingerprintTest, NoCrossMethodFalseHits) {
  // Two methods with identical declared params must never alias: same
  // (train, test, k, metric) through exact and exact-corrected computes
  // twice and returns different vectors.
  auto train = Shared(RandomClassDataset(50, 2, 4, 165));
  auto test = Shared(RandomClassDataset(6, 2, 4, 166));
  ValuationEngine engine;
  ValuationReport exact =
      engine.Value(ClassificationRequest(train, test, "exact", 3));
  ValuationReport corrected =
      engine.Value(ClassificationRequest(train, test, "exact-corrected", 3));
  ASSERT_TRUE(exact.ok() && corrected.ok());
  EXPECT_FALSE(corrected.cache_hit);
  EXPECT_NE(exact.values, corrected.values);
  EXPECT_EQ(engine.CacheStats().hits, 0u);
}

// --- Structured engine errors ----------------------------------------------

TEST(EngineStatusTest, OutOfRangeDeclaredParamNamesTheField) {
  auto train = Shared(RandomClassDataset(20, 2, 4, 171));
  auto test = Shared(RandomClassDataset(3, 2, 4, 172));
  ValuationEngine engine;
  ValuationRequest request = ClassificationRequest(train, test, "truncated", 3);
  request.params.epsilon = -0.5;
  ValuationReport report = engine.Value(request);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(report.status.field(), "epsilon");
  EXPECT_EQ(report.status.message(), "'epsilon' must be > 0 (got -0.5)");

  request.params.epsilon = 0.1;
  request.params.k = 0;
  report = engine.Value(request);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status.field(), "k");
}

TEST(EngineStatusTest, WeightedFastTableBudgetIsAStructuredError) {
  // k=70 and weight_bits=3 are each inside their schema ranges, but their
  // joint count-table footprint on a 80-row corpus exceeds the per-query
  // budget. The schema precondition must turn that into a response — the
  // previous behavior was a fatal KNNSHAP_CHECK that killed the process
  // (and with it, a serve instance and every in-flight request).
  auto train = Shared(RandomClassDataset(80, 2, 3, 65));
  auto test = Shared(RandomClassDataset(2, 2, 3, 66));
  ValuationEngine engine;
  ValuationRequest request =
      ClassificationRequest(train, test, "weighted-fast", 70);
  request.params.task = KnnTask::kWeightedClassification;
  ValuationReport report = engine.Value(request);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(report.status.field(), "k");

  // The same k on a tiny corpus is fine: the effective K is min(k, N).
  auto small = Shared(RandomClassDataset(6, 2, 3, 67));
  ValuationRequest capped = ClassificationRequest(small, test, "weighted-fast", 70);
  capped.params.task = KnnTask::kWeightedClassification;
  EXPECT_TRUE(engine.Value(capped).ok());

  // The core exposes the same verdicts directly.
  EXPECT_FALSE(WknnTableBudget(80, 70, 3).ok());
  EXPECT_TRUE(WknnTableBudget(6, 70, 3).ok());
  EXPECT_TRUE(WknnTableBudget(80, 5, 8).ok());
  EXPECT_FALSE(WknnTableBudget(10000, 30, 8).ok());
}

TEST(EngineStatusTest, DisallowedTaskIsAStructuredError) {
  auto train = Shared(RandomClassDataset(20, 2, 4, 173));
  auto test = Shared(RandomClassDataset(3, 2, 4, 174));
  ValuationEngine engine;
  ValuationRequest request = ClassificationRequest(train, test, "weighted", 2);
  request.params.task = KnnTask::kClassification;  // weighted tasks only
  ValuationReport report = engine.Value(request);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(report.status.field(), "task");
  EXPECT_NE(report.status.message().find("weighted-classification"),
            std::string::npos);
}

TEST(EngineStatusTest, SingleTaskMethodCanonicalizesTask) {
  // Single-task methods define their task: a programmatic request with the
  // default (classification) task against the regression method is
  // coerced, matching the legacy adapters' behavior of ignoring task.
  auto train = Shared(RandomRegDataset(30, 3, 175));
  auto test = Shared(RandomRegDataset(4, 3, 176));
  ValuationEngine engine;
  ValuationRequest request;
  request.method = "regression";
  request.params.k = 3;  // task left at kClassification
  request.train = train;
  request.test = test;
  ValuationReport report = engine.Value(request);
  EXPECT_TRUE(report.ok()) << report.status.ToString();
  EXPECT_EQ(report.values, ExactKnnRegressionShapley(*train, *test, 3));
}

// --- Fingerprints -----------------------------------------------------------

TEST(FingerprintTest, SensitiveToEveryComponent) {
  Dataset data = RandomClassDataset(10, 2, 3, 131);
  const uint64_t base = DatasetFingerprint(data);
  EXPECT_EQ(DatasetFingerprint(data), base);  // deterministic

  Dataset copy = data;
  EXPECT_EQ(DatasetFingerprint(copy), base);  // content, not identity
  copy.name = "renamed";
  EXPECT_EQ(DatasetFingerprint(copy), base);  // name excluded by design

  Dataset label_flip = data;
  label_flip.labels[3] ^= 1;
  EXPECT_NE(DatasetFingerprint(label_flip), base);

  Dataset feature_edit = data;
  feature_edit.features.At(4, 1) += 1.0f;
  EXPECT_NE(DatasetFingerprint(feature_edit), base);

  Dataset with_targets = data;
  with_targets.targets.assign(data.Size(), 0.0);
  EXPECT_NE(DatasetFingerprint(with_targets), base);
}

TEST(FingerprintTest, ParamsSensitivity) {
  ValuatorParams params;
  const uint64_t base = params.Fingerprint();
  EXPECT_EQ(ValuatorParams{}.Fingerprint(), base);
  params.k = 9;
  EXPECT_NE(params.Fingerprint(), base);
  params = ValuatorParams{};
  params.epsilon = 0.42;
  EXPECT_NE(params.Fingerprint(), base);
  params = ValuatorParams{};
  params.weights.kernel = WeightKernel::kGaussian;
  EXPECT_NE(params.Fingerprint(), base);
}

// --- Request validation -----------------------------------------------------

TEST(EngineValidationTest, RejectsIncompatibleData) {
  ValuationEngine engine;
  auto labeled_train = Shared(RandomClassDataset(20, 2, 4, 141));
  auto labeled_test = Shared(RandomClassDataset(3, 2, 4, 142));

  {  // regression method on label-only data
    ValuationRequest request;
    request.method = "regression";
    request.params.task = KnnTask::kRegression;
    request.train = labeled_train;
    request.test = labeled_test;
    ValuationReport report = engine.Value(request);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(report.status.message().find("targets"), std::string::npos);
  }
  {  // classification method on target-only data
    ValuationRequest request = ClassificationRequest(
        Shared(RandomRegDataset(20, 4, 143)), Shared(RandomRegDataset(3, 4, 144)),
        "exact", 3);
    EXPECT_FALSE(engine.Value(request).ok());
  }
  {  // dimension mismatch
    ValuationRequest request = ClassificationRequest(
        labeled_train, Shared(RandomClassDataset(3, 2, 5, 145)), "exact", 3);
    ValuationReport report = engine.Value(request);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(report.status.message().find("dimension"), std::string::npos);
  }
  {  // missing datasets
    ValuationRequest request;
    request.method = "exact";
    EXPECT_FALSE(engine.Value(request).ok());
  }
}

// --- Reports ----------------------------------------------------------------

TEST(EngineReportTest, CarriesSummaryAndShape) {
  auto train = Shared(RandomClassDataset(30, 2, 4, 151));
  auto test = Shared(RandomClassDataset(4, 2, 4, 152));
  ValuationEngine engine;
  ValuationReport report =
      engine.Value(ClassificationRequest(train, test, "exact", 3));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.method, "exact");
  EXPECT_EQ(report.train_size, 30u);
  EXPECT_EQ(report.num_queries, 4u);
  EXPECT_EQ(report.values.size(), 30u);
  // Efficiency axiom: unweighted KNN SVs over a labeled test set sum to the
  // mean test utility, which lies in [0, 1].
  EXPECT_GE(report.summary.total, 0.0);
  EXPECT_LE(report.summary.total, 1.0);
  EXPECT_FALSE(report.FormatStatusLine().empty());
  EXPECT_GE(report.seconds, 0.0);
}

}  // namespace
}  // namespace knnshap
