// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// StreamingValuator: the online API must agree with the batch truncated /
// exact algorithms and respect the Theorem-2 error budget, across all
// three retrieval backends.

#include <gtest/gtest.h>

#include "core/exact_knn_shapley.h"
#include "core/lsh_knn_shapley.h"
#include "core/streaming_valuator.h"
#include "dataset/synthetic.h"
#include "test_util.h"
#include "util/stats.h"

namespace knnshap {
namespace {

struct StreamSetup {
  Dataset corpus;
  Dataset queries;
};

StreamSetup MakeSetup(size_t n, size_t q, uint64_t seed) {
  Rng rng(seed);
  Dataset all = MakeMnistLike(n + q, &rng);
  StreamSetup setup;
  std::vector<int> corpus_rows, query_rows;
  for (size_t i = 0; i < n; ++i) corpus_rows.push_back(static_cast<int>(i));
  for (size_t i = 0; i < q; ++i) query_rows.push_back(static_cast<int>(n + i));
  setup.corpus = all.Subset(corpus_rows);
  setup.queries = all.Subset(query_rows);
  return setup;
}

class BackendTest : public ::testing::TestWithParam<RetrievalBackend> {};

TEST_P(BackendTest, WithinEpsilonOfExactBatch) {
  auto setup = MakeSetup(1500, 10, 1);
  StreamingValuatorOptions options;
  options.k = 2;
  options.epsilon = 0.1;
  options.backend = GetParam();
  StreamingValuator valuator(setup.corpus, options);
  for (size_t j = 0; j < setup.queries.Size(); ++j) {
    valuator.ProcessQuery(setup.queries.features.Row(j), setup.queries.labels[j]);
  }
  EXPECT_EQ(valuator.QueriesSeen(), 10u);
  // Scaling features by 1/D_mean does not change neighbor *order*, so the
  // exact values of the original corpus are the reference.
  auto exact = ExactKnnShapley(setup.corpus, setup.queries, 2);
  double slack = GetParam() == RetrievalBackend::kLsh ? 0.05 : 1e-9;
  EXPECT_LE(MaxAbsDifference(valuator.Values(), exact), options.epsilon + slack);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::Values(RetrievalBackend::kBruteForce,
                                           RetrievalBackend::kKdTree,
                                           RetrievalBackend::kLsh));

TEST(StreamingValuatorTest, ExactBackendsMatchBatchTruncated) {
  auto setup = MakeSetup(800, 6, 2);
  const int k = 1;
  const double eps = 0.2;
  auto batch = TruncatedKnnShapley(setup.corpus, setup.queries, k, eps);
  for (auto backend : {RetrievalBackend::kBruteForce, RetrievalBackend::kKdTree}) {
    StreamingValuatorOptions options;
    options.k = k;
    options.epsilon = eps;
    options.backend = backend;
    StreamingValuator valuator(setup.corpus, options);
    for (size_t j = 0; j < setup.queries.Size(); ++j) {
      valuator.ProcessQuery(setup.queries.features.Row(j),
                            setup.queries.labels[j]);
    }
    testing_util::ExpectVectorNear(valuator.Values(), batch, 1e-9);
  }
}

TEST(StreamingValuatorTest, TouchesAtMostKStarPointsPerQuery) {
  auto setup = MakeSetup(500, 3, 3);
  StreamingValuatorOptions options;
  options.k = 1;
  options.epsilon = 0.25;  // K* = 4
  options.backend = RetrievalBackend::kBruteForce;
  StreamingValuator valuator(setup.corpus, options);
  EXPECT_EQ(valuator.KStarDepth(), 4);
  for (size_t j = 0; j < setup.queries.Size(); ++j) {
    size_t touched = valuator.ProcessQuery(setup.queries.features.Row(j),
                                           setup.queries.labels[j]);
    EXPECT_LE(touched, 4u);
  }
}

TEST(StreamingValuatorTest, RunningMeanMatchesPrefixBatch) {
  // After q queries the running values must equal the batch valuation of
  // exactly those q queries (additivity).
  auto setup = MakeSetup(600, 5, 4);
  StreamingValuatorOptions options;
  options.k = 2;
  options.epsilon = 0.1;
  options.backend = RetrievalBackend::kBruteForce;
  StreamingValuator valuator(setup.corpus, options);
  for (size_t q = 0; q < setup.queries.Size(); ++q) {
    valuator.ProcessQuery(setup.queries.features.Row(q), setup.queries.labels[q]);
    std::vector<int> prefix_rows;
    for (size_t j = 0; j <= q; ++j) prefix_rows.push_back(static_cast<int>(j));
    Dataset prefix = setup.queries.Subset(prefix_rows);
    auto batch = TruncatedKnnShapley(setup.corpus, prefix, 2, 0.1);
    testing_util::ExpectVectorNear(valuator.Values(), batch, 1e-9);
  }
}

TEST(StreamingValuatorTest, ContrastEstimatePositive) {
  auto setup = MakeSetup(400, 2, 5);
  StreamingValuatorOptions options;
  options.backend = RetrievalBackend::kLsh;
  StreamingValuator valuator(setup.corpus, options);
  EXPECT_GT(valuator.Contrast(), 1.0);
  ASSERT_NE(valuator.LshConfiguration(), nullptr);
  EXPECT_GE(valuator.LshConfiguration()->num_tables, 1u);
}

}  // namespace
}  // namespace knnshap
