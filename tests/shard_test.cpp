// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Shard subsystem coverage (src/shard/): the planner must produce
// balanced, block-aligned, content-addressed partitions; a mutation must
// invalidate exactly the shards whose blocks were touched; in-process
// workers must reproduce the global selection restricted to their rows;
// and — the headline contract — sharded serving must answer byte-for-byte
// identically to the unsharded pipeline for every supported method, on
// tie-heavy corpora included. Failure paths: a worker command that cannot
// spawn yields a structured internal error, and the `candidates` data
// plane rejects stale fingerprints and misaligned ranges.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dataset/dataset.h"
#include "knn/distance_kernel.h"
#include "knn/selection.h"
#include "serve/pipeline.h"
#include "shard/shard_planner.h"
#include "shard/shard_worker.h"
#include "test_util.h"
#include "util/fingerprint.h"
#include "util/json.h"
#include "util/random.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;
using testing_util::SingleQuery;

// ---------------------------------------------------------------------------
// Planner properties.

// Shards' block counts under a plan; row_begin is always aligned, so the
// count is a simple ceiling division.
size_t BlocksOf(const ShardRange& shard, size_t block_rows) {
  return (shard.Rows() + block_rows - 1) / block_rows;
}

TEST(ShardPlannerTest, PartitionsAlignedAndBalanced) {
  const size_t kBlockRows = 4;
  Dataset data = RandomClassDataset(37, 3, 4, 1);  // 10 blocks, ragged tail
  CorpusDigests digests = ComputeCorpusDigests(data, kBlockRows);
  ASSERT_EQ(digests.NumBlocks(), 10u);

  for (size_t shard_count : {1u, 2u, 3u, 7u, 10u, 25u}) {
    std::vector<ShardRange> plan = PlanShards(digests, shard_count);
    // Clamped to the block count, never an empty shard.
    EXPECT_EQ(plan.size(), std::min<size_t>(shard_count, 10u));

    // The ranges partition [0, rows) contiguously, block-aligned.
    size_t cursor = 0;
    size_t min_blocks = digests.NumBlocks(), max_blocks = 0;
    for (const ShardRange& shard : plan) {
      EXPECT_EQ(shard.row_begin, cursor);
      EXPECT_LT(shard.row_begin, shard.row_end);
      EXPECT_EQ(shard.row_begin % kBlockRows, 0u);
      if (shard.row_end != data.Size()) {
        EXPECT_EQ(shard.row_end % kBlockRows, 0u);
      }
      const size_t blocks = BlocksOf(shard, kBlockRows);
      min_blocks = std::min(min_blocks, blocks);
      max_blocks = std::max(max_blocks, blocks);
      cursor = shard.row_end;
    }
    EXPECT_EQ(cursor, data.Size());
    // Balanced at block granularity: floor or ceil of blocks/shards.
    EXPECT_LE(max_blocks - min_blocks, 1u);

    // Plans are deterministic, fingerprints included.
    EXPECT_EQ(plan, PlanShards(digests, shard_count));
  }

  // Degenerate count plans as one shard.
  EXPECT_EQ(PlanShards(digests, 0).size(), 1u);
}

TEST(ShardPlannerTest, MutationInvalidatesOnlyTouchedShard) {
  const size_t kBlockRows = 4;
  Dataset data = RandomClassDataset(12, 2, 3, 5);  // exactly 3 blocks
  CorpusDigests before = ComputeCorpusDigests(data, kBlockRows);
  std::vector<ShardRange> plan_before = PlanShards(before, 3);
  ASSERT_EQ(plan_before.size(), 3u);

  // Mutate one feature in row 5 — block 1, the middle shard.
  data.features.At(5, 1) += 1.0f;
  CorpusDigests after = ComputeCorpusDigests(data, kBlockRows);
  std::vector<ShardRange> plan_after = PlanShards(after, 3);
  ASSERT_EQ(plan_after.size(), 3u);

  EXPECT_EQ(plan_before[0].fingerprint, plan_after[0].fingerprint);
  EXPECT_NE(plan_before[1].fingerprint, plan_after[1].fingerprint);
  EXPECT_EQ(plan_before[2].fingerprint, plan_after[2].fingerprint);
  // Ranges themselves are shape-determined and unchanged.
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(plan_before[s].row_begin, plan_after[s].row_begin);
    EXPECT_EQ(plan_before[s].row_end, plan_after[s].row_end);
  }
}

TEST(ShardPlannerTest, FingerprintsAreRangeAndShapeAddressed) {
  const size_t kBlockRows = 4;
  Dataset data = RandomClassDataset(16, 2, 3, 9);
  CorpusDigests digests = ComputeCorpusDigests(data, kBlockRows);

  // Distinct ranges of the same corpus get distinct fingerprints.
  EXPECT_NE(ShardFingerprint(digests, 0, 8), ShardFingerprint(digests, 8, 16));
  // And the fingerprint is positional: the same block digests at a
  // different offset are a different shard.
  EXPECT_NE(ShardFingerprint(digests, 0, 4), ShardFingerprint(digests, 4, 8));
  // Recomputing digests from identical bytes reproduces the fingerprint.
  CorpusDigests again = ComputeCorpusDigests(data, kBlockRows);
  EXPECT_EQ(ShardFingerprint(digests, 0, 8), ShardFingerprint(again, 0, 8));
}

// ---------------------------------------------------------------------------
// Worker + merge: the restriction/merge identity on real distances.

TEST(ShardWorkerTest, InProcessRunsMergeToGlobalSelection) {
  const size_t kBlockRows = 16;
  Dataset data = RandomClassDataset(100, 3, 6, 21);
  Dataset query = SingleQuery(6, 22);
  CorpusDigests digests = ComputeCorpusDigests(data, kBlockRows);

  for (Metric metric : {Metric::kL2, Metric::kCosine}) {
    const CorpusNorms norms = NormsForMetric(data.features, metric);
    std::vector<double> expected_dists(data.Size());
    ComputeDistances(data.features, query.features.Row(0), metric, &norms,
                     expected_dists);

    for (size_t shard_count : {1u, 3u, 4u, 7u}) {
      std::vector<ShardRange> plan = PlanShards(digests, shard_count);
      std::vector<double> dists(data.Size());
      std::vector<std::vector<int>> runs(plan.size());
      for (size_t r : {0u, 1u, 5u, 50u, 100u}) {
        for (size_t s = 0; s < plan.size(); ++s) {
          InProcessShardWorker worker(plan[s], &data, &norms, metric);
          ASSERT_TRUE(worker.Candidates(query.features.Row(0), r, dists,
                                        &runs[s]));
          // Each run is the shard's exact top-min(r, Rows()), global
          // indices inside the shard's range.
          EXPECT_EQ(runs[s].size(), std::min(r, plan[s].Rows()));
          for (int index : runs[s]) {
            EXPECT_GE(static_cast<size_t>(index), plan[s].row_begin);
            EXPECT_LT(static_cast<size_t>(index), plan[s].row_end);
          }
        }
        // The shards collectively filled the global distance buffer
        // bit-identically to the unsharded kernel call.
        EXPECT_EQ(dists, expected_dists);

        // Merging the runs reproduces the global top-r exactly.
        std::vector<int> merged, expected_order;
        MergeSortedCandidateRuns(dists, runs, r, &merged);
        PartialArgsortDistances(expected_dists, r, &expected_order);
        EXPECT_EQ(merged, expected_order);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Serve-level byte equivalence: sharded pipelines vs the unsharded one.

std::string RowsJson(size_t n, size_t dim, int num_classes, uint64_t seed) {
  Rng rng(seed);
  std::string out = "[";
  for (size_t r = 0; r < n; ++r) {
    if (r > 0) out += ",";
    out += "[";
    for (size_t d = 0; d < dim; ++d) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4f,", rng.NextGaussian());
      out += buf;
    }
    out += std::to_string(rng.NextIndex(static_cast<uint64_t>(num_classes)));
    out += "]";
  }
  out += "]";
  return out;
}

// Rows quantized to multiples of 0.5 in two dimensions: with 600 rows over
// a handful of cells, every query distance collides with dozens of others,
// exercising the cross-shard boundary-tie merge.
std::string TieRowsJson(size_t n, int num_classes, uint64_t seed) {
  Rng rng(seed);
  std::string out = "[";
  for (size_t r = 0; r < n; ++r) {
    if (r > 0) out += ",";
    char buf[64];
    std::snprintf(buf, sizeof buf, "[%.1f,%.1f,%llu]",
                  0.5 * static_cast<double>(rng.NextIndex(5)),
                  0.5 * static_cast<double>(rng.NextIndex(5)),
                  static_cast<unsigned long long>(
                      rng.NextIndex(static_cast<uint64_t>(num_classes))));
    out += buf;
  }
  out += "]";
  return out;
}

std::unique_ptr<RequestPipeline> MakePipeline(int shards) {
  PipelineOptions options;
  options.emit_timing = false;
  options.shards = shards;
  return std::make_unique<RequestPipeline>(options);
}

std::string Answer(RequestPipeline& pipeline, const std::string& line) {
  JsonParseResult parsed = ParseJson(line);
  EXPECT_TRUE(parsed.ok()) << parsed.error << " in " << line;
  return pipeline.HandleSync(parsed.value).Dump();
}

// The session every topology must answer identically: two corpora (one
// Gaussian, one tie-heavy), multi-query batches, full and truncated
// variants of every sharded method, plus methods the shard router does
// not support (they fall back to the unsharded valuator inside the same
// server and must also agree).
std::vector<std::string> EquivalenceSession(uint64_t seed) {
  std::vector<std::string> lines;
  lines.push_back(R"({"op":"load","name":"train","rows":)" +
                  RowsJson(600, 4, 3, seed) + R"(,"target":"label"})");
  lines.push_back(R"({"op":"load","name":"ties","rows":)" +
                  TieRowsJson(600, 3, seed + 1) + R"(,"target":"label"})");
  lines.push_back(R"({"op":"load","name":"q","rows":)" +
                  RowsJson(3, 4, 3, seed + 2) + R"(,"target":"label"})");
  lines.push_back(R"({"op":"load","name":"qt","rows":)" +
                  TieRowsJson(2, 3, seed + 3) + R"(,"target":"label"})");
  for (const char* train : {"train", "ties"}) {
    const char* test = train[0] == 't' && train[1] == 'r' ? "q" : "qt";
    for (const char* extra :
         {"", R"(,"approx_error":0.2)", R"(,"approx_error":0.01)"}) {
      lines.push_back(std::string(R"({"op":"value","train":")") + train +
                      R"(","test":")" + test +
                      R"(","method":"exact","k":3)" + extra + "}");
      lines.push_back(std::string(R"({"op":"value","train":")") + train +
                      R"(","test":")" + test +
                      R"(","method":"exact-corrected","k":3)" + extra + "}");
    }
    lines.push_back(std::string(R"({"op":"value","train":")") + train +
                    R"(","test":")" + test +
                    R"(","method":"weighted-fast","k":2,"kernel":"inverse"})");
    // Routed through the shard fan-out since the socket-transport PR
    // (depth min(K*, N), then the same truncated recursion).
    lines.push_back(std::string(R"({"op":"value","train":")") + train +
                    R"(","test":")" + test +
                    R"(","method":"truncated","k":3,"epsilon":0.1})");
    // Genuinely unsupported by the router (randomized retrieval): must
    // fall back to the unsharded valuator inside the same server and
    // still agree, seed pinned.
    lines.push_back(std::string(R"({"op":"value","train":")") + train +
                    R"(","test":")" + test +
                    R"(","method":"lsh","k":3,"epsilon":0.5,"delta":0.2,"seed":7})");
  }
  return lines;
}

TEST(ShardEquivalenceTest, ShardedResponsesAreByteIdentical) {
  const std::vector<std::string> session = EquivalenceSession(31);

  std::unique_ptr<RequestPipeline> baseline = MakePipeline(1);
  std::vector<std::string> expected;
  for (const std::string& line : session) {
    expected.push_back(Answer(*baseline, line));
  }

  // 600 rows = 3 fingerprint blocks, so 8 planned shards clamp to 3 —
  // the clamp path must be equivalence-preserving too.
  for (int shards : {2, 3, 8}) {
    std::unique_ptr<RequestPipeline> sharded = MakePipeline(shards);
    for (size_t i = 0; i < session.size(); ++i) {
      EXPECT_EQ(Answer(*sharded, session[i]), expected[i])
          << "shards=" << shards << " request: " << session[i];
    }
  }
}

TEST(ShardEquivalenceTest, GoldenShardSessionReproduces) {
  // The session/golden pair the CI shard smoke pipes through the real
  // binary on all three topologies; here the unsharded and thread-mode
  // pipelines replay it in-process (process mode needs the binary, so CI
  // owns that arm). Reference kernel pinned, as for the main golden.
  const std::string dir = KNNSHAP_TEST_DATA_DIR;
  std::ifstream session_file(dir + "/serve_shard_session.jsonl");
  std::ifstream golden_file(dir + "/serve_shard_golden.jsonl");
  ASSERT_TRUE(session_file.good() && golden_file.good());
  std::vector<std::string> session, golden;
  std::string line;
  while (std::getline(session_file, line)) session.push_back(line);
  while (std::getline(golden_file, line)) golden.push_back(line);
  ASSERT_EQ(session.size(), golden.size());

  SetKernelOverride(KernelKind::kReference);
  for (int shards : {1, 3}) {
    std::unique_ptr<RequestPipeline> pipeline = MakePipeline(shards);
    for (size_t i = 0; i < session.size(); ++i) {
      EXPECT_EQ(Answer(*pipeline, session[i]), golden[i])
          << "shards=" << shards << " line " << (i + 1);
    }
  }
  SetKernelOverride(KernelKind::kAuto);
}

TEST(ShardEquivalenceTest, MutationsKeepShardedAndUnshardedInLockstep) {
  // Interleave value traffic with mutations: every append/remove rehashes
  // blocks, replans shards on the next fit, and must keep answers
  // identical to the unsharded server.
  std::vector<std::string> session;
  session.push_back(R"({"op":"load","name":"c","rows":)" +
                    RowsJson(600, 3, 2, 41) + R"(,"target":"label"})");
  session.push_back(R"({"op":"load","name":"q","rows":)" +
                    RowsJson(2, 3, 2, 42) + R"(,"target":"label"})");
  const std::string value =
      R"({"op":"value","train":"c","test":"q","method":"exact","k":3})";
  session.push_back(value);
  session.push_back(R"({"op":"append","name":"c","rows":)" +
                    RowsJson(5, 3, 2, 43) + "}");
  session.push_back(value);
  session.push_back(R"({"op":"remove","name":"c","row":100})");
  session.push_back(value);
  session.push_back(value);  // repeat: served from the result cache

  std::unique_ptr<RequestPipeline> baseline = MakePipeline(1);
  std::unique_ptr<RequestPipeline> sharded = MakePipeline(3);
  for (const std::string& line : session) {
    EXPECT_EQ(Answer(*sharded, line), Answer(*baseline, line))
        << "request: " << line;
  }
}

// ---------------------------------------------------------------------------
// Fit sharing: concurrent identical requests fit the sharded valuator once.

TEST(ShardServeTest, ConcurrentRequestsFitOnce) {
  std::unique_ptr<RequestPipeline> pipeline = MakePipeline(3);
  Answer(*pipeline, R"({"op":"load","name":"c","rows":)" +
                        RowsJson(600, 3, 2, 51) + R"(,"target":"label"})");
  Answer(*pipeline, R"({"op":"load","name":"q","rows":)" +
                        RowsJson(1, 3, 2, 52) + R"(,"target":"label"})");
  ASSERT_EQ(pipeline->Engine().FittedCount(), 0u);

  const std::string line =
      R"({"op":"value","train":"c","test":"q","method":"exact","k":3,"cache":false})";
  std::vector<std::string> responses(6);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < responses.size(); ++t) {
    threads.emplace_back(
        [&, t] { responses[t] = Answer(*pipeline, line); });
  }
  for (std::thread& thread : threads) thread.join();

  // One fitted router (per-corpus fit lock), six identical answers.
  EXPECT_EQ(pipeline->Engine().FittedCount(), 1u);
  for (const std::string& response : responses) {
    EXPECT_EQ(response, responses[0]);
  }
}

// ---------------------------------------------------------------------------
// Failure paths.

TEST(ShardServeTest, UnspawnableWorkerCommandIsAStructuredError) {
  PipelineOptions options;
  options.emit_timing = false;
  options.shards = 2;
  options.shard_process = true;
  // /bin/false exits without speaking the protocol: the spawn-time load
  // handshake fails and the engine answers internal, not a crash.
  options.shard_worker_command = {"/bin/false"};
  RequestPipeline pipeline(options);

  Answer(pipeline, R"({"op":"load","name":"c","rows":)" +
                       RowsJson(600, 3, 2, 61) + R"(,"target":"label"})");
  Answer(pipeline, R"({"op":"load","name":"q","rows":)" +
                       RowsJson(1, 3, 2, 62) + R"(,"target":"label"})");
  JsonValue response = pipeline.HandleSync(
      ParseJson(
          R"({"op":"value","train":"c","test":"q","method":"exact","k":3})")
          .value);
  EXPECT_FALSE(response.Get("ok").AsBool(true));
  EXPECT_EQ(response.Get("code").AsString(), "internal");
  // The failed fit was not retained.
  EXPECT_EQ(pipeline.Engine().FittedCount(), 0u);
}

TEST(ShardServeTest, TopologyStatsGatedOnSharding) {
  std::unique_ptr<RequestPipeline> unsharded = MakePipeline(1);
  Answer(*unsharded, R"({"op":"load","name":"c","rows":)" +
                         RowsJson(600, 3, 2, 71) + R"(,"target":"label"})");
  JsonValue flat = unsharded->HandleSync(ParseJson(R"({"op":"stats"})").value);
  EXPECT_FALSE(flat.Has("topology"));

  std::unique_ptr<RequestPipeline> sharded = MakePipeline(3);
  Answer(*sharded, R"({"op":"load","name":"c","rows":)" +
                       RowsJson(600, 3, 2, 71) + R"(,"target":"label"})");
  JsonValue stats = sharded->HandleSync(ParseJson(R"({"op":"stats"})").value);
  ASSERT_TRUE(stats.Has("topology"));
  const JsonValue& topology = stats.Get("topology");
  EXPECT_EQ(topology.Get("shards").AsNumber(), 3.0);
  EXPECT_EQ(topology.Get("workers").AsString(), "thread");
  const JsonValue& plan = topology.Get("plans").Get("c");
  ASSERT_TRUE(plan.IsArray());
  ASSERT_EQ(plan.Items().size(), 3u);
  size_t cursor = 0;
  for (const JsonValue& shard : plan.Items()) {
    EXPECT_EQ(shard.Get("row_begin").AsNumber(), static_cast<double>(cursor));
    cursor = static_cast<size_t>(shard.Get("row_end").AsNumber());
    EXPECT_EQ(shard.Get("fingerprint").AsString().substr(0, 2), "0x");
  }
  EXPECT_EQ(cursor, 600u);
}

// ---------------------------------------------------------------------------
// The `candidates` data plane (what a worker process serves its router).

class CandidatesOpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pipeline_ = MakePipeline(1);
    Answer(*pipeline_, R"({"op":"load","name":"c","rows":)" +
                           RowsJson(600, 3, 2, 81) + R"(,"target":"label"})");
    snapshot_ = pipeline_->Store().Get("c");
    ASSERT_TRUE(snapshot_.has_value());
  }

  std::string Fingerprint(size_t row_begin, size_t row_end) const {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(ShardFingerprint(
                      *snapshot_->digests, row_begin, row_end)));
    return buf;
  }

  static std::string QueryJson(size_t dim, uint64_t seed) {
    Rng rng(seed);
    std::string out = "[";
    for (size_t d = 0; d < dim; ++d) {
      if (d > 0) out += ",";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4f", rng.NextGaussian());
      out += buf;
    }
    return out + "]";
  }

  JsonValue Candidates(const std::string& fields) {
    return pipeline_->HandleSync(
        ParseJson(R"({"op":"candidates","train":"c","metric":"l2")" + fields +
                  "}")
            .value);
  }

  std::unique_ptr<RequestPipeline> pipeline_;
  std::optional<CorpusSnapshot> snapshot_;
};

TEST_F(CandidatesOpTest, AnswersTheShardRestrictedSelection) {
  const size_t kBegin = 256, kEnd = 512, kR = 7;
  JsonValue response = Candidates(
      R"(,"r":7,"row_begin":256,"row_end":512,"fingerprint":")" +
      Fingerprint(kBegin, kEnd) + R"(","query":)" + QueryJson(3, 91));
  ASSERT_TRUE(response.Get("ok").AsBool(false)) << response.Dump();

  // Reproduce the expected run directly over the snapshot, parsing the
  // query text back the same way the server does (bit-for-bit floats).
  const Dataset& data = *snapshot_->data;
  std::vector<float> query(3);
  JsonValue parsed_query = ParseJson(QueryJson(3, 91)).value;
  for (size_t d = 0; d < 3; ++d) {
    query[d] = static_cast<float>(parsed_query.Items()[d].AsNumber());
  }
  std::vector<double> slice(kEnd - kBegin);
  ComputeDistancesRange(data.features, query, Metric::kL2, nullptr, kBegin,
                        kEnd, slice);
  std::vector<int> local;
  PartialArgsortDistances(slice, kR, &local);

  const auto& indices = response.Get("indices").Items();
  const auto& dists = response.Get("dists").Items();
  ASSERT_EQ(indices.size(), kR);
  ASSERT_EQ(dists.size(), kR);
  for (size_t i = 0; i < kR; ++i) {
    EXPECT_EQ(indices[i].AsNumber(),
              static_cast<double>(local[i]) + static_cast<double>(kBegin));
    EXPECT_EQ(dists[i].AsNumber(), slice[static_cast<size_t>(local[i])]);
  }
}

TEST_F(CandidatesOpTest, RejectsStaleFingerprint) {
  JsonValue response = Candidates(
      R"(,"r":5,"row_begin":256,"row_end":512,"fingerprint":"0x00000000deadbeef","query":)" +
      QueryJson(3, 92));
  EXPECT_FALSE(response.Get("ok").AsBool(true));
  EXPECT_EQ(response.Get("code").AsString(), "failed_precondition");
}

TEST_F(CandidatesOpTest, RejectsMisalignedRange) {
  JsonValue response = Candidates(
      R"(,"r":5,"row_begin":100,"row_end":512,"fingerprint":")" +
      Fingerprint(0, 512) + R"(","query":)" + QueryJson(3, 93));
  EXPECT_FALSE(response.Get("ok").AsBool(true));
  EXPECT_EQ(response.Get("code").AsString(), "invalid_argument");
}

TEST_F(CandidatesOpTest, RejectsOutOfRangeRows) {
  JsonValue response = Candidates(
      R"(,"r":5,"row_begin":512,"row_end":1024,"fingerprint":")" +
      Fingerprint(256, 512) + R"(","query":)" + QueryJson(3, 94));
  EXPECT_FALSE(response.Get("ok").AsBool(true));
  EXPECT_EQ(response.Get("code").AsString(), "invalid_argument");
}

}  // namespace
}  // namespace knnshap
