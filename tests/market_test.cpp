// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include <gtest/gtest.h>

#include <numeric>

#include "core/exact_knn_shapley.h"
#include "core/utility.h"
#include "market/payment.h"
#include "market/valuation_report.h"
#include "test_util.h"

namespace knnshap {
namespace {

using testing_util::RandomClassDataset;

TEST(PaymentTest, AffineMappingScalesAndShifts) {
  std::vector<double> sv = {0.1, 0.3, 0.6};
  AffineRevenueModel model;
  model.slope = 100.0;
  model.intercept = 30.0;
  auto allocation = AllocateRevenue(sv, model);
  ASSERT_EQ(allocation.payments.size(), 3u);
  EXPECT_NEAR(allocation.payments[0], 10.0 + 10.0, 1e-12);
  EXPECT_NEAR(allocation.payments[1], 30.0 + 10.0, 1e-12);
  EXPECT_NEAR(allocation.payments[2], 60.0 + 10.0, 1e-12);
  EXPECT_NEAR(allocation.total, 130.0, 1e-12);
}

TEST(PaymentTest, GroupRationalityResidualIsZeroForShapley) {
  // Payments derived from exact KNN SVs satisfy R-group-rationality.
  Dataset train = RandomClassDataset(20, 2, 3, 1);
  Dataset test = RandomClassDataset(4, 2, 3, 2);
  auto sv = ExactKnnShapley(train, test, 3, false);
  AffineRevenueModel model;
  model.slope = 250.0;
  model.intercept = 75.0;
  auto allocation = AllocateRevenue(sv, model);
  KnnSubsetUtility utility(&train, &test, 3, KnnTask::kClassification);
  double residual = GroupRationalityResidual(allocation, utility.GrandValue(),
                                             /*empty_utility=*/0.0, model);
  EXPECT_NEAR(residual, 0.0, 1e-7);
}

TEST(ReportTest, TopAndBottomRankings) {
  std::vector<double> values = {0.5, -0.2, 0.9, 0.0, 0.9};
  auto top = TopValued(values, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].index, 2);  // tie broken by index
  EXPECT_EQ(top[1].index, 4);
  auto bottom = BottomValued(values, 1);
  EXPECT_EQ(bottom[0].index, 1);
}

TEST(ReportTest, SummaryStatistics) {
  std::vector<double> values = {1.0, -1.0, 3.0, -2.0};
  auto summary = Summarize(values);
  EXPECT_DOUBLE_EQ(summary.total, 1.0);
  EXPECT_DOUBLE_EQ(summary.mean, 0.25);
  EXPECT_DOUBLE_EQ(summary.min, -2.0);
  EXPECT_DOUBLE_EQ(summary.max, 3.0);
  EXPECT_DOUBLE_EQ(summary.fraction_negative, 0.5);
}

TEST(ReportTest, GroupTotalsSumByGroup) {
  std::vector<double> values = {1, 2, 3, 4};
  std::vector<int> groups = {0, 1, 0, 1};
  auto totals = GroupTotals(values, groups, 2);
  EXPECT_DOUBLE_EQ(totals[0], 4.0);
  EXPECT_DOUBLE_EQ(totals[1], 6.0);
}

TEST(ReportTest, FormatRankingContainsEntries) {
  auto text = FormatRanking({{3, 0.5}, {1, 0.25}}, "top points");
  EXPECT_NE(text.find("top points"), std::string::npos);
  EXPECT_NE(text.find("point 3"), std::string::npos);
  EXPECT_NE(text.find("point 1"), std::string::npos);
}

TEST(ReportTest, RequestingMoreThanAvailableClamps) {
  std::vector<double> values = {1.0, 2.0};
  EXPECT_EQ(TopValued(values, 10).size(), 2u);
}

}  // namespace
}  // namespace knnshap
