// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// CSV export for benchmark series so figures can be re-plotted outside the
// binary.

#ifndef KNNSHAP_UTIL_CSV_H_
#define KNNSHAP_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace knnshap {

/// Buffered CSV writer. Construct with a path (empty path = disabled; all
/// calls become no-ops, which lets benches pass through an optional --csv
/// flag without branching).
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  bool Enabled() const { return enabled_; }

  /// Writes a header row once.
  void Header(const std::vector<std::string>& columns);

  /// Writes one data row; values are formatted with %.10g.
  void Row(const std::vector<double>& values);

  /// Writes one mixed row of preformatted cells.
  void RawRow(const std::vector<std::string>& cells);

 private:
  bool enabled_ = false;
  std::ofstream out_;
};

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_CSV_H_
