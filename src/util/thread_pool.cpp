// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace knnshap {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  const size_t num_blocks = std::min(count, NumThreads());
  if (num_blocks <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<size_t> remaining{num_blocks};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  const size_t block = (count + num_blocks - 1) / num_blocks;
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t begin = b * block;
    const size_t end = std::min(count, begin + block);
    Submit([&, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
}

void ThreadPool::ParallelForHelping(size_t count, std::function<void(size_t)> fn) {
  if (count == 0) return;
  if (count == 1 || NumThreads() == 0) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Shared state outlives this call via shared_ptr: a helper task that is
  // dequeued *after* the caller has drained the loop and returned must
  // still be able to observe next >= count and exit without touching
  // anything freed.
  struct State {
    std::function<void(size_t)> fn;
    size_t count;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  state->fn = std::move(fn);
  state->count = count;
  auto drain = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->count) return;
      s->fn(i);
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->count) {
        std::lock_guard<std::mutex> lock(s->mutex);
        s->cv.notify_all();
      }
    }
  };
  const size_t helpers = std::min(count - 1, NumThreads());
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state, drain] { drain(state); });
  }
  drain(state);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock,
                 [&] { return state->done.load(std::memory_order_acquire) ==
                              state->count; });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace knnshap
