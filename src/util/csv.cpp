// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "util/csv.h"

#include <cstdio>

namespace knnshap {

CsvWriter::CsvWriter(const std::string& path) {
  if (!path.empty()) {
    out_.open(path);
    enabled_ = out_.is_open();
  }
}

CsvWriter::~CsvWriter() {
  if (enabled_) out_.flush();
}

void CsvWriter::Header(const std::vector<std::string>& columns) {
  RawRow(columns);
}

void CsvWriter::Row(const std::vector<double>& values) {
  if (!enabled_) return;
  std::vector<std::string> cells;
  cells.reserve(values.size());
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    cells.emplace_back(buf);
  }
  RawRow(cells);
}

void CsvWriter::RawRow(const std::vector<std::string>& cells) {
  if (!enabled_) return;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

}  // namespace knnshap
