// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Bounded max-heap for maintaining the K nearest neighbors of a query while
// training points stream in. This is the data structure behind Algorithm 2
// (improved Monte Carlo) in the paper: inserting into the heap costs
// O(log K), so incrementally tracking the K-NN along a permutation costs
// O(N log K) instead of the O(N log N) full re-sort of the baseline.

#ifndef KNNSHAP_UTIL_BOUNDED_HEAP_H_
#define KNNSHAP_UTIL_BOUNDED_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/common.h"

namespace knnshap {

/// Keeps the `capacity` lexicographically smallest (key, payload) pairs
/// seen so far (a max-heap on the pair, so the root is the current K-th
/// nearest distance). Each entry carries a payload — typically a
/// training-point index — which doubles as the tie-break: ordering on the
/// full pair makes the retained set and SortedEntries() independent of
/// insertion order, so kd-tree, heap, and brute-force retrieval agree
/// exactly even on tie-heavy data. Payload must be less-than comparable.
template <typename Payload>
class BoundedMaxHeap {
 public:
  struct Entry {
    double key;
    Payload payload;
  };

  explicit BoundedMaxHeap(size_t capacity) : capacity_(capacity) {
    KNNSHAP_CHECK(capacity > 0, "heap capacity must be positive");
    entries_.reserve(capacity);
  }

  /// Offers (key, payload). Returns true iff the heap contents changed,
  /// i.e. the element entered the current top-K. This is exactly the
  /// "if H changes" test in Algorithm 2 of the paper.
  bool Push(double key, const Payload& payload) {
    if (entries_.size() < capacity_) {
      entries_.push_back({key, payload});
      std::push_heap(entries_.begin(), entries_.end(), Less);
      return true;
    }
    const Entry& root = entries_.front();
    if (key > root.key || (key == root.key && !(payload < root.payload))) {
      return false;
    }
    std::pop_heap(entries_.begin(), entries_.end(), Less);
    entries_.back() = {key, payload};
    std::push_heap(entries_.begin(), entries_.end(), Less);
    return true;
  }

  /// Largest key currently retained (the K-th nearest distance once full).
  double MaxKey() const {
    KNNSHAP_CHECK(!entries_.empty(), "heap is empty");
    return entries_.front().key;
  }

  bool Full() const { return entries_.size() == capacity_; }
  size_t Size() const { return entries_.size(); }
  size_t Capacity() const { return capacity_; }
  bool Empty() const { return entries_.empty(); }

  /// Unordered view of the retained entries.
  const std::vector<Entry>& Entries() const { return entries_; }

  /// Entries sorted ascending by (key, payload) — nearest first, ties
  /// broken by payload so equal-distance entries have a deterministic
  /// order. O(K log K).
  std::vector<Entry> SortedEntries() const {
    std::vector<Entry> sorted = entries_;
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry& a, const Entry& b) { return Less(a, b); });
    return sorted;
  }

  void Clear() { entries_.clear(); }

 private:
  static bool Less(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.payload < b.payload;
  }

  size_t capacity_;
  std::vector<Entry> entries_;
};

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_BOUNDED_HEAP_H_
