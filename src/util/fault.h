// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Deterministic fault injection for robustness testing.
//
// Fault points are named call sites ("cache_write", "fit", "dispatch",
// "snapshot", ...) that code under test interrogates with
// FaultRegistry::Global().ShouldFail("site"). The registry is configured
// once, from the KNNSHAP_FAULTS environment variable:
//
//   KNNSHAP_FAULTS=cache_write:after=3,fit:p=0.1,dispatch:after=0
//
//   site:after=N  fire on every call strictly after the first N
//                 (after=0 fires always; deterministic regardless of seed)
//   site:p=F      fire each call with probability F, drawn from a
//                 per-site RNG seeded by KNNSHAP_FAULTS_SEED (default 0)
//                 xor'd with the site name hash — a fixed seed gives a
//                 byte-reproducible fault sequence
//
// Cost when unset: Enabled() is one load of a plain bool set before
// main-adjacent code runs; every injection site is
//   if (FaultInjectionEnabled() && Fault("site")) { ...fail... }
// so production traffic pays a single never-taken branch per site. CI
// proves the compiled-but-unset arm byte-identical to the golden
// transcript.
//
// Tests reconfigure programmatically with Configure()/Reset() — the env
// variable is read once at first Global() use.

#ifndef KNNSHAP_UTIL_FAULT_H_
#define KNNSHAP_UTIL_FAULT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace knnshap {

/// Process-wide registry of armed fault points.
class FaultRegistry {
 public:
  /// The singleton, configured from KNNSHAP_FAULTS on first use.
  static FaultRegistry& Global();

  /// (Re)configure from a spec string ("site:after=N,site:p=F,...").
  /// An empty spec disarms everything. Returns false (and disarms) if the
  /// spec does not parse. `seed` feeds the per-site RNGs for p= entries.
  bool Configure(const std::string& spec, uint64_t seed = 0);

  /// Disarm all fault points.
  void Reset();

  /// True when any fault point is armed. Cheap (plain bool load);
  /// the fast-path guard at every injection site.
  bool enabled() const { return enabled_; }

  /// Should the fault at `site` fire on this call? Counts the call either
  /// way. Unarmed sites always answer false.
  bool ShouldFail(const std::string& site);

  /// Calls observed at `site` since configuration (test introspection).
  uint64_t CallCount(const std::string& site);

 private:
  struct Site {
    // after-mode: fire when calls_seen (pre-increment) >= threshold.
    bool has_after = false;
    uint64_t after = 0;
    // p-mode: fire with probability p using the xorshift state.
    bool has_p = false;
    double p = 0.0;
    uint64_t rng_state = 1;
    uint64_t calls = 0;
  };

  std::mutex mu_;
  std::unordered_map<std::string, Site> sites_;
  bool enabled_ = false;
};

/// Convenience fast-path guard: `if (FaultInjectionEnabled() && Fault("x"))`.
inline bool FaultInjectionEnabled() { return FaultRegistry::Global().enabled(); }

/// Slow path: asks the registry whether `site` fires now.
inline bool Fault(const std::string& site) {
  return FaultRegistry::Global().ShouldFail(site);
}

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_FAULT_H_
