// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "util/status.h"

namespace knnshap {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = std::string(StatusCodeName(code_)) + ": " + message_;
  if (!field_.empty()) out += " (field '" + field_ + "')";
  return out;
}

}  // namespace knnshap
