// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/common.h"

namespace knnshap {

void RunningMoments::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningMoments::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningMoments::StdDev() const { return std::sqrt(Variance()); }

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  RunningMoments m;
  for (double x : xs) m.Add(x);
  return m.Variance();
}

double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys) {
  KNNSHAP_CHECK(xs.size() == ys.size() && !xs.empty(), "length mismatch");
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx;
    double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> FractionalRanks(const std::vector<double>& xs) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average 1-based rank over the tie block [i, j].
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& xs, const std::vector<double>& ys) {
  KNNSHAP_CHECK(xs.size() == ys.size() && !xs.empty(), "length mismatch");
  return PearsonCorrelation(FractionalRanks(xs), FractionalRanks(ys));
}

double Quantile(std::vector<double> xs, double q) {
  KNNSHAP_CHECK(!xs.empty(), "quantile of empty vector");
  KNNSHAP_CHECK(q >= 0.0 && q <= 1.0, "quantile fraction out of range");
  std::sort(xs.begin(), xs.end());
  double pos = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double MaxAbsDifference(const std::vector<double>& a, const std::vector<double>& b) {
  KNNSHAP_CHECK(a.size() == b.size(), "length mismatch");
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) worst = std::max(worst, std::fabs(a[i] - b[i]));
  return worst;
}

}  // namespace knnshap
