// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// CancelToken — cooperative deadlines and cancellation for valuation work.
//
// A token is either plain (cancellable by hand, e.g. server shutdown) or
// deadline-bearing (expires when a steady_clock instant passes). The
// expensive loops — distance batches, argsort, the SV recursion, MC
// permutations, the wknn DP — poll the *thread-local active* token at
// block granularity via CancelRequested() and, when it fires, bail out
// early returning structurally valid (right-sized) placeholder results.
// No exceptions are thrown: worker threads in the pool must never unwind
// (ThreadPool::WorkerLoop would std::terminate), so cancellation is a
// flag the engine re-checks after the run, discarding the partial result
// and answering a structured deadline_exceeded Status instead.
//
// Cost model mirrors obs/trace.h: with no active token the poll is one
// thread-local load + branch; with a token that has already fired, the
// result is latched so later polls skip the clock read. Only a live
// deadline-bearing token pays a steady_clock read per poll, and polls
// sit at block granularity (hundreds-of-rows chunks), not per element —
// bench_serve's <1% warm-replay overhead gate covers the always-on cost.

#ifndef KNNSHAP_UTIL_CANCEL_H_
#define KNNSHAP_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace knnshap {

/// A cancellation source/view: manual Cancel() or a steady-clock deadline.
/// Expired() is safe to call concurrently from any number of threads.
class CancelToken {
 public:
  /// A token that never expires on its own (manual Cancel() only).
  CancelToken() = default;

  /// A token that expires `deadline_ms` milliseconds from construction.
  /// `deadline_ms <= 0` constructs an already-expired token (useful for
  /// deterministic deadline behavior: "deadline_ms":0 answers
  /// deadline_exceeded regardless of timing). The atomic latch makes the
  /// type non-copyable, hence a constructor rather than a factory.
  explicit CancelToken(int64_t deadline_ms)
      : has_deadline_(true),
        deadline_(std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms > 0 ? deadline_ms : 0)) {
    if (deadline_ms <= 0) fired_.store(true, std::memory_order_relaxed);
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Manual cancellation (server shutdown, client disconnect).
  void Cancel() const { fired_.store(true, std::memory_order_relaxed); }

  /// True once the deadline passed or Cancel() was called. Latches: after
  /// the first true result subsequent calls skip the clock read.
  bool Expired() const {
    if (fired_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_) return false;
    if (std::chrono::steady_clock::now() < deadline_) return false;
    fired_.store(true, std::memory_order_relaxed);
    return true;
  }

  bool has_deadline() const { return has_deadline_; }

  /// Milliseconds until the deadline, clamped at 0 once it has passed;
  /// -1 for a deadline-free token. The shard router forwards *remaining*
  /// budget (not the original deadline_ms) across the worker boundary, so
  /// a child token constructed from this value can never fire later than
  /// its parent — the parent's post-run Expired() check stays the
  /// authority on whether a partial result is discarded.
  int64_t RemainingMs() const {
    if (!has_deadline_) return -1;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline_) return 0;
    return std::chrono::duration_cast<std::chrono::milliseconds>(deadline_ - now)
        .count();
  }

  /// Seconds the clock now stands past the deadline (0 for deadline-free
  /// or unexpired tokens). Observability: the engine's cancellation
  /// overshoot histogram records this when a request is abandoned —
  /// block-granularity polling means a request overruns its deadline by
  /// up to one block of work, and this is that overrun, measured.
  double OvershootSeconds() const {
    if (!has_deadline_) return 0.0;
    const auto now = std::chrono::steady_clock::now();
    if (now < deadline_) return 0.0;
    return std::chrono::duration<double>(now - deadline_).count();
  }

 private:
  // Cancel()/Expired() are conceptually const observers of an external
  // event (time passing, a caller's decision); the latch is bookkeeping.
  mutable std::atomic<bool> fired_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

namespace internal {
extern thread_local const CancelToken* active_cancel;
}  // namespace internal

/// The calling thread's active token (deep-loop poll target), or nullptr.
inline const CancelToken* ActiveCancelToken() {
  return internal::active_cancel;
}

/// The poll the deep loops use: false when no token is active.
inline bool CancelRequested() {
  const CancelToken* token = internal::active_cancel;
  return token != nullptr && token->Expired();
}

/// RAII: makes `token` the calling thread's active token for the scope,
/// restoring the previous one on destruction (same idiom as
/// TraceActivation). Passing nullptr shields a scope from cancellation.
class CancelActivation {
 public:
  explicit CancelActivation(const CancelToken* token)
      : previous_(internal::active_cancel) {
    internal::active_cancel = token;
  }
  ~CancelActivation() { internal::active_cancel = previous_; }
  CancelActivation(const CancelActivation&) = delete;
  CancelActivation& operator=(const CancelActivation&) = delete;

 private:
  const CancelToken* previous_;
};

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_CANCEL_H_
