// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "util/binomial.h"

#include <cmath>
#include <limits>
#include <mutex>

#include "util/common.h"

namespace knnshap {

namespace {

// Grow-only cache of ln(n!). Guarded by a mutex; reads after warm-up are
// contention-free in practice because benches touch a fixed N range.
std::vector<double>& LogFactorialTable() {
  static std::vector<double> table = {0.0, 0.0};
  return table;
}
std::mutex table_mutex;

}  // namespace

double LogFactorial(int n) {
  KNNSHAP_CHECK(n >= 0, "factorial of negative number");
  std::lock_guard<std::mutex> lock(table_mutex);
  auto& table = LogFactorialTable();
  while (static_cast<int>(table.size()) <= n) {
    table.push_back(table.back() + std::log(static_cast<double>(table.size())));
  }
  return table[static_cast<size_t>(n)];
}

double LogChoose(int n, int k) {
  if (k < 0 || k > n || n < 0) return -std::numeric_limits<double>::infinity();
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double Choose(int n, int k) {
  double lc = LogChoose(n, k);
  if (lc == -std::numeric_limits<double>::infinity()) return 0.0;
  return std::exp(lc);
}

double ChooseRatio(int a, int b, int c, int d) {
  double num = LogChoose(a, b);
  double den = LogChoose(c, d);
  if (num == -std::numeric_limits<double>::infinity()) return 0.0;
  KNNSHAP_CHECK(den != -std::numeric_limits<double>::infinity(),
                "ChooseRatio denominator is zero");
  return std::exp(num - den);
}

double Theorem1InnerSum(int big_n, int big_k, int i) {
  KNNSHAP_CHECK(big_n >= 2 && i >= 1 && i <= big_n && big_k >= 1, "bad arguments");
  double total = 0.0;
  for (int k = 0; k <= big_n - 2; ++k) {
    double inner = 0.0;
    int m_max = std::min(big_k - 1, k);
    for (int m = 0; m <= m_max; ++m) {
      inner += std::exp(LogChoose(i - 1, m) + LogChoose(big_n - i - 1, k - m) -
                        LogChoose(big_n - 2, k));
    }
    total += inner;
  }
  return total;
}

}  // namespace knnshap
