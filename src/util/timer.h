// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Minimal wall-clock timer used by the benchmark harnesses.

#ifndef KNNSHAP_UTIL_TIMER_H_
#define KNNSHAP_UTIL_TIMER_H_

#include <chrono>

namespace knnshap {

/// Wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_TIMER_H_
