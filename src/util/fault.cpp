// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "util/fault.h"

#include <cstdlib>

namespace knnshap {
namespace {

// FNV-1a over the site name; mixed into the seed so distinct sites get
// decorrelated p= sequences under one KNNSHAP_FAULTS_SEED.
uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t XorShift(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = [] {
    auto* r = new FaultRegistry();
    const char* spec = std::getenv("KNNSHAP_FAULTS");
    if (spec != nullptr && spec[0] != '\0') {
      uint64_t seed = 0;
      const char* seed_env = std::getenv("KNNSHAP_FAULTS_SEED");
      if (seed_env != nullptr) seed = std::strtoull(seed_env, nullptr, 10);
      r->Configure(spec, seed);
    }
    return r;
  }();
  return *registry;
}

bool FaultRegistry::Configure(const std::string& spec, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  enabled_ = false;
  if (spec.empty()) return true;

  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      sites_.clear();
      return false;
    }
    const std::string site = entry.substr(0, colon);
    const std::string mode = entry.substr(colon + 1);
    Site& s = sites_[site];
    if (mode.rfind("after=", 0) == 0) {
      char* parse_end = nullptr;
      const std::string num = mode.substr(6);
      const uint64_t value = std::strtoull(num.c_str(), &parse_end, 10);
      if (num.empty() || parse_end == nullptr || *parse_end != '\0') {
        sites_.clear();
        return false;
      }
      s.has_after = true;
      s.after = value;
    } else if (mode.rfind("p=", 0) == 0) {
      char* parse_end = nullptr;
      const std::string num = mode.substr(2);
      const double value = std::strtod(num.c_str(), &parse_end);
      if (num.empty() || parse_end == nullptr || *parse_end != '\0' ||
          value < 0.0 || value > 1.0) {
        sites_.clear();
        return false;
      }
      s.has_p = true;
      s.p = value;
      uint64_t state = seed ^ HashName(site);
      if (state == 0) state = 0x9e3779b97f4a7c15ull;
      s.rng_state = state;
    } else {
      sites_.clear();
      return false;
    }
  }
  enabled_ = !sites_.empty();
  return true;
}

void FaultRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  enabled_ = false;
}

bool FaultRegistry::ShouldFail(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  Site& s = it->second;
  const uint64_t call = s.calls++;
  if (s.has_after && call >= s.after) return true;
  if (s.has_p && s.p > 0.0) {
    // 53-bit uniform in [0,1): deterministic given the seeded state.
    const double u = static_cast<double>(XorShift(&s.rng_state) >> 11) *
                     (1.0 / 9007199254740992.0);
    if (u < s.p) return true;
  }
  return false;
}

uint64_t FaultRegistry::CallCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.calls;
}

}  // namespace knnshap
