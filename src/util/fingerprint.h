// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Content fingerprints for cache keys. The valuation engine caches results
// and fitted retrieval structures by the *contents* of a dataset (not its
// address or name), so repeated valuations of the same corpus are served
// without recomputation while any mutation — one flipped label, one edited
// feature — invalidates every dependent entry.
//
// The fingerprint is *block-structured*: rows are grouped into fixed-size
// blocks, each block gets its own FNV-1a digest (features, labels and
// targets hashed separately), and the corpus fingerprint is an FNV-1a
// combination of the shape and the block digests. Two properties follow:
//
//   * DatasetFingerprint(data) — the full-rehash fallback — and an
//     incrementally maintained CorpusDigests always agree bit for bit,
//     because both reduce to the same block digests;
//   * appending a row only rehashes the trailing (possibly partial) block
//     plus the O(num_blocks) combine, not the whole matrix. The serve
//     layer's CorpusStore maintains digests this way, so the *fingerprint*
//     cost of a mutation is one block hash — and, more importantly, value
//     requests against a stored corpus reuse the maintained fingerprint
//     and never rehash the matrix at all. (The mutation itself still
//     copies the corpus — copy-on-write storage, not chunked storage.)
//
// FNV-1a (64-bit) is used: not cryptographic, but fast, dependency-free and
// stable across platforms for our fixed-width inputs.

#ifndef KNNSHAP_UTIL_FINGERPRINT_H_
#define KNNSHAP_UTIL_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace knnshap {

struct Dataset;

/// Streaming 64-bit FNV-1a hasher.
class Fnv64 {
 public:
  /// Absorbs `size` raw bytes.
  Fnv64& Update(const void* data, size_t size);

  /// Absorbs the bytes of a trivially-copyable value (ints, floats, enums).
  template <typename T>
  Fnv64& Add(const T& value) {
    return Update(&value, sizeof(T));
  }

  /// Absorbs a length-prefixed string (so "ab","c" != "a","bc").
  Fnv64& AddString(std::string_view s);

  /// Absorbs a length-prefixed span of trivially-copyable elements.
  template <typename T>
  Fnv64& AddSpan(std::span<const T> values) {
    Add(values.size());
    return Update(values.data(), values.size() * sizeof(T));
  }

  uint64_t Digest() const { return state_; }

 private:
  uint64_t state_ = 0xcbf29ce484222325ull;  // FNV offset basis.
};

/// Rows per fingerprint block. The canonical DatasetFingerprint is defined
/// over this block size; tests use smaller sizes to stress boundaries.
inline constexpr size_t kFingerprintBlockRows = 256;

/// Per-block digests of a dataset plus the shape needed to combine them.
/// Maintained incrementally by the serve layer's CorpusStore; recomputable
/// from scratch by ComputeCorpusDigests. Combined() is the corpus
/// fingerprint.
struct CorpusDigests {
  size_t rows = 0;
  size_t cols = 0;
  size_t block_rows = kFingerprintBlockRows;
  std::vector<uint64_t> feature_blocks;  ///< One digest per row block.
  std::vector<uint64_t> label_blocks;    ///< Empty when the data has no labels.
  std::vector<uint64_t> target_blocks;   ///< Empty when the data has no targets.

  size_t NumBlocks() const {
    return rows == 0 ? 0 : (rows + block_rows - 1) / block_rows;
  }

  /// The corpus fingerprint: FNV over shape + block digests. Depends on
  /// block_rows, so only digests built with the same block size compare.
  uint64_t Combined() const;
};

/// Digests of every block, computed from scratch (the fallback the
/// incremental path is verified against).
CorpusDigests ComputeCorpusDigests(const Dataset& data,
                                   size_t block_rows = kFingerprintBlockRows);

/// Recomputes the digests of every block that intersects rows
/// [first_row, data.Size()), in place; trailing stale blocks are dropped.
/// `digests` must describe `data`'s previous state with the same cols and
/// block_rows. After the call, *digests == ComputeCorpusDigests(data), but
/// only ceil((rows - first_row)/block_rows) + 1 blocks were rehashed.
void RehashBlocksFrom(const Dataset& data, size_t first_row, CorpusDigests* digests);

/// Fingerprint of a dataset's full contents: shape, feature bits, labels
/// and targets, via a full block-digest rehash. The name is deliberately
/// excluded — two datasets with equal contents are the same corpus for
/// valuation purposes.
uint64_t DatasetFingerprint(const Dataset& data);

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_FINGERPRINT_H_
