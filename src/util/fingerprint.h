// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Content fingerprints for cache keys. The valuation engine caches results
// and fitted retrieval structures by the *contents* of a dataset (not its
// address or name), so repeated valuations of the same corpus are served
// without recomputation while any mutation — one flipped label, one edited
// feature — invalidates every dependent entry.
//
// FNV-1a (64-bit) is used: not cryptographic, but fast, dependency-free and
// stable across platforms for our fixed-width inputs.

#ifndef KNNSHAP_UTIL_FINGERPRINT_H_
#define KNNSHAP_UTIL_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace knnshap {

struct Dataset;

/// Streaming 64-bit FNV-1a hasher.
class Fnv64 {
 public:
  /// Absorbs `size` raw bytes.
  Fnv64& Update(const void* data, size_t size);

  /// Absorbs the bytes of a trivially-copyable value (ints, floats, enums).
  template <typename T>
  Fnv64& Add(const T& value) {
    return Update(&value, sizeof(T));
  }

  /// Absorbs a length-prefixed string (so "ab","c" != "a","bc").
  Fnv64& AddString(std::string_view s);

  /// Absorbs a length-prefixed span of trivially-copyable elements.
  template <typename T>
  Fnv64& AddSpan(std::span<const T> values) {
    Add(values.size());
    return Update(values.data(), values.size() * sizeof(T));
  }

  uint64_t Digest() const { return state_; }

 private:
  uint64_t state_ = 0xcbf29ce484222325ull;  // FNV offset basis.
};

/// Fingerprint of a dataset's full contents: shape, feature bits, labels
/// and targets. The name is deliberately excluded — two datasets with equal
/// contents are the same corpus for valuation purposes.
uint64_t DatasetFingerprint(const Dataset& data);

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_FINGERPRINT_H_
