// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Minimal TCP plumbing for the remote shard transport (src/shard): parse
// "host:port" endpoints, dial with a connect timeout, listen/accept, and
// adapt a connected fd to std::istream/std::ostream so the JSONL serve
// loop (serve/pipeline.h Run) can speak over a socket exactly as it does
// over stdin/stdout. POSIX sockets only — no third-party dependency.
//
// All functions report failures through a Status / error-string out
// parameter instead of throwing: the shard router treats every network
// failure as a health event (latch + failover), never as an exception.

#ifndef KNNSHAP_UTIL_NET_H_
#define KNNSHAP_UTIL_NET_H_

#include <cstddef>
#include <streambuf>
#include <string>

namespace knnshap {

/// A "host:port" pair. `host` may be a name ("localhost") or a numeric
/// IPv4/IPv6 address; resolution happens at dial/listen time.
struct Endpoint {
  std::string host;
  int port = 0;

  std::string ToString() const { return host + ":" + std::to_string(port); }
};

/// Parses "host:port" (or bare "port", host defaulting to `default_host`).
/// False with *error set on malformed input; port 0 is allowed for listen
/// (ephemeral) but rejected when `allow_port_zero` is false.
bool ParseEndpoint(const std::string& spec, Endpoint* out, std::string* error,
                   const std::string& default_host = "0.0.0.0",
                   bool allow_port_zero = false);

/// Connects to `endpoint` with a bounded connect timeout (non-blocking
/// connect + poll), then switches the socket back to blocking with
/// SO_RCVTIMEO/SO_SNDTIMEO set to `io_timeout_ms` (0 = no I/O timeout)
/// and TCP_NODELAY on (the protocol is latency-bound one-line exchanges).
/// Returns the connected fd, or -1 with *error set.
int DialTcp(const Endpoint& endpoint, int connect_timeout_ms, int io_timeout_ms,
            std::string* error);

/// Binds + listens on `endpoint` (SO_REUSEADDR so a restarted worker can
/// rebind its port immediately). Port 0 binds an ephemeral port — read it
/// back with BoundPort. Returns the listening fd, or -1 with *error set.
int ListenTcp(const Endpoint& endpoint, int backlog, std::string* error);

/// The locally bound port of a listening socket (getsockname), or -1.
int BoundPort(int listen_fd);

/// Accepts one connection. Returns the connected fd, or -1 with errno
/// preserved (EINTR is the graceful-shutdown path — the caller's signal
/// handler interrupted the blocking accept).
int AcceptTcp(int listen_fd);

/// Read-side streambuf over an fd (blocking reads; a socket's SO_RCVTIMEO
/// surfaces as EOF, which the serve loop treats as a disconnect).
class FdInBuf : public std::streambuf {
 public:
  explicit FdInBuf(int fd) : fd_(fd) { setg(buf_, buf_, buf_); }

 protected:
  int_type underflow() override;

 private:
  static constexpr size_t kSize = 1 << 16;
  int fd_;
  char buf_[kSize];
};

/// Write-side streambuf over an fd. sync() flushes; short writes retry.
class FdOutBuf : public std::streambuf {
 public:
  explicit FdOutBuf(int fd) : fd_(fd) { setp(buf_, buf_ + kSize); }

 protected:
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool FlushBuffer();

  static constexpr size_t kSize = 1 << 16;
  int fd_;
  char buf_[kSize];
};

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_NET_H_
