// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Minimal JSON value type, parser and serializer — just enough for the
// JSONL request/response protocol of knnshap_serve (flat objects, arrays of
// numbers, nested arrays for inline feature rows). No external dependency;
// the container image is intentionally kept lean.
//
// Deliberate simplifications: numbers are doubles (JSON's own model),
// object key order is preserved on write but duplicate keys keep the last
// value, and \uXXXX escapes outside the BMP-ASCII range are replaced with
// '?'. These never matter for the serve protocol.

#ifndef KNNSHAP_UTIL_JSON_H_
#define KNNSHAP_UTIL_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace knnshap {

/// A JSON value (null, bool, number, string, array or object).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double n) : type_(Type::kNumber), number_(n) {}
  explicit JsonValue(int n) : type_(Type::kNumber), number_(n) {}
  explicit JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(const char* s) : type_(Type::kString), string_(s) {}

  static JsonValue MakeArray() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue MakeObject() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type GetType() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsBool() const { return type_ == Type::kBool; }
  bool IsNumber() const { return type_ == Type::kNumber; }
  bool IsString() const { return type_ == Type::kString; }
  bool IsArray() const { return type_ == Type::kArray; }
  bool IsObject() const { return type_ == Type::kObject; }

  /// Typed accessors; defaults are returned on type mismatch so protocol
  /// handlers can express "field with fallback" in one call.
  bool AsBool(bool fallback = false) const { return IsBool() ? bool_ : fallback; }
  double AsNumber(double fallback = 0.0) const {
    return IsNumber() ? number_ : fallback;
  }
  const std::string& AsString() const { return string_; }

  std::vector<JsonValue>& Items() { return items_; }
  const std::vector<JsonValue>& Items() const { return items_; }

  /// Object field lookup; returns a shared null value when absent.
  const JsonValue& Get(const std::string& key) const;
  bool Has(const std::string& key) const;

  /// Object field assignment (converts this value to an object if needed).
  void Set(const std::string& key, JsonValue value);
  const std::vector<std::pair<std::string, JsonValue>>& Fields() const {
    return fields_;
  }

  /// Appends to an array (converts this value to an array if needed).
  void Append(JsonValue value);

  /// Serializes to a compact single-line string.
  std::string Dump() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                          // array
  std::vector<std::pair<std::string, JsonValue>> fields_;  // object
};

/// Result of a parse: the value plus an error message (empty on success).
struct JsonParseResult {
  JsonValue value;
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Parses one JSON document from `text`. Trailing non-whitespace is an
/// error (JSONL framing: exactly one document per line).
JsonParseResult ParseJson(const std::string& text);

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_JSON_H_
