// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "util/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace knnshap {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// getaddrinfo resolution shared by dial and listen.
struct ResolvedAddr {
  sockaddr_storage addr = {};
  socklen_t len = 0;
  int family = AF_INET;
};

bool Resolve(const Endpoint& endpoint, bool passive, ResolvedAddr* out,
             std::string* error) {
  addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  addrinfo* result = nullptr;
  const std::string port = std::to_string(endpoint.port);
  const int rc = getaddrinfo(endpoint.host.empty() ? nullptr : endpoint.host.c_str(),
                             port.c_str(), &hints, &result);
  if (rc != 0 || result == nullptr) {
    if (error != nullptr) {
      *error = "cannot resolve '" + endpoint.ToString() +
               "': " + gai_strerror(rc);
    }
    return false;
  }
  std::memcpy(&out->addr, result->ai_addr, result->ai_addrlen);
  out->len = static_cast<socklen_t>(result->ai_addrlen);
  out->family = result->ai_family;
  freeaddrinfo(result);
  return true;
}

void SetIoTimeout(int fd, int io_timeout_ms) {
  if (io_timeout_ms <= 0) return;
  timeval tv = {};
  tv.tv_sec = io_timeout_ms / 1000;
  tv.tv_usec = (io_timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

}  // namespace

bool ParseEndpoint(const std::string& spec, Endpoint* out, std::string* error,
                   const std::string& default_host, bool allow_port_zero) {
  std::string host = default_host;
  std::string port_text = spec;
  const size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    host = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
  }
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos) {
    if (error != nullptr) *error = "endpoint '" + spec + "': malformed port";
    return false;
  }
  const long port = std::strtol(port_text.c_str(), nullptr, 10);
  if (port > 65535 || (port == 0 && !allow_port_zero)) {
    if (error != nullptr) {
      *error = "endpoint '" + spec + "': port out of range";
    }
    return false;
  }
  out->host = host.empty() ? default_host : host;
  out->port = static_cast<int>(port);
  return true;
}

int DialTcp(const Endpoint& endpoint, int connect_timeout_ms, int io_timeout_ms,
            std::string* error) {
  ResolvedAddr addr;
  if (!Resolve(endpoint, /*passive=*/false, &addr, error)) return -1;
  const int fd = socket(addr.family, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = Errno("socket()");
    return -1;
  }
  // Non-blocking connect so the timeout is ours, not the kernel's (which
  // can be minutes against a black-holed host).
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr.addr), addr.len);
  if (rc != 0 && errno != EINPROGRESS) {
    if (error != nullptr) *error = Errno("connect to " + endpoint.ToString());
    close(fd);
    return -1;
  }
  if (rc != 0) {
    pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    do {
      rc = poll(&pfd, 1, connect_timeout_ms <= 0 ? -1 : connect_timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      if (error != nullptr) {
        *error = "connect to " + endpoint.ToString() +
                 (rc == 0 ? ": timed out" : Errno(""));
      }
      close(fd);
      return -1;
    }
    int so_error = 0;
    socklen_t len = sizeof so_error;
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      if (error != nullptr) {
        *error = "connect to " + endpoint.ToString() + ": " +
                 std::strerror(so_error);
      }
      close(fd);
      return -1;
    }
  }
  fcntl(fd, F_SETFL, flags);  // back to blocking for the line protocol
  SetIoTimeout(fd, io_timeout_ms);
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  // A shard connection must never outlive an exec (same hygiene as the
  // pipe transport's FD_CLOEXEC: a forked sibling holding this fd open
  // would keep the worker's peer alive past our close).
  fcntl(fd, F_SETFD, FD_CLOEXEC);
  return fd;
}

int ListenTcp(const Endpoint& endpoint, int backlog, std::string* error) {
  ResolvedAddr addr;
  if (!Resolve(endpoint, /*passive=*/true, &addr, error)) return -1;
  const int fd = socket(addr.family, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = Errno("socket()");
    return -1;
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr.addr), addr.len) != 0) {
    if (error != nullptr) *error = Errno("bind " + endpoint.ToString());
    close(fd);
    return -1;
  }
  if (listen(fd, backlog) != 0) {
    if (error != nullptr) *error = Errno("listen " + endpoint.ToString());
    close(fd);
    return -1;
  }
  fcntl(fd, F_SETFD, FD_CLOEXEC);
  return fd;
}

int BoundPort(int listen_fd) {
  sockaddr_storage addr = {};
  socklen_t len = sizeof addr;
  if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return -1;
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
  }
  return -1;
}

int AcceptTcp(int listen_fd) {
  const int fd = accept(listen_fd, nullptr, nullptr);
  if (fd >= 0) {
    fcntl(fd, F_SETFD, FD_CLOEXEC);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return fd;
}

FdInBuf::int_type FdInBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  ssize_t n;
  do {
    n = read(fd_, buf_, kSize);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return traits_type::eof();
  setg(buf_, buf_, buf_ + n);
  return traits_type::to_int_type(*gptr());
}

bool FdOutBuf::FlushBuffer() {
  const char* p = pbase();
  while (p < pptr()) {
    ssize_t n = write(fd_, p, static_cast<size_t>(pptr() - p));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
  }
  setp(buf_, buf_ + kSize);
  return true;
}

FdOutBuf::int_type FdOutBuf::overflow(int_type ch) {
  if (!FlushBuffer()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdOutBuf::sync() { return FlushBuffer() ? 0 : -1; }

}  // namespace knnshap
