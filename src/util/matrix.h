// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Dense row-major float matrix used to hold feature vectors. Rows are
// feature vectors; the KNN and LSH substrates read them through RowSpan to
// avoid copies on the hot distance path.

#ifndef KNNSHAP_UTIL_MATRIX_H_
#define KNNSHAP_UTIL_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

namespace knnshap {

/// Row-major matrix of floats (features are stored in float to halve memory
/// traffic on multi-million-point benchmarks; all accumulation is in
/// double).
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix initialized to zero.
  Matrix(size_t rows, size_t cols);

  size_t Rows() const { return rows_; }
  size_t Cols() const { return cols_; }
  bool Empty() const { return rows_ == 0; }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Read-only view of row r.
  std::span<const float> Row(size_t r) const {
    return std::span<const float>(data_.data() + r * cols_, cols_);
  }

  /// Mutable view of row r.
  std::span<float> MutableRow(size_t r) {
    return std::span<float>(data_.data() + r * cols_, cols_);
  }

  /// Appends a row; its length must equal Cols() (or set Cols on first row).
  void AppendRow(std::span<const float> row);

  /// Scales every entry by `factor` (used to normalize D_mean = 1 before
  /// LSH, as in the proof of Theorem 3).
  void Scale(double factor);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_MATRIX_H_
