// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "util/random.h"

#include <cmath>
#include <numbers>

#include "util/common.h"

namespace knnshap {

namespace {

// SplitMix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::NextUint64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::NextIndex(uint64_t n) {
  KNNSHAP_CHECK(n > 0, "NextIndex requires n > 0");
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0ull - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  Shuffle(&perm);
  return perm;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  KNNSHAP_CHECK(k >= 0 && k <= n, "sample size out of range");
  // Partial Fisher–Yates over an index array: O(n) space, O(n + k) time.
  std::vector<int> pool(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<size_t>(i)] = i;
  for (int i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(i) +
               static_cast<size_t>(NextIndex(static_cast<uint64_t>(n - i)));
    std::swap(pool[static_cast<size_t>(i)], pool[j]);
  }
  pool.resize(static_cast<size_t>(k));
  return pool;
}

Rng Rng::Fork() { return Rng(NextUint64() ^ 0xA5A5A5A5A5A5A5A5ull); }

}  // namespace knnshap
