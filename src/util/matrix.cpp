// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "util/matrix.h"

#include "util/common.h"

namespace knnshap {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

void Matrix::AppendRow(std::span<const float> row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  KNNSHAP_CHECK(row.size() == cols_, "row length mismatch");
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

void Matrix::Scale(double factor) {
  for (auto& x : data_) x = static_cast<float>(x * factor);
}

}  // namespace knnshap
