// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "util/fingerprint.h"

#include "dataset/dataset.h"

namespace knnshap {

Fnv64& Fnv64::Update(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = state_;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<uint64_t>(bytes[i]);
    h *= 0x100000001b3ull;  // FNV prime.
  }
  state_ = h;
  return *this;
}

Fnv64& Fnv64::AddString(std::string_view s) {
  Add(s.size());
  return Update(s.data(), s.size());
}

uint64_t DatasetFingerprint(const Dataset& data) {
  Fnv64 hash;
  hash.Add(data.Size());
  hash.Add(data.Dim());
  for (size_t r = 0; r < data.features.Rows(); ++r) {
    auto row = data.features.Row(r);
    hash.Update(row.data(), row.size() * sizeof(float));
  }
  hash.AddSpan(std::span<const int>(data.labels));
  hash.AddSpan(std::span<const double>(data.targets));
  return hash.Digest();
}

}  // namespace knnshap
