// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "util/fingerprint.h"

#include <algorithm>

#include "dataset/dataset.h"
#include "util/common.h"

namespace knnshap {

Fnv64& Fnv64::Update(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = state_;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<uint64_t>(bytes[i]);
    h *= 0x100000001b3ull;  // FNV prime.
  }
  state_ = h;
  return *this;
}

Fnv64& Fnv64::AddString(std::string_view s) {
  Add(s.size());
  return Update(s.data(), s.size());
}

namespace {

// Digest of one row block [begin, end) of each content stream. Every block
// digest starts from the FNV offset basis, so a block's digest depends only
// on its own rows — the property the incremental path relies on.
uint64_t FeatureBlockDigest(const Dataset& data, size_t begin, size_t end) {
  Fnv64 hash;
  if (data.Dim() > 0 && end > begin) {
    // Rows are contiguous in the row-major matrix: one flat pass.
    hash.Update(data.features.Row(begin).data(), (end - begin) * data.Dim() * sizeof(float));
  }
  return hash.Digest();
}

uint64_t LabelBlockDigest(const Dataset& data, size_t begin, size_t end) {
  Fnv64 hash;
  hash.Update(data.labels.data() + begin, (end - begin) * sizeof(int));
  return hash.Digest();
}

uint64_t TargetBlockDigest(const Dataset& data, size_t begin, size_t end) {
  Fnv64 hash;
  hash.Update(data.targets.data() + begin, (end - begin) * sizeof(double));
  return hash.Digest();
}

void RehashRange(const Dataset& data, size_t first_block, CorpusDigests* d) {
  const size_t num_blocks = d->NumBlocks();
  d->feature_blocks.resize(num_blocks);
  d->label_blocks.resize(data.HasLabels() ? num_blocks : 0);
  d->target_blocks.resize(data.HasTargets() ? num_blocks : 0);
  for (size_t b = first_block; b < num_blocks; ++b) {
    const size_t begin = b * d->block_rows;
    const size_t end = std::min(d->rows, begin + d->block_rows);
    d->feature_blocks[b] = FeatureBlockDigest(data, begin, end);
    if (data.HasLabels()) d->label_blocks[b] = LabelBlockDigest(data, begin, end);
    if (data.HasTargets()) d->target_blocks[b] = TargetBlockDigest(data, begin, end);
  }
}

}  // namespace

uint64_t CorpusDigests::Combined() const {
  Fnv64 hash;
  hash.Add(rows);
  hash.Add(cols);
  hash.AddSpan(std::span<const uint64_t>(feature_blocks));
  hash.AddSpan(std::span<const uint64_t>(label_blocks));
  hash.AddSpan(std::span<const uint64_t>(target_blocks));
  return hash.Digest();
}

CorpusDigests ComputeCorpusDigests(const Dataset& data, size_t block_rows) {
  KNNSHAP_CHECK(block_rows >= 1, "fingerprint block size must be >= 1");
  CorpusDigests digests;
  digests.rows = data.Size();
  digests.cols = data.Dim();
  digests.block_rows = block_rows;
  RehashRange(data, 0, &digests);
  return digests;
}

void RehashBlocksFrom(const Dataset& data, size_t first_row, CorpusDigests* digests) {
  KNNSHAP_CHECK(digests->cols == data.Dim() || data.Size() == 0,
                "fingerprint: column count changed");
  digests->rows = data.Size();
  digests->cols = data.Dim();
  RehashRange(data, std::min(first_row, data.Size()) / digests->block_rows, digests);
}

uint64_t DatasetFingerprint(const Dataset& data) {
  return ComputeCorpusDigests(data).Combined();
}

}  // namespace knnshap
