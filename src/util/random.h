// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Deterministic, seedable pseudo-random number generation.
//
// The library implements its own generator (xoshiro256** seeded through
// SplitMix64) instead of <random> engines so that experiment outputs are
// bit-reproducible across standard-library implementations; the paper's
// evaluation depends on repeatable synthetic datasets and permutation
// streams.

#ifndef KNNSHAP_UTIL_RANDOM_H_
#define KNNSHAP_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace knnshap {

/// Seedable PRNG with the distributions the library needs.
///
/// Not thread-safe; create one Rng per thread (see Rng::Fork).
class Rng {
 public:
  /// Seeds the generator. Two Rng instances constructed with the same seed
  /// produce identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextIndex(uint64_t n);

  /// Standard normal deviate (Box–Muller with caching).
  double NextGaussian();

  /// Normal deviate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextIndex(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Returns a uniformly random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Samples `k` distinct indices from {0, ..., n-1} (k <= n), in
  /// uniformly random order.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Derives an independent child generator; used to hand one stream per
  /// worker thread while keeping the parent deterministic.
  Rng Fork();

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_RANDOM_H_
