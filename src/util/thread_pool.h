// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Fixed-size worker pool with a blocking parallel-for. The exact Shapley
// algorithm is embarrassingly parallel over test points (Algorithm 1's
// outer loop), and the large-dataset benches need that parallelism to stay
// within a laptop-scale time budget.

#ifndef KNNSHAP_UTIL_THREAD_POOL_H_
#define KNNSHAP_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace knnshap {

/// Fixed pool of worker threads.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumThreads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until all
  /// iterations complete. Iterations are distributed in contiguous blocks.
  /// Blocking and non-reentrant: must not be called from a pool worker —
  /// the caller parks on a condition variable, so workers calling back in
  /// can deadlock the pool. Multiple *external* threads may call it
  /// concurrently.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  /// Like ParallelFor, but the caller *helps*: indices are claimed one at a
  /// time from a shared atomic counter, and the calling thread drains them
  /// alongside up to NumThreads() enqueued helpers instead of parking on a
  /// condition variable. Safe to call from a pool worker (the helper tasks
  /// it enqueues are optional — if every worker is busy, the caller simply
  /// finishes the loop alone), which is what makes intra-query block
  /// parallelism composable with the serve pipeline's request-per-worker
  /// model. Returns once every iteration has completed. `fn` must be safe
  /// to invoke concurrently from multiple threads.
  void ParallelForHelping(size_t count, std::function<void(size_t)> fn);

  /// Enqueues one task and returns immediately. The serve pipeline uses
  /// this to run whole requests on workers; such tasks must not call
  /// ParallelFor (see above).
  void Submit(std::function<void()> task);

  /// Process-wide pool, sized to the machine.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_THREAD_POOL_H_
