// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Minimal command-line flag parsing for the bench and example binaries.
// Supports --name=value and --name value forms plus bare --flag booleans.

#ifndef KNNSHAP_UTIL_CLI_H_
#define KNNSHAP_UTIL_CLI_H_

#include <map>
#include <string>
#include <vector>

namespace knnshap {

/// Parsed command line. Unknown flags are retained (benches share a parser),
/// but a typo in a known flag's value aborts with a message.
class CommandLine {
 public:
  CommandLine(int argc, char** argv);

  bool Has(const std::string& name) const;

  /// Raw flag value, or nullptr when absent — the non-aborting accessor
  /// the schema-derived flag parser validates through (GetDouble/GetInt
  /// abort on malformed values; request parsing must answer errors).
  const std::string* Raw(const std::string& name) const;

  /// All flag names present, sorted — lets strict tools (knnshap_value)
  /// reject typo'd flags the way the serve pipeline rejects unknown
  /// request fields. Benches keep ignoring unknown flags.
  std::vector<std::string> Names() const;

  std::string GetString(const std::string& name, const std::string& fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  int GetInt(const std::string& name, int fallback) const;

  /// Dataset-size multiplier shared by all benches (--scale).
  double Scale() const { return GetDouble("scale", 1.0); }

  /// Optional CSV export path (--csv).
  std::string CsvPath() const { return GetString("csv", ""); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_CLI_H_
