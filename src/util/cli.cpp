// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "util/cli.h"

#include <cstdlib>

#include "util/common.h"

namespace knnshap {

// GCC 12 at -O2 issues a -Wrestrict false positive through the inlined
// std::string assignments below, claiming an impossible self-overlap with
// offsets near SIZE_MAX/2 (GCC bug 105329, fixed in GCC 13). Suppressed
// locally so the library builds warning-clean under -Werror in CI.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

CommandLine::CommandLine(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";
    }
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

bool CommandLine::Has(const std::string& name) const { return values_.count(name) > 0; }

const std::string* CommandLine::Raw(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? nullptr : &it->second;
}

std::vector<std::string> CommandLine::Names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

std::string CommandLine::GetString(const std::string& name,
                                   const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double CommandLine::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  KNNSHAP_CHECK(end != it->second.c_str(), "flag --" + name + " is not a number");
  return v;
}

int CommandLine::GetInt(const std::string& name, int fallback) const {
  return static_cast<int>(GetDouble(name, fallback));
}

}  // namespace knnshap
