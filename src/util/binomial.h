// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Binomial-coefficient machinery. The exact Shapley algorithms for weighted
// KNN (Theorem 7) and multi-seller KNN (Theorem 8) weight subsets by
// 1/binom(N-1, k) and 1/binom(M-1, k); N can reach the tens of thousands, so
// coefficients are evaluated in log space and combined as ratios to stay in
// double range.

#ifndef KNNSHAP_UTIL_BINOMIAL_H_
#define KNNSHAP_UTIL_BINOMIAL_H_

#include <cstdint>
#include <vector>

namespace knnshap {

/// ln(n!) with a cached table; exact to double precision.
double LogFactorial(int n);

/// ln(binom(n, k)); -inf when k < 0 or k > n.
double LogChoose(int n, int k);

/// binom(n, k) as a double; 0 when out of range, +inf on overflow.
double Choose(int n, int k);

/// Ratio binom(a, b) / binom(c, d) computed in log space.
double ChooseRatio(int a, int b, int c, int d);

/// The binomial identity used in the proof of Theorem 1 (Eq 11-13):
///   sum_{k=0}^{N-2} (1/binom(N-2,k)) * sum_{m=0}^{min(K-1,k)}
///        binom(i-1,m) binom(N-i-1,k-m)  ==  min(K,i) * (N-1) / i.
/// Exposed so tests can verify the closed form numerically.
double Theorem1InnerSum(int big_n, int big_k, int i);

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_BINOMIAL_H_
