// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Project-wide primitives: fatal-check macro and small shared helpers.

#ifndef KNNSHAP_UTIL_COMMON_H_
#define KNNSHAP_UTIL_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace knnshap {

namespace internal {

[[noreturn]] inline void FatalError(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[knnshap fatal] %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

}  // namespace internal

/// Aborts with a diagnostic if `cond` is false. Used to guard API
/// preconditions; always active (valuation results silently computed from
/// inconsistent inputs are worse than a crash in this domain).
#define KNNSHAP_CHECK(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::knnshap::internal::FatalError(__FILE__, __LINE__,                   \
                                      std::string("check failed: " #cond   \
                                                  " — ") +                  \
                                          (msg));                           \
    }                                                                       \
  } while (0)

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_COMMON_H_
