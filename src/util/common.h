// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Project-wide primitives: fatal-check macro and small shared helpers.

#ifndef KNNSHAP_UTIL_COMMON_H_
#define KNNSHAP_UTIL_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace knnshap {

namespace internal {

[[noreturn]] inline void FatalError(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[knnshap fatal] %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

}  // namespace internal

/// Aborts with a diagnostic if `cond` is false. Used to guard API
/// preconditions; always active (valuation results silently computed from
/// inconsistent inputs are worse than a crash in this domain).
#define KNNSHAP_CHECK(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::knnshap::internal::FatalError(__FILE__, __LINE__,                   \
                                      std::string("check failed: " #cond   \
                                                  " — ") +                  \
                                          (msg));                           \
    }                                                                       \
  } while (0)

/// Frees a per-thread scratch vector's backing store when its capacity far
/// exceeds the current need (e.g. one huge corpus passed through a
/// long-lived pool thread), then resizes it. The floor keeps small
/// workloads from thrashing the allocator. Mirrors the shrink policy of
/// the LSH visited-marks buffer.
template <typename T>
void ResizeScratch(std::vector<T>* scratch, size_t needed) {
  constexpr size_t kShrinkFloor = size_t{1} << 16;
  if (scratch->capacity() > kShrinkFloor && scratch->capacity() > 4 * needed) {
    std::vector<T>().swap(*scratch);
  }
  scratch->resize(needed);
}

/// Shrink-only variant for scratch vectors that grow by push_back:
/// releases the buffer when its capacity dwarfs `bound`, the caller's
/// upper bound on this use's growth.
template <typename T>
void ShrinkScratch(std::vector<T>* scratch, size_t bound) {
  constexpr size_t kShrinkFloor = size_t{1} << 16;
  if (scratch->capacity() > kShrinkFloor && scratch->capacity() > 4 * bound) {
    std::vector<T>().swap(*scratch);
  }
}

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_COMMON_H_
