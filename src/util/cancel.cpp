// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "util/cancel.h"

namespace knnshap {
namespace internal {

thread_local const CancelToken* active_cancel = nullptr;

}  // namespace internal
}  // namespace knnshap
