// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Status / StatusOr — the error channel at the engine's API boundaries.
// Request-shaped failures (bad hyperparameter, unknown method, missing
// corpus, corrupt cache file) are *responses*, carried as a Status with a
// machine-readable code and, for parameter errors, the offending field —
// the serve layer maps them onto {"ok":false,"code":...,"field":...}
// responses and the CLI onto structured stderr lines. Fatal KNNSHAP_CHECK
// remains reserved for internal invariants that indicate a bug, never for
// untrusted input.

#ifndef KNNSHAP_UTIL_STATUS_H_
#define KNNSHAP_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/common.h"

namespace knnshap {

/// Machine-readable failure class, serialized into protocol responses via
/// StatusCodeName (snake_case, stable strings).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< Malformed or out-of-range request field.
  kNotFound,            ///< Unknown method / dataset / file.
  kFailedPrecondition,  ///< Request is well-formed but the data cannot serve it.
  kDataLoss,            ///< Corrupt or truncated persistent artifact.
  kInternal,            ///< Invariant violation surfaced as an error.
  kDeadlineExceeded,    ///< Request deadline elapsed before completion.
  kUnavailable,         ///< Transient overload: shed now, retry later.
};

/// Stable snake_case name of a code ("invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

/// An operation outcome: OK, or a code + human message + (optionally) the
/// request field that caused it.
class Status {
 public:
  Status() = default;  // OK

  static Status Ok() { return Status(); }
  static Status Error(StatusCode code, std::string message,
                      std::string field = "") {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    s.field_ = std::move(field);
    return s;
  }
  static Status InvalidArgument(std::string message, std::string field = "") {
    return Error(StatusCode::kInvalidArgument, std::move(message),
                 std::move(field));
  }
  static Status NotFound(std::string message) {
    return Error(StatusCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Error(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Error(StatusCode::kDataLoss, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Error(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Error(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  /// Offending request field for kInvalidArgument ("" when not tied to one).
  const std::string& field() const { return field_; }

  /// "invalid_argument: 'epsilon' must be > 0 (field 'epsilon')" — for logs
  /// and CLI stderr; protocol responses use the parts separately.
  std::string ToString() const;

  bool operator==(const Status& other) const = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  std::string field_;
};

/// A value or the Status explaining its absence.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    KNNSHAP_CHECK(!status_.ok(), "StatusOr built from OK status without a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const {
    KNNSHAP_CHECK(ok(), "StatusOr::value() on error: " + status_.message());
    return value_;
  }
  T& value() {
    KNNSHAP_CHECK(ok(), "StatusOr::value() on error: " + status_.message());
    return value_;
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_STATUS_H_
