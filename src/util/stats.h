// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Descriptive statistics used across the evaluation harnesses: running
// moments, correlations (Pearson for Fig 14/15/16, Spearman for rank
// agreement), and quantiles.

#ifndef KNNSHAP_UTIL_STATS_H_
#define KNNSHAP_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace knnshap {

/// Single-pass accumulator for mean/variance (Welford).
class RunningMoments {
 public:
  void Add(double x);
  size_t Count() const { return count_; }
  double Mean() const { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  double Variance() const;
  double StdDev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance; 0 when fewer than two observations.
double Variance(const std::vector<double>& xs);

/// Pearson correlation coefficient. Returns 0 when either input is
/// constant. Requires equal, nonzero lengths.
double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys);

/// Spearman rank correlation (Pearson on fractional ranks, ties averaged).
double SpearmanCorrelation(const std::vector<double>& xs, const std::vector<double>& ys);

/// q-th quantile (0 <= q <= 1) by linear interpolation on the sorted copy.
double Quantile(std::vector<double> xs, double q);

/// Largest absolute componentwise difference: max_i |a_i - b_i|.
double MaxAbsDifference(const std::vector<double>& a, const std::vector<double>& b);

/// Fractional ranks of xs (average rank for ties), 1-based.
std::vector<double> FractionalRanks(const std::vector<double>& xs);

}  // namespace knnshap

#endif  // KNNSHAP_UTIL_STATS_H_
