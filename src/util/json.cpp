// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace knnshap {

namespace {

const JsonValue kNullValue;

// Recursive-descent parser over a bounded character range.
class Parser {
 public:
  Parser(const char* begin, const char* end) : p_(begin), end_(end) {}

  JsonParseResult Run() {
    JsonParseResult result;
    result.value = ParseValue(&result.error);
    if (!result.error.empty()) return result;
    SkipWhitespace();
    if (p_ != end_) result.error = "trailing characters after document";
    return result;
  }

 private:
  void SkipWhitespace() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    const char* q = p_;
    while (*lit) {
      if (q == end_ || *q != *lit) return false;
      ++q;
      ++lit;
    }
    p_ = q;
    return true;
  }

  JsonValue ParseValue(std::string* error) {
    SkipWhitespace();
    if (p_ == end_) {
      *error = "unexpected end of input";
      return JsonValue();
    }
    switch (*p_) {
      case '{':
        return ParseObject(error);
      case '[':
        return ParseArray(error);
      case '"':
        return ParseString(error);
      case 't':
        if (ConsumeLiteral("true")) return JsonValue(true);
        break;
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue(false);
        break;
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue();
        break;
      default:
        return ParseNumber(error);
    }
    *error = "invalid token";
    return JsonValue();
  }

  JsonValue ParseObject(std::string* error) {
    ++p_;  // '{'
    JsonValue obj = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      if (p_ == end_ || *p_ != '"') {
        *error = "expected object key";
        return obj;
      }
      JsonValue key = ParseString(error);
      if (!error->empty()) return obj;
      SkipWhitespace();
      if (!Consume(':')) {
        *error = "expected ':' after key";
        return obj;
      }
      JsonValue value = ParseValue(error);
      if (!error->empty()) return obj;
      obj.Set(key.AsString(), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return obj;
      if (!Consume(',')) {
        *error = "expected ',' or '}' in object";
        return obj;
      }
    }
  }

  JsonValue ParseArray(std::string* error) {
    ++p_;  // '['
    JsonValue arr = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      JsonValue value = ParseValue(error);
      if (!error->empty()) return arr;
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return arr;
      if (!Consume(',')) {
        *error = "expected ',' or ']' in array";
        return arr;
      }
    }
  }

  JsonValue ParseString(std::string* error) {
    ++p_;  // '"'
    std::string out;
    while (p_ != end_) {
      char c = *p_++;
      if (c == '"') return JsonValue(std::move(out));
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p_ == end_) break;
      char esc = *p_++;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (p_ == end_ || !std::isxdigit(static_cast<unsigned char>(*p_))) {
              *error = "bad \\u escape";
              return JsonValue(std::move(out));
            }
            char h = *p_++;
            code = code * 16 +
                   static_cast<unsigned>(h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          *error = "bad escape character";
          return JsonValue(std::move(out));
      }
    }
    *error = "unterminated string";
    return JsonValue(std::move(out));
  }

  JsonValue ParseNumber(std::string* error) {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                          *p_ == '.' || *p_ == 'e' || *p_ == 'E' || *p_ == '-' ||
                          *p_ == '+')) {
      if (std::isdigit(static_cast<unsigned char>(*p_))) digits = true;
      ++p_;
    }
    if (!digits) {
      *error = "invalid number";
      return JsonValue();
    }
    std::string text(start, p_);
    char* parse_end = nullptr;
    double value = std::strtod(text.c_str(), &parse_end);
    if (parse_end != text.c_str() + text.size()) {
      *error = "invalid number";
      return JsonValue();
    }
    return JsonValue(value);
  }

  const char* p_;
  const char* end_;
};

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpInto(const JsonValue& v, std::string* out) {
  switch (v.GetType()) {
    case JsonValue::Type::kNull:
      *out += "null";
      break;
    case JsonValue::Type::kBool:
      *out += v.AsBool() ? "true" : "false";
      break;
    case JsonValue::Type::kNumber: {
      double n = v.AsNumber();
      if (!std::isfinite(n)) {
        *out += "null";  // JSON has no Inf/NaN.
        break;
      }
      char buf[40];
      // %.17g round-trips doubles exactly; trim to %g when lossless-short.
      std::snprintf(buf, sizeof buf, "%.17g", n);
      double back = std::strtod(buf, nullptr);
      char shorter[40];
      std::snprintf(shorter, sizeof shorter, "%g", n);
      if (std::strtod(shorter, nullptr) == back) {
        *out += shorter;
      } else {
        *out += buf;
      }
      break;
    }
    case JsonValue::Type::kString:
      EscapeInto(v.AsString(), out);
      break;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& item : v.Items()) {
        if (!first) out->push_back(',');
        first = false;
        DumpInto(item, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.Fields()) {
        if (!first) out->push_back(',');
        first = false;
        EscapeInto(key, out);
        out->push_back(':');
        DumpInto(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

const JsonValue& JsonValue::Get(const std::string& key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return v;
  }
  return kNullValue;
}

bool JsonValue::Has(const std::string& key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return true;
  }
  return false;
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  if (type_ != Type::kObject) {
    *this = MakeObject();
  }
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  fields_.emplace_back(key, std::move(value));
}

void JsonValue::Append(JsonValue value) {
  if (type_ != Type::kArray) {
    *this = MakeArray();
  }
  items_.push_back(std::move(value));
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpInto(*this, &out);
  return out;
}

JsonParseResult ParseJson(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.Run();
}

}  // namespace knnshap
