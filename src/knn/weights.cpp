// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "knn/weights.h"

#include <cmath>

#include "util/common.h"

namespace knnshap {

double RawKernelWeight(double distance, const WeightConfig& config) {
  switch (config.kernel) {
    case WeightKernel::kUniform:
      return 1.0;
    case WeightKernel::kInverseDistance:
      KNNSHAP_CHECK(distance >= 0.0, "negative distance");
      return 1.0 / (distance + config.epsilon);
    case WeightKernel::kGaussian: {
      // Multiply by the reciprocal, matching the historical hoisted-inverse
      // loop bit for bit (values are pinned by golden transcripts).
      double inv = 1.0 / (2.0 * config.sigma * config.sigma);
      return std::exp(-distance * distance * inv);
    }
  }
  KNNSHAP_CHECK(false, "unknown weight kernel");
}

std::vector<double> ComputeWeights(const std::vector<double>& distances,
                                   const WeightConfig& config) {
  std::vector<double> weights(distances.size());
  if (distances.empty()) return weights;
  double total = 0.0;
  for (size_t i = 0; i < distances.size(); ++i) {
    weights[i] = RawKernelWeight(distances[i], config);
  }
  for (double w : weights) total += w;
  KNNSHAP_CHECK(total > 0.0, "degenerate weights");
  for (auto& w : weights) w /= total;
  return weights;
}

const char* KernelName(WeightKernel kernel) {
  switch (kernel) {
    case WeightKernel::kUniform:
      return "uniform";
    case WeightKernel::kInverseDistance:
      return "inverse-distance";
    case WeightKernel::kGaussian:
      return "gaussian";
  }
  return "unknown";
}

}  // namespace knnshap
