// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "knn/weights.h"

#include <cmath>

#include "util/common.h"

namespace knnshap {

std::vector<double> ComputeWeights(const std::vector<double>& distances,
                                   const WeightConfig& config) {
  std::vector<double> weights(distances.size());
  if (distances.empty()) return weights;
  double total = 0.0;
  switch (config.kernel) {
    case WeightKernel::kUniform:
      for (auto& w : weights) w = 1.0;
      break;
    case WeightKernel::kInverseDistance:
      for (size_t i = 0; i < distances.size(); ++i) {
        KNNSHAP_CHECK(distances[i] >= 0.0, "negative distance");
        weights[i] = 1.0 / (distances[i] + config.epsilon);
      }
      break;
    case WeightKernel::kGaussian: {
      double inv = 1.0 / (2.0 * config.sigma * config.sigma);
      for (size_t i = 0; i < distances.size(); ++i) {
        weights[i] = std::exp(-distances[i] * distances[i] * inv);
      }
      break;
    }
  }
  for (double w : weights) total += w;
  KNNSHAP_CHECK(total > 0.0, "degenerate weights");
  for (auto& w : weights) w /= total;
  return weights;
}

const char* KernelName(WeightKernel kernel) {
  switch (kernel) {
    case WeightKernel::kUniform:
      return "uniform";
    case WeightKernel::kInverseDistance:
      return "inverse-distance";
    case WeightKernel::kGaussian:
      return "gaussian";
  }
  return "unknown";
}

}  // namespace knnshap
