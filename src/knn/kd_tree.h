// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// kd-tree for exact k-nearest-neighbor search [MA98]. The paper cites
// kd-trees as the classic alternative to LSH for accelerating the neighbor
// retrieval inside the Shapley approximation; this implementation backs the
// ablation comparing brute force, kd-tree and LSH retrieval (DESIGN.md A3)
// and is exact (branch-and-bound pruning, no approximation).

#ifndef KNNSHAP_KNN_KD_TREE_H_
#define KNNSHAP_KNN_KD_TREE_H_

#include <memory>
#include <span>
#include <vector>

#include "knn/neighbors.h"
#include "util/bounded_heap.h"
#include "util/matrix.h"

namespace knnshap {

/// Exact k-NN index; efficient in low-to-moderate dimension. Distances are
/// Euclidean (L2), matching the paper's analysis.
class KdTree {
 public:
  /// Builds the tree over all rows of `train` (the matrix must outlive the
  /// tree). `leaf_size` tunes the recursion cutoff.
  explicit KdTree(const Matrix* train, size_t leaf_size = 16);

  /// The k nearest rows to `query`, ascending by distance.
  std::vector<Neighbor> Query(std::span<const float> query, size_t k) const;

  /// Number of distance evaluations performed by the last Query call on
  /// this thread (instrumentation for the retrieval ablation). Kept in
  /// thread-local storage so concurrent queries — the valuation engine
  /// shards test batches over the shared pool — stay race-free.
  size_t LastQueryDistanceEvals() const;

 private:
  struct Node {
    // Leaf: [begin, end) into points_. Internal: split dim/value + children.
    size_t begin = 0;
    size_t end = 0;
    int split_dim = -1;
    float split_value = 0.0f;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
    bool IsLeaf() const { return split_dim < 0; }
  };

  std::unique_ptr<Node> Build(size_t begin, size_t end, size_t leaf_size);
  void Search(const Node* node, std::span<const float> query,
              BoundedMaxHeap<int>* heap) const;

  const Matrix* train_;
  std::vector<int> points_;  // Row ids, permuted during construction.
  std::unique_ptr<Node> root_;
};

}  // namespace knnshap

#endif  // KNNSHAP_KNN_KD_TREE_H_
