// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Distance metrics for feature vectors. The paper's analysis is for the L2
// norm (its LSH family is the 2-stable one); L1 and cosine are provided for
// the library's general k-NN substrate.

#ifndef KNNSHAP_KNN_METRIC_H_
#define KNNSHAP_KNN_METRIC_H_

#include <cstddef>
#include <span>
#include <string_view>

namespace knnshap {

/// Supported distance metrics.
enum class Metric {
  kL2,         ///< Euclidean distance.
  kSquaredL2,  ///< Squared Euclidean (same ranking as kL2, cheaper).
  kL1,         ///< Manhattan distance.
  kCosine,     ///< 1 - cosine similarity.
};

/// Distance between two equal-length vectors under `metric`.
double Distance(std::span<const float> a, std::span<const float> b, Metric metric);

/// Squared L2 distance (the hot path; kept separate so callers can avoid
/// the sqrt when only the ranking matters).
double SquaredL2(std::span<const float> a, std::span<const float> b);

/// Human-readable metric name.
const char* MetricName(Metric metric);

/// Inverse of MetricName ("l2", "squared-l2", "l1", "cosine"); false when
/// `name` matches no metric. The shard-worker wire protocol sends metrics
/// by name.
bool MetricFromName(std::string_view name, Metric* out);

namespace internal {

/// Unchecked per-pair loops — the scalar *reference* semantics shared by
/// Distance()/SquaredL2() and the batch kernels. Callers must have
/// validated dimensions once per batch; keeping the precondition check out
/// of these loops is what lets Release builds stop paying a branch per
/// corpus row (knn/distance_kernel.h owns the batch entry points).
double SquaredL2Unchecked(const float* a, const float* b, size_t d);
double DistanceUnchecked(const float* a, const float* b, size_t d, Metric metric);

}  // namespace internal

}  // namespace knnshap

#endif  // KNNSHAP_KNN_METRIC_H_
