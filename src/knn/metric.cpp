// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "knn/metric.h"

#include <cmath>

#include "util/common.h"

namespace knnshap {

double SquaredL2(std::span<const float> a, std::span<const float> b) {
  KNNSHAP_CHECK(a.size() == b.size(), "dimension mismatch");
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += diff * diff;
  }
  return acc;
}

double Distance(std::span<const float> a, std::span<const float> b, Metric metric) {
  switch (metric) {
    case Metric::kSquaredL2:
      return SquaredL2(a, b);
    case Metric::kL2:
      return std::sqrt(SquaredL2(a, b));
    case Metric::kL1: {
      KNNSHAP_CHECK(a.size() == b.size(), "dimension mismatch");
      double acc = 0.0;
      for (size_t i = 0; i < a.size(); ++i) {
        acc += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
      }
      return acc;
    }
    case Metric::kCosine: {
      KNNSHAP_CHECK(a.size() == b.size(), "dimension mismatch");
      double dot = 0.0, na = 0.0, nb = 0.0;
      for (size_t i = 0; i < a.size(); ++i) {
        dot += static_cast<double>(a[i]) * static_cast<double>(b[i]);
        na += static_cast<double>(a[i]) * static_cast<double>(a[i]);
        nb += static_cast<double>(b[i]) * static_cast<double>(b[i]);
      }
      if (na == 0.0 || nb == 0.0) return 1.0;
      return 1.0 - dot / std::sqrt(na * nb);
    }
  }
  KNNSHAP_CHECK(false, "unknown metric");
}

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "l2";
    case Metric::kSquaredL2:
      return "squared-l2";
    case Metric::kL1:
      return "l1";
    case Metric::kCosine:
      return "cosine";
  }
  return "unknown";
}

}  // namespace knnshap
