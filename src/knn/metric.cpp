// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "knn/metric.h"

#include <cmath>

#include "util/common.h"

namespace knnshap {

namespace internal {

double SquaredL2Unchecked(const float* a, const float* b, size_t d) {
  double acc = 0.0;
  for (size_t i = 0; i < d; ++i) {
    double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += diff * diff;
  }
  return acc;
}

double DistanceUnchecked(const float* a, const float* b, size_t d, Metric metric) {
  switch (metric) {
    case Metric::kSquaredL2:
      return SquaredL2Unchecked(a, b, d);
    case Metric::kL2:
      return std::sqrt(SquaredL2Unchecked(a, b, d));
    case Metric::kL1: {
      double acc = 0.0;
      for (size_t i = 0; i < d; ++i) {
        acc += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
      }
      return acc;
    }
    case Metric::kCosine: {
      double dot = 0.0, na = 0.0, nb = 0.0;
      for (size_t i = 0; i < d; ++i) {
        dot += static_cast<double>(a[i]) * static_cast<double>(b[i]);
        na += static_cast<double>(a[i]) * static_cast<double>(a[i]);
        nb += static_cast<double>(b[i]) * static_cast<double>(b[i]);
      }
      if (na == 0.0 || nb == 0.0) return 1.0;
      return 1.0 - dot / std::sqrt(na * nb);
    }
  }
  KNNSHAP_CHECK(false, "unknown metric");
}

}  // namespace internal

double SquaredL2(std::span<const float> a, std::span<const float> b) {
  KNNSHAP_CHECK(a.size() == b.size(), "dimension mismatch");
  return internal::SquaredL2Unchecked(a.data(), b.data(), a.size());
}

double Distance(std::span<const float> a, std::span<const float> b, Metric metric) {
  KNNSHAP_CHECK(a.size() == b.size(), "dimension mismatch");
  return internal::DistanceUnchecked(a.data(), b.data(), a.size(), metric);
}

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "l2";
    case Metric::kSquaredL2:
      return "squared-l2";
    case Metric::kL1:
      return "l1";
    case Metric::kCosine:
      return "cosine";
  }
  return "unknown";
}

bool MetricFromName(std::string_view name, Metric* out) {
  for (Metric metric : {Metric::kL2, Metric::kSquaredL2, Metric::kL1,
                        Metric::kCosine}) {
    if (name == MetricName(metric)) {
      *out = metric;
      return true;
    }
  }
  return false;
}

}  // namespace knnshap
