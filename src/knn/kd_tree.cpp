// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "knn/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/bounded_heap.h"
#include "util/common.h"

namespace knnshap {

namespace {
// Per-thread instrumentation counter; Query resets it, Search increments it.
thread_local size_t tls_distance_evals = 0;
}  // namespace

size_t KdTree::LastQueryDistanceEvals() const { return tls_distance_evals; }

KdTree::KdTree(const Matrix* train, size_t leaf_size) : train_(train) {
  KNNSHAP_CHECK(train != nullptr, "null training matrix");
  KNNSHAP_CHECK(leaf_size >= 1, "leaf size must be >= 1");
  points_.resize(train->Rows());
  for (size_t i = 0; i < points_.size(); ++i) points_[i] = static_cast<int>(i);
  if (!points_.empty()) root_ = Build(0, points_.size(), leaf_size);
}

std::unique_ptr<KdTree::Node> KdTree::Build(size_t begin, size_t end,
                                            size_t leaf_size) {
  auto node = std::make_unique<Node>();
  node->begin = begin;
  node->end = end;
  if (end - begin <= leaf_size) return node;

  // Split on the dimension with the widest extent over this node's points.
  const size_t dim = train_->Cols();
  int best_dim = 0;
  float best_extent = -1.0f;
  for (size_t d = 0; d < dim; ++d) {
    float lo = std::numeric_limits<float>::max();
    float hi = std::numeric_limits<float>::lowest();
    for (size_t i = begin; i < end; ++i) {
      float v = train_->At(static_cast<size_t>(points_[i]), d);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_extent) {
      best_extent = hi - lo;
      best_dim = static_cast<int>(d);
    }
  }
  if (best_extent <= 0.0f) return node;  // All points identical: keep as leaf.

  size_t mid = begin + (end - begin) / 2;
  std::nth_element(points_.begin() + static_cast<long>(begin),
                   points_.begin() + static_cast<long>(mid),
                   points_.begin() + static_cast<long>(end), [&](int a, int b) {
                     return train_->At(static_cast<size_t>(a),
                                       static_cast<size_t>(best_dim)) <
                            train_->At(static_cast<size_t>(b),
                                       static_cast<size_t>(best_dim));
                   });
  node->split_dim = best_dim;
  node->split_value =
      train_->At(static_cast<size_t>(points_[mid]), static_cast<size_t>(best_dim));
  node->left = Build(begin, mid, leaf_size);
  node->right = Build(mid, end, leaf_size);
  return node;
}

void KdTree::Search(const Node* node, std::span<const float> query,
                    BoundedMaxHeap<int>* heap) const {
  if (node->IsLeaf()) {
    for (size_t i = node->begin; i < node->end; ++i) {
      int row = points_[i];
      double dist = std::sqrt(internal::SquaredL2Unchecked(
          train_->Row(static_cast<size_t>(row)).data(), query.data(), query.size()));
      ++tls_distance_evals;
      heap->Push(dist, row);
    }
    return;
  }
  double diff = static_cast<double>(query[static_cast<size_t>(node->split_dim)]) -
                static_cast<double>(node->split_value);
  const Node* near = diff < 0.0 ? node->left.get() : node->right.get();
  const Node* far = diff < 0.0 ? node->right.get() : node->left.get();
  Search(near, query, heap);
  // Prune the far side unless the splitting hyperplane is closer than the
  // current K-th best distance (or the heap is not yet full). <= rather
  // than <: a far-side point tying the K-th distance may still enter the
  // heap on the index tie-break, and visiting it keeps the result
  // identical to brute force on tie-heavy data.
  if (!heap->Full() || std::fabs(diff) <= heap->MaxKey()) {
    Search(far, query, heap);
  }
}

std::vector<Neighbor> KdTree::Query(std::span<const float> query, size_t k) const {
  tls_distance_evals = 0;
  k = std::min(k, points_.size());
  if (k == 0) return {};
  KNNSHAP_CHECK(query.size() == train_->Cols(), "query dimension mismatch");
  BoundedMaxHeap<int> heap(k);
  Search(root_.get(), query, &heap);
  // SortedEntries is (distance, index)-ordered already.
  auto sorted = heap.SortedEntries();
  std::vector<Neighbor> out;
  out.reserve(sorted.size());
  for (const auto& e : sorted) out.push_back({e.payload, e.key});
  return out;
}

}  // namespace knnshap
