// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "knn/neighbors.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "knn/selection.h"
#include "obs/trace.h"
#include "util/cancel.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace knnshap {

namespace {

// Per-thread distance scratch: the valuation engine drives many queries
// per pool thread, and a fresh N-double buffer per query would dominate
// small-corpus requests. ResizeScratch frees the buffer again once a
// request is far smaller than the retained high-water mark.
std::vector<double>& DistanceScratch(size_t rows) {
  static thread_local std::vector<double> scratch;
  ResizeScratch(&scratch, rows);
  return scratch;
}

// IntraQueryOptions storage, split into atomics so readers on the hot path
// never take a lock (tearing between the two fields is harmless — both
// orderings of a torn update are valid configurations).
std::atomic<size_t> g_intra_min_rows{IntraQueryOptions{}.min_rows};
std::atomic<size_t> g_intra_block_rows{IntraQueryOptions{}.block_rows};

// Top-min(r, n) of `dists` by (distance, index): serial streaming selection
// below the intra-query threshold, per-block selection with an exact
// candidate merge above it. Either way bit-identical to the same-length
// ArgsortDistances prefix.
void BlockedTopR(std::span<const double> dists, size_t r,
                 std::vector<int>* order) {
  const size_t n = dists.size();
  r = std::min(r, n);
  const IntraQueryOptions opt = GetIntraQueryOptions();
  ThreadPool& pool = ThreadPool::Shared();
  if (n < opt.min_rows || pool.NumThreads() <= 1 || r >= n) {
    PartialArgsortDistances(dists, r, order);
    return;
  }
  const size_t block = opt.block_rows;
  const size_t num_blocks = (n + block - 1) / block;
  std::vector<std::vector<int>> block_tops(num_blocks);
  pool.ParallelForHelping(num_blocks, [&](size_t b) {
    const size_t begin = b * block;
    const size_t end = std::min(n, begin + block);
    std::vector<int>& top = block_tops[b];
    // Block-local indices order identically to their global counterparts
    // (the offset is monotone), so the per-block exact top-r is the
    // restriction of the global order to the block.
    PartialArgsortDistances(dists.subspan(begin, end - begin), r, &top);
    for (int& idx : top) idx += static_cast<int>(begin);
  });
  order->clear();
  for (const std::vector<int>& top : block_tops) {
    order->insert(order->end(), top.begin(), top.end());
  }
  MergeTopCandidates(dists, order, r);
}

}  // namespace

void SetIntraQueryOptions(const IntraQueryOptions& options) {
  g_intra_min_rows.store(options.min_rows, std::memory_order_relaxed);
  g_intra_block_rows.store(std::max<size_t>(1, options.block_rows),
                           std::memory_order_relaxed);
}

IntraQueryOptions GetIntraQueryOptions() {
  IntraQueryOptions options;
  options.min_rows = g_intra_min_rows.load(std::memory_order_relaxed);
  options.block_rows = g_intra_block_rows.load(std::memory_order_relaxed);
  return options;
}

void SingleQueryDistances(const Matrix& train, std::span<const float> query,
                          Metric metric, const CorpusNorms* norms,
                          std::span<double> out) {
  // Wall-clock distance span on the calling thread; helper threads run
  // untraced (the span is the query's elapsed time, not CPU time).
  ScopedPhase span(Phase::kDistance);
  const size_t rows = train.Rows();
  const IntraQueryOptions opt = GetIntraQueryOptions();
  ThreadPool& pool = ThreadPool::Shared();
  if (rows < opt.min_rows || pool.NumThreads() <= 1) {
    ComputeDistances(train, query, metric, norms, out);
    return;
  }
  const size_t block = opt.block_rows;
  const size_t num_blocks = (rows + block - 1) / block;
  const CancelToken* token = ActiveCancelToken();
  pool.ParallelForHelping(num_blocks, [&, token](size_t b) {
    // Helpers re-establish the query's cancel token (it is thread-local)
    // and skip their block once it fires: the buffer keeps stale-but-
    // defined values and the caller's own post-pass poll discards the
    // result.
    CancelActivation activate(token);
    if (CancelRequested()) return;
    const size_t begin = b * block;
    const size_t end = std::min(rows, begin + block);
    ComputeDistancesRange(train, query, metric, norms, begin, end,
                          out.subspan(begin, end - begin));
  });
}

// Distance/sort spans are recorded against the thread-local active trace
// (null — and free — except inside an explicitly traced request). Only the
// per-query entry points are instrumented; TopKAmongRows is called an
// exponential number of times by the enumeration baselines and must stay
// span-free.

std::vector<double> AllDistances(const Matrix& train, std::span<const float> query,
                                 Metric metric, const CorpusNorms* norms) {
  ScopedPhase span(Phase::kDistance);
  std::vector<double> dists(train.Rows());
  ComputeDistances(train, query, metric, norms, dists);
  return dists;
}

void ArgsortByDistanceInto(const Matrix& train, std::span<const float> query,
                           Metric metric, const CorpusNorms* norms,
                           std::vector<int>* order) {
  std::vector<double>& dists = DistanceScratch(train.Rows());
  SingleQueryDistances(train, query, metric, norms, dists);
  // Cancellation poll between the two O(N)+O(N log N) passes. The early
  // out must stay structurally valid — downstream recursions
  // KNNSHAP_CHECK a full-sized ranking — so it returns the identity
  // order; the engine discards the garbage result once it observes the
  // expired token.
  if (CancelRequested()) {
    order->resize(train.Rows());
    std::iota(order->begin(), order->end(), 0);
    return;
  }
  ScopedPhase span(Phase::kSort);
  ArgsortDistances(dists, order);
}

std::vector<int> ArgsortByDistance(const Matrix& train, std::span<const float> query,
                                   Metric metric, const CorpusNorms* norms) {
  std::vector<int> order;
  ArgsortByDistanceInto(train, query, metric, norms, &order);
  return order;
}

void TopROrderByDistance(const Matrix& train, std::span<const float> query,
                         size_t r, Metric metric, const CorpusNorms* norms,
                         std::vector<int>* order) {
  const size_t rows = train.Rows();
  r = std::min(r, rows);
  if (r == 0) {
    order->clear();
    return;
  }
  std::vector<double>& dists = DistanceScratch(rows);
  SingleQueryDistances(train, query, metric, norms, dists);
  if (CancelRequested()) {
    order->resize(r);
    std::iota(order->begin(), order->end(), 0);
    return;
  }
  ScopedPhase span(Phase::kSelect);
  BlockedTopR(dists, r, order);
}

void TopKNeighborsInto(const Matrix& train, std::span<const float> query,
                       size_t k, Metric metric, const CorpusNorms* norms,
                       std::vector<Neighbor>* out) {
  out->clear();
  k = std::min(k, train.Rows());
  if (k == 0) return;
  std::vector<double>& dists = DistanceScratch(train.Rows());
  SingleQueryDistances(train, query, metric, norms, dists);
  ScopedPhase span(Phase::kSelect);
  static thread_local std::vector<int> order;
  BlockedTopR(dists, k, &order);
  out->reserve(k);
  for (int pos : order) {
    out->push_back({pos, dists[static_cast<size_t>(pos)]});
  }
}

std::vector<Neighbor> TopKNeighbors(const Matrix& train, std::span<const float> query,
                                    size_t k, Metric metric, const CorpusNorms* norms) {
  std::vector<Neighbor> out;
  TopKNeighborsInto(train, query, k, metric, norms, &out);
  return out;
}

void ForEachBatchedTopK(
    const Matrix& train, const Matrix& queries, size_t k, Metric metric,
    const CorpusNorms* norms,
    const std::function<void(size_t, const std::vector<Neighbor>&)>& fn) {
  const size_t rows = train.Rows();
  const size_t num_queries = queries.Rows();
  k = std::min(k, rows);
  if (num_queries == 0 || k == 0) {
    const std::vector<Neighbor> empty;
    for (size_t j = 0; j < num_queries; ++j) fn(j, empty);
    return;
  }
  // Chunk so the distance buffer stays <= ~32 MB however large the corpus.
  // The buffer is call-local (reused across chunks) rather than
  // thread_local: `fn` is caller code and may legally re-enter this
  // function on the same thread.
  constexpr size_t kMaxBufferDoubles = size_t{4} << 20;
  const size_t chunk =
      std::max<size_t>(1, std::min<size_t>(16, kMaxBufferDoubles / rows));
  std::vector<double> buffer;
  Matrix block;
  for (size_t q0 = 0; q0 < num_queries; q0 += chunk) {
    // Per-chunk cancellation poll: remaining queries get an empty
    // neighbor list (right-shaped for `fn`; the request's result is
    // discarded by the engine anyway).
    if (CancelRequested()) {
      const std::vector<Neighbor> empty;
      for (size_t j = q0; j < num_queries; ++j) fn(j, empty);
      return;
    }
    const size_t q1 = std::min(num_queries, q0 + chunk);
    block = Matrix(q1 - q0, queries.Cols());
    for (size_t j = q0; j < q1; ++j) {
      auto src = queries.Row(j);
      std::copy(src.begin(), src.end(), block.MutableRow(j - q0).begin());
    }
    buffer.resize((q1 - q0) * rows);
    {
      ScopedPhase span(Phase::kDistance);
      ComputeDistanceMatrix(train, block, metric, norms, buffer);
    }
    for (size_t j = q0; j < q1; ++j) {
      std::vector<Neighbor> top;
      {
        ScopedPhase span(Phase::kSelect);
        top = SelectTopK(
            std::span<const double>(buffer.data() + (j - q0) * rows, rows), {}, k);
      }
      fn(j, top);
    }
  }
}

std::vector<Neighbor> TopKAmongRows(const Matrix& train, std::span<const int> rows,
                                    std::span<const float> query, size_t k,
                                    Metric metric) {
  KNNSHAP_CHECK(query.size() == train.Cols(), "query dimension mismatch");
  std::vector<Neighbor> all;
  all.reserve(rows.size());
  for (int row : rows) {
    all.push_back({row, internal::DistanceUnchecked(
                            train.Row(static_cast<size_t>(row)).data(), query.data(),
                            query.size(), metric)});
  }
  size_t keep = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(keep), all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      if (a.distance != b.distance) return a.distance < b.distance;
                      return a.index < b.index;
                    });
  all.resize(keep);
  return all;
}

BruteForceIndex::BruteForceIndex(const Matrix* train, Metric metric)
    : train_(train), metric_(metric) {
  KNNSHAP_CHECK(train != nullptr, "null training matrix");
  norms_ = CorpusNorms(*train);
}

std::vector<Neighbor> BruteForceIndex::Query(std::span<const float> query,
                                             size_t k) const {
  return TopKNeighbors(*train_, query, k, metric_, &norms_);
}

std::vector<int> BruteForceIndex::FullOrder(std::span<const float> query) const {
  return ArgsortByDistance(*train_, query, metric_, &norms_);
}

}  // namespace knnshap
