// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "knn/neighbors.h"

#include <algorithm>
#include <numeric>

#include "obs/trace.h"
#include "util/cancel.h"
#include "util/common.h"

namespace knnshap {

namespace {

// Per-thread distance scratch: the valuation engine drives many queries
// per pool thread, and a fresh N-double buffer per query would dominate
// small-corpus requests. ResizeScratch frees the buffer again once a
// request is far smaller than the retained high-water mark.
std::vector<double>& DistanceScratch(size_t rows) {
  static thread_local std::vector<double> scratch;
  ResizeScratch(&scratch, rows);
  return scratch;
}

}  // namespace

// Distance/sort spans are recorded against the thread-local active trace
// (null — and free — except inside an explicitly traced request). Only the
// per-query entry points are instrumented; TopKAmongRows is called an
// exponential number of times by the enumeration baselines and must stay
// span-free.

std::vector<double> AllDistances(const Matrix& train, std::span<const float> query,
                                 Metric metric, const CorpusNorms* norms) {
  ScopedPhase span(Phase::kDistance);
  std::vector<double> dists(train.Rows());
  ComputeDistances(train, query, metric, norms, dists);
  return dists;
}

std::vector<int> ArgsortByDistance(const Matrix& train, std::span<const float> query,
                                   Metric metric, const CorpusNorms* norms) {
  std::vector<double>& dists = DistanceScratch(train.Rows());
  {
    ScopedPhase span(Phase::kDistance);
    ComputeDistances(train, query, metric, norms, dists);
  }
  // Cancellation poll between the two O(N)+O(N log N) passes. The early
  // out must stay structurally valid — downstream recursions
  // KNNSHAP_CHECK a full-sized ranking — so it returns the identity
  // order; the engine discards the garbage result once it observes the
  // expired token.
  if (CancelRequested()) {
    std::vector<int> identity(train.Rows());
    std::iota(identity.begin(), identity.end(), 0);
    return identity;
  }
  ScopedPhase span(Phase::kSort);
  std::vector<int> order;
  ArgsortDistances(dists, &order);
  return order;
}

std::vector<Neighbor> TopKNeighbors(const Matrix& train, std::span<const float> query,
                                    size_t k, Metric metric, const CorpusNorms* norms) {
  k = std::min(k, train.Rows());
  if (k == 0) return {};
  std::vector<double>& dists = DistanceScratch(train.Rows());
  {
    ScopedPhase span(Phase::kDistance);
    ComputeDistances(train, query, metric, norms, dists);
  }
  ScopedPhase span(Phase::kSort);
  return SelectTopK(dists, {}, k);
}

void ForEachBatchedTopK(
    const Matrix& train, const Matrix& queries, size_t k, Metric metric,
    const CorpusNorms* norms,
    const std::function<void(size_t, const std::vector<Neighbor>&)>& fn) {
  const size_t rows = train.Rows();
  const size_t num_queries = queries.Rows();
  k = std::min(k, rows);
  if (num_queries == 0 || k == 0) {
    const std::vector<Neighbor> empty;
    for (size_t j = 0; j < num_queries; ++j) fn(j, empty);
    return;
  }
  // Chunk so the distance buffer stays <= ~32 MB however large the corpus.
  // The buffer is call-local (reused across chunks) rather than
  // thread_local: `fn` is caller code and may legally re-enter this
  // function on the same thread.
  constexpr size_t kMaxBufferDoubles = size_t{4} << 20;
  const size_t chunk =
      std::max<size_t>(1, std::min<size_t>(16, kMaxBufferDoubles / rows));
  std::vector<double> buffer;
  Matrix block;
  for (size_t q0 = 0; q0 < num_queries; q0 += chunk) {
    // Per-chunk cancellation poll: remaining queries get an empty
    // neighbor list (right-shaped for `fn`; the request's result is
    // discarded by the engine anyway).
    if (CancelRequested()) {
      const std::vector<Neighbor> empty;
      for (size_t j = q0; j < num_queries; ++j) fn(j, empty);
      return;
    }
    const size_t q1 = std::min(num_queries, q0 + chunk);
    block = Matrix(q1 - q0, queries.Cols());
    for (size_t j = q0; j < q1; ++j) {
      auto src = queries.Row(j);
      std::copy(src.begin(), src.end(), block.MutableRow(j - q0).begin());
    }
    buffer.resize((q1 - q0) * rows);
    {
      ScopedPhase span(Phase::kDistance);
      ComputeDistanceMatrix(train, block, metric, norms, buffer);
    }
    for (size_t j = q0; j < q1; ++j) {
      std::vector<Neighbor> top;
      {
        ScopedPhase span(Phase::kSort);
        top = SelectTopK(
            std::span<const double>(buffer.data() + (j - q0) * rows, rows), {}, k);
      }
      fn(j, top);
    }
  }
}

std::vector<Neighbor> TopKAmongRows(const Matrix& train, std::span<const int> rows,
                                    std::span<const float> query, size_t k,
                                    Metric metric) {
  KNNSHAP_CHECK(query.size() == train.Cols(), "query dimension mismatch");
  std::vector<Neighbor> all;
  all.reserve(rows.size());
  for (int row : rows) {
    all.push_back({row, internal::DistanceUnchecked(
                            train.Row(static_cast<size_t>(row)).data(), query.data(),
                            query.size(), metric)});
  }
  size_t keep = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(keep), all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      if (a.distance != b.distance) return a.distance < b.distance;
                      return a.index < b.index;
                    });
  all.resize(keep);
  return all;
}

BruteForceIndex::BruteForceIndex(const Matrix* train, Metric metric)
    : train_(train), metric_(metric) {
  KNNSHAP_CHECK(train != nullptr, "null training matrix");
  norms_ = CorpusNorms(*train);
}

std::vector<Neighbor> BruteForceIndex::Query(std::span<const float> query,
                                             size_t k) const {
  return TopKNeighbors(*train_, query, k, metric_, &norms_);
}

std::vector<int> BruteForceIndex::FullOrder(std::span<const float> query) const {
  return ArgsortByDistance(*train_, query, metric_, &norms_);
}

}  // namespace knnshap
