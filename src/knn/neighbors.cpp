// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "knn/neighbors.h"

#include <algorithm>
#include <numeric>

#include "util/bounded_heap.h"
#include "util/common.h"

namespace knnshap {

std::vector<double> AllDistances(const Matrix& train, std::span<const float> query,
                                 Metric metric) {
  std::vector<double> dists(train.Rows());
  for (size_t i = 0; i < train.Rows(); ++i) {
    dists[i] = Distance(train.Row(i), query, metric);
  }
  return dists;
}

std::vector<int> ArgsortByDistance(const Matrix& train, std::span<const float> query,
                                   Metric metric) {
  std::vector<double> dists = AllDistances(train, query, metric);
  std::vector<int> order(train.Rows());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&dists](int a, int b) {
    double da = dists[static_cast<size_t>(a)];
    double db = dists[static_cast<size_t>(b)];
    if (da != db) return da < db;
    return a < b;  // Deterministic tie-break.
  });
  return order;
}

std::vector<Neighbor> TopKNeighbors(const Matrix& train, std::span<const float> query,
                                    size_t k, Metric metric) {
  k = std::min(k, train.Rows());
  if (k == 0) return {};
  BoundedMaxHeap<int> heap(k);
  for (size_t i = 0; i < train.Rows(); ++i) {
    heap.Push(Distance(train.Row(i), query, metric), static_cast<int>(i));
  }
  auto sorted = heap.SortedEntries();
  std::vector<Neighbor> out;
  out.reserve(sorted.size());
  for (const auto& e : sorted) out.push_back({e.payload, e.key});
  // Deterministic tie-break by index within equal distances.
  std::stable_sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.index < b.index;
  });
  return out;
}

BruteForceIndex::BruteForceIndex(const Matrix* train, Metric metric)
    : train_(train), metric_(metric) {
  KNNSHAP_CHECK(train != nullptr, "null training matrix");
}

std::vector<Neighbor> BruteForceIndex::Query(std::span<const float> query,
                                             size_t k) const {
  return TopKNeighbors(*train_, query, k, metric_);
}

std::vector<int> BruteForceIndex::FullOrder(std::span<const float> query) const {
  return ArgsortByDistance(*train_, query, metric_);
}

}  // namespace knnshap
