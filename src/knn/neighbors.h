// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Exact nearest-neighbor primitives over a Dataset:
//  * ArgsortByDistance — the full ascending ordering Algorithm 1 needs;
//  * TopKNeighbors     — partial selection when only K* neighbors matter
//                        (the truncated recursion of Theorem 2);
//  * BruteForceIndex   — convenience wrapper caching the training matrix
//                        and its per-row norms.
// Distances default to L2, matching the paper. All entry points run
// through the batched kernels of knn/distance_kernel.h: distances come
// from the runtime-dispatched SIMD/blocked path (or the scalar reference
// when selected), and orderings from the packed-key sort, which breaks
// ties by row index by construction. Callers that value many queries
// against one corpus should build a CorpusNorms once and pass it in so
// the per-row norm work amortizes.

#ifndef KNNSHAP_KNN_NEIGHBORS_H_
#define KNNSHAP_KNN_NEIGHBORS_H_

#include <functional>
#include <span>
#include <vector>

#include "dataset/dataset.h"
#include "knn/distance_kernel.h"
#include "knn/metric.h"

namespace knnshap {

/// A retrieved neighbor: training-row index plus its distance to the query.
struct Neighbor {
  int index;
  double distance;
};

/// Tuning knobs for intra-query block parallelism. ParallelFor shards
/// across *queries*; one huge query against a million-row corpus would
/// otherwise run serial. At or above `min_rows` rows the single-query entry
/// points shard the distance pass (and the top-R selection, on the partial
/// path) into `block_rows`-row blocks drained cooperatively by the shared
/// pool — ThreadPool::ParallelForHelping, so the path composes with the
/// serve pipeline's request-per-worker model. Results are bit-identical to
/// the serial path at any block size (per-block exact top-R + exact merge).
struct IntraQueryOptions {
  size_t min_rows = size_t{1} << 18;    ///< Stay serial below this corpus size.
  size_t block_rows = size_t{1} << 16;  ///< Rows per block.
};

/// Process-wide intra-query options (tests shrink the thresholds to cover
/// the blocked path on small fixtures). block_rows is clamped to >= 1.
void SetIntraQueryOptions(const IntraQueryOptions& options);
IntraQueryOptions GetIntraQueryOptions();

/// Distances from `query` to every training row, written to `out` (length
/// >= train.Rows()), sharded across the pool per IntraQueryOptions.
/// Records the kDistance span on the calling thread (wall clock).
void SingleQueryDistances(const Matrix& train, std::span<const float> query,
                          Metric metric, const CorpusNorms* norms,
                          std::span<double> out);

/// Indices of all training rows sorted by ascending distance to `query`
/// (ties broken by index, making results deterministic).
std::vector<int> ArgsortByDistance(const Matrix& train, std::span<const float> query,
                                   Metric metric = Metric::kL2,
                                   const CorpusNorms* norms = nullptr);

/// Scratch-reusing ArgsortByDistance: writes the order into *order instead
/// of returning a fresh vector, so per-query callers (the exact-SV loops)
/// amortize the allocation across a request.
void ArgsortByDistanceInto(const Matrix& train, std::span<const float> query,
                           Metric metric, const CorpusNorms* norms,
                           std::vector<int>* order);

/// The first min(r, N) entries of the ArgsortByDistance order — ascending
/// (distance, index) — without ordering the tail: streaming top-R selection
/// (knn/selection.h), block-parallel per IntraQueryOptions with an exact
/// shard merge. The truncated-exact valuation path. On cancellation the
/// order degrades to an identity prefix (the engine discards the result).
void TopROrderByDistance(const Matrix& train, std::span<const float> query,
                         size_t r, Metric metric, const CorpusNorms* norms,
                         std::vector<int>* order);

/// The k nearest rows to `query`, ascending by distance. k is clamped to
/// the number of rows. One batched distance pass plus O(N + k log k)
/// packed-key selection.
std::vector<Neighbor> TopKNeighbors(const Matrix& train, std::span<const float> query,
                                    size_t k, Metric metric = Metric::kL2,
                                    const CorpusNorms* norms = nullptr);

/// Scratch-reusing TopKNeighbors: appends into *out (cleared first).
void TopKNeighborsInto(const Matrix& train, std::span<const float> query,
                       size_t k, Metric metric, const CorpusNorms* norms,
                       std::vector<Neighbor>* out);

/// Calls fn(query_row, neighbors) for every row of `queries`, retrieving
/// the k nearest training rows through the query-block × corpus batched
/// kernel. Queries are processed in chunks sized so the distance buffer
/// stays bounded (~32 MB); neighbor lists are bit-identical to per-query
/// TopKNeighbors. The batch evaluation path for classifier accuracy /
/// regressor MSE style sweeps.
void ForEachBatchedTopK(
    const Matrix& train, const Matrix& queries, size_t k, Metric metric,
    const CorpusNorms* norms,
    const std::function<void(size_t, const std::vector<Neighbor>&)>& fn);

/// Top-min(k, |rows|) of the listed training rows by distance to `query`,
/// ascending, ties broken by row id. The subset-utility evaluator behind
/// Eq (5)/(25)-(27): the enumeration oracle and Monte-Carlo baselines call
/// it O(2^N) times, so the dimension check is hoisted out of the per-row
/// loop.
std::vector<Neighbor> TopKAmongRows(const Matrix& train, std::span<const int> rows,
                                    std::span<const float> query, size_t k,
                                    Metric metric = Metric::kL2);

/// Distances from `query` to every training row.
std::vector<double> AllDistances(const Matrix& train, std::span<const float> query,
                                 Metric metric = Metric::kL2,
                                 const CorpusNorms* norms = nullptr);

/// Thin exact-search index over a training matrix. Precomputes row norms
/// at construction so every query hits the fast kernel path.
class BruteForceIndex {
 public:
  explicit BruteForceIndex(const Matrix* train, Metric metric = Metric::kL2);

  std::vector<Neighbor> Query(std::span<const float> query, size_t k) const;
  std::vector<int> FullOrder(std::span<const float> query) const;

  const Matrix& Train() const { return *train_; }
  Metric GetMetric() const { return metric_; }
  const CorpusNorms& Norms() const { return norms_; }

 private:
  const Matrix* train_;
  Metric metric_;
  CorpusNorms norms_;
};

}  // namespace knnshap

#endif  // KNNSHAP_KNN_NEIGHBORS_H_
