// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Exact nearest-neighbor primitives over a Dataset:
//  * ArgsortByDistance — the full ascending ordering Algorithm 1 needs;
//  * TopKNeighbors     — partial selection when only K* neighbors matter
//                        (the truncated recursion of Theorem 2);
//  * BruteForceIndex   — convenience wrapper caching the training matrix.
// Distances default to L2, matching the paper.

#ifndef KNNSHAP_KNN_NEIGHBORS_H_
#define KNNSHAP_KNN_NEIGHBORS_H_

#include <span>
#include <vector>

#include "dataset/dataset.h"
#include "knn/metric.h"

namespace knnshap {

/// A retrieved neighbor: training-row index plus its distance to the query.
struct Neighbor {
  int index;
  double distance;
};

/// Indices of all training rows sorted by ascending distance to `query`
/// (ties broken by index, making results deterministic).
std::vector<int> ArgsortByDistance(const Matrix& train, std::span<const float> query,
                                   Metric metric = Metric::kL2);

/// The k nearest rows to `query`, ascending by distance. k is clamped to
/// the number of rows. Uses a bounded heap: O(N log k).
std::vector<Neighbor> TopKNeighbors(const Matrix& train, std::span<const float> query,
                                    size_t k, Metric metric = Metric::kL2);

/// Distances from `query` to every training row.
std::vector<double> AllDistances(const Matrix& train, std::span<const float> query,
                                 Metric metric = Metric::kL2);

/// Thin exact-search index over a training matrix.
class BruteForceIndex {
 public:
  explicit BruteForceIndex(const Matrix* train, Metric metric = Metric::kL2);

  std::vector<Neighbor> Query(std::span<const float> query, size_t k) const;
  std::vector<int> FullOrder(std::span<const float> query) const;

  const Matrix& Train() const { return *train_; }
  Metric GetMetric() const { return metric_; }

 private:
  const Matrix* train_;
  Metric metric_;
};

}  // namespace knnshap

#endif  // KNNSHAP_KNN_NEIGHBORS_H_
