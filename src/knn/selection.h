// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Streaming top-R selection over packed distance keys — the other half of
// the query path. BENCH_kernel.json at N=1M d=16 puts the batched distance
// kernel at ~6.4 ms/query and the full packed argsort at ~81 ms: selection
// dominates by >12x once the kernel is fast. The exact-SV recursion
// consumes neighbors strictly in rank order and the value at rank i decays
// like O(1/i), so the hot path only ever needs the first R ranks exactly;
// this header provides them without sorting the tail.
//
// Ordering contract. ArgsortDistances orders by packed 64-bit keys
// (float-rounded distance bits << 32 | index) and then re-sorts runs of
// equal float keys by the exact (double distance, index) pair. Float
// rounding is monotone, so that composite order *is* the ascending
// (double distance, index) order — and because the low word makes every
// packed key unique, the r smallest packed keys are set-equal to the
// first r entries of the full order up to the boundary float-tie band.
// Every selector below therefore gathers its candidate prefix plus the
// whole band of entries sharing the boundary float key, sorts those few
// candidates exactly, and truncates: the result is bit-identical to the
// same-length prefix of ArgsortDistances, on every input, including
// tie-heavy ones.
//
// Negative zero. The packed key canonicalizes -0.0 to +0.0 before the
// IEEE bit flip (SortableBits adds +0.0f after the float rounding). -0.0
// and +0.0 are the only two distinct floats that compare equal, so
// without the canonicalization the packed order and the (double
// distance, index) comparator could disagree on exactly that pair; with
// it, a distance of -0.0 keys identically to +0.0 and the tie breaks by
// index — the same answer every double comparator gives, because
// -0.0 == +0.0 under operator== and operator<. External callers merging
// per-shard candidate runs (MergeTopCandidates below) may therefore
// compare raw double distances with (dist, index) and reproduce the
// packed order bit for bit; -0.0 distances (cosine rounding) need no
// special-casing on their side. Pinned by select_test.cpp.
//
// Three interchangeable strategies (KNNSHAP_SELECT forces one in CI):
//   heap   one streaming pass with a bounded max-heap of packed keys plus
//          a second O(n) scan for the boundary band — O(n + r log r) and
//          no O(n) key buffer mutation; the r << n fast path.
//   nth    std::nth_element partition of the key buffer at r, then the
//          band gather — O(n) with better constants when r is a sizable
//          fraction of n.
//   sort   full ArgsortDistances, truncated — the oracle the other two
//          are tested against.
// Selection: SetSelectOverride() (strongest), else the KNNSHAP_SELECT
// environment variable ("heap", "nth", "sort", "auto"), else auto (heap
// when r is small relative to n, nth otherwise).
//
// The derivation of the truncated-exact tail bound that picks R lives in
// src/knn/README.md; the parity suite is tests/select_test.cpp.

#ifndef KNNSHAP_KNN_SELECTION_H_
#define KNNSHAP_KNN_SELECTION_H_

#include <cstdint>
#include <span>
#include <vector>

namespace knnshap {

/// Top-R selection strategies. kAuto resolves at call time from r and n.
enum class SelectKind {
  kAuto,  ///< heap when r << n, nth otherwise.
  kHeap,  ///< Streaming bounded max-heap, single pass + band scan.
  kNth,   ///< nth_element partition of the packed-key buffer.
  kSort,  ///< Full argsort, truncated — the parity oracle.
};

/// Human-readable strategy name ("auto", "heap", "nth", "sort").
const char* SelectName(SelectKind kind);

/// Forces a selection strategy process-wide (tests, benchmarks, and the
/// KNNSHAP_SELECT escape hatch). kAuto restores the size heuristic.
void SetSelectOverride(SelectKind kind);

/// The strategy PartialArgsortDistances will run for a given (r, n), after
/// the override, the KNNSHAP_SELECT environment variable, and the auto
/// heuristic.
SelectKind ActiveSelect(size_t r, size_t n);

/// The first min(r, n) entries of ArgsortDistances(dists), bit-identically
/// — ascending by (double distance, index) — without ordering the tail.
/// Appends into *order (cleared first). r >= n degrades to the full sort.
void PartialArgsortDistances(std::span<const double> dists, size_t r,
                             std::vector<int>* order);

/// Exact merge of per-shard candidate lists: keeps the first min(r, size)
/// entries of *candidates by (dists[i], i) ascending, in order. When every
/// shard contributed its own exact top-r (e.g. from PartialArgsortDistances
/// over a block, offset to global indices), the result is bit-identical to
/// the global top-r — the shard-merge building block for blocked
/// single-query parallelism and multi-shard serving.
void MergeTopCandidates(std::span<const double> dists,
                        std::vector<int>* candidates, size_t r);

/// K-way merge of per-shard candidate *runs*, each already ascending by
/// (dists[i], i) — exactly what PartialArgsortDistances over a contiguous
/// shard produces after offsetting to global indices. Appends the first
/// min(r, total) entries of the merged order into *out (cleared first),
/// bit-identical to MergeTopCandidates over the concatenation but in
/// O(total * runs) comparisons instead of a full sort — the multi-shard
/// serving path runs it at r = N for the full-recursion methods, where
/// re-sorting would repay the argsort the shards just parallelized.
void MergeSortedCandidateRuns(std::span<const double> dists,
                              std::span<const std::vector<int>> runs, size_t r,
                              std::vector<int>* out);

namespace internal {
/// Monotone map from a double distance to 32 sortable bits: round to float
/// (monotone), then flip IEEE bits so unsigned comparison matches numeric
/// order for negatives too (cosine can round a hair below zero). Shared by
/// every packed-key path so their boundary bands agree bit for bit.
uint32_t SortableBits(double value);
}  // namespace internal

}  // namespace knnshap

#endif  // KNNSHAP_KNN_SELECTION_H_
