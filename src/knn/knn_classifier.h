// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// K-nearest-neighbor classifier (the ML model whose utility the paper
// values) plus the KNN utility function nu(S) of Eq (5)/(8)/(26).

#ifndef KNNSHAP_KNN_KNN_CLASSIFIER_H_
#define KNNSHAP_KNN_KNN_CLASSIFIER_H_

#include <span>
#include <vector>

#include "dataset/dataset.h"
#include "knn/distance_kernel.h"
#include "knn/metric.h"
#include "knn/neighbors.h"
#include "knn/weights.h"

namespace knnshap {

/// Unweighted or weighted KNN classifier over a training Dataset.
/// Precomputes corpus row norms at construction so every prediction runs
/// the fast kernel path.
class KnnClassifier {
 public:
  /// The training data must have labels. `k` >= 1.
  KnnClassifier(const Dataset* train, int k, WeightConfig weights = {},
                Metric metric = Metric::kL2);

  /// P[query -> label] = (weighted) fraction of the K nearest neighbors
  /// carrying `label`.
  double PredictProba(std::span<const float> query, int label) const;

  /// Most probable label for the query (ties broken toward the smaller id).
  int Predict(std::span<const float> query) const;

  /// Mean accuracy over a labeled test set. Runs the query-block ×
  /// corpus batched kernel (chunked so the distance buffer stays bounded);
  /// per-query predictions are bit-identical to Predict().
  double Accuracy(const Dataset& test) const;

  int K() const { return k_; }
  const Dataset& Train() const { return *train_; }

 private:
  /// Voting over already-retrieved neighbors (shared by Predict/Accuracy).
  int PredictFromNeighbors(const std::vector<Neighbor>& nns) const;

  const Dataset* train_;
  int k_;
  WeightConfig weights_;
  Metric metric_;
  int num_classes_;
  CorpusNorms norms_;
};

/// The KNN utility of Eq (5) evaluated on an explicit subset S of training
/// rows for one test point: nu(S) = (1/K) sum_{k<=min(K,|S|)}
/// 1[label of the k-th nearest row in S == test_label].
/// `subset` holds training-row ids; the function is the ground-truth
/// evaluator used by the enumeration oracle and the Monte-Carlo baselines.
double UnweightedKnnClassUtility(const Dataset& train, std::span<const int> subset,
                                 std::span<const float> query, int test_label, int k,
                                 Metric metric = Metric::kL2);

/// Weighted variant (Eq 26): sum over the top-K rows in S of
/// w_k * 1[label == test_label], with weights from `config` normalized over
/// the retrieved neighbors.
double WeightedKnnClassUtility(const Dataset& train, std::span<const int> subset,
                               std::span<const float> query, int test_label, int k,
                               const WeightConfig& config, Metric metric = Metric::kL2);

}  // namespace knnshap

#endif  // KNNSHAP_KNN_KNN_CLASSIFIER_H_
