// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "knn/selection.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "knn/distance_kernel.h"
#include "knn/neighbors.h"
#include "util/common.h"

namespace knnshap {

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

namespace {

std::atomic<SelectKind> g_select_override{SelectKind::kAuto};

SelectKind EnvSelect() {
  static SelectKind env_kind = [] {
    const char* env = std::getenv("KNNSHAP_SELECT");
    if (env == nullptr) return SelectKind::kAuto;
    std::string value(env);
    if (value == "heap") return SelectKind::kHeap;
    if (value == "nth") return SelectKind::kNth;
    if (value == "sort") return SelectKind::kSort;
    return SelectKind::kAuto;
  }();
  return env_kind;
}

}  // namespace

const char* SelectName(SelectKind kind) {
  switch (kind) {
    case SelectKind::kAuto:
      return "auto";
    case SelectKind::kHeap:
      return "heap";
    case SelectKind::kNth:
      return "nth";
    case SelectKind::kSort:
      return "sort";
  }
  return "unknown";
}

void SetSelectOverride(SelectKind kind) {
  g_select_override.store(kind, std::memory_order_relaxed);
}

SelectKind ActiveSelect(size_t r, size_t n) {
  SelectKind kind = g_select_override.load(std::memory_order_relaxed);
  if (kind == SelectKind::kAuto) kind = EnvSelect();
  if (kind == SelectKind::kAuto) {
    // Heap rejections are a predicted-not-taken compare once the heap is
    // warm, so the streaming pass wins while r is a small fraction of n;
    // nth_element's partition wins once most elements survive selection.
    kind = (r <= n / 16) ? SelectKind::kHeap : SelectKind::kNth;
  }
  return kind;
}

namespace internal {

uint32_t SortableBits(double value) {
  float f = static_cast<float>(value);
  // Canonicalize -0.0f to +0.0f: the only two distinct floats that compare
  // equal, so without this they would land in different packed-key runs
  // while the exact (double, index) band sort merges them — the one input
  // where packed order and comparator order could disagree.
  f += 0.0f;
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return (bits & 0x80000000u) ? ~bits : (bits | 0x80000000u);
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Full argsort (the sort path and the parity oracle)
// ---------------------------------------------------------------------------

void ArgsortDistances(std::span<const double> dists, std::vector<int>* order) {
  const size_t n = dists.size();
  KNNSHAP_CHECK(n < (size_t{1} << 31), "corpus too large for packed argsort");
  static thread_local std::vector<uint64_t> keys;
  ResizeScratch(&keys, n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = (static_cast<uint64_t>(internal::SortableBits(dists[i])) << 32) |
              static_cast<uint32_t>(i);
  }
  std::sort(keys.begin(), keys.end());
  order->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*order)[i] = static_cast<int>(keys[i] & 0xffffffffu);
  }
  // Float rounding is monotone, so only runs of equal float keys can
  // deviate from the exact (double distance, index) order; re-sort them.
  size_t run = 0;
  for (size_t i = 1; i <= n; ++i) {
    if (i == n || (keys[i] >> 32) != (keys[run] >> 32)) {
      if (i - run > 1) {
        std::sort(order->begin() + static_cast<long>(run),
                  order->begin() + static_cast<long>(i), [&dists](int a, int b) {
                    double da = dists[static_cast<size_t>(a)];
                    double db = dists[static_cast<size_t>(b)];
                    if (da != db) return da < db;
                    return a < b;
                  });
      }
      run = i;
    }
  }
}

// ---------------------------------------------------------------------------
// Streaming top-R
// ---------------------------------------------------------------------------

namespace {

// Exact-sorts a candidate set (prefix plus the boundary float-tie band) by
// (double distance, index) and keeps the first r — the shared finishing
// step that makes every strategy agree with the full-sort prefix bit for
// bit.
void FinishCandidates(std::span<const double> dists, std::vector<uint32_t>* band,
                      size_t r, std::vector<int>* order) {
  std::sort(band->begin(), band->end(), [&dists](uint32_t a, uint32_t b) {
    double da = dists[a];
    double db = dists[b];
    if (da != db) return da < db;
    return a < b;
  });
  band->resize(r);
  order->resize(r);
  for (size_t i = 0; i < r; ++i) {
    (*order)[i] = static_cast<int>((*band)[i]);
  }
}

// Inverse of SortableBits: the float whose sortable bits are `s`.
float FloatFromSortableBits(uint32_t s) {
  const uint32_t fbits = (s & 0x80000000u) ? (s & 0x7fffffffu) : ~s;
  float f;
  std::memcpy(&f, &fbits, sizeof(f));
  return f;
}

// Largest double that could still round to <= the float with sortable bits
// `s`: everything above (double)nextafterf(f, +inf) rounds strictly past f
// (rounding moves by at most half an ulp), so a single double compare
// rejects it without the convert/pack work. Conservative at the edges
// (infinite f yields an accept-all cutoff), never wrong.
double RejectCutoff(uint32_t s) {
  const float f = FloatFromSortableBits(s);
  return static_cast<double>(
      std::nextafterf(f, std::numeric_limits<float>::infinity()));
}

// One streaming pass with a bounded max-heap of packed keys: after the
// pass the heap holds exactly the r smallest packed keys, whose maximum
// identifies the boundary float key; a second scan gathers that whole tie
// band. No O(n) buffer is written — only read — so the pass stays
// memory-bandwidth-light at corpus scale, and once the heap is warm the
// per-element work collapses to one predicted-not-taken double compare
// against the root's reject cutoff.
void TopRHeap(std::span<const double> dists, size_t r, std::vector<int>* order) {
  const size_t n = dists.size();
  static thread_local std::vector<uint64_t> heap;
  static thread_local std::vector<uint32_t> band;
  ShrinkScratch(&heap, r);
  ShrinkScratch(&band, r);
  heap.clear();
  double cutoff = std::numeric_limits<double>::infinity();
  // True when some key sharing the *current* root's float bits was dropped
  // (popped or rejected): only then can the final boundary band extend
  // beyond the heap, requiring the O(n) re-gather below. Dropped keys have
  // bits >= the root bits at drop time, and root bits only decrease, so
  // every root-bits decrease invalidates all earlier drops.
  bool dropped_at_root = false;
  uint32_t root_bits = 0;
  for (size_t i = 0; i < n; ++i) {
    // NaN falls through to the exact packed-key comparison below.
    if (dists[i] > cutoff) continue;
    const uint64_t key =
        (static_cast<uint64_t>(internal::SortableBits(dists[i])) << 32) |
        static_cast<uint32_t>(i);
    if (heap.size() < r) {
      heap.push_back(key);
      std::push_heap(heap.begin(), heap.end());
      if (heap.size() == r) {
        root_bits = static_cast<uint32_t>(heap.front() >> 32);
        cutoff = RejectCutoff(root_bits);
      }
    } else if (key < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = key;
      std::push_heap(heap.begin(), heap.end());
      const uint32_t new_root = static_cast<uint32_t>(heap.front() >> 32);
      // The popped key carried the old root bits; it stays relevant only
      // while the root bits have not moved past it.
      dropped_at_root = (new_root == root_bits);
      if (new_root != root_bits) {
        root_bits = new_root;
        cutoff = RejectCutoff(root_bits);
      }
    } else if (static_cast<uint32_t>(key >> 32) == root_bits) {
      dropped_at_root = true;
    }
  }
  const uint32_t kth_bits = static_cast<uint32_t>(heap.front() >> 32);
  band.clear();
  for (uint64_t key : heap) {
    if (static_cast<uint32_t>(key >> 32) != kth_bits) {
      band.push_back(static_cast<uint32_t>(key & 0xffffffffu));
    }
  }
  if (!dropped_at_root) {
    // Nothing sharing the boundary float key was ever dropped, so the
    // heap's own boundary entries ARE the whole band — no second scan.
    for (uint64_t key : heap) {
      if (static_cast<uint32_t>(key >> 32) == kth_bits) {
        band.push_back(static_cast<uint32_t>(key & 0xffffffffu));
      }
    }
  } else {
    // The heap only kept the r smallest boundary-key entries; the exact
    // (double, index) order inside the band may rank dropped ones earlier,
    // so the whole band is re-gathered from the input. Everything rounding
    // to the boundary float lies within one float ulp of it, so two double
    // compares reject the rest of the corpus before the convert.
    const float kth_float = FloatFromSortableBits(kth_bits);
    const double band_lo = static_cast<double>(std::nextafterf(
        kth_float, -std::numeric_limits<float>::infinity()));
    const double band_hi = static_cast<double>(std::nextafterf(
        kth_float, std::numeric_limits<float>::infinity()));
    for (size_t i = 0; i < n; ++i) {
      if (dists[i] < band_lo || dists[i] > band_hi) continue;
      if (internal::SortableBits(dists[i]) == kth_bits) {
        band.push_back(static_cast<uint32_t>(i));
      }
    }
  }
  FinishCandidates(dists, &band, r, order);
}

// nth_element partition of the full packed-key buffer, then the same band
// gather. O(n) with small constants when r is a sizable fraction of n.
void TopRNth(std::span<const double> dists, size_t r, std::vector<int>* order) {
  const size_t n = dists.size();
  static thread_local std::vector<uint64_t> keys;
  static thread_local std::vector<uint32_t> band;
  ResizeScratch(&keys, n);
  ShrinkScratch(&band, n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = (static_cast<uint64_t>(internal::SortableBits(dists[i])) << 32) |
              static_cast<uint32_t>(i);
  }
  std::nth_element(keys.begin(), keys.begin() + static_cast<long>(r - 1),
                   keys.end());
  // Everything strictly below the r-th float key landed in the prefix;
  // boundary ties can straddle it, so pull in the whole tie band and
  // resolve it with the exact (double, index) comparison.
  const uint32_t kth_bits = static_cast<uint32_t>(keys[r - 1] >> 32);
  band.clear();
  for (size_t i = 0; i < r; ++i) {
    if (static_cast<uint32_t>(keys[i] >> 32) != kth_bits) {
      band.push_back(static_cast<uint32_t>(keys[i] & 0xffffffffu));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (static_cast<uint32_t>(keys[i] >> 32) == kth_bits) {
      band.push_back(static_cast<uint32_t>(keys[i] & 0xffffffffu));
    }
  }
  FinishCandidates(dists, &band, r, order);
}

}  // namespace

void PartialArgsortDistances(std::span<const double> dists, size_t r,
                             std::vector<int>* order) {
  const size_t n = dists.size();
  KNNSHAP_CHECK(n < (size_t{1} << 31), "corpus too large for packed selection");
  if (r == 0 || n == 0) {
    order->clear();
    return;
  }
  if (r >= n) {
    // The full order is the r = n degenerate case of every strategy;
    // delegate to the one implementation of it.
    ArgsortDistances(dists, order);
    return;
  }
  switch (ActiveSelect(r, n)) {
    case SelectKind::kHeap:
      TopRHeap(dists, r, order);
      return;
    case SelectKind::kNth:
      TopRNth(dists, r, order);
      return;
    case SelectKind::kSort:
    case SelectKind::kAuto:  // ActiveSelect never returns kAuto.
      ArgsortDistances(dists, order);
      order->resize(r);
      return;
  }
  KNNSHAP_CHECK(false, "unknown selection strategy");
}

void MergeTopCandidates(std::span<const double> dists,
                        std::vector<int>* candidates, size_t r) {
  r = std::min(r, candidates->size());
  // The candidate lists are tiny (r per shard); a full exact sort is
  // cheaper to reason about than a k-way merge and equally fast here.
  std::sort(candidates->begin(), candidates->end(), [&dists](int a, int b) {
    double da = dists[static_cast<size_t>(a)];
    double db = dists[static_cast<size_t>(b)];
    if (da != db) return da < db;
    return a < b;
  });
  candidates->resize(r);
}

void MergeSortedCandidateRuns(std::span<const double> dists,
                              std::span<const std::vector<int>> runs, size_t r,
                              std::vector<int>* out) {
  out->clear();
  size_t total = 0;
  for (const auto& run : runs) total += run.size();
  r = std::min(r, total);
  out->reserve(r);
  // Linear scan over the run heads: with a handful of shards this beats a
  // heap (no sift overhead) and, unlike re-sorting the concatenation,
  // stays O(total * runs) at r = total. The comparator is the ordering
  // contract's (double distance, index) pair — each run already obeys it,
  // so the merged sequence is the global ArgsortDistances prefix.
  static thread_local std::vector<size_t> heads;
  heads.assign(runs.size(), 0);
  while (out->size() < r) {
    size_t best_run = runs.size();
    int best = -1;
    double best_dist = 0.0;
    for (size_t s = 0; s < runs.size(); ++s) {
      if (heads[s] >= runs[s].size()) continue;
      const int candidate = runs[s][heads[s]];
      const double dist = dists[static_cast<size_t>(candidate)];
      if (best < 0 || dist < best_dist ||
          (dist == best_dist && candidate < best)) {
        best_run = s;
        best = candidate;
        best_dist = dist;
      }
    }
    // total >= r guarantees a head exists until out is full.
    ++heads[best_run];
    out->push_back(best);
  }
}

// ---------------------------------------------------------------------------
// SelectTopK (declared in knn/distance_kernel.h)
// ---------------------------------------------------------------------------

std::vector<Neighbor> SelectTopK(std::span<const double> dists,
                                 std::span<const int> ids, size_t k) {
  const size_t n = dists.size();
  KNNSHAP_CHECK(n < (size_t{1} << 31), "corpus too large for packed selection");
  KNNSHAP_CHECK(ids.empty() || ids.size() == n, "id map size mismatch");
  k = std::min(k, n);
  if (k == 0) return {};
  if (ids.empty()) {
    // Identity ids tie-break by position == id, exactly the
    // PartialArgsortDistances order — so the KNNSHAP_SELECT-forced
    // strategies cover this path too.
    static thread_local std::vector<int> order;
    PartialArgsortDistances(dists, k, &order);
    std::vector<Neighbor> out;
    out.reserve(k);
    for (int pos : order) {
      out.push_back({pos, dists[static_cast<size_t>(pos)]});
    }
    return out;
  }
  // With an id map (LSH/SRP candidate rescoring) ties break by mapped id,
  // not buffer position, so the generic selector cannot be reused.
  auto id_of = [&ids](size_t pos) { return ids[pos]; };
  static thread_local std::vector<uint64_t> keys;
  static thread_local std::vector<uint32_t> band;
  ResizeScratch(&keys, n);
  ShrinkScratch(&band, n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = (static_cast<uint64_t>(internal::SortableBits(dists[i])) << 32) |
              static_cast<uint32_t>(i);
  }
  band.clear();
  if (k == n) {
    for (size_t i = 0; i < n; ++i) band.push_back(static_cast<uint32_t>(i));
  } else {
    std::nth_element(keys.begin(), keys.begin() + static_cast<long>(k - 1),
                     keys.end());
    const uint32_t kth_bits = static_cast<uint32_t>(keys[k - 1] >> 32);
    for (size_t i = 0; i < k; ++i) {
      band.push_back(static_cast<uint32_t>(keys[i] & 0xffffffffu));
    }
    for (size_t i = k; i < n; ++i) {
      if (static_cast<uint32_t>(keys[i] >> 32) == kth_bits) {
        band.push_back(static_cast<uint32_t>(keys[i] & 0xffffffffu));
      }
    }
  }
  std::sort(band.begin(), band.end(), [&](uint32_t a, uint32_t b) {
    double da = dists[a];
    double db = dists[b];
    if (da != db) return da < db;
    return id_of(a) < id_of(b);
  });
  band.resize(k);
  std::vector<Neighbor> out;
  out.reserve(k);
  for (uint32_t pos : band) out.push_back({id_of(pos), dists[pos]});
  return out;
}

}  // namespace knnshap
