// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "knn/knn_classifier.h"

#include <algorithm>

#include "knn/neighbors.h"
#include "util/common.h"

namespace knnshap {

KnnClassifier::KnnClassifier(const Dataset* train, int k, WeightConfig weights,
                             Metric metric)
    : train_(train), k_(k), weights_(weights), metric_(metric) {
  KNNSHAP_CHECK(train != nullptr && train->HasLabels(), "labeled training data required");
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  num_classes_ = *std::max_element(train->labels.begin(), train->labels.end()) + 1;
  norms_ = NormsForMetric(train->features, metric_);
}

double KnnClassifier::PredictProba(std::span<const float> query, int label) const {
  auto nns =
      TopKNeighbors(train_->features, query, static_cast<size_t>(k_), metric_, &norms_);
  std::vector<double> dists;
  dists.reserve(nns.size());
  for (const auto& nn : nns) dists.push_back(nn.distance);
  auto weights = ComputeWeights(dists, weights_);
  double proba = 0.0;
  for (size_t i = 0; i < nns.size(); ++i) {
    if (train_->labels[static_cast<size_t>(nns[i].index)] == label) proba += weights[i];
  }
  return proba;
}

int KnnClassifier::PredictFromNeighbors(const std::vector<Neighbor>& nns) const {
  std::vector<double> dists;
  dists.reserve(nns.size());
  for (const auto& nn : nns) dists.push_back(nn.distance);
  auto weights = ComputeWeights(dists, weights_);
  std::vector<double> votes(static_cast<size_t>(num_classes_), 0.0);
  for (size_t i = 0; i < nns.size(); ++i) {
    int label = train_->labels[static_cast<size_t>(nns[i].index)];
    if (label >= num_classes_) votes.resize(static_cast<size_t>(label) + 1, 0.0);
    votes[static_cast<size_t>(label)] += weights[i];
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

int KnnClassifier::Predict(std::span<const float> query) const {
  return PredictFromNeighbors(
      TopKNeighbors(train_->features, query, static_cast<size_t>(k_), metric_,
                    &norms_));
}

double KnnClassifier::Accuracy(const Dataset& test) const {
  KNNSHAP_CHECK(test.HasLabels(), "test labels required");
  if (test.Size() == 0) return 0.0;
  size_t correct = 0;
  ForEachBatchedTopK(
      train_->features, test.features, static_cast<size_t>(k_), metric_, &norms_,
      [&](size_t row, const std::vector<Neighbor>& nns) {
        if (PredictFromNeighbors(nns) == test.labels[row]) ++correct;
      });
  return static_cast<double>(correct) / static_cast<double>(test.Size());
}

double UnweightedKnnClassUtility(const Dataset& train, std::span<const int> subset,
                                 std::span<const float> query, int test_label, int k,
                                 Metric metric) {
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  if (subset.empty()) return 0.0;
  auto top = TopKAmongRows(train.features, subset, query, static_cast<size_t>(k), metric);
  double correct = 0.0;
  for (const auto& nn : top) {
    if (train.labels[static_cast<size_t>(nn.index)] == test_label) correct += 1.0;
  }
  // Eq (5): normalize by K even when |S| < K.
  return correct / static_cast<double>(k);
}

double WeightedKnnClassUtility(const Dataset& train, std::span<const int> subset,
                               std::span<const float> query, int test_label, int k,
                               const WeightConfig& config, Metric metric) {
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  if (subset.empty()) return 0.0;
  auto top = TopKAmongRows(train.features, subset, query, static_cast<size_t>(k), metric);
  std::vector<double> dists;
  dists.reserve(top.size());
  for (const auto& nn : top) dists.push_back(nn.distance);
  auto weights = ComputeWeights(dists, config);
  double utility = 0.0;
  for (size_t i = 0; i < top.size(); ++i) {
    if (train.labels[static_cast<size_t>(top[i].index)] == test_label) {
      utility += weights[i];
    }
  }
  return utility;
}

}  // namespace knnshap
