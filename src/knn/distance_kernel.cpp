// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "knn/distance_kernel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "knn/neighbors.h"
#include "util/common.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define KNNSHAP_KERNEL_HAS_AVX2 1
#define KNNSHAP_KERNEL_HAS_AVX512 1
#include <immintrin.h>
#else
#define KNNSHAP_KERNEL_HAS_AVX2 0
#define KNNSHAP_KERNEL_HAS_AVX512 0
#endif

namespace knnshap {

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

namespace {

std::atomic<KernelKind> g_override{KernelKind::kAuto};

KernelKind EnvKernel() {
  static KernelKind env_kind = [] {
    const char* env = std::getenv("KNNSHAP_KERNEL");
    if (env == nullptr) return KernelKind::kAuto;
    std::string value(env);
    if (value == "reference") return KernelKind::kReference;
    if (value == "blocked") return KernelKind::kBlocked;
    if (value == "avx2") return KernelKind::kAvx2;
    if (value == "avx512") return KernelKind::kAvx512;
    return KernelKind::kAuto;
  }();
  return env_kind;
}

// True when neither an override nor the environment pins the kernel —
// the auto-dispatch case ResolveDistanceKernel may refine per call.
bool KernelChoiceIsAuto() {
  return g_override.load(std::memory_order_relaxed) == KernelKind::kAuto &&
         EnvKernel() == KernelKind::kAuto;
}

}  // namespace

bool CpuSupportsAvx2Fma() {
#if KNNSHAP_KERNEL_HAS_AVX2
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

bool CpuSupportsAvx512() {
#if KNNSHAP_KERNEL_HAS_AVX512
  static const bool supported = __builtin_cpu_supports("avx512f");
  return supported;
#else
  return false;
#endif
}

const char* KernelName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kAuto:
      return "auto";
    case KernelKind::kReference:
      return "reference";
    case KernelKind::kBlocked:
      return "blocked";
    case KernelKind::kAvx2:
      return "avx2";
    case KernelKind::kAvx512:
      return "avx512";
  }
  return "unknown";
}

void SetKernelOverride(KernelKind kind) {
  g_override.store(kind, std::memory_order_relaxed);
}

KernelKind ActiveKernel() {
  KernelKind kind = g_override.load(std::memory_order_relaxed);
  if (kind == KernelKind::kAuto) kind = EnvKernel();
  if (kind == KernelKind::kAuto) {
    // avx512 stays opt-in: downclocking on 512-bit ports is part-specific,
    // so auto keeps the conservatively fast avx2 pick.
    kind = CpuSupportsAvx2Fma() ? KernelKind::kAvx2 : KernelKind::kBlocked;
  }
  if (kind == KernelKind::kAvx512 && !CpuSupportsAvx512()) {
    kind = KernelKind::kAvx2;
  }
  if (kind == KernelKind::kAvx2 && !CpuSupportsAvx2Fma()) {
    kind = KernelKind::kBlocked;
  }
  return kind;
}

namespace internal {

KernelKind ResolveDistanceKernel(KernelKind resolved, bool was_auto,
                                 Metric metric, size_t d) {
  // Only second-guess auto-detection, and only where the bench shows the
  // blocked path losing to the scalar loop: plain L2 (the per-row sqrt
  // serializes the pass) at small d (the norm-identity guard's overhead is
  // not amortized). Pinned kernels are never rerouted.
  if (was_auto && resolved == KernelKind::kBlocked && metric == Metric::kL2 &&
      d < 32) {
    return KernelKind::kReference;
  }
  return resolved;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Inner loops. All accumulate in double (float inputs), like the reference;
// the blocked/avx2 variants split the serial double-add dependence chain
// across independent accumulators, which changes only the summation order.
// ---------------------------------------------------------------------------

namespace {

double DotBlocked(const float* a, const float* b, size_t d) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    acc0 += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    acc1 += static_cast<double>(a[i + 1]) * static_cast<double>(b[i + 1]);
    acc2 += static_cast<double>(a[i + 2]) * static_cast<double>(b[i + 2]);
    acc3 += static_cast<double>(a[i + 3]) * static_cast<double>(b[i + 3]);
  }
  for (; i < d; ++i) {
    acc0 += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

double SquaredDiffBlocked(const float* a, const float* b, size_t d) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    double d0 = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    double d1 = static_cast<double>(a[i + 1]) - static_cast<double>(b[i + 1]);
    double d2 = static_cast<double>(a[i + 2]) - static_cast<double>(b[i + 2]);
    double d3 = static_cast<double>(a[i + 3]) - static_cast<double>(b[i + 3]);
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < d; ++i) {
    double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc0 += diff * diff;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

double L1Blocked(const float* a, const float* b, size_t d) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    acc0 += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
    acc1 += std::fabs(static_cast<double>(a[i + 1]) - static_cast<double>(b[i + 1]));
    acc2 += std::fabs(static_cast<double>(a[i + 2]) - static_cast<double>(b[i + 2]));
    acc3 += std::fabs(static_cast<double>(a[i + 3]) - static_cast<double>(b[i + 3]));
  }
  for (; i < d; ++i) {
    acc0 += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

#if KNNSHAP_KERNEL_HAS_AVX2

__attribute__((target("avx2,fma"))) double HorizontalSum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d sum2 = _mm_add_pd(lo, hi);
  __m128d swapped = _mm_unpackhi_pd(sum2, sum2);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, swapped));
}

__attribute__((target("avx2,fma"))) double DotAvx2(const float* a, const float* b,
                                                   size_t d) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    __m256d a0 = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    __m256d b0 = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    acc0 = _mm256_fmadd_pd(a0, b0, acc0);
    __m256d a1 = _mm256_cvtps_pd(_mm_loadu_ps(a + i + 4));
    __m256d b1 = _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4));
    acc1 = _mm256_fmadd_pd(a1, b1, acc1);
  }
  double total = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < d; ++i) {
    total += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return total;
}

__attribute__((target("avx2,fma"))) double SquaredDiffAvx2(const float* a,
                                                           const float* b, size_t d) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                               _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    __m256d d1 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i + 4)),
                               _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4)));
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  double total = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < d; ++i) {
    double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    total += diff * diff;
  }
  return total;
}

// Four independent row·query dots with the accumulator chains interleaved.
// A single row's chain (cvt, fmadd, horizontal sum) is latency-bound at
// small d — the reduce alone costs more cycles than the arithmetic — so
// running four rows' chains in flight roughly quadruples throughput on the
// single-query pass. Each row's operation sequence (chunk order, acc0/acc1
// split, HorizontalSum, scalar remainder) is exactly DotAvx2's, so the
// results are bit-identical to four independent DotAvx2 calls; the query
// chunks are converted once and shared.
__attribute__((target("avx2,fma"))) void DotAvx2x4(const float* r0, const float* r1,
                                                   const float* r2, const float* r3,
                                                   const float* q, size_t d,
                                                   double* dots) {
  __m256d a00 = _mm256_setzero_pd(), a01 = _mm256_setzero_pd();
  __m256d a10 = _mm256_setzero_pd(), a11 = _mm256_setzero_pd();
  __m256d a20 = _mm256_setzero_pd(), a21 = _mm256_setzero_pd();
  __m256d a30 = _mm256_setzero_pd(), a31 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256d q0 = _mm256_cvtps_pd(_mm_loadu_ps(q + i));
    const __m256d q1 = _mm256_cvtps_pd(_mm_loadu_ps(q + i + 4));
    a00 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(r0 + i)), q0, a00);
    a01 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(r0 + i + 4)), q1, a01);
    a10 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(r1 + i)), q0, a10);
    a11 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(r1 + i + 4)), q1, a11);
    a20 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(r2 + i)), q0, a20);
    a21 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(r2 + i + 4)), q1, a21);
    a30 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(r3 + i)), q0, a30);
    a31 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(r3 + i + 4)), q1, a31);
  }
  dots[0] = HorizontalSum(_mm256_add_pd(a00, a01));
  dots[1] = HorizontalSum(_mm256_add_pd(a10, a11));
  dots[2] = HorizontalSum(_mm256_add_pd(a20, a21));
  dots[3] = HorizontalSum(_mm256_add_pd(a30, a31));
  for (; i < d; ++i) {
    const double qi = static_cast<double>(q[i]);
    dots[0] += static_cast<double>(r0[i]) * qi;
    dots[1] += static_cast<double>(r1[i]) * qi;
    dots[2] += static_cast<double>(r2[i]) * qi;
    dots[3] += static_cast<double>(r3[i]) * qi;
  }
}

__attribute__((target("avx2,fma"))) double L1Avx2(const float* a, const float* b,
                                                  size_t d) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                               _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    acc0 = _mm256_add_pd(acc0, _mm256_andnot_pd(sign_mask, d0));
    __m256d d1 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i + 4)),
                               _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4)));
    acc1 = _mm256_add_pd(acc1, _mm256_andnot_pd(sign_mask, d1));
  }
  double total = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < d; ++i) {
    total += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return total;
}

#endif  // KNNSHAP_KERNEL_HAS_AVX2

#if KNNSHAP_KERNEL_HAS_AVX512

// AVX-512F variants: two 512-bit double accumulators (16 lanes/iteration).
// _mm512_reduce_add_pd is a fixed pairwise tree, so results are
// deterministic per kernel even though the summation order differs from
// the avx2/blocked splits (parity tests bound the difference at 1e-9).

__attribute__((target("avx512f"))) double DotAvx512(const float* a, const float* b,
                                                    size_t d) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    __m512d a0 = _mm512_cvtps_pd(_mm256_loadu_ps(a + i));
    __m512d b0 = _mm512_cvtps_pd(_mm256_loadu_ps(b + i));
    acc0 = _mm512_fmadd_pd(a0, b0, acc0);
    __m512d a1 = _mm512_cvtps_pd(_mm256_loadu_ps(a + i + 8));
    __m512d b1 = _mm512_cvtps_pd(_mm256_loadu_ps(b + i + 8));
    acc1 = _mm512_fmadd_pd(a1, b1, acc1);
  }
  double total = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
  for (; i < d; ++i) {
    total += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return total;
}

__attribute__((target("avx512f"))) double SquaredDiffAvx512(const float* a,
                                                            const float* b,
                                                            size_t d) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    __m512d d0 = _mm512_sub_pd(_mm512_cvtps_pd(_mm256_loadu_ps(a + i)),
                               _mm512_cvtps_pd(_mm256_loadu_ps(b + i)));
    acc0 = _mm512_fmadd_pd(d0, d0, acc0);
    __m512d d1 = _mm512_sub_pd(_mm512_cvtps_pd(_mm256_loadu_ps(a + i + 8)),
                               _mm512_cvtps_pd(_mm256_loadu_ps(b + i + 8)));
    acc1 = _mm512_fmadd_pd(d1, d1, acc1);
  }
  double total = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
  for (; i < d; ++i) {
    double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    total += diff * diff;
  }
  return total;
}

__attribute__((target("avx512f"))) double L1Avx512(const float* a, const float* b,
                                                   size_t d) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    __m512d d0 = _mm512_sub_pd(_mm512_cvtps_pd(_mm256_loadu_ps(a + i)),
                               _mm512_cvtps_pd(_mm256_loadu_ps(b + i)));
    acc0 = _mm512_add_pd(acc0, _mm512_abs_pd(d0));
    __m512d d1 = _mm512_sub_pd(_mm512_cvtps_pd(_mm256_loadu_ps(a + i + 8)),
                               _mm512_cvtps_pd(_mm256_loadu_ps(b + i + 8)));
    acc1 = _mm512_add_pd(acc1, _mm512_abs_pd(d1));
  }
  double total = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
  for (; i < d; ++i) {
    total += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return total;
}

#endif  // KNNSHAP_KERNEL_HAS_AVX512

// Double-precision dot over pre-converted rows — the inner microkernel of
// the query-block × corpus-block path. float→double conversion is exact
// and the accumulation pattern mirrors DotBlocked/DotAvx2 exactly, so
// these produce bit-identical sums to the mixed-precision row loops while
// converting each corpus row once per query block instead of once per
// query.
double DotDDBlocked(const double* a, const double* b, size_t d) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < d; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

#if KNNSHAP_KERNEL_HAS_AVX2

__attribute__((target("avx2,fma"))) double DotDDAvx2(const double* a,
                                                     const double* b, size_t d) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4),
                           acc1);
  }
  double total = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < d; ++i) total += a[i] * b[i];
  return total;
}

#endif  // KNNSHAP_KERNEL_HAS_AVX2

#if KNNSHAP_KERNEL_HAS_AVX512

__attribute__((target("avx512f"))) double DotDDAvx512(const double* a,
                                                      const double* b, size_t d) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i), acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 8), _mm512_loadu_pd(b + i + 8),
                           acc1);
  }
  double total = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
  for (; i < d; ++i) total += a[i] * b[i];
  return total;
}

#endif  // KNNSHAP_KERNEL_HAS_AVX512

double DotDD(KernelKind kind, const double* a, const double* b, size_t d) {
#if KNNSHAP_KERNEL_HAS_AVX512
  if (kind == KernelKind::kAvx512) return DotDDAvx512(a, b, d);
#endif
#if KNNSHAP_KERNEL_HAS_AVX2
  if (kind == KernelKind::kAvx2) return DotDDAvx2(a, b, d);
#endif
  (void)kind;
  return DotDDBlocked(a, b, d);
}

void ToDouble(const float* src, double* dst, size_t d) {
  for (size_t i = 0; i < d; ++i) dst[i] = static_cast<double>(src[i]);
}

double Dot(KernelKind kind, const float* a, const float* b, size_t d) {
#if KNNSHAP_KERNEL_HAS_AVX512
  if (kind == KernelKind::kAvx512) return DotAvx512(a, b, d);
#endif
#if KNNSHAP_KERNEL_HAS_AVX2
  if (kind == KernelKind::kAvx2) return DotAvx2(a, b, d);
#endif
  (void)kind;
  return DotBlocked(a, b, d);
}

double SquaredDiff(KernelKind kind, const float* a, const float* b, size_t d) {
#if KNNSHAP_KERNEL_HAS_AVX512
  if (kind == KernelKind::kAvx512) return SquaredDiffAvx512(a, b, d);
#endif
#if KNNSHAP_KERNEL_HAS_AVX2
  if (kind == KernelKind::kAvx2) return SquaredDiffAvx2(a, b, d);
#endif
  (void)kind;
  return SquaredDiffBlocked(a, b, d);
}

double L1Dist(KernelKind kind, const float* a, const float* b, size_t d) {
#if KNNSHAP_KERNEL_HAS_AVX512
  if (kind == KernelKind::kAvx512) return L1Avx512(a, b, d);
#endif
#if KNNSHAP_KERNEL_HAS_AVX2
  if (kind == KernelKind::kAvx2) return L1Avx2(a, b, d);
#endif
  (void)kind;
  return L1Blocked(a, b, d);
}

// The norm identity subtracts numbers of magnitude ~‖x‖²+‖q‖² to produce
// a distance that may be orders of magnitude smaller (data with a large
// common offset), so its rounding error is relative to the *norms*, not
// the distance. When the result is small enough for that error to matter
// — below this fraction of the norm scale — the row is recomputed with
// the direct diff-square pass, whose error is relative to the distance
// itself. Rows above the threshold keep relative error ≲ d·2⁻⁵³/1e-5,
// within the advertised 1e-9 parity; rows below it become exact. Random
// data never triggers the recompute (distances ~ norm scale).
constexpr double kCancellationGuard = 1e-5;

// Fast-path distance for one corpus row. `qnorm` is the query's squared
// norm (unused by L1); `row_sq`/`row_norm` come from CorpusNorms when
// available, else a negative sentinel triggers the norm-free pass.
double FastRowDistance(KernelKind kind, Metric metric, const float* row,
                       const float* query, size_t d, double row_sq,
                       double row_norm, double qnorm, double query_norm) {
  switch (metric) {
    case Metric::kSquaredL2:
    case Metric::kL2: {
      double sq;
      if (row_sq >= 0.0) {
        sq = (row_sq - 2.0 * Dot(kind, row, query, d)) + qnorm;
        // Covers negative rounding residue and the x == q case (exact 0).
        if (sq < (row_sq + qnorm) * kCancellationGuard) {
          sq = SquaredDiff(kind, row, query, d);
        }
      } else {
        sq = SquaredDiff(kind, row, query, d);
      }
      return metric == Metric::kL2 ? std::sqrt(sq) : sq;
    }
    case Metric::kL1:
      return L1Dist(kind, row, query, d);
    case Metric::kCosine: {
      double norm = row_norm >= 0.0 ? row_norm : std::sqrt(Dot(kind, row, row, d));
      if (norm == 0.0 || query_norm == 0.0) return 1.0;
      return 1.0 - Dot(kind, row, query, d) / (norm * query_norm);
    }
  }
  KNNSHAP_CHECK(false, "unknown metric");
}

struct QueryContext {
  KernelKind kind;
  Metric metric;
  const double* row_sq = nullptr;    // squared norms (L2 family) or null
  const double* row_norm = nullptr;  // Euclidean norms (cosine) or null
  double qnorm = 0.0;                // ‖q‖²
  double query_norm = 0.0;           // ‖q‖
};

QueryContext MakeContext(KernelKind kind, Metric metric, const CorpusNorms* norms,
                         const Matrix& corpus, const float* query, size_t d) {
  QueryContext ctx;
  ctx.kind = kind;
  ctx.metric = metric;
  const bool usable = norms != nullptr && !norms->Empty() && norms->Matches(corpus);
  if (usable && (metric == Metric::kSquaredL2 || metric == Metric::kL2)) {
    ctx.row_sq = norms->Squared().data();
  }
  if (usable && metric == Metric::kCosine) {
    ctx.row_norm = norms->Euclidean().data();
  }
  if (metric == Metric::kSquaredL2 || metric == Metric::kL2 ||
      metric == Metric::kCosine) {
    ctx.qnorm = Dot(kind, query, query, d);
    ctx.query_norm = std::sqrt(ctx.qnorm);
  }
  return ctx;
}

double ContextRowDistance(const QueryContext& ctx, const float* row,
                          const float* query, size_t d, size_t row_index) {
  return FastRowDistance(ctx.kind, ctx.metric, row, query, d,
                         ctx.row_sq != nullptr ? ctx.row_sq[row_index] : -1.0,
                         ctx.row_norm != nullptr ? ctx.row_norm[row_index] : -1.0,
                         ctx.qnorm, ctx.query_norm);
}

}  // namespace

namespace internal {

double KernelDot(const float* a, const float* b, size_t d) {
  return Dot(ActiveKernel(), a, b, d);
}

}  // namespace internal

// ---------------------------------------------------------------------------
// CorpusNorms
// ---------------------------------------------------------------------------

CorpusNorms::CorpusNorms(const Matrix& corpus)
    : rows_(corpus.Rows()), cols_(corpus.Cols()) {
  squared_.resize(rows_);
  euclidean_.resize(rows_);
  const KernelKind kind = ActiveKernel();
  for (size_t i = 0; i < rows_; ++i) {
    const float* row = corpus.Row(i).data();
    double sq = Dot(kind, row, row, cols_);
    squared_[i] = sq;
    euclidean_[i] = std::sqrt(sq);
  }
}

CorpusNorms NormsForMetric(const Matrix& corpus, Metric metric) {
  return metric == Metric::kL1 ? CorpusNorms() : CorpusNorms(corpus);
}

// ---------------------------------------------------------------------------
// Batch entry points
// ---------------------------------------------------------------------------

namespace {

// Shared row-range core of ComputeDistances / ComputeDistancesRange:
// out[i - row_begin] = distance(corpus.Row(i), q) for i in [row_begin,
// row_end). The kernel has already been resolved by the caller so every
// block of a sharded single-query pass runs the same arithmetic.
void ComputeDistancesCore(KernelKind kind, const Matrix& corpus, const float* q,
                          Metric metric, const CorpusNorms* norms,
                          size_t row_begin, size_t row_end,
                          std::span<double> out) {
  const size_t d = corpus.Cols();
  if (kind == KernelKind::kReference) {
    for (size_t i = row_begin; i < row_end; ++i) {
      out[i - row_begin] =
          knnshap::internal::DistanceUnchecked(corpus.Row(i).data(), q, d, metric);
    }
    return;
  }
  QueryContext ctx = MakeContext(kind, metric, norms, corpus, q, d);
  // The metric/norms dispatch is hoisted out of the row loop: at small d
  // the per-row switch and sentinel branches are a measurable fraction of
  // the pass. Arithmetic is identical to FastRowDistance in every branch.
  switch (metric) {
    case Metric::kSquaredL2:
    case Metric::kL2: {
      const bool take_root = metric == Metric::kL2;
      if (ctx.row_sq != nullptr) {
        const double* row_sq = ctx.row_sq;
        const double qnorm = ctx.qnorm;
        size_t i = row_begin;
#if KNNSHAP_KERNEL_HAS_AVX2
        if (kind == KernelKind::kAvx2) {
          // Interleaved 4-row dots (bit-identical to DotAvx2 per row, see
          // DotAvx2x4); the rare cancellation-guard recompute and the <4
          // row tail fall through to the generic per-row path below.
          double dots[4];
          for (; i + 4 <= row_end; i += 4) {
            DotAvx2x4(corpus.Row(i).data(), corpus.Row(i + 1).data(),
                      corpus.Row(i + 2).data(), corpus.Row(i + 3).data(), q, d,
                      dots);
            for (size_t j = 0; j < 4; ++j) {
              double sq = (row_sq[i + j] - 2.0 * dots[j]) + qnorm;
              if (sq < (row_sq[i + j] + qnorm) * kCancellationGuard) {
                sq = SquaredDiff(kind, corpus.Row(i + j).data(), q, d);
              }
              out[i + j - row_begin] = take_root ? std::sqrt(sq) : sq;
            }
          }
        }
#endif
        for (; i < row_end; ++i) {
          const float* row = corpus.Row(i).data();
          double sq = (row_sq[i] - 2.0 * Dot(kind, row, q, d)) + qnorm;
          if (sq < (row_sq[i] + qnorm) * kCancellationGuard) {
            sq = SquaredDiff(kind, row, q, d);
          }
          out[i - row_begin] = take_root ? std::sqrt(sq) : sq;
        }
      } else {
        for (size_t i = row_begin; i < row_end; ++i) {
          double sq = SquaredDiff(kind, corpus.Row(i).data(), q, d);
          out[i - row_begin] = take_root ? std::sqrt(sq) : sq;
        }
      }
      return;
    }
    case Metric::kL1:
      for (size_t i = row_begin; i < row_end; ++i) {
        out[i - row_begin] = L1Dist(kind, corpus.Row(i).data(), q, d);
      }
      return;
    case Metric::kCosine:
      for (size_t i = row_begin; i < row_end; ++i) {
        out[i - row_begin] = ContextRowDistance(ctx, corpus.Row(i).data(), q, d, i);
      }
      return;
  }
  KNNSHAP_CHECK(false, "unknown metric");
}

}  // namespace

void ComputeDistances(const Matrix& corpus, std::span<const float> query,
                      Metric metric, const CorpusNorms* norms,
                      std::span<double> out) {
  const size_t rows = corpus.Rows();
  const size_t d = corpus.Cols();
  KNNSHAP_CHECK(query.size() == d, "query dimension mismatch");
  KNNSHAP_CHECK(out.size() >= rows, "output buffer too small");
  const KernelKind kind = internal::ResolveDistanceKernel(
      ActiveKernel(), KernelChoiceIsAuto(), metric, d);
  ComputeDistancesCore(kind, corpus, query.data(), metric, norms, 0, rows, out);
}

void ComputeDistancesRange(const Matrix& corpus, std::span<const float> query,
                           Metric metric, const CorpusNorms* norms,
                           size_t row_begin, size_t row_end,
                           std::span<double> out) {
  const size_t d = corpus.Cols();
  KNNSHAP_CHECK(query.size() == d, "query dimension mismatch");
  KNNSHAP_CHECK(row_begin <= row_end && row_end <= corpus.Rows(),
                "row range out of bounds");
  KNNSHAP_CHECK(out.size() >= row_end - row_begin, "output buffer too small");
  const KernelKind kind = internal::ResolveDistanceKernel(
      ActiveKernel(), KernelChoiceIsAuto(), metric, d);
  ComputeDistancesCore(kind, corpus, query.data(), metric, norms, row_begin,
                       row_end, out);
}

void ComputeDistanceMatrix(const Matrix& corpus, const Matrix& queries,
                           Metric metric, const CorpusNorms* norms,
                           std::span<double> out) {
  const size_t rows = corpus.Rows();
  const size_t d = corpus.Cols();
  const size_t num_queries = queries.Rows();
  KNNSHAP_CHECK(queries.Cols() == d || num_queries == 0,
                "query dimension mismatch");
  KNNSHAP_CHECK(out.size() >= rows * num_queries, "output buffer too small");
  const KernelKind kind = ActiveKernel();
  if (kind == KernelKind::kReference) {
    for (size_t j = 0; j < num_queries; ++j) {
      const float* q = queries.Row(j).data();
      double* row_out = out.data() + j * rows;
      for (size_t i = 0; i < rows; ++i) {
        row_out[i] =
            knnshap::internal::DistanceUnchecked(corpus.Row(i).data(), q, d, metric);
      }
    }
    return;
  }
  // Per-query contexts (query norms) are computed once up front.
  std::vector<QueryContext> contexts;
  contexts.reserve(num_queries);
  for (size_t j = 0; j < num_queries; ++j) {
    contexts.push_back(
        MakeContext(kind, metric, norms, corpus, queries.Row(j).data(), d));
  }
  const bool identity = num_queries > 0 && (contexts[0].row_sq != nullptr ||
                                            contexts[0].row_norm != nullptr);
  if (identity) {
    // Norm-identity microkernel: a block of queries and each corpus row
    // are widened to double exactly once, so the inner loop is a pure
    // double·double dot (no per-element converts) and the corpus streams
    // from memory once per query block rather than once per query.
    // Conversion is exact and the accumulation pattern matches the
    // per-query path, so results are bit-identical to ComputeDistances.
    // Queries are processed in bounded blocks so the widened buffer stays
    // cache-sized however large the query set is.
    constexpr size_t kQueryBlock = 32;
    static thread_local std::vector<double> query_block;
    static thread_local std::vector<double> row_buffer;
    row_buffer.resize(d);
    for (size_t q0 = 0; q0 < num_queries; q0 += kQueryBlock) {
      const size_t q1 = std::min(num_queries, q0 + kQueryBlock);
      query_block.resize((q1 - q0) * d);
      for (size_t j = q0; j < q1; ++j) {
        ToDouble(queries.Row(j).data(), query_block.data() + (j - q0) * d, d);
      }
      for (size_t i = 0; i < rows; ++i) {
        ToDouble(corpus.Row(i).data(), row_buffer.data(), d);
        for (size_t j = q0; j < q1; ++j) {
          const QueryContext& ctx = contexts[j];
          double dot =
              DotDD(kind, row_buffer.data(), query_block.data() + (j - q0) * d, d);
          double dist;
          if (metric == Metric::kCosine) {
            double norm = ctx.row_norm[i];
            dist = (norm == 0.0 || ctx.query_norm == 0.0)
                       ? 1.0
                       : 1.0 - dot / (norm * ctx.query_norm);
          } else {
            double sq = (ctx.row_sq[i] - 2.0 * dot) + ctx.qnorm;
            if (sq < (ctx.row_sq[i] + ctx.qnorm) * kCancellationGuard) {
              // Same recompute as FastRowDistance, on the original floats,
              // so the block path stays bit-identical to the per-query one.
              sq = SquaredDiff(kind, corpus.Row(i).data(), queries.Row(j).data(), d);
            }
            dist = metric == Metric::kL2 ? std::sqrt(sq) : sq;
          }
          out[j * rows + i] = dist;
        }
      }
    }
    return;
  }
  // No usable norms (or L1): per-row mixed-precision loops over corpus
  // blocks sized to stay cache-resident while the whole query block passes
  // over them, so large corpora stream from memory once per block of
  // queries rather than once per query.
  constexpr size_t kBlockBytes = 256 * 1024;
  const size_t block_rows = std::max<size_t>(1, kBlockBytes / ((d + 1) * sizeof(float)));
  for (size_t r0 = 0; r0 < rows; r0 += block_rows) {
    const size_t r1 = std::min(rows, r0 + block_rows);
    for (size_t j = 0; j < num_queries; ++j) {
      const float* q = queries.Row(j).data();
      double* row_out = out.data() + j * rows;
      const QueryContext& ctx = contexts[j];
      for (size_t i = r0; i < r1; ++i) {
        row_out[i] = ContextRowDistance(ctx, corpus.Row(i).data(), q, d, i);
      }
    }
  }
}

void ComputeDistancesFor(const Matrix& corpus, std::span<const int> rows,
                         std::span<const float> query, Metric metric,
                         const CorpusNorms* norms, std::span<double> out) {
  const size_t d = corpus.Cols();
  KNNSHAP_CHECK(query.size() == d, "query dimension mismatch");
  KNNSHAP_CHECK(out.size() >= rows.size(), "output buffer too small");
  const KernelKind kind = internal::ResolveDistanceKernel(
      ActiveKernel(), KernelChoiceIsAuto(), metric, d);
  const float* q = query.data();
  if (kind == KernelKind::kReference) {
    for (size_t i = 0; i < rows.size(); ++i) {
      out[i] = knnshap::internal::DistanceUnchecked(
          corpus.Row(static_cast<size_t>(rows[i])).data(), q, d, metric);
    }
    return;
  }
  QueryContext ctx = MakeContext(kind, metric, norms, corpus, q, d);
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t row = static_cast<size_t>(rows[i]);
    out[i] = ContextRowDistance(ctx, corpus.Row(row).data(), q, d, row);
  }
}

// ArgsortDistances and SelectTopK are declared in this header for their
// historical call sites but implemented in knn/selection.cpp alongside the
// streaming top-R selectors that share their packed-key ordering.

}  // namespace knnshap
