// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "knn/knn_regressor.h"

#include <algorithm>

#include "knn/neighbors.h"
#include "util/common.h"

namespace knnshap {

KnnRegressor::KnnRegressor(const Dataset* train, int k, WeightConfig weights,
                           Metric metric)
    : train_(train), k_(k), weights_(weights), metric_(metric) {
  KNNSHAP_CHECK(train != nullptr && train->HasTargets(), "targets required");
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  norms_ = NormsForMetric(train->features, metric_);
}

double KnnRegressor::PredictFromNeighbors(const std::vector<Neighbor>& nns) const {
  if (nns.empty()) return 0.0;
  if (weights_.kernel == WeightKernel::kUniform) {
    double sum = 0.0;
    for (const auto& nn : nns) sum += train_->targets[static_cast<size_t>(nn.index)];
    return sum / static_cast<double>(k_);
  }
  std::vector<double> dists;
  dists.reserve(nns.size());
  for (const auto& nn : nns) dists.push_back(nn.distance);
  auto weights = ComputeWeights(dists, weights_);
  double estimate = 0.0;
  for (size_t i = 0; i < nns.size(); ++i) {
    estimate += weights[i] * train_->targets[static_cast<size_t>(nns[i].index)];
  }
  return estimate;
}

double KnnRegressor::Predict(std::span<const float> query) const {
  return PredictFromNeighbors(
      TopKNeighbors(train_->features, query, static_cast<size_t>(k_), metric_,
                    &norms_));
}

double KnnRegressor::MeanSquaredError(const Dataset& test) const {
  KNNSHAP_CHECK(test.HasTargets(), "test targets required");
  if (test.Size() == 0) return 0.0;
  double total = 0.0;
  ForEachBatchedTopK(
      train_->features, test.features, static_cast<size_t>(k_), metric_, &norms_,
      [&](size_t row, const std::vector<Neighbor>& nns) {
        double err = PredictFromNeighbors(nns) - test.targets[row];
        total += err * err;
      });
  return total / static_cast<double>(test.Size());
}

double UnweightedKnnRegressionUtility(const Dataset& train, std::span<const int> subset,
                                      std::span<const float> query, double test_target,
                                      int k, Metric metric) {
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  auto top = TopKAmongRows(train.features, subset, query, static_cast<size_t>(k), metric);
  double sum = 0.0;
  for (const auto& nn : top) sum += train.targets[static_cast<size_t>(nn.index)];
  double err = sum / static_cast<double>(k) - test_target;
  return -err * err;
}

double WeightedKnnRegressionUtility(const Dataset& train, std::span<const int> subset,
                                    std::span<const float> query, double test_target,
                                    int k, const WeightConfig& config, Metric metric) {
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  auto top = TopKAmongRows(train.features, subset, query, static_cast<size_t>(k), metric);
  if (top.empty()) return -test_target * test_target;
  std::vector<double> dists;
  dists.reserve(top.size());
  for (const auto& nn : top) dists.push_back(nn.distance);
  auto weights = ComputeWeights(dists, config);
  double estimate = 0.0;
  for (size_t i = 0; i < top.size(); ++i) {
    estimate += weights[i] * train.targets[static_cast<size_t>(top[i].index)];
  }
  double err = estimate - test_target;
  return -err * err;
}

}  // namespace knnshap
