// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "knn/knn_regressor.h"

#include <algorithm>

#include "knn/neighbors.h"
#include "util/common.h"

namespace knnshap {

namespace {

std::vector<Neighbor> SubsetTopK(const Dataset& train, std::span<const int> subset,
                                 std::span<const float> query, int k, Metric metric) {
  std::vector<Neighbor> all;
  all.reserve(subset.size());
  for (int row : subset) {
    all.push_back({row, Distance(train.features.Row(static_cast<size_t>(row)), query,
                                 metric)});
  }
  size_t keep = std::min<size_t>(static_cast<size_t>(k), all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(keep), all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      if (a.distance != b.distance) return a.distance < b.distance;
                      return a.index < b.index;
                    });
  all.resize(keep);
  return all;
}

}  // namespace

KnnRegressor::KnnRegressor(const Dataset* train, int k, WeightConfig weights,
                           Metric metric)
    : train_(train), k_(k), weights_(weights), metric_(metric) {
  KNNSHAP_CHECK(train != nullptr && train->HasTargets(), "targets required");
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
}

double KnnRegressor::Predict(std::span<const float> query) const {
  auto nns = TopKNeighbors(train_->features, query, static_cast<size_t>(k_), metric_);
  if (nns.empty()) return 0.0;
  if (weights_.kernel == WeightKernel::kUniform) {
    double sum = 0.0;
    for (const auto& nn : nns) sum += train_->targets[static_cast<size_t>(nn.index)];
    return sum / static_cast<double>(k_);
  }
  std::vector<double> dists;
  dists.reserve(nns.size());
  for (const auto& nn : nns) dists.push_back(nn.distance);
  auto weights = ComputeWeights(dists, weights_);
  double estimate = 0.0;
  for (size_t i = 0; i < nns.size(); ++i) {
    estimate += weights[i] * train_->targets[static_cast<size_t>(nns[i].index)];
  }
  return estimate;
}

double KnnRegressor::MeanSquaredError(const Dataset& test) const {
  KNNSHAP_CHECK(test.HasTargets(), "test targets required");
  if (test.Size() == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < test.Size(); ++i) {
    double err = Predict(test.features.Row(i)) - test.targets[i];
    total += err * err;
  }
  return total / static_cast<double>(test.Size());
}

double UnweightedKnnRegressionUtility(const Dataset& train, std::span<const int> subset,
                                      std::span<const float> query, double test_target,
                                      int k, Metric metric) {
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  auto top = SubsetTopK(train, subset, query, k, metric);
  double sum = 0.0;
  for (const auto& nn : top) sum += train.targets[static_cast<size_t>(nn.index)];
  double err = sum / static_cast<double>(k) - test_target;
  return -err * err;
}

double WeightedKnnRegressionUtility(const Dataset& train, std::span<const int> subset,
                                    std::span<const float> query, double test_target,
                                    int k, const WeightConfig& config, Metric metric) {
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  auto top = SubsetTopK(train, subset, query, k, metric);
  if (top.empty()) return -test_target * test_target;
  std::vector<double> dists;
  dists.reserve(top.size());
  for (const auto& nn : top) dists.push_back(nn.distance);
  auto weights = ComputeWeights(dists, config);
  double estimate = 0.0;
  for (size_t i = 0; i < top.size(); ++i) {
    estimate += weights[i] * train.targets[static_cast<size_t>(top[i].index)];
  }
  double err = estimate - test_target;
  return -err * err;
}

}  // namespace knnshap
