// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Neighbor weight kernels for weighted KNN (Sec 4, Eq 26-27). The paper's
// experiments weigh each neighbor inversely proportional to its distance to
// the test point [Dud76]; a Gaussian kernel is included for completeness.

#ifndef KNNSHAP_KNN_WEIGHTS_H_
#define KNNSHAP_KNN_WEIGHTS_H_

#include <vector>

namespace knnshap {

/// Weight kernels applied to the K retrieved neighbors.
enum class WeightKernel {
  kUniform,          ///< w_k = 1/K (recovers the unweighted estimator).
  kInverseDistance,  ///< w_k proportional to 1/(d_k + eps), normalized.
  kGaussian,         ///< w_k proportional to exp(-d_k^2 / (2 sigma^2)), normalized.
};

/// Parameters of a weight kernel.
struct WeightConfig {
  WeightKernel kernel = WeightKernel::kUniform;
  double epsilon = 1e-8;  ///< Regularizer for inverse distance.
  double sigma = 1.0;     ///< Bandwidth for the Gaussian kernel.
};

/// Unnormalized kernel weight of one neighbor at the given distance — the
/// one formula behind both ComputeWeights' normalized weights and the
/// discretized WKNN-Shapley's raw weights (core/wknn_shapley.h); the two
/// games must agree on it for the discretization bound to hold.
double RawKernelWeight(double distance, const WeightConfig& config);

/// Computes normalized weights (summing to 1) for neighbors at the given
/// ascending distances. Empty input yields an empty result.
std::vector<double> ComputeWeights(const std::vector<double>& distances,
                                   const WeightConfig& config);

/// Human-readable kernel name.
const char* KernelName(WeightKernel kernel);

}  // namespace knnshap

#endif  // KNNSHAP_KNN_WEIGHTS_H_
