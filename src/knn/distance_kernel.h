// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Batched distance kernels — the shared hot path under every valuation
// method. All of the paper's algorithms reduce to "order the corpus by
// distance to a query", and the O(N·d) distance pass dominates the claimed
// O(N log N) sort, so this subsystem owns both halves:
//
//  * ComputeDistances / ComputeDistanceMatrix / ComputeDistancesFor —
//    query(-block) × corpus(-block) distance evaluation with cache
//    blocking, dimension checks hoisted to once per batch, and three
//    runtime-dispatched implementations:
//      reference  the scalar per-pair loops of knn/metric.cpp, bit-exact
//                 with the per-pair Distance() API (parity baseline);
//      blocked    portable multi-accumulator loops (breaks the serial
//                 double-add dependence chain, auto-vectorizable);
//      avx2       AVX2/FMA intrinsics, compiled with target attributes and
//                 selected only when cpuid reports avx2+fma;
//      avx512     AVX-512F intrinsics (512-bit double accumulators),
//                 cpuid-gated, opt-in via override/env — kAuto prefers
//                 avx2 because 512-bit frequency behaviour varies by part.
//    The blocked/avx2/avx512 paths use the ‖x−q‖² = ‖x‖² − 2x·q + ‖q‖²
//    identity when precomputed corpus row norms are supplied, turning the
//    inner loop into a pure dot product; without norms they run a single
//    fused pass.
//
//  * ArgsortDistances / SelectTopK — ordering over packed 64-bit keys
//    (float-rounded distance bits in the high word, row index in the low
//    word). Non-negative IEEE floats compare like unsigned integers, so the
//    sort is branch-light and cache-linear; float rounding is monotone, so
//    a final pass re-sorting runs of equal float keys by the exact (double
//    distance, index) pair reproduces the reference comparator order bit
//    for bit, ties broken by index by construction. Declared here for the
//    historical call sites; the implementations (and the streaming top-R
//    selectors that share their packed keys) live in knn/selection.
//
// Kernel selection: SetKernelOverride() (strongest), else the
// KNNSHAP_KERNEL environment variable ("reference", "blocked", "avx2",
// "avx512", "auto"), else auto (avx2 when supported, blocked otherwise) —
// refined per call by internal::ResolveDistanceKernel, which sends
// auto-dispatched small-d plain-l2 single-query passes back to the
// reference loop (the blocked norm-identity path measures slower than the
// scalar one there; see BENCH_kernel.json).

#ifndef KNNSHAP_KNN_DISTANCE_KERNEL_H_
#define KNNSHAP_KNN_DISTANCE_KERNEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "knn/metric.h"
#include "util/matrix.h"

namespace knnshap {

/// A retrieved neighbor (mirrored from knn/neighbors.h to keep this header
/// free of a circular include; the two definitions are the same type).
struct Neighbor;

/// Distance-kernel implementations. kAuto resolves at runtime.
enum class KernelKind {
  kAuto,       ///< Pick the fastest supported path (avx2 else blocked).
  kReference,  ///< Scalar per-pair loops, bit-exact with Distance().
  kBlocked,    ///< Portable multi-accumulator fallback.
  kAvx2,       ///< AVX2/FMA intrinsics (x86-64 with cpuid support).
  kAvx512,     ///< AVX-512F intrinsics, opt-in (override/env only).
};

/// Human-readable kernel name.
const char* KernelName(KernelKind kind);

/// True when this build and CPU can run the AVX2/FMA path.
bool CpuSupportsAvx2Fma();

/// True when this build and CPU can run the AVX-512F path.
bool CpuSupportsAvx512();

/// Forces a kernel for the whole process (tests, benchmarks, and the
/// KNNSHAP_KERNEL escape hatch use this). kAuto restores auto-detection.
/// Requesting kAvx512 without CPU support falls back to kAvx2, and kAvx2
/// without support falls back to kBlocked.
void SetKernelOverride(KernelKind kind);

/// The kernel every batch entry point will actually run, after applying
/// the override, the KNNSHAP_KERNEL environment variable, and cpuid.
KernelKind ActiveKernel();

/// Precomputed per-row norms of a corpus, shared by every query against it.
/// Supplying one to the batch entry points lets the squared-L2 / L2 /
/// cosine fast paths skip the per-pair norm work; the engine valuators
/// build one at Fit() so it amortizes across requests. Norms are computed
/// with the active kernel's dot product so that a corpus row identical to
/// the query cancels to exactly zero distance.
class CorpusNorms {
 public:
  CorpusNorms() = default;
  explicit CorpusNorms(const Matrix& corpus);

  bool Empty() const { return rows_ == 0; }
  /// True when the norms were computed over a matrix of this shape.
  bool Matches(const Matrix& corpus) const {
    return rows_ == corpus.Rows() && cols_ == corpus.Cols();
  }

  /// Squared L2 norm of each row.
  std::span<const double> Squared() const { return squared_; }
  /// Euclidean (sqrt) norm of each row, for cosine.
  std::span<const double> Euclidean() const { return euclidean_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> squared_;
  std::vector<double> euclidean_;
};

/// Norms for `corpus` when `metric` can use them (the L2 family and
/// cosine); an empty — and therefore ignored — instance for L1, where
/// building them would be an O(N·d) pass the kernels never read.
CorpusNorms NormsForMetric(const Matrix& corpus, Metric metric);

/// Distances from `query` to every corpus row, written to `out` (length
/// corpus.Rows()). Dimension compatibility is checked once per call, not
/// per row. `norms` may be null (one-shot callers) or a CorpusNorms built
/// over `corpus`.
void ComputeDistances(const Matrix& corpus, std::span<const float> query,
                      Metric metric, const CorpusNorms* norms,
                      std::span<double> out);

/// Distances from `query` to corpus rows [row_begin, row_end) only,
/// written to out[row_begin - row_begin .. row_end - row_begin). The
/// block-parallel single-query path shards the corpus into ranges and
/// points each worker here; results are bit-identical to the matching
/// slice of ComputeDistances.
void ComputeDistancesRange(const Matrix& corpus, std::span<const float> query,
                           Metric metric, const CorpusNorms* norms,
                           size_t row_begin, size_t row_end,
                           std::span<double> out);

/// Query-block × corpus-block distance matrix: out[q * corpus.Rows() + i]
/// is the distance from queries.Row(q) to corpus.Row(i). Corpus blocks are
/// sized to stay cache-resident across the query block, so the corpus is
/// streamed from memory once per block of queries instead of once per
/// query.
void ComputeDistanceMatrix(const Matrix& corpus, const Matrix& queries,
                           Metric metric, const CorpusNorms* norms,
                           std::span<double> out);

/// Distances from `query` to the listed corpus rows only (LSH/SRP candidate
/// rescoring). out[i] is the distance to corpus.Row(rows[i]).
void ComputeDistancesFor(const Matrix& corpus, std::span<const int> rows,
                         std::span<const float> query, Metric metric,
                         const CorpusNorms* norms, std::span<double> out);

/// Row indices [0, dists.size()) sorted ascending by (distance, index),
/// via the packed-key sort described above. Appends into *order (cleared
/// first). Exactly reproduces the reference comparator order.
void ArgsortDistances(std::span<const double> dists, std::vector<int>* order);

/// The k smallest entries by (distance, id), ascending. `ids` maps
/// positions in `dists` to row ids (empty span = identity). Selection is
/// O(n) on packed keys plus an exact sort of the small candidate band, so
/// boundary ties resolve exactly as the reference (distance, id) order.
std::vector<Neighbor> SelectTopK(std::span<const double> dists,
                                 std::span<const int> ids, size_t k);

namespace internal {
/// Dot product under the active kernel (exposed so CorpusNorms and tests
/// share the exact accumulation order of the distance pass).
double KernelDot(const float* a, const float* b, size_t d);

/// Pure per-call dispatch policy applied on top of ActiveKernel() by the
/// single-query entry points (ComputeDistances / ComputeDistancesRange /
/// ComputeDistancesFor): when the kernel was chosen by auto-detection
/// (`was_auto`, i.e. neither an override nor the environment pinned it)
/// and resolved to the blocked path for a plain-L2 pass at small d, the
/// reference loop is returned instead — BENCH_kernel.json shows blocked
/// 0.82-0.90x *slower* than scalar there (the per-row sqrt hides the
/// multi-accumulator win and the norm-identity guard adds work). Exposed
/// pure so the policy is testable on machines whose own auto pick differs.
KernelKind ResolveDistanceKernel(KernelKind resolved, bool was_auto,
                                 Metric metric, size_t d);
}  // namespace internal

}  // namespace knnshap

#endif  // KNNSHAP_KNN_DISTANCE_KERNEL_H_
