// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// K-nearest-neighbor regressor and the regression utility of Eq (25)/(27):
// the negative squared error of the (weighted) KNN estimate.

#ifndef KNNSHAP_KNN_KNN_REGRESSOR_H_
#define KNNSHAP_KNN_KNN_REGRESSOR_H_

#include <span>

#include "dataset/dataset.h"
#include "knn/distance_kernel.h"
#include "knn/metric.h"
#include "knn/neighbors.h"
#include "knn/weights.h"

namespace knnshap {

/// Unweighted or weighted KNN regressor over a training Dataset.
/// Precomputes corpus row norms at construction so every prediction runs
/// the fast kernel path.
class KnnRegressor {
 public:
  /// The training data must have targets. `k` >= 1.
  KnnRegressor(const Dataset* train, int k, WeightConfig weights = {},
               Metric metric = Metric::kL2);

  /// Weighted mean of the K nearest targets. For the unweighted estimator
  /// this is sum(y_topK) / K as in Eq (25) (note: divided by K, not by
  /// min(K,|S|), matching the paper).
  double Predict(std::span<const float> query) const;

  /// Mean squared error over a test set with targets. Runs the
  /// query-block × corpus batched kernel (chunked so the distance buffer
  /// stays bounded); per-query estimates are bit-identical to Predict().
  double MeanSquaredError(const Dataset& test) const;

  int K() const { return k_; }

 private:
  /// Estimate over already-retrieved neighbors (shared by Predict/MSE).
  double PredictFromNeighbors(const std::vector<Neighbor>& nns) const;

  const Dataset* train_;
  int k_;
  WeightConfig weights_;
  Metric metric_;
  CorpusNorms norms_;
};

/// Eq (25): nu(S) = -((1/K) sum_{k<=min(K,|S|)} y_{alpha_k(S)} - y_test)^2.
/// An empty S evaluates to -y_test^2 (the paper's formula taken literally).
double UnweightedKnnRegressionUtility(const Dataset& train, std::span<const int> subset,
                                      std::span<const float> query, double test_target,
                                      int k, Metric metric = Metric::kL2);

/// Eq (27): weighted squared-error utility with kernel `config`.
double WeightedKnnRegressionUtility(const Dataset& train, std::span<const int> subset,
                                    std::span<const float> query, double test_target,
                                    int k, const WeightConfig& config,
                                    Metric metric = Metric::kL2);

}  // namespace knnshap

#endif  // KNNSHAP_KNN_KNN_REGRESSOR_H_
