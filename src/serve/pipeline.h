// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// RequestPipeline — the concurrent JSONL serving loop over the
// ValuationEngine and the CorpusStore.
//
// The loop keeps a strict division of labor:
//
//   * The main thread reads stdin, parses and validates every request, and
//     executes all corpus / cache / introspection ops inline, in arrival
//     order. Mutations are therefore totally ordered, and every `value`
//     request snapshots its corpora (data + fingerprint) at parse time —
//     it values exactly the corpus version that was current when it
//     arrived, no matter what mutations land while it computes.
//
//   * Independent `value` requests are dispatched onto the thread pool and
//     run concurrently against the (thread-safe) ValuationEngine. Each job
//     runs the engine with intra-request query sharding disabled — the
//     pool's ParallelFor is non-reentrant, and cross-request concurrency
//     is the serving win — computes the response line, and hands it to the
//     in-order emitter.
//
//   * Responses are emitted in request order (the JSONL protocol stays a
//     deterministic transcript: pipelined ordered-mode output is
//     byte-identical to the serial loop). A request carrying
//     {"ordered":false} opts out: its response is written the moment it
//     completes, tagged with its echoed "id" for correlation.
//
// See src/serve/README.md for the full ordering/concurrency contract and
// README.md for the request/response protocol.

#ifndef KNNSHAP_SERVE_PIPELINE_H_
#define KNNSHAP_SERVE_PIPELINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "knn/distance_kernel.h"
#include "obs/metrics.h"
#include "serve/corpus_store.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace knnshap {

/// Pipeline construction options.
struct PipelineOptions {
  /// Pool the value jobs run on; nullptr = ThreadPool::Shared().
  ThreadPool* pool = nullptr;
  /// Max value jobs submitted but not yet finished; the reader blocks when
  /// the window is full (backpressure). 0 = 2 * pool threads.
  size_t max_in_flight = 0;
  /// false = run every request inline on the reader thread (the pre-serve
  /// loop; the bench's serial baseline and a debugging aid).
  bool pipelined = true;
  /// false = omit the "seconds" field from value responses so transcripts
  /// are byte-for-byte reproducible (golden tests, the bench's
  /// ordered-identity check).
  bool emit_timing = true;
  /// Pass the CorpusStore's incrementally maintained fingerprints to the
  /// engine (skips the per-request corpus rehash). false reproduces the
  /// pre-store behavior of hashing every corpus per request — kept for the
  /// bench's before/after attribution.
  bool trust_store_fingerprints = true;
  /// Wire a MetricsRegistry through the engine and the serve loop:
  /// per-method request counts + latency histograms, per-phase time
  /// totals, queue-wait histogram and in-flight gauge, surfaced by the
  /// `stats`/`metrics` ops. false removes every metrics clock read — the
  /// bench's obs-off baseline arm.
  bool observability = true;
  /// External registry to use; nullptr = the pipeline owns a private one.
  MetricsRegistry* metrics = nullptr;
  /// Record deep per-query trace spans on every value request, as if each
  /// carried {"trace":true} (knnshap_serve --trace-all).
  bool trace_all = false;
  /// > 0: every ok value request slower than this (engine + queue wait,
  /// milliseconds) emits one JSONL line with its full phase breakdown to
  /// `slow_log`. Forces deep tracing on every value request.
  double slow_ms = 0.0;
  /// Slow-request log sink; nullptr = std::cerr (responses own stdout).
  std::ostream* slow_log = nullptr;
  /// Admission control. -1 (default) keeps the legacy blocking
  /// backpressure: the reader stalls when max_in_flight jobs are out.
  /// >= 0 replaces blocking with load shedding — a value request arriving
  /// while this many are already in flight is answered
  /// {"ok":false,"code":"unavailable","retry_after_ms":...} immediately
  /// on the reader thread, so overload degrades visibly instead of
  /// silently freezing the input stream. 0 sheds every value request
  /// (deterministic; the serial-vs-pipelined byte-identity test uses it).
  int max_queue = -1;
  /// retry_after_ms echoed on shed responses. A constant, not a latency
  /// estimate, so shed responses are byte-deterministic.
  int shed_retry_after_ms = 100;
  /// Server-wide deadline (ms) applied to every value request that does
  /// not carry its own "deadline_ms". 0 = none.
  int64_t default_deadline_ms = 0;
  /// Crash-safe periodic snapshots: after every `snapshot_every` value
  /// requests, persist the result cache to `snapshot_path` (atomic
  /// tmp+fsync+rename; a failure bumps a counter, never kills serving).
  /// The path is also flushed once when Run exits (EOF / quit / graceful
  /// shutdown). Empty path or 0 disables.
  std::string snapshot_path;
  size_t snapshot_every = 0;
  /// Reject request lines longer than this many bytes with a structured
  /// invalid_argument before JSON-parsing them (a malformed client cannot
  /// make the reader allocate unboundedly). 0 = unlimited.
  size_t max_line_bytes = 0;
  /// Graceful shutdown (SIGINT/SIGTERM): when non-null and the pointee
  /// becomes true, Run stops reading further requests, drains in-flight
  /// work, flushes the snapshot and returns. knnshap_serve points this at
  /// its signal-handler flag.
  const std::atomic<bool>* shutdown = nullptr;
  /// > 1: route supported value methods (exact / exact-corrected /
  /// weighted-fast / truncated) through the shard subsystem — responses
  /// stay byte-identical to the unsharded server (see src/shard/README.md).
  /// The `stats` op grows a "topology" section when sharding is on.
  int shards = 1;
  /// true: process-per-shard workers speaking the JSONL protocol over
  /// pipes (argv below); false: thread-per-shard in-process workers.
  bool shard_process = false;
  std::vector<std::string> shard_worker_command;
  /// Remote socket topology: one ordered replica endpoint list
  /// ("host:port") per shard (knnshap_serve --shard-remote). Non-empty
  /// selects the TCP transport with per-shard failover and delta corpus
  /// sync (docs/DEPLOYMENT.md); mutually exclusive with shard_process.
  std::vector<std::vector<std::string>> shard_remote;
  /// Socket transport knobs (remote mode only).
  int shard_connect_timeout_ms = 2000;
  int shard_io_timeout_ms = 30000;
  int shard_connect_attempts = 3;
  EngineOptions engine;
};

/// The serving state: corpus store + engine + the pipelined request loop.
class RequestPipeline {
 public:
  explicit RequestPipeline(const PipelineOptions& options = {});

  RequestPipeline(const RequestPipeline&) = delete;
  RequestPipeline& operator=(const RequestPipeline&) = delete;

  /// Runs the JSONL loop until EOF or {"op":"quit"}; all in-flight work is
  /// drained before returning. Returns the number of requests answered.
  size_t Run(std::istream& in, std::ostream& out);

  /// Handles one parsed request synchronously on the calling thread
  /// (value requests included). Tests and embedding tools use this; Run is
  /// the concurrent path.
  JsonValue HandleSync(const JsonValue& request);

  ValuationEngine& Engine() { return engine_; }
  CorpusStore& Store() { return store_; }

  /// The wired registry (null when observability is off). knnshap_serve
  /// uses this for --metrics-file.
  MetricsRegistry* Metrics() { return metrics_; }

  /// Value requests shed by admission control since construction.
  uint64_t ShedCount() const { return shed_total_.load(std::memory_order_relaxed); }
  /// Periodic/final snapshot attempts that failed since construction.
  uint64_t SnapshotFailures() const {
    return snapshot_failures_.load(std::memory_order_relaxed);
  }

 private:
  struct PreparedValue;  // parsed+validated value request (pipeline.cpp)

  JsonValue Load(const JsonValue& request);
  JsonValue AppendRows(const JsonValue& request);
  JsonValue RemoveRow(const JsonValue& request);
  JsonValue Drop(const JsonValue& request);
  JsonValue Methods() const;
  JsonValue Describe(const JsonValue& request) const;
  JsonValue Stats() const;
  JsonValue MetricsText() const;
  JsonValue SaveCache(const JsonValue& request);
  JsonValue LoadCache(const JsonValue& request);

  /// The shard-worker data plane: one exact top-r candidate run over a
  /// contiguous row range of a stored corpus, fingerprint-verified.
  /// Answered inline on the reader thread — a worker process serves these
  /// between its parent's barrier ops, so they must never queue behind the
  /// pool.
  JsonValue Candidates(const JsonValue& request);

  /// Remote-worker corpus sync (docs/PROTOCOL.md): `digests` reports a
  /// stored corpus's per-block content digests; `load_delta` splices
  /// changed blocks into it, verifying the resulting combined fingerprint
  /// against the router's expectation (mismatch = data_loss + drop).
  JsonValue Digests(const JsonValue& request);
  JsonValue LoadDelta(const JsonValue& request);

  /// Protocol self-description: version + the sorted op list (the CI docs
  /// gate cross-checks docs/PROTOCOL.md against it).
  JsonValue Protocol() const;

  /// Per-method/latency/phase subsections of `stats` (time-valued parts
  /// omitted when emit_timing is off, keeping golden transcripts stable).
  JsonValue StatsMetricsJson() const;
  void MaybeLogSlow(const PreparedValue& prepared, const ValuationReport& report);

  /// Parses/validates a value request against current store state. On
  /// error returns false with *error_response filled.
  bool PrepareValue(const JsonValue& request, PreparedValue* prepared,
                    JsonValue* error_response);
  JsonValue RunValue(const PreparedValue& prepared);

  /// Invalidate engine state keyed by a corpus's pre-mutation contents.
  void InvalidateOld(uint64_t old_fingerprint);

  /// One crash-safe snapshot to options_.snapshot_path (no-op when the
  /// path is empty). Failures bump snapshot_failures_, never throw.
  void SnapshotNow();

  /// Shed bookkeeping + the unavailable response for one value request.
  JsonValue ShedResponse(const JsonValue& request);

  PipelineOptions options_;
  ThreadPool* pool_;
  size_t max_in_flight_;
  /// Declared before engine_: the engine's options embed the registry
  /// pointer, so it must exist first.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  CorpusStore store_;
  ValuationEngine engine_;

  // Serve-layer instrument handles (null when observability is off). The
  // engine credits its own phases; these cover what it cannot see.
  Counter* parse_nanos_ = nullptr;
  Counter* serialize_nanos_ = nullptr;
  Counter* queue_nanos_ = nullptr;
  Histogram* queue_seconds_ = nullptr;
  Gauge* in_flight_ = nullptr;
  Counter* shed_metric_ = nullptr;
  Counter* snapshot_failures_metric_ = nullptr;
  std::mutex slow_log_mutex_;

  /// Single-entry norms cache for the candidates op, keyed by corpus
  /// identity: a worker process answers a stream of candidates against one
  /// corpus version, so one slot removes the per-query norms recompute
  /// (which only cosine actually populates).
  struct NormsCacheEntry {
    bool valid = false;
    std::string name;
    uint64_t version = 0;
    Metric metric = Metric::kL2;
    CorpusNorms norms;
  };
  std::mutex norms_cache_mutex_;
  NormsCacheEntry norms_cache_;

  // Robustness counters (surfaced by the stats `server` section and
  // FormatStatusLine). Values-since-last-snapshot is reader-thread-only.
  std::atomic<uint64_t> shed_total_{0};
  std::atomic<uint64_t> snapshots_taken_{0};
  std::atomic<uint64_t> snapshot_failures_{0};
  size_t values_since_snapshot_ = 0;
  std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
};

}  // namespace knnshap

#endif  // KNNSHAP_SERVE_PIPELINE_H_
