// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "serve/corpus_store.h"

#include <utility>

namespace knnshap {

CorpusMutation CorpusStore::InstallLocked(const std::string& name, Dataset next,
                                          CorpusDigests digests, Entry* entry) {
  CorpusMutation result;
  result.old_fingerprint = entry->fingerprint;
  next.name = name;
  entry->data = std::make_shared<const Dataset>(std::move(next));
  entry->digests = std::make_shared<const CorpusDigests>(std::move(digests));
  entry->fingerprint = entry->digests->Combined();
  entry->version += 1;
  result.snapshot = {entry->data, entry->fingerprint, entry->version,
                     entry->digests};
  return result;
}

CorpusMutation CorpusStore::Put(const std::string& name, Dataset data) {
  CorpusDigests digests = ComputeCorpusDigests(data);
  std::lock_guard<std::mutex> lock(mutex_);
  return InstallLocked(name, std::move(data), std::move(digests), &entries_[name]);
}

std::optional<CorpusSnapshot> CorpusStore::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  return CorpusSnapshot{it->second.data, it->second.fingerprint,
                        it->second.version, it->second.digests};
}

bool CorpusStore::Append(const std::string& name, const Dataset& rows,
                         CorpusMutation* out, std::string* error) {
  if (rows.Size() == 0) {
    *error = "append: no rows";
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    *error = "unknown dataset '" + name + "'";
    return false;
  }
  const Dataset& current = *it->second.data;
  if (rows.Dim() != current.Dim()) {
    *error = "append: dimension mismatch (corpus " + std::to_string(current.Dim()) +
             ", rows " + std::to_string(rows.Dim()) + ")";
    return false;
  }
  if (rows.HasLabels() != current.HasLabels() ||
      rows.HasTargets() != current.HasTargets()) {
    *error = "append: label/target schema mismatch";
    return false;
  }

  const size_t old_rows = current.Size();
  Dataset next = current;  // copy-on-write: readers keep the old version
  for (size_t r = 0; r < rows.Size(); ++r) next.features.AppendRow(rows.features.Row(r));
  next.labels.insert(next.labels.end(), rows.labels.begin(), rows.labels.end());
  next.targets.insert(next.targets.end(), rows.targets.begin(), rows.targets.end());

  // Incremental: only the trailing (possibly partial) block and the new
  // blocks are rehashed.
  CorpusDigests digests = *it->second.digests;
  RehashBlocksFrom(next, old_rows, &digests);
  *out = InstallLocked(name, std::move(next), std::move(digests), &it->second);
  return true;
}

bool CorpusStore::RemoveRow(const std::string& name, size_t row, CorpusMutation* out,
                            std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    *error = "unknown dataset '" + name + "'";
    return false;
  }
  const Dataset& current = *it->second.data;
  if (row >= current.Size()) {
    *error = "remove: row " + std::to_string(row) + " out of range (corpus has " +
             std::to_string(current.Size()) + " rows)";
    return false;
  }
  if (current.Size() == 1) {
    *error = "remove: would leave an empty corpus; use drop instead";
    return false;
  }
  std::vector<int> keep;
  keep.reserve(current.Size() - 1);
  for (size_t r = 0; r < current.Size(); ++r) {
    if (r != row) keep.push_back(static_cast<int>(r));
  }
  Dataset next = current.Subset(keep);

  // Blocks before `row`'s block are untouched by the shift-down.
  CorpusDigests digests = *it->second.digests;
  RehashBlocksFrom(next, row, &digests);
  *out = InstallLocked(name, std::move(next), std::move(digests), &it->second);
  return true;
}

bool CorpusStore::Drop(const std::string& name, uint64_t* old_fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  *old_fingerprint = it->second.fingerprint;
  entries_.erase(it);
  return true;
}

std::vector<CorpusStore::ListedCorpus> CorpusStore::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ListedCorpus> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back({name, entry.data->Size(), entry.data->Dim(), entry.version,
                   entry.fingerprint});
  }
  return out;
}

size_t CorpusStore::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace knnshap
