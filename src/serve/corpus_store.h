// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// CorpusStore — the serving subsystem's owner of named, versioned corpora.
//
// Every mutation (put / append / remove) installs a *new* immutable Dataset
// behind a shared_ptr and bumps the version: readers holding a snapshot —
// in-flight valuation requests on pool workers — keep valuing the exact
// corpus they were parsed against, unaffected by later mutations
// (copy-on-write semantics; the copy is taken once per mutation, never per
// reader).
//
// Each entry also carries the corpus's block-digest fingerprint (see
// util/fingerprint.h), maintained *incrementally*: a one-row append
// rehashes only the trailing block, a removal at row r rehashes from r's
// block onward, and a snapshot hands the precomputed fingerprint to the
// ValuationEngine so the serve path never rehashes a corpus per request.
// The invariant `fingerprint == DatasetFingerprint(*data)` is what
// tests/fingerprint_test.cpp pins across randomized mutation sequences.
//
// Thread-safe: all operations are mutex-guarded; snapshots are immutable.

#ifndef KNNSHAP_SERVE_CORPUS_STORE_H_
#define KNNSHAP_SERVE_CORPUS_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "util/fingerprint.h"

namespace knnshap {

/// Immutable view of one corpus version.
struct CorpusSnapshot {
  std::shared_ptr<const Dataset> data;
  uint64_t fingerprint = 0;  ///< == DatasetFingerprint(*data).
  uint64_t version = 0;      ///< 1 on first put, bumped per mutation.
  /// Per-block digests of this version (never null from Get/mutations):
  /// the shard planner derives content-addressed shard fingerprints from
  /// them without rehashing the corpus.
  std::shared_ptr<const CorpusDigests> digests;
};

/// Outcome of a mutating operation: the new snapshot plus the fingerprint
/// the corpus had before (0 for a fresh name) — the handle the caller
/// needs to invalidate engine state keyed by the old contents.
struct CorpusMutation {
  CorpusSnapshot snapshot;
  uint64_t old_fingerprint = 0;
};

/// Named, versioned, fingerprinted corpora.
class CorpusStore {
 public:
  /// Inserts or replaces `name` with `data` (full digest computation —
  /// this is the one place a complete hash of the corpus happens).
  CorpusMutation Put(const std::string& name, Dataset data);

  /// Snapshot of the current version; nullopt for an unknown name.
  std::optional<CorpusSnapshot> Get(const std::string& name) const;

  /// Appends `rows` (same dim / label / target schema) to `name`.
  /// Incremental digest update: only blocks from the old row count onward
  /// are rehashed. Returns false with *error on schema mismatch or an
  /// unknown name.
  bool Append(const std::string& name, const Dataset& rows, CorpusMutation* out,
              std::string* error);

  /// Removes row `row` from `name`; digests are rehashed from `row`'s
  /// block onward.
  bool RemoveRow(const std::string& name, size_t row, CorpusMutation* out,
                 std::string* error);

  /// Drops `name`; returns the dropped corpus's fingerprint via
  /// *old_fingerprint (for engine invalidation). False if unknown.
  bool Drop(const std::string& name, uint64_t* old_fingerprint);

  /// Stats-level listing, sorted by name.
  struct ListedCorpus {
    std::string name;
    size_t rows = 0;
    size_t dim = 0;
    uint64_t version = 0;
    uint64_t fingerprint = 0;
  };
  std::vector<ListedCorpus> List() const;

  size_t Size() const;

 private:
  struct Entry {
    std::shared_ptr<const Dataset> data;
    std::shared_ptr<const CorpusDigests> digests;  ///< shared with snapshots
    uint64_t fingerprint = 0;
    uint64_t version = 0;
  };

  CorpusMutation InstallLocked(const std::string& name, Dataset next,
                               CorpusDigests digests, Entry* entry);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace knnshap

#endif  // KNNSHAP_SERVE_CORPUS_STORE_H_
