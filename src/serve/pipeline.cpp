// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "serve/pipeline.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <iostream>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <utility>
#include <vector>

#include <unistd.h>

#include "dataset/io.h"
#include "engine/registry.h"
#include "engine/schema.h"
#include "knn/selection.h"
#include "market/valuation_report.h"
#include "obs/trace.h"
#include "shard/shard_planner.h"
#include "shard/wire.h"
#include "util/cancel.h"
#include "util/fault.h"
#include "util/status.h"

namespace knnshap {

namespace {

/// Failure responses carry the machine-readable Status parts: "error" is
/// the human message, "code" the stable snake_case class, and "field" —
/// present for parameter errors — names the offending request field.
JsonValue ErrorResponse(const Status& status) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("ok", JsonValue(false));
  out.Set("error", JsonValue(status.message()));
  out.Set("code", JsonValue(StatusCodeName(status.code())));
  if (!status.field().empty()) out.Set("field", JsonValue(status.field()));
  return out;
}

JsonValue ErrorResponse(const std::string& message) {
  return ErrorResponse(Status::InvalidArgument(message));
}

JsonValue NotFoundResponse(const std::string& message) {
  return ErrorResponse(Status::NotFound(message));
}

JsonValue OkResponse() {
  JsonValue out = JsonValue::MakeObject();
  out.Set("ok", JsonValue(true));
  return out;
}

std::string FingerprintHex(uint64_t fingerprint) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

JsonValue CountersJson(const CacheCounters& counters) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("hits", JsonValue(static_cast<double>(counters.hits)));
  out.Set("misses", JsonValue(static_cast<double>(counters.misses)));
  out.Set("evictions", JsonValue(static_cast<double>(counters.evictions)));
  return out;
}

/// Extracts a label value from an inline-labeled instrument name, e.g.
/// `knnshap_requests_total{method="exact"}` -> "exact"; empty when absent.
std::string ExtractLabel(const std::string& name, const std::string& label) {
  const std::string needle = label + "=\"";
  const size_t start = name.find(needle);
  if (start == std::string::npos) return "";
  const size_t value_start = start + needle.size();
  const size_t end = name.find('"', value_start);
  if (end == std::string::npos) return "";
  return name.substr(value_start, end - value_start);
}

/// The response/slow-log "trace" object. Timed form: per-span seconds and
/// counts plus queue/total. Masked form (emit_timing off — golden
/// transcripts): span names and counts only, and only the engine-recorded
/// phases — parse/serialize/queue_wait are serve-layer spans whose
/// presence differs between the serial and pipelined loops, and the two
/// must stay byte-identical.
JsonValue TraceJson(const ValuationReport& report, bool timed) {
  const RequestTrace& trace = *report.trace;
  JsonValue out = JsonValue::MakeObject();
  out.Set("kernel", JsonValue(trace.kernel));
  out.Set("cache_hit", JsonValue(trace.cache_hit));
  out.Set("fit_reused", JsonValue(trace.fit_reused));
  if (timed) {
    out.Set("total_seconds", JsonValue(report.seconds));
    out.Set("queue_seconds", JsonValue(report.queue_seconds));
  }
  JsonValue spans = JsonValue::MakeObject();
  for (size_t i = 0; i < kNumPhases; ++i) {
    const Phase phase = static_cast<Phase>(i);
    const uint64_t count = trace.SpanCount(phase);
    if (count == 0) continue;
    if (!timed && (phase == Phase::kParse || phase == Phase::kSerialize ||
                   phase == Phase::kQueueWait)) {
      continue;
    }
    if (timed) {
      JsonValue span = JsonValue::MakeObject();
      span.Set("seconds", JsonValue(trace.Seconds(phase)));
      span.Set("count", JsonValue(static_cast<double>(count)));
      spans.Set(PhaseName(phase), std::move(span));
    } else {
      spans.Set(PhaseName(phase), JsonValue(static_cast<double>(count)));
    }
  }
  out.Set("spans", std::move(spans));
  return out;
}

bool ParseTargetMode(const std::string& mode, CsvTarget* out) {
  if (mode.empty() || mode == "label") {
    *out = CsvTarget::kLabel;
  } else if (mode == "target") {
    *out = CsvTarget::kTarget;
  } else if (mode == "none") {
    *out = CsvTarget::kNone;
  } else {
    return false;
  }
  return true;
}

bool FromInlineRows(const JsonValue& rows, CsvTarget target, Dataset* data,
                    std::string* error) {
  if (!rows.IsArray() || rows.Items().empty()) {
    *error = "'rows' must be a non-empty array of rows";
    return false;
  }
  for (const auto& row : rows.Items()) {
    if (!row.IsArray() || row.Items().empty()) {
      *error = "each row must be a non-empty array of numbers";
      return false;
    }
    size_t arity = row.Items().size();
    size_t num_features = target == CsvTarget::kNone ? arity : arity - 1;
    if (num_features == 0) {
      *error = "row has no feature columns";
      return false;
    }
    std::vector<float> features;
    features.reserve(num_features);
    for (size_t c = 0; c < num_features; ++c) {
      const JsonValue& cell = row.Items()[c];
      if (!cell.IsNumber()) {
        *error = "non-numeric feature cell";
        return false;
      }
      features.push_back(static_cast<float>(cell.AsNumber()));
    }
    if (!data->features.Empty() && features.size() != data->Dim()) {
      *error = "inconsistent row arity";
      return false;
    }
    data->features.AppendRow(features);
    if (target != CsvTarget::kNone) {
      const JsonValue& last = row.Items()[arity - 1];
      if (!last.IsNumber()) {
        *error = "non-numeric label/target cell";
        return false;
      }
      if (target == CsvTarget::kLabel) {
        data->labels.push_back(static_cast<int>(last.AsNumber()));
      } else {
        data->targets.push_back(last.AsNumber());
      }
    }
  }
  return true;
}

/// In-order response emitter. Ordered responses occupy sequence slots
/// reserved at parse time on the reader thread; whichever thread fills the
/// head slot flushes the contiguous prefix. Unordered responses bypass the
/// slots entirely.
class OrderedEmitter {
 public:
  explicit OrderedEmitter(std::ostream* out) : out_(out) {}

  uint64_t ReserveSlot() {
    std::lock_guard<std::mutex> lock(mutex_);
    return next_slot_++;
  }

  void EmitAt(uint64_t slot, std::string line) {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_[slot] = std::move(line);
    while (!pending_.empty() && pending_.begin()->first == next_emit_) {
      WriteLocked(pending_.begin()->second);
      pending_.erase(pending_.begin());
      ++next_emit_;
    }
  }

  /// Reserve + emit in one step (reader-thread synchronous responses).
  void EmitOrdered(std::string line) { EmitAt(ReserveSlot(), std::move(line)); }

  void EmitNow(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    WriteLocked(line);
  }

 private:
  void WriteLocked(const std::string& line) {
    (*out_) << line << '\n';
    out_->flush();
  }

  std::ostream* out_;
  std::mutex mutex_;
  uint64_t next_slot_ = 0;
  uint64_t next_emit_ = 0;
  std::map<uint64_t, std::string> pending_;
};

/// Bounded in-flight window: the reader blocks while `limit` value jobs
/// are outstanding (backpressure), and drains to zero at sync/quit/EOF.
class InFlightWindow {
 public:
  void Acquire(size_t limit) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return count_ < limit; });
    ++count_;
  }

  void Release() {
    // Notify while holding the lock: a post-unlock notify could run after
    // a drained Run() has already destroyed this stack-local window.
    std::lock_guard<std::mutex> lock(mutex_);
    --count_;
    cv_.notify_all();
  }

  void Drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  /// Jobs currently outstanding (the shed policy's queue-depth probe).
  size_t Count() {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t count_ = 0;
};

}  // namespace

/// A value request after parse/validation: the engine request with corpus
/// snapshots resolved (so later mutations cannot affect it) plus the
/// response shaping fields.
struct RequestPipeline::PreparedValue {
  ValuationRequest engine_request;
  /// Schema of the resolved method, for the response's effective-params
  /// echo (held shared so re-registration cannot dangle it).
  std::shared_ptr<const MethodSchema> schema;
  bool include_values = true;
  bool ordered = true;
  /// The request carried an explicit "parallel":true — run it inline with
  /// intra-request query sharding instead of dispatching to one worker.
  bool explicit_parallel = false;
  bool has_id = false;
  JsonValue id;
  /// The client set {"trace":true}: echo the trace in the response.
  bool echo_trace = false;
  /// JSONL parse + request decode time (pipelined loop only).
  uint64_t parse_nanos = 0;
  /// Set when the job was dispatched to the pool; RunValue derives the
  /// queue wait from it.
  bool dispatched = false;
  std::chrono::steady_clock::time_point dispatch_time;
};

namespace {

EngineOptions EngineOptionsWith(const PipelineOptions& options,
                                MetricsRegistry* metrics) {
  EngineOptions engine = options.engine;
  if (engine.metrics == nullptr) engine.metrics = metrics;
  return engine;
}

}  // namespace

RequestPipeline::RequestPipeline(const PipelineOptions& options)
    : options_(options),
      pool_(options.pool != nullptr ? options.pool : &ThreadPool::Shared()),
      max_in_flight_(options.max_in_flight != 0 ? options.max_in_flight
                                                : 2 * pool_->NumThreads()),
      owned_metrics_(options.observability && options.metrics == nullptr
                         ? std::make_unique<MetricsRegistry>()
                         : nullptr),
      metrics_(options.observability
                   ? (options.metrics != nullptr ? options.metrics
                                                 : owned_metrics_.get())
                   : nullptr),
      engine_(EngineOptionsWith(options, metrics_)) {
  if (metrics_ != nullptr) {
    parse_nanos_ = metrics_->GetCounter(
        std::string("knnshap_phase_nanos_total{phase=\"") +
        PhaseName(Phase::kParse) + "\"}");
    serialize_nanos_ = metrics_->GetCounter(
        std::string("knnshap_phase_nanos_total{phase=\"") +
        PhaseName(Phase::kSerialize) + "\"}");
    queue_nanos_ = metrics_->GetCounter(
        std::string("knnshap_phase_nanos_total{phase=\"") +
        PhaseName(Phase::kQueueWait) + "\"}");
    queue_seconds_ = metrics_->GetHistogram("knnshap_queue_wait_seconds");
    in_flight_ = metrics_->GetGauge("knnshap_in_flight_requests");
    shed_metric_ = metrics_->GetCounter("knnshap_shed_total");
    snapshot_failures_metric_ =
        metrics_->GetCounter("knnshap_snapshot_failures_total");
  }
}

JsonValue RequestPipeline::ShedResponse(const JsonValue& request) {
  shed_total_.fetch_add(1, std::memory_order_relaxed);
  if (shed_metric_ != nullptr) shed_metric_->Add(1);
  JsonValue out =
      ErrorResponse(Status::Unavailable("server overloaded: value queue full"));
  out.Set("retry_after_ms",
          JsonValue(static_cast<double>(options_.shed_retry_after_ms)));
  if (request.Has("id")) out.Set("id", request.Get("id"));
  return out;
}

void RequestPipeline::SnapshotNow() {
  if (options_.snapshot_path.empty()) return;
  if (FaultInjectionEnabled() && Fault("snapshot")) {
    snapshot_failures_.fetch_add(1, std::memory_order_relaxed);
    if (snapshot_failures_metric_ != nullptr) snapshot_failures_metric_->Add(1);
    return;
  }
  StatusOr<size_t> saved = engine_.SaveCache(options_.snapshot_path);
  if (saved.ok()) {
    snapshots_taken_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // A failed snapshot never kills serving, and SaveCache's atomicity
    // means the previous snapshot file is still intact.
    snapshot_failures_.fetch_add(1, std::memory_order_relaxed);
    if (snapshot_failures_metric_ != nullptr) snapshot_failures_metric_->Add(1);
  }
}

size_t RequestPipeline::Run(std::istream& in, std::ostream& out) {
  OrderedEmitter emitter(&out);
  InFlightWindow window;
  size_t served = 0;
  std::string line;
  // Periodic-snapshot cadence, ticked once per accepted value request on
  // the reader thread (shed and malformed requests do not count).
  auto value_snapshot_tick = [&] {
    if (options_.snapshot_every == 0) return;
    if (++values_since_snapshot_ >= options_.snapshot_every) {
      values_since_snapshot_ = 0;
      SnapshotNow();
    }
  };
  auto shutdown_requested = [&] {
    return options_.shutdown != nullptr &&
           options_.shutdown->load(std::memory_order_relaxed);
  };
  while (!shutdown_requested() && std::getline(in, line)) {
    if (line.empty()) continue;
    ++served;
    // Bound the parse: an over-long line is rejected before JSON-parsing
    // (no "id" echo — the line was never parsed).
    if (options_.max_line_bytes != 0 && line.size() > options_.max_line_bytes) {
      emitter.EmitOrdered(
          ErrorResponse(Status::InvalidArgument(
                            "request line of " + std::to_string(line.size()) +
                            " bytes exceeds the " +
                            std::to_string(options_.max_line_bytes) +
                            "-byte limit"))
              .Dump());
      continue;
    }
    // Clock reads are metrics-gated: with observability off this loop
    // reads no clocks at all.
    std::chrono::steady_clock::time_point parse_start;
    if (metrics_ != nullptr) parse_start = std::chrono::steady_clock::now();
    JsonParseResult parsed = ParseJson(line);
    if (!parsed.ok()) {
      emitter.EmitOrdered(ErrorResponse("parse error: " + parsed.error).Dump());
      continue;
    }
    const std::string& op = parsed.value.Get("op").AsString();

    if (op == "quit" || op == "sync") {
      // Barrier ops: wait for every in-flight value, then answer.
      window.Drain();
      JsonValue response = OkResponse();
      if (op == "quit") response.Set("bye", JsonValue(true));
      emitter.EmitOrdered(response.Dump());
      if (op == "quit") {
        SnapshotNow();  // final flush: quit is a graceful exit
        return served;
      }
      continue;
    }

    // Control-plane ops are barriers too: in-flight values populate the
    // result cache and fitted set as they finish, so draining first makes
    // mutation-driven invalidation (and stats / save_cache contents)
    // deterministic instead of racing job completion. Value traffic — the
    // data plane — is never stalled by other values. methods/describe/ping
    // answer from registry constants and skip the barrier (ping stays a
    // liveness probe).
    if (op == "load" || op == "load_delta" || op == "append" ||
        op == "remove" || op == "drop" || op == "save_cache" ||
        op == "load_cache" || op == "stats" || op == "metrics") {
      window.Drain();
    }

    // Admission control: with a bounded queue configured, an over-limit
    // value request is shed on the reader thread — the client gets an
    // immediate, structured unavailable instead of a frozen input stream.
    // (In the serial loop nothing is ever in flight, so only max_queue=0
    // sheds there — which is exactly the deterministic mode the
    // serial-vs-pipelined byte-identity test runs.)
    if (op == "value" && options_.max_queue >= 0 &&
        window.Count() >= static_cast<size_t>(options_.max_queue)) {
      emitter.EmitOrdered(ShedResponse(parsed.value).Dump());
      continue;
    }

    if (op == "value" && options_.pipelined) {
      auto prepared = std::make_shared<PreparedValue>();
      JsonValue error_response;
      if (!PrepareValue(parsed.value, prepared.get(), &error_response)) {
        emitter.EmitOrdered(error_response.Dump());
        continue;
      }
      if (metrics_ != nullptr) {
        prepared->parse_nanos = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - parse_start)
                .count());
      }
      // A request that *explicitly* asks for intra-request sharding runs
      // inline on the reader (sharded across the pool, like --serial) —
      // the escape hatch for lone heavy batches in an otherwise idle
      // session, where per-request dispatch would leave cores idle.
      // Values are bitwise independent of this choice, so the transcript
      // is unchanged; in-flight jobs stay unaffected (snapshots).
      if (prepared->explicit_parallel) {
        window.Drain();  // keep response-completion order == request order
        emitter.EmitOrdered(RunValue(*prepared).Dump());
        value_snapshot_tick();
        continue;
      }
      // Otherwise cross-request concurrency replaces intra-request
      // sharding: a pool worker must not re-enter ParallelFor
      // (non-reentrant, see util/thread_pool.h).
      prepared->engine_request.parallel = false;
      // Fault site: a simulated dispatch failure degrades to a shed — the
      // request is declined, not lost, and the loop keeps serving.
      if (FaultInjectionEnabled() && Fault("dispatch")) {
        emitter.EmitOrdered(ShedResponse(parsed.value).Dump());
        continue;
      }
      const bool ordered = prepared->ordered;
      const uint64_t slot = ordered ? emitter.ReserveSlot() : 0;
      window.Acquire(max_in_flight_);
      if (in_flight_ != nullptr) in_flight_->Add(1);
      if (metrics_ != nullptr || prepared->engine_request.trace) {
        prepared->dispatched = true;  // queue wait will be measured
        prepared->dispatch_time = std::chrono::steady_clock::now();
      }
      pool_->Submit([this, prepared, ordered, slot, &emitter, &window] {
        std::string response = RunValue(*prepared).Dump();
        if (ordered) {
          emitter.EmitAt(slot, std::move(response));
        } else {
          emitter.EmitNow(response);
        }
        if (in_flight_ != nullptr) in_flight_->Add(-1);
        window.Release();
      });
      value_snapshot_tick();
      continue;
    }

    emitter.EmitOrdered(HandleSync(parsed.value).Dump());
    if (op == "value") value_snapshot_tick();
  }
  // EOF or graceful shutdown: drain in-flight work, then one final
  // snapshot so a restart resumes from the last served state.
  window.Drain();
  SnapshotNow();
  return served;
}

JsonValue RequestPipeline::HandleSync(const JsonValue& request) {
  if (!request.IsObject()) return ErrorResponse("request must be a JSON object");
  const std::string& op = request.Get("op").AsString();
  if (op == "value") {
    PreparedValue prepared;
    JsonValue error_response;
    if (!PrepareValue(request, &prepared, &error_response)) return error_response;
    return RunValue(prepared);
  }
  if (op == "load") return Load(request);
  if (op == "load_delta") return LoadDelta(request);
  if (op == "append") return AppendRows(request);
  if (op == "remove") return RemoveRow(request);
  if (op == "drop") return Drop(request);
  if (op == "methods") return Methods();
  if (op == "describe") return Describe(request);
  if (op == "stats") return Stats();
  if (op == "metrics") return MetricsText();
  if (op == "save_cache") return SaveCache(request);
  if (op == "load_cache") return LoadCache(request);
  if (op == "candidates") return Candidates(request);
  if (op == "digests") return Digests(request);
  if (op == "protocol") return Protocol();
  if (op == "ping" || op == "sync") return OkResponse();
  if (op == "quit") {
    JsonValue response = OkResponse();
    response.Set("bye", JsonValue(true));
    return response;
  }
  return ErrorResponse("unknown op '" + op + "'");
}

// ---------------------------------------------------------------------------
// Corpus ops
// ---------------------------------------------------------------------------

namespace {

void SetSnapshotFields(JsonValue* out, const std::string& name,
                       const CorpusSnapshot& snapshot) {
  out->Set("name", JsonValue(name));
  out->Set("rows", JsonValue(static_cast<double>(snapshot.data->Size())));
  out->Set("dim", JsonValue(static_cast<double>(snapshot.data->Dim())));
  out->Set("version", JsonValue(static_cast<double>(snapshot.version)));
  out->Set("fingerprint", JsonValue(FingerprintHex(snapshot.fingerprint)));
}

}  // namespace

void RequestPipeline::InvalidateOld(uint64_t old_fingerprint) {
  if (old_fingerprint != 0) engine_.InvalidateTrain(old_fingerprint);
}

JsonValue RequestPipeline::Load(const JsonValue& request) {
  const std::string& name = request.Get("name").AsString();
  if (name.empty()) return ErrorResponse("load: 'name' is required");
  CsvTarget target;
  if (!ParseTargetMode(request.Get("target").AsString(), &target)) {
    return ErrorResponse("load: target must be label|target|none");
  }

  Dataset data;
  if (request.Has("path")) {
    CsvLoadResult loaded = LoadCsvDataset(request.Get("path").AsString(), target);
    if (!loaded.ok()) {
      // Typed pass-through: missing files stay not_found like every other
      // name/path-resolution failure, malformed content invalid_argument.
      return ErrorResponse(Status::Error(loaded.status.code(),
                                         "load: " + loaded.status.message()));
    }
    data = std::move(loaded.data);
  } else if (request.Has("rows")) {
    std::string error;
    if (!FromInlineRows(request.Get("rows"), target, &data, &error)) {
      return ErrorResponse("load: " + error);
    }
  } else {
    return ErrorResponse("load: need 'path' or 'rows'");
  }

  CorpusMutation mutation = store_.Put(name, std::move(data));
  // Replacing a name retires its old contents' engine state.
  if (mutation.old_fingerprint != mutation.snapshot.fingerprint) {
    InvalidateOld(mutation.old_fingerprint);
  }
  JsonValue out = OkResponse();
  SetSnapshotFields(&out, name, mutation.snapshot);
  return out;
}

JsonValue RequestPipeline::LoadDelta(const JsonValue& request) {
  // Delta corpus sync (docs/PROTOCOL.md): splice the provided blocks into
  // the stored corpus, keeping every other block's rows. The router sends
  // this instead of a full inline load when the worker already holds a
  // previous version; any rejection here (structured error, never a crash)
  // makes the router fall back to the full load, so this op can only ever
  // save bytes, not correctness.
  const std::string& name = request.Get("name").AsString();
  if (name.empty()) return ErrorResponse("load_delta: 'name' is required");
  auto base = store_.Get(name);
  if (!base) {
    return NotFoundResponse("load_delta: unknown dataset '" + name +
                            "' (send a full load first)");
  }
  CsvTarget target;
  if (!ParseTargetMode(request.Get("target").AsString(), &target)) {
    return ErrorResponse("load_delta: target must be label|target|none");
  }
  const CsvTarget base_target =
      base->data->HasLabels()
          ? CsvTarget::kLabel
          : (base->data->HasTargets() ? CsvTarget::kTarget : CsvTarget::kNone);
  if (target != base_target) {
    return ErrorResponse(Status::FailedPrecondition(
        "load_delta: target mode does not match the stored corpus"));
  }
  auto parse_count = [&](const char* field, size_t* out) {
    const JsonValue& raw = request.Get(field);
    const double value = raw.IsNumber() ? raw.AsNumber() : -1.0;
    if (!raw.IsNumber() || value <= 0 || value > 1e15 ||
        value != static_cast<double>(static_cast<size_t>(value))) {
      return false;
    }
    *out = static_cast<size_t>(value);
    return true;
  };
  size_t rows = 0, dim = 0;
  if (!parse_count("rows", &rows) || !parse_count("dim", &dim)) {
    return ErrorResponse(
        "load_delta: 'rows' and 'dim' must be positive integers");
  }
  if (dim != base->data->Dim()) {
    return ErrorResponse(Status::FailedPrecondition(
        "load_delta: dim " + std::to_string(dim) +
        " does not match the stored corpus (" +
        std::to_string(base->data->Dim()) + ")"));
  }
  uint64_t expected = 0;
  if (!wire::ParseHexFingerprint(request.Get("fingerprint").AsString(),
                                 &expected)) {
    return ErrorResponse(
        "load_delta: 'fingerprint' must be a 0x-prefixed hex string");
  }
  const JsonValue& blocks = request.Get("blocks");
  if (!blocks.IsArray()) {
    return ErrorResponse("load_delta: 'blocks' must be an array");
  }
  // Fault site: a worker that cannot apply deltas (disk, version skew)
  // answers a structured internal error; the router falls back to a full
  // load and the topology keeps serving.
  if (FaultInjectionEnabled() && Fault("delta_apply")) {
    return ErrorResponse(
        Status::Error(StatusCode::kInternal, "injected delta_apply fault"));
  }

  const size_t block_rows = base->digests->block_rows;
  const size_t num_blocks = (rows + block_rows - 1) / block_rows;
  std::map<size_t, const JsonValue*> provided;
  for (const JsonValue& entry : blocks.Items()) {
    const JsonValue& index = entry.Get("block");
    const double raw = index.IsNumber() ? index.AsNumber() : -1.0;
    if (!index.IsNumber() || raw < 0 ||
        raw != static_cast<double>(static_cast<size_t>(raw)) ||
        static_cast<size_t>(raw) >= num_blocks) {
      return ErrorResponse(
          "load_delta: each block entry needs an in-range integer 'block'");
    }
    const size_t b = static_cast<size_t>(raw);
    if (!provided.emplace(b, &entry.Get("rows")).second) {
      return ErrorResponse("load_delta: duplicate block " + std::to_string(b));
    }
  }

  Dataset next;
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t begin = b * block_rows;
    const size_t end = std::min(begin + block_rows, rows);
    auto it = provided.find(b);
    if (it != provided.end()) {
      if (!it->second->IsArray() || it->second->Items().size() != end - begin) {
        return ErrorResponse("load_delta: block " + std::to_string(b) +
                             " must carry exactly " + std::to_string(end - begin) +
                             " rows");
      }
      std::string error;
      if (!FromInlineRows(*it->second, target, &next, &error)) {
        return ErrorResponse("load_delta: block " + std::to_string(b) + ": " +
                             error);
      }
    } else {
      // Unchanged block: keep the stored rows. The router only plans a
      // delta when the geometry matches, so these rows must exist.
      if (end > base->data->Size()) {
        return ErrorResponse(Status::FailedPrecondition(
            "load_delta: unchanged block " + std::to_string(b) +
            " is outside the stored corpus"));
      }
      for (size_t i = begin; i < end; ++i) {
        next.features.AppendRow(base->data->features.Row(i));
        if (target == CsvTarget::kLabel) {
          next.labels.push_back(base->data->labels[i]);
        } else if (target == CsvTarget::kTarget) {
          next.targets.push_back(base->data->targets[i]);
        }
      }
    }
  }
  if (next.Dim() != dim) {
    return ErrorResponse("load_delta: block rows disagree with 'dim'");
  }
  const size_t applied = provided.size();

  CorpusMutation mutation = store_.Put(name, std::move(next));
  if (mutation.snapshot.fingerprint != expected) {
    // The splice produced the wrong contents (corruption in flight, or a
    // router/worker disagreement the plan missed). Serving candidates off
    // it would silently mis-rank, so drop it outright: the router's
    // fallback full load repopulates from scratch.
    uint64_t dropped = 0;
    store_.Drop(name, &dropped);
    InvalidateOld(mutation.old_fingerprint);
    InvalidateOld(dropped);
    return ErrorResponse(Status::Error(
        StatusCode::kDataLoss,
        "load_delta: corpus fingerprint mismatch after splice (expected " +
            wire::FingerprintHex(expected) + ", got " +
            wire::FingerprintHex(mutation.snapshot.fingerprint) +
            "); corpus dropped — send a full load"));
  }
  if (mutation.old_fingerprint != mutation.snapshot.fingerprint) {
    InvalidateOld(mutation.old_fingerprint);
  }
  JsonValue out = OkResponse();
  SetSnapshotFields(&out, name, mutation.snapshot);
  out.Set("applied", JsonValue(static_cast<double>(applied)));
  return out;
}

JsonValue RequestPipeline::AppendRows(const JsonValue& request) {
  const std::string& name = request.Get("name").AsString();
  auto current = store_.Get(name);
  if (!current) return NotFoundResponse("append: unknown dataset '" + name + "'");
  CsvTarget target = current->data->HasLabels()
                         ? CsvTarget::kLabel
                         : (current->data->HasTargets() ? CsvTarget::kTarget
                                                        : CsvTarget::kNone);
  Dataset rows;
  std::string error;
  if (!FromInlineRows(request.Get("rows"), target, &rows, &error)) {
    return ErrorResponse("append: " + error);
  }
  const size_t appended = rows.Size();
  CorpusMutation mutation;
  if (!store_.Append(name, rows, &mutation, &error)) {
    return ErrorResponse("append: " + error);
  }
  InvalidateOld(mutation.old_fingerprint);
  JsonValue out = OkResponse();
  SetSnapshotFields(&out, name, mutation.snapshot);
  out.Set("appended", JsonValue(static_cast<double>(appended)));
  return out;
}

JsonValue RequestPipeline::RemoveRow(const JsonValue& request) {
  const std::string& name = request.Get("name").AsString();
  if (!store_.Get(name)) {
    return NotFoundResponse("remove: unknown dataset '" + name + "'");
  }
  if (!request.Get("row").IsNumber()) {
    return ErrorResponse("remove: 'row' (index) is required");
  }
  const double row = request.Get("row").AsNumber();
  // Integrality + range before the size_t cast: a fractional index would
  // silently truncate and an unrepresentable one is UB per [conv.fpint].
  if (row < 0 || row > 1e15 || row != static_cast<double>(static_cast<size_t>(row))) {
    return ErrorResponse("remove: 'row' must be a non-negative integer");
  }
  CorpusMutation mutation;
  std::string error;
  if (!store_.RemoveRow(name, static_cast<size_t>(row), &mutation, &error)) {
    return ErrorResponse("remove: " + error);
  }
  InvalidateOld(mutation.old_fingerprint);
  JsonValue out = OkResponse();
  SetSnapshotFields(&out, name, mutation.snapshot);
  out.Set("removed_row", JsonValue(row));
  return out;
}

JsonValue RequestPipeline::Drop(const JsonValue& request) {
  const std::string& name = request.Get("name").AsString();
  uint64_t old_fingerprint = 0;
  if (!store_.Drop(name, &old_fingerprint)) {
    return NotFoundResponse("drop: unknown dataset '" + name + "'");
  }
  // The satellite fix: dropping a corpus reclaims its fitted valuators and
  // cache entries immediately instead of waiting for LRU pressure.
  ValuationEngine::InvalidationStats stats = engine_.InvalidateTrain(old_fingerprint);
  JsonValue out = OkResponse();
  out.Set("name", JsonValue(name));
  out.Set("fitted_evicted", JsonValue(static_cast<double>(stats.fitted_evicted)));
  out.Set("cache_evicted", JsonValue(static_cast<double>(stats.cache_evicted)));
  return out;
}

// ---------------------------------------------------------------------------
// Introspection and cache ops
// ---------------------------------------------------------------------------

JsonValue RequestPipeline::Methods() const {
  JsonValue out = OkResponse();
  JsonValue methods = JsonValue::MakeArray();
  for (const auto& info : engine_.Registry().Methods()) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("name", JsonValue(info.name));
    entry.Set("description", JsonValue(info.description));
    methods.Append(entry);
  }
  out.Set("methods", methods);
  return out;
}

JsonValue RequestPipeline::Describe(const JsonValue& request) const {
  // Full runtime introspection: every registered method's declarative
  // schema — typed params with defaults/ranges/docs, supported tasks,
  // data requirements and capability flags — generated from the same
  // MethodSchema the validator and the cache fingerprints run on.
  const ValuatorRegistry& registry = engine_.Registry();
  JsonValue out = OkResponse();
  JsonValue methods = JsonValue::MakeArray();
  if (request.Has("method")) {
    const std::string& name = request.Get("method").AsString();
    auto schema = registry.Schema(name);
    if (schema == nullptr) {
      return ErrorResponse(registry.UnknownMethodError(name));
    }
    methods.Append(SchemaToJson(*schema));
  } else {
    for (const auto& schema : registry.Schemas()) {
      methods.Append(SchemaToJson(*schema));
    }
  }
  out.Set("methods", methods);
  return out;
}

JsonValue RequestPipeline::Stats() const {
  JsonValue out = OkResponse();
  // Cache sizing facts next to the hit/miss counters: entries vs capacity
  // and resident payload bytes are what size a --cache choice.
  JsonValue cache = CountersJson(engine_.CacheStats());
  cache.Set("entries", JsonValue(static_cast<double>(engine_.CacheEntries())));
  cache.Set("capacity", JsonValue(static_cast<double>(engine_.CacheCapacity())));
  cache.Set("bytes", JsonValue(static_cast<double>(engine_.CacheBytes())));
  out.Set("cache", std::move(cache));
  out.Set("fitted_valuators",
          JsonValue(static_cast<double>(engine_.FittedCount())));
  out.Set("fit_reuses", JsonValue(static_cast<double>(engine_.FitReuses())));
  const auto fitted_by_train = engine_.FittedByTrain();
  JsonValue datasets = JsonValue::MakeArray();
  for (const auto& corpus : store_.List()) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("name", JsonValue(corpus.name));
    entry.Set("rows", JsonValue(static_cast<double>(corpus.rows)));
    entry.Set("dim", JsonValue(static_cast<double>(corpus.dim)));
    entry.Set("version", JsonValue(static_cast<double>(corpus.version)));
    entry.Set("fingerprint", JsonValue(FingerprintHex(corpus.fingerprint)));
    const auto fitted = fitted_by_train.find(corpus.fingerprint);
    entry.Set("fitted",
              JsonValue(static_cast<double>(
                  fitted != fitted_by_train.end() ? fitted->second : 0)));
    datasets.Append(entry);
  }
  out.Set("datasets", datasets);
  // Robustness counters: what the server declined or failed to do, next
  // to what it did. Deterministic under --no-timing: uptime is
  // timing-gated and the queue depth is drained to zero by the stats
  // barrier.
  JsonValue server = JsonValue::MakeObject();
  if (options_.emit_timing) {
    server.Set("uptime_seconds",
               JsonValue(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_time_)
                             .count()));
  }
  server.Set("queue_depth",
             JsonValue(static_cast<double>(
                 in_flight_ != nullptr ? in_flight_->Value() : 0)));
  server.Set("shed_total",
             JsonValue(static_cast<double>(
                 shed_total_.load(std::memory_order_relaxed))));
  server.Set("deadline_exceeded_total",
             JsonValue(static_cast<double>(engine_.DeadlineExceededCount())));
  server.Set("snapshots_taken",
             JsonValue(static_cast<double>(
                 snapshots_taken_.load(std::memory_order_relaxed))));
  server.Set("snapshot_failures",
             JsonValue(static_cast<double>(
                 snapshot_failures_.load(std::memory_order_relaxed))));
  out.Set("server", std::move(server));
  // Topology is emitted only when sharding is on: the unsharded stats
  // response stays byte-identical to the pre-shard wire (golden
  // transcripts). Plans are pure functions of corpus digests — no timing,
  // no worker state — so this section is deterministic too.
  if (options_.shards > 1) {
    JsonValue topology = JsonValue::MakeObject();
    topology.Set("shards", JsonValue(static_cast<double>(options_.shards)));
    const bool remote = !options_.shard_remote.empty();
    topology.Set(
        "workers",
        JsonValue(remote ? "remote"
                         : (options_.shard_process ? "process" : "thread")));
    if (remote) {
      // The configured replica endpoints per shard — static topology facts
      // only (no liveness probes: stats stays deterministic and cheap).
      JsonValue replicas = JsonValue::MakeArray();
      for (const auto& group : options_.shard_remote) {
        JsonValue endpoints = JsonValue::MakeArray();
        for (const std::string& endpoint : group) {
          endpoints.Append(JsonValue(endpoint));
        }
        replicas.Append(std::move(endpoints));
      }
      topology.Set("replicas", std::move(replicas));
    }
    JsonValue plans = JsonValue::MakeObject();
    for (const auto& corpus : store_.List()) {
      auto snapshot = store_.Get(corpus.name);
      if (!snapshot) continue;
      JsonValue ranges = JsonValue::MakeArray();
      for (const ShardRange& range :
           PlanShards(*snapshot->digests,
                      static_cast<size_t>(options_.shards))) {
        JsonValue entry = JsonValue::MakeObject();
        entry.Set("row_begin",
                  JsonValue(static_cast<double>(range.row_begin)));
        entry.Set("row_end", JsonValue(static_cast<double>(range.row_end)));
        entry.Set("fingerprint", JsonValue(FingerprintHex(range.fingerprint)));
        ranges.Append(entry);
      }
      plans.Set(corpus.name, std::move(ranges));
    }
    topology.Set("plans", std::move(plans));
    out.Set("topology", std::move(topology));
  }
  if (metrics_ != nullptr) out.Set("metrics", StatsMetricsJson());
  return out;
}

JsonValue RequestPipeline::StatsMetricsJson() const {
  const MetricsRegistry::RegistrySnapshot snap = metrics_->Snapshot();
  JsonValue out = JsonValue::MakeObject();
  // Deterministic under --no-timing: request/error counts and the (drained
  // to zero) in-flight depth. Everything time-valued is timing-gated.
  JsonValue requests = JsonValue::MakeObject();
  JsonValue errors = JsonValue::MakeObject();
  for (const auto& counter : snap.counters) {
    const std::string method = ExtractLabel(counter.name, "method");
    if (method.empty()) continue;
    if (counter.name.compare(0, 22, "knnshap_requests_total") == 0) {
      requests.Set(method, JsonValue(static_cast<double>(counter.value)));
    } else if (counter.name.compare(0, 28, "knnshap_request_errors_total") == 0 &&
               counter.value > 0) {
      errors.Set(method, JsonValue(static_cast<double>(counter.value)));
    }
  }
  out.Set("requests", std::move(requests));
  out.Set("errors", std::move(errors));
  out.Set("in_flight",
          JsonValue(static_cast<double>(
              in_flight_ != nullptr ? in_flight_->Value() : 0)));
  if (!options_.emit_timing) return out;

  auto histogram_json = [](const HistogramSnapshot& h) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("count", JsonValue(static_cast<double>(h.count)));
    entry.Set("p50", JsonValue(h.Quantile(0.50)));
    entry.Set("p95", JsonValue(h.Quantile(0.95)));
    entry.Set("p99", JsonValue(h.Quantile(0.99)));
    entry.Set("max", JsonValue(h.max));
    return entry;
  };
  JsonValue latency = JsonValue::MakeObject();
  JsonValue queue_wait;
  for (const auto& histogram : snap.histograms) {
    const std::string method = ExtractLabel(histogram.name, "method");
    if (!method.empty() &&
        histogram.name.compare(0, 23, "knnshap_request_seconds") == 0) {
      latency.Set(method, histogram_json(histogram.snapshot));
    } else if (histogram.name == "knnshap_queue_wait_seconds" &&
               histogram.snapshot.count > 0) {
      queue_wait = histogram_json(histogram.snapshot);
    }
  }
  out.Set("latency", std::move(latency));
  if (queue_wait.IsObject()) out.Set("queue_wait", std::move(queue_wait));
  JsonValue phases = JsonValue::MakeObject();
  for (const auto& counter : snap.counters) {
    const std::string phase = ExtractLabel(counter.name, "phase");
    if (phase.empty() || counter.value == 0) continue;
    phases.Set(phase, JsonValue(static_cast<double>(counter.value) * 1e-9));
  }
  out.Set("phase_seconds", std::move(phases));
  return out;
}

JsonValue RequestPipeline::MetricsText() const {
  if (metrics_ == nullptr) {
    return ErrorResponse(Status::FailedPrecondition(
        "metrics: observability is disabled on this pipeline"));
  }
  // Scrape-time gauges mirroring engine state the registry cannot see.
  metrics_->GetGauge("knnshap_result_cache_entries")
      ->Set(static_cast<int64_t>(engine_.CacheEntries()));
  metrics_->GetGauge("knnshap_result_cache_bytes")
      ->Set(static_cast<int64_t>(engine_.CacheBytes()));
  metrics_->GetGauge("knnshap_fitted_valuators")
      ->Set(static_cast<int64_t>(engine_.FittedCount()));
  JsonValue out = OkResponse();
  out.Set("content_type", JsonValue("text/plain; version=0.0.4"));
  out.Set("text", JsonValue(metrics_->PrometheusText()));
  return out;
}

JsonValue RequestPipeline::SaveCache(const JsonValue& request) {
  const std::string& path = request.Get("path").AsString();
  if (path.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("save_cache: 'path' is required", "path"));
  }
  StatusOr<size_t> entries = engine_.SaveCache(path);
  if (!entries.ok()) {
    return ErrorResponse(Status::Error(entries.status().code(),
                                       "save_cache: " + entries.status().message()));
  }
  JsonValue out = OkResponse();
  out.Set("path", JsonValue(path));
  out.Set("entries", JsonValue(static_cast<double>(entries.value())));
  return out;
}

JsonValue RequestPipeline::LoadCache(const JsonValue& request) {
  const std::string& path = request.Get("path").AsString();
  if (path.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("load_cache: 'path' is required", "path"));
  }
  StatusOr<CacheLoadResult> loaded = engine_.LoadCache(path);
  if (!loaded.ok()) {
    return ErrorResponse(Status::Error(loaded.status().code(),
                                       "load_cache: " + loaded.status().message()));
  }
  JsonValue out = OkResponse();
  out.Set("path", JsonValue(path));
  out.Set("entries", JsonValue(static_cast<double>(loaded.value().entries)));
  // Salvage is a success with a scar: the valid prefix of a damaged file
  // was loaded, and the warning says where the damage started.
  if (loaded.value().salvaged) {
    out.Set("salvaged", JsonValue(true));
    out.Set("warning", JsonValue(loaded.value().warning));
  }
  return out;
}

// ---------------------------------------------------------------------------
// candidates (the shard-worker data plane)
// ---------------------------------------------------------------------------

JsonValue RequestPipeline::Candidates(const JsonValue& request) {
  // Chaos site: a worker that dies mid-query exercises the router's
  // dead-worker path (EOF on the response pipe -> Unavailable + retry).
  // Exit, not a structured error: the point is an abrupt death.
  if (FaultInjectionEnabled() && Fault("shard_candidates")) _exit(3);

  const std::string& name = request.Get("train").AsString();
  auto snapshot = store_.Get(name);
  if (!snapshot) {
    return NotFoundResponse("candidates: unknown dataset '" + name + "'");
  }
  Metric metric;
  if (!MetricFromName(request.Get("metric").AsString(), &metric)) {
    return ErrorResponse("candidates: unknown metric '" +
                         request.Get("metric").AsString() + "'");
  }
  auto parse_index = [&](const char* field, size_t* out) {
    const JsonValue& raw = request.Get(field);
    const double value = raw.IsNumber() ? raw.AsNumber() : -1.0;
    if (!raw.IsNumber() || value < 0 || value > 1e15 ||
        value != static_cast<double>(static_cast<size_t>(value))) {
      return false;
    }
    *out = static_cast<size_t>(value);
    return true;
  };
  size_t r = 0, row_begin = 0, row_end = 0;
  if (!parse_index("r", &r) || !parse_index("row_begin", &row_begin) ||
      !parse_index("row_end", &row_end)) {
    return ErrorResponse(
        "candidates: 'r', 'row_begin', 'row_end' must be non-negative integers");
  }
  if (row_begin >= row_end || row_end > snapshot->data->Size()) {
    return ErrorResponse(Status::InvalidArgument(
        "candidates: row range [" + std::to_string(row_begin) + ", " +
        std::to_string(row_end) + ") is not within the " +
        std::to_string(snapshot->data->Size()) + "-row corpus"));
  }
  // ShardFingerprint requires block alignment (a core check, fatal);
  // requests are validated to structured errors here instead.
  const size_t block_rows = snapshot->digests->block_rows;
  if (row_begin % block_rows != 0 ||
      (row_end % block_rows != 0 && row_end != snapshot->data->Size())) {
    return ErrorResponse(Status::InvalidArgument(
        "candidates: row range must be aligned to the " +
        std::to_string(block_rows) + "-row fingerprint blocks"));
  }
  // Content addressing: the router's plan named this shard by the
  // fingerprint of exactly the rows it expects. A mismatch means this
  // worker holds a different corpus version — refuse rather than answer
  // candidates the merge would silently mis-rank.
  const uint64_t expected =
      ShardFingerprint(*snapshot->digests, row_begin, row_end);
  if (request.Get("fingerprint").AsString() != FingerprintHex(expected)) {
    return ErrorResponse(Status::FailedPrecondition(
        "candidates: shard fingerprint mismatch for rows [" +
        std::to_string(row_begin) + ", " + std::to_string(row_end) +
        ") (expected " + FingerprintHex(expected) + ", got '" +
        request.Get("fingerprint").AsString() + "')"));
  }
  const JsonValue& query_json = request.Get("query");
  if (!query_json.IsArray() ||
      query_json.Items().size() != snapshot->data->Dim()) {
    return ErrorResponse(Status::InvalidArgument(
        "candidates: 'query' must be an array of " +
        std::to_string(snapshot->data->Dim()) + " numbers",
        "query"));
  }
  std::vector<float> query;
  query.reserve(query_json.Items().size());
  for (const JsonValue& cell : query_json.Items()) {
    if (!cell.IsNumber()) {
      return ErrorResponse(
          Status::InvalidArgument("candidates: non-numeric query cell", "query"));
    }
    query.push_back(static_cast<float>(cell.AsNumber()));
  }
  // The router forwards its *remaining* deadline budget; arming a fresh
  // token from it means this worker can never fire before its parent.
  std::unique_ptr<CancelToken> token;
  if (request.Has("deadline_ms")) {
    const JsonValue& raw = request.Get("deadline_ms");
    if (!raw.IsNumber() || raw.AsNumber() < 0) {
      return ErrorResponse(Status::InvalidArgument(
          "candidates: 'deadline_ms' must be a non-negative integer",
          "deadline_ms"));
    }
    token = std::make_unique<CancelToken>(
        static_cast<int64_t>(raw.AsNumber()));
  }
  CancelActivation cancel_scope(token.get());

  const CorpusNorms* norms = nullptr;
  {
    // One slot keyed by corpus identity: a worker answers a stream of
    // queries against one version, so the norms pass runs once per
    // (corpus, metric), not per query.
    std::lock_guard<std::mutex> lock(norms_cache_mutex_);
    if (!norms_cache_.valid || norms_cache_.name != name ||
        norms_cache_.version != snapshot->version ||
        norms_cache_.metric != metric) {
      norms_cache_.norms = NormsForMetric(snapshot->data->features, metric);
      norms_cache_.name = name;
      norms_cache_.version = snapshot->version;
      norms_cache_.metric = metric;
      norms_cache_.valid = true;
    }
    norms = &norms_cache_.norms;
  }

  const size_t rows = row_end - row_begin;
  std::vector<double> dists(rows);
  ComputeDistancesRange(snapshot->data->features, query, metric, norms,
                        row_begin, row_end, dists);
  if (CancelRequested()) {
    return ErrorResponse(Status::DeadlineExceeded("deadline exceeded"));
  }
  std::vector<int> local;
  PartialArgsortDistances(dists, r, &local);
  if (CancelRequested()) {
    return ErrorResponse(Status::DeadlineExceeded("deadline exceeded"));
  }

  JsonValue out = OkResponse();
  JsonValue indices = JsonValue::MakeArray();
  JsonValue run_dists = JsonValue::MakeArray();
  for (int i : local) {
    indices.Append(
        JsonValue(static_cast<double>(i + static_cast<int>(row_begin))));
    // Raw doubles: %.17g round-trips them bit-exactly, so the router's
    // merged ranking — and weighted-fast's kernel weights — match the
    // unsharded computation to the last bit.
    run_dists.Append(JsonValue(dists[static_cast<size_t>(i)]));
  }
  out.Set("indices", std::move(indices));
  out.Set("dists", std::move(run_dists));
  return out;
}

// ---------------------------------------------------------------------------
// digests / protocol (remote-worker control plane)
// ---------------------------------------------------------------------------

JsonValue RequestPipeline::Digests(const JsonValue& request) {
  // What corpus version does this worker hold? The router diffs the
  // per-block digests against its own (wire::PlanCorpusSync) and ships
  // nothing, a delta, or a full load. Digests are maintained incrementally
  // by the store, so this answers without touching the corpus rows.
  const std::string& name = request.Get("name").AsString();
  auto snapshot = store_.Get(name);
  if (!snapshot) {
    return NotFoundResponse("digests: unknown dataset '" + name + "'");
  }
  const CorpusDigests& digests = *snapshot->digests;
  JsonValue out = OkResponse();
  out.Set("name", JsonValue(name));
  out.Set("rows", JsonValue(static_cast<double>(snapshot->data->Size())));
  out.Set("dim", JsonValue(static_cast<double>(snapshot->data->Dim())));
  out.Set("block_rows", JsonValue(static_cast<double>(digests.block_rows)));
  out.Set("target", JsonValue(wire::TargetMode(*snapshot->data)));
  out.Set("version", JsonValue(static_cast<double>(snapshot->version)));
  out.Set("fingerprint", JsonValue(FingerprintHex(snapshot->fingerprint)));
  JsonValue blocks = JsonValue::MakeArray();
  for (size_t b = 0; b < digests.NumBlocks(); ++b) {
    blocks.Append(JsonValue(FingerprintHex(wire::BlockDigest(digests, b))));
  }
  out.Set("blocks", std::move(blocks));
  return out;
}

JsonValue RequestPipeline::Protocol() const {
  // Self-description for clients and the CI docs gate: every op this
  // server dispatches, sorted. Keep in lockstep with HandleSync and
  // docs/PROTOCOL.md (CI greps the doc for each name listed here).
  static const char* const kOps[] = {
      "append",  "candidates", "describe",   "digests", "drop",
      "load",    "load_cache", "load_delta", "methods", "metrics",
      "ping",    "protocol",   "quit",       "remove",  "save_cache",
      "stats",   "sync",       "value"};
  JsonValue out = OkResponse();
  out.Set("protocol", JsonValue(1.0));
  JsonValue ops = JsonValue::MakeArray();
  for (const char* op : kOps) ops.Append(JsonValue(op));
  out.Set("ops", std::move(ops));
  return out;
}

// ---------------------------------------------------------------------------
// value
// ---------------------------------------------------------------------------

bool RequestPipeline::PrepareValue(const JsonValue& request, PreparedValue* prepared,
                                   JsonValue* error_response) {
  auto fail = [&](const Status& status) {
    *error_response = ErrorResponse(status);
    if (request.Has("id")) error_response->Set("id", request.Get("id"));
    return false;
  };

  ValuationRequest& engine_request = prepared->engine_request;
  engine_request.method = request.Get("method").IsString()
                              ? request.Get("method").AsString()
                              : "exact";

  // The method's schema is the validator: hyperparameter parsing below is
  // derived from its declared ParamSpecs, not hand-rolled per field.
  prepared->schema = engine_.Registry().Schema(engine_request.method);
  if (prepared->schema == nullptr) {
    return fail(engine_.Registry().UnknownMethodError(engine_request.method));
  }

  // Strict fields: anything that is neither protocol nor a known
  // hyperparameter is a typo answered with the offending field's name.
  static const std::vector<std::string> kValueProtocolFields = {
      "op",    "method",   "train",   "test",           "queries",
      "cache", "parallel", "ordered", "include_values", "id",
      "trace", "deadline_ms"};
  if (Status status = CheckRequestFields(request, kValueProtocolFields);
      !status.ok()) {
    return fail(status);
  }

  // Schema-derived parse/validate of task + hyperparameters. Declared
  // params are applied; known-but-undeclared ones are range-checked and
  // ignored (they cannot perturb this method's results or cache identity).
  // Under the whole-struct fingerprint shim every known param is applied —
  // the exact pre-schema pipeline, for the bench's before/after arms.
  if (Status status = ApplyJsonParams(
          *prepared->schema, request, &engine_request.params,
          /*apply_undeclared=*/!options_.engine.method_scoped_fingerprints);
      !status.ok()) {
    return fail(status);
  }

  auto train = store_.Get(request.Get("train").AsString());
  if (!train) {
    return fail(Status::NotFound("value: unknown train dataset '" +
                                 request.Get("train").AsString() + "'"));
  }
  engine_request.train = train->data;
  if (options_.trust_store_fingerprints) {
    engine_request.train_fingerprint = train->fingerprint;
  }
  if (options_.shards > 1) {
    // The shard plan is content-addressed through the snapshot's block
    // digests, so this request values exactly the corpus version it
    // snapshotted even if a mutation lands while it is queued.
    engine_request.shard.count = options_.shards;
    engine_request.shard.process = options_.shard_process;
    engine_request.shard.worker_command = options_.shard_worker_command;
    engine_request.shard.remote_replicas = options_.shard_remote;
    engine_request.shard.connect_timeout_ms = options_.shard_connect_timeout_ms;
    engine_request.shard.io_timeout_ms = options_.shard_io_timeout_ms;
    engine_request.shard.connect_attempts = options_.shard_connect_attempts;
    engine_request.shard.train_digests = train->digests;
    engine_request.shard.corpus_name = request.Get("train").AsString();
  }

  if (request.Has("test")) {
    auto test = store_.Get(request.Get("test").AsString());
    if (!test) {
      return fail(Status::NotFound("value: unknown test dataset '" +
                                   request.Get("test").AsString() + "'"));
    }
    engine_request.test = test->data;
    if (options_.trust_store_fingerprints) {
      engine_request.test_fingerprint = test->fingerprint;
    }
  } else if (request.Has("queries")) {
    // Inline one-shot query batch; labeled/targeted per the effective task.
    CsvTarget target =
        prepared->schema->RequiresTargets(engine_request.params.task)
            ? CsvTarget::kTarget
            : CsvTarget::kLabel;
    Dataset queries;
    std::string error;
    if (!FromInlineRows(request.Get("queries"), target, &queries, &error)) {
      return fail(Status::InvalidArgument("value: " + error, "queries"));
    }
    queries.name = "inline-queries";
    engine_request.test = std::make_shared<const Dataset>(std::move(queries));
  } else {
    return fail(Status::InvalidArgument(
        "value: need 'test' (dataset name) or 'queries'"));
  }

  // Deadline: a per-request "deadline_ms" wins over the server-wide
  // default. 0 is a valid (already-expired) deadline — the deterministic
  // way to exercise the deadline_exceeded path.
  int64_t deadline_ms = -1;
  if (request.Has("deadline_ms")) {
    const JsonValue& raw = request.Get("deadline_ms");
    const double ms = raw.IsNumber() ? raw.AsNumber() : -1.0;
    if (!raw.IsNumber() || ms < 0 || ms > 1e15 ||
        ms != static_cast<double>(static_cast<int64_t>(ms))) {
      return fail(Status::InvalidArgument(
          "value: 'deadline_ms' must be a non-negative integer",
          "deadline_ms"));
    }
    deadline_ms = static_cast<int64_t>(ms);
  } else if (options_.default_deadline_ms > 0) {
    deadline_ms = options_.default_deadline_ms;
  }
  if (deadline_ms >= 0) {
    engine_request.cancel = std::make_shared<const CancelToken>(deadline_ms);
  }

  engine_request.use_cache = request.Get("cache").AsBool(true);
  engine_request.parallel = request.Get("parallel").AsBool(true);
  // Deep tracing is on when the client asks ({"trace":true}), the server
  // forces it (--trace-all), or a slow-log threshold needs the breakdown
  // ready before it knows the request is slow. Only the first two echo
  // the trace back in the response.
  prepared->echo_trace = request.Get("trace").AsBool(false) || options_.trace_all;
  engine_request.trace = prepared->echo_trace || options_.slow_ms > 0.0;
  prepared->explicit_parallel =
      request.Has("parallel") && request.Get("parallel").AsBool();

  prepared->include_values = request.Get("include_values").AsBool(true);
  prepared->ordered = request.Get("ordered").AsBool(true);
  prepared->has_id = request.Has("id");
  if (prepared->has_id) prepared->id = request.Get("id");
  return true;
}

JsonValue RequestPipeline::RunValue(const PreparedValue& prepared) {
  // Queue wait: dispatch-to-run latency of the pipelined loop. Inline
  // requests (serial loop, explicit_parallel, HandleSync) have none.
  uint64_t queue_nanos = 0;
  if (prepared.dispatched) {
    queue_nanos = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - prepared.dispatch_time)
            .count());
  }

  ValuationReport report = engine_.Value(prepared.engine_request);
  report.queue_seconds = static_cast<double>(queue_nanos) * 1e-9;
  report.shed_total = shed_total_.load(std::memory_order_relaxed);
  if (report.trace != nullptr) {
    if (queue_nanos != 0) report.trace->Add(Phase::kQueueWait, queue_nanos);
    if (prepared.parse_nanos != 0) {
      report.trace->Add(Phase::kParse, prepared.parse_nanos);
    }
  }
  if (metrics_ != nullptr) {
    if (prepared.parse_nanos != 0) parse_nanos_->Add(prepared.parse_nanos);
    if (prepared.dispatched) {
      queue_nanos_->Add(queue_nanos);
      queue_seconds_->Observe(report.queue_seconds);
    }
  }

  if (!report.ok()) {
    JsonValue error_response = ErrorResponse(report.status);
    if (prepared.has_id) error_response.Set("id", prepared.id);
    // Unavailable means "a retry can succeed" (a dead shard worker is
    // respawned by the re-fit the retry triggers), so it carries the same
    // deterministic retry hint as a shed response.
    if (report.status.code() == StatusCode::kUnavailable) {
      error_response.Set(
          "retry_after_ms",
          JsonValue(static_cast<double>(options_.shed_retry_after_ms)));
    }
    // A deadline error still echoes the partial trace when one was
    // requested: the phases that ran before the deadline fired are
    // exactly the diagnosis the client needs.
    if (report.status.code() == StatusCode::kDeadlineExceeded &&
        prepared.echo_trace && report.trace != nullptr) {
      error_response.Set("trace", TraceJson(report, options_.emit_timing));
    }
    return error_response;
  }

  const bool time_serialize = metrics_ != nullptr || report.trace != nullptr;
  std::chrono::steady_clock::time_point serialize_start;
  if (time_serialize) serialize_start = std::chrono::steady_clock::now();
  JsonValue out = OkResponse();
  if (prepared.has_id) out.Set("id", prepared.id);
  out.Set("method", JsonValue(report.method));
  out.Set("train_size", JsonValue(static_cast<double>(report.train_size)));
  out.Set("num_queries", JsonValue(static_cast<double>(report.num_queries)));
  // Echo of the *effective declared* hyperparameters (schema-serialized):
  // exactly the fields that determined the result and its cache identity.
  out.Set("params",
          ParamsToJson(*prepared.schema, prepared.engine_request.params));
  out.Set("cache_hit", JsonValue(report.cache_hit));
  if (report.approx_bound > 0.0) {
    // Only approximate requests carry the analytic error bound; default
    // (exact) responses stay byte-identical to the pre-truncation wire.
    out.Set("approx_bound", JsonValue(report.approx_bound));
  }
  JsonValue summary = JsonValue::MakeObject();
  summary.Set("mean", JsonValue(report.summary.mean));
  summary.Set("min", JsonValue(report.summary.min));
  summary.Set("max", JsonValue(report.summary.max));
  summary.Set("total", JsonValue(report.summary.total));
  summary.Set("fraction_negative", JsonValue(report.summary.fraction_negative));
  out.Set("summary", summary);
  if (prepared.include_values) {
    JsonValue values = JsonValue::MakeArray();
    for (double v : report.values) values.Append(JsonValue(v));
    out.Set("values", values);
  }
  if (options_.emit_timing) out.Set("seconds", JsonValue(report.seconds));

  // The serialize span covers the response build above; it is credited
  // before the trace is rendered so the echoed trace includes it.
  if (time_serialize) {
    const uint64_t serialize_nanos = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - serialize_start)
            .count());
    if (report.trace != nullptr) {
      report.trace->Add(Phase::kSerialize, serialize_nanos);
    }
    if (metrics_ != nullptr) serialize_nanos_->Add(serialize_nanos);
  }
  if (prepared.echo_trace && report.trace != nullptr) {
    out.Set("trace", TraceJson(report, options_.emit_timing));
  }
  MaybeLogSlow(prepared, report);
  return out;
}

void RequestPipeline::MaybeLogSlow(const PreparedValue& prepared,
                                   const ValuationReport& report) {
  if (options_.slow_ms <= 0.0 || report.trace == nullptr) return;
  const double total_ms = (report.seconds + report.queue_seconds) * 1e3;
  if (total_ms < options_.slow_ms) return;
  JsonValue line = JsonValue::MakeObject();
  line.Set("slow_request", JsonValue(true));
  if (prepared.has_id) line.Set("id", prepared.id);
  line.Set("method", JsonValue(report.method));
  line.Set("train_size", JsonValue(static_cast<double>(report.train_size)));
  line.Set("num_queries", JsonValue(static_cast<double>(report.num_queries)));
  line.Set("seconds", JsonValue(report.seconds));
  line.Set("queue_seconds", JsonValue(report.queue_seconds));
  line.Set("fit_seconds", JsonValue(report.fit_seconds));
  line.Set("cache_hit", JsonValue(report.cache_hit));
  line.Set("trace", TraceJson(report, /*timed=*/true));
  std::ostream* sink =
      options_.slow_log != nullptr ? options_.slow_log : &std::cerr;
  // One lock per offending request; the log stays line-atomic under
  // concurrent completions.
  std::lock_guard<std::mutex> lock(slow_log_mutex_);
  (*sink) << line.Dump() << '\n';
  sink->flush();
}

}  // namespace knnshap
