// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// From Shapley values to monetary rewards (Sec 7). With an affine revenue
// model R(S) = a nu(S) + b the additivity axiom gives each contributor's
// monetary share directly from their SV: s(R, i) = a s(nu, i) + b/N.

#ifndef KNNSHAP_MARKET_PAYMENT_H_
#define KNNSHAP_MARKET_PAYMENT_H_

#include <vector>

namespace knnshap {

/// Affine mapping from model utility to revenue.
struct AffineRevenueModel {
  double slope = 1.0;      ///< a: dollars per unit of utility.
  double intercept = 0.0;  ///< b: fixed payment split equally.
};

/// Monetary allocation for a set of contributors.
struct PaymentAllocation {
  std::vector<double> payments;  ///< Per-contributor dollars.
  double total = 0.0;            ///< Sum of payments = R(I) - R(empty share).
};

/// Converts Shapley values (under utility nu) into payments under the
/// affine revenue model. By additivity the intercept is distributed
/// equally (it is the value of the constant game b).
PaymentAllocation AllocateRevenue(const std::vector<double>& shapley_values,
                                  const AffineRevenueModel& model);

/// Verifies group rationality within `tolerance`: payments sum to
/// slope * (nu(I) - nu(empty)) + intercept. Returns the signed residual.
double GroupRationalityResidual(const PaymentAllocation& allocation,
                                double grand_utility, double empty_utility,
                                const AffineRevenueModel& model);

}  // namespace knnshap

#endif  // KNNSHAP_MARKET_PAYMENT_H_
