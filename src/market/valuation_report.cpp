// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "market/valuation_report.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <numeric>

#include "util/common.h"

namespace knnshap {

namespace {

std::vector<RankedValue> RankAll(const std::vector<double>& values, bool descending) {
  std::vector<RankedValue> ranked(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    ranked[i] = {static_cast<int>(i), values[i]};
  }
  std::sort(ranked.begin(), ranked.end(),
            [descending](const RankedValue& a, const RankedValue& b) {
              if (a.value != b.value) {
                return descending ? a.value > b.value : a.value < b.value;
              }
              return a.index < b.index;
            });
  return ranked;
}

}  // namespace

std::vector<RankedValue> TopValued(const std::vector<double>& values, size_t count) {
  auto ranked = RankAll(values, /*descending=*/true);
  ranked.resize(std::min(count, ranked.size()));
  return ranked;
}

std::vector<RankedValue> BottomValued(const std::vector<double>& values, size_t count) {
  auto ranked = RankAll(values, /*descending=*/false);
  ranked.resize(std::min(count, ranked.size()));
  return ranked;
}

ValueSummary Summarize(const std::vector<double>& values) {
  ValueSummary summary;
  if (values.empty()) return summary;
  summary.min = std::numeric_limits<double>::max();
  summary.max = std::numeric_limits<double>::lowest();
  size_t negative = 0;
  for (double v : values) {
    summary.total += v;
    summary.min = std::min(summary.min, v);
    summary.max = std::max(summary.max, v);
    if (v < 0.0) ++negative;
  }
  summary.mean = summary.total / static_cast<double>(values.size());
  summary.fraction_negative =
      static_cast<double>(negative) / static_cast<double>(values.size());
  return summary;
}

std::vector<double> GroupTotals(const std::vector<double>& values,
                                const std::vector<int>& group_of, int num_groups) {
  KNNSHAP_CHECK(values.size() == group_of.size(), "size mismatch");
  KNNSHAP_CHECK(num_groups >= 1, "need at least one group");
  std::vector<double> totals(static_cast<size_t>(num_groups), 0.0);
  for (size_t i = 0; i < values.size(); ++i) {
    int g = group_of[i];
    KNNSHAP_CHECK(g >= 0 && g < num_groups, "group id out of range");
    totals[static_cast<size_t>(g)] += values[i];
  }
  return totals;
}

std::string FormatRanking(const std::vector<RankedValue>& ranking,
                          const std::string& title) {
  std::string out = title + "\n";
  char line[96];
  for (size_t r = 0; r < ranking.size(); ++r) {
    std::snprintf(line, sizeof(line), "  #%-3zu  point %-6d  value % .6e\n", r + 1,
                  ranking[r].index, ranking[r].value);
    out += line;
  }
  return out;
}

std::string ValuationReport::FormatStatusLine() const {
  char line[320];
  if (!ok()) {
    std::snprintf(line, sizeof(line), "error: %s", status.ToString().c_str());
    return line;
  }
  // The fit-vs-value split is what tells a 6-second cold fit from a cache
  // hit at a glance; queue wait flags pipeline backpressure.
  char breakdown[96] = "";
  if (cache_hit) {
    std::snprintf(breakdown, sizeof(breakdown), " [cache hit]");
  } else {
    std::snprintf(breakdown, sizeof(breakdown), " [fit %.3fs + value %.3fs]",
                  fit_seconds, std::max(0.0, seconds - fit_seconds));
  }
  char queue[48] = "";
  if (queue_seconds > 0.0) {
    std::snprintf(queue, sizeof(queue), " [queue %.3fs]", queue_seconds);
  }
  // Server-wide distress shows up on every line once it starts: a nonzero
  // shed or deadline count is the operator's cue to look at `stats`.
  char robustness[64] = "";
  if (shed_total != 0 || deadline_exceeded_total != 0) {
    std::snprintf(robustness, sizeof(robustness),
                  " [shed %llu / deadline %llu]",
                  static_cast<unsigned long long>(shed_total),
                  static_cast<unsigned long long>(deadline_exceeded_total));
  }
  std::snprintf(line, sizeof(line),
                "%s: %zu points x %zu queries in %.3fs%s%s%s%s (cache %llu hit "
                "/ %llu miss)",
                method.c_str(), train_size, num_queries, seconds, breakdown,
                queue, fit_reused ? " [fit reused]" : "", robustness,
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses));
  return line;
}

}  // namespace knnshap
