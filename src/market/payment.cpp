// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "market/payment.h"

#include "util/common.h"

namespace knnshap {

PaymentAllocation AllocateRevenue(const std::vector<double>& shapley_values,
                                  const AffineRevenueModel& model) {
  KNNSHAP_CHECK(!shapley_values.empty(), "no contributors");
  PaymentAllocation allocation;
  allocation.payments.reserve(shapley_values.size());
  const double per_head =
      model.intercept / static_cast<double>(shapley_values.size());
  for (double sv : shapley_values) {
    double payment = model.slope * sv + per_head;
    allocation.payments.push_back(payment);
    allocation.total += payment;
  }
  return allocation;
}

double GroupRationalityResidual(const PaymentAllocation& allocation,
                                double grand_utility, double empty_utility,
                                const AffineRevenueModel& model) {
  double expected =
      model.slope * (grand_utility - empty_utility) + model.intercept;
  return allocation.total - expected;
}

}  // namespace knnshap
