// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Reporting helpers over a vector of data values: rankings, summaries and
// a plain-text table, used by the examples and the dog-fish study (Fig 14)
// — plus ValuationReport, the engine's response envelope carrying the
// values together with provenance (method, timing, cache behaviour).

#ifndef KNNSHAP_MARKET_VALUATION_REPORT_H_
#define KNNSHAP_MARKET_VALUATION_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace knnshap {

class RequestTrace;  // obs/trace.h; reports may carry a phase trace.

/// A (point id, value) pair in a ranking.
struct RankedValue {
  int index;
  double value;
};

/// Indices of the `count` highest-valued points, descending by value.
std::vector<RankedValue> TopValued(const std::vector<double>& values, size_t count);

/// Indices of the `count` lowest-valued points, ascending by value.
std::vector<RankedValue> BottomValued(const std::vector<double>& values, size_t count);

/// Summary statistics of a value vector.
struct ValueSummary {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double total = 0.0;
  double fraction_negative = 0.0;  ///< Share of points that hurt the model.
};

/// Computes summary statistics.
ValueSummary Summarize(const std::vector<double>& values);

/// Per-group (e.g. per-class or per-seller) totals of a value vector;
/// `group_of[i]` must be a dense id in [0, num_groups).
std::vector<double> GroupTotals(const std::vector<double>& values,
                                const std::vector<int>& group_of, int num_groups);

/// Formats a compact two-column table "rank | index | value" for reports.
std::string FormatRanking(const std::vector<RankedValue>& ranking,
                          const std::string& title);

/// Lifetime counters of the engine's result cache.
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// Response envelope of a ValuationEngine request: the values plus the
/// provenance a serving deployment needs to log — which method ran, how
/// long it took, whether the result came from cache, and the engine-wide
/// cache counters at response time.
struct ValuationReport {
  std::string method;           ///< Registry key that produced the values.
  std::vector<double> values;   ///< One value per training row.
  ValueSummary summary;         ///< Summary statistics over `values`.
  size_t train_size = 0;        ///< Corpus rows valued.
  size_t num_queries = 0;       ///< Test rows in the request batch.
  double seconds = 0.0;         ///< Wall time spent serving the request.
  /// Of `seconds`, the time spent inside fit-or-reuse (always measured —
  /// two clock reads per uncached request; 0 on cache hits). A reused
  /// valuator reads ~0; a waiter on someone else's in-flight fit reads the
  /// wait. This is what lets a log line tell a 6-second fit from a hit.
  double fit_seconds = 0.0;
  /// Serve-layer dispatch-to-run wait (0 outside the pipelined loop;
  /// filled by the serve layer, not the engine — NOT part of `seconds`).
  double queue_seconds = 0.0;
  bool cache_hit = false;       ///< Served from the result cache.
  bool fit_reused = false;      ///< Reused an already-fitted valuator.
  /// Analytic sup-norm error bound of the method's approximation for this
  /// request (schema approx_bound); 0 for exact computations. Serve echoes
  /// it as "approx_bound" only when positive, keeping default responses
  /// byte-identical.
  double approx_bound = 0.0;
  CacheCounters cache;          ///< Engine-wide counters at response time.
  /// Server-wide robustness counters at response time, same convention as
  /// `cache`: requests abandoned at their deadline (engine-filled) and
  /// value requests shed by admission control (serve-layer-filled).
  /// FormatStatusLine appends them when nonzero.
  uint64_t deadline_exceeded_total = 0;
  uint64_t shed_total = 0;
  /// Per-phase spans; set when the engine has a MetricsRegistry wired or
  /// the request asked for tracing, null otherwise. Shared because worker
  /// threads write it through atomics; treat as read-only once returned.
  std::shared_ptr<RequestTrace> trace;
  /// Request outcome: OK, or the structured failure (machine-readable
  /// code + message + offending field for parameter errors). Replaces the
  /// old `bool ok + error string` convention at the engine boundary.
  Status status;

  bool ok() const { return status.ok(); }

  /// One-line human-readable summary for logs and CLI output.
  std::string FormatStatusLine() const;
};

}  // namespace knnshap

#endif  // KNNSHAP_MARKET_VALUATION_REPORT_H_
