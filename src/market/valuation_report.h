// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Reporting helpers over a vector of data values: rankings, summaries and
// a plain-text table, used by the examples and the dog-fish study (Fig 14).

#ifndef KNNSHAP_MARKET_VALUATION_REPORT_H_
#define KNNSHAP_MARKET_VALUATION_REPORT_H_

#include <string>
#include <vector>

namespace knnshap {

/// A (point id, value) pair in a ranking.
struct RankedValue {
  int index;
  double value;
};

/// Indices of the `count` highest-valued points, descending by value.
std::vector<RankedValue> TopValued(const std::vector<double>& values, size_t count);

/// Indices of the `count` lowest-valued points, ascending by value.
std::vector<RankedValue> BottomValued(const std::vector<double>& values, size_t count);

/// Summary statistics of a value vector.
struct ValueSummary {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double total = 0.0;
  double fraction_negative = 0.0;  ///< Share of points that hurt the model.
};

/// Computes summary statistics.
ValueSummary Summarize(const std::vector<double>& values);

/// Per-group (e.g. per-class or per-seller) totals of a value vector;
/// `group_of[i]` must be a dense id in [0, num_groups).
std::vector<double> GroupTotals(const std::vector<double>& values,
                                const std::vector<int>& group_of, int num_groups);

/// Formats a compact two-column table "rank | index | value" for reports.
std::string FormatRanking(const std::vector<RankedValue>& ranking,
                          const std::string& title);

}  // namespace knnshap

#endif  // KNNSHAP_MARKET_VALUATION_REPORT_H_
