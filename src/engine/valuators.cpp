// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "engine/valuators.h"

#include <algorithm>

#include "core/corrected_knn_shapley.h"
#include "core/exact_knn_shapley.h"
#include "core/improved_mc.h"
#include "core/knn_regression_shapley.h"
#include "core/lsh_knn_shapley.h"
#include "core/weighted_knn_shapley.h"
#include "engine/registry.h"
#include "obs/trace.h"
#include "util/common.h"

namespace knnshap {

namespace {

// Scatters rank-ordered values of retrieved neighbors into a dense
// row-indexed vector (zeros elsewhere).
std::vector<double> ScatterByRank(size_t n, const std::vector<Neighbor>& neighbors,
                                  const std::vector<double>& by_rank) {
  std::vector<double> sv(n, 0.0);
  for (size_t i = 0; i < neighbors.size(); ++i) {
    sv[static_cast<size_t>(neighbors[i].index)] = by_rank[i];
  }
  return sv;
}

int TestLabel(const Dataset& test, size_t row) {
  return test.HasLabels() ? test.labels[row] : 0;
}

double TestTarget(const Dataset& test, size_t row) {
  return test.HasTargets() ? test.targets[row] : 0.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// exact
// ---------------------------------------------------------------------------

void ExactValuator::OnFit() {
  KNNSHAP_CHECK(Train().HasLabels(), "exact: labeled corpus required");
  // Norms amortize across every request sharing this fitted corpus.
  norms_ = NormsForMetric(Train().features, params_.metric);
}

std::vector<double> ExactValuator::ValueOne(const Dataset& test, size_t row) const {
  if (params_.approx_error > 0.0) {
    // Truncated-exact: only the top KStar(k, approx_error) ranks are
    // retrieved (streaming selection, no full argsort); the sup-norm error
    // is bounded analytically and reported via the schema's approx_bound.
    const size_t r = static_cast<size_t>(KStar(params_.k, params_.approx_error));
    return TruncatedExactKnnShapleySingle(Train(), test.features.Row(row),
                                          TestLabel(test, row), params_.k, r,
                                          params_.metric, &norms_);
  }
  return ExactKnnShapleySingle(Train(), test.features.Row(row), TestLabel(test, row),
                               params_.k, params_.metric, &norms_);
}

// ---------------------------------------------------------------------------
// exact-corrected
// ---------------------------------------------------------------------------

void CorrectedValuator::OnFit() {
  KNNSHAP_CHECK(Train().HasLabels(), "exact-corrected: labeled corpus required");
  norms_ = NormsForMetric(Train().features, params_.metric);
}

std::vector<double> CorrectedValuator::ValueOne(const Dataset& test,
                                                size_t row) const {
  if (params_.approx_error > 0.0) {
    const size_t r = static_cast<size_t>(KStar(params_.k, params_.approx_error));
    return TruncatedCorrectedKnnShapleySingle(Train(), test.features.Row(row),
                                              TestLabel(test, row), params_.k, r,
                                              params_.metric, &norms_);
  }
  return CorrectedKnnShapleySingle(Train(), test.features.Row(row),
                                   TestLabel(test, row), params_.k, params_.metric,
                                   &norms_);
}

// ---------------------------------------------------------------------------
// truncated
// ---------------------------------------------------------------------------

void TruncatedValuator::OnFit() {
  KNNSHAP_CHECK(Train().HasLabels(), "truncated: labeled corpus required");
  k_star_ = KStar(params_.k, params_.epsilon);
  kd_tree_ = std::make_unique<KdTree>(&Train().features);
}

std::vector<double> TruncatedValuator::ValueOne(const Dataset& test,
                                                size_t row) const {
  std::vector<Neighbor> neighbors;
  {
    ScopedPhase span(Phase::kRetrieve);
    neighbors =
        kd_tree_->Query(test.features.Row(row), static_cast<size_t>(k_star_));
  }
  std::vector<double> by_rank = TruncatedShapleyFromNeighbors(
      Train(), neighbors, TestLabel(test, row), params_.k, k_star_);
  return ScatterByRank(Train().Size(), neighbors, by_rank);
}

// ---------------------------------------------------------------------------
// lsh
// ---------------------------------------------------------------------------

void LshValuator::OnFit() {
  const Dataset& train = Train();
  KNNSHAP_CHECK(train.HasLabels(), "lsh: labeled corpus required");
  KNNSHAP_CHECK(train.Size() >= 2, "lsh: corpus too small");
  corpus_ = train;  // private copy; rescaled by the prep below

  LshCorpusPrep prep = PrepareCorpusForRetrieval(
      &corpus_, params_.k, params_.epsilon, params_.seed, params_.contrast_sample);
  k_star_ = prep.k_star;
  scale_ = prep.scale;
  contrast_ = prep.contrast;
  LshConfig config =
      TuneForPreparedCorpus(corpus_.Size(), prep, params_.delta, params_.seed);
  index_ = std::make_unique<LshIndex>(&corpus_.features, config);
}

std::vector<double> LshValuator::ValueOne(const Dataset& test, size_t row) const {
  auto query = test.features.Row(row);
  // The corpus copy was rescaled; queries arrive in the original space.
  std::vector<float> scaled(query.begin(), query.end());
  for (auto& x : scaled) x = static_cast<float>(x * scale_);
  std::vector<Neighbor> neighbors;
  {
    ScopedPhase span(Phase::kRetrieve);
    neighbors = index_->Query(scaled, static_cast<size_t>(k_star_));
  }
  std::vector<double> by_rank = TruncatedShapleyFromNeighbors(
      corpus_, neighbors, TestLabel(test, row), params_.k, k_star_);
  return ScatterByRank(corpus_.Size(), neighbors, by_rank);
}

void LshValuator::Finalize(std::vector<double>* accumulator,
                           size_t num_queries) const {
  // StreamingValuator materializes values as sums * (1/Q); match that
  // operation order so engine results are bit-identical to the streaming
  // path on the same query sequence.
  const double inv = 1.0 / static_cast<double>(num_queries);
  for (auto& s : *accumulator) s *= inv;
}

// ---------------------------------------------------------------------------
// mc
// ---------------------------------------------------------------------------

void McValuator::OnFit() {
  const bool regression =
      params_.task == KnnTask::kRegression || params_.task == KnnTask::kWeightedRegression;
  KNNSHAP_CHECK(regression ? Train().HasTargets() : Train().HasLabels(),
                "mc: corpus lacks the task's labels/targets");
}

std::vector<double> McValuator::ValueBatch(const Dataset& test) const {
  IncrementalKnnUtility utility(&Train(), &test, params_.k, params_.task,
                                params_.weights, /*owners=*/nullptr, params_.metric);
  ImprovedMcOptions options;
  options.k = params_.k;
  options.epsilon = params_.epsilon;
  options.delta = params_.delta;
  options.utility_range =
      params_.utility_range > 0.0 ? params_.utility_range : 1.0 / params_.k;
  options.seed = params_.seed;
  options.max_permutations = params_.max_permutations;
  return ImprovedMcShapley(&utility, options).shapley;
}

// ---------------------------------------------------------------------------
// weighted-fast
// ---------------------------------------------------------------------------

void WeightedFastValuator::OnFit() {
  KNNSHAP_CHECK(Train().HasLabels(), "weighted-fast: labeled corpus required");
  norms_ = NormsForMetric(Train().features, params_.metric);
  // The coalition-weight tables depend only on (N, K); every query on this
  // fitted corpus reuses them, like the kd-tree/LSH retrieval structures.
  coalition_ = std::make_unique<WknnCoalitionWeights>(
      static_cast<int>(Train().Size()), params_.k);
}

std::vector<double> WeightedFastValuator::ValueOne(const Dataset& test,
                                                   size_t row) const {
  WknnShapleyOptions options;
  options.k = params_.k;
  options.weights = params_.weights;
  options.metric = params_.metric;
  options.weight_bits = params_.weight_bits;
  options.approx_error = params_.approx_error;
  return WknnShapleySingle(Train(), test.features.Row(row), TestLabel(test, row),
                           options, &norms_, coalition_.get());
}

// ---------------------------------------------------------------------------
// weighted
// ---------------------------------------------------------------------------

void WeightedValuator::OnFit() {
  const bool regression = params_.task == KnnTask::kWeightedRegression;
  KNNSHAP_CHECK(regression ? Train().HasTargets() : Train().HasLabels(),
                "weighted: corpus lacks the task's labels/targets");
  norms_ = NormsForMetric(Train().features, params_.metric);
}

std::vector<double> WeightedValuator::ValueOne(const Dataset& test, size_t row) const {
  WeightedShapleyOptions options;
  options.k = params_.k;
  options.weights = params_.weights;
  options.task = params_.task == KnnTask::kWeightedRegression
                     ? KnnTask::kWeightedRegression
                     : KnnTask::kWeightedClassification;
  options.metric = params_.metric;
  return ExactWeightedKnnShapleySingle(Train(), test.features.Row(row),
                                       TestLabel(test, row), TestTarget(test, row),
                                       options, &norms_);
}

// ---------------------------------------------------------------------------
// regression
// ---------------------------------------------------------------------------

void RegressionValuator::OnFit() {
  KNNSHAP_CHECK(Train().HasTargets(), "regression: corpus targets required");
  norms_ = NormsForMetric(Train().features, params_.metric);
}

std::vector<double> RegressionValuator::ValueOne(const Dataset& test,
                                                 size_t row) const {
  return ExactKnnRegressionShapleySingle(Train(), test.features.Row(row),
                                         TestTarget(test, row), params_.k,
                                         params_.metric, &norms_);
}

// ---------------------------------------------------------------------------
// registration
// ---------------------------------------------------------------------------

void RegisterBuiltinValuators(ValuatorRegistry* registry) {
  // Each schema declares exactly the ValuatorParams fields the adapter
  // above actually reads — the declaration *is* the cache identity, so an
  // omission here would alias two requests that differ in a field the
  // method honors. tests/schema_test.cpp pins declared-vs-honored
  // behavior per method.
  auto add = [registry](MethodSchema schema, auto make) {
    registry->Register(std::move(schema), make);
  };

  MethodSchema exact;
  exact.name = "exact";
  exact.description =
      "Exact KNN classification SVs, O(N log N)/query (Thm 1, Alg 1)";
  exact.params = ResolveParams({"k", "metric", "approx_error"});
  exact.tasks = {KnnTask::kClassification};
  // approx_error was retrofitted onto this method: omit it from the params
  // echo at its default so existing default-request transcripts stay
  // byte-identical.
  exact.echo_if_nondefault = {"approx_error"};
  exact.approx_bound = [](const ValuatorParams& p, size_t rows) {
    if (p.approx_error <= 0.0) return 0.0;
    return TruncatedExactKnnShapleyBound(
        static_cast<size_t>(KStar(p.k, p.approx_error)), rows);
  };
  add(exact, [](const ValuatorParams& p) -> std::unique_ptr<Valuator> {
    return std::make_unique<ExactValuator>(p);
  });

  MethodSchema corrected = exact;
  corrected.name = "exact-corrected";
  corrected.description =
      "Exact SVs under the min(K,|S|)-normalized KNN utility (arXiv:2304.04258)";
  corrected.approx_bound = [](const ValuatorParams& p, size_t rows) {
    if (p.approx_error <= 0.0) return 0.0;
    return TruncatedCorrectedKnnShapleyBound(
        static_cast<size_t>(KStar(p.k, p.approx_error)), rows, p.k);
  };
  add(corrected, [](const ValuatorParams& p) -> std::unique_ptr<Valuator> {
    return std::make_unique<CorrectedValuator>(p);
  });

  MethodSchema truncated;
  truncated.name = "truncated";
  truncated.description =
      "(eps,0)-approx via top-K* truncation, kd-tree retrieval (Thm 2)";
  truncated.params = ResolveParams({"k", "epsilon"});  // kd-tree is L2-bound
  truncated.tasks = {KnnTask::kClassification};
  add(truncated, [](const ValuatorParams& p) -> std::unique_ptr<Valuator> {
    return std::make_unique<TruncatedValuator>(p);
  });

  MethodSchema lsh;
  lsh.name = "lsh";
  lsh.description =
      "(eps,delta)-approx via contrast-tuned LSH retrieval (Thms 3-4)";
  lsh.params = ResolveParams({"k", "epsilon", "delta", "seed", "contrast_sample"});
  lsh.tasks = {KnnTask::kClassification};
  lsh.min_train_rows = 2;  // contrast estimation needs a pair
  add(lsh, [](const ValuatorParams& p) -> std::unique_ptr<Valuator> {
    return std::make_unique<LshValuator>(p);
  });

  MethodSchema mc;
  mc.name = "mc";
  mc.description = "Improved Monte-Carlo estimator, any KNN task (Alg 2, Thm 5)";
  mc.params = ResolveParams({"k", "epsilon", "delta", "seed", "metric", "kernel",
                             "kernel_epsilon", "sigma", "utility_range",
                             "max_permutations"});
  mc.tasks = {KnnTask::kClassification, KnnTask::kRegression,
              KnnTask::kWeightedClassification, KnnTask::kWeightedRegression};
  mc.per_query = false;
  add(mc, [](const ValuatorParams& p) -> std::unique_ptr<Valuator> {
    return std::make_unique<McValuator>(p);
  });

  MethodSchema weighted;
  weighted.name = "weighted";
  weighted.description = "Exact weighted KNN SVs, O(N^K)/query (Thm 7)";
  weighted.params =
      ResolveParams({"k", "metric", "kernel", "kernel_epsilon", "sigma"});
  weighted.tasks = {KnnTask::kWeightedClassification,
                    KnnTask::kWeightedRegression};
  add(weighted, [](const ValuatorParams& p) -> std::unique_ptr<Valuator> {
    return std::make_unique<WeightedValuator>(p);
  });

  MethodSchema weighted_fast;
  weighted_fast.name = "weighted-fast";
  weighted_fast.description =
      "Discretized weighted KNN SVs, O(N^2)/query (arXiv:2401.11103)";
  weighted_fast.params =
      ResolveParams({"k", "metric", "kernel", "kernel_epsilon", "sigma",
                     "weight_bits", "approx_error"});
  weighted_fast.tasks = {KnnTask::kWeightedClassification};
  // k and weight_bits are individually in range long before their joint
  // count-table footprint explodes; screen the combination against the
  // corpus so an oversized request is a response, not an abort.
  weighted_fast.precondition = [](const ValuatorParams& p, size_t rows) {
    return WknnTableBudget(static_cast<int>(rows), p.k, p.weight_bits);
  };
  add(weighted_fast, [](const ValuatorParams& p) -> std::unique_ptr<Valuator> {
    return std::make_unique<WeightedFastValuator>(p);
  });

  MethodSchema regression;
  regression.name = "regression";
  regression.description = "Exact unweighted KNN regression SVs (Thm 6)";
  regression.params = ResolveParams({"k", "metric"});
  regression.tasks = {KnnTask::kRegression};
  add(regression, [](const ValuatorParams& p) -> std::unique_ptr<Valuator> {
    return std::make_unique<RegressionValuator>(p);
  });
}

}  // namespace knnshap
