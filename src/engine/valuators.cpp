// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "engine/valuators.h"

#include <algorithm>

#include "core/corrected_knn_shapley.h"
#include "core/exact_knn_shapley.h"
#include "core/improved_mc.h"
#include "core/knn_regression_shapley.h"
#include "core/lsh_knn_shapley.h"
#include "core/weighted_knn_shapley.h"
#include "engine/registry.h"
#include "util/common.h"

namespace knnshap {

namespace {

// Scatters rank-ordered values of retrieved neighbors into a dense
// row-indexed vector (zeros elsewhere).
std::vector<double> ScatterByRank(size_t n, const std::vector<Neighbor>& neighbors,
                                  const std::vector<double>& by_rank) {
  std::vector<double> sv(n, 0.0);
  for (size_t i = 0; i < neighbors.size(); ++i) {
    sv[static_cast<size_t>(neighbors[i].index)] = by_rank[i];
  }
  return sv;
}

int TestLabel(const Dataset& test, size_t row) {
  return test.HasLabels() ? test.labels[row] : 0;
}

double TestTarget(const Dataset& test, size_t row) {
  return test.HasTargets() ? test.targets[row] : 0.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// exact
// ---------------------------------------------------------------------------

void ExactValuator::OnFit() {
  KNNSHAP_CHECK(Train().HasLabels(), "exact: labeled corpus required");
  // Norms amortize across every request sharing this fitted corpus.
  norms_ = NormsForMetric(Train().features, params_.metric);
}

std::vector<double> ExactValuator::ValueOne(const Dataset& test, size_t row) const {
  return ExactKnnShapleySingle(Train(), test.features.Row(row), TestLabel(test, row),
                               params_.k, params_.metric, &norms_);
}

// ---------------------------------------------------------------------------
// exact-corrected
// ---------------------------------------------------------------------------

void CorrectedValuator::OnFit() {
  KNNSHAP_CHECK(Train().HasLabels(), "exact-corrected: labeled corpus required");
  norms_ = NormsForMetric(Train().features, params_.metric);
}

std::vector<double> CorrectedValuator::ValueOne(const Dataset& test,
                                                size_t row) const {
  return CorrectedKnnShapleySingle(Train(), test.features.Row(row),
                                   TestLabel(test, row), params_.k, params_.metric,
                                   &norms_);
}

// ---------------------------------------------------------------------------
// truncated
// ---------------------------------------------------------------------------

void TruncatedValuator::OnFit() {
  KNNSHAP_CHECK(Train().HasLabels(), "truncated: labeled corpus required");
  k_star_ = KStar(params_.k, params_.epsilon);
  kd_tree_ = std::make_unique<KdTree>(&Train().features);
}

std::vector<double> TruncatedValuator::ValueOne(const Dataset& test,
                                                size_t row) const {
  std::vector<Neighbor> neighbors =
      kd_tree_->Query(test.features.Row(row), static_cast<size_t>(k_star_));
  std::vector<double> by_rank = TruncatedShapleyFromNeighbors(
      Train(), neighbors, TestLabel(test, row), params_.k, k_star_);
  return ScatterByRank(Train().Size(), neighbors, by_rank);
}

// ---------------------------------------------------------------------------
// lsh
// ---------------------------------------------------------------------------

void LshValuator::OnFit() {
  const Dataset& train = Train();
  KNNSHAP_CHECK(train.HasLabels(), "lsh: labeled corpus required");
  KNNSHAP_CHECK(train.Size() >= 2, "lsh: corpus too small");
  corpus_ = train;  // private copy; rescaled by the prep below

  LshCorpusPrep prep = PrepareCorpusForRetrieval(
      &corpus_, params_.k, params_.epsilon, params_.seed, params_.contrast_sample);
  k_star_ = prep.k_star;
  scale_ = prep.scale;
  contrast_ = prep.contrast;
  LshConfig config =
      TuneForPreparedCorpus(corpus_.Size(), prep, params_.delta, params_.seed);
  index_ = std::make_unique<LshIndex>(&corpus_.features, config);
}

std::vector<double> LshValuator::ValueOne(const Dataset& test, size_t row) const {
  auto query = test.features.Row(row);
  // The corpus copy was rescaled; queries arrive in the original space.
  std::vector<float> scaled(query.begin(), query.end());
  for (auto& x : scaled) x = static_cast<float>(x * scale_);
  std::vector<Neighbor> neighbors =
      index_->Query(scaled, static_cast<size_t>(k_star_));
  std::vector<double> by_rank = TruncatedShapleyFromNeighbors(
      corpus_, neighbors, TestLabel(test, row), params_.k, k_star_);
  return ScatterByRank(corpus_.Size(), neighbors, by_rank);
}

void LshValuator::Finalize(std::vector<double>* accumulator,
                           size_t num_queries) const {
  // StreamingValuator materializes values as sums * (1/Q); match that
  // operation order so engine results are bit-identical to the streaming
  // path on the same query sequence.
  const double inv = 1.0 / static_cast<double>(num_queries);
  for (auto& s : *accumulator) s *= inv;
}

// ---------------------------------------------------------------------------
// mc
// ---------------------------------------------------------------------------

void McValuator::OnFit() {
  const bool regression =
      params_.task == KnnTask::kRegression || params_.task == KnnTask::kWeightedRegression;
  KNNSHAP_CHECK(regression ? Train().HasTargets() : Train().HasLabels(),
                "mc: corpus lacks the task's labels/targets");
}

std::vector<double> McValuator::ValueBatch(const Dataset& test) const {
  IncrementalKnnUtility utility(&Train(), &test, params_.k, params_.task,
                                params_.weights, /*owners=*/nullptr, params_.metric);
  ImprovedMcOptions options;
  options.k = params_.k;
  options.epsilon = params_.epsilon;
  options.delta = params_.delta;
  options.utility_range =
      params_.utility_range > 0.0 ? params_.utility_range : 1.0 / params_.k;
  options.seed = params_.seed;
  options.max_permutations = params_.max_permutations;
  return ImprovedMcShapley(&utility, options).shapley;
}

// ---------------------------------------------------------------------------
// weighted
// ---------------------------------------------------------------------------

void WeightedValuator::OnFit() {
  const bool regression = params_.task == KnnTask::kWeightedRegression;
  KNNSHAP_CHECK(regression ? Train().HasTargets() : Train().HasLabels(),
                "weighted: corpus lacks the task's labels/targets");
  norms_ = NormsForMetric(Train().features, params_.metric);
}

std::vector<double> WeightedValuator::ValueOne(const Dataset& test, size_t row) const {
  WeightedShapleyOptions options;
  options.k = params_.k;
  options.weights = params_.weights;
  options.task = params_.task == KnnTask::kWeightedRegression
                     ? KnnTask::kWeightedRegression
                     : KnnTask::kWeightedClassification;
  options.metric = params_.metric;
  return ExactWeightedKnnShapleySingle(Train(), test.features.Row(row),
                                       TestLabel(test, row), TestTarget(test, row),
                                       options, &norms_);
}

// ---------------------------------------------------------------------------
// regression
// ---------------------------------------------------------------------------

void RegressionValuator::OnFit() {
  KNNSHAP_CHECK(Train().HasTargets(), "regression: corpus targets required");
  norms_ = NormsForMetric(Train().features, params_.metric);
}

std::vector<double> RegressionValuator::ValueOne(const Dataset& test,
                                                 size_t row) const {
  return ExactKnnRegressionShapleySingle(Train(), test.features.Row(row),
                                         TestTarget(test, row), params_.k,
                                         params_.metric, &norms_);
}

// ---------------------------------------------------------------------------
// registration
// ---------------------------------------------------------------------------

void RegisterBuiltinValuators(ValuatorRegistry* registry) {
  auto add = [registry](const char* name, const char* description, auto make) {
    registry->Register(name, description, make);
  };
  add("exact", "Exact KNN classification SVs, O(N log N)/query (Thm 1, Alg 1)",
      [](const ValuatorParams& p) -> std::unique_ptr<Valuator> {
        return std::make_unique<ExactValuator>(p);
      });
  add("exact-corrected",
      "Exact SVs under the min(K,|S|)-normalized KNN utility (arXiv:2304.04258)",
      [](const ValuatorParams& p) -> std::unique_ptr<Valuator> {
        return std::make_unique<CorrectedValuator>(p);
      });
  add("truncated", "(eps,0)-approx via top-K* truncation, kd-tree retrieval (Thm 2)",
      [](const ValuatorParams& p) -> std::unique_ptr<Valuator> {
        return std::make_unique<TruncatedValuator>(p);
      });
  add("lsh", "(eps,delta)-approx via contrast-tuned LSH retrieval (Thms 3-4)",
      [](const ValuatorParams& p) -> std::unique_ptr<Valuator> {
        return std::make_unique<LshValuator>(p);
      });
  add("mc", "Improved Monte-Carlo estimator, any KNN task (Alg 2, Thm 5)",
      [](const ValuatorParams& p) -> std::unique_ptr<Valuator> {
        return std::make_unique<McValuator>(p);
      });
  add("weighted", "Exact weighted KNN SVs, O(N^K)/query (Thm 7)",
      [](const ValuatorParams& p) -> std::unique_ptr<Valuator> {
        return std::make_unique<WeightedValuator>(p);
      });
  add("regression", "Exact unweighted KNN regression SVs (Thm 6)",
      [](const ValuatorParams& p) -> std::unique_ptr<Valuator> {
        return std::make_unique<RegressionValuator>(p);
      });
}

}  // namespace knnshap
