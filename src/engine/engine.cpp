// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "engine/engine.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "knn/distance_kernel.h"
#include "shard/sharded_valuator.h"
#include "util/fault.h"
#include "util/fingerprint.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace knnshap {

size_t ValuationEngine::FittedKeyHash::operator()(const FittedKey& key) const {
  Fnv64 hash;
  hash.Add(key.train_fingerprint);
  hash.AddString(key.method);
  hash.Add(key.params_fingerprint);
  return static_cast<size_t>(hash.Digest());
}

ValuationEngine::ValuationEngine(const EngineOptions& options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &ValuatorRegistry::Global()),
      cache_(options.result_cache_capacity) {
  if (options_.metrics != nullptr) {
    for (size_t i = 0; i < kNumPhases; ++i) {
      phase_nanos_[i] = options_.metrics->GetCounter(
          std::string("knnshap_phase_nanos_total{phase=\"") +
          PhaseName(static_cast<Phase>(i)) + "\"}");
    }
    deadline_metric_ =
        options_.metrics->GetCounter("knnshap_deadline_exceeded_total");
    overshoot_metric_ =
        options_.metrics->GetHistogram("knnshap_cancel_overshoot_seconds");
  }
}

void ValuationEngine::RecordDeadlineExceeded(const CancelToken* cancel) {
  deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  if (deadline_metric_ != nullptr) deadline_metric_->Add(1);
  if (overshoot_metric_ != nullptr && cancel != nullptr) {
    overshoot_metric_->Observe(cancel->OvershootSeconds());
  }
}

ValuationReport ValuationEngine::Value(const ValuationRequest& request) {
  // A trace exists when the caller asked for one OR a metrics registry is
  // wired (phase totals feed the registry). `deep` — the per-query spans —
  // stays opt-in either way, so metrics-only serving never pays per-query
  // clock reads. Only a requested trace is heap-allocated and attached to
  // the report; the metrics-only flavor lives on this stack frame — it
  // exists solely to be drained into the registry, and skipping the
  // allocation keeps the always-on path cheap.
  std::shared_ptr<RequestTrace> trace;
  RequestTrace metrics_only;
  RequestTrace* active = nullptr;
  if (request.trace) {
    trace = std::make_shared<RequestTrace>();
    trace->deep = true;
    active = trace.get();
  } else if (options_.metrics != nullptr) {
    active = &metrics_only;
  }
  WallTimer timer;
  // The token rides the requesting thread for the whole request (covers
  // validation, fingerprinting, the fit, and the serial run path); the
  // parallel run re-activates it per worker.
  CancelActivation cancel_scope(request.cancel.get());
  ValuationReport report = ValueImpl(request, active);
  report.seconds = timer.Seconds();
  report.deadline_exceeded_total =
      deadline_exceeded_.load(std::memory_order_relaxed);
  if (active != nullptr) {
    active->kernel = KernelName(ActiveKernel());
    active->cache_hit = report.cache_hit;
    active->fit_reused = report.fit_reused;
    report.trace = trace;  // null in metrics-only mode
    if (options_.metrics != nullptr) RecordMetrics(report, *active);
  }
  return report;
}

ValuationReport ValuationEngine::ValueImpl(const ValuationRequest& request,
                                           RequestTrace* trace) {
  ValuationReport report;
  report.method = request.method;

  // --- Schema-driven validation: errors are responses, not aborts. ------
  std::shared_ptr<const MethodSchema> schema;
  ValuatorParams params = request.params;
  {
    ScopedPhase span(trace, Phase::kValidate);
    schema = registry_->Schema(request.method);
    if (schema == nullptr) {
      report.status = registry_->UnknownMethodError(request.method);
      return report;
    }
    if (request.train == nullptr || request.train->Size() == 0) {
      report.status = Status::InvalidArgument("empty training set", "train");
      return report;
    }
    if (request.train->Size() < schema->min_train_rows) {
      report.status = Status::FailedPrecondition(
          "method '" + request.method + "' needs a training corpus of at least " +
          std::to_string(schema->min_train_rows) + " rows (got " +
          std::to_string(request.train->Size()) + ")");
      return report;
    }
    if (request.test == nullptr || request.test->Size() == 0) {
      report.status = Status::InvalidArgument("empty test batch", "test");
      return report;
    }
    if (request.train->Dim() != request.test->Dim()) {
      report.status = Status::InvalidArgument("train/test dimension mismatch");
      return report;
    }
    // Canonicalize the task and range-check every declared param — the same
    // checks the serve pipeline and the CLI run at parse time, so a request
    // built programmatically fails with the identical structured error.
    if (Status status = schema->Canonicalize(&params); !status.ok()) {
      report.status = std::move(status);
      return report;
    }
    if (schema->RequiresLabels(params.task) &&
        (!request.train->HasLabels() || !request.test->HasLabels())) {
      report.status = Status::FailedPrecondition(
          "method '" + request.method + "' requires labeled data for task '" +
          TaskName(params.task) + "'");
      return report;
    }
    if (schema->RequiresTargets(params.task) &&
        (!request.train->HasTargets() || !request.test->HasTargets())) {
      report.status = Status::FailedPrecondition(
          "method '" + request.method + "' requires regression targets for task '" +
          TaskName(params.task) + "'");
      return report;
    }
    // Joint params-x-data preconditions (e.g. weighted-fast's count-table
    // budget): still a structured response, never a fatal core check.
    if (schema->precondition) {
      if (Status status = schema->precondition(params, request.train->Size());
          !status.ok()) {
        report.status = std::move(status);
        return report;
      }
    }
  }

  report.train_size = request.train->Size();
  report.num_queries = request.test->Size();
  // Analytic approximation bound for these canonicalized params — set
  // before the cache probe so hits and fresh computations report it alike.
  report.approx_bound =
      schema->approx_bound ? schema->approx_bound(params, request.train->Size())
                           : 0.0;

  // An already-expired deadline answers before any real work — in
  // particular before the cache probe, so "deadline_ms":0 is
  // deterministically deadline_exceeded whatever the cache holds (the
  // golden transcript relies on this). The message carries no timing.
  const CancelToken* cancel = request.cancel.get();
  if (cancel != nullptr && cancel->Expired()) {
    RecordDeadlineExceeded(cancel);
    report.status = Status::DeadlineExceeded("deadline exceeded");
    return report;
  }

  uint64_t train_fp, test_fp, params_fp;
  {
    ScopedPhase span(trace, Phase::kFingerprint);
    train_fp = request.train_fingerprint != 0 ? request.train_fingerprint
                                              : DatasetFingerprint(*request.train);
    test_fp = request.test_fingerprint != 0 ? request.test_fingerprint
                                            : DatasetFingerprint(*request.test);
    // Method-scoped identity: only params the schema declares can perturb
    // the key, so e.g. an "exact" entry survives a seed change. The
    // whole-struct shim remains for before/after measurement.
    params_fp = options_.method_scoped_fingerprints
                    ? schema->ParamsFingerprint(params)
                    : params.Fingerprint();
  }

  // --- Result cache. ----------------------------------------------------
  ResultCacheKey cache_key{train_fp, test_fp, request.method, params_fp};
  if (request.use_cache) {
    std::shared_ptr<const std::vector<double>> cached;
    {
      ScopedPhase span(trace, Phase::kCacheProbe);
      cached = cache_.Get(cache_key);
    }
    if (cached != nullptr) {
      report.values = *cached;
      {
        ScopedPhase span(trace, Phase::kFinalize);
        report.summary = Summarize(report.values);
      }
      report.cache_hit = true;
      report.cache = cache_.Counters();
      return report;
    }
  }

  // --- Fit (or reuse) and run. ------------------------------------------
  FittedKey fitted_key{train_fp, request.method, params_fp};
  // The fitted-valuator key carries the topology (a 3-shard router and an
  // unsharded valuator are different resident structures), but the result
  // cache above deliberately does not: sharded values are bit-identical to
  // unsharded ones, so cached results warm-start across topologies.
  if (request.shard.count > 1 && ShardedValuatorSupports(request.method)) {
    fitted_key.method +=
        "#shards=" + std::to_string(request.shard.count) +
        (!request.shard.remote_replicas.empty()
             ? "/remote"
             : (request.shard.process ? "/proc" : "/thread"));
  }
  std::shared_ptr<Valuator> valuator;
  bool fit_cancelled = false;
  {
    // The fit split is measured unconditionally (two clock reads on an
    // uncached request) so FormatStatusLine can always tell a cold fit
    // from a fast reuse; the trace span reuses the same interval.
    WallTimer fit_timer;
    // A throwing factory/Fit (or an injected `fit` fault) must become a
    // structured response here: Value() runs on pool worker threads, and
    // an escaped exception would take the process down with it.
    try {
      valuator = GetOrFit(fitted_key, request, params, &report.fit_reused,
                          &fit_cancelled);
    } catch (const std::exception& e) {
      report.status = Status::Error(
          StatusCode::kInternal,
          "method '" + request.method + "' fit failed: " + e.what());
    } catch (...) {
      report.status = Status::Error(
          StatusCode::kInternal, "method '" + request.method + "' fit failed");
    }
    report.fit_seconds = fit_timer.Seconds();
    if (trace != nullptr) {
      trace->Add(Phase::kFit,
                 static_cast<uint64_t>(report.fit_seconds * 1e9));
    }
    if (!report.status.ok()) return report;
  }
  if (fit_cancelled) {
    RecordDeadlineExceeded(cancel);
    report.status = Status::DeadlineExceeded("deadline exceeded");
    return report;
  }
  if (valuator == nullptr) {
    report.status = Status::Error(
        StatusCode::kInternal,
        "method '" + request.method + "' failed to construct or fit");
    return report;
  }
  {
    ScopedPhase span(trace, Phase::kValue);
    report.values =
        Run(*valuator, *request.test, request.parallel, trace, cancel);
  }
  // A deadline that fired mid-run left right-sized garbage in the partial
  // result: discard it, answer the structured error, and keep it out of
  // the cache.
  if (cancel != nullptr && cancel->Expired()) {
    RecordDeadlineExceeded(cancel);
    report.values.clear();
    report.status = Status::DeadlineExceeded("deadline exceeded");
    return report;
  }
  // A valuator that degraded mid-run (a shard worker died) latches
  // Health() non-OK and its queries merged nothing. The dead structure is
  // evicted so the NEXT request re-fits (respawning workers), and this
  // request answers the latched status — typically Unavailable, which the
  // serve layer decorates with retry_after_ms. Never a partial result.
  if (Status health = valuator->Health(); !health.ok()) {
    {
      std::lock_guard<std::mutex> lock(fitted_mutex_);
      auto it = fitted_index_.find(fitted_key);
      if (it != fitted_index_.end()) {
        fitted_.erase(it->second);
        fitted_index_.erase(it);
      }
    }
    report.values.clear();
    report.status = std::move(health);
    return report;
  }
  {
    ScopedPhase span(trace, Phase::kFinalize);
    report.summary = Summarize(report.values);
  }

  if (request.use_cache) {
    ScopedPhase span(trace, Phase::kCacheStore);
    cache_.Put(cache_key,
               std::make_shared<const std::vector<double>>(report.values));
  }
  report.cache = cache_.Counters();
  return report;
}

ValuationEngine::MethodMetrics& ValuationEngine::MetricsFor(
    const std::string& method) {
  std::lock_guard<std::mutex> lock(method_metrics_mutex_);
  auto it = method_metrics_.find(method);
  if (it == method_metrics_.end()) {
    MethodMetrics handles;
    handles.requests = options_.metrics->GetCounter(
        "knnshap_requests_total{method=\"" + method + "\"}");
    handles.errors = options_.metrics->GetCounter(
        "knnshap_request_errors_total{method=\"" + method + "\"}");
    handles.seconds = options_.metrics->GetHistogram(
        "knnshap_request_seconds{method=\"" + method + "\"}");
    it = method_metrics_.emplace(method, handles).first;
  }
  return it->second;
}

void ValuationEngine::RecordMetrics(const ValuationReport& report,
                                    const RequestTrace& trace) {
  MethodMetrics& handles = MetricsFor(report.method);
  handles.requests->Add(1);
  if (!report.ok()) handles.errors->Add(1);
  handles.seconds->Observe(report.seconds);
  for (size_t i = 0; i < kNumPhases; ++i) {
    const uint64_t nanos = trace.Nanos(static_cast<Phase>(i));
    if (nanos != 0) phase_nanos_[i]->Add(nanos);
  }
}

std::shared_ptr<Valuator> ValuationEngine::GetOrFit(const FittedKey& key,
                                                    const ValuationRequest& request,
                                                    const ValuatorParams& params,
                                                    bool* reused,
                                                    bool* cancelled) {
  // Per-corpus fit locking: the engine mutex covers only the bookkeeping.
  // The first request for a key installs an in-progress slot and fits
  // *outside* the lock; duplicates for the same key wait on the slot (the
  // same kd-tree / LSH index must not be built twice), while cold fits of
  // different corpora — previously serialized here — overlap freely.
  //
  // Cancellation makes this a retry loop: an owner whose deadline expires
  // releases the slot as `cancelled` without a valuator, and its waiters
  // come back around — one becomes the new owner — so one client's
  // deadline never costs another client its fit.
  const CancelToken* cancel = request.cancel.get();
  for (;;) {
    if (cancel != nullptr && cancel->Expired()) {
      *cancelled = true;
      return nullptr;
    }
    std::shared_ptr<FitSlot> slot;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(fitted_mutex_);
      auto it = fitted_index_.find(key);
      if (it != fitted_index_.end()) {
        fitted_.splice(fitted_.begin(), fitted_, it->second);
        ++fit_reuses_;
        *reused = true;
        return it->second->second;
      }
      auto fit_it = fitting_.find(key);
      if (fit_it != fitting_.end()) {
        slot = fit_it->second;
      } else {
        slot = std::make_shared<FitSlot>();
        fitting_[key] = slot;
        owner = true;
      }
    }

    if (!owner) {
      std::unique_lock<std::mutex> wait_lock(slot->mutex);
      slot->done_cv.wait(wait_lock, [&] { return slot->done; });
      if (slot->cancelled) continue;  // owner gave up its deadline; retry
      if (slot->valuator == nullptr) return nullptr;  // owner's fit failed
      std::lock_guard<std::mutex> lock(fitted_mutex_);
      ++fit_reuses_;
      *reused = true;  // someone else paid for the fit
      return slot->valuator;
    }

    // Retires this owner's slot with the given outcome and wakes waiters.
    auto retire = [&](std::shared_ptr<Valuator> outcome, bool was_cancelled) {
      {
        std::lock_guard<std::mutex> lock(fitted_mutex_);
        fitting_.erase(key);
      }
      {
        std::lock_guard<std::mutex> done_lock(slot->mutex);
        slot->valuator = std::move(outcome);
        slot->cancelled = was_cancelled;
        slot->done = true;
      }
      slot->done_cv.notify_all();
    };

    // The factory is an arbitrary std::function and Fit may allocate large
    // structures: if either throws (or the injected `fit` fault fires),
    // the slot must still be retired and the waiters released (with a null
    // valuator -> internal-error response), or every future request for
    // this key would block forever.
    std::shared_ptr<Valuator> valuator;
    try {
      if (FaultInjectionEnabled() && Fault("fit")) {
        throw std::runtime_error("injected fit fault");
      }
      // The token stays active during the fit so a Fit implementation may
      // poll it; expiry is also checked when the fit returns.
      if (request.shard.count > 1 && ShardedValuatorSupports(request.method)) {
        ShardedValuatorSpec spec;
        spec.shard_count = request.shard.count;
        spec.process = request.shard.process;
        spec.worker_command = request.shard.worker_command;
        spec.remote_replicas = request.shard.remote_replicas;
        spec.connect_timeout_ms = request.shard.connect_timeout_ms;
        spec.io_timeout_ms = request.shard.io_timeout_ms;
        spec.connect_attempts = request.shard.connect_attempts;
        spec.metrics = options_.metrics;
        spec.train_digests = request.shard.train_digests;
        spec.corpus_name = request.shard.corpus_name;
        valuator = MakeShardedValuator(request.method, params, std::move(spec));
      } else {
        valuator = registry_->Create(request.method, params);
      }
      if (valuator != nullptr) valuator->Fit(request.train);
    } catch (...) {
      retire(nullptr, /*was_cancelled=*/false);
      throw;
    }

    // Deadline expired while fitting: whether Fit finished or bailed at a
    // poll, the structure is not trusted — release the slot (waiters
    // retry, a fresh owner refits) and answer deadline_exceeded. The
    // registry holds no trace of this attempt.
    if (cancel != nullptr && cancel->Expired()) {
      retire(nullptr, /*was_cancelled=*/true);
      *cancelled = true;
      return nullptr;
    }

    {
      std::lock_guard<std::mutex> lock(fitted_mutex_);
      fitting_.erase(key);
      // An InvalidateTrain that raced this fit poisoned the slot: the
      // valuator still answers the requests already waiting on it, but the
      // dead corpus's structure must not enter the resident set.
      if (valuator != nullptr && !slot->invalidated) {
        fitted_.emplace_front(key, valuator);
        fitted_index_[key] = fitted_.begin();
        while (fitted_.size() > std::max<size_t>(options_.fitted_capacity, 1)) {
          fitted_index_.erase(fitted_.back().first);
          fitted_.pop_back();
        }
      }
    }
    {
      std::lock_guard<std::mutex> done_lock(slot->mutex);
      slot->valuator = valuator;
      slot->done = true;
    }
    slot->done_cv.notify_all();
    *reused = false;
    return valuator;
  }
}

std::vector<double> ValuationEngine::Run(const Valuator& valuator,
                                         const Dataset& test, bool parallel,
                                         RequestTrace* trace,
                                         const CancelToken* cancel) const {
  // Deep per-query spans (distance/sort/retrieve/recursion, recorded by
  // the shared kernels through the thread-local active trace) are opt-in:
  // a metrics-only trace never reaches worker threads.
  RequestTrace* deep = (trace != nullptr && trace->deep) ? trace : nullptr;
  if (!valuator.SupportsPerQuery()) {
    TraceActivation activation(deep);
    CancelActivation cancel_scope(cancel);
    return valuator.ValueBatch(test);
  }
  // Shard queries across the pool (ParallelFor hands out contiguous
  // blocks). Per-query results are folded into the accumulator strictly in
  // query order, so neither thread count nor chunking can change a single
  // bit of the output — which lets the scheduler bound resident memory to
  // O(chunk * N) instead of O(num_queries * N) on huge batches.
  const size_t chunk =
      std::min<size_t>(std::max<size_t>(options_.max_resident_queries, 1),
                       test.Size());
  std::vector<double> sv(valuator.Train().Size(), 0.0);
  std::vector<std::vector<double>> per_query(chunk);
  for (size_t start = 0; start < test.Size(); start += chunk) {
    const size_t count = std::min(chunk, test.Size() - start);
    auto run_one = [&](size_t j) {
      TraceActivation activation(deep);
      CancelActivation cancel_scope(cancel);
      // Queries past an expired deadline are skipped outright; queries in
      // flight bail at the deep loops' own block-granularity polls. Either
      // way the caller observes Expired() and discards the whole result.
      if (cancel != nullptr && cancel->Expired()) return;
      per_query[j] = valuator.ValueOne(test, start + j);
    };
    if (parallel && count > 1) {
      ThreadPool::Shared().ParallelFor(count, run_one);
    } else {
      for (size_t j = 0; j < count; ++j) run_one(j);
    }
    ScopedPhase span(trace, Phase::kMerge);
    for (size_t j = 0; j < count; ++j) {
      // Skipped (cancelled) queries left empty vectors; merging them
      // would be a size mismatch.
      if (!per_query[j].empty()) valuator.MergeInto(&sv, per_query[j]);
      per_query[j] = {};  // release before the next chunk computes
    }
    if (cancel != nullptr && cancel->Expired()) break;
  }
  {
    ScopedPhase span(trace, Phase::kFinalize);
    valuator.Finalize(&sv, test.Size());
  }
  return sv;
}

size_t ValuationEngine::FittedCount() const {
  std::lock_guard<std::mutex> lock(fitted_mutex_);
  return fitted_.size();
}

std::unordered_map<uint64_t, size_t> ValuationEngine::FittedByTrain() const {
  std::lock_guard<std::mutex> lock(fitted_mutex_);
  std::unordered_map<uint64_t, size_t> counts;
  for (const auto& [key, valuator] : fitted_) {
    ++counts[key.train_fingerprint];
  }
  return counts;
}

uint64_t ValuationEngine::FitReuses() const {
  std::lock_guard<std::mutex> lock(fitted_mutex_);
  return fit_reuses_;
}

void ValuationEngine::InvalidateAll() {
  cache_.Clear();
  std::lock_guard<std::mutex> lock(fitted_mutex_);
  fitted_.clear();
  fitted_index_.clear();
  for (auto& [key, slot] : fitting_) slot->invalidated = true;
}

ValuationEngine::InvalidationStats ValuationEngine::InvalidateTrain(
    uint64_t train_fingerprint) {
  InvalidationStats stats;
  stats.cache_evicted = cache_.EraseFingerprint(train_fingerprint);
  std::lock_guard<std::mutex> lock(fitted_mutex_);
  // Poison in-flight fits of this corpus so they finish without
  // installing (their waiters are still served; the structure is dropped).
  for (auto& [key, slot] : fitting_) {
    if (key.train_fingerprint == train_fingerprint) slot->invalidated = true;
  }
  for (auto it = fitted_.begin(); it != fitted_.end();) {
    if (it->first.train_fingerprint == train_fingerprint) {
      fitted_index_.erase(it->first);
      it = fitted_.erase(it);
      ++stats.fitted_evicted;
    } else {
      ++it;
    }
  }
  return stats;
}

}  // namespace knnshap
