// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "engine/engine.h"

#include <algorithm>
#include <utility>

#include "util/fingerprint.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace knnshap {

size_t ValuationEngine::FittedKeyHash::operator()(const FittedKey& key) const {
  Fnv64 hash;
  hash.Add(key.train_fingerprint);
  hash.AddString(key.method);
  hash.Add(key.params_fingerprint);
  return static_cast<size_t>(hash.Digest());
}

ValuationEngine::ValuationEngine(const EngineOptions& options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &ValuatorRegistry::Global()),
      cache_(options.result_cache_capacity) {}

ValuationReport ValuationEngine::Value(const ValuationRequest& request) {
  ValuationReport report;
  report.method = request.method;
  WallTimer timer;

  // --- Request validation: errors are responses, not aborts. ------------
  if (!registry_->Contains(request.method)) {
    report.error = "unknown method '" + request.method + "' (registered: " +
                   registry_->MethodNames() + ")";
    return report;
  }
  if (request.train == nullptr || request.train->Size() == 0) {
    report.error = "empty training set";
    return report;
  }
  if (request.test == nullptr || request.test->Size() == 0) {
    report.error = "empty test batch";
    return report;
  }
  if (request.train->Dim() != request.test->Dim()) {
    report.error = "train/test dimension mismatch";
    return report;
  }
  std::unique_ptr<Valuator> probe = registry_->Create(request.method, request.params);
  if (probe == nullptr) {
    report.error = "factory for '" + request.method + "' returned null";
    return report;
  }
  if (probe->RequiresLabels() &&
      (!request.train->HasLabels() || !request.test->HasLabels())) {
    report.error = "method '" + request.method + "' requires labeled data";
    return report;
  }
  if (probe->RequiresTargets() &&
      (!request.train->HasTargets() || !request.test->HasTargets())) {
    report.error = "method '" + request.method + "' requires regression targets";
    return report;
  }

  report.train_size = request.train->Size();
  report.num_queries = request.test->Size();

  const uint64_t train_fp = request.train_fingerprint != 0
                                ? request.train_fingerprint
                                : DatasetFingerprint(*request.train);
  const uint64_t test_fp = request.test_fingerprint != 0
                               ? request.test_fingerprint
                               : DatasetFingerprint(*request.test);
  const uint64_t params_fp = request.params.Fingerprint();

  // --- Result cache. ----------------------------------------------------
  ResultCacheKey cache_key{train_fp, test_fp, request.method, params_fp};
  if (request.use_cache) {
    if (auto cached = cache_.Get(cache_key)) {
      report.values = *cached;
      report.summary = Summarize(report.values);
      report.cache_hit = true;
      report.cache = cache_.Counters();
      report.seconds = timer.Seconds();
      return report;
    }
  }

  // --- Fit (or reuse) and run. ------------------------------------------
  FittedKey fitted_key{train_fp, request.method, params_fp};
  std::shared_ptr<Valuator> valuator =
      GetOrFit(fitted_key, request, &report.fit_reused);
  report.values = Run(*valuator, *request.test, request.parallel);
  report.summary = Summarize(report.values);

  if (request.use_cache) {
    cache_.Put(cache_key,
               std::make_shared<const std::vector<double>>(report.values));
  }
  report.cache = cache_.Counters();
  report.seconds = timer.Seconds();
  return report;
}

std::shared_ptr<Valuator> ValuationEngine::GetOrFit(const FittedKey& key,
                                                    const ValuationRequest& request,
                                                    bool* reused) {
  // Fitting runs under the lock: concurrent requests for the same corpus
  // must not build the same kd-tree / LSH index twice, and fits are the
  // expensive, rare event in a serving workload.
  std::lock_guard<std::mutex> lock(fitted_mutex_);
  auto it = fitted_index_.find(key);
  if (it != fitted_index_.end()) {
    fitted_.splice(fitted_.begin(), fitted_, it->second);
    ++fit_reuses_;
    *reused = true;
    return it->second->second;
  }
  std::shared_ptr<Valuator> valuator =
      registry_->Create(request.method, request.params);
  valuator->Fit(request.train);
  fitted_.emplace_front(key, valuator);
  fitted_index_[key] = fitted_.begin();
  while (fitted_.size() > std::max<size_t>(options_.fitted_capacity, 1)) {
    fitted_index_.erase(fitted_.back().first);
    fitted_.pop_back();
  }
  *reused = false;
  return valuator;
}

std::vector<double> ValuationEngine::Run(const Valuator& valuator,
                                         const Dataset& test, bool parallel) const {
  if (!valuator.SupportsPerQuery()) {
    return valuator.ValueBatch(test);
  }
  // Shard queries across the pool (ParallelFor hands out contiguous
  // blocks). Per-query results are folded into the accumulator strictly in
  // query order, so neither thread count nor chunking can change a single
  // bit of the output — which lets the scheduler bound resident memory to
  // O(chunk * N) instead of O(num_queries * N) on huge batches.
  const size_t chunk =
      std::min<size_t>(std::max<size_t>(options_.max_resident_queries, 1),
                       test.Size());
  std::vector<double> sv(valuator.Train().Size(), 0.0);
  std::vector<std::vector<double>> per_query(chunk);
  for (size_t start = 0; start < test.Size(); start += chunk) {
    const size_t count = std::min(chunk, test.Size() - start);
    auto run_one = [&](size_t j) {
      per_query[j] = valuator.ValueOne(test, start + j);
    };
    if (parallel && count > 1) {
      ThreadPool::Shared().ParallelFor(count, run_one);
    } else {
      for (size_t j = 0; j < count; ++j) run_one(j);
    }
    for (size_t j = 0; j < count; ++j) {
      valuator.MergeInto(&sv, per_query[j]);
      per_query[j] = {};  // release before the next chunk computes
    }
  }
  valuator.Finalize(&sv, test.Size());
  return sv;
}

size_t ValuationEngine::FittedCount() const {
  std::lock_guard<std::mutex> lock(fitted_mutex_);
  return fitted_.size();
}

uint64_t ValuationEngine::FitReuses() const {
  std::lock_guard<std::mutex> lock(fitted_mutex_);
  return fit_reuses_;
}

void ValuationEngine::InvalidateAll() {
  cache_.Clear();
  std::lock_guard<std::mutex> lock(fitted_mutex_);
  fitted_.clear();
  fitted_index_.clear();
}

ValuationEngine::InvalidationStats ValuationEngine::InvalidateTrain(
    uint64_t train_fingerprint) {
  InvalidationStats stats;
  stats.cache_evicted = cache_.EraseFingerprint(train_fingerprint);
  std::lock_guard<std::mutex> lock(fitted_mutex_);
  for (auto it = fitted_.begin(); it != fitted_.end();) {
    if (it->first.train_fingerprint == train_fingerprint) {
      fitted_index_.erase(it->first);
      it = fitted_.erase(it);
      ++stats.fitted_evicted;
    } else {
      ++it;
    }
  }
  return stats;
}

}  // namespace knnshap
