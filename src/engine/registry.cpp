// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "engine/registry.h"

namespace knnshap {

ValuatorRegistry& ValuatorRegistry::Global() {
  static ValuatorRegistry* registry = [] {
    auto* r = new ValuatorRegistry();
    RegisterBuiltinValuators(r);
    return r;
  }();
  return *registry;
}

void ValuatorRegistry::Register(const std::string& name,
                                const std::string& description,
                                ValuatorFactory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[name] = Entry{description, std::move(factory)};
}

bool ValuatorRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) > 0;
}

std::unique_ptr<Valuator> ValuatorRegistry::Create(
    const std::string& name, const ValuatorParams& params) const {
  ValuatorFactory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) return nullptr;
    factory = it->second.factory;
  }
  return factory(params);
}

std::vector<MethodInfo> ValuatorRegistry::Methods() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MethodInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(MethodInfo{name, entry.description});
  }
  return out;
}

std::string ValuatorRegistry::MethodNames() const {
  std::string out;
  for (const auto& info : Methods()) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

}  // namespace knnshap
