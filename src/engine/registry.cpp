// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "engine/registry.h"

namespace knnshap {

ValuatorRegistry& ValuatorRegistry::Global() {
  static ValuatorRegistry* registry = [] {
    auto* r = new ValuatorRegistry();
    RegisterBuiltinValuators(r);
    return r;
  }();
  return *registry;
}

void ValuatorRegistry::Register(MethodSchema schema, ValuatorFactory factory) {
  KNNSHAP_CHECK(!schema.name.empty(), "schema without a name");
  KNNSHAP_CHECK(!schema.tasks.empty(),
                "schema '" + schema.name + "' declares no tasks");
  std::lock_guard<std::mutex> lock(mutex_);
  std::string name = schema.name;
  entries_[std::move(name)] =
      Entry{std::make_shared<const MethodSchema>(std::move(schema)),
            std::move(factory)};
}

bool ValuatorRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) > 0;
}

std::shared_ptr<const MethodSchema> ValuatorRegistry::Schema(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.schema;
}

std::vector<std::shared_ptr<const MethodSchema>> ValuatorRegistry::Schemas()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const MethodSchema>> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry.schema);
  return out;
}

std::unique_ptr<Valuator> ValuatorRegistry::Create(
    const std::string& name, const ValuatorParams& params) const {
  ValuatorFactory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) return nullptr;
    factory = it->second.factory;
  }
  return factory(params);
}

std::vector<MethodInfo> ValuatorRegistry::Methods() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MethodInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(MethodInfo{name, entry.schema->description});
  }
  return out;
}

Status ValuatorRegistry::UnknownMethodError(const std::string& name) const {
  return Status::NotFound("unknown method '" + name + "' (registered: " +
                          MethodNames() + ")");
}

std::string ValuatorRegistry::MethodNames() const {
  std::string out;
  for (const auto& info : Methods()) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

}  // namespace knnshap
