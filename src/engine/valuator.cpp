// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "engine/valuator.h"

#include "util/common.h"
#include "util/fingerprint.h"

namespace knnshap {

uint64_t ValuatorParams::Fingerprint() const {
  Fnv64 hash;
  hash.Add(k);
  hash.Add(epsilon);
  hash.Add(delta);
  hash.Add(static_cast<int>(task));
  hash.Add(static_cast<int>(weights.kernel));
  hash.Add(weights.epsilon);
  hash.Add(weights.sigma);
  hash.Add(static_cast<int>(metric));
  hash.Add(seed);
  hash.Add(contrast_sample);
  hash.Add(utility_range);
  hash.Add(max_permutations);
  hash.Add(weight_bits);
  hash.Add(approx_error);
  return hash.Digest();
}

void Valuator::Fit(std::shared_ptr<const Dataset> train) {
  KNNSHAP_CHECK(train != nullptr && train->Size() > 0, "empty training set");
  KNNSHAP_CHECK(!Fitted(), "Fit called twice");
  train_ = std::move(train);
  OnFit();
}

const Dataset& Valuator::Train() const {
  KNNSHAP_CHECK(Fitted(), "Valuator not fitted");
  return *train_;
}

std::vector<double> Valuator::ValueOne(const Dataset& /*test*/, size_t /*row*/) const {
  KNNSHAP_CHECK(false, std::string(Method()) + " is batch-only");
}

void Valuator::MergeInto(std::vector<double>* accumulator,
                         const std::vector<double>& one_query) const {
  for (size_t i = 0; i < accumulator->size(); ++i) {
    (*accumulator)[i] += one_query[i];
  }
}

void Valuator::Finalize(std::vector<double>* accumulator,
                        size_t num_queries) const {
  // Same float operation order as the legacy multi-test entry points:
  // divide each component by the query count.
  for (auto& s : *accumulator) s /= static_cast<double>(num_queries);
}

std::vector<double> Valuator::Merge(
    const std::vector<std::vector<double>>& per_query) const {
  KNNSHAP_CHECK(!per_query.empty(), "no per-query values to merge");
  std::vector<double> sv(Train().Size(), 0.0);
  for (const auto& row : per_query) MergeInto(&sv, row);
  Finalize(&sv, per_query.size());
  return sv;
}

std::vector<double> Valuator::ValueBatch(const Dataset& test) const {
  KNNSHAP_CHECK(SupportsPerQuery(),
                std::string(Method()) + " does not implement ValueBatch");
  // Streaming fold: one resident per-query vector, O(N) memory.
  std::vector<double> sv(Train().Size(), 0.0);
  for (size_t j = 0; j < test.Size(); ++j) MergeInto(&sv, ValueOne(test, j));
  Finalize(&sv, test.Size());
  return sv;
}

std::vector<double> Valuator::Value(const Dataset& test) const {
  KNNSHAP_CHECK(Fitted(), "Valuator not fitted");
  KNNSHAP_CHECK(test.Size() > 0, "empty test set");
  KNNSHAP_CHECK(test.Dim() == Train().Dim(), "test dimension mismatch");
  return ValueBatch(test);
}

}  // namespace knnshap
