// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Built-in Valuator adapters, one per algorithm family of the paper:
//
//   exact            Theorem 1 / Algorithm 1   O(N log N) exact recursion
//   exact-corrected  arXiv:2304.04258          min(K,|S|)-normalized utility
//   truncated   Theorem 2                 top-K* truncation, kd-tree retrieval
//   lsh         Theorems 3-4              LSH retrieval, contrast-tuned
//   mc          Algorithm 2 / Theorem 5   improved Monte-Carlo estimator
//   weighted    Theorem 7                 exact weighted KNN, O(N^K)
//   weighted-fast  arXiv:2401.11103       discretized weighted KNN, O(N^2)
//   regression  Theorem 6                 exact unweighted KNN regression
//
// Each adapter is a thin shim over the corresponding src/core function, so
// the engine path produces bit-identical values to the standalone entry
// points (see the contract in engine/valuator.h). The truncated and lsh
// adapters build their retrieval structure once in Fit and reuse it across
// every subsequent batch — the serving win the engine exists for.

#ifndef KNNSHAP_ENGINE_VALUATORS_H_
#define KNNSHAP_ENGINE_VALUATORS_H_

#include <memory>
#include <vector>

#include "core/wknn_shapley.h"
#include "engine/valuator.h"
#include "knn/kd_tree.h"
#include "lsh/lsh_index.h"

namespace knnshap {

/// Exact recursion of Theorem 1. Fit precomputes corpus row norms so each
/// query's distance pass runs the fast kernel path; the norms amortize
/// across every request sharing the corpus, like the kd-tree/LSH reuse.
/// params.approx_error > 0 switches to the truncated-exact path (streaming
/// top-R selection, analytic tail bound reported as approx_bound).
class ExactValuator : public Valuator {
 public:
  using Valuator::Valuator;
  const char* Method() const override { return "exact"; }
  std::vector<double> ValueOne(const Dataset& test, size_t row) const override;

 protected:
  void OnFit() override;

 private:
  CorpusNorms norms_;
};

/// Corrected exact recursion (Wang & Jia, arXiv:2304.04258): the KNN
/// utility normalized by min(K, |S|) — the vote count a soft-label KNN
/// classifier actually uses on coalitions smaller than K — instead of the
/// source paper's constant K. Same O(N log N)/query shape and norm reuse as
/// ExactValuator.
class CorrectedValuator : public Valuator {
 public:
  using Valuator::Valuator;
  const char* Method() const override { return "exact-corrected"; }
  std::vector<double> ValueOne(const Dataset& test, size_t row) const override;

 protected:
  void OnFit() override;

 private:
  CorpusNorms norms_;
};

/// (epsilon, 0)-approximation of Theorem 2: only the K* nearest neighbors
/// carry value. Fit builds a kd-tree over the corpus; each query retrieves
/// exactly the top K* through it.
class TruncatedValuator : public Valuator {
 public:
  using Valuator::Valuator;
  const char* Method() const override { return "truncated"; }
  std::vector<double> ValueOne(const Dataset& test, size_t row) const override;

  int KStarDepth() const { return k_star_; }

 protected:
  void OnFit() override;

 private:
  int k_star_ = 0;
  std::unique_ptr<KdTree> kd_tree_;
};

/// (epsilon, delta)-approximation of Theorem 4: LSH retrieval of the K*
/// nearest neighbors. Fit normalizes a private corpus copy to D_mean = 1,
/// estimates the relative contrast, and builds a Theorem-3-tuned index —
/// the same pipeline as StreamingValuator, and bit-identical to it on any
/// fixed query sequence.
class LshValuator : public Valuator {
 public:
  using Valuator::Valuator;
  const char* Method() const override { return "lsh"; }
  std::vector<double> ValueOne(const Dataset& test, size_t row) const override;
  void Finalize(std::vector<double>* accumulator, size_t num_queries) const override;

  int KStarDepth() const { return k_star_; }
  double Contrast() const { return contrast_; }
  const LshConfig* Config() const { return index_ ? &index_->Config() : nullptr; }

 protected:
  void OnFit() override;

 private:
  Dataset corpus_;  // normalized private copy
  int k_star_ = 0;
  double scale_ = 1.0;
  double contrast_ = 0.0;
  std::unique_ptr<LshIndex> index_;
};

/// Improved Monte-Carlo estimator (Algorithm 2). Batch-only: permutation
/// sampling amortizes over the whole test utility, so there is no per-query
/// decomposition to shard.
class McValuator : public Valuator {
 public:
  using Valuator::Valuator;
  const char* Method() const override { return "mc"; }
  bool SupportsPerQuery() const override { return false; }
  std::vector<double> ValueBatch(const Dataset& test) const override;

 protected:
  void OnFit() override;
};

/// Quadratic-time WKNN-Shapley (arXiv:2401.11103): exact SVs of the
/// discretized-weight Eq-26 classifier in O(N^2 K 4^b)/query, with an
/// optional deterministic truncation budget (params.approx_error). Fit
/// precomputes corpus norms plus the (N, K) coalition-weight tables the
/// ranked-neighbor recursion shares across every query on the corpus.
class WeightedFastValuator : public Valuator {
 public:
  using Valuator::Valuator;
  const char* Method() const override { return "weighted-fast"; }
  std::vector<double> ValueOne(const Dataset& test, size_t row) const override;

 protected:
  void OnFit() override;

 private:
  CorpusNorms norms_;
  std::unique_ptr<WknnCoalitionWeights> coalition_;
};

/// Exact weighted KNN values (Theorem 7), classification or regression per
/// params.task. O(N^K) per query — small K only. Fit caches corpus norms
/// for the per-query distance ordering.
class WeightedValuator : public Valuator {
 public:
  using Valuator::Valuator;
  const char* Method() const override { return "weighted"; }
  std::vector<double> ValueOne(const Dataset& test, size_t row) const override;

 protected:
  void OnFit() override;

 private:
  CorpusNorms norms_;
};

/// Exact unweighted KNN regression values (Theorem 6). Fit caches corpus
/// norms for the per-query distance pass.
class RegressionValuator : public Valuator {
 public:
  using Valuator::Valuator;
  const char* Method() const override { return "regression"; }
  std::vector<double> ValueOne(const Dataset& test, size_t row) const override;

 protected:
  void OnFit() override;

 private:
  CorpusNorms norms_;
};

}  // namespace knnshap

#endif  // KNNSHAP_ENGINE_VALUATORS_H_
