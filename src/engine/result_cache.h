// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// LRU cache of finished valuation results, keyed by the *contents* of the
// request: (train fingerprint, test fingerprint, method, hyperparameter
// fingerprint). Production valuation traffic is highly repetitive — the
// same corpus is re-valued whenever a marketplace report, a pricing run and
// a mislabel sweep all ask for the same values — and a hit returns the
// stored vector without touching the corpus. Hit/miss/eviction counters
// are surfaced through ValuationReport.

#ifndef KNNSHAP_ENGINE_RESULT_CACHE_H_
#define KNNSHAP_ENGINE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "market/valuation_report.h"
#include "util/status.h"

namespace knnshap {

/// Outcome of ResultCache::LoadFrom. `salvaged` is true when the file was
/// truncated or corrupt past its header and only the valid prefix was
/// merged; `warning` then says where parsing stopped. A clean load has
/// `salvaged == false` and an empty warning.
struct CacheLoadResult {
  size_t entries = 0;
  bool salvaged = false;
  std::string warning;
};

/// Content-derived identity of a valuation request.
struct ResultCacheKey {
  uint64_t train_fingerprint = 0;
  uint64_t test_fingerprint = 0;
  std::string method;
  uint64_t params_fingerprint = 0;

  bool operator==(const ResultCacheKey& other) const = default;
};

/// Thread-safe LRU cache of value vectors.
class ResultCache {
 public:
  /// `capacity` = maximum resident entries; 0 disables caching entirely
  /// (every Get misses, every Put is dropped).
  explicit ResultCache(size_t capacity = 64);

  /// Returns the cached values and refreshes recency, or nullptr on miss.
  /// The vector is shared, not copied; callers must not mutate it.
  std::shared_ptr<const std::vector<double>> Get(const ResultCacheKey& key);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry when over capacity.
  void Put(const ResultCacheKey& key, std::shared_ptr<const std::vector<double>> values);

  /// Drops all entries (counters are retained).
  void Clear();

  /// Drops every entry whose train *or* test fingerprint equals
  /// `fingerprint` (a dropped or mutated corpus may appear on either side
  /// of a request). Returns the number of entries erased; they do not
  /// count as evictions.
  size_t EraseFingerprint(uint64_t fingerprint);

  /// Serializes the resident entries (MRU first) to a versioned binary
  /// file so a restarted server warm-starts. Native endianness — the file
  /// is a same-machine restart artifact, not an interchange format.
  ///
  /// The write is ATOMIC: bytes go to `path + ".tmp"`, are fsync'd, and
  /// replace `path` with a rename only once durable. A failed or
  /// interrupted save therefore leaves any previous snapshot at `path`
  /// readable and untouched. Each entry carries an FNV-64 checksum so a
  /// torn or bit-flipped file is detected at load. Returns the number of
  /// entries written.
  StatusOr<size_t> SaveTo(const std::string& path) const;

  /// Merges entries from a SaveTo file into the cache (least recent
  /// first, so relative recency survives the round trip; capacity and
  /// eviction apply as usual). A missing file is not_found; a file whose
  /// HEADER is corrupt (bad magic, unsupported version, missing count) is
  /// data_loss with nothing loaded. A file corrupt PAST the header —
  /// truncated mid-entry, bad checksum, absurd length field — is
  /// salvaged: every entry before the damage is merged and the result
  /// reports `salvaged = true` plus a warning, so a crash-torn snapshot
  /// still warm-starts the valid prefix.
  StatusOr<CacheLoadResult> LoadFrom(const std::string& path);

  size_t Size() const;
  size_t Capacity() const { return capacity_; }

  /// Resident value-vector payload in bytes (entries × train_size × 8;
  /// key/bookkeeping overhead excluded). Maintained incrementally — this
  /// is what `stats` reports so operators can size --cache for a corpus.
  size_t BytesUsed() const;

  /// Lifetime hit/miss/eviction counts.
  CacheCounters Counters() const;

 private:
  struct KeyHash {
    size_t operator()(const ResultCacheKey& key) const;
  };
  // MRU-first list; the map indexes into it.
  using LruList =
      std::list<std::pair<ResultCacheKey, std::shared_ptr<const std::vector<double>>>>;

  size_t capacity_;
  mutable std::mutex mutex_;
  LruList entries_;
  std::unordered_map<ResultCacheKey, LruList::iterator, KeyHash> index_;
  CacheCounters counters_;
  size_t bytes_ = 0;  // payload bytes of resident entries
};

}  // namespace knnshap

#endif  // KNNSHAP_ENGINE_RESULT_CACHE_H_
