// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// String-keyed valuation method registry: methods are selected by config
// ("exact", "lsh", ...) rather than by #include, so new algorithms — e.g.
// the corrected WKNN-Shapley recursion of Wang & Jia (arXiv:2304.04258) —
// plug in by registering a factory instead of growing another parallel
// entry point.

#ifndef KNNSHAP_ENGINE_REGISTRY_H_
#define KNNSHAP_ENGINE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/valuator.h"

namespace knnshap {

/// Creates an unfitted valuator from hyperparameters.
using ValuatorFactory =
    std::function<std::unique_ptr<Valuator>(const ValuatorParams&)>;

/// Registered metadata of a valuation method.
struct MethodInfo {
  std::string name;         ///< Registry key.
  std::string description;  ///< One line, including the paper section.
};

/// Process-wide registry of valuation methods.
class ValuatorRegistry {
 public:
  /// The global registry, with the built-in methods pre-registered.
  static ValuatorRegistry& Global();

  /// Registers a method; re-registering a name replaces the factory (tests
  /// use this to inject instrumented valuators).
  void Register(const std::string& name, const std::string& description,
                ValuatorFactory factory);

  bool Contains(const std::string& name) const;

  /// Instantiates an unfitted valuator; nullptr for an unknown method.
  std::unique_ptr<Valuator> Create(const std::string& name,
                                   const ValuatorParams& params) const;

  /// Registered methods, sorted by name.
  std::vector<MethodInfo> Methods() const;

  /// "a, b, c" — for error messages.
  std::string MethodNames() const;

 private:
  ValuatorRegistry() = default;

  struct Entry {
    std::string description;
    ValuatorFactory factory;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// Registers the six built-in adapters (exact, truncated, lsh, mc,
/// weighted, regression). Called once by ValuatorRegistry::Global(); safe
/// to call again (idempotent re-registration).
void RegisterBuiltinValuators(ValuatorRegistry* registry);

}  // namespace knnshap

#endif  // KNNSHAP_ENGINE_REGISTRY_H_
