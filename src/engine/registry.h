// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// String-keyed valuation method registry: methods are selected by config
// ("exact", "lsh", ...) rather than by #include, so new algorithms — e.g.
// the corrected WKNN-Shapley recursion of Wang & Jia (arXiv:2304.04258) —
// plug in by registering a factory instead of growing another parallel
// entry point. Each registration carries the method's MethodSchema (its
// declared hyperparameters, supported tasks and capability flags); the
// schema is the single source of truth the serve pipeline, the CLI, the
// cache fingerprints and the describe/--help introspection all derive
// from.

#ifndef KNNSHAP_ENGINE_REGISTRY_H_
#define KNNSHAP_ENGINE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/schema.h"
#include "engine/valuator.h"

namespace knnshap {

/// Creates an unfitted valuator from hyperparameters.
using ValuatorFactory =
    std::function<std::unique_ptr<Valuator>(const ValuatorParams&)>;

/// Registered metadata of a valuation method (the short listing; the full
/// descriptor is the MethodSchema).
struct MethodInfo {
  std::string name;         ///< Registry key.
  std::string description;  ///< One line, including the paper section.
};

/// Process-wide registry of valuation methods.
class ValuatorRegistry {
 public:
  /// The global registry, with the built-in methods pre-registered.
  static ValuatorRegistry& Global();

  /// Tests may construct private registries to inject instrumented
  /// valuators without touching the global one.
  ValuatorRegistry() = default;

  /// Registers a method under schema.name; re-registering a name replaces
  /// the schema and factory (tests use this to inject instrumented
  /// valuators).
  void Register(MethodSchema schema, ValuatorFactory factory);

  bool Contains(const std::string& name) const;

  /// The method's declarative descriptor; nullptr for an unknown method.
  /// Shared ownership so a held schema survives re-registration.
  std::shared_ptr<const MethodSchema> Schema(const std::string& name) const;

  /// All registered schemas, sorted by name (the describe op's source).
  std::vector<std::shared_ptr<const MethodSchema>> Schemas() const;

  /// Instantiates an unfitted valuator; nullptr for an unknown method.
  std::unique_ptr<Valuator> Create(const std::string& name,
                                   const ValuatorParams& params) const;

  /// Registered methods, sorted by name.
  std::vector<MethodInfo> Methods() const;

  /// "a, b, c" — for error messages.
  std::string MethodNames() const;

  /// The canonical not_found status for an unresolved method name —
  /// "unknown method 'x' (registered: a, b, c)". Every surface (engine,
  /// serve, CLI) answers this one wording so it cannot drift.
  Status UnknownMethodError(const std::string& name) const;

 private:
  struct Entry {
    std::shared_ptr<const MethodSchema> schema;
    ValuatorFactory factory;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// Registers the built-in adapters (exact, exact-corrected, truncated,
/// lsh, mc, weighted, regression) with their schemas. Called once by
/// ValuatorRegistry::Global(); safe to call again (idempotent
/// re-registration).
void RegisterBuiltinValuators(ValuatorRegistry* registry);

}  // namespace knnshap

#endif  // KNNSHAP_ENGINE_REGISTRY_H_
