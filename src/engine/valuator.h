// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// The unified valuation interface behind the engine. Each algorithm of the
// paper is exposed as a Valuator: Fit(train) once (building whatever
// retrieval structure the method needs — a kd-tree, a tuned LSH index, or
// nothing), then Value per test batch, many times. Methods whose multi-test
// value decomposes per query (additivity, Eq 8) implement ValueOne and let
// the ValuationEngine shard queries across the shared thread pool; methods
// that only make sense over a whole batch (the Monte-Carlo estimator, whose
// permutation sampling amortizes over the full test utility) implement
// BatchValue instead.
//
// Bitwise-compatibility contract: for per-query methods the engine merges
// per-query vectors in query order and divides by the query count — the
// exact float operation order of the pre-engine entry points
// (ExactKnnShapley et al.) — so routing through the engine changes no bits
// of any result, serial or parallel.

#ifndef KNNSHAP_ENGINE_VALUATOR_H_
#define KNNSHAP_ENGINE_VALUATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/utility.h"
#include "dataset/dataset.h"
#include "knn/metric.h"
#include "knn/weights.h"
#include "util/status.h"

namespace knnshap {

/// Hyperparameters shared by all valuation methods. Each adapter reads the
/// fields it understands and ignores the rest; which fields a method reads
/// is declared in its MethodSchema (engine/schema.h), and cache keys hash
/// only those declared fields — so changing an undeclared field (e.g.
/// `seed` for the deterministic exact method) invalidates nothing.
struct ValuatorParams {
  int k = 5;                      ///< KNN hyperparameter.
  double epsilon = 0.1;           ///< Approximation budget (Theorems 2/4/5).
  double delta = 0.1;             ///< Failure probability (Theorems 4/5).
  KnnTask task = KnnTask::kClassification;
  WeightConfig weights;           ///< Kernel for the weighted methods.
  Metric metric = Metric::kL2;
  uint64_t seed = 7;              ///< Seed for MC sampling / LSH hashing.
  size_t contrast_sample = 500;   ///< Corpus rows sampled for contrast.
  double utility_range = 0.0;     ///< MC utility range r; 0 = auto (1/k).
  int64_t max_permutations = -1;  ///< MC cap; <0 = stopping rule only.
  int weight_bits = 3;            ///< weighted-fast discretization width.
  double approx_error = 0.0;      ///< weighted-fast truncation budget; 0 = exact.

  /// Content hash over *every* field — the legacy whole-struct identity.
  /// The engine's default keys are method-scoped (MethodSchema::
  /// ParamsFingerprint over declared fields only); this remains as the
  /// compatibility shim behind EngineOptions::method_scoped_fingerprints
  /// = false and as the conservative identity for callers with no schema.
  uint64_t Fingerprint() const;
};

/// A valuation method fitted to a training corpus.
class Valuator {
 public:
  explicit Valuator(ValuatorParams params) : params_(std::move(params)) {}
  virtual ~Valuator() = default;

  Valuator(const Valuator&) = delete;
  Valuator& operator=(const Valuator&) = delete;

  /// Registry key of the method ("exact", "lsh", ...).
  virtual const char* Method() const = 0;

  /// Fits the valuator to `train`: keeps a reference and builds the
  /// method's retrieval structure. Must be called exactly once before any
  /// Value call; the engine reuses a fitted valuator across requests that
  /// share a corpus. Aborts (KNNSHAP_CHECK) on data the method cannot
  /// value, e.g. a corpus without labels for a classification method.
  void Fit(std::shared_ptr<const Dataset> train);
  bool Fitted() const { return train_ != nullptr; }

  /// True when the multi-test value is the mean of per-query values (Eq 8)
  /// and ValueOne is implemented; the engine then parallelizes over
  /// queries. False for batch-only methods (ValueBatch is used instead).
  virtual bool SupportsPerQuery() const { return true; }

  /// Dense per-query values, indexed by training row. Must be const and
  /// thread-safe after Fit (the engine calls it concurrently).
  virtual std::vector<double> ValueOne(const Dataset& test, size_t row) const;

  /// Folds one query's values into the running accumulator. The engine
  /// calls this strictly in query order — the accumulation order is the
  /// bitwise contract, so the scheduler may bound how many per-query
  /// vectors are resident without changing a single output bit.
  virtual void MergeInto(std::vector<double>* accumulator,
                         const std::vector<double>& one_query) const;

  /// Final normalization after all queries are folded in. Default: divide
  /// by the query count — the legacy operation order. The LSH adapter
  /// overrides this to match the streaming path's multiply-by-reciprocal.
  virtual void Finalize(std::vector<double>* accumulator, size_t num_queries) const;

  /// Convenience: MergeInto in order + Finalize over fully materialized
  /// per-query results (tests use this to cross-check the scheduler).
  std::vector<double> Merge(const std::vector<std::vector<double>>& per_query) const;

  /// Whole-batch valuation for methods with SupportsPerQuery() == false.
  virtual std::vector<double> ValueBatch(const Dataset& test) const;

  /// Liveness of the fitted structure. In-process valuators are always
  /// healthy; the sharded valuator latches a non-OK status when a worker
  /// process dies or answers garbage (ValueOne must stay noexcept-ish on
  /// pool threads, so failures surface here). The engine checks after
  /// every Run: a non-OK health evicts the fitted entry — the next
  /// request re-fits, respawning workers — and the current request is
  /// answered with that status instead of a partial merge.
  virtual Status Health() const { return Status::Ok(); }

  /// Serial convenience entry (primarily for tests and tools that bypass
  /// the engine): per-query loop + Merge, or ValueBatch.
  std::vector<double> Value(const Dataset& test) const;

  const ValuatorParams& Params() const { return params_; }
  const Dataset& Train() const;

 protected:
  /// Hook for building method-specific structures; runs inside Fit after
  /// train_ is set.
  virtual void OnFit() {}

  ValuatorParams params_;
  std::shared_ptr<const Dataset> train_;
};

}  // namespace knnshap

#endif  // KNNSHAP_ENGINE_VALUATOR_H_
