// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Declarative method descriptors — the single source of truth for the
// engine's public API. Every registered Valuator publishes a MethodSchema:
// which hyperparameters it reads (typed ParamSpecs with defaults, valid
// ranges and doc strings), which KNN tasks it supports, and capability
// flags such as per-query decomposability. Everything else derives from
// the schema instead of being hand-rolled per surface:
//
//   * JSON request parsing/validation in the serve pipeline and flag
//     parsing in knnshap_value both run through ApplyJsonParams /
//     ApplyCliParams, so an out-of-range "epsilon" answers the identical
//     structured error (code, message, offending field) on both paths;
//   * cache and fitted-valuator fingerprints hash only the params a
//     method declares (ParamsFingerprint), so e.g. an "exact" result
//     survives a "seed" change and mixed-method traffic hits more;
//   * the serve "describe" op and the CLI --describe/--help text are
//     generated from the same specs.
//
// The parameter *vocabulary* is global (ParamVocabulary: every spec knows
// how to read/write its ValuatorParams field); a method's schema selects
// the subset it declares. A request field naming a vocabulary param the
// method does not declare is accepted — validated against the spec's range
// but neither applied nor fingerprinted — while a field outside the
// vocabulary (and the protocol whitelist) is an invalid_argument naming
// the field.

#ifndef KNNSHAP_ENGINE_SCHEMA_H_
#define KNNSHAP_ENGINE_SCHEMA_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/valuator.h"
#include "util/status.h"

namespace knnshap {

class CommandLine;
class JsonValue;
class Fnv64;

/// Wire type of a hyperparameter.
enum class ParamType {
  kInt,     ///< Integer-valued number.
  kDouble,  ///< Real-valued number.
  kUint,    ///< Non-negative integer-valued number (seeds, sample counts).
  kEnum,    ///< One of a fixed set of strings.
};

/// Stable name of a ParamType ("int", "double", "uint", "enum").
const char* ParamTypeName(ParamType type);

/// One typed hyperparameter: name, type, valid range, doc string, and the
/// accessors binding it to its ValuatorParams field. Numeric values move
/// through double (the JSON number model); enums move through the index
/// into `enum_values`.
struct ParamSpec {
  std::string name;
  ParamType type = ParamType::kDouble;
  std::string doc;
  double min_value = 0.0;  ///< Inclusive unless min_exclusive.
  double max_value = 0.0;
  bool min_exclusive = false;
  /// The max bound exists only to keep the double→integer casts of the
  /// JSON/CLI parse surfaces defined (e.g. seed ≤ 2^53, the largest
  /// integer a JSON double carries exactly); programmatic ValuatorParams
  /// already hold the native-width value and are not capped by it.
  bool max_is_parse_bound = false;
  std::vector<std::string> enum_values;  ///< kEnum only.

  /// Read/write against ValuatorParams (enum values = index).
  std::function<double(const ValuatorParams&)> get;
  std::function<void(ValuatorParams*, double)> set;
  /// Hashes the field's native representation (exact for uint64 seeds,
  /// where a double round trip would not be).
  std::function<void(const ValuatorParams&, Fnv64*)> add_to_hash;

  /// Default = the field's value on a default-constructed ValuatorParams.
  double DefaultValue() const { return get(ValuatorParams{}); }

  /// Range/type check of a numeric candidate; OK status or
  /// invalid_argument naming this param. Enum specs validate strings via
  /// EnumIndex instead. `parse_surface` = false (engine-side validation of
  /// an already-native ValuatorParams) skips max bounds that exist only
  /// to keep parse-time casts defined (max_is_parse_bound).
  Status ValidateNumber(double value, bool parse_surface = true) const;

  /// Index of `value` in enum_values, or -1.
  int EnumIndex(const std::string& value) const;

  /// "uniform|inverse|gaussian" — for docs and error messages.
  std::string EnumValuesJoined() const;
};

/// The global hyperparameter vocabulary, in canonical order. Every spec's
/// accessors bind to one ValuatorParams field; method schemas reference
/// these by pointer.
const std::vector<ParamSpec>& ParamVocabulary();

/// Vocabulary lookup by name; nullptr when `name` is no known parameter.
const ParamSpec* FindParamSpec(const std::string& name);

/// Stable task names ("classification", "weighted-regression", ...).
const char* TaskName(KnnTask task);

/// Parses a task name; false on an unknown one.
bool ParseTaskName(const std::string& name, KnnTask* task);

/// Declarative descriptor of a registered valuation method.
struct MethodSchema {
  std::string name;         ///< Registry key.
  std::string description;  ///< One line, including the paper section.
  /// Declared hyperparameters (subset of ParamVocabulary, in its order).
  std::vector<const ParamSpec*> params;
  /// Supported KNN tasks; front() is the default. Single-task methods have
  /// their task canonicalized by the engine; multi-task methods validate.
  std::vector<KnnTask> tasks;
  /// Multi-test value decomposes per query (Eq 8) and the engine may shard
  /// queries across threads; false = batch-only (the MC estimator).
  bool per_query = true;
  /// Smallest training corpus the method can value (the LSH pipeline needs
  /// two rows to estimate contrast). The engine rejects smaller corpora
  /// with a structured error so the request never reaches the adapter's
  /// fatal internal check.
  size_t min_train_rows = 1;
  /// Optional joint params-x-data precondition beyond min_train_rows and
  /// the per-param ranges: the engine calls it with the canonicalized
  /// params and the training-corpus size after validation, and a non-OK
  /// status becomes the request's structured response. weighted-fast uses
  /// it to bound its (K, weight_bits) count-table footprint
  /// (WknnTableBudget) so no request reaches a fatal core check.
  std::function<Status(const ValuatorParams&, size_t train_rows)> precondition;
  /// Params listed here are omitted from ParamsToJson (the value-response
  /// echo) while they sit at their default value. Retrofitting a parameter
  /// onto a long-lived method (approx_error on exact/exact-corrected) would
  /// otherwise change the params echo of every existing default request —
  /// a wire-compat break the golden serve transcript pins. Fingerprints are
  /// unaffected: a default-valued param hashes identically either way.
  std::vector<std::string> echo_if_nondefault;
  /// Optional sup-norm error bound of the method's approximation for the
  /// canonicalized params against a corpus of `train_rows` rows. When set
  /// and positive, the engine stores it in ValuationReport::approx_bound
  /// and the serve layer echoes it as "approx_bound". The exact methods use
  /// it to report the analytic truncation bound of the approx_error path.
  std::function<double(const ValuatorParams&, size_t train_rows)> approx_bound;

  bool Declares(const std::string& param_name) const;
  KnnTask DefaultTask() const;
  bool AllowsTask(KnnTask task) const;
  /// "classification, regression" — for error messages.
  std::string TaskNamesJoined() const;

  /// True when the method's tasks need labels (classification family) /
  /// targets (regression family) for the given effective task.
  bool RequiresLabels(KnnTask task) const;
  bool RequiresTargets(KnnTask task) const;

  /// Canonicalizes params->task against `tasks` (single-task methods get
  /// their fixed task; multi-task methods must already carry an allowed
  /// one) and range-checks every declared param. OK, or invalid_argument
  /// naming the offending field.
  Status Canonicalize(ValuatorParams* params) const;

  /// Content hash over the method name plus *declared* params only (and
  /// the task when the method supports more than one): the identity used
  /// for cache keys and fitted-valuator reuse. Undeclared fields cannot
  /// perturb it — changing `seed` does not invalidate an "exact" result.
  uint64_t ParamsFingerprint(const ValuatorParams& params) const;
};

/// Helper for schema construction: resolves vocabulary names, aborting on
/// a typo (registration happens at startup; a bad name is a bug).
std::vector<const ParamSpec*> ResolveParams(
    const std::vector<std::string>& names);

// ---------------------------------------------------------------------------
// Schema-derived parsing — the one validator behind every API surface.
// ---------------------------------------------------------------------------

/// Applies a JSON request's hyperparameter fields onto `params` per the
/// schema: sets the default task then applies "task" and every vocabulary
/// field present. Declared params are range-checked and applied;
/// undeclared vocabulary params are range-checked and ignored. Returns OK
/// or invalid_argument with the offending field. Protocol fields
/// (op/train/test/...) are skipped; reject unknown fields separately with
/// CheckRequestFields. `apply_undeclared` = true restores the legacy
/// behavior of applying every known param regardless of declaration — the
/// serve pipeline uses it together with the whole-struct fingerprint shim
/// so the bench's before/after arms reproduce the pre-schema pipeline
/// exactly.
Status ApplyJsonParams(const MethodSchema& schema, const JsonValue& request,
                       ValuatorParams* params, bool apply_undeclared = false);

/// Rejects request fields that are neither in `allowed` (the protocol
/// whitelist) nor in the parameter vocabulary nor "task" — catching typos
/// like "epsilonn" with a structured error naming the field.
Status CheckRequestFields(const JsonValue& request,
                          const std::vector<std::string>& allowed);

/// The CLI twin of ApplyJsonParams: applies --k/--epsilon/... flags onto
/// `params`. Same specs, same checks, byte-identical error messages — the
/// CLI and the serve pipeline cannot drift. `task_override`, when set,
/// replaces the --task flag's value (the knnshap_value legacy --weighted
/// shim maps classification/regression onto their weighted tasks before
/// validation).
Status ApplyCliParams(const MethodSchema& schema, const CommandLine& cli,
                      ValuatorParams* params,
                      const std::string* task_override = nullptr);

/// Serializes the declared params (and the task for multi-task methods) to
/// a JSON object — the response echo of a value request's effective
/// hyperparameters, and the round-trip half of the schema property tests:
/// ApplyJsonParams(ParamsToJson(p)) reproduces p's fingerprint.
JsonValue ParamsToJson(const MethodSchema& schema, const ValuatorParams& params);

/// Full introspection record of one method — the "describe" op's payload
/// and the source of the generated CLI help: description, capability
/// flags, tasks, and per-param {name,type,default,min,max,doc,values}.
JsonValue SchemaToJson(const MethodSchema& schema);

/// Plain-text rendering of SchemaToJson for `knnshap_value --describe`.
std::string FormatSchemaHelp(const MethodSchema& schema);

}  // namespace knnshap

#endif  // KNNSHAP_ENGINE_SCHEMA_H_
