// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// ValuationEngine — the one front door to every valuation method. A
// request names a method by registry key and carries the train/test
// datasets; the engine
//
//   * validates the request and answers errors as responses, never aborts;
//   * serves repeated requests from an LRU result cache keyed by content
//     fingerprints (same corpus + queries + method + hyperparameters =>
//     cache hit, bit-identical values, no recomputation);
//   * reuses fitted valuators — and therefore their kd-tree / LSH index —
//     across requests against the same corpus;
//   * shards the test batch across ThreadPool::Shared() in contiguous
//     blocks for per-query methods, merging by additivity (Eq 8) in query
//     order so parallel and serial runs are bitwise equal.
//
// The engine is thread-safe: concurrent Value calls are allowed (cache and
// fitted-valuator bookkeeping are mutex-guarded; fitted valuators are
// immutable after Fit and shared).

#ifndef KNNSHAP_ENGINE_ENGINE_H_
#define KNNSHAP_ENGINE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/dataset.h"
#include "engine/registry.h"
#include "engine/result_cache.h"
#include "engine/valuator.h"
#include "market/valuation_report.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cancel.h"
#include "util/fingerprint.h"

namespace knnshap {

/// Sharded-topology request: count > 1 routes supported methods through the
/// shard subsystem (src/shard) — per-shard candidate workers plus a
/// bit-identical top-R merge. Unsupported methods ignore this and run
/// unsharded.
struct ShardSpec {
  int count = 1;       ///< 1 = unsharded (the default topology).
  bool process = false;  ///< true: process-per-shard over JSONL pipes.
  /// argv of the worker binary (process mode only).
  std::vector<std::string> worker_command;
  /// Remote socket topology: one ordered replica endpoint list
  /// ("host:port") per shard. Non-empty selects the TCP transport with
  /// per-shard failover (shard/socket_worker.h); mutually exclusive with
  /// `process`.
  std::vector<std::vector<std::string>> remote_replicas;
  /// Socket transport knobs (remote mode only).
  int connect_timeout_ms = 2000;
  int io_timeout_ms = 30000;
  int connect_attempts = 3;
  /// The corpus's maintained block digests; null makes the router hash the
  /// corpus itself at fit.
  std::shared_ptr<const CorpusDigests> train_digests;
  /// Store name of the corpus, echoed to worker processes.
  std::string corpus_name = "corpus";
};

/// One valuation request: value every row of `train` against the query
/// batch `test` with the given method. Datasets are shared_ptr so the
/// engine can keep fitted valuators alive across requests without copying.
struct ValuationRequest {
  std::string method = "exact";  ///< Registry key (see ValuatorRegistry).
  ValuatorParams params;
  std::shared_ptr<const Dataset> train;
  std::shared_ptr<const Dataset> test;
  bool use_cache = true;   ///< Consult/populate the result cache.
  bool parallel = true;    ///< Shard queries across the shared pool.
  /// Record deep per-query phase spans (distance / sort / retrieve /
  /// recursion) in addition to the engine-level phases. Off by default:
  /// deep spans cost a handful of clock reads per query. The report
  /// carries a trace whenever this is set OR the engine has a
  /// MetricsRegistry wired (engine-level phases only in that case).
  bool trace = false;
  /// Precomputed content fingerprints (0 = unset: the engine hashes the
  /// dataset itself). The serve layer's CorpusStore maintains fingerprints
  /// incrementally across mutations and passes them here, so a request
  /// against a million-row corpus costs no rehash at all. Callers setting
  /// these own the contract that the value equals DatasetFingerprint(data).
  uint64_t train_fingerprint = 0;
  uint64_t test_fingerprint = 0;
  /// Cooperative deadline/cancellation (null = uncancellable). The engine
  /// activates the token on every thread working the request, so the deep
  /// loops poll it at block granularity; once it expires the request
  /// answers a deadline_exceeded Status, partial work is discarded and
  /// nothing partial ever enters the result cache or the fitted registry.
  std::shared_ptr<const CancelToken> cancel;
  /// Shard topology. Affects only HOW supported methods compute (the
  /// result-cache key is deliberately topology-free: values are
  /// bit-identical across topologies, so a cache written unsharded
  /// warm-starts a sharded server and vice versa). The fitted-valuator key
  /// DOES carry the topology — a router and an unsharded valuator are
  /// different resident structures.
  ShardSpec shard;
};

/// Engine construction options.
struct EngineOptions {
  size_t result_cache_capacity = 64;  ///< Entries; 0 disables caching.
  size_t fitted_capacity = 8;         ///< Fitted valuators kept resident.
  /// Cache / fitted-valuator identity: true hashes only the params the
  /// method's schema declares (an "exact" result survives a `seed` change;
  /// mixed-method traffic hits more), false restores the legacy
  /// whole-struct ValuatorParams::Fingerprint — the compatibility shim and
  /// the bench baseline.
  bool method_scoped_fingerprints = true;
  /// Per-query result vectors resident at once: memory is bounded by
  /// max_resident_queries * train_size doubles regardless of batch size.
  /// Accumulation stays in query order, so this never changes output bits.
  size_t max_resident_queries = 256;
  /// Registry to resolve methods against (default: the global one).
  ValuatorRegistry* registry = nullptr;
  /// Metrics sink (not owned; may outlive-engine scoped by the caller).
  /// When set, every request updates per-method request counters +
  /// latency histograms and per-phase time totals; when null the engine
  /// reads no clocks beyond the two it always paid (request wall time,
  /// fit split) — the disabled-by-default contract the warm-replay bench
  /// gates at <1%.
  MetricsRegistry* metrics = nullptr;
};

/// Serves batched valuation requests over any registered method.
class ValuationEngine {
 public:
  explicit ValuationEngine(const EngineOptions& options = {});

  /// Serves one request. Never aborts on malformed requests — the request
  /// is validated against the method's MethodSchema (declared params
  /// range-checked, task canonicalized, data requirements enforced) and
  /// failures come back as report.status with a machine-readable code and
  /// the offending field.
  ValuationReport Value(const ValuationRequest& request);

  /// The registry this engine resolves methods against (the configured
  /// one, or the global default). The serve pipeline validates and
  /// describes through this accessor so its view can never diverge from
  /// what the engine will actually serve.
  const ValuatorRegistry& Registry() const { return *registry_; }

  /// Engine-wide result-cache counters.
  CacheCounters CacheStats() const { return cache_.Counters(); }

  /// Fitted valuators currently resident.
  size_t FittedCount() const;

  /// Resident fitted-valuator count per training-corpus fingerprint (the
  /// serve `stats` op joins this against the corpus store for per-corpus
  /// counts).
  std::unordered_map<uint64_t, size_t> FittedByTrain() const;

  /// Result-cache sizing facts for `stats` (entries, capacity, payload
  /// bytes).
  size_t CacheEntries() const { return cache_.Size(); }
  size_t CacheCapacity() const { return cache_.Capacity(); }
  size_t CacheBytes() const { return cache_.BytesUsed(); }

  /// Times a fitted valuator was reused instead of refitted.
  uint64_t FitReuses() const;

  /// Drops the result cache and all fitted valuators.
  void InvalidateAll();

  /// Eviction counts returned by InvalidateTrain.
  struct InvalidationStats {
    size_t fitted_evicted = 0;
    size_t cache_evicted = 0;
  };

  /// Evicts every fitted valuator whose training corpus has the given
  /// content fingerprint, and every result-cache entry that names it as
  /// train *or* test dataset. The serve layer calls this when a corpus is
  /// dropped or mutated, so stale structures are reclaimed immediately
  /// instead of lingering until LRU pressure.
  InvalidationStats InvalidateTrain(uint64_t train_fingerprint);

  /// Persists the result cache to a versioned binary file, atomically
  /// (see ResultCache::SaveTo). Returns entries written.
  StatusOr<size_t> SaveCache(const std::string& path) const {
    return cache_.SaveTo(path);
  }

  /// Merges a SaveCache file into the result cache so a restarted server
  /// warm-starts; a corrupt tail salvages the valid prefix (see
  /// ResultCache::LoadFrom).
  StatusOr<CacheLoadResult> LoadCache(const std::string& path) {
    return cache_.LoadFrom(path);
  }

  /// Requests answered deadline_exceeded since construction.
  uint64_t DeadlineExceededCount() const {
    return deadline_exceeded_.load(std::memory_order_relaxed);
  }

 private:
  struct FittedKey {
    uint64_t train_fingerprint = 0;
    std::string method;
    uint64_t params_fingerprint = 0;

    bool operator==(const FittedKey& other) const = default;
  };
  struct FittedKeyHash {
    size_t operator()(const FittedKey& key) const;
  };
  using FittedList = std::list<std::pair<FittedKey, std::shared_ptr<Valuator>>>;

  /// In-progress fit of one key. The map mutex is held only for
  /// bookkeeping; the fit itself runs outside it, so cold fits of
  /// *different* corpora proceed concurrently while duplicate requests for
  /// the same key wait on the slot instead of fitting twice.
  struct FitSlot {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    std::shared_ptr<Valuator> valuator;
    /// Set (under fitted_mutex_) by InvalidateTrain/InvalidateAll while
    /// the fit is in flight: the finished valuator still serves the
    /// requests already waiting on it, but is NOT installed into fitted_ —
    /// preserving the reclaim-immediately guarantee for corpora dropped
    /// mid-fit.
    bool invalidated = false;
    /// The owner's deadline expired before a usable valuator existed: the
    /// slot is released (erased from fitting_) and waiters RETRY — one of
    /// them becomes the new owner — instead of inheriting a failure. A
    /// cancelled fit therefore never poisons the registry for later
    /// requests.
    bool cancelled = false;
  };

  /// Returns a fitted valuator for (train, method, params), creating and
  /// fitting one on first use. Per-key serialization only: concurrent
  /// first requests against different (corpus, method, params) keys fit in
  /// parallel. Sets *cancelled and returns null when the request's
  /// deadline expired before a valuator was fitted (the fit slot is
  /// released so other requests are unaffected). Throws whatever the
  /// method factory or Fit throws (slot released first).
  std::shared_ptr<Valuator> GetOrFit(const FittedKey& key,
                                     const ValuationRequest& request,
                                     const ValuatorParams& params,
                                     bool* reused, bool* cancelled);

  /// Runs the per-query sharded path (or the batch path) on a fitted
  /// valuator. `trace` (nullable) receives merge/finalize spans; deep
  /// per-query phases are recorded only when trace->deep. `cancel`
  /// (nullable) is activated on every worker; once it expires remaining
  /// queries are skipped and the (partial, garbage) result is discarded by
  /// the caller.
  std::vector<double> Run(const Valuator& valuator, const Dataset& test,
                          bool parallel, RequestTrace* trace,
                          const CancelToken* cancel) const;

  /// Bookkeeping for a request that ran out of deadline: counter +
  /// (metrics wired) deadline metric and overshoot histogram.
  void RecordDeadlineExceeded(const CancelToken* cancel);

  /// Value() minus trace/metrics bookkeeping; all spans recorded here.
  ValuationReport ValueImpl(const ValuationRequest& request,
                            RequestTrace* trace);

  /// Cached per-method metric handles (pointer-stable; resolved once per
  /// method so the hot path pays one small-map lookup, not three registry
  /// mutex trips).
  struct MethodMetrics {
    Counter* requests = nullptr;
    Counter* errors = nullptr;
    Histogram* seconds = nullptr;
  };
  MethodMetrics& MetricsFor(const std::string& method);
  void RecordMetrics(const ValuationReport& report, const RequestTrace& trace);

  EngineOptions options_;
  ValuatorRegistry* registry_;
  ResultCache cache_;

  /// Per-phase time-total counters, resolved at construction (null slots
  /// when no registry). Serve-layer phases (parse/serialize/queue_wait)
  /// are credited by the pipeline, not here.
  Counter* phase_nanos_[kNumPhases] = {};
  mutable std::mutex method_metrics_mutex_;
  std::map<std::string, MethodMetrics> method_metrics_;

  mutable std::mutex fitted_mutex_;
  FittedList fitted_;  // MRU-first
  std::unordered_map<FittedKey, FittedList::iterator, FittedKeyHash> fitted_index_;
  std::unordered_map<FittedKey, std::shared_ptr<FitSlot>, FittedKeyHash> fitting_;
  uint64_t fit_reuses_ = 0;

  std::atomic<uint64_t> deadline_exceeded_{0};
  /// knnshap_deadline_exceeded_total / knnshap_cancel_overshoot_seconds
  /// (null when no registry). The overshoot histogram records how far past
  /// its deadline a cancelled request ran before the block-granularity
  /// checks caught it — the observable cost of cooperative (vs preemptive)
  /// cancellation.
  Counter* deadline_metric_ = nullptr;
  Histogram* overshoot_metric_ = nullptr;
};

}  // namespace knnshap

#endif  // KNNSHAP_ENGINE_ENGINE_H_
