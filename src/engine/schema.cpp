// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "engine/schema.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/cli.h"
#include "util/fingerprint.h"
#include "util/json.h"

namespace knnshap {

namespace {

/// Shortest lossless rendering of a number for error messages and docs
/// (the same %g policy the JSON serializer trims toward).
std::string NumberText(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", value);
  return buf;
}

/// Shared message shapes — every surface (serve JSON, CLI flags, direct
/// engine requests) fails with byte-identical text for the same offense.
Status NotANumber(const std::string& name) {
  return Status::InvalidArgument("'" + name + "' must be a number", name);
}
Status NotAString(const std::string& name) {
  return Status::InvalidArgument("'" + name + "' must be a string", name);
}

}  // namespace

const char* ParamTypeName(ParamType type) {
  switch (type) {
    case ParamType::kInt:
      return "int";
    case ParamType::kDouble:
      return "double";
    case ParamType::kUint:
      return "uint";
    case ParamType::kEnum:
      return "enum";
  }
  return "unknown";
}

Status ParamSpec::ValidateNumber(double value, bool parse_surface) const {
  if (type == ParamType::kEnum) {
    const int count = static_cast<int>(enum_values.size());
    if (value != std::floor(value) || value < 0 || value >= count) {
      return Status::InvalidArgument(
          "'" + name + "' must be one of " + EnumValuesJoined(), name);
    }
    return Status::Ok();
  }
  if (std::isnan(value)) return NotANumber(name);
  if ((type == ParamType::kInt || type == ParamType::kUint) &&
      value != std::floor(value)) {
    return Status::InvalidArgument(
        "'" + name + "' must be an integer (got " + NumberText(value) + ")",
        name);
  }
  if (min_exclusive ? value <= min_value : value < min_value) {
    return Status::InvalidArgument(
        "'" + name + "' must be " + (min_exclusive ? "> " : ">= ") +
            NumberText(min_value) + " (got " + NumberText(value) + ")",
        name);
  }
  if (value > max_value && (parse_surface || !max_is_parse_bound)) {
    return Status::InvalidArgument(
        "'" + name + "' must be <= " + NumberText(max_value) + " (got " +
            NumberText(value) + ")",
        name);
  }
  return Status::Ok();
}

int ParamSpec::EnumIndex(const std::string& value) const {
  for (size_t i = 0; i < enum_values.size(); ++i) {
    if (enum_values[i] == value) return static_cast<int>(i);
  }
  return -1;
}

std::string ParamSpec::EnumValuesJoined() const {
  std::string out;
  for (const auto& value : enum_values) {
    if (!out.empty()) out += "|";
    out += value;
  }
  return out;
}

namespace {

ParamSpec NumberSpec(const char* name, ParamType type, const char* doc,
                     double min_value, double max_value, bool min_exclusive,
                     std::function<double(const ValuatorParams&)> get,
                     std::function<void(ValuatorParams*, double)> set) {
  ParamSpec spec;
  spec.name = name;
  spec.type = type;
  spec.doc = doc;
  spec.min_value = min_value;
  spec.max_value = max_value;
  spec.min_exclusive = min_exclusive;
  spec.get = std::move(get);
  spec.set = std::move(set);
  // Default native hash: the double representation (exact for every
  // numeric field narrower than 53 bits; seed overrides below).
  auto get_copy = spec.get;
  spec.add_to_hash = [get_copy](const ValuatorParams& p, Fnv64* hash) {
    hash->Add(get_copy(p));
  };
  return spec;
}

ParamSpec EnumSpec(const char* name, const char* doc,
                   std::vector<std::string> values,
                   std::function<double(const ValuatorParams&)> get,
                   std::function<void(ValuatorParams*, double)> set) {
  ParamSpec spec = NumberSpec(name, ParamType::kEnum, doc, 0,
                              static_cast<double>(values.size()) - 1, false,
                              std::move(get), std::move(set));
  spec.enum_values = std::move(values);
  return spec;
}

std::vector<ParamSpec> BuildVocabulary() {
  std::vector<ParamSpec> specs;
  specs.push_back(NumberSpec(
      "k", ParamType::kInt, "KNN hyperparameter K (neighbors that vote)", 1,
      1e6, false, [](const ValuatorParams& p) { return double(p.k); },
      [](ValuatorParams* p, double v) { p->k = static_cast<int>(v); }));
  specs.push_back(NumberSpec(
      "epsilon", ParamType::kDouble,
      "Approximation budget epsilon (Theorems 2/4/5)", 0, 1e6, true,
      [](const ValuatorParams& p) { return p.epsilon; },
      [](ValuatorParams* p, double v) { p->epsilon = v; }));
  specs.push_back(NumberSpec(
      "delta", ParamType::kDouble,
      "Failure probability delta in (0,1] (Theorems 4/5)", 0, 1, true,
      [](const ValuatorParams& p) { return p.delta; },
      [](ValuatorParams* p, double v) { p->delta = v; }));
  ParamSpec seed = NumberSpec(
      "seed", ParamType::kUint, "Seed for MC sampling / LSH hashing", 0,
      9007199254740992.0 /* 2^53: exactly representable */, false,
      [](const ValuatorParams& p) { return static_cast<double>(p.seed); },
      [](ValuatorParams* p, double v) { p->seed = static_cast<uint64_t>(v); });
  seed.max_is_parse_bound = true;  // engine callers may exceed 2^53
  seed.add_to_hash = [](const ValuatorParams& p, Fnv64* hash) {
    hash->Add(p.seed);  // native width, matching the parse-only max bound
  };
  specs.push_back(std::move(seed));
  specs.push_back(EnumSpec(
      "metric", "Distance metric over feature vectors",
      {"l2", "squared-l2", "l1", "cosine"},
      [](const ValuatorParams& p) { return double(static_cast<int>(p.metric)); },
      [](ValuatorParams* p, double v) { p->metric = static_cast<Metric>(int(v)); }));
  specs.push_back(EnumSpec(
      "kernel", "Neighbor weight kernel for the weighted utilities",
      {"uniform", "inverse", "gaussian"},
      [](const ValuatorParams& p) {
        return double(static_cast<int>(p.weights.kernel));
      },
      [](ValuatorParams* p, double v) {
        p->weights.kernel = static_cast<WeightKernel>(int(v));
      }));
  specs.push_back(NumberSpec(
      "kernel_epsilon", ParamType::kDouble,
      "Regularizer of the inverse-distance kernel", 0, 1e6, true,
      [](const ValuatorParams& p) { return p.weights.epsilon; },
      [](ValuatorParams* p, double v) { p->weights.epsilon = v; }));
  specs.push_back(NumberSpec(
      "sigma", ParamType::kDouble, "Bandwidth of the Gaussian kernel", 0, 1e6,
      true, [](const ValuatorParams& p) { return p.weights.sigma; },
      [](ValuatorParams* p, double v) { p->weights.sigma = v; }));
  specs.push_back(NumberSpec(
      "contrast_sample", ParamType::kInt,
      "Corpus rows sampled for the LSH contrast estimate", 1, 1e9, false,
      [](const ValuatorParams& p) { return double(p.contrast_sample); },
      [](ValuatorParams* p, double v) {
        p->contrast_sample = static_cast<size_t>(v);
      }));
  specs.push_back(NumberSpec(
      "utility_range", ParamType::kDouble,
      "MC utility range r; 0 selects the 1/K default", 0, 1e6, false,
      [](const ValuatorParams& p) { return p.utility_range; },
      [](ValuatorParams* p, double v) { p->utility_range = v; }));
  ParamSpec max_permutations = NumberSpec(
      "max_permutations", ParamType::kInt,
      "MC permutation cap; -1 leaves only the stopping rule", -1,
      9007199254740992.0, false,
      [](const ValuatorParams& p) { return double(p.max_permutations); },
      [](ValuatorParams* p, double v) {
        p->max_permutations = static_cast<int64_t>(v);
      });
  max_permutations.max_is_parse_bound = true;  // native int64
  max_permutations.add_to_hash = [](const ValuatorParams& p, Fnv64* hash) {
    hash->Add(p.max_permutations);  // native width, like seed
  };
  specs.push_back(std::move(max_permutations));
  specs.push_back(NumberSpec(
      "weight_bits", ParamType::kInt,
      "Weight discretization bits b for weighted-fast (levels = 2^b - 1)", 1,
      8, false, [](const ValuatorParams& p) { return double(p.weight_bits); },
      [](ValuatorParams* p, double v) { p->weight_bits = static_cast<int>(v); }));
  specs.push_back(NumberSpec(
      "approx_error", ParamType::kDouble,
      "deterministic truncation budget (sup-norm); 0 = exact", 0, 1, false,
      [](const ValuatorParams& p) { return p.approx_error; },
      [](ValuatorParams* p, double v) { p->approx_error = v; }));
  return specs;
}

}  // namespace

const std::vector<ParamSpec>& ParamVocabulary() {
  static const std::vector<ParamSpec>* vocabulary =
      new std::vector<ParamSpec>(BuildVocabulary());
  return *vocabulary;
}

const ParamSpec* FindParamSpec(const std::string& name) {
  for (const auto& spec : ParamVocabulary()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const char* TaskName(KnnTask task) {
  switch (task) {
    case KnnTask::kClassification:
      return "classification";
    case KnnTask::kWeightedClassification:
      return "weighted-classification";
    case KnnTask::kRegression:
      return "regression";
    case KnnTask::kWeightedRegression:
      return "weighted-regression";
  }
  return "unknown";
}

bool ParseTaskName(const std::string& name, KnnTask* task) {
  for (KnnTask candidate :
       {KnnTask::kClassification, KnnTask::kWeightedClassification,
        KnnTask::kRegression, KnnTask::kWeightedRegression}) {
    if (name == TaskName(candidate)) {
      *task = candidate;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// MethodSchema
// ---------------------------------------------------------------------------

bool MethodSchema::Declares(const std::string& param_name) const {
  for (const ParamSpec* spec : params) {
    if (spec->name == param_name) return true;
  }
  return false;
}

KnnTask MethodSchema::DefaultTask() const {
  KNNSHAP_CHECK(!tasks.empty(), "schema '" + name + "' declares no tasks");
  return tasks.front();
}

bool MethodSchema::AllowsTask(KnnTask task) const {
  for (KnnTask allowed : tasks) {
    if (allowed == task) return true;
  }
  return false;
}

std::string MethodSchema::TaskNamesJoined() const {
  std::string out;
  for (KnnTask task : tasks) {
    if (!out.empty()) out += ", ";
    out += TaskName(task);
  }
  return out;
}

bool MethodSchema::RequiresLabels(KnnTask task) const {
  return task == KnnTask::kClassification ||
         task == KnnTask::kWeightedClassification;
}

bool MethodSchema::RequiresTargets(KnnTask task) const {
  return !RequiresLabels(task);
}

Status MethodSchema::Canonicalize(ValuatorParams* params) const {
  // Single-task methods define their task; requests cannot disagree with
  // it, so it is canonicalized silently (and fingerprints stay canonical).
  if (tasks.size() == 1) {
    params->task = tasks.front();
  } else if (!AllowsTask(params->task)) {
    return Status::InvalidArgument(
        "method '" + name + "' supports tasks: " + TaskNamesJoined() +
            " (got '" + TaskName(params->task) + "')",
        "task");
  }
  // Engine-side validation of native values: parse-only max bounds (the
  // 2^53 seed cap that keeps JSON/CLI double→uint64 casts defined) do not
  // apply to a ValuatorParams built programmatically at full width.
  for (const ParamSpec* spec : this->params) {
    Status status =
        spec->ValidateNumber(spec->get(*params), /*parse_surface=*/false);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

uint64_t MethodSchema::ParamsFingerprint(const ValuatorParams& params) const {
  Fnv64 hash;
  hash.AddString(name);
  if (tasks.size() > 1) hash.Add(static_cast<int>(params.task));
  for (const ParamSpec* spec : this->params) {
    hash.AddString(spec->name);
    spec->add_to_hash(params, &hash);
  }
  return hash.Digest();
}

std::vector<const ParamSpec*> ResolveParams(
    const std::vector<std::string>& names) {
  std::vector<const ParamSpec*> specs;
  specs.reserve(names.size());
  for (const auto& name : names) {
    const ParamSpec* spec = FindParamSpec(name);
    KNNSHAP_CHECK(spec != nullptr, "schema names unknown param '" + name + "'");
    specs.push_back(spec);
  }
  return specs;
}

// ---------------------------------------------------------------------------
// Schema-derived parsing
// ---------------------------------------------------------------------------

namespace {

/// Validates a candidate against the spec and applies it when the method
/// declares it — the one code path both surfaces reduce to.
Status ValidateAndMaybeApply(const MethodSchema& schema, const ParamSpec& spec,
                             double value, ValuatorParams* params,
                             bool apply_undeclared = false) {
  Status status = spec.ValidateNumber(value);
  if (!status.ok()) return status;
  if (apply_undeclared || schema.Declares(spec.name)) spec.set(params, value);
  return Status::Ok();
}

Status ApplyTask(const MethodSchema& schema, const std::string& task_name,
                 ValuatorParams* params) {
  KnnTask task;
  if (!ParseTaskName(task_name, &task)) {
    return Status::InvalidArgument("unknown task '" + task_name + "'", "task");
  }
  // An *explicit* task the method does not support is an error on every
  // surface — silent canonicalization (Canonicalize) is reserved for
  // requests that leave the task unset.
  if (!schema.AllowsTask(task)) {
    return Status::InvalidArgument(
        "method '" + schema.name + "' supports tasks: " +
            schema.TaskNamesJoined() + " (got '" + task_name + "')",
        "task");
  }
  params->task = task;
  return Status::Ok();
}

}  // namespace

Status ApplyJsonParams(const MethodSchema& schema, const JsonValue& request,
                       ValuatorParams* params, bool apply_undeclared) {
  params->task = schema.DefaultTask();
  if (request.Has("task")) {
    const JsonValue& task = request.Get("task");
    if (!task.IsString()) return NotAString("task");
    Status status = ApplyTask(schema, task.AsString(), params);
    if (!status.ok()) return status;
  }
  for (const ParamSpec& spec : ParamVocabulary()) {
    if (!request.Has(spec.name)) continue;
    const JsonValue& field = request.Get(spec.name);
    double value = 0.0;
    if (spec.type == ParamType::kEnum) {
      if (!field.IsString()) return NotAString(spec.name);
      int index = spec.EnumIndex(field.AsString());
      if (index < 0) {
        return Status::InvalidArgument("'" + spec.name + "' must be one of " +
                                           spec.EnumValuesJoined() + " (got '" +
                                           field.AsString() + "')",
                                       spec.name);
      }
      value = index;
    } else {
      if (!field.IsNumber()) return NotANumber(spec.name);
      value = field.AsNumber();
    }
    Status status =
        ValidateAndMaybeApply(schema, spec, value, params, apply_undeclared);
    if (!status.ok()) return status;
  }
  return schema.Canonicalize(params);
}

Status CheckRequestFields(const JsonValue& request,
                          const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : request.Fields()) {
    (void)value;
    if (key == "task" || FindParamSpec(key) != nullptr) continue;
    bool known = false;
    for (const auto& name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown field '" + key + "'", key);
    }
  }
  return Status::Ok();
}

Status ApplyCliParams(const MethodSchema& schema, const CommandLine& cli,
                      ValuatorParams* params,
                      const std::string* task_override) {
  params->task = schema.DefaultTask();
  const std::string* task = task_override ? task_override : cli.Raw("task");
  if (task != nullptr) {
    Status status = ApplyTask(schema, *task, params);
    if (!status.ok()) return status;
  }
  for (const ParamSpec& spec : ParamVocabulary()) {
    const std::string* raw = cli.Raw(spec.name);
    if (raw == nullptr) continue;
    double value = 0.0;
    if (spec.type == ParamType::kEnum) {
      int index = spec.EnumIndex(*raw);
      if (index < 0) {
        return Status::InvalidArgument("'" + spec.name + "' must be one of " +
                                           spec.EnumValuesJoined() + " (got '" +
                                           *raw + "')",
                                       spec.name);
      }
      value = index;
    } else {
      char* end = nullptr;
      value = std::strtod(raw->c_str(), &end);
      if (raw->empty() || end != raw->c_str() + raw->size()) {
        return NotANumber(spec.name);
      }
    }
    Status status = ValidateAndMaybeApply(schema, spec, value, params);
    if (!status.ok()) return status;
  }
  return schema.Canonicalize(params);
}

JsonValue ParamsToJson(const MethodSchema& schema,
                       const ValuatorParams& params) {
  JsonValue out = JsonValue::MakeObject();
  if (schema.tasks.size() > 1) {
    out.Set("task", JsonValue(TaskName(params.task)));
  }
  for (const ParamSpec* spec : schema.params) {
    double value = spec->get(params);
    if (value == spec->DefaultValue() &&
        std::find(schema.echo_if_nondefault.begin(),
                  schema.echo_if_nondefault.end(),
                  spec->name) != schema.echo_if_nondefault.end()) {
      // Omitted at default by declaration (wire compat for params
      // retrofitted onto a long-lived method); re-applying the echo
      // reproduces the same params, so the round-trip property holds.
      continue;
    }
    if (spec->type == ParamType::kEnum) {
      out.Set(spec->name, JsonValue(spec->enum_values[static_cast<size_t>(value)]));
    } else {
      out.Set(spec->name, JsonValue(value));
    }
  }
  return out;
}

JsonValue SchemaToJson(const MethodSchema& schema) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("name", JsonValue(schema.name));
  out.Set("description", JsonValue(schema.description));
  out.Set("per_query", JsonValue(schema.per_query));
  JsonValue tasks = JsonValue::MakeArray();
  for (KnnTask task : schema.tasks) tasks.Append(JsonValue(TaskName(task)));
  out.Set("tasks", tasks);
  const bool labels = schema.RequiresLabels(schema.DefaultTask());
  const bool multi = schema.tasks.size() > 1;
  out.Set("requires", JsonValue(multi ? "labels-or-targets-by-task"
                                      : (labels ? "labels" : "targets")));
  if (schema.min_train_rows > 1) {
    out.Set("min_train_rows",
            JsonValue(static_cast<double>(schema.min_train_rows)));
  }
  JsonValue params = JsonValue::MakeArray();
  for (const ParamSpec* spec : schema.params) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("name", JsonValue(spec->name));
    entry.Set("type", JsonValue(ParamTypeName(spec->type)));
    if (spec->type == ParamType::kEnum) {
      JsonValue values = JsonValue::MakeArray();
      for (const auto& value : spec->enum_values) values.Append(JsonValue(value));
      entry.Set("values", values);
      entry.Set("default",
                JsonValue(spec->enum_values[static_cast<size_t>(
                    spec->DefaultValue())]));
    } else {
      entry.Set("default", JsonValue(spec->DefaultValue()));
      entry.Set("min", JsonValue(spec->min_value));
      entry.Set("max", JsonValue(spec->max_value));
      if (spec->min_exclusive) entry.Set("min_exclusive", JsonValue(true));
    }
    entry.Set("doc", JsonValue(spec->doc));
    params.Append(entry);
  }
  out.Set("params", params);
  return out;
}

std::string FormatSchemaHelp(const MethodSchema& schema) {
  std::string out = schema.name + "  —  " + schema.description + "\n";
  out += "  tasks: " + schema.TaskNamesJoined() +
         (schema.per_query ? "   (per-query decomposable)\n" : "   (batch-only)\n");
  for (const ParamSpec* spec : schema.params) {
    char line[256];
    if (spec->type == ParamType::kEnum) {
      std::snprintf(line, sizeof line, "  --%-17s %-7s %-21s %s\n",
                    spec->name.c_str(), ParamTypeName(spec->type),
                    spec->EnumValuesJoined().c_str(), spec->doc.c_str());
    } else {
      char range[64];
      std::snprintf(range, sizeof range, "%s%g, %g]",
                    spec->min_exclusive ? "(" : "[", spec->min_value,
                    spec->max_value);
      std::snprintf(line, sizeof line, "  --%-17s %-7s %-21s %s (default %g)\n",
                    spec->name.c_str(), ParamTypeName(spec->type), range,
                    spec->doc.c_str(), spec->DefaultValue());
    }
    out += line;
  }
  return out;
}

}  // namespace knnshap
