// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "engine/result_cache.h"

#include "util/fingerprint.h"

namespace knnshap {

size_t ResultCache::KeyHash::operator()(const ResultCacheKey& key) const {
  Fnv64 hash;
  hash.Add(key.train_fingerprint);
  hash.Add(key.test_fingerprint);
  hash.AddString(key.method);
  hash.Add(key.params_fingerprint);
  return static_cast<size_t>(hash.Digest());
}

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const std::vector<double>> ResultCache::Get(
    const ResultCacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  entries_.splice(entries_.begin(), entries_, it->second);  // move to MRU
  return it->second->second;
}

void ResultCache::Put(const ResultCacheKey& key,
                      std::shared_ptr<const std::vector<double>> values) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(values);
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  entries_.emplace_front(key, std::move(values));
  index_[key] = entries_.begin();
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().first);
    entries_.pop_back();
    ++counters_.evictions;
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  index_.clear();
}

size_t ResultCache::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

CacheCounters ResultCache::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace knnshap
