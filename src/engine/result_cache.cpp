// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "engine/result_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/fault.h"
#include "util/fingerprint.h"

namespace knnshap {

size_t ResultCache::KeyHash::operator()(const ResultCacheKey& key) const {
  Fnv64 hash;
  hash.Add(key.train_fingerprint);
  hash.Add(key.test_fingerprint);
  hash.AddString(key.method);
  hash.Add(key.params_fingerprint);
  return static_cast<size_t>(hash.Digest());
}

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const std::vector<double>> ResultCache::Get(
    const ResultCacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  entries_.splice(entries_.begin(), entries_, it->second);  // move to MRU
  return it->second->second;
}

void ResultCache::Put(const ResultCacheKey& key,
                      std::shared_ptr<const std::vector<double>> values) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->second->size() * sizeof(double);
    bytes_ += values->size() * sizeof(double);
    it->second->second = std::move(values);
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  bytes_ += values->size() * sizeof(double);
  entries_.emplace_front(key, std::move(values));
  index_[key] = entries_.begin();
  while (entries_.size() > capacity_) {
    bytes_ -= entries_.back().second->size() * sizeof(double);
    index_.erase(entries_.back().first);
    entries_.pop_back();
    ++counters_.evictions;
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  index_.clear();
  bytes_ = 0;
}

size_t ResultCache::EraseFingerprint(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t erased = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.train_fingerprint == fingerprint ||
        it->first.test_fingerprint == fingerprint) {
      bytes_ -= it->second->size() * sizeof(double);
      index_.erase(it->first);
      it = entries_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

namespace {

// Cache file framing: magic + format version, then length-prefixed
// entries, each followed by an FNV-64 checksum over its serialized
// fields. Bump kCacheFileVersion on any layout change; Load rejects
// header mismatches instead of guessing (v1 files, which carried no
// checksums, are rejected the same way — regenerate with save_cache).
constexpr char kCacheFileMagic[8] = {'K', 'S', 'H', 'A', 'P', 'R', 'C', '\0'};
constexpr uint32_t kCacheFileVersion = 2;

template <typename T>
void WriteRaw(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadRaw(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

// The per-entry integrity checksum persisted after each entry's payload.
uint64_t EntryChecksum(const ResultCacheKey& key,
                       const std::vector<double>& values) {
  Fnv64 hash;
  hash.Add(key.train_fingerprint);
  hash.Add(key.test_fingerprint);
  hash.Add(key.params_fingerprint);
  hash.AddString(key.method);
  hash.AddSpan(std::span<const double>(values.data(), values.size()));
  return hash.Digest();
}

// Flushes userspace + kernel buffers for `path` to stable storage. On
// non-POSIX builds this is a no-op (the rename below still gives
// atomicity against process crashes, just not power loss).
bool SyncFile(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

}  // namespace

StatusOr<size_t> ResultCache::SaveTo(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Never open the destination itself for writing: all bytes go to a
  // sibling tmp file that only replaces `path` (rename, atomic on POSIX)
  // once fully written and fsync'd. A crash or failure at any point
  // leaves the previous snapshot readable.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::NotFound("cannot open '" + tmp_path + "' for writing");
    }
    out.write(kCacheFileMagic, sizeof(kCacheFileMagic));
    WriteRaw(out, kCacheFileVersion);
    WriteRaw(out, static_cast<uint64_t>(entries_.size()));
    for (const auto& [key, values] : entries_) {  // MRU first
      if (FaultInjectionEnabled() && Fault("cache_write")) {
        // Simulated kill mid-save: stop writing, leaving a torn tmp file
        // behind (as a real crash would). The destination is untouched.
        out.close();
        return Status::DataLoss("injected cache_write fault: save to '" +
                                path + "' aborted mid-write");
      }
      WriteRaw(out, key.train_fingerprint);
      WriteRaw(out, key.test_fingerprint);
      WriteRaw(out, key.params_fingerprint);
      WriteRaw(out, static_cast<uint32_t>(key.method.size()));
      out.write(key.method.data(),
                static_cast<std::streamsize>(key.method.size()));
      WriteRaw(out, static_cast<uint64_t>(values->size()));
      out.write(reinterpret_cast<const char*>(values->data()),
                static_cast<std::streamsize>(values->size() * sizeof(double)));
      WriteRaw(out, EntryChecksum(key, *values));
    }
    out.flush();
    if (!out) {
      std::remove(tmp_path.c_str());
      return Status::DataLoss("write to '" + tmp_path + "' failed");
    }
  }
  if (!SyncFile(tmp_path)) {
    std::remove(tmp_path.c_str());
    return Status::DataLoss("fsync of '" + tmp_path + "' failed");
  }
  if ((FaultInjectionEnabled() && Fault("cache_rename")) ||
      std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::DataLoss("rename '" + tmp_path + "' -> '" + path +
                            "' failed");
  }
  return entries_.size();
}

StatusOr<CacheLoadResult> ResultCache::LoadFrom(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in || (FaultInjectionEnabled() && Fault("cache_read"))) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  // Header corruption is a hard error: with no readable framing there is
  // nothing trustworthy to salvage.
  char magic[sizeof(kCacheFileMagic)];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kCacheFileMagic, sizeof(magic)) != 0) {
    return Status::DataLoss("'" + path + "' is not a knnshap cache file");
  }
  uint32_t version = 0;
  if (!ReadRaw(in, &version) || version != kCacheFileVersion) {
    return Status::DataLoss("unsupported cache file version");
  }
  uint64_t count = 0;
  if (!ReadRaw(in, &count)) {
    return Status::DataLoss("truncated cache file");
  }
  // File size bounds every untrusted length field below: an absurd count
  // or payload length is detected *before* any allocation sized by it.
  const std::streamoff header_end = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streamoff file_size = in.tellg();
  in.seekg(header_end, std::ios::beg);
  // Past the header, damage means a crash-torn or bit-flipped snapshot:
  // salvage every entry parsed before the damage instead of discarding a
  // still-useful warm start. Entries are parsed into `loaded` before any
  // Put so a salvage never leaves a half-merged cache state.
  std::vector<std::pair<ResultCacheKey, std::shared_ptr<const std::vector<double>>>>
      loaded;
  // The header count is untrusted input: reserve only a sane prefix and
  // let push_back grow for (legitimate) larger files — a corrupt count
  // must yield the salvage path below, not an allocation failure here.
  loaded.reserve(static_cast<size_t>(std::min<uint64_t>(count, 4096)));
  std::string damage;
  for (uint64_t i = 0; i < count && damage.empty(); ++i) {
    ResultCacheKey key;
    uint32_t method_len = 0;
    if (!ReadRaw(in, &key.train_fingerprint) ||
        !ReadRaw(in, &key.test_fingerprint) ||
        !ReadRaw(in, &key.params_fingerprint) || !ReadRaw(in, &method_len)) {
      damage = "truncated in entry " + std::to_string(i) + " header";
      break;
    }
    if (method_len > 4096) {
      damage = "entry " + std::to_string(i) + " method length out of bounds";
      break;
    }
    key.method.resize(method_len);
    in.read(key.method.data(), method_len);
    uint64_t num_values = 0;
    if (!in.good() || !ReadRaw(in, &num_values)) {
      damage = "truncated in entry " + std::to_string(i) + " method/length";
      break;
    }
    // The declared payload must fit in what is left of the file (plus its
    // trailing checksum); anything larger is a lie that would otherwise
    // size an allocation. The 2^48 pre-check keeps the multiply exact.
    const std::streamoff entry_pos = in.tellg();
    if (num_values > (1ull << 48) || entry_pos < 0 ||
        static_cast<uint64_t>(file_size - entry_pos) <
            num_values * sizeof(double) + sizeof(uint64_t)) {
      damage = "entry " + std::to_string(i) + " value count out of bounds";
      break;
    }
    auto values =
        std::make_shared<std::vector<double>>(static_cast<size_t>(num_values));
    in.read(reinterpret_cast<char*>(values->data()),
            static_cast<std::streamsize>(num_values * sizeof(double)));
    uint64_t checksum = 0;
    if (!in.good() || !ReadRaw(in, &checksum)) {
      damage = "truncated in entry " + std::to_string(i) + " payload";
      break;
    }
    if (checksum != EntryChecksum(key, *values)) {
      damage = "entry " + std::to_string(i) + " checksum mismatch";
      break;
    }
    loaded.emplace_back(std::move(key), std::move(values));
  }
  // Insert least recent first so Put's MRU ordering reproduces the saved
  // recency order.
  for (auto it = loaded.rbegin(); it != loaded.rend(); ++it) {
    Put(it->first, std::move(it->second));
  }
  CacheLoadResult result;
  result.entries = loaded.size();
  if (!damage.empty()) {
    result.salvaged = true;
    result.warning = "'" + path + "' corrupt (" + damage + "); salvaged " +
                     std::to_string(loaded.size()) + " of " +
                     std::to_string(count) + " entries";
  }
  return result;
}

size_t ResultCache::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t ResultCache::BytesUsed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

CacheCounters ResultCache::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace knnshap
