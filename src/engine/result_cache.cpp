// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "engine/result_cache.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "util/fingerprint.h"

namespace knnshap {

size_t ResultCache::KeyHash::operator()(const ResultCacheKey& key) const {
  Fnv64 hash;
  hash.Add(key.train_fingerprint);
  hash.Add(key.test_fingerprint);
  hash.AddString(key.method);
  hash.Add(key.params_fingerprint);
  return static_cast<size_t>(hash.Digest());
}

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const std::vector<double>> ResultCache::Get(
    const ResultCacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  entries_.splice(entries_.begin(), entries_, it->second);  // move to MRU
  return it->second->second;
}

void ResultCache::Put(const ResultCacheKey& key,
                      std::shared_ptr<const std::vector<double>> values) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->second->size() * sizeof(double);
    bytes_ += values->size() * sizeof(double);
    it->second->second = std::move(values);
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  bytes_ += values->size() * sizeof(double);
  entries_.emplace_front(key, std::move(values));
  index_[key] = entries_.begin();
  while (entries_.size() > capacity_) {
    bytes_ -= entries_.back().second->size() * sizeof(double);
    index_.erase(entries_.back().first);
    entries_.pop_back();
    ++counters_.evictions;
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  index_.clear();
  bytes_ = 0;
}

size_t ResultCache::EraseFingerprint(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t erased = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.train_fingerprint == fingerprint ||
        it->first.test_fingerprint == fingerprint) {
      bytes_ -= it->second->size() * sizeof(double);
      index_.erase(it->first);
      it = entries_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

namespace {

// Cache file framing: magic + format version, then length-prefixed
// entries. Bump kCacheFileVersion on any layout change; Load rejects
// mismatches instead of guessing.
constexpr char kCacheFileMagic[8] = {'K', 'S', 'H', 'A', 'P', 'R', 'C', '\0'};
constexpr uint32_t kCacheFileVersion = 1;

template <typename T>
void WriteRaw(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadRaw(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

StatusOr<size_t> ResultCache::SaveTo(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::NotFound("cannot open '" + path + "' for writing");
  }
  out.write(kCacheFileMagic, sizeof(kCacheFileMagic));
  WriteRaw(out, kCacheFileVersion);
  WriteRaw(out, static_cast<uint64_t>(entries_.size()));
  for (const auto& [key, values] : entries_) {  // MRU first
    WriteRaw(out, key.train_fingerprint);
    WriteRaw(out, key.test_fingerprint);
    WriteRaw(out, key.params_fingerprint);
    WriteRaw(out, static_cast<uint32_t>(key.method.size()));
    out.write(key.method.data(), static_cast<std::streamsize>(key.method.size()));
    WriteRaw(out, static_cast<uint64_t>(values->size()));
    out.write(reinterpret_cast<const char*>(values->data()),
              static_cast<std::streamsize>(values->size() * sizeof(double)));
  }
  if (!out) {
    return Status::DataLoss("write to '" + path + "' failed");
  }
  return entries_.size();
}

StatusOr<size_t> ResultCache::LoadFrom(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  char magic[sizeof(kCacheFileMagic)];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kCacheFileMagic, sizeof(magic)) != 0) {
    return Status::DataLoss("'" + path + "' is not a knnshap cache file");
  }
  uint32_t version = 0;
  if (!ReadRaw(in, &version) || version != kCacheFileVersion) {
    return Status::DataLoss("unsupported cache file version");
  }
  uint64_t count = 0;
  if (!ReadRaw(in, &count)) {
    return Status::DataLoss("truncated cache file");
  }
  // Parse everything before touching the cache so a corrupt tail cannot
  // leave a half-merged state.
  std::vector<std::pair<ResultCacheKey, std::shared_ptr<const std::vector<double>>>>
      loaded;
  // The header count is untrusted input: reserve only a sane prefix and
  // let push_back grow for (legitimate) larger files — a corrupt count
  // must yield the error path below, not an allocation failure here.
  loaded.reserve(static_cast<size_t>(std::min<uint64_t>(count, 4096)));
  for (uint64_t i = 0; i < count; ++i) {
    ResultCacheKey key;
    uint32_t method_len = 0;
    if (!ReadRaw(in, &key.train_fingerprint) || !ReadRaw(in, &key.test_fingerprint) ||
        !ReadRaw(in, &key.params_fingerprint) || !ReadRaw(in, &method_len) ||
        method_len > 4096) {
      return Status::DataLoss("truncated cache file");
    }
    key.method.resize(method_len);
    in.read(key.method.data(), method_len);
    uint64_t num_values = 0;
    if (!in.good() || !ReadRaw(in, &num_values) || num_values > (1ull << 31)) {
      return Status::DataLoss("truncated cache file");
    }
    auto values = std::make_shared<std::vector<double>>(static_cast<size_t>(num_values));
    in.read(reinterpret_cast<char*>(values->data()),
            static_cast<std::streamsize>(num_values * sizeof(double)));
    if (!in.good()) {
      return Status::DataLoss("truncated cache file");
    }
    loaded.emplace_back(std::move(key), std::move(values));
  }
  // Insert least recent first so Put's MRU ordering reproduces the saved
  // recency order.
  for (auto it = loaded.rbegin(); it != loaded.rend(); ++it) {
    Put(it->first, std::move(it->second));
  }
  return loaded.size();
}

size_t ResultCache::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t ResultCache::BytesUsed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

CacheCounters ResultCache::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace knnshap
