// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// One LSH hash table: m p-stable hash functions whose concatenated values
// form the bucket key. Similar points share a bucket with probability
// f_h(c)^m.

#ifndef KNNSHAP_LSH_HASH_TABLE_H_
#define KNNSHAP_LSH_HASH_TABLE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "lsh/pstable.h"
#include "util/matrix.h"
#include "util/random.h"

namespace knnshap {

/// A single table of the LSH index.
class LshHashTable {
 public:
  /// `num_projections` hash functions of projection width `width` over
  /// `dim`-dimensional data.
  LshHashTable(size_t dim, size_t num_projections, double width, Rng* rng);

  /// Inserts row `id` with feature vector `x`.
  void Insert(std::span<const float> x, int id);

  /// Ids stored in the query's bucket (empty vector if none).
  const std::vector<int>& Candidates(std::span<const float> x) const;

  size_t NumBuckets() const { return buckets_.size(); }
  size_t NumProjections() const { return hashes_.size(); }

 private:
  uint64_t Key(std::span<const float> x) const;

  std::vector<PStableHash> hashes_;
  std::unordered_map<uint64_t, std::vector<int>> buckets_;
  std::vector<int> empty_;
};

}  // namespace knnshap

#endif  // KNNSHAP_LSH_HASH_TABLE_H_
