// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "lsh/tuning.h"

#include <algorithm>
#include <cmath>

#include "lsh/pstable.h"
#include "util/common.h"

namespace knnshap {

double GExponent(double contrast, double width) {
  KNNSHAP_CHECK(contrast > 0.0, "contrast must be positive");
  double p_nn = GaussianCollisionProbability(1.0 / contrast, width);
  double p_rand = GaussianCollisionProbability(1.0, width);
  KNNSHAP_CHECK(p_nn > 0.0 && p_nn < 1.0 && p_rand > 0.0 && p_rand < 1.0,
                "collision probabilities out of (0,1); adjust width");
  return std::log(p_nn) / std::log(p_rand);
}

double SelectWidth(double contrast, double lo, double hi, int grid) {
  KNNSHAP_CHECK(lo > 0.0 && hi > lo && grid >= 2, "bad grid");
  double best_width = lo;
  double best_g = GExponent(contrast, lo);
  double log_lo = std::log(lo);
  double step = (std::log(hi) - log_lo) / (grid - 1);
  for (int i = 1; i < grid; ++i) {
    double w = std::exp(log_lo + step * i);
    double g = GExponent(contrast, w);
    if (g < best_g) {
      best_g = g;
      best_width = w;
    }
  }
  return best_width;
}

size_t NumProjections(size_t n, double width, double alpha) {
  KNNSHAP_CHECK(n >= 2, "need n >= 2");
  double p_rand = GaussianCollisionProbability(1.0, width);
  double m = alpha * std::log(static_cast<double>(n)) / std::log(1.0 / p_rand);
  return std::max<size_t>(1, static_cast<size_t>(std::ceil(m)));
}

size_t NumTables(double contrast, double width, size_t num_projections, int k,
                 double delta) {
  KNNSHAP_CHECK(k >= 1 && delta > 0.0 && delta < 1.0, "bad k/delta");
  double p_nn = GaussianCollisionProbability(1.0 / contrast, width);
  double l = std::pow(p_nn, -static_cast<double>(num_projections)) *
             std::log(static_cast<double>(k) / delta);
  // log(K/delta) can be <= 0 when delta >= K; at least one table always.
  return std::max<size_t>(1, static_cast<size_t>(std::ceil(l)));
}

LshConfig TuneForContrast(size_t n, double contrast, int k_star, double delta,
                          double alpha, uint64_t seed, size_t max_tables) {
  LshConfig config;
  config.width = SelectWidth(contrast);
  config.num_projections = NumProjections(n, config.width, alpha);
  config.num_tables = NumTables(contrast, config.width, config.num_projections,
                                k_star, delta);
  // Back off m until the Theorem-3 table count fits the practical budget.
  while (config.num_tables > max_tables && config.num_projections > 1) {
    --config.num_projections;
    config.num_tables = NumTables(contrast, config.width, config.num_projections,
                                  k_star, delta);
  }
  config.num_tables = std::min(config.num_tables, max_tables);
  config.seed = seed;
  return config;
}

}  // namespace knnshap
