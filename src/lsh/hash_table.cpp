// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "lsh/hash_table.h"

#include "util/common.h"

namespace knnshap {

LshHashTable::LshHashTable(size_t dim, size_t num_projections, double width, Rng* rng) {
  KNNSHAP_CHECK(num_projections >= 1, "need at least one projection");
  hashes_.reserve(num_projections);
  for (size_t i = 0; i < num_projections; ++i) {
    hashes_.emplace_back(dim, width, rng);
  }
}

uint64_t LshHashTable::Key(std::span<const float> x) const {
  // Mix the m hash values into one 64-bit bucket key (FNV-style). A rare
  // mixing collision only adds spurious candidates, which the exact
  // re-ranking step filters out; correctness is unaffected.
  uint64_t key = 1469598103934665603ull;
  for (const auto& h : hashes_) {
    uint64_t v = static_cast<uint64_t>(h.Hash(x));
    key ^= v + 0x9E3779B97F4A7C15ull + (key << 6) + (key >> 2);
  }
  return key;
}

void LshHashTable::Insert(std::span<const float> x, int id) {
  buckets_[Key(x)].push_back(id);
}

const std::vector<int>& LshHashTable::Candidates(std::span<const float> x) const {
  auto it = buckets_.find(Key(x));
  return it == buckets_.end() ? empty_ : it->second;
}

}  // namespace knnshap
