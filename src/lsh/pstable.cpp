// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "lsh/pstable.h"

#include <cmath>
#include <numbers>

#include "util/common.h"

namespace knnshap {

namespace {

// Standard normal CDF.
double NormCdf(double x) { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }

// pdf of |Z| for Z ~ N(0,1).
double AbsGaussianPdf(double x) {
  return std::sqrt(2.0 / std::numbers::pi) * std::exp(-0.5 * x * x);
}

}  // namespace

double GaussianCollisionProbability(double c, double width) {
  KNNSHAP_CHECK(width > 0.0, "width must be positive");
  KNNSHAP_CHECK(c >= 0.0, "distance must be non-negative");
  if (c == 0.0) return 1.0;
  double ratio = width / c;
  double term1 = 1.0 - 2.0 * NormCdf(-ratio);
  double term2 = 2.0 / (std::sqrt(2.0 * std::numbers::pi) * ratio) *
                 (1.0 - std::exp(-0.5 * ratio * ratio));
  return term1 - term2;
}

double NumericalCollisionProbability(double c, double width, int steps) {
  KNNSHAP_CHECK(width > 0.0 && c >= 0.0 && steps >= 2, "bad arguments");
  if (c == 0.0) return 1.0;
  // Integrand of Eq (20): (1/c) f2(t/c) (1 - t/width) over t in [0, width].
  auto integrand = [&](double t) {
    return (1.0 / c) * AbsGaussianPdf(t / c) * (1.0 - t / width);
  };
  // Simpson's rule (even number of intervals).
  if (steps % 2 == 1) ++steps;
  double h = width / steps;
  double acc = integrand(0.0) + integrand(width);
  for (int i = 1; i < steps; ++i) {
    acc += integrand(h * i) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return acc * h / 3.0;
}

PStableHash::PStableHash(size_t dim, double width, Rng* rng) : width_(width) {
  KNNSHAP_CHECK(width > 0.0, "width must be positive");
  KNNSHAP_CHECK(dim >= 1, "dimension must be >= 1");
  w_.resize(dim);
  for (auto& x : w_) x = rng->NextGaussian();
  b_ = rng->NextUniform(0.0, width);
}

int64_t PStableHash::Hash(std::span<const float> x) const {
  KNNSHAP_CHECK(x.size() == w_.size(), "dimension mismatch");
  double dot = b_;
  for (size_t i = 0; i < w_.size(); ++i) dot += w_[i] * static_cast<double>(x[i]);
  return static_cast<int64_t>(std::floor(dot / width_));
}

}  // namespace knnshap
