// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Parameter selection for the LSH index following Sec 6.1 and the proof of
// Theorem 3:
//   * the complexity exponent g(C) = log f_h(1/C) / log f_h(1) for data
//     normalized to D_mean = 1 (Fig 10 plots this quantity);
//   * projections per table m = alpha * log N / log(1/f_h(D_mean));
//   * tables l = ceil(p_nn^{-m} * log(K/delta)) which guarantees all K true
//     neighbors are retrieved with probability >= 1 - delta (Eq 56-60).

#ifndef KNNSHAP_LSH_TUNING_H_
#define KNNSHAP_LSH_TUNING_H_

#include <cstddef>

#include "lsh/lsh_index.h"

namespace knnshap {

/// g(C) = log f_h(1/C) / log f_h(1) for projection width `width`, assuming
/// distances are normalized so D_mean = 1. Monotonically decreasing in C;
/// g < 1 iff C > 1.
double GExponent(double contrast, double width);

/// The width minimizing g(C) over a log-spaced grid in [lo, hi] (Fig 10b:
/// g flattens past a knee; the paper grid-searches this).
double SelectWidth(double contrast, double lo = 0.5, double hi = 16.0,
                   int grid = 64);

/// m = ceil(alpha * ln N / ln(1/f_h(1))): projections per table such that a
/// random point collides with the query in a full table with probability
/// ~ N^{-alpha} (following [GIM+99]).
size_t NumProjections(size_t n, double width, double alpha = 1.0);

/// l = ceil(p_nn^{-m} * ln(K/delta)) tables so that each of the K true
/// neighbors is missed with probability <= delta/K (union bound, Eq 56-57).
size_t NumTables(double contrast, double width, size_t num_projections, int k,
                 double delta);

/// Convenience: assembles a full LshConfig for a dataset with the given
/// relative contrast at K* (after D_mean normalization), per Theorem 4.
/// `max_tables` caps the Theorem-3 table count at a practical budget: at
/// low contrast the bound l ~ N^{g} explodes, and the paper's own grid
/// search implicitly trades recall for build cost in that regime. When the
/// cap binds, the projection count is reduced so the capped table count
/// still meets the Theorem-3 recall target (fewer projections -> higher
/// per-table collision probability -> fewer tables needed, at the price of
/// scanning more candidates).
LshConfig TuneForContrast(size_t n, double contrast, int k_star, double delta,
                          double alpha = 1.0, uint64_t seed = 7,
                          size_t max_tables = 128);

}  // namespace knnshap

#endif  // KNNSHAP_LSH_TUNING_H_
