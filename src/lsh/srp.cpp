// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "lsh/srp.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/common.h"

namespace knnshap {

double SrpBitCollisionProbability(double theta) {
  KNNSHAP_CHECK(theta >= 0.0 && theta <= std::numbers::pi + 1e-9,
                "angle out of [0, pi]");
  return 1.0 - theta / std::numbers::pi;
}

double AngleBetween(std::span<const float> a, std::span<const float> b) {
  KNNSHAP_CHECK(a.size() == b.size(), "dimension mismatch");
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    na += static_cast<double>(a[i]) * static_cast<double>(a[i]);
    nb += static_cast<double>(b[i]) * static_cast<double>(b[i]);
  }
  if (na == 0.0 || nb == 0.0) return std::numbers::pi / 2.0;
  double cosine = std::clamp(dot / std::sqrt(na * nb), -1.0, 1.0);
  return std::acos(cosine);
}

SrpHash::SrpHash(size_t dim, size_t bits, Rng* rng) : dim_(dim), bits_(bits) {
  KNNSHAP_CHECK(bits >= 1 && bits <= 64, "bits must be in [1, 64]");
  KNNSHAP_CHECK(dim >= 1, "dimension must be >= 1");
  planes_.resize(bits * dim);
  for (auto& x : planes_) x = rng->NextGaussian();
}

uint64_t SrpHash::Signature(std::span<const float> x) const {
  KNNSHAP_CHECK(x.size() == dim_, "dimension mismatch");
  uint64_t signature = 0;
  for (size_t b = 0; b < bits_; ++b) {
    const double* plane = &planes_[b * dim_];
    double dot = 0.0;
    for (size_t d = 0; d < dim_; ++d) dot += plane[d] * static_cast<double>(x[d]);
    if (dot >= 0.0) signature |= (uint64_t{1} << b);
  }
  return signature;
}

SrpIndex::SrpIndex(const Matrix* data, const SrpConfig& config)
    : data_(data), config_(config) {
  KNNSHAP_CHECK(data != nullptr, "null data matrix");
  KNNSHAP_CHECK(config.num_tables >= 1, "need at least one table");
  norms_ = CorpusNorms(*data);
  Rng rng(config.seed);
  hashes_.reserve(config.num_tables);
  tables_.resize(config.num_tables);
  for (size_t t = 0; t < config.num_tables; ++t) {
    hashes_.emplace_back(data->Cols(), config.bits, &rng);
  }
  for (size_t t = 0; t < config.num_tables; ++t) {
    for (size_t i = 0; i < data->Rows(); ++i) {
      tables_[t][hashes_[t].Signature(data->Row(i))].push_back(static_cast<int>(i));
    }
  }
}

std::vector<Neighbor> SrpIndex::Query(std::span<const float> query, size_t k,
                                      size_t* candidates_out) const {
  std::vector<uint8_t> visited(data_->Rows(), 0);
  std::vector<int> candidate_ids;
  for (size_t t = 0; t < tables_.size(); ++t) {
    auto it = tables_[t].find(hashes_[t].Signature(query));
    if (it == tables_[t].end()) continue;
    for (int id : it->second) {
      auto& seen = visited[static_cast<size_t>(id)];
      if (seen) continue;
      seen = 1;
      candidate_ids.push_back(id);
    }
  }
  if (candidates_out != nullptr) *candidates_out = candidate_ids.size();
  // Exact re-ranking via one batched kernel pass over the candidate union.
  std::vector<double> candidate_dists(candidate_ids.size());
  ComputeDistancesFor(*data_, candidate_ids, query, Metric::kCosine, &norms_,
                      candidate_dists);
  return SelectTopK(candidate_dists, candidate_ids, std::max<size_t>(k, 1));
}

double SrpIndex::Recall(std::span<const float> query, size_t k) const {
  auto approx = Query(query, k);
  auto exact = TopKNeighbors(*data_, query, k, Metric::kCosine, &norms_);
  if (exact.empty()) return 1.0;
  std::vector<uint8_t> in_approx(data_->Rows(), 0);
  for (const auto& nn : approx) in_approx[static_cast<size_t>(nn.index)] = 1;
  size_t hit = 0;
  for (const auto& nn : exact) hit += in_approx[static_cast<size_t>(nn.index)];
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

}  // namespace knnshap
