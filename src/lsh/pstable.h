// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// p-stable locality-sensitive hashing for the L2 norm [DIIM04], the family
// the paper builds its sublinear Shapley approximation on (Sec 3.2):
//   h(x) = floor((w^T x + b) / r)
// with w ~ N(0, I) (2-stable) and b ~ Uniform[0, r). Two points at L2
// distance c collide with probability f_h(c) (Eq 20), monotonically
// decreasing in c.

#ifndef KNNSHAP_LSH_PSTABLE_H_
#define KNNSHAP_LSH_PSTABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/random.h"

namespace knnshap {

/// Collision probability f_h(c) of one 2-stable hash with projection width
/// `width` for two points at L2 distance `c` (closed form of Eq 20):
///   f_h(c) = 1 - 2 Phi(-width/c) - (2c / (sqrt(2 pi) width)) (1 - e^{-width^2/(2c^2)}).
/// f_h(0) = 1; f_h is monotonically decreasing in c.
double GaussianCollisionProbability(double c, double width);

/// Same quantity via numerical integration of Eq (20) (Simpson's rule);
/// used by tests to validate the closed form.
double NumericalCollisionProbability(double c, double width, int steps = 20000);

/// One h(x) = floor((w^T x + b)/r) hash function.
class PStableHash {
 public:
  /// Draws w (dim Gaussians) and b ~ U[0, width).
  PStableHash(size_t dim, double width, Rng* rng);

  /// Hash value of a feature vector.
  int64_t Hash(std::span<const float> x) const;

  double Width() const { return width_; }

 private:
  std::vector<double> w_;
  double b_;
  double width_;
};

}  // namespace knnshap

#endif  // KNNSHAP_LSH_PSTABLE_H_
