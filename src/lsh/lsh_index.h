// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Multi-table LSH index for approximate K-NN retrieval (Sec 3.2 / Theorem
// 3). A query gathers the union of its buckets across tables and exactly
// re-ranks those candidates; with the table count from Theorem 3 the true K
// nearest neighbors are all retrieved with probability >= 1 - delta.

#ifndef KNNSHAP_LSH_LSH_INDEX_H_
#define KNNSHAP_LSH_LSH_INDEX_H_

#include <span>
#include <vector>

#include "lsh/hash_table.h"
#include "knn/distance_kernel.h"
#include "knn/neighbors.h"
#include "util/matrix.h"
#include "util/random.h"

namespace knnshap {

/// LSH index parameters; see lsh/tuning.h for how to derive them from the
/// dataset's relative contrast per Theorem 3.
struct LshConfig {
  size_t num_projections = 8;  ///< m hash functions per table.
  size_t num_tables = 16;      ///< l tables.
  double width = 4.0;          ///< Projection width r of the p-stable hash.
  uint64_t seed = 7;
};

/// Per-query retrieval statistics, used by the Figure 9 study.
struct LshQueryStats {
  size_t candidates = 0;      ///< Distinct points whose distance was computed.
  size_t returned = 0;        ///< Neighbors actually returned (<= k).
};

/// Approximate K-NN index over a training matrix.
class LshIndex {
 public:
  /// Builds `config.num_tables` hash tables over all rows of `train`
  /// (matrix must outlive the index).
  LshIndex(const Matrix* train, const LshConfig& config);

  /// Approximate k nearest neighbors of `query`, ascending by true L2
  /// distance. May return fewer than k if too few candidates collide.
  std::vector<Neighbor> Query(std::span<const float> query, size_t k,
                              LshQueryStats* stats = nullptr) const;

  /// Fraction of the true k nearest neighbors that this index retrieves
  /// for `query` (computed against brute force; used by tests and Fig 9).
  double Recall(std::span<const float> query, size_t k) const;

  const LshConfig& Config() const { return config_; }
  size_t MemoryBuckets() const;

 private:
  const Matrix* train_;
  LshConfig config_;
  CorpusNorms norms_;  // per-row norms for the batched candidate rescoring
  std::vector<LshHashTable> tables_;
};

}  // namespace knnshap

#endif  // KNNSHAP_LSH_LSH_INDEX_H_
