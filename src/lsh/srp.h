// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Sign-random-projection (SimHash) LSH for the cosine metric [Cha02], the
// second hash family the paper cites for approximate KNN under different
// distance measures. A hash bit is sign(w^T x) with w ~ N(0, I); two
// vectors at angle theta collide on one bit with probability 1 - theta/pi.
// Used when corpus similarity is angular (e.g. normalized embeddings);
// plugs into the same truncated-Shapley pipeline as the p-stable index.

#ifndef KNNSHAP_LSH_SRP_H_
#define KNNSHAP_LSH_SRP_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "knn/distance_kernel.h"
#include "knn/neighbors.h"
#include "util/matrix.h"
#include "util/random.h"

namespace knnshap {

/// Collision probability of one sign bit for two vectors at angle `theta`
/// (radians): 1 - theta/pi.
double SrpBitCollisionProbability(double theta);

/// Angle (radians) between two vectors; 0 for parallel, pi for opposite.
double AngleBetween(std::span<const float> a, std::span<const float> b);

/// One m-bit SimHash signature function (m <= 64).
class SrpHash {
 public:
  SrpHash(size_t dim, size_t bits, Rng* rng);

  /// m-bit signature of x.
  uint64_t Signature(std::span<const float> x) const;

  size_t Bits() const { return bits_; }

 private:
  size_t dim_;
  size_t bits_;
  std::vector<double> planes_;  // bits x dim hyperplane normals
};

/// Parameters of an SRP index.
struct SrpConfig {
  size_t bits = 12;       ///< Signature bits per table.
  size_t num_tables = 16; ///< Independent tables (union of candidates).
  uint64_t seed = 7;
};

/// Multi-table SimHash index answering approximate k-NN under the cosine
/// metric, with exact re-ranking of the candidate union.
class SrpIndex {
 public:
  /// Builds over all rows of `data` (must outlive the index).
  SrpIndex(const Matrix* data, const SrpConfig& config);

  /// Approximate k nearest rows by cosine distance, ascending. `stats_out`
  /// (optional) receives the distinct candidate count.
  std::vector<Neighbor> Query(std::span<const float> query, size_t k,
                              size_t* candidates_out = nullptr) const;

  /// Fraction of the true cosine k-NN retrieved for `query`.
  double Recall(std::span<const float> query, size_t k) const;

  const SrpConfig& Config() const { return config_; }

 private:
  const Matrix* data_;
  SrpConfig config_;
  CorpusNorms norms_;  // per-row norms for the batched candidate rescoring
  std::vector<SrpHash> hashes_;
  std::vector<std::unordered_map<uint64_t, std::vector<int>>> tables_;
};

}  // namespace knnshap

#endif  // KNNSHAP_LSH_SRP_H_
