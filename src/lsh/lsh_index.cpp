// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "lsh/lsh_index.h"

#include <algorithm>
#include <cstdint>

#include "util/common.h"

namespace knnshap {

LshIndex::LshIndex(const Matrix* train, const LshConfig& config)
    : train_(train), config_(config) {
  KNNSHAP_CHECK(train != nullptr, "null training matrix");
  KNNSHAP_CHECK(config.num_tables >= 1, "need at least one table");
  norms_ = CorpusNorms(*train);
  Rng rng(config.seed);
  tables_.reserve(config.num_tables);
  for (size_t t = 0; t < config.num_tables; ++t) {
    tables_.emplace_back(train->Cols(), config.num_projections, config.width, &rng);
  }
  for (size_t t = 0; t < config.num_tables; ++t) {
    for (size_t i = 0; i < train->Rows(); ++i) {
      tables_[t].Insert(train->Row(i), static_cast<int>(i));
    }
  }
}

namespace {

// Epoch-stamped visited marks, reused across queries on the same thread:
// the valuation engine drives many queries per thread, and a fresh N-byte
// bitmap per query would dominate small-candidate lookups. Bumping the
// epoch invalidates all marks in O(1); the buffer is only rezeroed when the
// corpus size grows or the epoch counter wraps.
thread_local std::vector<uint32_t> tls_visited_stamp;
thread_local uint32_t tls_visited_epoch = 0;

uint32_t NextVisitedEpoch(size_t rows) {
  // Shrink when the buffer is far larger than the active index (e.g. a
  // long-lived server that once held a huge corpus), so pool threads do
  // not retain the high-water mark forever. The 64 KiB floor keeps small
  // indexes from thrashing the allocation.
  constexpr size_t kShrinkFloor = 1 << 16;
  const bool oversized =
      tls_visited_stamp.size() > kShrinkFloor && tls_visited_stamp.size() > 4 * rows;
  if (tls_visited_stamp.size() < rows || oversized ||
      tls_visited_epoch == UINT32_MAX) {
    tls_visited_stamp.assign(rows, 0);
    tls_visited_stamp.shrink_to_fit();
    tls_visited_epoch = 0;
  }
  return ++tls_visited_epoch;
}

}  // namespace

std::vector<Neighbor> LshIndex::Query(std::span<const float> query, size_t k,
                                      LshQueryStats* stats) const {
  // Gather the union of bucket contents across tables, deduplicated with
  // the per-thread visited marks, then exactly re-rank by true distance
  // through one batched kernel pass over the gathered candidates.
  const uint32_t epoch = NextVisitedEpoch(train_->Rows());
  static thread_local std::vector<int> candidate_ids;
  static thread_local std::vector<double> candidate_dists;
  ShrinkScratch(&candidate_ids, train_->Rows());
  ShrinkScratch(&candidate_dists, train_->Rows());
  candidate_ids.clear();
  for (const auto& table : tables_) {
    for (int id : table.Candidates(query)) {
      auto& seen = tls_visited_stamp[static_cast<size_t>(id)];
      if (seen == epoch) continue;
      seen = epoch;
      candidate_ids.push_back(id);
    }
  }
  candidate_dists.resize(candidate_ids.size());
  ComputeDistancesFor(*train_, candidate_ids, query, Metric::kL2, &norms_,
                      candidate_dists);
  std::vector<Neighbor> out =
      SelectTopK(candidate_dists, candidate_ids, std::max<size_t>(k, 1));
  if (stats != nullptr) {
    stats->candidates = candidate_ids.size();
    stats->returned = out.size();
  }
  return out;
}

double LshIndex::Recall(std::span<const float> query, size_t k) const {
  auto approx = Query(query, k);
  auto exact = TopKNeighbors(*train_, query, k, Metric::kL2, &norms_);
  if (exact.empty()) return 1.0;
  std::vector<uint8_t> in_approx(train_->Rows(), 0);
  for (const auto& nn : approx) in_approx[static_cast<size_t>(nn.index)] = 1;
  size_t hit = 0;
  for (const auto& nn : exact) hit += in_approx[static_cast<size_t>(nn.index)];
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

size_t LshIndex::MemoryBuckets() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t.NumBuckets();
  return total;
}

}  // namespace knnshap
