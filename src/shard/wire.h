// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// The shard wire layer: builders and parsers for the JSONL messages the
// router exchanges with shard workers, shared by every transport (pipes —
// shard_worker.h — and TCP sockets — socket_worker.h). The messages are
// ordinary serve-protocol requests (docs/PROTOCOL.md is the normative
// spec); this header is the single in-tree encoding of them, so a framing
// change cannot drift between transports.
//
// Also here: corpus-sync planning. A remote worker is a long-lived
// process that keeps its corpus between router re-fits, so the router
// asks it for its per-block content digests (`digests` op) and ships only
// the blocks that changed (`load_delta`) instead of the full inline
// `load`. The plan is computed from CorpusStore's incrementally
// maintained CorpusDigests — the same digests that content-address the
// shards — so "what changed" costs zero rehashing.

#ifndef KNNSHAP_SHARD_WIRE_H_
#define KNNSHAP_SHARD_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "knn/metric.h"
#include "shard/shard_planner.h"
#include "util/fingerprint.h"
#include "util/json.h"
#include "util/status.h"

namespace knnshap {
namespace wire {

/// Canonical fingerprint encoding on the wire: "0x%016llx".
std::string FingerprintHex(uint64_t fingerprint);
bool ParseHexFingerprint(const std::string& hex, uint64_t* out);

/// The trailing-column target mode of a dataset ("label"|"target"|"none").
/// Datasets with both channels cannot ship over the one-column wire.
std::string TargetMode(const Dataset& data);

/// One `candidates` request for a planned shard. Forwards the *remaining*
/// budget of the active CancelToken (if any) as `deadline_ms`, so a
/// worker-side deadline can never fire before the router's own.
JsonValue BuildCandidatesRequest(const ShardRange& range,
                                 const std::string& corpus_name, Metric metric,
                                 std::span<const float> query, size_t r);

/// Parses a `candidates` response into the global row-indexed `dists`
/// buffer and the candidate run. Returns:
///   OK                  — run is usable
///   kDeadlineExceeded   — the worker propagated the forwarded deadline
///                         (health stays OK; the router's token is the
///                         authority)
///   kUnavailable        — the worker answered a structured error
///   kInternal           — unparseable / malformed / out-of-range payload
Status ParseCandidatesResponse(const std::string& line, const ShardRange& range,
                               std::span<double> dists, std::vector<int>* run);

/// The full inline `load` op: every row with its trailing label/target
/// column. float -> %.17g -> float round-trips bit-exactly, so the
/// receiver's independently computed content fingerprint must equal the
/// sender's.
JsonValue BuildInlineLoadRequest(const std::string& corpus_name,
                                 const Dataset& corpus);

/// `digests` op: ask a worker which corpus version (per-block) it holds.
JsonValue BuildDigestsRequest(const std::string& corpus_name);

/// Per-block combined digest (features + labels + targets of one row
/// block) — the unit of delta sync, and what the `digests` op reports.
uint64_t BlockDigest(const CorpusDigests& digests, size_t block);

/// How to bring a worker's corpus up to date with `local`.
struct CorpusSyncPlan {
  enum class Mode {
    kNone,   ///< Fingerprints match — nothing to send.
    kDelta,  ///< Ship only `blocks` via `load_delta`.
    kFull,   ///< Unknown/incompatible remote state — full inline `load`.
  };
  Mode mode = Mode::kFull;
  std::vector<size_t> blocks;  ///< Changed block indices (kDelta only).
};

/// Plans the sync from the local digests and the worker's parsed
/// `digests` response (ok:false — typically not_found — plans a full
/// load, as does any shape/target/block-size mismatch).
CorpusSyncPlan PlanCorpusSync(const Dataset& corpus,
                              const CorpusDigests& local,
                              const JsonValue& remote_response);

/// `load_delta` op carrying exactly `blocks` (ascending) of `corpus`,
/// the new row/dim totals and the expected combined fingerprint.
JsonValue BuildDeltaLoadRequest(const std::string& corpus_name,
                                const Dataset& corpus,
                                const CorpusDigests& digests,
                                const std::vector<size_t>& blocks);

}  // namespace wire
}  // namespace knnshap

#endif  // KNNSHAP_SHARD_WIRE_H_
