// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "shard/wire.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/cancel.h"
#include "util/common.h"

namespace knnshap {
namespace wire {

std::string FingerprintHex(uint64_t fingerprint) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

bool ParseHexFingerprint(const std::string& hex, uint64_t* out) {
  if (hex.size() < 3 || hex[0] != '0' || (hex[1] != 'x' && hex[1] != 'X')) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(hex.c_str() + 2, &end, 16);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

std::string TargetMode(const Dataset& data) {
  if (data.HasLabels()) return "label";
  if (data.HasTargets()) return "target";
  return "none";
}

namespace {

/// One corpus row in the inline-load encoding: features widened to double
/// (%.17g round-trips bit-exactly) plus the trailing label/target column.
JsonValue RowJson(const Dataset& corpus, size_t i) {
  JsonValue row = JsonValue::MakeArray();
  for (float f : corpus.features.Row(i)) {
    row.Append(JsonValue(static_cast<double>(f)));
  }
  if (corpus.HasLabels()) {
    row.Append(JsonValue(static_cast<double>(corpus.labels[i])));
  } else if (corpus.HasTargets()) {
    row.Append(JsonValue(corpus.targets[i]));
  }
  return row;
}

}  // namespace

JsonValue BuildCandidatesRequest(const ShardRange& range,
                                 const std::string& corpus_name, Metric metric,
                                 std::span<const float> query, size_t r) {
  JsonValue request = JsonValue::MakeObject();
  request.Set("op", JsonValue("candidates"));
  request.Set("train", JsonValue(corpus_name));
  request.Set("metric", JsonValue(MetricName(metric)));
  request.Set("r", JsonValue(static_cast<double>(r)));
  request.Set("row_begin", JsonValue(static_cast<double>(range.row_begin)));
  request.Set("row_end", JsonValue(static_cast<double>(range.row_end)));
  request.Set("fingerprint", JsonValue(FingerprintHex(range.fingerprint)));
  JsonValue q = JsonValue::MakeArray();
  for (float f : query) q.Append(JsonValue(static_cast<double>(f)));
  request.Set("query", std::move(q));
  // Forward the *remaining* budget: the worker's token, constructed after
  // this read, can never fire later than the router's — so a worker-side
  // deadline_exceeded implies the router token is (about to be) expired
  // and the router's own post-fan-out check stays the authority.
  const CancelToken* token = ActiveCancelToken();
  if (token != nullptr && token->has_deadline()) {
    request.Set("deadline_ms",
                JsonValue(static_cast<double>(token->RemainingMs())));
  }
  return request;
}

Status ParseCandidatesResponse(const std::string& line, const ShardRange& range,
                               std::span<double> dists, std::vector<int>* run) {
  run->clear();
  JsonParseResult parsed = ParseJson(line);
  if (!parsed.ok()) {
    return Status::Error(StatusCode::kInternal,
                         "shard worker sent an unparseable response");
  }
  const JsonValue& response = parsed.value;
  if (!response.Get("ok").AsBool(false)) {
    if (response.Get("code").AsString() == "deadline_exceeded") {
      return Status::DeadlineExceeded("shard worker deadline");
    }
    return Status::Unavailable("shard worker error: " +
                               response.Get("error").AsString());
  }
  const JsonValue& indices = response.Get("indices");
  const JsonValue& distances = response.Get("dists");
  if (!indices.IsArray() || !distances.IsArray() ||
      indices.Items().size() != distances.Items().size()) {
    return Status::Error(StatusCode::kInternal,
                         "shard worker returned a malformed candidate run");
  }
  run->reserve(indices.Items().size());
  for (size_t i = 0; i < indices.Items().size(); ++i) {
    const JsonValue& index = indices.Items()[i];
    const JsonValue& dist = distances.Items()[i];
    const double raw = index.AsNumber(-1.0);
    const int row = static_cast<int>(raw);
    if (!index.IsNumber() || !dist.IsNumber() ||
        static_cast<double>(row) != raw ||
        row < static_cast<int>(range.row_begin) ||
        row >= static_cast<int>(range.row_end)) {
      run->clear();
      return Status::Error(StatusCode::kInternal,
                           "shard worker returned an out-of-range candidate");
    }
    dists[static_cast<size_t>(row)] = dist.AsNumber();
    run->push_back(row);
  }
  return Status::Ok();
}

JsonValue BuildInlineLoadRequest(const std::string& corpus_name,
                                 const Dataset& corpus) {
  JsonValue load = JsonValue::MakeObject();
  load.Set("op", JsonValue("load"));
  load.Set("name", JsonValue(corpus_name));
  load.Set("target", JsonValue(TargetMode(corpus)));
  JsonValue rows = JsonValue::MakeArray();
  for (size_t i = 0; i < corpus.Size(); ++i) rows.Append(RowJson(corpus, i));
  load.Set("rows", std::move(rows));
  return load;
}

JsonValue BuildDigestsRequest(const std::string& corpus_name) {
  JsonValue request = JsonValue::MakeObject();
  request.Set("op", JsonValue("digests"));
  request.Set("name", JsonValue(corpus_name));
  return request;
}

uint64_t BlockDigest(const CorpusDigests& digests, size_t block) {
  KNNSHAP_CHECK(block < digests.NumBlocks(), "block index out of range");
  Fnv64 hash;
  hash.Add(digests.feature_blocks[block]);
  // Presence flags keep "no labels" distinct from "labels hashing to 0".
  hash.Add(!digests.label_blocks.empty());
  if (!digests.label_blocks.empty()) hash.Add(digests.label_blocks[block]);
  hash.Add(!digests.target_blocks.empty());
  if (!digests.target_blocks.empty()) hash.Add(digests.target_blocks[block]);
  return hash.Digest();
}

CorpusSyncPlan PlanCorpusSync(const Dataset& corpus, const CorpusDigests& local,
                              const JsonValue& remote_response) {
  CorpusSyncPlan plan;
  plan.mode = CorpusSyncPlan::Mode::kFull;
  if (!remote_response.Get("ok").AsBool(false)) return plan;  // not_found etc.
  // A delta splices blocks into the worker's existing corpus, so every
  // structural parameter must match; anything else falls back to a full
  // load (correct by construction, just more bytes).
  if (static_cast<size_t>(remote_response.Get("dim").AsNumber(0)) !=
          local.cols ||
      static_cast<size_t>(remote_response.Get("block_rows").AsNumber(0)) !=
          local.block_rows ||
      remote_response.Get("target").AsString() != TargetMode(corpus)) {
    return plan;
  }
  uint64_t remote_fingerprint = 0;
  if (!ParseHexFingerprint(remote_response.Get("fingerprint").AsString(),
                           &remote_fingerprint)) {
    return plan;
  }
  if (remote_fingerprint == local.Combined()) {
    plan.mode = CorpusSyncPlan::Mode::kNone;
    return plan;
  }
  const JsonValue& remote_blocks = remote_response.Get("blocks");
  if (!remote_blocks.IsArray()) return plan;
  plan.mode = CorpusSyncPlan::Mode::kDelta;
  plan.blocks.clear();
  for (size_t b = 0; b < local.NumBlocks(); ++b) {
    uint64_t remote_digest = 0;
    const bool have_remote =
        b < remote_blocks.Items().size() &&
        ParseHexFingerprint(remote_blocks.Items()[b].AsString(),
                            &remote_digest);
    if (!have_remote || remote_digest != BlockDigest(local, b)) {
      plan.blocks.push_back(b);
    }
  }
  return plan;
}

JsonValue BuildDeltaLoadRequest(const std::string& corpus_name,
                                const Dataset& corpus,
                                const CorpusDigests& digests,
                                const std::vector<size_t>& blocks) {
  JsonValue request = JsonValue::MakeObject();
  request.Set("op", JsonValue("load_delta"));
  request.Set("name", JsonValue(corpus_name));
  request.Set("target", JsonValue(TargetMode(corpus)));
  request.Set("rows", JsonValue(static_cast<double>(corpus.Size())));
  request.Set("dim", JsonValue(static_cast<double>(corpus.Dim())));
  request.Set("fingerprint", JsonValue(FingerprintHex(digests.Combined())));
  JsonValue block_array = JsonValue::MakeArray();
  for (size_t b : blocks) {
    KNNSHAP_CHECK(b < digests.NumBlocks(), "delta block out of range");
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("block", JsonValue(static_cast<double>(b)));
    JsonValue rows = JsonValue::MakeArray();
    const size_t begin = b * digests.block_rows;
    const size_t end = std::min(begin + digests.block_rows, corpus.Size());
    for (size_t i = begin; i < end; ++i) rows.Append(RowJson(corpus, i));
    entry.Set("rows", std::move(rows));
    block_array.Append(std::move(entry));
  }
  request.Set("blocks", std::move(block_array));
  return request;
}

}  // namespace wire
}  // namespace knnshap
