// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// ShardPlanner — splits a corpus into contiguous, fingerprint-block-aligned
// shards for the shard router (src/shard/sharded_valuator.h).
//
// Two design constraints drive the plan shape:
//
//   * Contiguity. The exact/corrected/weighted recursions consume a global
//     (distance, row-index) ranking; a shard that owns the contiguous row
//     range [b, e) produces candidates whose *local* selection order equals
//     the restriction of the global order to the shard (the row-index tie
//     break is monotone under a constant offset), so per-shard exact top-R
//     runs merge into the global top-R bit for bit (knn/selection.h).
//
//   * Block alignment. CorpusStore maintains per-block content digests
//     (util/fingerprint.h, kFingerprintBlockRows rows per block)
//     incrementally across mutations. Aligning shard boundaries to those
//     blocks makes each shard's identity *content-addressed* for free: a
//     shard fingerprint is an FNV combine of the block digests it covers,
//     so a mutation invalidates exactly the shards whose blocks were
//     rehashed, and a worker process can verify it holds the same bytes
//     the router planned against without rehashing anything.
//
// Rows are balanced at block granularity: every shard gets floor or ceil
// of num_blocks / shard_count blocks. A shard count above the block count
// degrades to one shard per block (never an empty shard).

#ifndef KNNSHAP_SHARD_SHARD_PLANNER_H_
#define KNNSHAP_SHARD_SHARD_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/fingerprint.h"

namespace knnshap {

/// One planned shard: a contiguous, block-aligned row range plus the
/// content-addressed fingerprint of exactly those rows' block digests.
struct ShardRange {
  size_t row_begin = 0;
  size_t row_end = 0;  ///< exclusive; block-aligned or == corpus rows.
  uint64_t fingerprint = 0;

  size_t Rows() const { return row_end - row_begin; }
  bool operator==(const ShardRange&) const = default;
};

/// Content fingerprint of rows [row_begin, row_end): FNV over the range,
/// the shape, and the feature/label/target block digests the range covers.
/// `row_begin` must be block-aligned and `row_end` block-aligned or equal
/// to digests.rows. Shared by the planner and the worker-side verification
/// in the `candidates` op — both sides compute it from their own
/// incrementally-maintained digests and must agree bit for bit.
uint64_t ShardFingerprint(const CorpusDigests& digests, size_t row_begin,
                          size_t row_end);

/// Splits the corpus described by `digests` into min(shard_count,
/// NumBlocks()) contiguous block-aligned shards with balanced block
/// counts. shard_count < 1 plans as 1. The ranges partition [0, rows).
std::vector<ShardRange> PlanShards(const CorpusDigests& digests,
                                   size_t shard_count);

}  // namespace knnshap

#endif  // KNNSHAP_SHARD_SHARD_PLANNER_H_
