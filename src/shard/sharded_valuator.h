// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// ShardedValuator — the shard router. A Valuator that fans each query out
// to per-shard workers (thread-per-shard, process-per-shard, or remote
// socket replicas — see shard_worker.h and socket_worker.h), merges the
// per-shard candidate runs into the global (distance, index) ranking, and
// runs the method's recursion on it — bit-identical to the unsharded
// valuator, because the recursions consume only the ranking and the merge
// of exact per-shard top-R runs *is* the global top-R (knn/selection.h).
//
// Supported methods: exact, exact-corrected, weighted-fast, truncated —
// the distance-ordering family. Per-method fan-out depth r:
//
//   exact            TruncatedExactEffectiveRank(KStar(k, approx_error))
//                    when truncated, else N
//   exact-corrected  TruncatedCorrectedEffectiveRank(...) when truncated
//                    (the N-1 < K labels-only regime skips the fan-out
//                    entirely, exactly like the unsharded path), else N
//   weighted-fast    always N — the DP consumes the full ranking, and the
//                    raw double distances ride along losslessly for the
//                    kernel weights
//   truncated        min(KStar(k, epsilon), N) — the merged prefix plays
//                    the role of the unsharded kd-tree retrieval (exact
//                    top-K* either way), feeding the same truncated
//                    Theorem-2 recursion
//
// Failure semantics: a fan-out that fails on a healthy topology (a worker
// died or answered garbage) latches Health() non-OK and the query returns
// an empty vector — the engine skips empty merges, checks Health() after
// the run, evicts this fitted entry and answers Unavailable + retry; the
// next request re-fits, respawning workers. A partial merge is never
// produced. A local deadline expiry returns right-sized zeros and is
// discarded by the engine's own Expired() check, same as every valuator.

#ifndef KNNSHAP_SHARD_SHARDED_VALUATOR_H_
#define KNNSHAP_SHARD_SHARDED_VALUATOR_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/wknn_shapley.h"
#include "engine/valuator.h"
#include "knn/distance_kernel.h"
#include "obs/metrics.h"
#include "shard/shard_planner.h"
#include "shard/shard_worker.h"
#include "util/fingerprint.h"

namespace knnshap {

/// Topology of a sharded fit, carried from the serve layer through the
/// engine request.
struct ShardedValuatorSpec {
  /// Planned shard count (clamped to the corpus's fingerprint-block count).
  int shard_count = 2;
  /// false: thread-per-shard in-process workers fanned across the shared
  /// pool. true: one forked worker process per shard.
  bool process = false;
  /// argv of the worker binary (process mode); must speak the JSONL serve
  /// protocol on stdin/stdout.
  std::vector<std::string> worker_command;
  /// Remote socket topology: one ordered replica list ("host:port"
  /// strings) per shard. Non-empty selects the TCP transport
  /// (socket_worker.h) — `process` must be false, and there must be at
  /// least as many replica groups as planned shards (the planner may
  /// clamp the shard count below the flag on tiny corpora; trailing
  /// groups then go unused).
  std::vector<std::vector<std::string>> remote_replicas;
  /// Socket transport knobs (remote mode only).
  int connect_timeout_ms = 2000;
  int io_timeout_ms = 30000;
  int connect_attempts = 3;
  /// Transport counter sink (remote mode; null = no counters).
  MetricsRegistry* metrics = nullptr;
  /// The corpus's incrementally maintained block digests (null: recomputed
  /// at fit). Shard identity is content-addressed through these.
  std::shared_ptr<const CorpusDigests> train_digests;
  /// Store name of the corpus, echoed into worker processes.
  std::string corpus_name = "corpus";
};

/// True when `method` has a sharded implementation; the engine consults
/// this before rerouting a request, so unsupported methods silently fall
/// back to their unsharded valuator.
bool ShardedValuatorSupports(const std::string& method);

/// The router valuator. Health() reflects the latched worker status.
class ShardedValuator : public Valuator {
 public:
  ShardedValuator(ValuatorParams params, std::string method,
                  ShardedValuatorSpec spec);

  const char* Method() const override { return method_.c_str(); }
  std::vector<double> ValueOne(const Dataset& test, size_t row) const override;
  Status Health() const override;

 protected:
  void OnFit() override;

 private:
  enum class Kind { kExact, kCorrected, kWeightedFast, kTruncated };

  /// Fan the query out to every worker; false latches health (unless the
  /// failure was a propagated deadline — the caller re-checks the token).
  bool FanOut(std::span<const float> query, size_t r, std::span<double> dists,
              std::vector<std::vector<int>>* runs) const;

  std::string method_;
  Kind kind_;
  ShardedValuatorSpec spec_;

  std::vector<ShardRange> plan_;
  CorpusNorms norms_;
  std::unique_ptr<WknnCoalitionWeights> coalition_;  // weighted-fast only
  /// Kept alive for remote workers, which re-sync from these digests on
  /// every replica (re)connect.
  std::shared_ptr<const CorpusDigests> digests_;
  std::vector<std::unique_ptr<ShardWorker>> workers_;

  /// Process- and remote-mode fan-outs are serialized: each worker's pipe
  /// pair / socket is a single-lane channel, and queries arrive
  /// concurrently from the pool.
  mutable std::mutex fan_out_mutex_;
  mutable std::mutex health_mutex_;
  mutable Status health_;
};

/// Factory the engine calls when a request carries shard_count > 1: a
/// router for supported methods, null otherwise (caller falls back to the
/// registry's unsharded valuator).
std::unique_ptr<Valuator> MakeShardedValuator(const std::string& method,
                                              const ValuatorParams& params,
                                              ShardedValuatorSpec spec);

}  // namespace knnshap

#endif  // KNNSHAP_SHARD_SHARDED_VALUATOR_H_
